# Tier-1 gate: everything `make ci` runs must pass before merging.
# See CONTRIBUTING.md.

GO ?= go

.PHONY: ci build vet lint lint-update pure test race fuzz bench bench-micro benchparity fastpath golden golden-traces adaptive trace serve obs

ci: vet lint pure build race adaptive trace fastpath benchparity serve obs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-contract analyzers (determinism, float safety, metric naming,
# error hygiene). Exits non-zero on any non-suppressed diagnostic; see
# CONTRIBUTING.md, "Static analysis".
# lint fails fast and keeps uavlint's exit codes distinct: 1 means the
# analyzers found violations (fix or //uavdc:allow them), 2 means the
# lint engine itself could not load or check the module.
lint:
	@$(GO) run ./cmd/uavlint ./... ; code=$$?; \
	if [ $$code -eq 1 ]; then \
		echo "make lint: analyzer violations (run '$(GO) run ./cmd/uavlint -all -summary ./...' for the full picture)" >&2; exit 1; \
	elif [ $$code -ne 0 ]; then \
		echo "make lint: lint engine error (exit $$code)" >&2; exit $$code; \
	fi

# Purity gate, named so CI logs call it out: the interprocedural
# pureplan analyzer alone must find nothing reachable from the planner
# entry points. `lint` already runs the full suite; this step pins the
# plan-cache purity contract specifically (see CONTRIBUTING.md).
pure:
	$(GO) run ./cmd/uavlint -analyzers pureplan ./...

# Rewrite the lint goldens after a deliberate analyzer or fixture
# change: the fixture diagnostic stream (internal/lint) and the three
# CLI goldens (cmd/uavlint: json, list, summary). Review the diff —
# goldens are the analyzers' contract.
lint-update:
	$(GO) test ./internal/lint -run TestFixtureGolden -update
	$(GO) test ./cmd/uavlint -run 'TestRunFixtureJSON|TestRunList|TestRunFixtureSummary' -update

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every target; extend -fuzztime for a deeper run.
fuzz:
	$(GO) test -fuzz FuzzReadScenario -fuzztime 10s .
	$(GO) test -fuzz FuzzPlanSmallScenarios -fuzztime 10s .
	$(GO) test -fuzz FuzzValidatorSimulatorAgreement -fuzztime 10s .
	$(GO) test -fuzz FuzzFaultSchedule -fuzztime 10s ./internal/faults
	$(GO) test -fuzz FuzzAllowDirective -fuzztime 10s ./internal/lint
	$(GO) test -fuzz FuzzCanonicalInstance -fuzztime 10s ./internal/canon

# Adaptive-executor gate: the reachable-depot property test over its fixed
# seed matrix, the cross-worker determinism test, and the bit-for-bit
# parity check against the reference simulator, all under the race
# detector. (Also covered by `race`; kept separate so the invariant is a
# named CI step.)
adaptive:
	$(GO) test -race -count=1 -run 'TestAdaptiveNeverDiesUnderFaults|TestAdaptiveCountersDeterministicAcrossWorkers|TestAdaptiveMatchesRunFaultFree' ./internal/simulate
	$(GO) test -race -count=1 -run 'TestAdaptiveRunMatchesRunOnFigureDrivers' ./internal/experiments

# Flight-recorder gate: race-enabled trace-determinism tests (stripped
# streams byte-identical across worker counts, golden trace regression,
# tracing-on/off plan parity), then a uavtrace smoke test over a freshly
# generated faulted-mission trace: the summary must render and two
# identical missions must diff clean.
trace:
	$(GO) test -race -count=1 -run 'TestTraceStreamInvariantAcrossWorkers|TestTracingDoesNotChangePlans' ./internal/core
	$(GO) test -race -count=1 -run 'TestGoldenTraces|TestTraceWorkerInvariance' ./internal/experiments
	$(GO) test -race -count=1 -run 'TestPlanUnchangedByTracing|TestExecuteUnchangedByTracing|TestTraceRepeatDeterminism' .
	@tmp=$$(mktemp -d) && \
		$(GO) run ./cmd/uavsim -sensors 20 -side 200 -seed 3 -capacity 8e3 -faults default -trace $$tmp/a.jsonl >/dev/null && \
		$(GO) run ./cmd/uavsim -sensors 20 -side 200 -seed 3 -capacity 8e3 -faults default -trace $$tmp/b.jsonl >/dev/null && \
		$(GO) run ./cmd/uavtrace -top 5 $$tmp/a.jsonl | grep -q "mission timeline:" && \
		$(GO) run ./cmd/uavtrace $$tmp/a.jsonl $$tmp/b.jsonl && \
		rm -rf $$tmp

# Fast-path parity gate: race-enabled differential tests holding the
# spatial-index scan, cached insertion pricing, and memoized matrices to
# bit-identical plans and counters against the retained reference path —
# at the planner level (various worker counts) and across all figure
# drivers at GOMAXPROCS 1/4/8 — plus a paper-scale (δ = 5 m) smoke run of
# the `full` uavbench preset.
fastpath:
	$(GO) test -race -count=1 -run 'TestFastPathMatchesReference|TestSkippedEvalsReconcile|TestFastCountersDeterministicAcrossWorkers' ./internal/core
	$(GO) test -race -count=1 -run 'TestFastPathParityAcrossFigures|TestBenchSpeedupPanel' ./internal/experiments
	$(GO) run ./cmd/uavbench -preset full -fig fig4 -faults none -out /dev/null

# Serving gate: race-enabled daemon and canonical-encoding tests — the
# GOMAXPROCS 1/4/8 cold/warm/coalesced parity check, the failure-mode
# table (backpressure, deadline, shutdown), the golden wire formats, and
# the deterministic serve bench panel — then a 1k-request loopback load
# smoke over real HTTP at the reduced preset: positive cache hit rate,
# zero non-backpressure errors, every body bit-identical to a direct
# plan.
serve:
	$(GO) test -race -count=1 ./internal/canon ./internal/serve ./cmd/uavserve
	$(GO) test -race -count=1 -run 'TestBenchServePanel|TestServeRequestsDeterministic' ./internal/experiments
	$(GO) run ./cmd/uavserve -smoke 1000 -preset reduced -distinct 8 -clients 16

# Observability gate: race-enabled op-log and analyzer tests — the
# GOMAXPROCS 1/4/8 stripped op-log golden, the stalled-writer
# backpressure check, the window/runtime/health wire goldens, and the
# uavobs subcommands — then a smoke run: uavserve -smoke with op-logging
# on, the stream summarized by uavobs (every record accounted for) and
# diffed against itself (self-diff must be clean).
obs:
	$(GO) test -race -count=1 ./internal/oplog ./cmd/uavobs
	$(GO) test -race -count=1 -run 'TestOpLog|TestWindow|TestBackgroundSampler|TestGoldenHealthz|TestGoldenWindow|TestGoldenRuntime|TestDebugOplog' ./internal/serve
	@tmp=$$(mktemp -d) && \
		$(GO) run ./cmd/uavserve -smoke 200 -preset tiny -distinct 4 -clients 8 -oplog $$tmp/op.jsonl >/dev/null && \
		$(GO) run ./cmd/uavobs summary -top 3 $$tmp/op.jsonl | grep -q "records 200" && \
		$(GO) run ./cmd/uavobs diff $$tmp/op.jsonl $$tmp/op.jsonl && \
		rm -rf $$tmp

# Regenerate the perf baseline (see EXPERIMENTS.md, "Bench baselines"):
# reduced-preset figure panels, the paper-scale (δ = 5 m)
# fast-vs-reference speedup panel, and the reduced-preset serving
# throughput panel.
bench:
	$(GO) run ./cmd/uavbench -preset reduced -speedup full -serve reduced -out BENCH_PR7.json

# Micro-benchmarks behind the speedup panel: candidate generation fast vs
# reference (internal/core) and 2-opt with vs without neighbor lists and
# don't-look bits (internal/tsp).
bench-micro:
	$(GO) test -run XXX -bench 'BenchmarkAlg2' -benchtime 3x ./internal/core
	$(GO) test -run XXX -bench 'BenchmarkTwoOpt(Full|DLB)' ./internal/tsp

# Baseline-parity gate: BENCH_PR7.json against BENCH_PR6.json. Both run
# the same planner, so every deterministic field of the prior panels —
# volumes, plan calls, all counters, fault scenarios, the speedup eval
# ledger — must be bit-identical, and the new serve panel must be
# internally consistent. Timing fields are excluded.
benchparity:
	$(GO) test -count=1 -run TestBenchPanelsParity ./internal/experiments

# Rewrite the golden volume panels after a deliberate behaviour change.
golden:
	$(GO) test ./internal/experiments -run TestGoldenVolumePanels -update

# Rewrite the golden stripped trace streams after a deliberate change to
# the sequence of planner phases.
golden-traces:
	$(GO) test ./internal/experiments -run TestGoldenTraces -update
