# Tier-1 gate: everything `make ci` runs must pass before merging.
# See CONTRIBUTING.md.

GO ?= go

.PHONY: ci build vet test race fuzz bench golden adaptive

ci: vet build race adaptive

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every target; extend -fuzztime for a deeper run.
fuzz:
	$(GO) test -fuzz FuzzReadScenario -fuzztime 10s .
	$(GO) test -fuzz FuzzPlanSmallScenarios -fuzztime 10s .
	$(GO) test -fuzz FuzzValidatorSimulatorAgreement -fuzztime 10s .
	$(GO) test -fuzz FuzzFaultSchedule -fuzztime 10s ./internal/faults

# Adaptive-executor gate: the reachable-depot property test over its fixed
# seed matrix, the cross-worker determinism test, and the bit-for-bit
# parity check against the reference simulator, all under the race
# detector. (Also covered by `race`; kept separate so the invariant is a
# named CI step.)
adaptive:
	$(GO) test -race -count=1 -run 'TestAdaptiveNeverDiesUnderFaults|TestAdaptiveCountersDeterministicAcrossWorkers|TestAdaptiveMatchesRunFaultFree' ./internal/simulate
	$(GO) test -race -count=1 -run 'TestAdaptiveRunMatchesRunOnFigureDrivers' ./internal/experiments

# Regenerate the perf baseline (see EXPERIMENTS.md, "Bench baselines").
bench:
	$(GO) run ./cmd/uavbench -preset reduced -out BENCH_PR2.json

# Rewrite the golden volume panels after a deliberate behaviour change.
golden:
	$(GO) test ./internal/experiments -run TestGoldenVolumePanels -update
