# Tier-1 gate: everything `make ci` runs must pass before merging.
# See CONTRIBUTING.md.

GO ?= go

.PHONY: ci build vet lint test race fuzz bench bench-micro benchparity fastpath golden golden-traces adaptive trace

ci: vet lint build race adaptive trace fastpath benchparity

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-contract analyzers (determinism, float safety, metric naming,
# error hygiene). Exits non-zero on any non-suppressed diagnostic; see
# CONTRIBUTING.md, "Static analysis".
lint:
	$(GO) run ./cmd/uavlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every target; extend -fuzztime for a deeper run.
fuzz:
	$(GO) test -fuzz FuzzReadScenario -fuzztime 10s .
	$(GO) test -fuzz FuzzPlanSmallScenarios -fuzztime 10s .
	$(GO) test -fuzz FuzzValidatorSimulatorAgreement -fuzztime 10s .
	$(GO) test -fuzz FuzzFaultSchedule -fuzztime 10s ./internal/faults
	$(GO) test -fuzz FuzzAllowDirective -fuzztime 10s ./internal/lint

# Adaptive-executor gate: the reachable-depot property test over its fixed
# seed matrix, the cross-worker determinism test, and the bit-for-bit
# parity check against the reference simulator, all under the race
# detector. (Also covered by `race`; kept separate so the invariant is a
# named CI step.)
adaptive:
	$(GO) test -race -count=1 -run 'TestAdaptiveNeverDiesUnderFaults|TestAdaptiveCountersDeterministicAcrossWorkers|TestAdaptiveMatchesRunFaultFree' ./internal/simulate
	$(GO) test -race -count=1 -run 'TestAdaptiveRunMatchesRunOnFigureDrivers' ./internal/experiments

# Flight-recorder gate: race-enabled trace-determinism tests (stripped
# streams byte-identical across worker counts, golden trace regression,
# tracing-on/off plan parity), then a uavtrace smoke test over a freshly
# generated faulted-mission trace: the summary must render and two
# identical missions must diff clean.
trace:
	$(GO) test -race -count=1 -run 'TestTraceStreamInvariantAcrossWorkers|TestTracingDoesNotChangePlans' ./internal/core
	$(GO) test -race -count=1 -run 'TestGoldenTraces|TestTraceWorkerInvariance' ./internal/experiments
	$(GO) test -race -count=1 -run 'TestPlanUnchangedByTracing|TestExecuteUnchangedByTracing|TestTraceRepeatDeterminism' .
	@tmp=$$(mktemp -d) && \
		$(GO) run ./cmd/uavsim -sensors 20 -side 200 -seed 3 -capacity 8e3 -faults default -trace $$tmp/a.jsonl >/dev/null && \
		$(GO) run ./cmd/uavsim -sensors 20 -side 200 -seed 3 -capacity 8e3 -faults default -trace $$tmp/b.jsonl >/dev/null && \
		$(GO) run ./cmd/uavtrace -top 5 $$tmp/a.jsonl | grep -q "mission timeline:" && \
		$(GO) run ./cmd/uavtrace $$tmp/a.jsonl $$tmp/b.jsonl && \
		rm -rf $$tmp

# Fast-path parity gate: race-enabled differential tests holding the
# spatial-index scan, cached insertion pricing, and memoized matrices to
# bit-identical plans and counters against the retained reference path —
# at the planner level (various worker counts) and across all figure
# drivers at GOMAXPROCS 1/4/8 — plus a paper-scale (δ = 5 m) smoke run of
# the `full` uavbench preset.
fastpath:
	$(GO) test -race -count=1 -run 'TestFastPathMatchesReference|TestSkippedEvalsReconcile|TestFastCountersDeterministicAcrossWorkers' ./internal/core
	$(GO) test -race -count=1 -run 'TestFastPathParityAcrossFigures|TestBenchSpeedupPanel' ./internal/experiments
	$(GO) run ./cmd/uavbench -preset full -fig fig4 -faults none -out /dev/null

# Regenerate the perf baseline (see EXPERIMENTS.md, "Bench baselines"):
# reduced-preset figure panels plus the paper-scale (δ = 5 m)
# fast-vs-reference speedup panel.
bench:
	$(GO) run ./cmd/uavbench -preset reduced -speedup full -out BENCH_PR6.json

# Micro-benchmarks behind the speedup panel: candidate generation fast vs
# reference (internal/core) and 2-opt with vs without neighbor lists and
# don't-look bits (internal/tsp).
bench-micro:
	$(GO) test -run XXX -bench 'BenchmarkAlg2' -benchtime 3x ./internal/core
	$(GO) test -run XXX -bench 'BenchmarkTwoOpt(Full|DLB)' ./internal/tsp

# Baseline-parity gate: BENCH_PR6.json against BENCH_PR5.json under the
# fast-path contract — volumes, plan calls, behaviour counters, and fault
# scenarios bit-identical; the scan work ledger may only shrink, and the
# skip counter must reconcile it exactly. Timing fields are excluded.
benchparity:
	$(GO) test -count=1 -run TestBenchPanelsParity ./internal/experiments

# Rewrite the golden volume panels after a deliberate behaviour change.
golden:
	$(GO) test ./internal/experiments -run TestGoldenVolumePanels -update

# Rewrite the golden stripped trace streams after a deliberate change to
# the sequence of planner phases.
golden-traces:
	$(GO) test ./internal/experiments -run TestGoldenTraces -update
