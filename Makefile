# Tier-1 gate: everything `make ci` runs must pass before merging.
# See CONTRIBUTING.md.

GO ?= go

.PHONY: ci build vet test race fuzz bench golden

ci: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every target; extend -fuzztime for a deeper run.
fuzz:
	$(GO) test -fuzz FuzzReadScenario -fuzztime 10s .
	$(GO) test -fuzz FuzzPlanSmallScenarios -fuzztime 10s .
	$(GO) test -fuzz FuzzValidatorSimulatorAgreement -fuzztime 10s .

# Regenerate the perf baseline (see EXPERIMENTS.md, "Bench baselines").
bench:
	$(GO) run ./cmd/uavbench -preset reduced -out BENCH_PR1.json

# Rewrite the golden volume panels after a deliberate behaviour change.
golden:
	$(GO) test ./internal/experiments -run TestGoldenVolumePanels -update
