// External test package: the figure benches import internal/experiments,
// which itself imports the uavdc facade for the serving panel, so an
// in-package test file would be an import cycle.
package uavdc_test

// One benchmark per figure panel of the paper's evaluation (Section VII),
// plus ablation benches for the design choices DESIGN.md calls out. The
// figure benches run the corresponding experiment sweep at reduced scale
// (paper scale is CPU-hours; see cmd/uavexp -preset paper for the full
// run) and report the headline quantity of each panel as a custom metric:
// MB/op for the volume panels (a), planner seconds for the runtime panels
// (b) via the standard ns/op. EXPERIMENTS.md records the paper-vs-measured
// comparison.

import (
	"runtime"
	"testing"

	"uavdc"
	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/experiments"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
)

// benchConfig is the sweep scale used by the figure benches: one instance
// per point so a single -benchtime=1x run regenerates every series.
func benchConfig() experiments.Config {
	cfg := experiments.Reduced()
	cfg.Instances = 1
	cfg.Capacities = []float64{1e4, 2e4, 3e4}
	cfg.Deltas = []float64{10, 20, 30}
	return cfg
}

func reportFigure(b *testing.B, tab *experiments.Table) {
	b.Helper()
	// Report the tight-budget (first x) volume of every series: the
	// panel's headline comparison.
	for _, s := range tab.Series {
		if len(s.Points) > 0 {
			b.ReportMetric(s.Points[0].Volume, s.Name+"_MB")
		}
	}
}

// BenchmarkFig3a regenerates Fig. 3(a): collected volume vs energy
// capacity, Algorithm 1 vs benchmark (no-overlap problem).
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, tab)
	}
}

// BenchmarkFig3b regenerates Fig. 3(b): planner runtime vs energy capacity
// for the same pair; the runtime series is the measurement itself.
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range tab.Series {
			b.ReportMetric(s.Points[len(s.Points)-1].Runtime*1e3, s.Name+"_ms")
		}
	}
}

// BenchmarkFig4a regenerates Fig. 4(a): collected volume vs δ for
// Algorithm 2, Algorithm 3 (K = 2, 4) and the benchmark.
func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, tab)
	}
}

// BenchmarkFig4b regenerates Fig. 4(b): runtime vs δ.
func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range tab.Series {
			b.ReportMetric(s.Points[0].Runtime*1e3, s.Name+"_ms")
		}
	}
}

// BenchmarkFig5a regenerates Fig. 5(a): collected volume vs energy
// capacity at fixed δ for Algorithm 2, Algorithm 3 (K = 2, 4), benchmark.
func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, tab)
	}
}

// BenchmarkFig5b regenerates Fig. 5(b): runtime vs energy capacity.
func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range tab.Series {
			b.ReportMetric(s.Points[len(s.Points)-1].Runtime*1e3, s.Name+"_ms")
		}
	}
}

// --- per-planner benches: one planning call at reduced scale ---

func benchInstance(b *testing.B, k int) *core.Instance {
	b.Helper()
	p := sensornet.DefaultGenParams()
	p.NumSensors = 60
	p.Side = 350
	net, err := sensornet.Generate(p, rng.New(99))
	if err != nil {
		b.Fatal(err)
	}
	return &core.Instance{Net: net, Model: energy.Default().WithCapacity(2e4), Delta: 15, K: k}
}

func benchPlanner(b *testing.B, pl core.Planner, k int) {
	b.Helper()
	in := benchInstance(b, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := pl.Plan(in)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(plan.Collected(), "MB")
		}
	}
}

func BenchmarkAlgorithm1(b *testing.B) { benchPlanner(b, &core.Algorithm1{}, 1) }
func BenchmarkAlgorithm2(b *testing.B) { benchPlanner(b, &core.Algorithm2{}, 1) }

// BenchmarkAlgorithm2Parallel measures the worker-parallel candidate scan
// against BenchmarkAlgorithm2 (identical plans, different wall time).
func BenchmarkAlgorithm2Parallel(b *testing.B) {
	benchPlanner(b, &core.Algorithm2{Workers: runtime.NumCPU()}, 1)
}
func BenchmarkAlgorithm3K2(b *testing.B) {
	benchPlanner(b, &core.Algorithm3{}, 2)
}
func BenchmarkAlgorithm3K4(b *testing.B) {
	benchPlanner(b, &core.Algorithm3{}, 4)
}
func BenchmarkBaseline(b *testing.B) { benchPlanner(b, &core.BenchmarkPlanner{}, 1) }

// --- ablations (DESIGN.md §4) ---

// BenchmarkAblationExactRatioTSP prices Algorithm 2 candidates with the
// literal per-candidate Christofides recomputation of Eq. 13, against the
// default cheapest-insertion pricing benched by BenchmarkAlgorithm2.
func BenchmarkAblationExactRatioTSP(b *testing.B) {
	in := benchInstance(b, 1)
	in.Delta = 40 // the literal pricing is O(M·|S|³) per step; shrink M
	pl := &core.Algorithm2{ExactRatioTSP: true}
	fast := &core.Algorithm2{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact, err := pl.Plan(in)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			quick, err := fast.Plan(in)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(exact.Collected(), "exact_MB")
			b.ReportMetric(quick.Collected(), "insertion_MB")
		}
	}
}

// BenchmarkAblationDisjointFilter compares Algorithm 1 with and without
// the disjoint-coverage candidate filter.
func BenchmarkAblationDisjointFilter(b *testing.B) {
	in := benchInstance(b, 1)
	in.Delta = 40
	disjoint := &core.Algorithm1{}
	overlap := &core.Algorithm1{AllowOverlap: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1, err := disjoint.Plan(in)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p2, err := overlap.Plan(in)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(p1.Collected(), "disjoint_MB")
			b.ReportMetric(p2.Collected(), "overlap_MB")
		}
	}
}

// BenchmarkAblationDecomposition separates the framework's win into its
// two ingredients: simultaneous coverage collection (benchmark-coverage vs
// benchmark) and free hovering placement (algorithm2 vs benchmark-coverage).
func BenchmarkAblationDecomposition(b *testing.B) {
	in := benchInstance(b, 1)
	in.Model = in.Model.WithCapacity(1.2e4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p3, err := (&core.Algorithm2{}).Plan(in)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p1, err := (&core.BenchmarkPlanner{}).Plan(in)
			if err != nil {
				b.Fatal(err)
			}
			p2, err := (&core.BenchmarkCoverage{}).Plan(in)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(p1.Collected(), "plain_MB")
			b.ReportMetric(p2.Collected(), "coverage_MB")
			b.ReportMetric(p3.Collected(), "placed_MB")
		}
	}
}

// BenchmarkAblationLNS measures the destroy-and-repair improvement layer
// over plain Algorithm 3: extra volume bought per extra planning time.
func BenchmarkAblationLNS(b *testing.B) {
	in := benchInstance(b, 2)
	in.Model = in.Model.WithCapacity(1e4) // tight: room to improve
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lns, err := (&core.LNSPlanner{Rounds: 15, Seed: 1}).Plan(in)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			base, err := (&core.Algorithm3{}).Plan(in)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(base.Collected(), "greedy_MB")
			b.ReportMetric(lns.Collected(), "lns_MB")
		}
	}
}

// BenchmarkAblationRefine measures the continuous stop-relocation polish:
// flight-distance saved vs its planning-time cost, against the raw grid
// plan (DESIGN.md: the paper fixes stops to δ-grid centres).
func BenchmarkAblationRefine(b *testing.B) {
	in := benchInstance(b, 2)
	in.Delta = 40 // coarse grid: relocation has room to help
	plan, err := (&core.Algorithm2{}).Plan(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refined := core.RefinePlan(in, plan)
		if i == 0 {
			b.ReportMetric(plan.FlightDistance(), "grid_m")
			b.ReportMetric(refined.FlightDistance(), "refined_m")
		}
	}
}

// BenchmarkPublicAPI measures the end-to-end facade path (plan + validate
// + simulate) a downstream caller pays.
func BenchmarkPublicAPI(b *testing.B) {
	sc := uavdc.RandomScenario(60, 350, 5)
	uav := uavdc.DefaultUAV()
	uav.CapacityJ = 2e4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uavdc.Plan(sc, uav, uavdc.Options{DeltaM: 15, K: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
