// Command uavbench runs the figure drivers with the obs instrumentation
// layer attached and writes a BENCH_*.json perf baseline: per-figure
// wall-clock time, planner-only time, deterministic counter totals, and
// collected volumes. Later repo states diff their own run against a
// committed baseline to tell "faster" apart from "does less work".
//
// Usage:
//
//	uavbench [flags]
//
//	-preset    tiny | reduced | paper | papertight | full (default reduced)
//	-fig       comma-separated figure ids (default fig3,fig4,fig5)
//	-instances override the number of network instances per point
//	-seed      override the experiment seed
//	-workers   parallel candidate-scan goroutines (counters are identical)
//	-faults    fault spec for the adaptive-execution panel; "default" =
//	           built-in schedule, "none" skips the panel
//	-speedup   preset for the fast-vs-reference speedup panel ("none"
//	           skips it): each -fig driver runs twice at that preset,
//	           reference scan vs fast scan, and the row records both
//	           planner times, the candidate-evals ledger, and whether the
//	           deterministic panels stayed bit-identical
//	-serve     preset for the serving-throughput panel ("none" skips
//	           it): a loopback load run against the internal/serve
//	           daemon core — cold pass over the distinct instances, then
//	           warm concurrent repeats — recording requests/sec, p50/p99
//	           latency, the exact serve.* counter totals, and whether
//	           every served body stayed bit-identical to a direct plan
//	-serve-requests  total requests in the serve panel (default 256)
//	-serve-distinct  distinct instances in the serve panel mix (default 8)
//	-serve-clients   concurrent serve-panel clients (default 8)
//	-out       output path (default BENCH.json; "-" = stdout)
//	-trace     write a flight-recorder trace of the figure sweeps
//	           (uavdc-trace/1 JSONL; analyze with uavtrace) to this file
//	-cpuprofile  write a pprof CPU profile to this file
//	-memprofile  write a pprof heap profile to this file
//
// Counter totals and volumes are deterministic for a fixed preset at any
// -workers setting; only the timing fields vary run to run.
package main

import (
	"flag"
	"io"
	"os"
	"strings"

	"uavdc/internal/errw"
	"uavdc/internal/experiments"
	"uavdc/internal/faults"
	"uavdc/internal/prof"
	"uavdc/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// presetConfig resolves a preset name to its configuration.
func presetConfig(name string) (experiments.Config, bool) {
	switch name {
	case "tiny":
		return experiments.Tiny(), true
	case "reduced":
		return experiments.Reduced(), true
	case "paper":
		return experiments.Paper(), true
	case "papertight":
		return experiments.PaperTight(), true
	case "full":
		return experiments.Full(), true
	}
	return experiments.Config{}, false
}

// run is the testable entry point: it parses args with its own FlagSet,
// writes to the given streams, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("uavbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset    = fs.String("preset", "reduced", "tiny | reduced | paper | papertight | full")
		fig       = fs.String("fig", "fig3,fig4,fig5", "comma-separated figure ids")
		instances = fs.Int("instances", 0, "override instances per point (0 = preset default)")
		seed      = fs.Uint64("seed", 0, "override experiment seed (0 = preset default)")
		workers   = fs.Int("workers", 0, "parallel candidate-scan goroutines")
		faultsArg = fs.String("faults", "default", `fault spec for the adaptive panel ("default" = built-in, "none" = skip)`)
		speedup   = fs.String("speedup", "none", `preset for the fast-vs-reference speedup panel ("none" = skip)`)
		serveArg  = fs.String("serve", "none", `preset for the serving-throughput panel ("none" = skip)`)
		serveReqs = fs.Int("serve-requests", 256, "total requests in the serve panel")
		serveDist = fs.Int("serve-distinct", 8, "distinct instances in the serve panel mix")
		serveCli  = fs.Int("serve-clients", 8, "concurrent serve-panel clients")
		out       = fs.String("out", "BENCH.json", `output path ("-" = stdout)`)
		tracePath = fs.String("trace", "", "write the flight-recorder trace (JSONL) to this file")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	outw, errs := errw.New(stdout), errw.New(stderr)

	if *cpuProf != "" || *memProf != "" {
		stop, err := prof.Start(*cpuProf, *memProf)
		if err != nil {
			errs.Println("uavbench:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				errs.Println("uavbench:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	cfg, ok := presetConfig(*preset)
	if !ok {
		errs.Printf("uavbench: unknown preset %q\n", *preset)
		return 2
	}
	if *instances > 0 {
		cfg.Instances = *instances
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *tracePath != "" {
		cfg.Trace = trace.NewBuffer()
	}

	var figures []string
	for _, name := range strings.Split(*fig, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := experiments.Figures[name]; !ok {
			errs.Printf("uavbench: unknown figure %q\n", name)
			return 2
		}
		figures = append(figures, name)
	}
	if len(figures) == 0 {
		errs.Println("uavbench: no figures selected")
		return 2
	}

	b, err := experiments.RunBench(*preset, cfg, figures)
	if err != nil {
		errs.Println("uavbench:", err)
		return 1
	}
	if *speedup != "none" {
		scfg, ok := presetConfig(*speedup)
		if !ok {
			errs.Printf("uavbench: unknown speedup preset %q\n", *speedup)
			return 2
		}
		if *instances > 0 {
			scfg.Instances = *instances
		}
		if *seed != 0 {
			scfg.Seed = *seed
		}
		b.Speedup, err = experiments.BenchSpeedup(*speedup, scfg, figures)
		if err != nil {
			errs.Println("uavbench:", err)
			return 1
		}
	}
	if *serveArg != "none" {
		vcfg, ok := presetConfig(*serveArg)
		if !ok {
			errs.Printf("uavbench: unknown serve preset %q\n", *serveArg)
			return 2
		}
		if *seed != 0 {
			vcfg.Seed = *seed
		}
		b.Serve, err = experiments.RunBenchServe(*serveArg, vcfg, *serveReqs, *serveDist, *serveCli)
		if err != nil {
			errs.Println("uavbench:", err)
			return 1
		}
	}
	if *faultsArg != "none" {
		spec := *faultsArg
		if spec == "default" {
			spec = faults.DefaultSpec
		}
		b.FaultScenarios, err = experiments.BenchFaultScenarios(cfg, spec)
		if err != nil {
			errs.Println("uavbench:", err)
			return 1
		}
	}

	if cfg.Trace != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			errs.Println("uavbench:", err)
			return 1
		}
		if err := trace.WriteJSONL(f, cfg.Trace.Snapshot(), false); err != nil {
			_ = f.Close() // best-effort cleanup; the write already failed
			errs.Println("uavbench:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			errs.Println("uavbench:", err)
			return 1
		}
		outw.Printf("trace written to %s (%d records)\n", *tracePath, cfg.Trace.Len())
	}

	if *out == "-" {
		if err := b.WriteJSON(stdout); err != nil {
			errs.Println("uavbench:", err)
			return 1
		}
		if outw.Err() != nil {
			return 1
		}
		return 0
	}
	f, err := os.Create(*out)
	if err != nil {
		errs.Println("uavbench:", err)
		return 1
	}
	if err := b.WriteJSON(f); err != nil {
		_ = f.Close() // best-effort cleanup; the write already failed
		errs.Println("uavbench:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		errs.Println("uavbench:", err)
		return 1
	}
	for _, bf := range b.Figures {
		outw.Printf("%-18s %8.3f s wall  %8.3f s plan  %6d plans\n",
			bf.Figure, bf.WallSeconds, bf.PlanSeconds, bf.PlanCalls)
	}
	for _, sp := range b.Speedup {
		parity := "bit-identical"
		if !sp.BitIdentical {
			parity = "PANELS DIVERGED"
		}
		outw.Printf("speedup/%-10s %6.2fx  (%.3f s ref, %.3f s fast)  evals %d -> %d  %s\n",
			sp.Figure, sp.Speedup, sp.ReferenceSeconds, sp.FastSeconds,
			sp.ReferenceEvals, sp.FastEvals, parity)
	}
	if sv := b.Serve; sv != nil {
		parity := "bit-identical"
		if !sv.BitIdentical {
			parity = "BODIES DIVERGED"
		}
		outw.Printf("serve/%-11s %6.0f req/s  p50 %.2f ms  p99 %.2f ms  hits %d  misses %d  %s\n",
			sv.Preset, sv.RequestsPerSec, sv.P50Ms, sv.P99Ms, sv.Hits, sv.Misses, parity)
	}
	for _, fsn := range b.FaultScenarios {
		outw.Printf("faults/%-11s %7.1f%% retained  %4d replans  %4d skipped\n",
			fsn.Planner, 100*fsn.RetainedFrac, fsn.Replans, fsn.StopsSkipped)
	}
	outw.Printf("wrote %s\n", *out)
	if outw.Err() != nil {
		return 1
	}
	return 0
}
