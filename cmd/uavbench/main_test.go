package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uavdc/internal/experiments"
)

func TestRunWritesBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errb strings.Builder
	code := run([]string{"-preset", "tiny", "-fig", "fig3", "-out", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("summary missing output path:\n%s", out.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := experiments.ReadBench(f)
	if err != nil {
		t.Fatal(err)
	}
	if b.Preset != "tiny" || len(b.Figures) != 1 || b.Figures[0].Figure != "fig3" {
		t.Errorf("bench content wrong: %+v", b)
	}
	if b.Figures[0].Counters["core.candidate_evals"] == 0 &&
		b.Figures[0].Counters["tsp.christofides_runs"] == 0 {
		t.Errorf("no instrumentation counters recorded: %v", b.Figures[0].Counters)
	}
	if len(b.FaultScenarios) == 0 {
		t.Fatal("no fault-scenario panel in bench document")
	}
	for _, row := range b.FaultScenarios {
		// The fraction can exceed 1: a mid-flight replan (greedy) may beat
		// a weak baseline plan even under faults.
		if row.RetainedFrac < 0 {
			t.Errorf("%s: negative retained fraction %v", row.Planner, row.RetainedFrac)
		}
		if row.FaultSpec == "" {
			t.Errorf("%s: empty fault spec recorded", row.Planner)
		}
	}
}

func TestRunFaultsPanelFlag(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-preset", "tiny", "-fig", "fig3", "-faults", "none", "-out", "-"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	b, err := experiments.ReadBench(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.FaultScenarios) != 0 {
		t.Errorf("-faults none still produced %d scenario rows", len(b.FaultScenarios))
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-preset", "tiny", "-fig", "fig3", "-faults", "wind:::", "-out", "-"}, &out, &errb); code != 1 {
		t.Errorf("corrupt -faults spec: exit %d, want 1", code)
	}
}

func TestRunStdout(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-preset", "tiny", "-fig", "fig3", "-out", "-"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	b, err := experiments.ReadBench(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("stdout is not a bench document: %v\n%s", err, out.String())
	}
	if b.Schema != experiments.BenchSchema {
		t.Errorf("schema %q", b.Schema)
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-preset", "nope"},
		{"-fig", "fig9"},
		{"-fig", ","},
		{"-what"},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}
