// Command uavexp regenerates the paper's evaluation figures (Section VII):
// Fig. 3 (Algorithm 1 vs benchmark over the energy capacity, no-overlap
// problem), Fig. 4 (Algorithms 2/3 vs benchmark over the grid resolution
// δ), and Fig. 5 (Algorithms 2/3 vs benchmark over the energy capacity).
// Each run prints both panels — (a) collected volume, (b) running time —
// and can additionally emit long-form CSV.
//
// Usage:
//
//	uavexp [flags]
//
//	-fig       fig3 | fig4 | fig5 | all | ext-altitude | ext-fleet | ext (default all)
//	-preset    tiny | reduced | paper | papertight (default reduced)
//	-instances override the number of network instances per point
//	-seed      override the experiment seed
//	-csv       write long-form CSV to this file (appends all figures)
//	-md        render markdown tables instead of aligned text
//	-metrics   attach the obs instrumentation layer and print a (c) panel of
//	           per-point counter totals after each figure
//	-trace     write a flight-recorder trace of the whole run (uavdc-trace/1
//	           JSONL; analyze with uavtrace) to this file
//	-tracedetail  include per-candidate scan events in the trace
//	-cpuprofile   write a pprof CPU profile to this file
//	-memprofile   write a pprof heap profile to this file
//
// The paper preset matches Section VII-A exactly (500 sensors, 1 km²,
// 15 instances, E = 3–9×10⁵ J, δ = 5–30 m) and takes CPU-hours; reduced
// preserves every qualitative shape in seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"uavdc/internal/errw"
	"uavdc/internal/experiments"
	"uavdc/internal/prof"
	"uavdc/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args with its own FlagSet,
// writes to the given streams, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("uavexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig       = fs.String("fig", "all", "fig3 | fig4 | fig5 | all | ext | ext-*")
		preset    = fs.String("preset", "reduced", "tiny | reduced | paper | papertight")
		instances = fs.Int("instances", 0, "override instances per point (0 = preset default)")
		seed      = fs.Uint64("seed", 0, "override experiment seed (0 = preset default)")
		csvPath   = fs.String("csv", "", "write long-form CSV to this file")
		markdown  = fs.Bool("md", false, "render markdown tables instead of aligned text")
		workers   = fs.Int("workers", 0, "parallel candidate-scan goroutines (identical plans; distorts runtime panels)")
		metrics   = fs.Bool("metrics", false, "record obs counters and print the (c) instrumentation panel")
		tracePath = fs.String("trace", "", "write the flight-recorder trace (JSONL) to this file")
		traceDet  = fs.Bool("tracedetail", false, "include per-candidate scan events in the trace")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	outw, errs := errw.New(stdout), errw.New(stderr)

	cfg, err := presetConfig(*preset)
	if err != nil {
		errs.Println("uavexp:", err)
		return 2
	}
	if *instances > 0 {
		cfg.Instances = *instances
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.Metrics = *metrics
	if *tracePath != "" {
		cfg.Trace = trace.NewBuffer()
		cfg.Trace.SetDetail(*traceDet)
	}

	if *cpuProf != "" || *memProf != "" {
		stop, err := prof.Start(*cpuProf, *memProf)
		if err != nil {
			errs.Println("uavexp:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				errs.Println("uavexp:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	figures, err := figureList(*fig)
	if err != nil {
		errs.Println("uavexp:", err)
		return 2
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			errs.Println("uavexp:", err)
			return 1
		}
		defer func() { _ = f.Close() }() // leak guard; the happy path closes with a check below
		csvFile = f
	}

	for i, name := range figures {
		tab, err := experiments.Run(name, cfg)
		if err != nil {
			errs.Println("uavexp:", err)
			return 1
		}
		if i > 0 {
			outw.Println()
		}
		render := tab.Render
		if *markdown {
			render = tab.WriteMarkdown
		}
		if err := render(stdout); err != nil {
			errs.Println("uavexp:", err)
			return 1
		}
		if *metrics && tab.HasMetrics() {
			outw.Println()
			if err := tab.RenderMetrics(stdout); err != nil {
				errs.Println("uavexp:", err)
				return 1
			}
		}
		if csvFile != nil {
			if err := tab.WriteCSV(csvFile); err != nil {
				errs.Println("uavexp:", err)
				return 1
			}
		}
	}
	if csvFile != nil {
		if err := csvFile.Close(); err != nil {
			errs.Println("uavexp:", err)
			return 1
		}
	}
	if cfg.Trace != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			errs.Println("uavexp:", err)
			return 1
		}
		if err := trace.WriteJSONL(f, cfg.Trace.Snapshot(), false); err != nil {
			_ = f.Close() // best-effort cleanup; the write already failed
			errs.Println("uavexp:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			errs.Println("uavexp:", err)
			return 1
		}
		outw.Printf("\ntrace written to %s (%d records)\n", *tracePath, cfg.Trace.Len())
	}
	if outw.Err() != nil {
		return 1
	}
	return 0
}

func presetConfig(name string) (experiments.Config, error) {
	switch name {
	case "tiny":
		return experiments.Tiny(), nil
	case "reduced":
		return experiments.Reduced(), nil
	case "paper":
		return experiments.Paper(), nil
	case "papertight":
		return experiments.PaperTight(), nil
	default:
		return experiments.Config{}, fmt.Errorf("unknown preset %q", name)
	}
}

func figureList(fig string) ([]string, error) {
	switch fig {
	case "all":
		return []string{"fig3", "fig4", "fig5"}, nil
	case "ext":
		return []string{"ext-altitude", "ext-fleet", "ext-robustness", "ext-decomposition"}, nil
	case "fig3", "fig4", "fig5", "ext-altitude", "ext-fleet", "ext-robustness", "ext-decomposition":
		return []string{fig}, nil
	default:
		return nil, fmt.Errorf("unknown figure %q", fig)
	}
}
