// Command uavexp regenerates the paper's evaluation figures (Section VII):
// Fig. 3 (Algorithm 1 vs benchmark over the energy capacity, no-overlap
// problem), Fig. 4 (Algorithms 2/3 vs benchmark over the grid resolution
// δ), and Fig. 5 (Algorithms 2/3 vs benchmark over the energy capacity).
// Each run prints both panels — (a) collected volume, (b) running time —
// and can additionally emit long-form CSV.
//
// Usage:
//
//	uavexp [flags]
//
//	-fig       fig3 | fig4 | fig5 | all | ext-altitude | ext-fleet | ext (default all)
//	-preset    tiny | reduced | paper | papertight (default reduced)
//	-instances override the number of network instances per point
//	-seed      override the experiment seed
//	-csv       write long-form CSV to this file (appends all figures)
//	-md        render markdown tables instead of aligned text
//
// The paper preset matches Section VII-A exactly (500 sensors, 1 km²,
// 15 instances, E = 3–9×10⁵ J, δ = 5–30 m) and takes CPU-hours; reduced
// preserves every qualitative shape in seconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"uavdc/internal/experiments"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "fig3 | fig4 | fig5 | all")
		preset    = flag.String("preset", "reduced", "tiny | reduced | paper | papertight")
		instances = flag.Int("instances", 0, "override instances per point (0 = preset default)")
		seed      = flag.Uint64("seed", 0, "override experiment seed (0 = preset default)")
		csvPath   = flag.String("csv", "", "write long-form CSV to this file")
		markdown  = flag.Bool("md", false, "render markdown tables instead of aligned text")
		workers   = flag.Int("workers", 0, "parallel candidate-scan goroutines (identical plans; distorts runtime panels)")
	)
	flag.Parse()

	var cfg experiments.Config
	switch *preset {
	case "tiny":
		cfg = experiments.Tiny()
	case "reduced":
		cfg = experiments.Reduced()
	case "paper":
		cfg = experiments.Paper()
	case "papertight":
		cfg = experiments.PaperTight()
	default:
		fmt.Fprintf(os.Stderr, "uavexp: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if *instances > 0 {
		cfg.Instances = *instances
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	var figures []string
	switch *fig {
	case "all":
		figures = []string{"fig3", "fig4", "fig5"}
	case "ext":
		figures = []string{"ext-altitude", "ext-fleet", "ext-robustness", "ext-decomposition"}
	case "fig3", "fig4", "fig5", "ext-altitude", "ext-fleet", "ext-robustness", "ext-decomposition":
		figures = []string{*fig}
	default:
		fmt.Fprintf(os.Stderr, "uavexp: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uavexp:", err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	for i, name := range figures {
		tab, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uavexp:", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		render := tab.Render
		if *markdown {
			render = tab.WriteMarkdown
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "uavexp:", err)
			os.Exit(1)
		}
		if csvFile != nil {
			if err := tab.WriteCSV(csvFile); err != nil {
				fmt.Fprintln(os.Stderr, "uavexp:", err)
				os.Exit(1)
			}
		}
	}
}
