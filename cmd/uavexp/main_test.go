package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTinyFig3(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-preset", "tiny", "-fig", "fig3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"fig3(a): collected data volume (MB)",
		"fig3(b): running time (s)",
		"algorithm1",
		"benchmark",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "instrumentation counters") {
		t.Error("metrics panel rendered without -metrics")
	}
}

func TestRunMetricsPanel(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-preset", "tiny", "-fig", "fig4", "-metrics"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"fig4(c): instrumentation counters",
		"series algorithm2",
		"core.candidate_evals",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var out, errb strings.Builder
	code := run([]string{"-preset", "tiny", "-fig", "fig3", "-csv", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "figure,series,x,volume_mb") {
		t.Errorf("csv header wrong: %q", string(data[:60]))
	}
}

func TestRunTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	var out, errb strings.Builder
	code := run([]string{"-preset", "tiny", "-fig", "fig3", "-trace", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "trace written to "+path) {
		t.Errorf("trace confirmation missing:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema":"uavdc-trace/1"`, "sweep/point", "sweep/plan", "plan/alg1"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-preset", "nope"},
		{"-fig", "fig9"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

func TestFigureList(t *testing.T) {
	if figs, err := figureList("all"); err != nil || len(figs) != 3 {
		t.Errorf("all -> %v, %v", figs, err)
	}
	if figs, err := figureList("ext"); err != nil || len(figs) != 4 {
		t.Errorf("ext -> %v, %v", figs, err)
	}
	if _, err := figureList("fig6"); err == nil {
		t.Error("fig6 accepted")
	}
}
