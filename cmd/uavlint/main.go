// Command uavlint runs uavdc's static-analysis suite (internal/lint)
// over the module: repo-specific analyzers enforcing the determinism,
// float-safety, metric-naming, error-handling, unit-safety,
// lock-discipline, goroutine-lifecycle, and wire-format contracts that
// the dynamic test suite can only sample. See CONTRIBUTING.md ("Static
// analysis") for the analyzer list and the //uavdc:allow suppression
// grammar.
//
// Usage:
//
//	uavlint [flags] [./... | path prefixes]
//
//	-C dir        module root to lint (default ".")
//	-json         emit a uavdc-lint/2 JSON report instead of text
//	-all          also print suppressed diagnostics (text mode)
//	-summary      append a one-line finding/timing summary, with
//	              per-analyzer wall time (text mode)
//	-list         list the analyzers (name order) and exit
//	-analyzers    comma-separated subset of analyzers to run (default
//	              all); an unknown name is a usage error. Directives for
//	              analyzers outside the subset are neither applied nor
//	              judged stale.
//
// With no arguments (or "./...") the whole module is linted. Other
// arguments restrict output to packages whose module-relative directory
// equals or sits under one of the given prefixes ("internal/core",
// "cmd/...").
//
// Exit status: 0 when clean, 1 when any non-suppressed diagnostic was
// reported, 2 on usage or load errors.
package main

import (
	"flag"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"uavdc/internal/errw"
	"uavdc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uavlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("C", ".", "module root to lint")
		jsonOut  = fs.Bool("json", false, "emit a uavdc-lint/2 JSON report")
		showAll  = fs.Bool("all", false, "also print suppressed diagnostics")
		summary  = fs.Bool("summary", false, "append a one-line finding/timing summary")
		listOnly = fs.Bool("list", false, "list the analyzers (name order) and exit")
		subset   = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	outw, errs := errw.New(stdout), errw.New(stderr)
	analyzers := lint.All()
	sort.Slice(analyzers, func(i, j int) bool { return analyzers[i].Name < analyzers[j].Name })
	if *subset != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		seen := map[string]bool{}
		for _, name := range strings.Split(*subset, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				errs.Printf("uavlint: -analyzers: unknown analyzer %q (run uavlint -list for the suite)\n", name)
				return 2
			}
			if !seen[name] {
				seen[name] = true
				picked = append(picked, a)
			}
		}
		if len(picked) == 0 {
			errs.Printf("uavlint: -analyzers: empty subset\n")
			return 2
		}
		analyzers = picked
	}
	if *listOnly {
		for _, a := range analyzers {
			outw.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		if outw.Err() != nil {
			return 2
		}
		return 0
	}

	start := time.Now() //uavdc:allow nodeterminism wall time only feeds the lint report's elapsed field, never planner output
	mod, err := lint.Load(*dir)
	if err != nil {
		errs.Printf("uavlint: %v\n", err)
		return 2
	}
	diags, timings := lint.RunTimed(mod, analyzers)
	elapsed := time.Since(start) //uavdc:allow nodeterminism wall time only feeds the lint report's elapsed field, never planner output
	diags = filterByPrefix(diags, fs.Args())

	if *jsonOut {
		if err := lint.WriteJSON(stdout, mod.Path, diags, elapsed); err != nil {
			errs.Printf("uavlint: %v\n", err)
			return 2
		}
	} else {
		shown := diags
		if !*showAll {
			shown = lint.Active(diags)
		}
		if err := lint.WriteText(stdout, shown); err != nil {
			errs.Printf("uavlint: %v\n", err)
			return 2
		}
		if *summary {
			if err := lint.WriteSummary(stdout, diags, timings, elapsed); err != nil {
				errs.Printf("uavlint: %v\n", err)
				return 2
			}
		}
	}
	if active := lint.Active(diags); len(active) > 0 {
		errs.Printf("uavlint: %d non-suppressed diagnostic(s)\n", len(active))
		return 1
	}
	return 0
}

// filterByPrefix restricts diagnostics to the given module-relative
// path prefixes. No arguments, ".", or "./..." mean everything; a
// trailing "/..." on a prefix is accepted and ignored.
func filterByPrefix(diags []lint.Diagnostic, patterns []string) []lint.Diagnostic {
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimPrefix(p, "./")
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		if p == "" || p == "." {
			return diags
		}
		prefixes = append(prefixes, p)
	}
	if len(prefixes) == 0 {
		return diags
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		for _, p := range prefixes {
			if d.Path == p || strings.HasPrefix(d.Path, p+"/") {
				out = append(out, d)
				break
			}
		}
	}
	return out
}
