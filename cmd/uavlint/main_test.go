package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "../../internal/lint/testdata/src"

func TestRunFixtureText(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", fixture}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (fixture has active diagnostics); stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"floateq", "nodeterminism", "obsnames", "errdrop", "directive"} {
		if !strings.Contains(out, want+": ") {
			t.Errorf("text output missing %s diagnostics:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(suppressed:") {
		t.Error("suppressed diagnostics shown without -all")
	}
	if !strings.Contains(stderr.String(), "non-suppressed diagnostic") {
		t.Errorf("stderr summary missing: %q", stderr.String())
	}
}

func TestRunFixtureAll(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "-all"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "(suppressed:") {
		t.Error("-all did not include suppressed diagnostics")
	}
}

func TestRunFixtureJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var rep struct {
		Schema string `json:"schema"`
		Active int    `json:"active"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v", err)
	}
	if rep.Schema != "uavdc-lint/1" || rep.Active == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRunFixturePathFilter(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "internal/core/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if strings.Contains(stdout.String(), "internal/app/") {
		t.Errorf("path filter leaked internal/app diagnostics:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "internal/core/") {
		t.Errorf("path filter dropped internal/core diagnostics:\n%s", stdout.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"nodeterminism", "floateq", "obsnames", "errdrop"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunBadDir(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", filepath.Join(fixture, "no-such-dir")}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if stderr.Len() == 0 {
		t.Error("no error message on stderr")
	}
}
