package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

const fixture = "../../internal/lint/testdata/src"

var update = flag.Bool("update", false, "rewrite testdata/*.golden")

// checkGolden compares got against testdata/<name>.golden, rewriting it
// under -update. Wall-time is the one nondeterministic field in uavlint
// output, so callers normalise it first.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from golden.\n--- want (%s)\n%s--- got\n%s", path, want, got)
	}
}

var (
	elapsedJSON    = regexp.MustCompile(`"elapsed_ms": [0-9.eE+-]+`)
	elapsedSummary = regexp.MustCompile(`in [0-9]+ms`)
	// msTimes normalises every wall-time figure in the summary line —
	// the total and the per-analyzer breakdown.
	msTimes = regexp.MustCompile(`\b[0-9]+ms\b`)
)

func TestRunFixtureText(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", fixture}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (fixture has active diagnostics); stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"floateq", "nodeterminism", "obsnames", "errdrop", "unitsafety",
		"locksafety", "golifecycle", "wirefmt", "pureplan", "directive"} {
		if !strings.Contains(out, want+": ") {
			t.Errorf("text output missing %s diagnostics:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(suppressed:") {
		t.Error("suppressed diagnostics shown without -all")
	}
	if !strings.Contains(stderr.String(), "non-suppressed diagnostic") {
		t.Errorf("stderr summary missing: %q", stderr.String())
	}
}

func TestRunFixtureAll(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "-all"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "(suppressed:") {
		t.Error("-all did not include suppressed diagnostics")
	}
}

func TestRunFixtureJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var rep struct {
		Schema    string         `json:"schema"`
		Active    int            `json:"active"`
		Counts    map[string]int `json:"counts"`
		ElapsedMS float64        `json:"elapsed_ms"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v", err)
	}
	if rep.Schema != "uavdc-lint/2" || rep.Active == 0 {
		t.Errorf("report = %+v", rep)
	}
	for _, name := range []string{"nodeterminism", "floateq", "obsnames", "errdrop", "unitsafety",
		"locksafety", "golifecycle", "wirefmt", "pureplan", "directive"} {
		if rep.Counts[name] == 0 {
			t.Errorf("counts missing %s: %v", name, rep.Counts)
		}
	}
	if rep.ElapsedMS <= 0 {
		t.Errorf("elapsed_ms = %v, want > 0", rep.ElapsedMS)
	}
	checkGolden(t, "json", elapsedJSON.ReplaceAllString(stdout.String(), `"elapsed_ms": 0`))
}

func TestRunFixtureSummary(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "-summary"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "uavlint: ") || !elapsedSummary.MatchString(last) {
		t.Fatalf("summary line malformed: %q", last)
	}
	if !strings.Contains(last, "(analyzers:") {
		t.Fatalf("summary line missing the per-analyzer timing clause: %q", last)
	}
	checkGolden(t, "summary", msTimes.ReplaceAllString(last, "0ms")+"\n")
}

func TestRunFixturePathFilter(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "internal/core/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if strings.Contains(stdout.String(), "internal/app/") {
		t.Errorf("path filter leaked internal/app diagnostics:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "internal/core/") {
		t.Errorf("path filter dropped internal/core diagnostics:\n%s", stdout.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n") {
		names = append(names, strings.Fields(line)[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list not sorted by name: %v", names)
	}
	for _, name := range []string{"nodeterminism", "floateq", "obsnames", "errdrop", "unitsafety",
		"locksafety", "golifecycle", "wirefmt", "pureplan"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, stdout.String())
		}
	}
	checkGolden(t, "list", stdout.String())
}

// TestRunAnalyzersSubset: -analyzers restricts the run to the named
// analyzers. Directives for analyzers outside the subset must be
// neither "unknown analyzer" errors nor stale reports — a subset run
// cannot judge them.
func TestRunAnalyzersSubset(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "-analyzers", "errdrop,floateq"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{"nodeterminism", "obsnames", "unitsafety", "locksafety",
		"golifecycle", "wirefmt", "pureplan"} {
		if strings.Contains(out, " "+name+": ") {
			t.Errorf("-analyzers errdrop,floateq leaked %s diagnostics:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "errdrop: ") || !strings.Contains(out, "floateq: ") {
		t.Errorf("subset output missing the requested analyzers:\n%s", out)
	}
	for _, name := range []string{"nodeterminism", "obsnames", "pureplan", "wirefmt"} {
		if strings.Contains(out, "unknown analyzer \""+name+"\"") {
			t.Errorf("directives for non-run analyzer %s misreported as unknown (the full registry defines them):\n%s", name, out)
		}
	}
	// The fixture's stale floateq directive is judged (floateq ran); the
	// live nodeterminism/pureplan directives must not be called stale.
	if !strings.Contains(out, "uavdc:allow floateq suppressed nothing") {
		t.Errorf("stale floateq directive not reported in a run that includes floateq:\n%s", out)
	}
	if strings.Contains(out, "uavdc:allow nodeterminism suppressed nothing") ||
		strings.Contains(out, "uavdc:allow pureplan suppressed nothing") {
		t.Errorf("directives for analyzers outside the subset judged stale:\n%s", out)
	}
}

// TestRunAnalyzersUnknown: an unknown name in -analyzers is a usage
// error, exit 2, before any loading happens.
func TestRunAnalyzersUnknown(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "-analyzers", "errdrop,nosuchanalyzer"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "nosuchanalyzer"`) {
		t.Errorf("stderr = %q, want unknown-analyzer usage error", stderr.String())
	}
}

// TestRunAnalyzersEmpty: an all-whitespace subset is a usage error.
func TestRunAnalyzersEmpty(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixture, "-analyzers", " , "}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "empty subset") {
		t.Errorf("stderr = %q, want empty-subset usage error", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunBadDir(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", filepath.Join(fixture, "no-such-dir")}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if stderr.Len() == 0 {
		t.Error("no error message on stderr")
	}
}
