// Command uavobs analyzes uavdc-oplog/1 request op-logs (see
// EXPERIMENTS.md; produced by uavserve -oplog and served live at the
// daemon's /debug/oplog endpoint).
//
// Usage:
//
//	uavobs summary [-top k] [-json] oplog.jsonl    aggregate one op-log
//	uavobs diff a.jsonl b.jsonl                    compare two op-logs (modulo wall fields)
//	uavobs tail [-follow] [-interval d] [-max n] <oplog.jsonl | http://host/debug/oplog>
//
// summary reports per-disposition counts, nearest-rank latency
// quantiles over the caller-observed elapsed times, and the top-k
// hottest canonical keys. diff strips wall fields (queue_s, plan_s,
// elapsed_s, worker) from both sides and compares record by record —
// two runs of the same request sequence must diff equal regardless of
// GOMAXPROCS — exiting 1 with the first divergence and per-disposition
// deltas when they differ. tail pretty-prints records one per line;
// with -follow it polls the source for records past the last printed
// sequence number, against either a growing file or the daemon's
// /debug/oplog?after= ring endpoint. "-" reads from stdin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"uavdc/internal/errw"
	"uavdc/internal/oplog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args with its own
// FlagSets, reads/writes the given streams, and returns the process
// exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	outw, errs := errw.New(stdout), errw.New(stderr)
	if len(args) == 0 {
		errs.Println("uavobs: usage: uavobs <summary|diff|tail> [flags] args")
		return 2
	}
	switch args[0] {
	case "summary":
		return runSummary(args[1:], stdin, outw, errs)
	case "diff":
		return runDiff(args[1:], stdin, outw, errs)
	case "tail":
		return runTail(args[1:], stdin, outw, errs)
	default:
		errs.Printf("uavobs: unknown subcommand %q (want summary, diff, or tail)\n", args[0])
		return 2
	}
}

// loadOplog reads an op-log from a path or "-" for stdin.
func loadOplog(path string, stdin io.Reader) (oplog.Header, []oplog.Record, error) {
	if path == "-" {
		return oplog.Read(stdin)
	}
	return oplog.ReadFile(path)
}

func runSummary(args []string, stdin io.Reader, outw, errs *errw.Writer) int {
	fs := flag.NewFlagSet("uavobs summary", flag.ContinueOnError)
	fs.SetOutput(errs)
	var (
		top    = fs.Int("top", 5, "number of hottest keys to list (0 = none)")
		asJSON = fs.Bool("json", false, "emit the summary as a single JSON object")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		errs.Println("uavobs summary: want exactly one op-log path (or -)")
		return 2
	}
	hdr, recs, err := loadOplog(fs.Arg(0), stdin)
	if err != nil {
		errs.Println("uavobs:", err)
		return 2
	}
	s := oplog.Summarize(recs, *top)
	if *asJSON {
		b, err := json.Marshal(s)
		if err != nil {
			errs.Println("uavobs:", err)
			return 2
		}
		outw.Println(string(b))
	} else {
		writeSummaryText(outw, hdr, s)
	}
	if outw.Err() != nil {
		return 2
	}
	return 0
}

// writeSummaryText renders a Summary as aligned text with
// deterministically ordered dispositions.
func writeSummaryText(outw *errw.Writer, hdr oplog.Header, s oplog.Summary) {
	outw.Printf("records %d", s.Records)
	if hdr.Strip {
		outw.Print("  (stripped: wall fields zeroed)")
	}
	outw.Println()
	for _, d := range []string{oplog.DispHit, oplog.DispMiss, oplog.DispCoalesced,
		oplog.DispRejected, oplog.DispTimeout, oplog.DispError} {
		if n, ok := s.ByDisp[d]; ok {
			outw.Printf("  %-10s %d\n", d, n)
		}
	}
	outw.Printf("latency  p50 %.6fs  p90 %.6fs  p99 %.6fs\n", s.P50S, s.P90S, s.P99S)
	if len(s.TopKeys) > 0 {
		outw.Println("hottest keys:")
		for _, kc := range s.TopKeys {
			outw.Printf("  %-64s %d\n", kc.Key, kc.Count)
		}
	}
}

func runDiff(args []string, stdin io.Reader, outw, errs *errw.Writer) int {
	fs := flag.NewFlagSet("uavobs diff", flag.ContinueOnError)
	fs.SetOutput(errs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		errs.Println("uavobs diff: want exactly two op-log paths")
		return 2
	}
	_, a, err := loadOplog(fs.Arg(0), stdin)
	if err != nil {
		errs.Println("uavobs:", err)
		return 2
	}
	_, b, err := loadOplog(fs.Arg(1), stdin)
	if err != nil {
		errs.Println("uavobs:", err)
		return 2
	}
	d := oplog.Diff(a, b)
	if d.Equal {
		outw.Printf("op-logs are identical modulo wall fields (%d records)\n", len(a))
		if outw.Err() != nil {
			return 2
		}
		return 0
	}
	outw.Print(d.Detail)
	return 1
}

func runTail(args []string, stdin io.Reader, outw, errs *errw.Writer) int {
	fs := flag.NewFlagSet("uavobs tail", flag.ContinueOnError)
	fs.SetOutput(errs)
	var (
		follow   = fs.Bool("follow", false, "keep polling the source for new records")
		interval = fs.Duration("interval", 500*time.Millisecond, "poll interval with -follow")
		maxn     = fs.Int("max", 0, "stop after printing this many records (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		errs.Println("uavobs tail: want exactly one op-log path, -, or /debug/oplog URL")
		return 2
	}
	src := fs.Arg(0)
	isURL := strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://")
	if src == "-" && *follow {
		errs.Println("uavobs tail: -follow cannot read from stdin")
		return 2
	}

	printed := 0
	var lastSeq int64
	for {
		var recs []oplog.Record
		var err error
		if isURL {
			recs, err = fetchOplog(src, lastSeq)
		} else {
			_, recs, err = loadOplog(src, stdin)
		}
		if err != nil {
			errs.Println("uavobs:", err)
			return 2
		}
		for _, r := range recs {
			// File re-reads return the whole log; skip already-printed
			// records so -follow emits each sequence number once.
			if r.Seq <= lastSeq {
				continue
			}
			lastSeq = r.Seq
			printRecord(outw, r)
			printed++
			if *maxn > 0 && printed >= *maxn {
				if outw.Err() != nil {
					return 2
				}
				return 0
			}
		}
		if !*follow {
			break
		}
		time.Sleep(*interval)
	}
	if outw.Err() != nil {
		return 2
	}
	return 0
}

// fetchOplog pulls records past `after` from a daemon's /debug/oplog
// ring endpoint.
func fetchOplog(rawURL string, after int64) ([]oplog.Record, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	q := u.Query()
	q.Set("after", strconv.FormatInt(after, 10))
	u.RawQuery = q.Encode()
	resp, err := http.Get(u.String())
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }() // read errors surface via oplog.Read
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("%s: status %d: %s", u.String(), resp.StatusCode, strings.TrimSpace(string(body)))
	}
	_, recs, err := oplog.Read(resp.Body)
	return recs, err
}

// printRecord renders one op-log record as a fixed-width line.
func printRecord(outw *errw.Writer, r oplog.Record) {
	key := r.Key
	if len(key) > 12 {
		key = key[:12]
	}
	if key == "" {
		key = "-"
	}
	outw.Printf("#%-6d %-9s %3d %-12s queue %8.3fms  plan %8.3fms  elapsed %8.3fms  w%d  cache %d",
		r.Seq, r.Disp, r.Status, key, r.QueueS*1e3, r.PlanS*1e3, r.ElapsedS*1e3, r.Worker, r.CacheLen)
	if r.Evicted > 0 {
		outw.Printf("  evicted %d", r.Evicted)
	}
	outw.Println()
}
