package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"uavdc/internal/oplog"
)

// sampleLog is a small fixed record mix: 3 hits on key a, 1 miss on a,
// 1 miss on b, 1 rejection.
func sampleLog() []oplog.Record {
	return []oplog.Record{
		{Seq: 1, Key: "aaaa1111aaaa1111", Disp: oplog.DispMiss, Status: 200, PlanS: 0.010, ElapsedS: 0.011, Worker: 1, CacheLen: 1},
		{Seq: 2, Key: "aaaa1111aaaa1111", Disp: oplog.DispHit, Status: 200, ElapsedS: 0.001, CacheLen: 1},
		{Seq: 3, Key: "bbbb2222bbbb2222", Disp: oplog.DispMiss, Status: 200, PlanS: 0.020, ElapsedS: 0.022, Worker: 2, CacheLen: 2, Evicted: 1},
		{Seq: 4, Key: "aaaa1111aaaa1111", Disp: oplog.DispHit, Status: 200, ElapsedS: 0.002, CacheLen: 2},
		{Seq: 5, Key: "aaaa1111aaaa1111", Disp: oplog.DispHit, Status: 200, ElapsedS: 0.003, CacheLen: 2},
		{Seq: 6, Disp: oplog.DispRejected, Status: 503, ElapsedS: 0.0005, CacheLen: 2},
	}
}

// writeLog writes records as a uavdc-oplog/1 file and returns its path.
func writeLog(t *testing.T, dir, name string, recs []oplog.Record) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := oplog.NewWriter(f, 0, false)
	for _, r := range recs {
		if !w.Record(r) {
			t.Fatalf("record %d dropped while writing fixture", r.Seq)
		}
	}
	if err := w.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runObs(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, strings.NewReader(""), &out, &errb)
	return code, out.String(), errb.String()
}

func TestSummaryText(t *testing.T) {
	path := writeLog(t, t.TempDir(), "a.jsonl", sampleLog())
	code, out, errb := runObs(t, "summary", "-top", "2", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{
		"records 6",
		"hit        3",
		"miss       2",
		"rejected   1",
		"latency  p50 0.002000s  p90 0.022000s  p99 0.022000s",
		"hottest keys:",
		"aaaa1111aaaa1111",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// top 2 but only ranked keys appear; the hottest first.
	ai := strings.Index(out, "aaaa1111aaaa1111")
	bi := strings.Index(out, "bbbb2222bbbb2222")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("hottest-key ordering wrong (a@%d b@%d):\n%s", ai, bi, out)
	}
}

func TestSummaryJSON(t *testing.T) {
	path := writeLog(t, t.TempDir(), "a.jsonl", sampleLog())
	code, out, errb := runObs(t, "summary", "-json", "-top", "1", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	var s oplog.Summary
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if s.Records != 6 || s.ByDisp[oplog.DispHit] != 3 || s.P50S != 0.002 {
		t.Errorf("summary = %+v", s)
	}
	if len(s.TopKeys) != 1 || s.TopKeys[0].Key != "aaaa1111aaaa1111" || s.TopKeys[0].Count != 4 {
		t.Errorf("top keys = %+v", s.TopKeys)
	}
}

func TestSummaryStdin(t *testing.T) {
	path := writeLog(t, t.TempDir(), "a.jsonl", sampleLog())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"summary", "-"}, strings.NewReader(string(data)), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "records 6") {
		t.Errorf("stdin summary:\n%s", out.String())
	}
}

func TestDiffEqualModuloWallAndDivergent(t *testing.T) {
	dir := t.TempDir()
	a := writeLog(t, dir, "a.jsonl", sampleLog())

	// Same sequence with different wall fields must diff equal.
	warped := sampleLog()
	for i := range warped {
		warped[i].QueueS += 1.5
		warped[i].PlanS *= 3
		warped[i].ElapsedS += 0.25
		warped[i].Worker += 7
	}
	b := writeLog(t, dir, "b.jsonl", warped)
	code, out, errb := runObs(t, "diff", a, b)
	if code != 0 {
		t.Fatalf("wall-warped diff: exit %d, stderr: %s\n%s", code, errb, out)
	}
	if !strings.Contains(out, "identical modulo wall fields (6 records)") {
		t.Errorf("diff output: %s", out)
	}

	// A changed disposition must diff non-equal with a detail line.
	diverged := sampleLog()
	diverged[3].Disp = oplog.DispCoalesced
	c := writeLog(t, dir, "c.jsonl", diverged)
	code, out, _ = runObs(t, "diff", a, c)
	if code != 1 {
		t.Fatalf("divergent diff: exit %d, want 1", code)
	}
	for _, want := range []string{"record 3 diverges", "disposition coalesced: 0 vs 1", "disposition hit: 3 vs 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff detail missing %q:\n%s", want, out)
		}
	}
}

func TestTailFile(t *testing.T) {
	path := writeLog(t, t.TempDir(), "a.jsonl", sampleLog())
	code, out, errb := runObs(t, "tail", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "#1") || !strings.Contains(lines[0], "miss") ||
		!strings.Contains(lines[0], "aaaa1111aaaa") {
		t.Errorf("first line: %q", lines[0])
	}
	if !strings.Contains(lines[2], "evicted 1") {
		t.Errorf("eviction not rendered: %q", lines[2])
	}
	if !strings.Contains(lines[5], " - ") {
		t.Errorf("keyless record should render a dash: %q", lines[5])
	}

	code, out, _ = runObs(t, "tail", "-max", "2", path)
	if code != 0 {
		t.Fatalf("-max exit %d", code)
	}
	if n := strings.Count(out, "\n"); n != 2 {
		t.Errorf("-max 2 printed %d lines:\n%s", n, out)
	}
}

// TestTailFollowHTTP polls a /debug/oplog-style endpoint: the first
// poll serves two records, later polls serve the rest, and the client
// must advance ?after= past what it has printed.
func TestTailFollowHTTP(t *testing.T) {
	recs := sampleLog()
	var (
		mu     sync.Mutex
		afters []int64
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		after, err := strconv.ParseInt(r.URL.Query().Get("after"), 10, 64)
		if err != nil {
			t.Errorf("missing/bad after param: %v", err)
		}
		mu.Lock()
		afters = append(afters, after)
		poll := len(afters)
		mu.Unlock()
		enc := json.NewEncoder(w)
		enc.Encode(oplog.Header{Schema: oplog.Schema})
		visible := 2 // first poll: two records
		if poll > 1 {
			visible = len(recs)
		}
		for _, rec := range recs[:visible] {
			if rec.Seq > after {
				enc.Encode(rec)
			}
		}
	}))
	defer ts.Close()

	code, out, errb := runObs(t, "tail", "-follow", "-interval", "1ms", "-max", "6", ts.URL)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for i := 1; i <= 6; i++ {
		if !strings.Contains(out, fmt.Sprintf("#%-6d", i)) {
			t.Errorf("missing record %d:\n%s", i, out)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(afters) < 2 || afters[0] != 0 || afters[1] != 2 {
		t.Errorf("after progression = %v, want [0 2 ...]", afters)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, errb := runObs(t); code != 2 || !strings.Contains(errb, "usage") {
		t.Errorf("no args: code %d, stderr %q", code, errb)
	}
	if code, _, errb := runObs(t, "bogus"); code != 2 || !strings.Contains(errb, "unknown subcommand") {
		t.Errorf("bogus subcommand: code %d, stderr %q", code, errb)
	}
	if code, _, _ := runObs(t, "summary"); code != 2 {
		t.Errorf("summary without path: code %d", code)
	}
	if code, _, _ := runObs(t, "diff", "only-one"); code != 2 {
		t.Errorf("diff with one path: code %d", code)
	}
	if code, _, _ := runObs(t, "summary", filepath.Join(t.TempDir(), "missing.jsonl")); code != 2 {
		t.Errorf("missing file: code %d", code)
	}
	if code, _, errb := runObs(t, "tail", "-follow", "-"); code != 2 || !strings.Contains(errb, "stdin") {
		t.Errorf("tail -follow -: code %d, stderr %q", code, errb)
	}
}
