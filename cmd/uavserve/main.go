// Command uavserve runs planning as a service: a JSON HTTP daemon
// (uavdc-serve/1) over a content-addressed plan cache. Identical plan
// requests — same canonical instance, any field order — hash to the
// same key, so repeats are served from a bounded LRU cache, identical
// in-flight requests coalesce onto one planner execution, and a full
// worker queue rejects new misses with explicit backpressure instead of
// buffering unboundedly. Every response body is bit-identical to a
// direct uavdc.Plan call; cache disposition travels in headers.
//
// Usage:
//
//	uavserve [flags]
//
//	-addr        listen address (default 127.0.0.1:8080)
//	-cache       plan cache capacity in entries (default 1024)
//	-workers     planner worker goroutines (default 4)
//	-queue       pending-plan queue slots before backpressure (default 64)
//	-timeout     per-request deadline (default 0 = none)
//	-trace       stream uavdc-trace/1 spans (JSONL) to this file
//	-strip-times omit wall-clock fields from the streamed trace
//	-oplog       stream the uavdc-oplog/1 request op-log (JSONL) to this
//	             file (analyze with uavobs); logging is async and never
//	             backpressures planning — overflow is counted in
//	             serve.oplog.dropped, not buffered
//	-oplog-buffer op-log writer buffer in records (default 1024)
//	-oplog-strip zero the op-log's wall-clock fields (deterministic mode)
//	-sample      rolling-window sample interval feeding /debug/window
//	             (default 1s; 0 disables the sampler)
//	-smoke N     skip the listener: start the daemon on a loopback port,
//	             fire N requests at it from concurrent clients, verify
//	             every 200 body against a direct plan, then exit non-zero
//	             unless the hit rate is positive and no request failed
//	             for any reason other than backpressure
//	-preset      smoke instance preset (default reduced)
//	-distinct    smoke: distinct instances in the request mix (default 8)
//	-clients     smoke: concurrent client goroutines (default 8)
//
// Endpoints: POST /plan, GET /metrics (obs counter text), GET /healthz
// (uavdc-health/1), GET /debug/window (uavdc-window/1), GET
// /debug/runtime (uavdc-runtime/1), GET /debug/oplog (uavdc-oplog/1
// ring, ?after= for tailing).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"uavdc"
	"uavdc/internal/errw"
	"uavdc/internal/experiments"
	"uavdc/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// presetConfig resolves a preset name to its configuration.
func presetConfig(name string) (experiments.Config, bool) {
	switch name {
	case "tiny":
		return experiments.Tiny(), true
	case "reduced":
		return experiments.Reduced(), true
	case "paper":
		return experiments.Paper(), true
	case "papertight":
		return experiments.PaperTight(), true
	case "full":
		return experiments.Full(), true
	}
	return experiments.Config{}, false
}

// run is the testable entry point: it parses args with its own FlagSet,
// writes to the given streams, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uavserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		cache      = fs.Int("cache", 1024, "plan cache capacity in entries (negative disables)")
		workers    = fs.Int("workers", 4, "planner worker goroutines")
		queue      = fs.Int("queue", 64, "pending-plan queue slots before backpressure")
		timeout    = fs.Duration("timeout", 0, "per-request deadline (0 = none)")
		tracePath  = fs.String("trace", "", "stream uavdc-trace/1 spans (JSONL) to this file")
		stripTimes = fs.Bool("strip-times", false, "omit wall-clock fields from the streamed trace")
		oplogPath  = fs.String("oplog", "", "stream the uavdc-oplog/1 request op-log (JSONL) to this file")
		oplogBuf   = fs.Int("oplog-buffer", 0, "op-log writer buffer in records (0 = default 1024)")
		oplogStrip = fs.Bool("oplog-strip", false, "zero the op-log's wall-clock fields")
		sample     = fs.Duration("sample", time.Second, "rolling-window sample interval (0 disables)")
		smoke      = fs.Int("smoke", 0, "loopback load smoke with this many requests, then exit")
		preset     = fs.String("preset", "reduced", "smoke preset: tiny | reduced | paper | papertight | full")
		distinct   = fs.Int("distinct", 8, "smoke: distinct instances in the request mix")
		clients    = fs.Int("clients", 8, "smoke: concurrent client goroutines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	outw, errs := errw.New(stdout), errw.New(stderr)

	cfg := serve.Config{
		CacheSize:      *cache,
		Workers:        *workers,
		QueueSize:      *queue,
		Timeout:        *timeout,
		StripTimes:     *stripTimes,
		OpLogBuffer:    *oplogBuf,
		OpLogStrip:     *oplogStrip,
		SampleInterval: *sample,
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			errs.Println("uavserve:", err)
			return 1
		}
		defer func() { _ = f.Close() }() // best-effort flush; span writes already surfaced their errors
		cfg.TraceWriter = f
	}
	if *oplogPath != "" {
		f, err := os.Create(*oplogPath)
		if err != nil {
			errs.Println("uavserve:", err)
			return 1
		}
		// Closed after serve.Close has drained the async writer (defers
		// run last-in-first-out behind the shutdown paths below).
		defer func() { _ = f.Close() }()
		cfg.OpLog = f
	}

	if *smoke > 0 {
		pcfg, ok := presetConfig(*preset)
		if !ok {
			errs.Printf("uavserve: unknown preset %q\n", *preset)
			return 2
		}
		if code := runSmoke(cfg, pcfg, *smoke, *distinct, *clients, outw, errs); code != 0 {
			return code
		}
		if outw.Err() != nil {
			return 1
		}
		return 0
	}

	s := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		errs.Println("uavserve:", err)
		return 1
	}
	outw.Printf("uavserve listening on %s\n", ln.Addr())
	srv := &http.Server{Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() {
		defer serveWG.Done()
		errc <- srv.Serve(ln) // buffered: the send never blocks the drain
	}()

	select {
	case err := <-errc:
		errs.Println("uavserve:", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	outw.Println("uavserve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		errs.Println("uavserve:", err)
		return 1
	}
	serveWG.Wait() // Serve has returned ErrServerClosed by now
	if err := s.Close(drainCtx); err != nil {
		errs.Println("uavserve:", err)
		return 1
	}
	if outw.Err() != nil {
		return 1
	}
	return 0
}

// runSmoke is the loopback load gate `make ci` runs: the daemon on an
// ephemeral port, total requests round-robined over distinct instances
// from concurrent clients through real HTTP. Every 200 body must be
// bit-identical to a direct uavdc.Plan call, backpressure (503 with the
// backpressure code) is the only tolerated failure, and the warm
// repeats must produce a positive cache hit rate.
func runSmoke(cfg serve.Config, pcfg experiments.Config, total, distinct, clients int, outw, errs *errw.Writer) int {
	if distinct <= 0 {
		distinct = 8
	}
	if total < distinct {
		total = distinct
	}
	if clients <= 0 {
		clients = 8
	}
	reqs, err := experiments.ServeRequests(pcfg, distinct)
	if err != nil {
		errs.Println("uavserve:", err)
		return 1
	}
	bodies := make([][]byte, distinct)
	payloads := make([][]byte, distinct)
	for i, r := range reqs {
		key, err := r.Key()
		if err != nil {
			errs.Println("uavserve:", err)
			return 1
		}
		res, err := uavdc.Plan(r.Scenario.Scenario(), r.UAV.UAV(), r.Options.Options())
		if err != nil {
			errs.Println("uavserve:", err)
			return 1
		}
		if bodies[i], err = serve.EncodeResult(key, res); err != nil {
			errs.Println("uavserve:", err)
			return 1
		}
		if payloads[i], err = json.Marshal(r); err != nil {
			errs.Println("uavserve:", err)
			return 1
		}
	}

	s := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		errs.Println("uavserve:", err)
		return 1
	}
	srv := &http.Server{Handler: s.Handler()}
	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() {
		defer serveWG.Done()
		_ = srv.Serve(ln) // returns ErrServerClosed on the Shutdown below
	}()
	url := "http://" + ln.Addr().String() + "/plan"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

	var (
		next, backpressured, failed atomic.Int64
		wg                          sync.WaitGroup
	)
	start := time.Now() //uavdc:allow nodeterminism smoke throughput is reported wall time
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				r := i % distinct
				resp, err := client.Post(url, "application/json", bytes.NewReader(payloads[r]))
				if err != nil {
					failed.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				_ = resp.Body.Close() // read errors are what matter; rerr carries them
				switch {
				case rerr != nil:
					failed.Add(1)
				case resp.StatusCode == 200:
					if !bytes.Equal(body, bodies[r]) {
						failed.Add(1)
					}
				case resp.StatusCode == 503 && bytes.Contains(body, []byte(serve.ErrBackpressure)):
					backpressured.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start) //uavdc:allow nodeterminism smoke throughput is reported wall time

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		errs.Println("uavserve:", err)
		return 1
	}
	serveWG.Wait() // Serve has returned ErrServerClosed by now
	if err := s.Close(shutCtx); err != nil {
		errs.Println("uavserve:", err)
		return 1
	}

	counters := s.Snapshot().Counters
	hits := counters[serve.CounterHits]
	outw.Printf("smoke: %d requests over %d instances from %d clients in %.3f s (%.0f req/s)\n",
		total, distinct, clients, wall.Seconds(), float64(total)/wall.Seconds())
	outw.Printf("smoke: hits %d  misses %d  coalesced %d  backpressured %d  plans %d\n",
		hits, counters[serve.CounterMisses], counters[serve.CounterCoalesced],
		backpressured.Load(), counters[serve.CounterPlans])
	if n := failed.Load(); n > 0 {
		errs.Printf("uavserve: smoke failed: %d non-backpressure errors or parity mismatches\n", n)
		return 1
	}
	if hits == 0 {
		errs.Println("uavserve: smoke failed: cache hit rate is zero")
		return 1
	}
	outw.Println("smoke: ok (all bodies bit-identical to direct plans)")
	return 0
}
