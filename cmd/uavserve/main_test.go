package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uavdc/internal/oplog"
)

// TestRunSmoke drives the loopback load gate end to end: real HTTP, a
// tiny preset, repeats over two distinct instances. Exit 0 asserts
// every body matched a direct plan and the cache hit rate was positive.
func TestRunSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-smoke", "24", "-preset", "tiny", "-distinct", "2", "-clients", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{"smoke: ok", "misses 2", "plans 2"} {
		if !strings.Contains(text, want) {
			t.Errorf("stdout missing %q:\n%s", want, text)
		}
	}
	// Concurrent clients may coalesce onto a cold flight instead of
	// hitting the cache, so only the split between the two is
	// scheduling-dependent: warm dispositions must total 22.
	var hits, coalesced int
	for _, line := range strings.Split(text, "\n") {
		if n, err := fmt.Sscanf(line, "smoke: hits %d  misses %d  coalesced %d",
			&hits, new(int), &coalesced); err == nil && n == 3 {
			break
		}
	}
	if hits+coalesced != 22 {
		t.Errorf("hits %d + coalesced %d != 22 warm requests:\n%s", hits, coalesced, text)
	}
}

// TestRunSmokeStreamsTrace: the -trace flag captures uavdc-trace/1 JSONL
// spans for the smoke's requests.
func TestRunSmokeStreamsTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out, errb bytes.Buffer
	code := run([]string{"-smoke", "4", "-preset", "tiny", "-distinct", "2", "-clients", "2",
		"-strip-times", "-trace", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.TrimSpace(string(b))
	if !strings.Contains(text, `"serve/request"`) {
		t.Fatalf("trace has no serve/request spans:\n%s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSONL trace line %q: %v", line, err)
		}
	}
}

// TestRunRejectsBadArgs: flag and preset errors exit 2 without starting
// a listener.
func TestRunRejectsBadArgs(t *testing.T) {
	cases := [][]string{
		{"-smoke", "8", "-preset", "nope"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
}

// TestRunBadListenAddr: an unroutable listen address fails cleanly.
func TestRunBadListenAddr(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:0"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb.String())
	}
}

// TestRunSmokeWritesOplog: the -oplog flag captures one uavdc-oplog/1
// record per smoke request, drained completely on shutdown.
func TestRunSmokeWritesOplog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "oplog.jsonl")
	var out, errb bytes.Buffer
	code := run([]string{"-smoke", "8", "-preset", "tiny", "-distinct", "2", "-clients", "2",
		"-oplog", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	hdr, recs, err := oplog.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != oplog.Schema || hdr.Strip {
		t.Fatalf("header = %+v", hdr)
	}
	if len(recs) != 8 {
		t.Fatalf("%d op-log records, want one per smoke request (8)", len(recs))
	}
	seqs := map[int64]bool{}
	for _, r := range recs {
		if r.Status != 200 || r.Key == "" {
			t.Errorf("record %+v: want a keyed 200 in an unthrottled smoke", r)
		}
		seqs[r.Seq] = true
	}
	for i := int64(1); i <= 8; i++ {
		if !seqs[i] {
			t.Errorf("sequence number %d missing from op-log", i)
		}
	}
	s := oplog.Summarize(recs, 0)
	if s.ByDisp[oplog.DispMiss] != 2 {
		t.Errorf("by_disp = %v, want exactly 2 misses over 2 distinct instances", s.ByDisp)
	}
	warm := s.ByDisp[oplog.DispHit] + s.ByDisp[oplog.DispCoalesced] + s.ByDisp[oplog.DispMiss]
	if warm != 8 {
		t.Errorf("dispositions sum to %d, want 8: %v", warm, s.ByDisp)
	}
}
