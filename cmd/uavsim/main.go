// Command uavsim generates a random IoT sensor field, plans a UAV data
// collection mission with the chosen algorithm, verifies every plan in the
// flight simulator, and prints the mission summary. It can plan a single
// tour, a multi-UAV fleet mission, or a multi-sortie campaign, and can
// render the mission as SVG.
//
// Usage:
//
//	uavsim [flags]
//
//	-sensors   number of aggregate sensor nodes (default 60)
//	-side      region edge length in metres (default 350)
//	-seed      scenario seed (default 1)
//	-algorithm no-overlap | greedy | partial | baseline (default partial)
//	-delta     grid resolution δ in metres (default R0/5)
//	-k         sojourn partition K for the partial algorithm (default 4)
//	-capacity  battery capacity in joules (default 2e4)
//	-altitude  hovering altitude H in metres (default 0: paper abstraction)
//	-shannon   distance-dependent Shannon uplink instead of constant B
//	-fleet     plan for this many UAVs (default 1)
//	-sorties   fly repeated sorties until drained (0 = single flight)
//	-adaptive  fly the plan with the adaptive executor (replanning, fly-home reserve)
//	-faults    fault schedule spec, e.g. "wind:legs=0-,factor=1.3"; "default"
//	           selects the built-in schedule; implies -adaptive
//	-margin    replan trigger as a fraction of capacity (default 0.02)
//	-noise     per-segment power noise spread (adaptive mode)
//	-noiseseed noise stream seed (adaptive mode)
//	-stops     print the individual hovering stops
//	-svg       write the mission rendering to this file
//	-map       print a terminal map of the mission
//	-save      write the generated scenario as JSON and exit
//	-load      load a scenario JSON instead of generating one
//	-trace     write the mission flight-recorder trace (uavdc-trace/1
//	           JSONL; analyze with uavtrace) to this file
//	-tracedetail  include per-candidate scan events in the trace
//	-cpuprofile   write a pprof CPU profile to this file
//	-memprofile   write a pprof heap profile to this file
//
// Examples:
//
//	uavsim -sensors 500 -side 1000 -capacity 3e5 -algorithm greedy -delta 10
//	uavsim -fleet 3 -svg fleet.svg
//	uavsim -sorties 20 -algorithm baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"uavdc"
	"uavdc/internal/errw"
	"uavdc/internal/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args with its own FlagSet,
// writes to the given streams, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("uavsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sensors   = fs.Int("sensors", 60, "number of aggregate sensor nodes")
		side      = fs.Float64("side", 350, "region edge length (m)")
		seed      = fs.Uint64("seed", 1, "scenario seed")
		algorithm = fs.String("algorithm", "partial", "no-overlap | greedy | partial | baseline")
		delta     = fs.Float64("delta", 0, "grid resolution δ (m); 0 = R0/5")
		k         = fs.Int("k", 4, "sojourn partition K (partial algorithm)")
		capacity  = fs.Float64("capacity", 2e4, "battery capacity (J)")
		altitude  = fs.Float64("altitude", 0, "hovering altitude H (m)")
		shannon   = fs.Bool("shannon", false, "distance-dependent Shannon uplink")
		fleet     = fs.Int("fleet", 1, "number of UAVs")
		sorties   = fs.Int("sorties", 0, "max sorties; 0 = single flight")
		adaptive  = fs.Bool("adaptive", false, "fly the plan with the adaptive executor")
		faultSpec = fs.String("faults", "", `fault schedule spec ("default" = built-in); implies -adaptive`)
		margin    = fs.Float64("margin", 0, "replan trigger as a fraction of capacity (0 = default 2%)")
		noise     = fs.Float64("noise", 0, "per-segment power noise spread (adaptive mode)")
		noiseSeed = fs.Int64("noiseseed", 1, "noise stream seed (adaptive mode)")
		stops     = fs.Bool("stops", false, "print individual stops")
		svgPath   = fs.String("svg", "", "write mission SVG to this file")
		asciiMap  = fs.Bool("map", false, "print a terminal map of the mission")
		savePath  = fs.String("save", "", "write the generated scenario as JSON and exit")
		loadPath  = fs.String("load", "", "load a scenario JSON instead of generating one")
		tracePath = fs.String("trace", "", "write the flight-recorder trace (JSONL) to this file")
		traceDet  = fs.Bool("tracedetail", false, "include per-candidate scan events in the trace")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	outw, errs := errw.New(stdout), errw.New(stderr)

	fail := func(err error) int {
		errs.Println("uavsim:", err)
		return 1
	}

	if *cpuProf != "" || *memProf != "" {
		stop, err := prof.Start(*cpuProf, *memProf)
		if err != nil {
			return fail(err)
		}
		defer func() {
			if err := stop(); err != nil {
				errs.Println("uavsim:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	var sc uavdc.Scenario
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return fail(err)
		}
		sc, err = uavdc.ReadScenario(f)
		if err != nil {
			_ = f.Close() // best-effort cleanup on the error path
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	} else {
		sc = uavdc.RandomScenario(*sensors, *side, *seed)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return fail(err)
		}
		if err := sc.WriteJSON(f); err != nil {
			_ = f.Close() // best-effort cleanup on the error path
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		outw.Printf("saved scenario to %s (%d sensors)\n", *savePath, len(sc.Sensors))
		if outw.Err() != nil {
			return 1
		}
		return 0
	}
	uav := uavdc.DefaultUAV()
	uav.CapacityJ = *capacity
	opts := uavdc.Options{
		Algorithm:    uavdc.Algorithm(*algorithm),
		DeltaM:       *delta,
		K:            *k,
		AltitudeM:    *altitude,
		ShannonRadio: *shannon,
	}
	var trc *uavdc.Trace
	if *tracePath != "" {
		trc = uavdc.NewTrace()
		trc.SetDetail(*traceDet)
		opts.Trace = trc
	}

	total := sc.TotalDataMB()
	outw.Printf("scenario   %d sensors in %.0f×%.0f m, %.1f GB stored, depot (%.0f, %.0f)\n",
		len(sc.Sensors), sc.RegionSideM, sc.RegionSideM, total/1024, sc.DepotX, sc.DepotY)
	outw.Printf("uav        %.0f W hover, %.0f W travel, %.0f m/s, %.3g J battery\n",
		uav.HoverPowerW, uav.TravelPowerW, uav.SpeedMS, uav.CapacityJ)

	adaptiveMode := *adaptive || *faultSpec != ""
	if adaptiveMode && (*fleet > 1 || *sorties > 0) {
		return fail(fmt.Errorf("-adaptive/-faults apply to single-tour missions, not -fleet/-sorties"))
	}

	switch {
	case adaptiveMode:
		res, err := uavdc.Execute(sc, uav, uavdc.ExecuteOptions{
			Options:     opts,
			FaultSpec:   *faultSpec,
			MarginFrac:  *margin,
			NoiseSpread: *noise,
			NoiseSeed:   *noiseSeed,
		})
		if err != nil {
			return fail(err)
		}
		outw.Printf("adaptive   planned %.1f MB, collected %.1f MB (%.1f%% retained)\n",
			res.PlannedMB, res.CollectedMB, 100*res.RetainedFrac())
		outw.Printf("faults     %d applied, %d replans, %d stops skipped",
			res.FaultsApplied, res.Replans, res.StopsSkipped)
		if res.Diverted {
			outw.Print(", diverted home")
		}
		outw.Println()
		outw.Printf("energy     %.0f J of %.0f J; %.0f J left at depot; max deviation %.0f J\n",
			res.EnergyJ, uav.CapacityJ, res.FinalBatteryJ, res.MaxDeviationJ)
		outw.Printf("flight     %.0f m; hover %.0f s; mission %.0f s\n",
			res.FlightDistanceM, res.HoverTimeS, res.MissionTimeS)

	case *sorties > 0:
		camp, err := uavdc.PlanCampaign(sc, uav, opts, *sorties)
		if err != nil {
			return fail(err)
		}
		outw.Printf("campaign   %d sorties, %.1f MB collected (%.1f%%)",
			len(camp.SortieMB), camp.CollectedMB, 100*camp.CollectedMB/total)
		if camp.Drained {
			outw.Println(", field drained")
		} else {
			outw.Printf(", %.1f MB remaining\n", camp.RemainingMB)
		}
		for i, v := range camp.SortieMB {
			outw.Printf("  sortie %2d  %10.1f MB\n", i+1, v)
		}

	case *fleet > 1:
		fr, err := uavdc.PlanFleet(sc, uav, opts, *fleet)
		if err != nil {
			return fail(err)
		}
		outw.Printf("fleet      %d UAVs, %.1f MB collected (%.1f%%)\n",
			len(fr.PerUAV), fr.CollectedMB, 100*fr.CollectedMB/total)
		for u, r := range fr.PerUAV {
			outw.Printf("  uav %d    %8.1f MB, %2d stops, %6.0f J, %5.0f s\n",
				u+1, r.CollectedMB, len(r.Stops), r.EnergyJ, r.MissionTimeS)
		}
		if err := writeSVG(outw, *svgPath, func(f *os.File) error { return fr.WriteSVG(f, sc.CoverRadiusM) }); err != nil {
			return fail(err)
		}

	default:
		res, err := uavdc.Plan(sc, uav, opts)
		if err != nil {
			return fail(err)
		}
		outw.Printf("plan       %s: %d stops\n", res.Algorithm, len(res.Stops))
		outw.Printf("collected  %.1f MB (%.1f%% of stored)\n", res.CollectedMB, 100*res.CollectedMB/total)
		outw.Printf("energy     %.0f J of %.0f J (%.1f%%)\n", res.EnergyJ, uav.CapacityJ, 100*res.EnergyJ/uav.CapacityJ)
		outw.Printf("flight     %.0f m in %.0f s; hover %.0f s; mission %.0f s\n",
			res.FlightDistanceM, res.FlightDistanceM/uav.SpeedMS, res.HoverTimeS, res.MissionTimeS)
		if *stops {
			outw.Println("\n  #    x (m)    y (m)  sojourn (s)  collected (MB)")
			for i, st := range res.Stops {
				outw.Printf("%3d %8.1f %8.1f %12.2f %15.1f\n", i+1, st.X, st.Y, st.SojournS, st.CollectedMB)
			}
		}
		if err := writeSVG(outw, *svgPath, func(f *os.File) error { return res.WriteSVG(f, sc.CoverRadiusM) }); err != nil {
			return fail(err)
		}
		if *asciiMap {
			outw.Println()
			if err := res.WriteASCII(stdout, 70); err != nil {
				return fail(err)
			}
		}
	}
	if trc != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail(err)
		}
		if err := trc.WriteJSONL(f, false); err != nil {
			_ = f.Close() // best-effort cleanup on the error path
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		outw.Printf("trace      %s (%d records)\n", *tracePath, trc.Len())
	}
	if outw.Err() != nil {
		return 1
	}
	return 0
}

func writeSVG(outw *errw.Writer, path string, render func(*os.File) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		_ = f.Close() // best-effort cleanup on the error path
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	outw.Printf("rendered   %s\n", path)
	return outw.Err()
}
