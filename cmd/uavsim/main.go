// Command uavsim generates a random IoT sensor field, plans a UAV data
// collection mission with the chosen algorithm, verifies every plan in the
// flight simulator, and prints the mission summary. It can plan a single
// tour, a multi-UAV fleet mission, or a multi-sortie campaign, and can
// render the mission as SVG.
//
// Usage:
//
//	uavsim [flags]
//
//	-sensors   number of aggregate sensor nodes (default 60)
//	-side      region edge length in metres (default 350)
//	-seed      scenario seed (default 1)
//	-algorithm no-overlap | greedy | partial | baseline (default partial)
//	-delta     grid resolution δ in metres (default R0/5)
//	-k         sojourn partition K for the partial algorithm (default 4)
//	-capacity  battery capacity in joules (default 2e4)
//	-altitude  hovering altitude H in metres (default 0: paper abstraction)
//	-shannon   distance-dependent Shannon uplink instead of constant B
//	-fleet     plan for this many UAVs (default 1)
//	-sorties   fly repeated sorties until drained (0 = single flight)
//	-stops     print the individual hovering stops
//	-svg       write the mission rendering to this file
//	-map       print a terminal map of the mission
//	-save      write the generated scenario as JSON and exit
//	-load      load a scenario JSON instead of generating one
//
// Examples:
//
//	uavsim -sensors 500 -side 1000 -capacity 3e5 -algorithm greedy -delta 10
//	uavsim -fleet 3 -svg fleet.svg
//	uavsim -sorties 20 -algorithm baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"uavdc"
)

func main() {
	var (
		sensors   = flag.Int("sensors", 60, "number of aggregate sensor nodes")
		side      = flag.Float64("side", 350, "region edge length (m)")
		seed      = flag.Uint64("seed", 1, "scenario seed")
		algorithm = flag.String("algorithm", "partial", "no-overlap | greedy | partial | baseline")
		delta     = flag.Float64("delta", 0, "grid resolution δ (m); 0 = R0/5")
		k         = flag.Int("k", 4, "sojourn partition K (partial algorithm)")
		capacity  = flag.Float64("capacity", 2e4, "battery capacity (J)")
		altitude  = flag.Float64("altitude", 0, "hovering altitude H (m)")
		shannon   = flag.Bool("shannon", false, "distance-dependent Shannon uplink")
		fleet     = flag.Int("fleet", 1, "number of UAVs")
		sorties   = flag.Int("sorties", 0, "max sorties; 0 = single flight")
		stops     = flag.Bool("stops", false, "print individual stops")
		svgPath   = flag.String("svg", "", "write mission SVG to this file")
		asciiMap  = flag.Bool("map", false, "print a terminal map of the mission")
		savePath  = flag.String("save", "", "write the generated scenario as JSON and exit")
		loadPath  = flag.String("load", "", "load a scenario JSON instead of generating one")
	)
	flag.Parse()

	var sc uavdc.Scenario
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		exitOn(err)
		sc, err = uavdc.ReadScenario(f)
		exitOn(err)
		exitOn(f.Close())
	} else {
		sc = uavdc.RandomScenario(*sensors, *side, *seed)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		exitOn(err)
		exitOn(sc.WriteJSON(f))
		exitOn(f.Close())
		fmt.Printf("saved scenario to %s (%d sensors)\n", *savePath, len(sc.Sensors))
		return
	}
	uav := uavdc.DefaultUAV()
	uav.CapacityJ = *capacity
	opts := uavdc.Options{
		Algorithm:    uavdc.Algorithm(*algorithm),
		DeltaM:       *delta,
		K:            *k,
		AltitudeM:    *altitude,
		ShannonRadio: *shannon,
	}

	total := sc.TotalDataMB()
	fmt.Printf("scenario   %d sensors in %.0f×%.0f m, %.1f GB stored, depot (%.0f, %.0f)\n",
		len(sc.Sensors), sc.RegionSideM, sc.RegionSideM, total/1024, sc.DepotX, sc.DepotY)
	fmt.Printf("uav        %.0f W hover, %.0f W travel, %.0f m/s, %.3g J battery\n",
		uav.HoverPowerW, uav.TravelPowerW, uav.SpeedMS, uav.CapacityJ)

	switch {
	case *sorties > 0:
		camp, err := uavdc.PlanCampaign(sc, uav, opts, *sorties)
		exitOn(err)
		fmt.Printf("campaign   %d sorties, %.1f MB collected (%.1f%%)",
			len(camp.SortieMB), camp.CollectedMB, 100*camp.CollectedMB/total)
		if camp.Drained {
			fmt.Println(", field drained")
		} else {
			fmt.Printf(", %.1f MB remaining\n", camp.RemainingMB)
		}
		for i, v := range camp.SortieMB {
			fmt.Printf("  sortie %2d  %10.1f MB\n", i+1, v)
		}

	case *fleet > 1:
		fr, err := uavdc.PlanFleet(sc, uav, opts, *fleet)
		exitOn(err)
		fmt.Printf("fleet      %d UAVs, %.1f MB collected (%.1f%%)\n",
			len(fr.PerUAV), fr.CollectedMB, 100*fr.CollectedMB/total)
		for u, r := range fr.PerUAV {
			fmt.Printf("  uav %d    %8.1f MB, %2d stops, %6.0f J, %5.0f s\n",
				u+1, r.CollectedMB, len(r.Stops), r.EnergyJ, r.MissionTimeS)
		}
		writeSVG(*svgPath, func(f *os.File) error { return fr.WriteSVG(f, sc.CoverRadiusM) })

	default:
		res, err := uavdc.Plan(sc, uav, opts)
		exitOn(err)
		fmt.Printf("plan       %s: %d stops\n", res.Algorithm, len(res.Stops))
		fmt.Printf("collected  %.1f MB (%.1f%% of stored)\n", res.CollectedMB, 100*res.CollectedMB/total)
		fmt.Printf("energy     %.0f J of %.0f J (%.1f%%)\n", res.EnergyJ, uav.CapacityJ, 100*res.EnergyJ/uav.CapacityJ)
		fmt.Printf("flight     %.0f m in %.0f s; hover %.0f s; mission %.0f s\n",
			res.FlightDistanceM, res.FlightDistanceM/uav.SpeedMS, res.HoverTimeS, res.MissionTimeS)
		if *stops {
			fmt.Println("\n  #    x (m)    y (m)  sojourn (s)  collected (MB)")
			for i, st := range res.Stops {
				fmt.Printf("%3d %8.1f %8.1f %12.2f %15.1f\n", i+1, st.X, st.Y, st.SojournS, st.CollectedMB)
			}
		}
		writeSVG(*svgPath, func(f *os.File) error { return res.WriteSVG(f, sc.CoverRadiusM) })
		if *asciiMap {
			fmt.Println()
			exitOn(res.WriteASCII(os.Stdout, 70))
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "uavsim:", err)
		os.Exit(1)
	}
}

func writeSVG(path string, render func(*os.File) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	exitOn(err)
	exitOn(render(f))
	exitOn(f.Close())
	fmt.Printf("rendered   %s\n", path)
}
