package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tinyArgs(extra ...string) []string {
	base := []string{"-sensors", "12", "-side", "150", "-seed", "3", "-capacity", "5e3"}
	return append(base, extra...)
}

func TestRunSingleMission(t *testing.T) {
	var out, errb strings.Builder
	code := run(tinyArgs("-algorithm", "greedy", "-stops"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"scenario", "uav", "plan", "collected", "energy", "flight"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFleetAndCampaign(t *testing.T) {
	var out, errb strings.Builder
	if code := run(tinyArgs("-fleet", "2"), &out, &errb); code != 0 {
		t.Fatalf("fleet exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fleet      2 UAVs") {
		t.Errorf("fleet summary missing:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run(tinyArgs("-sorties", "3", "-algorithm", "baseline"), &out, &errb); code != 0 {
		t.Fatalf("campaign exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "campaign") {
		t.Errorf("campaign summary missing:\n%s", out.String())
	}
}

func TestRunAdaptiveMission(t *testing.T) {
	var out, errb strings.Builder
	code := run(tinyArgs("-adaptive"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"adaptive", "retained", "faults", "replans", "left at depot"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Fault-free adaptive execution retains the full planned volume.
	if !strings.Contains(got, "100.0% retained") {
		t.Errorf("fault-free adaptive run did not retain 100%%:\n%s", got)
	}
}

func TestRunAdaptiveWithFaults(t *testing.T) {
	var out, errb strings.Builder
	// -faults implies -adaptive.
	code := run(tinyArgs("-faults", "default", "-noise", "0.1"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "adaptive") {
		t.Errorf("adaptive summary missing:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run(tinyArgs("-faults", "wind:factor=2.0:::"), &out, &errb); code != 1 {
		t.Errorf("corrupt fault spec: exit %d, want 1", code)
	}

	out.Reset()
	errb.Reset()
	if code := run(tinyArgs("-adaptive", "-fleet", "2"), &out, &errb); code != 1 {
		t.Errorf("-adaptive with -fleet: exit %d, want 1", code)
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sc.json")

	var out, errb strings.Builder
	if code := run(tinyArgs("-save", path), &out, &errb); code != 0 {
		t.Fatalf("save exit %d, stderr: %s", code, errb.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-load", path, "-capacity", "5e3", "-algorithm", "partial"}, &out, &errb); code != 0 {
		t.Fatalf("load exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "scenario   12 sensors") {
		t.Errorf("loaded scenario summary wrong:\n%s", out.String())
	}
}

func TestRunSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mission.svg")
	var out, errb strings.Builder
	if code := run(tinyArgs("-svg", path), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("not an SVG file")
	}
}

func TestRunTraceAndProfiles(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "mission.jsonl")
	cpuPath := filepath.Join(dir, "cpu.prof")
	memPath := filepath.Join(dir, "mem.prof")
	var out, errb strings.Builder
	code := run(tinyArgs("-faults", "default",
		"-trace", tracePath, "-tracedetail",
		"-cpuprofile", cpuPath, "-memprofile", memPath), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "trace      "+tracePath) {
		t.Errorf("trace confirmation missing:\n%s", out.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema":"uavdc-trace/1"`, "mission/takeoff", "mission/return"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace missing %q", want)
		}
	}
	for _, p := range []string{cpuPath, memPath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-load", filepath.Join(t.TempDir(), "missing.json")}, &out, &errb); code != 1 {
		t.Errorf("missing -load file: exit %d, want 1", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-bogus-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run(tinyArgs("-algorithm", "nonsense"), &out, &errb); code != 1 {
		t.Errorf("bad algorithm: exit %d, want 1", code)
	}
}
