// Command uavtrace analyzes uavdc-trace/1 JSONL mission traces (see
// EXPERIMENTS.md; produced by uavsim/uavexp/uavbench -trace).
//
// Usage:
//
//	uavtrace [flags] trace.jsonl            summarize one trace
//	uavtrace [flags] a.jsonl b.jsonl        diff two traces (modulo times)
//
//	-top     number of slowest spans to list (default 10)
//	-chrome  also convert the (single) input to a Chrome trace-event JSON
//	         file at this path, loadable in chrome://tracing / Perfetto
//
// The summary reports per-phase time attribution (total and self), the
// top-k slowest spans, and the mission event timeline with per-leg energy
// deltas. The diff compares two traces record by record ignoring wall
// times — two runs of the same instance at different worker counts must
// compare equal — and exits 1 when they differ, listing the first
// divergence and per-record-name count deltas. "-" reads a trace from
// stdin.
package main

import (
	"flag"
	"io"
	"os"
	"sort"
	"strings"

	"uavdc/internal/errw"
	"uavdc/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args with its own FlagSet,
// reads/writes the given streams, and returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uavtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		top    = fs.Int("top", 10, "number of slowest spans to list")
		chrome = fs.String("chrome", "", "convert the input to a Chrome trace-event JSON file at this path")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	outw, errs := errw.New(stdout), errw.New(stderr)

	load := func(path string) (trace.Trace, error) {
		if path == "-" {
			return trace.ReadJSONL(stdin)
		}
		f, err := os.Open(path)
		if err != nil {
			return trace.Trace{}, err
		}
		defer func() { _ = f.Close() }() // read-only; close cannot lose data
		return trace.ReadJSONL(f)
	}

	switch fs.NArg() {
	case 1:
		tr, err := load(fs.Arg(0))
		if err != nil {
			errs.Println("uavtrace:", err)
			return 2
		}
		if *chrome != "" {
			f, err := os.Create(*chrome)
			if err != nil {
				errs.Println("uavtrace:", err)
				return 2
			}
			if err := trace.WriteChromeTrace(f, tr); err != nil {
				_ = f.Close() // best-effort cleanup; the write already failed
				errs.Println("uavtrace:", err)
				return 2
			}
			if err := f.Close(); err != nil {
				errs.Println("uavtrace:", err)
				return 2
			}
			outw.Printf("wrote %s\n", *chrome)
		}
		var sb strings.Builder
		trace.Summarize(tr, *top).WriteText(&sb)
		outw.Print(sb.String())
		if outw.Err() != nil {
			return 2
		}
		return 0
	case 2:
		a, err := load(fs.Arg(0))
		if err != nil {
			errs.Println("uavtrace:", err)
			return 2
		}
		b, err := load(fs.Arg(1))
		if err != nil {
			errs.Println("uavtrace:", err)
			return 2
		}
		d := trace.Diff(a, b)
		if d.Equal {
			outw.Printf("traces are identical modulo timestamps (%d records)\n", len(a.Records))
			return 0
		}
		outw.Printf("traces differ at record %d: %s\n", d.FirstDivergence, d.Detail)
		if len(d.CountDelta) > 0 {
			keys := make([]string, 0, len(d.CountDelta))
			for k := range d.CountDelta {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			outw.Println("record count deltas (a - b):")
			for _, k := range keys {
				outw.Printf("  %-40s %+d\n", k, d.CountDelta[k])
			}
		}
		return 1
	default:
		errs.Println("usage: uavtrace [-top n] [-chrome out.json] trace.jsonl [other.jsonl]")
		return 2
	}
}
