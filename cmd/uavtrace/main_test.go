package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uavdc"
)

// writeTrace plans (or adaptively executes) a small deterministic mission
// and writes its trace to a temp file.
func writeTrace(t *testing.T, dir, name, faults string, seed uint64) string {
	t.Helper()
	sc := uavdc.RandomScenario(15, 180, seed)
	uav := uavdc.DefaultUAV()
	uav.CapacityJ = 6e3
	trc := uavdc.NewTrace()
	if faults == "" {
		if _, err := uavdc.Plan(sc, uav, uavdc.Options{Trace: trc}); err != nil {
			t.Fatal(err)
		}
	} else {
		opts := uavdc.ExecuteOptions{FaultSpec: faults}
		opts.Trace = trc
		if _, err := uavdc.Execute(sc, uav, opts); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trc.WriteJSONL(f, false); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummary(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "a.jsonl", "default", 1)
	var out, errb strings.Builder
	if code := run([]string{"-top", "3", path}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"records:", "phases (by total time):", "slowest spans:", "mission timeline:", "takeoff", "return"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestDiffEqualAndDivergent(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.jsonl", "default", 1)
	b := writeTrace(t, dir, "b.jsonl", "default", 1)
	var out, errb strings.Builder
	if code := run([]string{a, b}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("identical traces: exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "identical modulo timestamps") {
		t.Errorf("diff output: %s", out.String())
	}

	c := writeTrace(t, dir, "c.jsonl", "default", 2) // different scenario
	out.Reset()
	errb.Reset()
	if code := run([]string{a, c}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("divergent traces: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "traces differ at record") {
		t.Errorf("diff output: %s", out.String())
	}
}

func TestChromeConversion(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "a.jsonl", "", 1)
	chrome := filepath.Join(dir, "a.chrome.json")
	var out, errb strings.Builder
	if code := run([]string{"-chrome", chrome, path}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "[") || !strings.Contains(string(data), `"ph"`) {
		t.Errorf("not a Chrome trace array: %.80s", data)
	}
}

func TestStdinAndErrors(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "a.jsonl", "", 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-"}, strings.NewReader(string(data)), &out, &errb); code != 0 {
		t.Fatalf("stdin: exit %d, stderr: %s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(dir, "missing.jsonl")}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if code := run([]string{"-"}, strings.NewReader("not json\n"), &out, &errb); code != 2 {
		t.Errorf("corrupt input: exit %d, want 2", code)
	}
}
