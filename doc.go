// Package uavdc plans data-collection tours for an energy-constrained UAV
// over a field of IoT sensor nodes, reproducing "Data Collection of IoT
// Devices Using an Energy-Constrained UAV" (Li, Liang, Xu, Jia — IPDPS
// Workshops 2020).
//
// The UAV starts at a depot with a battery of E joules, flies between
// hovering locations (grid-square centres at resolution δ), and while
// hovering collects data simultaneously from every sensor within coverage
// radius R0, each uploading at bandwidth B. The goal is a closed tour
// maximising the collected volume subject to the energy budget, where
// hovering costs η_h J/s and flying costs η_t J/s at constant speed.
//
// This package is the high-level facade: build a Scenario, pick a UAV and
// an Algorithm, call Plan. The full machinery — candidate generation,
// the orienteering reduction, Christofides tours, blossom matching, the
// flight simulator and the figure-regeneration harness — lives in the
// internal packages and is exercised through the cmd/ tools and examples/.
//
//	sc := uavdc.RandomScenario(500, 1000, 42)
//	res, err := uavdc.Plan(sc, uavdc.DefaultUAV(), uavdc.Options{
//		Algorithm: uavdc.AlgorithmPartial,
//		DeltaM:    10,
//		K:         4,
//	})
//
// Algorithms: AlgorithmNoOverlap is the paper's Algorithm 1 (orienteering
// reduction, disjoint coverage); AlgorithmGreedy is Algorithm 2 (ρ-ratio
// greedy with overlapping coverage); AlgorithmPartial is Algorithm 3
// (partial collection with K sojourn levels); AlgorithmBaseline is the
// evaluation benchmark (TSP over all sensors, pruned to budget);
// AlgorithmLNS layers destroy-and-repair search over Algorithm 3.
//
// Beyond single tours, PlanFleet splits the field among several UAVs,
// PlanCampaign flies repeated sorties until the field drains, and Options
// toggles the extensions: hovering altitude and Shannon distance-dependent
// uplink (AltitudeM, ShannonRadio), continuous stop refinement (Refine),
// and deterministic multi-core planning (Parallel).
package uavdc
