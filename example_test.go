package uavdc_test

import (
	"fmt"

	"uavdc"
)

// The smallest end-to-end use: plan a partial-collection tour over a
// random field and report the verified outcome.
func Example() {
	scenario := uavdc.RandomScenario(40, 300, 1)
	uav := uavdc.DefaultUAV()
	uav.CapacityJ = 1e4

	result, err := uavdc.Plan(scenario, uav, uavdc.Options{
		Algorithm: uavdc.AlgorithmPartial,
		DeltaM:    25,
		K:         4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("collected %.0f%% of the field within the energy budget\n",
		100*result.CollectedMB/scenario.TotalDataMB())
	fmt.Printf("energy used: %.0f%% of capacity\n", 100*result.EnergyJ/uav.CapacityJ)
	// Output:
	// collected 74% of the field within the energy budget
	// energy used: 100% of capacity
}

// Scenarios round-trip through JSON for storage and replay.
func ExampleReadScenario() {
	var buf writerBuffer
	sc := uavdc.RandomScenario(3, 100, 7)
	if err := sc.WriteJSON(&buf); err != nil {
		panic(err)
	}
	back, err := uavdc.ReadScenario(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(back.Sensors), "sensors restored")
	// Output: 3 sensors restored
}

// writerBuffer is a minimal read/write buffer for the example.
type writerBuffer struct{ data []byte }

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writerBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}
