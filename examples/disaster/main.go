// Disaster response: repeated sorties over a damaged area. Sensors near
// the incident hotspots have accumulated far more observation data than the
// periphery, and the UAV must return to the depot to recharge between
// flights. The example runs a full campaign with internal/mission — plan,
// simulate, decrement, repeat until the field drains — and compares how
// many flights the partial-collection planner (Algorithm 3) needs against
// Algorithm 2 and the baseline.
package main

import (
	"fmt"
	"log"
	"math"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/mission"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
)

// buildField places 70 sensors in a 400 m field; data volumes decay with
// distance from two incident hotspots, so the workload is heavily skewed
// (unlike the paper's uniform draw — this exercises the planners on the
// kind of field the rescue application of the intro implies).
func buildField() *sensornet.Network {
	r := rng.New(99).Rand()
	hotspots := []geom.Point{geom.Pt(90, 310), geom.Pt(330, 120)}
	net := &sensornet.Network{
		Region:    geom.Square(400),
		Depot:     geom.Pt(200, 200),
		Bandwidth: 150,
		CommRange: 50,
	}
	for i := 0; i < 70; i++ {
		pos := geom.Pt(r.Float64()*400, r.Float64()*400)
		near := math.Inf(1)
		for _, h := range hotspots {
			if d := pos.Dist(h); d < near {
				near = d
			}
		}
		// 2 GB at a hotspot decaying to ~100 MB at 300 m.
		data := 100 + 1900*math.Exp(-near/120)
		net.Sensors = append(net.Sensors, sensornet.Sensor{Pos: pos, Data: data})
	}
	return net
}

func main() {
	field := buildField()
	fmt.Printf("incident field: 70 sensors, %.1f GB backlog, hotspot-skewed volumes\n\n", field.TotalData()/1024)

	for _, tc := range []struct {
		name    string
		planner core.Planner
		k       int
	}{
		{"algorithm3 (K=4)", &core.Algorithm3{}, 4},
		{"algorithm2", &core.Algorithm2{}, 1},
		{"baseline", &core.BenchmarkPlanner{}, 1},
	} {
		in := &core.Instance{
			Net:   buildField(),
			Model: energy.Default().WithCapacity(2.5e4),
			Delta: 10,
			K:     tc.k,
		}
		camp, err := mission.Run(in, tc.planner, mission.Options{})
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		fmt.Printf("%-18s %2d sorties to collect %.1f GB", tc.name, len(camp.Sorties), camp.Collected/1024)
		if len(camp.SortieVolumes) > 0 {
			fmt.Printf(" (first flight %.1f GB)", camp.SortieVolumes[0]/1024)
		}
		if !camp.Drained {
			fmt.Printf(" — %.1f GB unreachable", camp.Remaining/1024)
		}
		fmt.Println()
	}
	fmt.Println("\nfewer sorties means earlier situational awareness: the")
	fmt.Println("framework planners drain the hotspots in a fraction of the flights.")
}
