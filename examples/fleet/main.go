// Fleet mission: split a large field among several UAVs launched from one
// depot. The field is partitioned into balanced angular sectors and each
// UAV runs the paper's Algorithm 3 inside its sector — the cluster-first
// route-second pattern the paper's related work attributes to fleet
// designs. The example also renders the mission to fleet.svg, one colour
// per UAV.
package main

import (
	"fmt"
	"log"
	"os"

	"uavdc"
)

func main() {
	scenario := uavdc.RandomScenario(200, 700, 11)
	uav := uavdc.DefaultUAV()
	uav.CapacityJ = 4e4
	opts := uavdc.Options{Algorithm: uavdc.AlgorithmPartial, DeltaM: 20, K: 2}

	fmt.Printf("field: %d sensors, %.1f GB stored\n\n", len(scenario.Sensors), scenario.TotalDataMB()/1024)
	fmt.Printf("%5s %14s %10s\n", "fleet", "collected (GB)", "coverage")
	for _, size := range []int{1, 2, 3, 4} {
		fr, err := uavdc.PlanFleet(scenario, uav, opts, size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %14.1f %9.1f%%\n", size, fr.CollectedMB/1024,
			100*fr.CollectedMB/scenario.TotalDataMB())
		if size == 4 {
			f, err := os.Create("fleet.svg")
			if err != nil {
				log.Fatal(err)
			}
			if err := fr.WriteSVG(f, scenario.CoverRadiusM); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Println("\nwrote fleet.svg (one colour per UAV)")
		}
	}
}
