// Partial-collection study: how the sojourn partition K trades solution
// quality against planning time (the knob behind Fig. 4/5's Algorithm 3
// series and the paper's observation that larger K collects more because
// energy is planned at a finer grain — at sharply growing runtime).
package main

import (
	"fmt"
	"log"
	"time"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/simulate"
	"uavdc/internal/stats"
)

func main() {
	gen := sensornet.DefaultGenParams()
	gen.NumSensors = 60
	gen.Side = 350
	em := energy.Default().WithCapacity(1.2e4) // tight: ~40% of the field fits

	const instances = 5
	fmt.Printf("%4s %14s %14s %12s\n", "K", "collected (MB)", "vs K=1", "plan time")
	var base float64
	for _, k := range []int{1, 2, 4, 8, 16} {
		var vols []float64
		var elapsed time.Duration
		for i := 0; i < instances; i++ {
			net, err := sensornet.Generate(gen, rng.New(11).SplitN("net", i))
			if err != nil {
				log.Fatal(err)
			}
			in := &core.Instance{Net: net, Model: em, Delta: 15, K: k}
			start := time.Now() //uavdc:allow nodeterminism measured wall time is reported, never fed back into planning
			plan, err := (&core.Algorithm3{}).Plan(in)
			elapsed += time.Since(start) //uavdc:allow nodeterminism measured wall time is reported, never fed back into planning
			if err != nil {
				log.Fatal(err)
			}
			res := simulate.Run(net, em, plan, simulate.Options{})
			if !res.Completed {
				log.Fatalf("K=%d instance %d aborted: %s", k, i, res.AbortReason)
			}
			vols = append(vols, res.Collected)
		}
		mean := stats.Mean(vols)
		if k == 1 {
			base = mean
		}
		fmt.Printf("%4d %14.1f %+13.2f%% %12s\n",
			k, mean, 100*(mean-base)/base, (elapsed / instances).Round(time.Microsecond))
	}
	fmt.Println("\nK=1 is exactly Algorithm 2; the gain saturates within a few")
	fmt.Println("levels while planning cost keeps growing — the paper's Fig. 4 trade-off.")
}
