// Quickstart: generate a random IoT field, plan a collection tour with the
// partial-collection planner (the paper's Algorithm 3), and print the
// mission summary. This is the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"uavdc"
)

func main() {
	// 120 aggregate sensor nodes in a 500 m × 500 m field, each storing
	// 100–1000 MB of sensing data (the paper's distribution).
	scenario := uavdc.RandomScenario(120, 500, 42)

	// The paper's Phantom-4-class UAV, with a tenth of the default
	// battery so the tour is genuinely energy-constrained.
	uav := uavdc.DefaultUAV()
	uav.CapacityJ = 3e4

	result, err := uavdc.Plan(scenario, uav, uavdc.Options{
		Algorithm: uavdc.AlgorithmPartial,
		DeltaM:    10, // hovering-grid resolution δ
		K:         4,  // sojourn split granularity
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planned a %d-stop tour with %s\n", len(result.Stops), result.Algorithm)
	fmt.Printf("collected %.1f of %.1f GB (%.1f%%)\n",
		result.CollectedMB/1024, scenario.TotalDataMB()/1024,
		100*result.CollectedMB/scenario.TotalDataMB())
	fmt.Printf("energy    %.0f of %.0f J\n", result.EnergyJ, uav.CapacityJ)
	fmt.Printf("mission   %.0f m flight, %.0f s hover, %.0f s total\n",
		result.FlightDistanceM, result.HoverTimeS, result.MissionTimeS)
}
