// Smart-city metering: the scenario the paper's introduction motivates.
// Thousands of low-power meters forward their readings to a sparse layer of
// aggregate nodes (Section III-A); the aggregate layer is too sparse to
// relay anything to a base station, so a UAV must fly collection tours.
//
// This example uses the internal packages directly to show the full
// pipeline: device-level workload generation (meters forwarding to
// aggregates), connectivity analysis demonstrating why multi-hop relay
// fails, and a comparison of all four planners on the resulting field.
package main

import (
	"fmt"
	"log"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/simulate"
)

func main() {
	// 80 aggregate nodes in a 400 m × 400 m district; 15 meters per
	// aggregate on average, each contributing its reading backlog on top
	// of a 50 MB own-sensing baseline.
	gen := sensornet.DefaultGenParams()
	gen.NumSensors = 80
	gen.Side = 400
	net, devices, err := sensornet.GenerateWithDevices(gen, 15, 50, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}

	orphans := 0
	for _, a := range devices.AssignedTo {
		if a < 0 {
			orphans++
		}
	}
	fmt.Printf("district: %d meters → %d aggregate nodes (%d meters out of range)\n",
		len(devices.Positions), len(net.Sensors), orphans)
	fmt.Printf("stored:   %.1f GB awaiting collection\n", net.TotalData()/1024)
	fmt.Printf("network:  %d connected components at %g m radio range — multi-hop relay to a base station is impossible\n",
		net.ConnectedComponents(), net.CommRange)

	em := energy.Default().WithCapacity(3e4)
	planners := []core.Planner{
		&core.Algorithm1{},
		&core.Algorithm2{},
		&core.Algorithm3{},
		&core.BenchmarkPlanner{},
	}
	fmt.Printf("\n%-12s %10s %8s %10s %9s\n", "planner", "collected", "stops", "energy", "mission")
	for _, pl := range planners {
		in := &core.Instance{Net: net, Model: em, Delta: 10, K: 4}
		plan, err := pl.Plan(in)
		if err != nil {
			log.Fatalf("%s: %v", pl.Name(), err)
		}
		if err := core.ValidatePlan(net, em, in.EffectiveCoverRadius(), plan); err != nil {
			log.Fatalf("%s: invalid plan: %v", pl.Name(), err)
		}
		res := simulate.Run(net, em, plan, simulate.Options{})
		if !res.Completed {
			log.Fatalf("%s: mission aborted: %s", pl.Name(), res.AbortReason)
		}
		fmt.Printf("%-12s %8.1f GB %8d %8.0f J %7.0f s\n",
			pl.Name(), res.Collected/1024, len(plan.Stops), res.EnergyUsed, res.MissionTime)
	}
	fmt.Println("\nthe coverage-based planners collect several times what the")
	fmt.Println("one-sensor-per-stop baseline manages on the same battery.")
}
