package uavdc

import (
	"fmt"
	"runtime"

	"uavdc/internal/faults"
	"uavdc/internal/simulate"
	"uavdc/internal/trace"
)

// ExecuteOptions configures an adaptive mission execution: the plan is
// computed with the embedded planner Options, then flown under a declared
// fault schedule with mid-flight replanning.
type ExecuteOptions struct {
	Options
	// FaultSpec is the fault schedule in the textual grammar of
	// EXPERIMENTS.md ("wind:legs=0-,factor=1.25;upfail:stops=3-4", ...).
	// Empty executes fault-free; "default" selects the library's default
	// schedule.
	FaultSpec string
	// MarginFrac is the replan trigger threshold as a fraction of battery
	// capacity; 0 selects the default (2%).
	MarginFrac float64
	// NoiseSpread adds a per-segment multiplicative power disturbance
	// drawn uniformly from [1−spread, 1+spread]; 0 disables noise.
	NoiseSpread float64
	// NoiseSeed makes the disturbance sequence reproducible.
	NoiseSeed int64
}

// ExecuteResult summarises an adaptive mission execution.
type ExecuteResult struct {
	// PlannedMB is what the (fault-unaware) plan promised.
	PlannedMB float64
	// CollectedMB is what the adaptive execution actually gathered.
	CollectedMB float64
	// EnergyJ, FlightDistanceM, HoverTimeS, MissionTimeS describe the
	// executed mission.
	EnergyJ         float64
	FlightDistanceM float64
	HoverTimeS      float64
	MissionTimeS    float64
	// FinalBatteryJ is the battery back at the depot; the executor's
	// reachable-depot invariant keeps it non-negative under the declared
	// schedule.
	FinalBatteryJ float64
	// Replans counts mid-flight replans of the remaining tour.
	Replans int
	// FaultsApplied counts fault activations during the flight.
	FaultsApplied int
	// StopsSkipped counts planned stops abandoned to preserve the
	// fly-home reserve; Diverted is true when that happened.
	StopsSkipped int
	Diverted     bool
	// MaxDeviationJ is the largest gap observed between the plan's energy
	// accounting and the actual battery.
	MaxDeviationJ float64
}

// RetainedFrac returns CollectedMB/PlannedMB — the volume retained under
// the fault schedule relative to the fault-free promise (1 when nothing
// was planned).
func (r *ExecuteResult) RetainedFrac() float64 {
	if r.PlannedMB <= 0 {
		return 1
	}
	return r.CollectedMB / r.PlannedMB
}

// Execute plans a collection tour exactly like Plan, then flies it with the
// adaptive executor under the declared fault schedule: per-leg wind and
// hover surcharges, degraded or failed uploads, and no-hover zones, with
// the remaining tour replanned whenever the battery deviates from the
// plan's accounting by more than the margin. The executor always reserves
// the fly-home cost, so the mission ends at the depot with a non-negative
// battery regardless of the schedule. With an empty FaultSpec and zero
// NoiseSpread the execution reproduces the plan exactly.
func Execute(sc Scenario, uav UAV, opts ExecuteOptions) (*ExecuteResult, error) {
	spec := opts.FaultSpec
	if spec == "default" {
		spec = faults.DefaultSpec
	}
	var sched *faults.Schedule
	if spec != "" {
		var err error
		sched, err = faults.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("uavdc: %w", err)
		}
	}
	planned, err := Plan(sc, uav, opts.Options)
	if err != nil {
		return nil, err
	}
	in, err := sc.instance(uav, opts.Options)
	if err != nil {
		return nil, err
	}
	workers := 0
	if opts.Parallel {
		workers = runtime.NumCPU()
	}
	// The same recorder that captured the planning spans (inside Plan above)
	// captures the adaptive mission log and any replan spans.
	tr := opts.Trace.tracer()
	if tr.Enabled() {
		in.Obs = trace.With(in.Obs, tr)
	}
	sim := simulate.AdaptiveRun(in, planned.plan, simulate.AdaptiveOptions{
		Options: simulate.Options{
			Noise: simulate.Noise{Spread: opts.NoiseSpread, Seed: opts.NoiseSeed},
			Trace: tr,
		},
		Faults:  sched,
		Margin:  opts.MarginFrac,
		Workers: workers,
	})
	if !sim.Completed {
		// Only an instance whose vertical overhead exceeds the battery is
		// refused; Plan has already validated against that.
		return nil, fmt.Errorf("uavdc: adaptive execution refused: %s", sim.AbortReason)
	}
	return &ExecuteResult{
		PlannedMB:       planned.CollectedMB,
		CollectedMB:     sim.Collected,
		EnergyJ:         sim.EnergyUsed,
		FlightDistanceM: sim.FlightDistance,
		HoverTimeS:      sim.HoverTime,
		MissionTimeS:    sim.MissionTime,
		FinalBatteryJ:   sim.FinalBattery,
		Replans:         sim.Replans,
		FaultsApplied:   sim.FaultsApplied,
		StopsSkipped:    sim.StopsSkipped,
		Diverted:        sim.Diverted,
		MaxDeviationJ:   sim.MaxDeviation,
	}, nil
}
