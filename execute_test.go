package uavdc

import (
	"strings"
	"testing"
)

func TestExecuteFaultFreeMatchesPlan(t *testing.T) {
	sc := RandomScenario(15, 180, 4)
	uav := DefaultUAV()
	uav.CapacityJ = 6e3
	opts := Options{Algorithm: AlgorithmGreedy}

	planned, err := Plan(sc, uav, opts)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := Execute(sc, uav, ExecuteOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if exec.CollectedMB != planned.CollectedMB {
		t.Errorf("fault-free execution collected %v MB, plan promised %v MB",
			exec.CollectedMB, planned.CollectedMB)
	}
	if exec.Replans != 0 || exec.Diverted || exec.StopsSkipped != 0 {
		t.Errorf("fault-free execution replanned/diverted: %+v", exec)
	}
	if exec.RetainedFrac() != 1 {
		t.Errorf("retained fraction %v, want 1", exec.RetainedFrac())
	}
	if exec.FinalBatteryJ < 0 {
		t.Errorf("depot battery %v < 0", exec.FinalBatteryJ)
	}
}

func TestExecuteUnderDefaultFaults(t *testing.T) {
	sc := RandomScenario(15, 180, 4)
	uav := DefaultUAV()
	uav.CapacityJ = 6e3
	exec, err := Execute(sc, uav, ExecuteOptions{
		Options:     Options{Algorithm: AlgorithmPartial},
		FaultSpec:   "default",
		NoiseSpread: 0.1,
		NoiseSeed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exec.FinalBatteryJ < 0 {
		t.Errorf("depot battery %v < 0 under faults", exec.FinalBatteryJ)
	}
	if exec.FaultsApplied == 0 {
		t.Error("default schedule applied no faults")
	}
	if exec.EnergyJ > uav.CapacityJ+1e-6 {
		t.Errorf("drew %v J of %v", exec.EnergyJ, uav.CapacityJ)
	}
}

func TestExecuteRejectsCorruptFaultSpec(t *testing.T) {
	sc := RandomScenario(8, 120, 1)
	_, err := Execute(sc, DefaultUAV(), ExecuteOptions{FaultSpec: "wind:factor=:;"})
	if err == nil {
		t.Fatal("corrupt fault spec accepted")
	}
	if !strings.Contains(err.Error(), "uavdc:") {
		t.Errorf("error not wrapped: %v", err)
	}
}
