package uavdc

import (
	"strings"
	"testing"
)

// FuzzReadScenario hardens the scenario decoder: arbitrary bytes must
// either parse into a scenario that survives a planning round trip, or be
// rejected — never panic.
func FuzzReadScenario(f *testing.F) {
	var seedJSON strings.Builder
	_ = testScenarioForFuzz().WriteJSON(&seedJSON)
	f.Add(seedJSON.String())
	f.Add(`{}`)
	f.Add(`{"RegionSideM":-1}`)
	f.Add(`{"RegionSideM":100,"DepotX":50,"DepotY":50,"Sensors":[{"X":1,"Y":1,"DataMB":1e308}],"BandwidthMBps":1,"CoverRadiusM":10}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, data string) {
		sc, err := ReadScenario(strings.NewReader(data))
		if err != nil {
			return
		}
		// A scenario the decoder accepted must be internally consistent
		// enough to serialise back.
		var sb strings.Builder
		if err := sc.WriteJSON(&sb); err != nil {
			t.Fatalf("accepted scenario failed to re-encode: %v", err)
		}
		if _, err := ReadScenario(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("re-encoded scenario rejected: %v", err)
		}
	})
}

func testScenarioForFuzz() Scenario { return RandomScenario(5, 50, 1) }

// FuzzPlanSmallScenarios drives the whole pipeline with adversarial sensor
// placements and budgets: Plan must either error cleanly or return a
// simulator-verified result (verification is built into Plan).
func FuzzPlanSmallScenarios(f *testing.F) {
	f.Add(int64(1), uint8(4), float64(1e4))
	f.Add(int64(2), uint8(0), float64(0))
	f.Add(int64(3), uint8(9), float64(1e9))
	f.Fuzz(func(t *testing.T, seed int64, rawN uint8, capacity float64) {
		if capacity < 0 || capacity > 1e12 || capacity != capacity {
			return // invalid UAVs are rejected by construction; skip
		}
		n := int(rawN)%8 + 1
		sc := RandomScenario(n, 100, uint64(seed))
		uav := DefaultUAV()
		uav.CapacityJ = capacity
		res, err := Plan(sc, uav, Options{DeltaM: 20, K: 2})
		if err != nil {
			t.Fatalf("pipeline error on valid input: %v", err)
		}
		if res.CollectedMB > sc.TotalDataMB()+1e-6 {
			t.Fatalf("collected more than stored: %v > %v", res.CollectedMB, sc.TotalDataMB())
		}
		if res.EnergyJ > capacity+1e-6 {
			t.Fatalf("energy over budget: %v > %v", res.EnergyJ, capacity)
		}
	})
}
