package uavdc

import (
	"math"
	"strings"
	"testing"

	"uavdc/internal/core"
	"uavdc/internal/simulate"
)

// FuzzReadScenario hardens the scenario decoder: arbitrary bytes must
// either parse into a scenario that survives a planning round trip, or be
// rejected — never panic.
func FuzzReadScenario(f *testing.F) {
	var seedJSON strings.Builder
	_ = testScenarioForFuzz().WriteJSON(&seedJSON)
	f.Add(seedJSON.String())
	f.Add(`{}`)
	f.Add(`{"RegionSideM":-1}`)
	f.Add(`{"RegionSideM":100,"DepotX":50,"DepotY":50,"Sensors":[{"X":1,"Y":1,"DataMB":1e308}],"BandwidthMBps":1,"CoverRadiusM":10}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, data string) {
		sc, err := ReadScenario(strings.NewReader(data))
		if err != nil {
			return
		}
		// A scenario the decoder accepted must be internally consistent
		// enough to serialise back.
		var sb strings.Builder
		if err := sc.WriteJSON(&sb); err != nil {
			t.Fatalf("accepted scenario failed to re-encode: %v", err)
		}
		if _, err := ReadScenario(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("re-encoded scenario rejected: %v", err)
		}
	})
}

func testScenarioForFuzz() Scenario { return RandomScenario(5, 50, 1) }

// FuzzPlanSmallScenarios drives the whole pipeline with adversarial sensor
// placements and budgets: Plan must either error cleanly or return a
// simulator-verified result (verification is built into Plan).
func FuzzPlanSmallScenarios(f *testing.F) {
	f.Add(int64(1), uint8(4), float64(1e4))
	f.Add(int64(2), uint8(0), float64(0))
	f.Add(int64(3), uint8(9), float64(1e9))
	f.Fuzz(func(t *testing.T, seed int64, rawN uint8, capacity float64) {
		if capacity < 0 || capacity > 1e12 || capacity != capacity {
			return // invalid UAVs are rejected by construction; skip
		}
		n := int(rawN)%8 + 1
		sc := RandomScenario(n, 100, uint64(seed))
		uav := DefaultUAV()
		uav.CapacityJ = capacity
		res, err := Plan(sc, uav, Options{DeltaM: 20, K: 2})
		if err != nil {
			t.Fatalf("pipeline error on valid input: %v", err)
		}
		if res.CollectedMB > sc.TotalDataMB()+1e-6 {
			t.Fatalf("collected more than stored: %v > %v", res.CollectedMB, sc.TotalDataMB())
		}
		if res.EnergyJ > capacity+1e-6 {
			t.Fatalf("energy over budget: %v > %v", res.EnergyJ, capacity)
		}
	})
}

// FuzzValidatorSimulatorAgreement cross-checks the two independent
// implementations of the physical model. For any planner output on a valid
// scenario:
//
//  1. core.ValidatePlanPhysics must accept it (the validator recomputes
//     energy, coverage, and per-sensor limits from geometry alone);
//  2. internal/simulate must fly it to completion;
//  3. the simulator's collected-volume and energy accounting must agree
//     with the plan's own, since the simulator enforces limits instead of
//     trusting them;
//  4. a corrupted copy — one collection amount inflated past both the
//     rate×sojourn limit and the sensor's stored volume — must be rejected
//     by the validator and must NOT inflate the simulator's accounting.
//
// Divergence between the two implementations is exactly the kind of bug
// the obs counters cannot catch, hence this target.
func FuzzValidatorSimulatorAgreement(f *testing.F) {
	f.Add(int64(1), uint8(6), float64(8e3), uint8(0))
	f.Add(int64(2), uint8(3), float64(2e4), uint8(1))
	f.Add(int64(5), uint8(10), float64(1.2e3), uint8(2))
	f.Add(int64(9), uint8(15), float64(5e4), uint8(3))
	f.Add(int64(42), uint8(0), float64(0), uint8(1))
	algos := []Algorithm{AlgorithmGreedy, AlgorithmPartial, AlgorithmBaseline, AlgorithmNoOverlap}
	f.Fuzz(func(t *testing.T, seed int64, rawN uint8, capacity float64, algoRaw uint8) {
		if capacity < 0 || capacity > 1e9 || math.IsNaN(capacity) {
			return
		}
		n := int(rawN)%10 + 1
		sc := RandomScenario(n, 120, uint64(seed))
		uav := DefaultUAV()
		uav.CapacityJ = capacity
		opts := Options{Algorithm: algos[int(algoRaw)%len(algos)], DeltaM: 25, K: 2}

		planner, err := plannerFor(opts)
		if err != nil {
			t.Fatal(err)
		}
		in, err := sc.instance(uav, opts)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := planner.Plan(in)
		if err != nil {
			t.Fatalf("%s errored on valid input: %v", opts.Algorithm, err)
		}

		// 1. The independent validator must accept every planner output.
		if err := core.ValidatePlanPhysics(in.Net, in.Model, in.Physics(), plan); err != nil {
			t.Fatalf("%s plan rejected by validator: %v", opts.Algorithm, err)
		}

		// 2–3. The simulator must complete the mission and agree with the
		// plan's own accounting.
		sim := simulate.Run(in.Net, in.Model, plan, simulate.Options{Altitude: in.Altitude, Radio: in.Radio})
		if !sim.Completed {
			t.Fatalf("%s plan aborted in simulation: %s", opts.Algorithm, sim.AbortReason)
		}
		wantVol := plan.Collected()
		if d := math.Abs(sim.Collected - wantVol); d > 1e-6+1e-9*wantVol {
			t.Fatalf("%s: simulator collected %.9f MB, plan accounts %.9f MB", opts.Algorithm, sim.Collected, wantVol)
		}
		wantEnergy := plan.Energy(in.Model) + in.Model.VerticalOverhead(in.Altitude).F()
		if d := math.Abs(sim.EnergyUsed - wantEnergy); d > 1e-6+1e-9*wantEnergy {
			t.Fatalf("%s: simulator drew %.9f J, plan accounts %.9f J", opts.Algorithm, sim.EnergyUsed, wantEnergy)
		}

		// 4. Corrupt one collection amount beyond every physical limit:
		// the validator must reject it, and the simulator must truncate
		// rather than report the inflated figure.
		si, ci := -1, -1
		for i := range plan.Stops {
			if len(plan.Stops[i].Collected) > 0 {
				si, ci = i, 0
				break
			}
		}
		if si < 0 {
			return // empty plan (capacity too small): nothing to corrupt
		}
		c := &plan.Stops[si].Collected[ci]
		stored := in.Net.Sensors[c.Sensor].Data
		c.Amount = stored + in.Net.Bandwidth*plan.Stops[si].Sojourn + 1
		if err := core.ValidatePlanPhysics(in.Net, in.Model, in.Physics(), plan); err == nil {
			t.Fatalf("%s: validator accepted corrupted plan (stop %d amount %.3f)", opts.Algorithm, si, c.Amount)
		}
		simBad := simulate.Run(in.Net, in.Model, plan, simulate.Options{Altitude: in.Altitude, Radio: in.Radio})
		if simBad.Collected > sc.TotalDataMB()+1e-6 {
			t.Fatalf("%s: simulator reported %.3f MB from a field storing %.3f MB", opts.Algorithm, simBad.Collected, sc.TotalDataMB())
		}
	})
}
