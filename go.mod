module uavdc

go 1.22
