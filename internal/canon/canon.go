// Package canon is the repo's canonical instance representation: one
// deterministic, content-addressable encoding of "what is being planned" —
// the field, the UAV energy model, the discretisation and physics knobs,
// and the planner selection. Every layer that needs an identity for a
// planning request builds it here: core hashes single-UAV instances
// (Instance.Canonical), multi extends the key with fleet knobs, mission
// with campaign knobs, simulate with the adaptive executor's schedule, and
// internal/serve uses the hash as its plan-cache key.
//
// Design rules:
//
//   - The encoding is total and bit-faithful: floats are serialised as
//     their IEEE-754 bit patterns, so Decode(Encode(x)) reproduces x
//     exactly (including negative zeros and NaN payloads) and two
//     instances hash equal iff every bit of every field agrees.
//   - Key hashes the *normalized* instance: unset knobs (Algorithm "",
//     K 0, Delta 0, CoverRadius 0) are resolved to the library-wide
//     defaults first, so a request that spells the defaults out and one
//     that omits them address the same cache line. Normalization mirrors
//     the resolution rules of the uavdc facade bit for bit.
//   - Fields that provably do not change planner output — worker counts,
//     tracing, instrumentation — are not part of the representation. The
//     repo's determinism rails (fast-path parity, worker invariance,
//     tracing on/off parity) are what make this sound.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"uavdc/internal/wire"
)

// Version tags the encoding. Bump it when a field is added, removed, or
// reordered; keys from different versions never collide because the tag is
// hashed with the payload.
const Version = wire.Canon

// DefaultAlgorithm is the planner selected by an empty algorithm name,
// mirroring the uavdc facade (Algorithm 3, partial collection).
const DefaultAlgorithm = "partial"

// DefaultK is the sojourn partition selected by K ≤ 0, mirroring the
// facade.
const DefaultK = 4

// Sensor is one aggregate node of the canonical field: ground position in
// metres and stored volume in MB.
type Sensor struct {
	X, Y, Data float64
}

// RadioKind enumerates the uplink models the encoding understands.
type RadioKind uint8

const (
	// RadioNone is the paper's constant network bandwidth (no explicit
	// radio model attached to the instance).
	RadioNone RadioKind = iota
	// RadioConstant is an explicit constant-rate model.
	RadioConstant
	// RadioShannon is the Shannon-capacity model over free-space path
	// loss.
	RadioShannon
)

// Radio is the canonical uplink model. For RadioConstant only RefRate (the
// rate B) is meaningful; for RadioNone no field is.
type Radio struct {
	Kind RadioKind
	// RefRate, RefDist, RefSNR, PathLossExp are the Shannon calibration
	// parameters; RefRate doubles as the constant model's B.
	RefRate, RefDist, RefSNR, PathLossExp float64
}

// Instance is the canonical planning instance: everything that determines
// a planner's output, in plain float64 (the encoding is a typed-world
// boundary, like core.Plan's accessors).
type Instance struct {
	// Field geometry: the monitoring region's corners and the depot.
	MinX, MinY, MaxX, MaxY float64
	DepotX, DepotY         float64
	// Sensors is the aggregate node set, in network order. Order is
	// semantic — planners iterate and tie-break by index — so the
	// encoding must not sort it.
	Sensors []Sensor
	// BandwidthMBps and CommRangeM are the network's B and R.
	BandwidthMBps, CommRangeM float64
	// Energy model: η_h, η_t, v, E, and the vertical extension.
	HoverPowerW, TravelPowerW, SpeedMS, CapacityJ float64
	ClimbPowerW, ClimbRateMS                      float64
	// Discretisation and physics knobs.
	DeltaM       float64
	CoverRadiusM float64
	K            int64
	AltitudeM    float64
	Radio        Radio
	// Planner selection.
	Algorithm string
	Refine    bool
}

// Normalized resolves every unset-sentinel knob to the library default —
// the same resolution the uavdc facade applies before planning — so that
// logically identical instances encode identically:
//
//   - Algorithm ""  → DefaultAlgorithm
//   - K ≤ 0         → DefaultK
//   - DeltaM ≤ 0    → CommRangeM/5
//   - CoverRadiusM ≤ 0 → sqrt(R²−H²) at positive altitude, else R
//     (bit-identical to hover.CoverageRadius)
func (in Instance) Normalized() Instance {
	out := in
	if out.Algorithm == "" {
		out.Algorithm = DefaultAlgorithm
	}
	if out.K <= 0 {
		out.K = DefaultK
	}
	if out.DeltaM <= 0 {
		out.DeltaM = out.CommRangeM / 5
	}
	if out.CoverRadiusM <= 0 {
		if out.AltitudeM > 0 && out.AltitudeM <= out.CommRangeM {
			// The exact expression of hover.CoverageRadius, so the
			// sentinel and its resolution hash identically.
			out.CoverRadiusM = math.Sqrt(out.CommRangeM*out.CommRangeM - out.AltitudeM*out.AltitudeM)
		} else {
			out.CoverRadiusM = out.CommRangeM
		}
	}
	return out
}

// Encode serialises the instance (as given — call Normalized first when
// default-elision must not matter). The output is a pure function of the
// field values: fixed field order, IEEE-754 bit patterns for floats,
// length-prefixed strings and slices.
func (in Instance) Encode() []byte {
	e := NewEncoder()
	e.Str(Version)
	e.F64(in.MinX, in.MinY, in.MaxX, in.MaxY)
	e.F64(in.DepotX, in.DepotY)
	e.I64(int64(len(in.Sensors)))
	for _, s := range in.Sensors {
		e.F64(s.X, s.Y, s.Data)
	}
	e.F64(in.BandwidthMBps, in.CommRangeM)
	e.F64(in.HoverPowerW, in.TravelPowerW, in.SpeedMS, in.CapacityJ, in.ClimbPowerW, in.ClimbRateMS)
	e.F64(in.DeltaM, in.CoverRadiusM)
	e.I64(in.K)
	e.F64(in.AltitudeM)
	e.Byte(byte(in.Radio.Kind))
	e.F64(in.Radio.RefRate, in.Radio.RefDist, in.Radio.RefSNR, in.Radio.PathLossExp)
	e.Str(in.Algorithm)
	e.Bool(in.Refine)
	return e.Bytes()
}

// Decode parses an Encode output back into the instance it came from,
// bit-exactly. It rejects short input, version mismatches, and trailing
// bytes — there is exactly one encoding per instance.
func Decode(data []byte) (Instance, error) {
	d := &Decoder{buf: data}
	var in Instance
	if v := d.Str(); d.err == nil && v != Version {
		return Instance{}, fmt.Errorf("canon: version %q, want %q", v, Version)
	}
	in.MinX, in.MinY, in.MaxX, in.MaxY = d.F64(), d.F64(), d.F64(), d.F64()
	in.DepotX, in.DepotY = d.F64(), d.F64()
	n := d.I64()
	if d.err == nil {
		if n < 0 || n > int64(len(d.buf)-d.off)/24 {
			return Instance{}, fmt.Errorf("canon: sensor count %d exceeds payload", n)
		}
		in.Sensors = make([]Sensor, n)
		for i := range in.Sensors {
			in.Sensors[i] = Sensor{X: d.F64(), Y: d.F64(), Data: d.F64()}
		}
	}
	in.BandwidthMBps, in.CommRangeM = d.F64(), d.F64()
	in.HoverPowerW, in.TravelPowerW = d.F64(), d.F64()
	in.SpeedMS, in.CapacityJ = d.F64(), d.F64()
	in.ClimbPowerW, in.ClimbRateMS = d.F64(), d.F64()
	in.DeltaM, in.CoverRadiusM = d.F64(), d.F64()
	in.K = d.I64()
	in.AltitudeM = d.F64()
	in.Radio.Kind = RadioKind(d.Byte())
	in.Radio.RefRate, in.Radio.RefDist = d.F64(), d.F64()
	in.Radio.RefSNR, in.Radio.PathLossExp = d.F64(), d.F64()
	in.Algorithm = d.Str()
	in.Refine = d.Bool()
	if d.err != nil {
		return Instance{}, d.err
	}
	if d.off != len(d.buf) {
		return Instance{}, fmt.Errorf("canon: %d trailing bytes after instance", len(d.buf)-d.off)
	}
	if in.Radio.Kind > RadioShannon {
		return Instance{}, fmt.Errorf("canon: unknown radio kind %d", in.Radio.Kind)
	}
	return in, nil
}

// Key is a content address: the SHA-256 of the normalized encoding.
type Key [sha256.Size]byte

// String renders the key as lowercase hex — the form the serve cache, the
// uavdc-serve/1 responses, and the extended multi/mission/simulate keys
// use.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Key content-addresses the instance: SHA-256 over Normalized().Encode().
func (in Instance) Key() Key {
	return sha256.Sum256(in.Normalized().Encode())
}

// Encoder is the shared canonical byte writer: fixed-width little-endian
// IEEE bits for floats, fixed-width two's-complement for ints, length-
// prefixed strings. The higher layers (multi, mission, simulate) append
// their own knobs to an instance key with it, so every extended key speaks
// one encoding.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// F64 appends each float's IEEE-754 bit pattern.
func (e *Encoder) F64(vs ...float64) {
	for _, v := range vs {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	}
}

// I64 appends each integer as 8 little-endian bytes.
func (e *Encoder) I64(vs ...int64) {
	for _, v := range vs {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
	}
}

// U64 appends each unsigned integer as 8 little-endian bytes.
func (e *Encoder) U64(vs ...uint64) {
	for _, v := range vs {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
	}
}

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends 1 or 0.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.I64(int64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// Sum returns the SHA-256 of the accumulated encoding as a Key.
func (e *Encoder) Sum() Key { return sha256.Sum256(e.buf) }

// ExtendKey derives a sub-system key from a base key plus extra canonical
// parts: sha256(base || tag || parts). multi, mission, and simulate use it
// to widen an instance key with their own knobs without re-encoding the
// field.
func ExtendKey(base Key, tag string, parts func(e *Encoder)) Key {
	e := NewEncoder()
	e.buf = append(e.buf, base[:]...)
	e.Str(tag)
	if parts != nil {
		parts(e)
	}
	return e.Sum()
}

// Decoder is the strict canonical byte reader; the first error sticks and
// subsequent reads return zero values.
type Decoder struct {
	buf []byte
	off int
	err error
}

// take returns the next n bytes or flags truncation.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("canon: truncated input at offset %d (need %d of %d bytes)", d.off, n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// F64 reads one float's bit pattern.
func (d *Decoder) F64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// I64 reads one 8-byte integer.
func (d *Decoder) I64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte and requires it to be exactly 0 or 1 — any other
// value would admit two encodings of the same instance.
func (d *Decoder) Bool() bool {
	b := d.Byte()
	if d.err == nil && b > 1 {
		d.err = fmt.Errorf("canon: invalid bool byte %d", b)
	}
	return b == 1
}

// Str reads one length-prefixed string.
func (d *Decoder) Str() string {
	n := d.I64()
	if d.err != nil {
		return ""
	}
	if n < 0 || n > int64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("canon: string length %d exceeds payload", n)
		return ""
	}
	return string(d.take(int(n)))
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }
