package canon

import (
	"bytes"
	"maps"
	"math"
	"reflect"
	"slices"
	"testing"
)

// sample returns a small fully-populated instance.
func sample() Instance {
	return Instance{
		MinX: 0, MinY: 0, MaxX: 200, MaxY: 200,
		DepotX: 100, DepotY: 100,
		Sensors: []Sensor{
			{X: 10, Y: 20, Data: 300},
			{X: 150, Y: 40, Data: 512.5},
			{X: 99.25, Y: 180, Data: 101},
		},
		BandwidthMBps: 150, CommRangeM: 50,
		HoverPowerW: 150, TravelPowerW: 100, SpeedMS: 10, CapacityJ: 3e5,
		DeltaM: 10, CoverRadiusM: 50, K: 4, AltitudeM: 0,
		Radio:     Radio{Kind: RadioNone},
		Algorithm: "partial",
	}
}

func TestRoundTrip(t *testing.T) {
	in := sample()
	enc := in.Encode()
	out, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip drifted:\n in: %+v\nout: %+v", in, out)
	}
	if !bytes.Equal(enc, out.Encode()) {
		t.Fatal("re-encoding the decoded instance produced different bytes")
	}
}

func TestRoundTripSpecialFloats(t *testing.T) {
	in := sample()
	in.DepotX = math.Copysign(0, -1) // negative zero survives
	in.Sensors[0].Data = math.Inf(1)
	in.AltitudeM = math.NaN() // bit-faithful even for NaN
	out, err := Decode(in.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(in.Encode(), out.Encode()) {
		t.Fatal("special float bits not preserved")
	}
	if math.Signbit(out.DepotX) != true || !math.IsInf(out.Sensors[0].Data, 1) || !math.IsNaN(out.AltitudeM) {
		t.Fatalf("special floats drifted: %+v", out)
	}
}

func TestDecodeRejects(t *testing.T) {
	enc := sample().Encode()
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated", enc[:len(enc)/2]},
		{"trailing", append(append([]byte(nil), enc...), 0)},
		{"bad version", append([]byte{9}, enc[1:]...)},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); err == nil {
			t.Errorf("%s: Decode accepted invalid input", c.name)
		}
	}
}

func TestDecodeRejectsHugeSensorCount(t *testing.T) {
	e := NewEncoder()
	e.Str(Version)
	e.F64(0, 0, 1, 1, 0, 0)
	e.I64(1 << 40) // sensor count far beyond the payload
	if _, err := Decode(e.Bytes()); err == nil {
		t.Fatal("Decode accepted an absurd sensor count")
	}
}

func TestBoolEncodingIsCanonical(t *testing.T) {
	enc := sample().Encode()
	// The last byte is the Refine bool; any value other than 0/1 must be
	// rejected, otherwise one instance would have several encodings.
	enc[len(enc)-1] = 2
	if _, err := Decode(enc); err == nil {
		t.Fatal("Decode accepted a non-canonical bool byte")
	}
}

func TestNormalizedResolvesDefaults(t *testing.T) {
	raw := sample()
	raw.Algorithm = ""
	raw.K = 0
	raw.DeltaM = 0
	raw.CoverRadiusM = 0
	n := raw.Normalized()
	if n.Algorithm != DefaultAlgorithm || n.K != DefaultK {
		t.Fatalf("algorithm/K defaults not resolved: %+v", n)
	}
	if n.DeltaM != raw.CommRangeM/5 {
		t.Fatalf("delta default = %v, want %v", n.DeltaM, raw.CommRangeM/5)
	}
	if n.CoverRadiusM != raw.CommRangeM {
		t.Fatalf("cover radius default = %v, want %v", n.CoverRadiusM, raw.CommRangeM)
	}

	// At positive altitude the resolved radius is the hover projection
	// sqrt(R²−H²), bit-identical to hover.CoverageRadius's expression.
	raw.AltitudeM = 30
	n = raw.Normalized()
	want := math.Sqrt(50*50 - 30*30)
	if n.CoverRadiusM != want {
		t.Fatalf("projected cover radius = %v, want %v", n.CoverRadiusM, want)
	}

	// Explicit values are left untouched.
	if got := sample().Normalized(); !reflect.DeepEqual(got, sample()) {
		t.Fatalf("Normalized changed a fully-specified instance: %+v", got)
	}
}

func TestKeyInvariantUnderDefaultElision(t *testing.T) {
	elided := sample()
	elided.Algorithm = ""
	elided.K = 0
	elided.DeltaM = 0
	elided.CoverRadiusM = 0

	explicit := sample()
	explicit.Algorithm = DefaultAlgorithm
	explicit.K = DefaultK
	explicit.DeltaM = explicit.CommRangeM / 5
	explicit.CoverRadiusM = explicit.CommRangeM

	if elided.Key() != explicit.Key() {
		t.Fatal("elided and explicit defaults hash differently")
	}
}

func TestKeySensitivity(t *testing.T) {
	base := sample().Key()
	mutate := map[string]func(*Instance){
		"capacity":     func(in *Instance) { in.CapacityJ++ },
		"sensor data":  func(in *Instance) { in.Sensors[1].Data++ },
		"sensor order": func(in *Instance) { in.Sensors[0], in.Sensors[1] = in.Sensors[1], in.Sensors[0] },
		"algorithm":    func(in *Instance) { in.Algorithm = "greedy" },
		"refine":       func(in *Instance) { in.Refine = true },
		"radio":        func(in *Instance) { in.Radio = Radio{Kind: RadioShannon, RefRate: 150, RefDist: 10, RefSNR: 100, PathLossExp: 2} },
		"k":            func(in *Instance) { in.K = 2 },
	}
	for _, name := range slices.Sorted(maps.Keys(mutate)) {
		in := sample()
		in.Sensors = append([]Sensor(nil), sample().Sensors...)
		mutate[name](&in)
		if in.Key() == base {
			t.Errorf("%s: mutation did not change the key", name)
		}
	}
}

func TestExtendKey(t *testing.T) {
	base := sample().Key()
	fleet2 := ExtendKey(base, "multi/1", func(e *Encoder) { e.I64(2) })
	fleet3 := ExtendKey(base, "multi/1", func(e *Encoder) { e.I64(3) })
	if fleet2 == fleet3 || fleet2 == base {
		t.Fatal("extended keys collide")
	}
	again := ExtendKey(base, "multi/1", func(e *Encoder) { e.I64(2) })
	if fleet2 != again {
		t.Fatal("ExtendKey is not deterministic")
	}
	if ExtendKey(base, "mission/1", func(e *Encoder) { e.I64(2) }) == fleet2 {
		t.Fatal("tag does not separate key namespaces")
	}
}

// FuzzCanonicalInstance locks the encoding's two contracts: (1) the same
// logical instance — defaults elided or spelled out, built in any
// parameter order — produces the same cache key; (2) Decode(Encode(x))
// reproduces x bit-exactly, and re-encoding reproduces the bytes.
func FuzzCanonicalInstance(f *testing.F) {
	f.Add(uint8(2), 50.0, 10.0, 0.0, 3e5, int64(4), "partial", false, 300.0)
	f.Add(uint8(0), 25.0, 0.0, 20.0, 1e4, int64(0), "", true, 0.0)
	f.Add(uint8(5), 1.0, 0.5, 0.9, 0.0, int64(-3), "lns", false, 1e308)
	f.Fuzz(func(t *testing.T, nSensors uint8, commRange, delta, altitude, capacity float64, k int64, algorithm string, refine bool, data float64) {
		if math.IsNaN(commRange) || math.IsNaN(delta) || math.IsNaN(altitude) {
			return // NaN knobs never compare equal; covered by the bit-faithful test above
		}
		in := Instance{
			MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000,
			DepotX: 500, DepotY: 500,
			BandwidthMBps: 150, CommRangeM: commRange,
			HoverPowerW: 150, TravelPowerW: 100, SpeedMS: 10, CapacityJ: capacity,
			DeltaM: delta, K: k, AltitudeM: altitude,
			Algorithm: algorithm, Refine: refine,
		}
		for i := 0; i < int(nSensors)%12; i++ {
			in.Sensors = append(in.Sensors, Sensor{X: float64(i) * 13, Y: float64(i) * 7, Data: data})
		}

		// Round trip: bit-exact instance and bytes.
		enc := in.Encode()
		out, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode of a fresh encoding failed: %v", err)
		}
		if !bytes.Equal(enc, out.Encode()) {
			t.Fatal("round trip changed the encoding")
		}

		// Key invariance: resolving the defaults by hand produces the
		// same key as leaving the sentinels in place.
		if in.Normalized().Key() != in.Key() {
			t.Fatal("normalization is not idempotent under Key")
		}
		spelled := in.Normalized()
		if spelled.Key() != in.Key() {
			t.Fatal("spelled-out defaults hash differently from elided ones")
		}

		// Decode never panics on mutated input (errors are fine).
		if len(enc) > 0 {
			mut := append([]byte(nil), enc...)
			mut[int(nSensors)%len(mut)] ^= 0x5a
			if dec, err := Decode(mut); err == nil {
				// If a mutation still decodes, it must re-encode to the
				// mutated bytes — one encoding per instance.
				if !bytes.Equal(mut, dec.Encode()) {
					t.Fatal("accepted mutation does not re-encode canonically")
				}
			}
			if _, err := Decode(enc[:len(enc)-1]); err == nil {
				t.Fatal("truncated encoding accepted")
			}
		}
	})
}
