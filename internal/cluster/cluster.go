// Package cluster partitions sensor fields for multi-UAV planning. The
// paper plans for a single UAV and cites Mozaffari et al.'s
// cluster-then-route design for fleets as related work; this package
// provides the cluster step: deterministic weighted k-means (k-means++
// seeding) and a polar-sweep partitioner, both balancing the data volume
// each UAV must serve.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"uavdc/internal/geom"
	"uavdc/internal/rng"
)

// Assignment maps each point to a cluster in [0, K).
type Assignment struct {
	// K is the number of clusters.
	K int
	// Of[i] is the cluster of point i.
	Of []int
	// Centers are the cluster centroids (weighted).
	Centers []geom.Point
}

// Members returns the point indices of cluster c, ascending.
func (a *Assignment) Members(c int) []int {
	var out []int
	for i, ci := range a.Of {
		if ci == c {
			out = append(out, i)
		}
	}
	return out
}

// Sizes returns the number of points per cluster.
func (a *Assignment) Sizes() []int {
	sizes := make([]int, a.K)
	for _, c := range a.Of {
		sizes[c]++
	}
	return sizes
}

// KMeans clusters pts into k groups by weighted k-means with k-means++
// seeding, deterministic under src. Weights scale each point's pull on its
// centroid (use the stored data volume so heavy sensors attract a UAV);
// nil weights mean uniform. It runs at most maxIter Lloyd iterations
// (≤ 0 means 50).
func KMeans(pts []geom.Point, weights []float64, k int, src rng.Source, maxIter int) (*Assignment, error) {
	n := len(pts)
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if n == 0 {
		return &Assignment{K: k, Centers: make([]geom.Point, k)}, nil
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("cluster: %d weights for %d points", len(weights), n)
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("cluster: invalid weight %v at %d", w, i)
		}
	}
	if k > n {
		k = n // every point its own cluster; extra clusters stay empty
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}

	// k-means++ seeding.
	r := src.Rand()
	centers := make([]geom.Point, 0, k)
	centers = append(centers, pts[r.Intn(n)])
	d2 := make([]float64, n)
	for len(centers) < k {
		var sum float64
		for i, p := range pts {
			d2[i] = math.Inf(1)
			for _, c := range centers {
				if d := p.Dist2(c); d < d2[i] {
					d2[i] = d
				}
			}
			d2[i] *= math.Max(w(i), 1e-12)
			sum += d2[i]
		}
		if sum == 0 {
			// All points coincide with centers; duplicate any.
			centers = append(centers, pts[0])
			continue
		}
		pick := r.Float64() * sum
		idx := 0
		for i, v := range d2 {
			pick -= v
			if pick <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, pts[idx])
	}

	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := p.Dist2(ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Weighted centroid update.
		var sx, sy, sw = make([]float64, k), make([]float64, k), make([]float64, k)
		for i, p := range pts {
			c := assign[i]
			wi := math.Max(w(i), 1e-12)
			sx[c] += p.X * wi
			sy[c] += p.Y * wi
			sw[c] += wi
		}
		for c := range centers {
			if sw[c] > 0 {
				centers[c] = geom.Pt(sx[c]/sw[c], sy[c]/sw[c])
			}
		}
		if !changed {
			break
		}
	}
	// Pad centers back to the requested k when k was clamped.
	out := &Assignment{K: k, Of: assign, Centers: centers}
	return out, nil
}

// Sweep partitions points into k contiguous angular sectors around the
// pivot (typically the depot), balancing the total weight per sector — the
// classic sweep heuristic for multi-vehicle routing. Deterministic, O(n log n).
func Sweep(pts []geom.Point, weights []float64, k int, pivot geom.Point) (*Assignment, error) {
	n := len(pts)
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("cluster: %d weights for %d points", len(weights), n)
	}
	a := &Assignment{K: k, Of: make([]int, n), Centers: make([]geom.Point, k)}
	if n == 0 {
		return a, nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	angle := func(i int) float64 {
		p := pts[i]
		return math.Atan2(p.Y-pivot.Y, p.X-pivot.X)
	}
	sort.Slice(order, func(x, y int) bool { return angle(order[x]) < angle(order[y]) })

	var total float64
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	for i := 0; i < n; i++ {
		total += w(i)
	}
	perSector := total / float64(k)
	cur, acc := 0, 0.0
	for _, i := range order {
		if acc >= perSector*float64(cur+1) && cur < k-1 {
			cur++
		}
		a.Of[i] = cur
		acc += w(i)
	}
	// Centroids for reporting.
	var sx, sy, sw = make([]float64, k), make([]float64, k), make([]float64, k)
	for i, p := range pts {
		c := a.Of[i]
		wi := math.Max(w(i), 1e-12)
		sx[c] += p.X * wi
		sy[c] += p.Y * wi
		sw[c] += wi
	}
	for c := 0; c < k; c++ {
		if sw[c] > 0 {
			a.Centers[c] = geom.Pt(sx[c]/sw[c], sy[c]/sw[c])
		} else {
			a.Centers[c] = pivot
		}
	}
	return a, nil
}

// TotalWeight returns the summed weight per cluster.
func (a *Assignment) TotalWeight(weights []float64) []float64 {
	out := make([]float64, a.K)
	for i, c := range a.Of {
		if weights == nil {
			out[c]++
		} else {
			out[c] += weights[i]
		}
	}
	return out
}
