package cluster

import (
	"math"
	"testing"

	"uavdc/internal/geom"
	"uavdc/internal/rng"
)

// fourBlobs places tight groups near the four corners of a 100×100 square.
func fourBlobs() ([]geom.Point, []float64) {
	var pts []geom.Point
	var w []float64
	centers := []geom.Point{geom.Pt(10, 10), geom.Pt(90, 10), geom.Pt(10, 90), geom.Pt(90, 90)}
	r := rng.New(4).Rand()
	for _, c := range centers {
		for i := 0; i < 10; i++ {
			pts = append(pts, geom.Pt(c.X+r.Float64()*4-2, c.Y+r.Float64()*4-2))
			w = append(w, 1+r.Float64())
		}
	}
	return pts, w
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts, w := fourBlobs()
	a, err := KMeans(pts, w, 4, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 4 || len(a.Of) != len(pts) {
		t.Fatalf("assignment shape: K=%d len=%d", a.K, len(a.Of))
	}
	// Each blob of 10 consecutive points must share one cluster, and the
	// four blobs must use four distinct clusters.
	used := map[int]bool{}
	for blob := 0; blob < 4; blob++ {
		c := a.Of[blob*10]
		for i := 1; i < 10; i++ {
			if a.Of[blob*10+i] != c {
				t.Fatalf("blob %d split across clusters", blob)
			}
		}
		if used[c] {
			t.Fatalf("blob %d shares cluster %d with another blob", blob, c)
		}
		used[c] = true
	}
}

func TestKMeansErrors(t *testing.T) {
	pts, w := fourBlobs()
	if _, err := KMeans(pts, w, 0, rng.New(1), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(pts, w[:3], 2, rng.New(1), 0); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, err := KMeans(pts, append(append([]float64{}, w[:len(w)-1]...), -1), 2, rng.New(1), 0); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	// Empty input.
	a, err := KMeans(nil, nil, 3, rng.New(1), 0)
	if err != nil || a.K != 3 || len(a.Of) != 0 {
		t.Errorf("empty: %+v, %v", a, err)
	}
	// k > n clamps.
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}
	a, err = KMeans(pts, nil, 5, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 2 {
		t.Errorf("K clamped to %d, want 2", a.K)
	}
	// All points identical.
	same := []geom.Point{geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5)}
	a, err = KMeans(same, nil, 2, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.Of {
		if c < 0 || c >= a.K {
			t.Fatal("invalid cluster id")
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, w := fourBlobs()
	a, _ := KMeans(pts, w, 4, rng.New(9), 0)
	b, _ := KMeans(pts, w, 4, rng.New(9), 0)
	for i := range a.Of {
		if a.Of[i] != b.Of[i] {
			t.Fatal("same seed gave different clustering")
		}
	}
}

func TestMembersAndSizes(t *testing.T) {
	pts, w := fourBlobs()
	a, _ := KMeans(pts, w, 4, rng.New(1), 0)
	sizes := a.Sizes()
	var sum int
	for c := 0; c < a.K; c++ {
		m := a.Members(c)
		if len(m) != sizes[c] {
			t.Fatalf("cluster %d: Members %d vs Sizes %d", c, len(m), sizes[c])
		}
		sum += len(m)
		for i := 1; i < len(m); i++ {
			if m[i] <= m[i-1] {
				t.Fatal("Members not ascending")
			}
		}
	}
	if sum != len(pts) {
		t.Fatalf("members total %d, want %d", sum, len(pts))
	}
}

func TestSweepBalancesWeight(t *testing.T) {
	r := rng.New(17).Rand()
	var pts []geom.Point
	var w []float64
	for i := 0; i < 200; i++ {
		pts = append(pts, geom.Pt(r.Float64()*100, r.Float64()*100))
		w = append(w, 0.5+r.Float64())
	}
	pivot := geom.Pt(50, 50)
	const k = 4
	a, err := Sweep(pts, w, k, pivot)
	if err != nil {
		t.Fatal(err)
	}
	tw := a.TotalWeight(w)
	var total float64
	for _, v := range tw {
		total += v
	}
	per := total / k
	for c, v := range tw {
		if v < 0.5*per || v > 1.5*per {
			t.Errorf("sector %d weight %v far from balanced %v", c, v, per)
		}
	}
}

func TestSweepContiguity(t *testing.T) {
	// Points on a circle at known angles: contiguous sectors are easy to
	// verify exactly.
	pivot := geom.Pt(0, 0)
	var pts []geom.Point
	n := 16
	for i := 0; i < n; i++ {
		ang := -math.Pi + (float64(i)+0.5)*2*math.Pi/float64(n)
		pts = append(pts, geom.Pt(math.Cos(ang), math.Sin(ang)))
	}
	a, err := Sweep(pts, nil, 4, pivot)
	if err != nil {
		t.Fatal(err)
	}
	// Points were generated in angular order; cluster ids must be
	// non-decreasing and each sector must hold 4 points.
	for i := 1; i < n; i++ {
		if a.Of[i] < a.Of[i-1] {
			t.Fatalf("sector ids not contiguous: %v", a.Of)
		}
	}
	for c, s := range a.Sizes() {
		if s != 4 {
			t.Errorf("sector %d size %d, want 4 (%v)", c, s, a.Of)
		}
	}
}

func TestSweepEdgeCases(t *testing.T) {
	if _, err := Sweep(nil, nil, 0, geom.Pt(0, 0)); err == nil {
		t.Error("k=0 accepted")
	}
	a, err := Sweep(nil, nil, 3, geom.Pt(0, 0))
	if err != nil || len(a.Of) != 0 {
		t.Errorf("empty sweep: %+v %v", a, err)
	}
	pts := []geom.Point{geom.Pt(1, 0)}
	if _, err := Sweep(pts, []float64{1, 2}, 2, geom.Pt(0, 0)); err == nil {
		t.Error("weight mismatch accepted")
	}
}
