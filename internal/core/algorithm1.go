package core

import (
	"fmt"
	"sort"

	"uavdc/internal/hover"
	"uavdc/internal/orienteering"
	"uavdc/internal/trace"
	"uavdc/internal/tsp"
)

// costMemoMax bounds the node count for which planners materialise dense
// cost matrices (8·n² bytes); larger instances keep closure metrics.
const costMemoMax = 2048

// Algorithm1 solves the data-collection maximisation problem without
// hovering coverage overlapping (Section IV) by reduction to rooted
// orienteering on the auxiliary graph G_s: node awards are P(s_j), edge
// weights are w2 of Eq. 9 (half the endpoint hover energies plus travel
// energy), and the budget is the UAV capacity E. Because every node's
// hover energy is split across its two incident tour edges, the cost of a
// closed tour in G_s equals the tour's true total energy exactly
// (Theorem 2), so a feasible orienteering tour is a feasible plan.
//
// The paper's formulation duplicates the depot (d') and asks for a best
// d–d′ path; an orienteering cycle rooted at the depot is the same object,
// which is what the solver computes directly.
type Algorithm1 struct {
	// Method selects the orienteering solver; the zero value (auto) runs
	// the portfolio.
	Method orienteering.Method
	// AllowOverlap skips the disjoint-coverage filtering. The problem
	// variant this algorithm targets assumes no two selected hovering
	// locations share covered sensors; by default the candidate set is
	// pre-filtered to make that literally true (greedy by award). With
	// AllowOverlap set the raw candidate set is used and the realised
	// (deduplicated) volume may be below the orienteering objective.
	AllowOverlap bool
	// Reference hands the orienteering solver the raw auxiliary-weight
	// closure instead of the default dense memoised cost table. Every
	// table entry is the exact float64 the closure returns, so solutions
	// are bit-identical either way; the table just stops the solver stack
	// (exact DP, tour split, local search) from recomputing hover/travel
	// energies per probe.
	Reference bool
}

// Name implements Planner.
func (a *Algorithm1) Name() string { return "algorithm1" }

// Plan implements Planner.
func (a *Algorithm1) Plan(in *Instance) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	tr := in.tracer()
	endPlan := tr.Begin(SpanPlanAlg1)
	endCand := tr.Begin(SpanPlanAlg1Candidates)
	set, err := in.buildCandidates(hover.Options{})
	if err != nil {
		endCand()
		endPlan()
		return nil, err
	}

	// ids[k] is the hover-set index of orienteering node k; ids[0] is the
	// depot.
	ids := []int{hover.DepotID}
	if a.AllowOverlap {
		for i := 1; i < set.Len(); i++ {
			ids = append(ids, i)
		}
	} else {
		ids = append(ids, disjointCandidates(set)...)
	}
	endCand(trace.Int("candidates", set.Len()), trace.Int("nodes", len(ids)))

	cost := tsp.Metric(func(i, j int) float64 { return set.AuxiliaryWeight(ids[i], ids[j]).F() })
	if !a.Reference && len(ids) <= costMemoMax {
		cost = tsp.MemoMetric(len(ids), cost)
	}
	prob := &orienteering.Problem{
		N:      len(ids),
		Cost:   cost,
		Reward: func(i int) float64 { return set.Locs[ids[i]].Award.F() },
		Budget: in.Budget().F(),
		Depot:  0,
	}
	endOr := tr.Begin(SpanPlanAlg1Orienteering, trace.Int("nodes", len(ids)))
	sol, err := orienteering.Solve(prob, a.Method, in.obsRecorder())
	if err != nil {
		endOr()
		endPlan()
		return nil, fmt.Errorf("core: algorithm1 orienteering: %w", err)
	}
	endOr()
	sol.Tour.RotateTo(0)

	plan := &Plan{Algorithm: a.Name(), Depot: in.Net.Depot}
	claimed := make([]bool, len(in.Net.Sensors))
	for _, k := range sol.Tour.Order {
		if k == 0 {
			continue
		}
		loc := set.Locs[ids[k]]
		stop := Stop{Pos: loc.Pos, LocID: ids[k], Sojourn: loc.Sojourn.F()}
		for _, v := range loc.Covered {
			if !claimed[v] {
				claimed[v] = true
				stop.Collected = append(stop.Collected, Collection{Sensor: v, Amount: in.Net.Sensors[v].Data})
			}
		}
		plan.Stops = append(plan.Stops, stop)
	}
	endPlan(trace.Int("stops", len(plan.Stops)))
	return plan, nil
}

// disjointCandidates greedily selects candidate locations with pairwise-
// disjoint coverage sets, preferring higher award, and returns their
// hover-set indices (depot excluded). This realises the "no hovering
// coverage overlapping" assumption of Section IV on instances whose raw
// grid candidates do overlap.
func disjointCandidates(set *hover.Set) []int {
	order := make([]int, 0, set.Len()-1)
	for i := 1; i < set.Len(); i++ {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := set.Locs[order[a]], set.Locs[order[b]]
		if la.Award != lb.Award { //uavdc:allow floateq exact compare keeps the tie-break order total and bit-reproducible; an epsilon would break transitivity
			return la.Award > lb.Award
		}
		return order[a] < order[b] // deterministic tie-break
	})
	taken := make([]bool, len(set.Net.Sensors))
	var out []int
	for _, i := range order {
		ok := true
		for _, v := range set.Locs[i].Covered {
			if taken[v] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, v := range set.Locs[i].Covered {
			taken[v] = true
		}
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
