package core

import (
	"math"
	"sync"

	"uavdc/internal/geom"
	"uavdc/internal/hover"
	"uavdc/internal/obs"
	"uavdc/internal/trace"
	"uavdc/internal/tsp"
	"uavdc/internal/units"
)

// Algorithm2 is the ratio-greedy heuristic for the data-collection
// maximisation problem with hovering coverage overlapping (Section V). The
// tour starts at the depot and grows one hovering location per iteration:
// the candidate maximising ρ = P′/(t′·η_h + ΔTSP·η_t) (Eq. 13), where P′
// and t′ count only sensors not already drained at earlier stops (Eq. 11,
// 12), subject to the energy capacity.
//
// Implementation note (DESIGN.md §4.4): the paper prices ΔTSP by re-running
// Christofides for every candidate in every iteration. This planner prices
// candidates with the cheapest-insertion delta (an upper bound on the true
// increase) and re-optimises the selected tour with 2-opt/Or-opt after
// every acceptance; the energy constraint is always enforced against the
// actual current tour, so feasibility is never at risk. Set ExactRatioTSP
// to restore the literal per-candidate Christofides pricing (small
// instances only — it is O(M·|S|³) per iteration).
type Algorithm2 struct {
	// ExactRatioTSP prices every candidate with a full Christofides
	// recomputation, as the paper's Eq. 13 literally specifies.
	ExactRatioTSP bool
	// Workers sets the number of goroutines scanning candidates per
	// iteration; 0 or 1 means serial. Results are identical at any
	// worker count: candidates are compared with a total order
	// (ratio, then award, then lowest id).
	Workers int
	// Reference disables the fast scan path (residual-active candidate
	// index, precomputed insertion edges, dense local-search submatrix)
	// and runs the original full scan. Plans are bit-identical either
	// way — the fast path only skips candidates that are provably
	// discarded (award 0) and only substitutes arithmetic that yields
	// the exact same float64s; the differential suite holds both paths
	// to that contract.
	Reference bool
}

// Name implements Planner.
func (a *Algorithm2) Name() string { return "algorithm2" }

// Plan implements Planner.
func (a *Algorithm2) Plan(in *Instance) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	tr := in.tracer()
	endPlan := tr.Begin(SpanPlanAlg2)
	endCand := tr.Begin(SpanPlanAlg2Candidates)
	set, err := in.buildCandidates(hover.Options{})
	if err != nil {
		endCand()
		endPlan()
		return nil, err
	}
	endCand(trace.Int("candidates", set.Len()))
	st := newGreedyState(in, set)
	st.reference = a.Reference || a.ExactRatioTSP
	for {
		endIter := tr.Begin(SpanPlanAlg2Iterate)
		best, ok := a.pickNext(st)
		if !ok {
			endIter()
			break
		}
		st.acceptFull(best)
		endIter(trace.Int("loc", best.loc))
	}
	p := st.plan(a.Name())
	endPlan(trace.Int("stops", len(p.Stops)))
	return p, nil
}

type fullCandidate struct {
	loc     int           // hover-set id
	pos     int           // insertion position in the tour
	sojourn units.Seconds // t′
	award   units.Bits    // P′
	travelD float64       // tour-length increase in metres
}

// evalFull prices candidate c against the current state, returning ok =
// false when it is covered, drained, or over budget. so carries the
// evaluating worker's counter handles.
func (a *Algorithm2) evalFull(st *greedyState, c int, curEnergy units.Joules, so scanObs) (fullCandidate, float64, bool) {
	so.evalHit(c)
	loc := &st.set.Locs[c]
	so.resid.Inc()
	sojourn, award := hover.ResidualDrain(loc.Covered, st.residual, loc.Rates, units.BitsPerSecond(st.in.Net.Bandwidth))
	if award <= 0 {
		return fullCandidate{}, 0, false
	}
	var pos int
	var travelD float64
	switch {
	case a.ExactRatioTSP:
		pos, travelD = st.christofidesDelta(c)
	case st.reference:
		pos, travelD = tsp.BestInsertion(st.tour, c, st.dist)
	default:
		// Bit-equal to BestInsertion: same hypotenuses, cached edges.
		pos, travelD = st.ins.bestInsertion(loc.Pos)
	}
	hoverE := st.in.Model.HoverEnergy(sojourn)
	travelE := st.in.Model.TravelEnergy(units.Meters(travelD))
	if curEnergy+hoverE+travelE > st.in.Budget()+1e-9 {
		so.pruned.Inc()
		return fullCandidate{}, 0, false
	}
	denom := hoverE + travelE
	ratio := math.Inf(1)
	if denom > 1e-12 {
		ratio = award.F() / denom.F()
	}
	return fullCandidate{loc: c, pos: pos, sojourn: sojourn, award: award, travelD: travelD}, ratio, true
}

// betterFull is the strict total order on candidates: higher ratio, then
// higher award, then lower id — the id tie-break makes the parallel scan
// bit-identical to the serial one.
func betterFull(c1 fullCandidate, r1 float64, c2 fullCandidate, r2 float64) bool {
	if c2.loc < 0 {
		return true
	}
	if r1 != r2 { //uavdc:allow floateq exact compare keeps the tie-break order total and bit-reproducible; an epsilon would break transitivity
		return r1 > r2
	}
	if c1.award != c2.award { //uavdc:allow floateq exact compare keeps the tie-break order total and bit-reproducible; an epsilon would break transitivity
		return c1.award > c2.award
	}
	return c1.loc < c2.loc
}

// pickNext scans all unselected candidates and returns the best-ratio
// feasible one, fanning the scan across Workers goroutines when asked.
// The default fast scan walks only residual-active candidates; Reference
// (and ExactRatioTSP, whose pricing needs the serial tour) restores the
// full scan. Both return bit-identical picks.
func (a *Algorithm2) pickNext(st *greedyState) (fullCandidate, bool) {
	if st.reference {
		return a.pickNextRef(st)
	}
	return a.pickNextFast(st)
}

// pickNextFast scans the residual-active candidate list, fanning across
// Workers goroutines over contiguous shards of the list so the merged
// record stream equals the serial fast stream. Candidates it skips are
// exactly those the reference scan evaluates and discards for zero award;
// the skip count is recorded so evals + skipped always reconciles with
// the reference scan's evals.
func (a *Algorithm2) pickNextFast(st *greedyState) (fullCandidate, bool) {
	cur := st.energy()
	active := st.scanIdx().compact()
	st.ins.reset(st.tour.Len(), func(i int) geom.Point { return st.set.Locs[st.tour.Order[i]].Pos })
	evals := int64(0)
	for _, c := range active {
		if !st.inTour[int(c)] {
			evals++
		}
	}
	// The reference scan evaluates every candidate outside the tour.
	st.cSkipped.Add(int64(st.set.Len()-st.tour.Len()) - evals)
	workers := a.Workers
	if workers <= 1 || len(active) < 256 {
		best := fullCandidate{loc: -1}
		bestRatio := -1.0
		so := newScanObs(st.rec)
		for _, c32 := range active {
			c := int(c32)
			if st.inTour[c] {
				continue
			}
			if cand, ratio, ok := a.evalFull(st, c, cur, so); ok && betterFull(cand, ratio, best, bestRatio) {
				best, bestRatio = cand, ratio
			}
		}
		return best, best.loc >= 0
	}
	type localBest struct {
		cand  fullCandidate
		ratio float64
	}
	results := make([]localBest, workers)
	shards := trace.ShardObs(st.rec, workers)
	var wg sync.WaitGroup
	chunk := (len(active) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(active))
		results[w] = localBest{cand: fullCandidate{loc: -1}, ratio: -1}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			so := newScanObs(shards[w])
			best := localBest{cand: fullCandidate{loc: -1}, ratio: -1}
			for _, c32 := range active[lo:hi] {
				c := int(c32)
				if st.inTour[c] {
					continue
				}
				if cand, ratio, ok := a.evalFull(st, c, cur, so); ok && betterFull(cand, ratio, best.cand, best.ratio) {
					best = localBest{cand: cand, ratio: ratio}
				}
			}
			results[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	trace.MergeObs(st.rec, shards)
	best := localBest{cand: fullCandidate{loc: -1}, ratio: -1}
	for _, r := range results {
		if r.cand.loc >= 0 && betterFull(r.cand, r.ratio, best.cand, best.ratio) {
			best = r
		}
	}
	return best.cand, best.cand.loc >= 0
}

// pickNextRef is the retained reference scan: every candidate outside the
// tour is priced each iteration.
func (a *Algorithm2) pickNextRef(st *greedyState) (fullCandidate, bool) {
	cur := st.energy()
	n := st.set.Len()
	workers := a.Workers
	if workers <= 1 || a.ExactRatioTSP || n < 256 {
		best := fullCandidate{loc: -1}
		bestRatio := -1.0
		so := newScanObs(st.rec)
		for c := 1; c < n; c++ {
			if st.inTour[c] {
				continue
			}
			if cand, ratio, ok := a.evalFull(st, c, cur, so); ok && betterFull(cand, ratio, best, bestRatio) {
				best, bestRatio = cand, ratio
			}
		}
		return best, best.loc >= 0
	}
	type localBest struct {
		cand  fullCandidate
		ratio float64
	}
	results := make([]localBest, workers)
	shards := trace.ShardObs(st.rec, workers)
	var wg sync.WaitGroup
	chunk := (n - 1 + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := 1 + w*chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			results[w] = localBest{cand: fullCandidate{loc: -1}, ratio: -1}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			so := newScanObs(shards[w])
			best := localBest{cand: fullCandidate{loc: -1}, ratio: -1}
			for c := lo; c < hi; c++ {
				if st.inTour[c] {
					continue
				}
				if cand, ratio, ok := a.evalFull(st, c, cur, so); ok && betterFull(cand, ratio, best.cand, best.ratio) {
					best = localBest{cand: cand, ratio: ratio}
				}
			}
			results[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	trace.MergeObs(st.rec, shards)
	best := localBest{cand: fullCandidate{loc: -1}, ratio: -1}
	for _, r := range results {
		if r.cand.loc >= 0 && betterFull(r.cand, r.ratio, best.cand, best.ratio) {
			best = r
		}
	}
	return best.cand, best.cand.loc >= 0
}

// greedyState is the shared incremental machinery of Algorithms 2 and 3.
type greedyState struct {
	in       *Instance
	set      *hover.Set
	tour     tsp.Tour // over hover-set ids, depot always present
	dist     tsp.Metric
	inTour   []bool
	residual []units.Bits // remaining volume per sensor, MB
	// stops accumulates accepted stops keyed by hover-set id.
	sojourns  map[int]units.Seconds
	collected map[int]map[int]units.Bits // loc → sensor → MB
	hoverTime units.Seconds
	// rec is the instance's recorder (obs.Discard when uninstrumented);
	// cAccepted/cUpgraded are its cached accept-path counter handles.
	rec       obs.Recorder
	cAccepted obs.Counter
	cUpgraded obs.Counter
	cSkipped  obs.Counter
	// reference selects the retained full-scan path; the default fast
	// path maintains idx (the residual-active candidate index, built
	// lazily so callers may seed residuals first) and prices insertions
	// through ins (per-iteration cached tour edges).
	reference bool
	idx       *scanIndex
	ins       insertionScratch
}

func newGreedyState(in *Instance, set *hover.Set) *greedyState {
	rec := in.obsRecorder()
	st := &greedyState{
		in:        in,
		set:       set,
		tour:      tsp.Tour{Order: []int{hover.DepotID}},
		inTour:    make([]bool, set.Len()),
		residual:  make([]units.Bits, len(in.Net.Sensors)),
		sojourns:  map[int]units.Seconds{},
		collected: map[int]map[int]units.Bits{},
		rec:       rec,
		cAccepted: rec.Counter(CounterAcceptedStops),
		cUpgraded: rec.Counter(CounterUpgradedStops),
		cSkipped:  rec.Counter(CounterScanSkippedDrained),
	}
	st.dist = func(i, j int) float64 { return set.Dist(i, j) }
	st.inTour[hover.DepotID] = true
	for v := range st.residual {
		st.residual[v] = units.Bits(in.Net.Sensors[v].Data)
	}
	return st
}

// energy returns the actual energy of the current tour plus hover time.
func (st *greedyState) energy() units.Joules {
	return st.in.Model.TourEnergy(units.Meters(st.tour.Cost(st.dist)), st.hoverTime)
}

// scanIdx lazily builds the residual-active candidate index. Laziness
// matters for the LNS repair loop, which seeds residuals from a partially
// destroyed plan after constructing the state.
func (st *greedyState) scanIdx() *scanIndex {
	if st.idx == nil {
		st.idx = newScanIndex(st.set, st.residual, nil)
	}
	return st.idx
}

// noteDrained tells the index sensor v just hit exactly zero residual.
func (st *greedyState) noteDrained(v int) {
	if st.idx != nil {
		st.idx.drained(v)
	}
}

// improveTour re-optimises the tour after an acceptance. The fast path
// polishes through a dense submatrix over the tour's items — bit-identical
// moves, counters and trace to the direct form (see tsp.ImproveDense).
func (st *greedyState) improveTour() {
	if st.reference {
		tsp.Improve(&st.tour, st.dist, st.rec)
	} else {
		tsp.ImproveDense(&st.tour, st.dist, st.rec)
	}
}

// acceptFull inserts the candidate, drains every still-loaded covered
// sensor completely, and re-optimises the tour order.
func (st *greedyState) acceptFull(c fullCandidate) {
	st.cAccepted.Inc()
	st.tour = tsp.Insert(st.tour, c.loc, c.pos)
	st.inTour[c.loc] = true
	st.sojourns[c.loc] = c.sojourn
	st.hoverTime += c.sojourn
	m := map[int]units.Bits{}
	for _, v := range st.set.Locs[c.loc].Covered {
		if st.residual[v] > 0 {
			m[v] = st.residual[v]
			st.residual[v] = 0
			st.noteDrained(v)
		}
	}
	st.collected[c.loc] = m
	st.improveTour()
}

// christofidesDelta prices candidate c by re-running Christofides over the
// selected set plus c (the literal Eq. 13). The returned position places c
// adjacent to its Christofides neighbours in the current tour as closely
// as cheapest insertion allows; the delta is the Christofides tour-length
// difference (clamped at ≥ 0).
func (st *greedyState) christofidesDelta(c int) (int, float64) {
	items := append(append([]int(nil), st.tour.Order...), c)
	full, err := tsp.Christofides(items, st.dist, st.rec)
	if err != nil {
		return tsp.BestInsertion(st.tour, c, st.dist)
	}
	tsp.Improve(&full, st.dist, st.rec)
	delta := full.Cost(st.dist) - st.tour.Cost(st.dist)
	if delta < 0 {
		delta = 0
	}
	pos, _ := tsp.BestInsertion(st.tour, c, st.dist)
	return pos, delta
}

// plan freezes the state into a Plan in tour order.
func (st *greedyState) plan(name string) *Plan {
	st.tour.RotateTo(hover.DepotID)
	p := &Plan{Algorithm: name, Depot: st.in.Net.Depot}
	for _, id := range st.tour.Order {
		if id == hover.DepotID {
			continue
		}
		stop := Stop{
			Pos:     st.set.Locs[id].Pos,
			LocID:   id,
			Sojourn: st.sojourns[id].F(),
		}
		for v, amt := range st.collected[id] {
			stop.Collected = append(stop.Collected, Collection{Sensor: v, Amount: amt.F()})
		}
		sortCollections(stop.Collected)
		p.Stops = append(p.Stops, stop)
	}
	return p
}

func sortCollections(cs []Collection) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Sensor < cs[j-1].Sensor; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
