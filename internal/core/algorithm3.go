package core

import (
	"math"
	"sync"

	"uavdc/internal/geom"
	"uavdc/internal/hover"
	"uavdc/internal/trace"
	"uavdc/internal/tsp"
	"uavdc/internal/units"
)

// Algorithm3 is the heuristic for the partial data-collection maximisation
// problem (Section VI). Each real hovering location s_j spawns K virtual
// locations s_{j,k} with sojourn k·t(s_j)/K and award per Eq. 4; the greedy
// ρ-ratio loop of Algorithm 2 then runs over the virtual candidates with
// two extra rules: (i) at most one virtual location per real location may
// be in the tour — choosing a second one upgrades the stop in place
// (Lemma 2), paying only the extra hover energy; (ii) residual volumes and
// candidate awards/sojourns are recomputed after every acceptance, because
// a sensor in overlapping coverage may have been partially drained at
// another stop.
//
// Implementation note: the sojourn ladder is rebuilt from the *residual*
// drain time of each location at evaluation time rather than frozen at the
// initial t(s_j). The paper's Algorithm 3 (line 12) already recomputes
// t′ and P′ against residuals for overlapping candidates; deriving the K
// levels from the current t′ applies that recomputation uniformly and
// makes K = 1 coincide exactly with Algorithm 2.
type Algorithm3 struct {
	// Workers sets the number of goroutines scanning candidate locations
	// per iteration; 0 or 1 means serial. Results are identical at any
	// worker count (total-order tie-breaking).
	Workers int
	// Reference disables the fast scan path (residual-active candidate
	// index, cached insertion edges, dense local-search submatrix) and
	// runs the original full scan. Plans are bit-identical either way;
	// see Algorithm2.Reference.
	Reference bool
}

// Name implements Planner.
func (a *Algorithm3) Name() string { return "algorithm3" }

type partialCandidate struct {
	loc     int           // hover-set id
	pos     int           // insertion position (new bases only)
	upgrade bool          // true when loc is already in the tour
	sojourn units.Seconds // new total sojourn at the stop
	gain    units.Bits    // extra MB collected
	hoverE  units.Joules  // extra hover energy, J
	travelE units.Joules  // extra travel energy, J
	take    map[int]units.Bits
}

// Plan implements Planner.
func (a *Algorithm3) Plan(in *Instance) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	k := in.K
	if k < 1 {
		k = 1
	}
	tr := in.tracer()
	endPlan := tr.Begin(SpanPlanAlg3, trace.Int("k", k))
	endCand := tr.Begin(SpanPlanAlg3Candidates)
	set, err := in.buildCandidates(hover.Options{})
	if err != nil {
		endCand()
		endPlan()
		return nil, err
	}
	endCand(trace.Int("candidates", set.Len()))
	st := newGreedyState(in, set)
	st.reference = a.Reference
	for {
		endIter := tr.Begin(SpanPlanAlg3Iterate)
		best, ok := a.pickNext(st, k)
		if !ok {
			endIter()
			break
		}
		st.acceptPartial(best)
		endIter(trace.Int("loc", best.loc))
	}
	p := st.plan(a.Name())
	endPlan(trace.Int("stops", len(p.Stops)))
	return p, nil
}

// betterPartial is the strict total order used to merge candidate scans:
// higher ratio, then higher gain, then lower location id, then lower
// sojourn (level) — identical to the serial first-seen preference.
func betterPartial(c1 partialCandidate, r1 float64, c2 partialCandidate, r2 float64) bool {
	if c2.loc < 0 {
		return true
	}
	if r1 != r2 { //uavdc:allow floateq exact compare keeps the tie-break order total and bit-reproducible; an epsilon would break transitivity
		return r1 > r2
	}
	if c1.gain != c2.gain { //uavdc:allow floateq exact compare keeps the tie-break order total and bit-reproducible; an epsilon would break transitivity
		return c1.gain > c2.gain
	}
	if c1.loc != c2.loc {
		return c1.loc < c2.loc
	}
	return c1.sojourn < c2.sojourn
}

// pickNext scans every (location, level) pair, fanning across Workers
// goroutines when asked. The default fast scan walks only residual-active
// locations — an inactive location can produce neither a positive full
// award nor a positive partial gain, and a fully drained in-tour stop has
// no level above its current sojourn, so skipping both is bit-equivalent.
func (a *Algorithm3) pickNext(st *greedyState, k int) (partialCandidate, bool) {
	if st.reference {
		return a.pickNextRef(st, k)
	}
	return a.pickNextFast(st, k)
}

// pickNextFast scans the residual-active location list, sharding it
// contiguously across Workers goroutines; the skip count reconciles the
// fast scan's evals with the reference scan's (which visits every
// location each iteration).
func (a *Algorithm3) pickNextFast(st *greedyState, k int) (partialCandidate, bool) {
	cur := st.energy()
	active := st.scanIdx().compact()
	st.ins.reset(st.tour.Len(), func(i int) geom.Point { return st.set.Locs[st.tour.Order[i]].Pos })
	st.cSkipped.Add(int64(st.set.Len()-1) - int64(len(active)))
	workers := a.Workers
	if workers <= 1 || len(active) < 256 {
		best := partialCandidate{loc: -1}
		bestRatio := -1.0
		so := newScanObs(st.rec)
		for _, c := range active {
			if cand, ratio, ok := a.evalLoc(st, k, int(c), cur, so); ok && betterPartial(cand, ratio, best, bestRatio) {
				best, bestRatio = cand, ratio
			}
		}
		return best, best.loc >= 0
	}
	type localBest struct {
		cand  partialCandidate
		ratio float64
	}
	results := make([]localBest, workers)
	shards := trace.ShardObs(st.rec, workers)
	var wg sync.WaitGroup
	chunk := (len(active) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(active))
		results[w] = localBest{cand: partialCandidate{loc: -1}, ratio: -1}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			so := newScanObs(shards[w])
			best := localBest{cand: partialCandidate{loc: -1}, ratio: -1}
			for _, c := range active[lo:hi] {
				if cand, ratio, ok := a.evalLoc(st, k, int(c), cur, so); ok && betterPartial(cand, ratio, best.cand, best.ratio) {
					best = localBest{cand: cand, ratio: ratio}
				}
			}
			results[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	trace.MergeObs(st.rec, shards)
	best := localBest{cand: partialCandidate{loc: -1}, ratio: -1}
	for _, r := range results {
		if r.cand.loc >= 0 && betterPartial(r.cand, r.ratio, best.cand, best.ratio) {
			best = r
		}
	}
	return best.cand, best.cand.loc >= 0
}

// pickNextRef is the retained reference scan over every location.
func (a *Algorithm3) pickNextRef(st *greedyState, k int) (partialCandidate, bool) {
	n := st.set.Len()
	workers := a.Workers
	if workers <= 1 || n < 256 {
		best := partialCandidate{loc: -1}
		bestRatio := -1.0
		cur := st.energy()
		so := newScanObs(st.rec)
		for c := 1; c < n; c++ {
			if cand, ratio, ok := a.evalLoc(st, k, c, cur, so); ok && betterPartial(cand, ratio, best, bestRatio) {
				best, bestRatio = cand, ratio
			}
		}
		return best, best.loc >= 0
	}
	type localBest struct {
		cand  partialCandidate
		ratio float64
	}
	cur := st.energy()
	results := make([]localBest, workers)
	shards := trace.ShardObs(st.rec, workers)
	var wg sync.WaitGroup
	chunk := (n - 1 + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := 1 + w*chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		results[w] = localBest{cand: partialCandidate{loc: -1}, ratio: -1}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			so := newScanObs(shards[w])
			best := localBest{cand: partialCandidate{loc: -1}, ratio: -1}
			for c := lo; c < hi; c++ {
				if cand, ratio, ok := a.evalLoc(st, k, c, cur, so); ok && betterPartial(cand, ratio, best.cand, best.ratio) {
					best = localBest{cand: cand, ratio: ratio}
				}
			}
			results[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	trace.MergeObs(st.rec, shards)
	best := localBest{cand: partialCandidate{loc: -1}, ratio: -1}
	for _, r := range results {
		if r.cand.loc >= 0 && betterPartial(r.cand, r.ratio, best.cand, best.ratio) {
			best = r
		}
	}
	return best.cand, best.cand.loc >= 0
}

// evalLoc prices every level of one location and returns its best
// candidate under the total order. so carries the evaluating worker's
// counter handles.
func (a *Algorithm3) evalLoc(st *greedyState, k, c int, cur units.Joules, so scanObs) (partialCandidate, float64, bool) {
	so.evalHit(c)
	in := st.in
	best := partialCandidate{loc: -1}
	bestRatio := -1.0
	budget := in.Budget()
	loc := &st.set.Locs[c]
	// Residual full-drain time defines this location's level ladder.
	so.resid.Inc()
	fullSojourn, fullAward := hover.ResidualDrain(loc.Covered, st.residual, loc.Rates, units.BitsPerSecond(in.Net.Bandwidth))
	prevSojourn := st.sojourns[c] // 0 when not in tour
	already := st.collected[c]
	if fullAward <= 0 && !st.inTour[c] {
		return best, -1, false
	}
	var pos int
	var travelD float64
	if !st.inTour[c] {
		if st.reference {
			pos, travelD = tsp.BestInsertion(st.tour, c, st.dist)
		} else {
			pos, travelD = st.ins.bestInsertion(loc.Pos)
		}
	}
	for level := 1; level <= k; level++ {
		sojourn := units.Seconds(float64(level) * fullSojourn.F() / float64(k))
		if sojourn <= prevSojourn+1e-12 {
			continue // not an upgrade; paper discards dominated levels
		}
		gain, take := partialTake(loc.Covered, st.residual, already, loc.Rates, units.BitsPerSecond(in.Net.Bandwidth), sojourn)
		if gain <= 1e-12 {
			continue
		}
		hoverE := in.Model.HoverEnergy(sojourn - prevSojourn)
		var travelE units.Joules
		if !st.inTour[c] {
			travelE = in.Model.TravelEnergy(units.Meters(travelD))
		}
		if cur+hoverE+travelE > budget+1e-9 {
			so.pruned.Inc()
			continue
		}
		denom := hoverE + travelE
		ratio := math.Inf(1)
		if denom > 1e-12 {
			ratio = gain.F() / denom.F()
		}
		cand := partialCandidate{
			loc:     c,
			pos:     pos,
			upgrade: st.inTour[c],
			sojourn: sojourn,
			gain:    gain,
			hoverE:  hoverE,
			travelE: travelE,
			take:    take,
		}
		if betterPartial(cand, ratio, best, bestRatio) {
			best, bestRatio = cand, ratio
		}
	}
	return best, bestRatio, best.loc >= 0
}

// partialTake computes, for a stop at the given location with total sojourn
// time, how much more each covered sensor can upload: the per-sensor cap is
// rate_v·sojourn for the whole stay, minus what this stop already took,
// bounded by the sensor's residual volume. rates is parallel to covered;
// nil means the constant bandwidth.
func partialTake(covered []int, residual []units.Bits, already map[int]units.Bits, rates []units.BitsPerSecond, bandwidth units.BitsPerSecond, sojourn units.Seconds) (units.Bits, map[int]units.Bits) {
	var gain units.Bits
	take := make(map[int]units.Bits, len(covered))
	for i, v := range covered {
		if residual[v] <= 0 {
			continue
		}
		r := bandwidth
		if rates != nil {
			r = rates[i]
		}
		room := units.Transfer(r, sojourn) - already[v]
		if room <= 0 {
			continue
		}
		amt := units.Min(residual[v], room)
		if amt > 0 {
			take[v] = amt
			gain += amt
		}
	}
	return gain, take
}

// acceptPartial applies a partial candidate: inserts or upgrades the stop,
// moves the taken volumes from residuals into the stop's ledger, and
// re-optimises the tour.
func (st *greedyState) acceptPartial(c partialCandidate) {
	if c.upgrade {
		st.cUpgraded.Inc()
	} else {
		st.cAccepted.Inc()
		st.tour = tsp.Insert(st.tour, c.loc, c.pos)
		st.inTour[c.loc] = true
		st.collected[c.loc] = map[int]units.Bits{}
	}
	st.hoverTime += c.sojourn - st.sojourns[c.loc]
	st.sojourns[c.loc] = c.sojourn
	ledger := st.collected[c.loc]
	for v, amt := range c.take {
		ledger[v] += amt
		st.residual[v] -= amt
		if st.residual[v] <= 0 {
			st.residual[v] = 0
			st.noteDrained(v)
		}
	}
	st.improveTour()
}
