package core

import (
	"fmt"

	"uavdc/internal/tsp"
	"uavdc/internal/units"
)

// BenchmarkCoverage is an ablation baseline that isolates *where* the
// framework's win comes from. Like BenchmarkPlanner it builds a
// Christofides tour over all sensors and prunes to the budget — but while
// hovering over a sensor it collects from every sensor within coverage
// range (the paper's simultaneous-collection framework), not just the one
// beneath it. Comparing the three planners separates the two effects the
// paper conflates:
//
//	BenchmarkPlanner     — neither framework nor placement optimisation
//	BenchmarkCoverage    — framework only (stops still glued to sensors)
//	Algorithm 2/3        — framework + optimised hovering placement
type BenchmarkCoverage struct{}

// Name implements Planner.
func (b *BenchmarkCoverage) Name() string { return "benchmark-coverage" }

// Plan implements Planner.
func (b *BenchmarkCoverage) Plan(in *Instance) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	rec := in.obsRecorder()
	so := newScanObs(rec)
	removals := rec.Counter(CounterBenchRemovals)
	net := in.Net
	n := len(net.Sensors)
	r0 := in.EffectiveCoverRadius()
	dist := func(i, j int) float64 { return pos(in, i).Dist(pos(in, j)) }
	items := make([]int, n+1)
	for i := range items {
		items[i] = i
	}
	tour, err := tsp.Christofides(items, dist, rec)
	if err != nil {
		return nil, fmt.Errorf("core: benchmark-coverage tsp: %w", err)
	}
	tsp.Improve(&tour, dist, rec)
	tour.RotateTo(0)

	// Iteratively: realise the coverage-aware plan along the tour, and
	// while it exceeds the budget prune the stop with the least collected
	// data per joule saved. Realisation is order-dependent (a sensor is
	// drained at the first stop covering it), so recompute after each
	// removal.
	for {
		plan := b.realize(in, tour, r0)
		if plan.Energy(in.Model) <= in.Budget().F()+1e-9 {
			return plan, nil
		}
		// Score stops by loss/saving; plan.Stops parallels tour.Order[1:].
		bestIdx, bestScore := -1, 0.0
		for si := range plan.Stops {
			so.evals.Inc()
			stop := &plan.Stops[si]
			_, travelD := tsp.Remove(tour, tour.Order[si+1], dist)
			saved := in.Model.TravelEnergy(units.Meters(travelD)) + in.Model.HoverEnergy(units.Seconds(stop.Sojourn))
			if saved <= 1e-12 {
				bestIdx = si
				break
			}
			score := stop.CollectedTotal() / saved.F()
			if bestIdx < 0 || score < bestScore {
				bestIdx, bestScore = si, score
			}
		}
		if bestIdx < 0 {
			return plan, nil // only the depot remains; plan is empty
		}
		tour, _ = tsp.Remove(tour, tour.Order[bestIdx+1], dist)
		removals.Inc()
		tsp.Improve(&tour, dist, rec)
		tour.RotateTo(0)
	}
}

// realize walks the tour and assigns each sensor to the first stop whose
// coverage reaches it; sojourns are the residual drain of the assigned
// sensors.
func (b *BenchmarkCoverage) realize(in *Instance, tour tsp.Tour, r0 units.Meters) *Plan {
	net := in.Net
	plan := &Plan{Algorithm: b.Name(), Depot: net.Depot}
	claimed := make([]bool, len(net.Sensors))
	for _, it := range tour.Order {
		if it == 0 {
			continue
		}
		center := net.Sensors[it-1].Pos
		stop := Stop{Pos: center, LocID: -1}
		for _, v := range net.CoveredBy(center, r0.F()) {
			if claimed[v] {
				continue
			}
			claimed[v] = true
			d := net.Sensors[v].Data
			stop.Collected = append(stop.Collected, Collection{Sensor: v, Amount: d})
			if t := d / net.Bandwidth; t > stop.Sojourn {
				stop.Sojourn = t
			}
		}
		plan.Stops = append(plan.Stops, stop)
	}
	return plan
}
