package core

import (
	"testing"

	"uavdc/internal/units"
)

func TestBenchmarkCoverageValid(t *testing.T) {
	for _, capacity := range []units.Joules{5e3, 1.5e4, 1e9} {
		in := mediumInstance(t, 3, capacity)
		plan, err := (&BenchmarkCoverage{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), plan); err != nil {
			t.Errorf("E=%g: %v", capacity, err)
		}
	}
}

// TestAblationDecomposition orders the three baselines: adding the
// framework to the benchmark must help, and freeing the hovering
// positions (Algorithm 2) must help again.
func TestAblationDecomposition(t *testing.T) {
	var plain, cov, alg2 float64
	for _, seed := range []uint64{1, 2, 3, 4} {
		in := mediumInstance(t, seed, 1.2e4)
		p1, err := (&BenchmarkPlanner{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := (&BenchmarkCoverage{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		p3, err := (&Algorithm2{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		plain += p1.Collected()
		cov += p2.Collected()
		alg2 += p3.Collected()
	}
	if cov <= plain {
		t.Errorf("framework added nothing: coverage %v vs plain %v", cov, plain)
	}
	if alg2 <= cov {
		t.Errorf("placement optimisation added nothing: algorithm2 %v vs coverage %v", alg2, cov)
	}
}

func TestBenchmarkCoverageNoDoubleCollection(t *testing.T) {
	in := mediumInstance(t, 5, 2e4)
	plan, err := (&BenchmarkCoverage{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range plan.Stops {
		for _, c := range s.Collected {
			if seen[c.Sensor] {
				t.Fatalf("sensor %d collected twice", c.Sensor)
			}
			seen[c.Sensor] = true
		}
	}
}

func TestBenchmarkCoverageZeroCapacity(t *testing.T) {
	in := mediumInstance(t, 6, 0)
	plan, err := (&BenchmarkCoverage{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stops) != 0 {
		t.Errorf("zero budget produced %d stops", len(plan.Stops))
	}
}
