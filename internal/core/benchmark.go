package core

import (
	"fmt"

	"uavdc/internal/geom"
	"uavdc/internal/trace"
	"uavdc/internal/tsp"
	"uavdc/internal/units"
)

// BenchmarkPlanner is the evaluation baseline of Section VII-A: build a
// Christofides tour over the depot and *all* aggregate sensor nodes
// (hovering directly above each node, collecting only that node's data —
// it does not use the paper's simultaneous multi-device collection
// framework), then, while the tour exceeds the energy capacity, remove the
// node whose removal loses the least data volume per unit of energy saved.
type BenchmarkPlanner struct {
	// ImproveEvery controls how often (in removals) the pruned tour is
	// re-optimised with 2-opt; 0 means every removal, matching the
	// paper's description of re-computing the tour as nodes are pruned.
	ImproveEvery int
	// Reference disables the fast path: the dense memoised distance
	// matrix over depot+sensors and the in-place removal pricing (the
	// neighbour-edge delta computed directly instead of through
	// tsp.Remove's index scan and slice copy). Both are pure expression
	// rewrites yielding the exact same float64s, so plans, counters and
	// traces are bit-identical either way.
	Reference bool
}

// Name implements Planner.
func (b *BenchmarkPlanner) Name() string { return "benchmark" }

// Plan implements Planner.
func (b *BenchmarkPlanner) Plan(in *Instance) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	rec := in.obsRecorder()
	tr := in.tracer()
	so := newScanObs(rec)
	removals := rec.Counter(CounterBenchRemovals)
	net := in.Net
	n := len(net.Sensors)
	endPlan := tr.Begin(SpanPlanBench, trace.Int("nodes", n+1))
	// Item ids: 0 is the depot, 1..n are sensors (sensor v is item v+1).
	dist := tsp.Metric(func(i, j int) float64 { return pos(in, i).Dist(pos(in, j)) })
	if !b.Reference && n+1 <= costMemoMax {
		dist = tsp.MemoMetric(n+1, dist)
	}
	items := make([]int, n+1)
	for i := range items {
		items[i] = i
	}
	endCon := tr.Begin(SpanPlanBenchConstruct)
	tour, err := tsp.Christofides(items, dist, rec)
	if err != nil {
		endCon()
		endPlan()
		return nil, fmt.Errorf("core: benchmark tsp: %w", err)
	}
	tsp.Improve(&tour, dist, rec)
	endCon()

	var hoverTime units.Seconds
	for v := 0; v < n; v++ {
		hoverTime += units.Seconds(net.UploadTime(v))
	}

	improveEvery := b.ImproveEvery
	if improveEvery <= 0 {
		improveEvery = 1
	}
	removed := 0
	endPrune := tr.Begin(SpanPlanBenchPrune)
	for in.Model.TourEnergy(units.Meters(tour.Cost(dist)), hoverTime) > in.Budget()+1e-9 {
		// Find the cheapest-loss removal.
		bestItem := -1
		bestScore := 0.0
		tn := tour.Len()
		for ti, it := range tour.Order {
			if it == 0 {
				continue // never remove the depot
			}
			so.evals.Inc()
			v := it - 1
			var travelD float64
			switch {
			case b.Reference:
				_, travelD = tsp.Remove(tour, it, dist)
			case tn >= 3:
				// tsp.Remove's delta for the known position, without the
				// index scan or the pruned-tour copy it allocates.
				a := tour.Order[(ti-1+tn)%tn]
				bb := tour.Order[(ti+1)%tn]
				travelD = dist(a, it) + dist(it, bb) - dist(a, bb)
			case tn == 2:
				travelD = 2 * dist(tour.Order[0], tour.Order[1])
			}
			saved := in.Model.TravelEnergy(units.Meters(travelD)) + in.Model.HoverEnergy(units.Seconds(net.UploadTime(v)))
			if saved <= 1e-12 {
				// Removing frees no energy (duplicate position); always take it.
				bestItem = it
				break
			}
			score := net.Sensors[v].Data / saved.F()
			if bestItem < 0 || score < bestScore {
				bestItem, bestScore = it, score
			}
		}
		if bestItem < 0 {
			break // only the depot remains
		}
		tour, _ = tsp.Remove(tour, bestItem, dist)
		hoverTime -= units.Seconds(net.UploadTime(bestItem - 1))
		removals.Inc()
		tr.Event(EventBenchRemove, trace.Int("item", bestItem))
		removed++
		if removed%improveEvery == 0 {
			tsp.Improve(&tour, dist, rec)
		}
	}
	endPrune(trace.Int("removed", removed))
	tsp.Improve(&tour, dist, rec)

	tour.RotateTo(0)
	plan := &Plan{Algorithm: b.Name(), Depot: net.Depot}
	for _, it := range tour.Order {
		if it == 0 {
			continue
		}
		v := it - 1
		plan.Stops = append(plan.Stops, Stop{
			Pos:       net.Sensors[v].Pos,
			LocID:     -1,
			Sojourn:   net.UploadTime(v),
			Collected: []Collection{{Sensor: v, Amount: net.Sensors[v].Data}},
		})
	}
	endPlan(trace.Int("stops", len(plan.Stops)))
	return plan, nil
}

// pos maps benchmark item ids to positions: 0 is the depot, i ≥ 1 is
// sensor i-1.
func pos(in *Instance, i int) geom.Point {
	if i == 0 {
		return in.Net.Depot
	}
	return in.Net.Sensors[i-1].Pos
}
