package core

import (
	"uavdc/internal/canon"
	"uavdc/internal/radio"
)

// Canonical maps the typed planning instance to the canonical encoding.
// The algorithm name and refine flag complete the planner selection — they
// live outside core.Instance (the facade resolves them) but inside the
// cache identity. Worker counts and the Obs recorder are deliberately
// absent: the determinism rails guarantee they never change the plan.
func (in *Instance) Canonical(algorithm string, refine bool) (canon.Instance, error) {
	r, err := radio.Canon(in.Radio)
	if err != nil {
		return canon.Instance{}, err
	}
	out := canon.Instance{
		MinX: in.Net.Region.Min.X, MinY: in.Net.Region.Min.Y,
		MaxX: in.Net.Region.Max.X, MaxY: in.Net.Region.Max.Y,
		DepotX: in.Net.Depot.X, DepotY: in.Net.Depot.Y,
		Sensors:       make([]canon.Sensor, len(in.Net.Sensors)),
		BandwidthMBps: in.Net.Bandwidth,
		CommRangeM:    in.Net.CommRange,
		HoverPowerW:   in.Model.HoverPower.F(),
		TravelPowerW:  in.Model.TravelPower.F(),
		SpeedMS:       in.Model.Speed.F(),
		CapacityJ:     in.Model.Capacity.F(),
		ClimbPowerW:   in.Model.ClimbPower.F(),
		ClimbRateMS:   in.Model.ClimbRate.F(),
		DeltaM:        in.Delta.F(),
		CoverRadiusM:  in.CoverRadius.F(),
		K:             int64(in.K),
		AltitudeM:     in.Altitude.F(),
		Radio:         r,
		Algorithm:     algorithm,
		Refine:        refine,
	}
	for i, s := range in.Net.Sensors {
		out.Sensors[i] = canon.Sensor{X: s.Pos.X, Y: s.Pos.Y, Data: s.Data}
	}
	return out, nil
}

// CanonKey content-addresses the instance plus planner selection.
func (in *Instance) CanonKey(algorithm string, refine bool) (canon.Key, error) {
	ci, err := in.Canonical(algorithm, refine)
	if err != nil {
		return canon.Key{}, err
	}
	return ci.Key(), nil
}
