package core

import (
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/radio"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

func canonInstance() *Instance {
	return &Instance{
		Net: &sensornet.Network{
			Region:    geom.Square(200),
			Depot:     geom.Pt(100, 100),
			Bandwidth: 150,
			CommRange: 50,
			Sensors: []sensornet.Sensor{
				{Pos: geom.Pt(10, 20), Data: 300},
				{Pos: geom.Pt(150, 40), Data: 512.5},
			},
		},
		Model: energy.Default(),
		Delta: 10,
		K:     4,
	}
}

func TestCanonicalMapsInstance(t *testing.T) {
	in := canonInstance()
	ci, err := in.Canonical("partial", false)
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if ci.MaxX != 200 || ci.DepotX != 100 || len(ci.Sensors) != 2 {
		t.Fatalf("geometry drifted: %+v", ci)
	}
	if ci.Sensors[1].Data != 512.5 || ci.CommRangeM != 50 {
		t.Fatalf("field drifted: %+v", ci)
	}
	if ci.HoverPowerW != in.Model.HoverPower.F() || ci.CapacityJ != in.Model.Capacity.F() {
		t.Fatalf("energy model drifted: %+v", ci)
	}
	if ci.DeltaM != 10 || ci.K != 4 || ci.Algorithm != "partial" || ci.Refine {
		t.Fatalf("knobs drifted: %+v", ci)
	}
}

func TestCanonicalRadioKinds(t *testing.T) {
	in := canonInstance()
	ci, err := in.Canonical("partial", false)
	if err != nil {
		t.Fatal(err)
	}
	baseKey := ci.Key()

	in.Radio = radio.Constant{B: 120}
	cc, err := in.Canonical("partial", false)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Radio.RefRate != 120 || cc.Key() == baseKey {
		t.Fatalf("constant radio not keyed: %+v", cc.Radio)
	}

	in.Radio = radio.Shannon{RefRate: 150, RefDist: units.Meters(10), RefSNR: 100, PathLossExp: 2}
	cs, err := in.Canonical("partial", false)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Radio.RefSNR != 100 || cs.Key() == cc.Key() {
		t.Fatalf("shannon radio not keyed: %+v", cs.Radio)
	}
}

type fakeRadio struct{}

func (fakeRadio) Rate(units.Meters) units.BitsPerSecond { return 1 }

func TestCanonicalRejectsUnknownRadio(t *testing.T) {
	in := canonInstance()
	in.Radio = fakeRadio{}
	if _, err := in.Canonical("partial", false); err == nil {
		t.Fatal("unknown radio model accepted")
	}
	if _, err := in.CanonKey("partial", false); err == nil {
		t.Fatal("CanonKey accepted unknown radio model")
	}
}
