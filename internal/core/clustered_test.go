package core

import (
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
)

// TestPlannersOnClusteredFields runs every planner on a Matérn-style
// clustered deployment — the robustness check the paper's uniform-only
// evaluation omits. Dense clusters stress the coverage model (one stop
// drains many sensors) and the long empty gaps stress the tour planner.
func TestPlannersOnClusteredFields(t *testing.T) {
	p := sensornet.ClusterParams{GenParams: sensornet.DefaultGenParams(), NumClusters: 5, ClusterRadius: 35}
	p.NumSensors = 70
	p.Side = 400
	for _, seed := range []uint64{1, 2} {
		net, err := sensornet.GenerateClustered(p, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		in := &Instance{Net: net, Model: energy.Default().WithCapacity(2e4), Delta: 20, K: 2}
		bench, err := (&BenchmarkPlanner{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range []Planner{&Algorithm1{}, &Algorithm2{}, &Algorithm3{}} {
			plan, err := pl.Plan(in)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", pl.Name(), seed, err)
			}
			if err := ValidatePlan(net, in.Model, in.EffectiveCoverRadius(), plan); err != nil {
				t.Fatalf("%s seed=%d: %v", pl.Name(), seed, err)
			}
			// Clustered fields are where simultaneous collection shines:
			// the coverage planners should crush the one-per-stop
			// baseline even harder than on uniform fields.
			if plan.Collected() < 1.5*bench.Collected() {
				t.Errorf("%s seed=%d: %v vs benchmark %v — expected a wide gap on clusters",
					pl.Name(), seed, plan.Collected(), bench.Collected())
			}
		}
	}
}
