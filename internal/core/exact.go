package core

import (
	"fmt"

	"uavdc/internal/hover"
	"uavdc/internal/tsp"
	"uavdc/internal/units"
)

// ExactMaxCandidates bounds the instances ExactPlanner accepts: the search
// enumerates every subset of hovering candidates.
const ExactMaxCandidates = 16

// ExactPlanner solves the full data-collection maximisation problem (with
// overlapping coverage) optimally on tiny instances, by enumerating every
// subset of hovering candidates, pricing each subset with an exact
// Held–Karp tour and greedy-optimal sensor-to-stop assignment, and keeping
// the best budget-feasible subset. Exponential in the candidate count —
// it exists as the ground-truth oracle that bounds the heuristics'
// optimality gap in tests, exactly as the exact DP does for the
// orienteering layer.
//
// Within a fixed subset S the collected volume is the union of S's
// coverage (every covered sensor fully drained — sojourn at each stop is
// the residual max, and assigning each sensor to one covering stop in any
// order yields the same union), so optimality reduces to choosing the best
// subset under the energy budget with the optimal TSP tour.
type ExactPlanner struct{}

// Name implements Planner.
func (e *ExactPlanner) Name() string { return "exact" }

// Plan implements Planner.
func (e *ExactPlanner) Plan(in *Instance) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	set, err := in.buildCandidates(hover.Options{})
	if err != nil {
		return nil, err
	}
	m := set.Len() - 1 // non-depot candidates
	if m > ExactMaxCandidates {
		return nil, fmt.Errorf("core: exact planner limited to %d candidates, got %d (raise delta or shrink the field)", ExactMaxCandidates, m)
	}
	dist := func(i, j int) float64 { return set.Dist(i, j) }

	bestVolume := -1.0
	var bestPlan *Plan
	// Enumerate candidate subsets; bit i of mask selects candidate i+1.
	for mask := 0; mask < 1<<m; mask++ {
		items := []int{hover.DepotID}
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				items = append(items, i+1)
			}
		}
		if len(items) > tsp.HeldKarpMax {
			continue // cannot price exactly; subsets this large exceed the budget anyway on oracle-sized instances
		}
		tour, tourLen, err := tsp.ExactHeldKarp(items, dist)
		if err != nil {
			return nil, err
		}
		tour.RotateTo(hover.DepotID)

		// Assign each sensor to the first stop covering it (tour order);
		// sojourn at each stop is the residual drain over its assigned
		// sensors (assignment order does not change the union volume, and
		// the sum of per-stop residual maxima is minimised by any
		// first-come assignment because each sensor is drained exactly
		// once at full rate).
		plan := &Plan{Algorithm: e.Name(), Depot: in.Net.Depot}
		claimed := make(map[int]bool)
		hoverTime := 0.0
		volume := 0.0
		for _, id := range tour.Order {
			if id == hover.DepotID {
				continue
			}
			loc := &set.Locs[id]
			stop := Stop{Pos: loc.Pos, LocID: id}
			for ci, v := range loc.Covered {
				if claimed[v] {
					continue
				}
				claimed[v] = true
				d := in.Net.Sensors[v].Data
				stop.Collected = append(stop.Collected, Collection{Sensor: v, Amount: d})
				if t := units.TransferTime(units.Bits(d), set.RateAt(id, ci)).F(); t > stop.Sojourn {
					stop.Sojourn = t
				}
				volume += d
			}
			hoverTime += stop.Sojourn
			plan.Stops = append(plan.Stops, stop)
		}
		energy := in.Model.TourEnergy(units.Meters(tourLen), units.Seconds(hoverTime))
		if energy > in.Budget()+1e-9 {
			continue
		}
		if volume > bestVolume+1e-9 {
			bestVolume = volume
			bestPlan = plan
		}
	}
	if bestPlan == nil {
		// Even the empty subset failed, which cannot happen (energy 0);
		// keep a defensive fallback.
		bestPlan = &Plan{Algorithm: e.Name(), Depot: in.Net.Depot}
	}
	return bestPlan, nil
}
