package core

import (
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

// oracleInstance is small enough for ExactPlanner: few sensors, coarse
// grid, so the candidate count stays under ExactMaxCandidates.
func oracleInstance(t testing.TB, seed uint64, capacity units.Joules) *Instance {
	t.Helper()
	p := sensornet.DefaultGenParams()
	p.NumSensors = 10
	p.Side = 200
	net, err := sensornet.Generate(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{Net: net, Model: energy.Default().WithCapacity(capacity), Delta: 60, K: 2}
}

func TestExactPlannerValid(t *testing.T) {
	for _, capacity := range []units.Joules{2e3, 5e3, 2e4} {
		in := oracleInstance(t, 1, capacity)
		plan, err := (&ExactPlanner{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), plan); err != nil {
			t.Errorf("E=%g: %v", capacity, err)
		}
	}
}

func TestExactPlannerRejectsLargeInstances(t *testing.T) {
	in := mediumInstance(t, 1, 1e4) // hundreds of candidates
	if _, err := (&ExactPlanner{}).Plan(in); err == nil {
		t.Error("oversized instance accepted")
	}
}

// TestHeuristicsNearOptimal bounds the optimality gap of Algorithms 1–3 on
// oracle-sized instances: the heuristics must reach a large fraction of
// the exact optimum, and never exceed it.
func TestHeuristicsNearOptimal(t *testing.T) {
	var optSum, a1Sum, a2Sum, a3Sum float64
	for seed := uint64(1); seed <= 6; seed++ {
		for _, capacity := range []units.Joules{4e3, 8e3} {
			in := oracleInstance(t, seed, capacity)
			opt, err := (&ExactPlanner{}).Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			optSum += opt.Collected()
			for _, tc := range []struct {
				pl  Planner
				sum *float64
			}{
				{&Algorithm1{}, &a1Sum},
				{&Algorithm2{}, &a2Sum},
				{&Algorithm3{}, &a3Sum},
			} {
				plan, err := tc.pl.Plan(in)
				if err != nil {
					t.Fatal(err)
				}
				got := plan.Collected()
				// Algorithm 1 restricts itself to disjoint coverage, so it
				// may legitimately trail the overlapping optimum; 2 and 3
				// must never beat the oracle.
				if tc.pl.Name() != "algorithm1" && got > opt.Collected()+1e-6 {
					t.Errorf("%s seed=%d E=%g: %v beat the exact optimum %v", tc.pl.Name(), seed, capacity, got, opt.Collected())
				}
				*tc.sum += got
			}
		}
	}
	if a2Sum < 0.9*optSum {
		t.Errorf("algorithm2 total %v below 90%% of optimum %v", a2Sum, optSum)
	}
	if a3Sum < 0.9*optSum {
		t.Errorf("algorithm3 total %v below 90%% of optimum %v", a3Sum, optSum)
	}
	if a1Sum < 0.6*optSum {
		t.Errorf("algorithm1 total %v below 60%% of optimum %v", a1Sum, optSum)
	}
}

func TestExactPlannerZeroBudget(t *testing.T) {
	in := oracleInstance(t, 2, 0)
	plan, err := (&ExactPlanner{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stops) != 0 || plan.Collected() != 0 {
		t.Errorf("zero budget plan: %d stops, %v MB", len(plan.Stops), plan.Collected())
	}
}

func TestExactPlannerHugeBudgetTakesUnion(t *testing.T) {
	in := oracleInstance(t, 3, 1e9)
	plan, err := (&ExactPlanner{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if diff := plan.Collected() - in.Net.TotalData(); diff < -1e-6 || diff > 1e-6 {
		t.Errorf("huge budget collected %v of %v", plan.Collected(), in.Net.TotalData())
	}
}
