package core

import (
	"testing"

	"uavdc/internal/geom"
	"uavdc/internal/obs"
	"uavdc/internal/units"
)

// These are the planner-level differential tests behind the fast-path
// parity contract (EXPERIMENTS.md): the spatial-index-pruned candidate
// scan, the cached-edge insertion pricing, and the memoized distance
// matrices must yield plans bit-identical to the retained reference scan,
// at every worker count, because the fast path only skips candidates whose
// award is provably zero and substitutes arithmetic that produces the
// exact same float64s.

// TestFastPathMatchesReferenceAlg2 runs Algorithm 2 both ways on several
// instances and worker counts and demands bit-equal plans.
func TestFastPathMatchesReferenceAlg2(t *testing.T) {
	for _, seed := range []uint64{1, 4, 9} {
		for _, capacity := range []units.Joules{1.2e4, 3e4} {
			in := mediumInstance(t, seed, capacity)
			in.Delta = 15
			ref, err := (&Algorithm2{Reference: true}).Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				fast, err := (&Algorithm2{Workers: workers}).Plan(in)
				if err != nil {
					t.Fatal(err)
				}
				assertPlansIdentical(t, "algorithm2-fast", workers, ref, fast)
			}
		}
	}
}

// TestFastPathMatchesReferenceAlg3 does the same for Algorithm 3 across K
// values (K = 1 degenerates to full drains; larger K exercises in-place
// upgrades, whose scan must keep drained in-tour stops visible).
func TestFastPathMatchesReferenceAlg3(t *testing.T) {
	for _, seed := range []uint64{2, 7} {
		for _, k := range []int{1, 2, 4} {
			in := mediumInstance(t, seed, 2e4)
			in.Delta = 15
			in.K = k
			ref, err := (&Algorithm3{Reference: true}).Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				fast, err := (&Algorithm3{Workers: workers}).Plan(in)
				if err != nil {
					t.Fatal(err)
				}
				assertPlansIdentical(t, "algorithm3-fast", workers, ref, fast)
			}
		}
	}
}

// TestFastPathMatchesReferenceLNS covers the destroy/repair loop, whose
// rebuilt states seed residuals before the lazy scan index is built.
func TestFastPathMatchesReferenceLNS(t *testing.T) {
	for _, seed := range []uint64{3, 8} {
		in := mediumInstance(t, seed, 2e4)
		in.K = 3
		ref, err := (&LNSPlanner{Rounds: 5, Reference: true}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := (&LNSPlanner{Rounds: 5}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		assertPlansIdentical(t, "lns-fast", 0, ref, fast)
	}
}

// TestFastPathMatchesReferenceReplan covers the open-path replanner,
// including the excluded-candidate accounting.
func TestFastPathMatchesReferenceReplan(t *testing.T) {
	for _, seed := range []uint64{3, 6} {
		in := mediumInstance(t, seed, 2e4)
		full, err := (&Algorithm3{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Stops) < 3 {
			t.Fatalf("need a multi-stop plan, got %d", len(full.Stops))
		}
		banned := full.Stops[0].Pos
		state := ResidualState{
			Pos:      full.Stops[1].Pos,
			Budget:   in.Model.Capacity / 2,
			Residual: residualAfter(in, full, 2),
			K:        2,
			Exclude:  func(p geom.Point) bool { return p.Dist(banned) < 1e-9 },
		}
		refState := state
		refState.Reference = true
		ref, err := ReplanResidual(in, refState)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			st := state
			st.Workers = workers
			fast, err := ReplanResidual(in, st)
			if err != nil {
				t.Fatal(err)
			}
			assertPlansIdentical(t, "replan-fast", workers, ref, fast)
		}
	}
}

// TestSkippedEvalsReconcile is the accounting oracle for the pruned scan:
// per planner, the fast path's candidate evaluations plus its skipped
// (provably zero-award) candidates must equal the reference path's
// evaluations exactly. Any hole in the exactness argument shows up here as
// a candidate that was neither evaluated nor proven skippable.
func TestSkippedEvalsReconcile(t *testing.T) {
	run := func(name string, plan func(reference bool, reg *obs.Registry) error) {
		t.Helper()
		refReg := obs.NewRegistry()
		if err := plan(true, refReg); err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		fastReg := obs.NewRegistry()
		if err := plan(false, fastReg); err != nil {
			t.Fatalf("%s fast: %v", name, err)
		}
		ref := refReg.Snapshot().Counters
		fast := fastReg.Snapshot().Counters
		if ref[CounterScanSkippedDrained] != 0 {
			t.Errorf("%s: reference path recorded %d skips", name, ref[CounterScanSkippedDrained])
		}
		refEvals := ref[CounterCandidateEvals]
		fastEvals := fast[CounterCandidateEvals]
		skipped := fast[CounterScanSkippedDrained]
		if refEvals == 0 {
			t.Fatalf("%s: reference recorded no evaluations", name)
		}
		if fastEvals+skipped != refEvals {
			t.Errorf("%s: fast evals %d + skipped %d != reference evals %d",
				name, fastEvals, skipped, refEvals)
		}
		if skipped == 0 {
			t.Errorf("%s: fast path skipped nothing — pruning is inert on this instance", name)
		}
	}

	run("algorithm2", func(reference bool, reg *obs.Registry) error {
		in := mediumInstance(t, 4, 3e4)
		in.Delta = 15
		in.Obs = reg
		_, err := (&Algorithm2{Reference: reference}).Plan(in)
		return err
	})
	run("algorithm3", func(reference bool, reg *obs.Registry) error {
		in := mediumInstance(t, 4, 3e4)
		in.Delta = 15
		in.K = 3
		in.Obs = reg
		_, err := (&Algorithm3{Reference: reference}).Plan(in)
		return err
	})
	run("replan", func(reference bool, reg *obs.Registry) error {
		in := mediumInstance(t, 4, 3e4)
		in.Obs = reg
		_, err := ReplanResidual(in, ResidualState{
			Pos:       in.Net.Depot,
			Budget:    in.Budget(),
			Residual:  residualAfter(in, &Plan{}, 0),
			K:         2,
			Reference: reference,
		})
		return err
	})
}

// TestFastCountersDeterministicAcrossWorkers extends the PR4 oracle to the
// pruned scan: every counter, including the skip ledger, must be
// bit-identical at any worker count.
func TestFastCountersDeterministicAcrossWorkers(t *testing.T) {
	snapFor := func(workers int) obs.Snapshot {
		reg := obs.NewRegistry()
		in := mediumInstance(t, 9, 2e4)
		in.Delta = 12
		in.K = 3
		in.Obs = reg
		if _, err := (&Algorithm3{Workers: workers}).Plan(in); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	base := snapFor(1)
	if base.Counters[CounterScanSkippedDrained] == 0 {
		t.Fatal("serial fast run skipped nothing; instance too small to exercise pruning")
	}
	for _, w := range []int{2, 4, 8} {
		snap := snapFor(w)
		if !base.Equal(snap) {
			t.Errorf("counters diverge at workers=%d:\n%s", w, base.Diff(snap))
		}
	}
}

// Candidate-generation micro-benchmark: one full Algorithm 2 plan under
// the reference scan vs the pruned scan. Paired with the 2-opt benchmarks
// in internal/tsp these are the micro panels behind BENCH_PR6.json.
func benchAlg2(b *testing.B, reference bool) {
	in := mediumInstance(b, 1, 3e4)
	in.Delta = 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Algorithm2{Reference: reference}).Plan(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlg2Reference(b *testing.B) { benchAlg2(b, true) }
func BenchmarkAlg2Fast(b *testing.B)      { benchAlg2(b, false) }
