package core

import (
	"math"

	"uavdc/internal/geom"
	"uavdc/internal/hover"
	"uavdc/internal/units"
)

// This file is the fast-path candidate machinery shared by the greedy
// planners (Algorithm 2/3, LNS repair, residual replanning). It rests on
// one exactness argument: a candidate location whose covered sensors are
// all fully drained has hover.ResidualDrain award exactly 0, and the
// reference scan discards such candidates unconditionally (they can never
// produce a positive-gain level either, because partialTake is bounded by
// the residuals). Skipping them without evaluation is therefore
// output-equivalent bit for bit — same plans, same accepted/pruned
// counters, same detail-event set for the candidates that are evaluated.
// The index below tracks exactly that set: locations still covering at
// least one sensor with residual > 0.
//
// Residuals only ever transition > 0 → == 0 exactly (acceptFull writes 0;
// acceptPartial subtracts amt ≤ residual and clamps at 0), so the cover
// counts are maintained by pure integer decrements — no float thresholds,
// no drift.

// scanIndex is the residual-active candidate index: an inverted
// sensor → covering-locations table plus a per-location count of covered
// sensors that still hold data. The active list is kept in ascending
// location-id order so fast scans visit candidates in exactly the
// reference scan's order (total-order tie-breaks and merged trace shards
// line up with the serial reference stream).
type scanIndex struct {
	locsOf [][]int32 // sensor id → candidate locations covering it
	cover  []int32   // location id → covered sensors with residual > 0
	active []int32   // ascending location ids with cover > 0 (may hold stale entries until compacted)
	stale  bool
}

// newScanIndex builds the index for the current residuals. skip, when
// non-nil, drops locations the caller will never evaluate (the replanner's
// excluded no-hover zones); skipped locations are neither indexed nor
// reported active. Location 0 (the depot) is never a candidate.
func newScanIndex(set *hover.Set, residual []units.Bits, skip func(c int) bool) *scanIndex {
	ix := &scanIndex{
		locsOf: make([][]int32, len(residual)),
		cover:  make([]int32, set.Len()),
	}
	for c := 1; c < set.Len(); c++ {
		if skip != nil && skip(c) {
			continue
		}
		for _, v := range set.Locs[c].Covered {
			ix.locsOf[v] = append(ix.locsOf[v], int32(c))
			if residual[v] > 0 {
				ix.cover[c]++
			}
		}
	}
	for c := 1; c < set.Len(); c++ {
		if ix.cover[c] > 0 {
			ix.active = append(ix.active, int32(c))
		}
	}
	return ix
}

// drained records that sensor v's residual just reached exactly zero,
// decrementing the cover count of every location that was counting on it.
func (ix *scanIndex) drained(v int) {
	for _, c := range ix.locsOf[v] {
		ix.cover[c]--
		if ix.cover[c] == 0 {
			ix.stale = true
		}
	}
}

// compact drops fully-drained entries from the active list and returns it,
// still in ascending location-id order.
func (ix *scanIndex) compact() []int32 {
	if !ix.stale {
		return ix.active
	}
	kept := ix.active[:0]
	for _, c := range ix.active {
		if ix.cover[c] > 0 {
			kept = append(kept, c)
		}
	}
	ix.active = kept
	ix.stale = false
	return ix.active
}

// insertionScratch precomputes the tour's stop positions and edge lengths
// so pricing one candidate is a single pass of fresh hypotenuses instead
// of three metric calls per edge. bestInsertion mirrors tsp.BestInsertion
// term by term — pts[i].Dist(v) is the identical math.Hypot call
// set.Dist(order[i], v) bottoms out in, and edge[i] caches the identical
// m(a, b) value — so position and delta are bit-equal to the reference.
type insertionScratch struct {
	pts  []geom.Point
	edge []float64
}

// reset rebuilds the scratch for the tour described by pos(i), i < n.
// Buffers are reused across iterations.
func (sc *insertionScratch) reset(n int, pos func(i int) geom.Point) {
	sc.pts = sc.pts[:0]
	sc.edge = sc.edge[:0]
	for i := 0; i < n; i++ {
		sc.pts = append(sc.pts, pos(i))
	}
	for i := 0; i < n; i++ {
		sc.edge = append(sc.edge, sc.pts[i].Dist(sc.pts[(i+1)%n]))
	}
}

// bestInsertion returns the cheapest cyclic insertion slot for a stop at
// p, exactly as tsp.BestInsertion prices it against the same tour.
func (sc *insertionScratch) bestInsertion(p geom.Point) (pos int, delta float64) {
	n := len(sc.pts)
	switch n {
	case 0:
		return 0, 0
	case 1:
		return 1, 2 * sc.pts[0].Dist(p)
	}
	pos, delta = 0, math.Inf(1)
	for i := 0; i < n; i++ {
		d := sc.pts[i].Dist(p) + p.Dist(sc.pts[(i+1)%n]) - sc.edge[i]
		if d < delta {
			delta = d
			pos = i + 1
		}
	}
	return pos, delta
}

// bestPathInsertion is the open-path variant used by the replanner: the
// scratch holds start, interior stops, end, and insertion is priced
// between consecutive path nodes (pos 0 = right after start), mirroring
// pathState.bestInsertion including its clamp at 0.
func (sc *insertionScratch) bestPathInsertion(p geom.Point) (pos int, delta float64) {
	pos, delta = 0, math.Inf(1)
	for i := 0; i+1 < len(sc.pts); i++ {
		d := sc.pts[i].Dist(p) + p.Dist(sc.pts[i+1]) - sc.edge[i]
		if d < delta {
			pos, delta = i, d
		}
	}
	if delta < 0 {
		delta = 0
	}
	return pos, delta
}

// resetPath rebuilds the scratch for a path: node(i) for i ≤ n+1 with
// node(0) the start and node(n+1) the end; edge[i] is the i→i+1 length.
func (sc *insertionScratch) resetPath(n int, node func(i int) geom.Point) {
	sc.pts = sc.pts[:0]
	sc.edge = sc.edge[:0]
	for i := 0; i <= n+1; i++ {
		sc.pts = append(sc.pts, node(i))
	}
	for i := 0; i+1 < len(sc.pts); i++ {
		sc.edge = append(sc.edge, sc.pts[i].Dist(sc.pts[i+1]))
	}
}
