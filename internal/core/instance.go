package core

import (
	"fmt"

	"uavdc/internal/energy"
	"uavdc/internal/hover"
	"uavdc/internal/obs"
	"uavdc/internal/radio"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

// Instance bundles everything a planner needs: the network, the UAV energy
// model, and the discretisation parameters.
type Instance struct {
	// Net is the aggregate sensor network (depot included).
	Net *sensornet.Network
	// Model is the UAV energy model; Model.Capacity is the budget E.
	Model energy.Model
	// Delta is the grid square edge length δ in metres.
	Delta units.Meters
	// CoverRadius is R0 in metres; 0 means "use Net.CommRange" (the
	// paper's experiments set R0 directly to the node range, i.e. an
	// altitude-0 abstraction).
	CoverRadius units.Meters
	// K is the sojourn partition granularity for Algorithm 3 (≥ 1).
	// Planners that do not support partial collection ignore it.
	K int
	// Altitude is the hovering altitude H in metres. Zero reproduces the
	// paper's ground-level abstraction; a positive value shrinks the
	// effective coverage radius to sqrt(R²−H²) when CoverRadius is 0 and
	// lengthens the uplink slant paths when Radio is set.
	Altitude units.Meters
	// Radio is the uplink rate model; nil is the paper's constant
	// bandwidth B.
	Radio radio.Model
	// Obs receives instrumentation counters and timers from the planners;
	// nil disables recording (the default). Recording never changes a
	// planner's output, and counter totals are reproducible at any
	// Workers setting. Use an *obs.Registry to collect, or any custom
	// Recorder (which must be concurrency-safe when Workers > 1).
	Obs obs.Recorder
}

// Validate checks the instance's parameters.
func (in *Instance) Validate() error {
	if in.Net == nil {
		return fmt.Errorf("core: nil network")
	}
	if err := in.Net.Validate(); err != nil {
		return err
	}
	if err := in.Model.Validate(); err != nil {
		return err
	}
	if in.Delta <= 0 {
		return fmt.Errorf("core: delta must be positive, got %v", in.Delta)
	}
	if in.CoverRadius < 0 {
		return fmt.Errorf("core: negative cover radius %v", in.CoverRadius)
	}
	if in.K < 0 {
		return fmt.Errorf("core: negative K %d", in.K)
	}
	if in.Altitude < 0 {
		return fmt.Errorf("core: negative altitude %v", in.Altitude)
	}
	if in.Altitude.F() > in.Net.CommRange {
		return fmt.Errorf("core: altitude %v exceeds transmission range %v", in.Altitude, in.Net.CommRange)
	}
	if v := in.Model.VerticalOverhead(in.Altitude); v > in.Model.Capacity {
		return fmt.Errorf("core: vertical overhead %v J exceeds capacity %v J", v, in.Model.Capacity)
	}
	return nil
}

// Budget returns the energy available for the horizontal mission: the
// battery capacity minus the fixed ascent/descent overhead at the
// instance's altitude (zero under the paper's free-altitude model). All
// planners budget against this value.
func (in *Instance) Budget() units.Joules {
	return in.Model.Capacity - in.Model.VerticalOverhead(in.Altitude)
}

// EffectiveCoverRadius resolves the R0 actually used.
func (in *Instance) EffectiveCoverRadius() units.Meters {
	if in.CoverRadius > 0 {
		return in.CoverRadius
	}
	if in.Altitude > 0 {
		r0, err := hover.CoverageRadius(units.Meters(in.Net.CommRange), in.Altitude)
		if err == nil {
			return r0
		}
	}
	return units.Meters(in.Net.CommRange)
}

// Physics bundles the coverage and uplink model a plan is validated
// against.
func (in *Instance) Physics() Physics {
	return Physics{
		CoverRadius: in.EffectiveCoverRadius(),
		Altitude:    in.Altitude,
		Radio:       in.Radio,
	}
}

// buildCandidates constructs the hovering-location set for the instance.
func (in *Instance) buildCandidates(opts hover.Options) (*hover.Set, error) {
	if opts.CoverRadius == 0 { //uavdc:allow floateq zero is the exact "unset" sentinel, never a computed value
		opts.CoverRadius = in.EffectiveCoverRadius()
	}
	opts.Altitude = in.Altitude
	opts.Radio = in.Radio
	return hover.Build(in.Net, in.Model, in.Delta, opts)
}

// Planner is a data-collection tour planner.
type Planner interface {
	// Name identifies the planner in experiment tables.
	Name() string
	// Plan computes a feasible collection plan for the instance.
	Plan(in *Instance) (*Plan, error)
}
