package core

import (
	"math/rand"

	"uavdc/internal/hover"
	"uavdc/internal/tsp"
	"uavdc/internal/units"
)

// LNSPlanner wraps a base planner (Algorithm 3 by default) in a
// destroy-and-repair large-neighbourhood search: starting from the base
// plan, each round evicts a random fraction of the stops (returning their
// collections to the residual pool) and lets the greedy partial-collection
// machinery repack the freed energy; the best plan found is kept. Greedy
// ρ-ratio construction is myopic — early cheap stops can crowd out better
// combinations — and the paper leaves improvement heuristics to future
// work; this planner is that extension, deterministic under Seed.
type LNSPlanner struct {
	// Base produces the starting plan; nil means Algorithm 3.
	Base Planner
	// Rounds is the number of destroy/repair iterations (default 20).
	Rounds int
	// DestroyFraction is the share of stops evicted per round, in (0, 1]
	// (default 0.3).
	DestroyFraction float64
	// Seed drives the eviction choices.
	Seed int64
	// Reference runs the base planner and every repair scan on the
	// retained reference path instead of the fast one; plans are
	// bit-identical either way (see Algorithm2.Reference).
	Reference bool
}

// Name implements Planner.
func (l *LNSPlanner) Name() string { return "lns" }

// Plan implements Planner.
func (l *LNSPlanner) Plan(in *Instance) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	base := l.Base
	if base == nil {
		base = &Algorithm3{Reference: l.Reference}
	}
	rounds := l.Rounds
	if rounds <= 0 {
		rounds = 20
	}
	frac := l.DestroyFraction
	if frac <= 0 || frac > 1 {
		frac = 0.3
	}
	k := in.K
	if k < 1 {
		k = 1
	}

	best, err := base.Plan(in)
	if err != nil {
		return nil, err
	}
	set, err := in.buildCandidates(hover.Options{})
	if err != nil {
		return nil, err
	}
	// Map stop positions back to hover-set ids; plans from foreign base
	// planners (e.g. the benchmark, whose stops are not grid candidates)
	// cannot be destroyed-and-repaired, so fall back to the base plan.
	if !stopsAreCandidates(best, set) {
		return best, nil
	}

	rec := in.obsRecorder()
	cRounds := rec.Counter(CounterLNSRounds)
	cImproved := rec.Counter(CounterLNSImprovements)
	rng := rand.New(rand.NewSource(l.Seed))
	alg := &Algorithm3{Reference: l.Reference}
	for round := 0; round < rounds; round++ {
		cRounds.Inc()
		cur := rebuildState(in, set, best, frac, rng, l.Reference)
		for {
			cand, ok := alg.pickNext(cur, k)
			if !ok {
				break
			}
			cur.acceptPartial(cand)
		}
		trial := cur.plan(l.Name())
		if trial.Collected() > best.Collected()+1e-9 {
			cImproved.Inc()
			best = trial
		}
	}
	out := *best
	out.Algorithm = l.Name()
	return &out, nil
}

// stopsAreCandidates reports whether every stop carries a valid hover-set
// id matching its position.
func stopsAreCandidates(p *Plan, set *hover.Set) bool {
	for i := range p.Stops {
		id := p.Stops[i].LocID
		if id <= 0 || id >= set.Len() || set.Locs[id].Pos != p.Stops[i].Pos {
			return false
		}
	}
	return true
}

// rebuildState reconstructs greedy state from a plan with a random
// fraction of its stops evicted. The residual drains below happen before
// the fast scan index exists (it is built lazily on the first pickNext),
// so the index always observes the fully seeded residuals.
func rebuildState(in *Instance, set *hover.Set, p *Plan, frac float64, rng *rand.Rand, reference bool) *greedyState {
	st := newGreedyState(in, set)
	st.reference = reference
	n := len(p.Stops)
	evict := int(frac * float64(n))
	if evict < 1 && n > 0 {
		evict = 1
	}
	evicted := map[int]bool{}
	for _, i := range rng.Perm(n)[:evict] {
		evicted[i] = true
	}
	for i := range p.Stops {
		if evicted[i] {
			continue
		}
		stop := &p.Stops[i]
		id := stop.LocID
		pos, _ := tsp.BestInsertion(st.tour, id, st.dist)
		st.tour = tsp.Insert(st.tour, id, pos)
		st.inTour[id] = true
		st.sojourns[id] = units.Seconds(stop.Sojourn)
		st.hoverTime += units.Seconds(stop.Sojourn)
		ledger := map[int]units.Bits{}
		for _, c := range stop.Collected {
			ledger[c.Sensor] += units.Bits(c.Amount)
			st.residual[c.Sensor] -= units.Bits(c.Amount)
			if st.residual[c.Sensor] < 0 {
				st.residual[c.Sensor] = 0
			}
		}
		st.collected[id] = ledger
	}
	st.improveTour()
	return st
}
