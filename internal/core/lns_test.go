package core

import "testing"

func TestLNSNeverWorseThanBase(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		in := mediumInstance(t, seed, 1.2e4)
		in.K = 2
		base, err := (&Algorithm3{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		lns, err := (&LNSPlanner{Rounds: 10, Seed: 7}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if lns.Collected() < base.Collected()-1e-9 {
			t.Errorf("seed %d: LNS %v below base %v", seed, lns.Collected(), base.Collected())
		}
		if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), lns); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if lns.Algorithm != "lns" {
			t.Errorf("label = %q", lns.Algorithm)
		}
	}
}

func TestLNSImprovesSomewhere(t *testing.T) {
	improved := false
	for _, seed := range []uint64{1, 2, 3, 4, 5, 6} {
		in := mediumInstance(t, seed, 1e4)
		in.K = 2
		base, err := (&Algorithm3{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		lns, err := (&LNSPlanner{Rounds: 25, Seed: 3}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if lns.Collected() > base.Collected()+1 {
			improved = true
		}
	}
	if !improved {
		t.Error("LNS never beat the greedy base on any of six tight instances")
	}
}

func TestLNSDeterministic(t *testing.T) {
	in := mediumInstance(t, 4, 1e4)
	a, err := (&LNSPlanner{Rounds: 8, Seed: 11}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&LNSPlanner{Rounds: 8, Seed: 11}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Collected() != b.Collected() || len(a.Stops) != len(b.Stops) {
		t.Error("LNS not deterministic under fixed seed")
	}
}

func TestLNSForeignBaseFallsBack(t *testing.T) {
	in := mediumInstance(t, 5, 1.5e4)
	// The benchmark's stops are sensor positions, not grid candidates;
	// LNS must detect this and return the base plan unchanged.
	base, err := (&BenchmarkPlanner{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	lns, err := (&LNSPlanner{Base: &BenchmarkPlanner{}, Rounds: 5}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if lns.Collected() != base.Collected() {
		t.Errorf("fallback changed volume: %v vs %v", lns.Collected(), base.Collected())
	}
}

func TestLNSZeroCapacity(t *testing.T) {
	in := mediumInstance(t, 6, 0)
	lns, err := (&LNSPlanner{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(lns.Stops) != 0 {
		t.Error("zero capacity LNS produced stops")
	}
}
