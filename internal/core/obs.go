package core

import "uavdc/internal/obs"

// Instrumentation counter names recorded by the planners. All counts are
// exactly reproducible for a fixed instance, at any Workers setting: the
// parallel candidate scans record into per-worker shards that are merged
// after the join (see obs.Shards), so a divergence across worker counts
// means the scan itself evaluated a different candidate set — the counters
// double as a correctness oracle for the parallelisation.
const (
	// CounterCandidateEvals counts candidate (or candidate-location)
	// evaluations across all greedy iterations; the benchmark's removal
	// scans contribute their per-removal candidate checks here too.
	CounterCandidateEvals = "core.candidate_evals"
	// CounterPrunedOverBudget counts candidate evaluations (levels, for
	// Algorithm 3) rejected because accepting them would exceed the
	// energy budget.
	CounterPrunedOverBudget = "core.pruned_over_budget"
	// CounterResidualRecomputes counts residual drain-time recomputations
	// (hover.ResidualDrain calls) — the paper's Algorithm 3 line 12.
	CounterResidualRecomputes = "core.residual_recomputes"
	// CounterAcceptedStops counts stops newly inserted into the tour.
	CounterAcceptedStops = "core.accepted_stops"
	// CounterUpgradedStops counts Algorithm 3 in-place sojourn upgrades
	// of stops already in the tour (Lemma 2).
	CounterUpgradedStops = "core.upgraded_stops"
	// CounterBenchRemovals counts nodes pruned from the benchmark's
	// initial TSP tour to reach feasibility.
	CounterBenchRemovals = "core.bench_removals"
	// CounterLNSRounds counts LNS destroy/repair rounds executed.
	CounterLNSRounds = "core.lns_rounds"
	// CounterLNSImprovements counts LNS rounds that improved the
	// incumbent plan.
	CounterLNSImprovements = "core.lns_improvements"
)

// obsRecorder resolves the instance's optional recorder.
func (in *Instance) obsRecorder() obs.Recorder { return obs.OrDiscard(in.Obs) }

// scanObs caches the candidate-scan counter handles so the hot evaluation
// loop pays no per-event name lookup. Each parallel worker builds its own
// scanObs over its shard recorder.
type scanObs struct {
	evals  obs.Counter
	pruned obs.Counter
	resid  obs.Counter
}

func newScanObs(r obs.Recorder) scanObs {
	return scanObs{
		evals:  r.Counter(CounterCandidateEvals),
		pruned: r.Counter(CounterPrunedOverBudget),
		resid:  r.Counter(CounterResidualRecomputes),
	}
}
