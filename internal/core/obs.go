package core

import (
	"uavdc/internal/obs"
	"uavdc/internal/trace"
)

// Instrumentation counter names recorded by the planners. All counts are
// exactly reproducible for a fixed instance, at any Workers setting: the
// parallel candidate scans record into per-worker shards that are merged
// after the join (see obs.Shards), so a divergence across worker counts
// means the scan itself evaluated a different candidate set — the counters
// double as a correctness oracle for the parallelisation.
const (
	// CounterCandidateEvals counts candidate (or candidate-location)
	// evaluations across all greedy iterations; the benchmark's removal
	// scans contribute their per-removal candidate checks here too.
	CounterCandidateEvals = "core.candidate_evals"
	// CounterPrunedOverBudget counts candidate evaluations (levels, for
	// Algorithm 3) rejected because accepting them would exceed the
	// energy budget.
	CounterPrunedOverBudget = "core.pruned_over_budget"
	// CounterResidualRecomputes counts residual drain-time recomputations
	// (hover.ResidualDrain calls) — the paper's Algorithm 3 line 12.
	CounterResidualRecomputes = "core.residual_recomputes"
	// CounterAcceptedStops counts stops newly inserted into the tour.
	CounterAcceptedStops = "core.accepted_stops"
	// CounterUpgradedStops counts Algorithm 3 in-place sojourn upgrades
	// of stops already in the tour (Lemma 2).
	CounterUpgradedStops = "core.upgraded_stops"
	// CounterScanSkippedDrained counts candidate evaluations the fast scan
	// proved unnecessary and skipped: locations whose covered sensors are
	// all fully drained, which the reference scan would evaluate and
	// discard (award 0). Per iteration, fast evals + skipped equals the
	// reference scan's evals — the differential suite asserts exactly
	// that, so the counter doubles as the pruning-soundness oracle.
	CounterScanSkippedDrained = "core.scan_skipped_drained"
	// CounterBenchRemovals counts nodes pruned from the benchmark's
	// initial TSP tour to reach feasibility.
	CounterBenchRemovals = "core.bench_removals"
	// CounterLNSRounds counts LNS destroy/repair rounds executed.
	CounterLNSRounds = "core.lns_rounds"
	// CounterLNSImprovements counts LNS rounds that improved the
	// incumbent plan.
	CounterLNSImprovements = "core.lns_improvements"
)

// Trace span and event names emitted by the planners. Spans nest
// (plan/alg2 > plan/alg2/iterate > tsp/improve); the per-candidate
// EventScanEval detail event is only emitted when the attached tracer
// has Detail() on, because it scales with candidates × iterations. Like
// the counters, the record stream (modulo wall times) is exactly
// reproducible at any Workers setting: parallel scans record into
// per-worker trace shards merged in worker-index order (trace.ShardObs),
// which equals the serial candidate order.
const (
	SpanPlanAlg1             = "plan/alg1"
	SpanPlanAlg1Candidates   = "plan/alg1/candidates"
	SpanPlanAlg1Orienteering = "plan/alg1/orienteering"
	SpanPlanAlg2             = "plan/alg2"
	SpanPlanAlg2Candidates   = "plan/alg2/candidates"
	SpanPlanAlg2Iterate      = "plan/alg2/iterate"
	SpanPlanAlg3             = "plan/alg3"
	SpanPlanAlg3Candidates   = "plan/alg3/candidates"
	SpanPlanAlg3Iterate      = "plan/alg3/iterate"
	SpanPlanBench            = "plan/benchmark"
	SpanPlanBenchConstruct   = "plan/benchmark/construct"
	SpanPlanBenchPrune       = "plan/benchmark/prune"
	SpanPlanReplan           = "plan/replan"
	SpanPlanReplanIterate    = "plan/replan/iterate"
	// EventScanEval is the per-candidate detail event (attr loc = the
	// hover-set id being priced).
	EventScanEval = "scan/eval"
	// EventBenchRemove marks one node pruned from the benchmark tour
	// (attr item = the removed item id).
	EventBenchRemove = "bench/remove"
)

// obsRecorder resolves the instance's optional recorder.
func (in *Instance) obsRecorder() obs.Recorder { return obs.OrDiscard(in.Obs) }

// tracer resolves the tracer riding on the instance's recorder (see
// trace.With); trace.Discard when the run is untraced.
func (in *Instance) tracer() trace.Tracer { return trace.Of(in.obsRecorder()) }

// scanObs caches the candidate-scan counter handles so the hot evaluation
// loop pays no per-event name lookup. Each parallel worker builds its own
// scanObs over its shard recorder.
type scanObs struct {
	evals  obs.Counter
	pruned obs.Counter
	resid  obs.Counter
	tr     trace.Tracer
	detail bool
}

func newScanObs(r obs.Recorder) scanObs {
	t := trace.Of(r)
	return scanObs{
		evals:  r.Counter(CounterCandidateEvals),
		pruned: r.Counter(CounterPrunedOverBudget),
		resid:  r.Counter(CounterResidualRecomputes),
		tr:     t,
		detail: t.Enabled() && t.Detail(),
	}
}

// evalHit records one candidate evaluation: the counter always, plus a
// scan/eval trace event when detail tracing is on. loc attributes are
// deterministic, so the detail stream doubles as a shard-merge oracle.
func (so scanObs) evalHit(loc int) {
	so.evals.Inc()
	if so.detail {
		so.tr.Event(EventScanEval, trace.Int("loc", loc))
	}
}
