package core

import (
	"testing"
)

// TestParallelScanIdenticalToSerial: the worker-parallel candidate scan
// must produce byte-identical plans to the serial one, at every worker
// count, because candidates are merged under a strict total order.
func TestParallelScanIdenticalToSerial(t *testing.T) {
	for _, seed := range []uint64{1, 4, 9} {
		in := mediumInstance(t, seed, 1.5e4)
		in.Delta = 12 // enough candidates to clear the parallel threshold

		serial2, err := (&Algorithm2{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := (&Algorithm2{Workers: workers}).Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			assertPlansIdentical(t, "algorithm2", workers, serial2, par)
		}

		in.K = 3
		serial3, err := (&Algorithm3{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5} {
			par, err := (&Algorithm3{Workers: workers}).Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			assertPlansIdentical(t, "algorithm3", workers, serial3, par)
		}
	}
}

func assertPlansIdentical(t *testing.T, name string, workers int, a, b *Plan) {
	t.Helper()
	if a.Collected() != b.Collected() {
		t.Fatalf("%s workers=%d: volume %v != %v", name, workers, a.Collected(), b.Collected())
	}
	if len(a.Stops) != len(b.Stops) {
		t.Fatalf("%s workers=%d: stops %d != %d", name, workers, len(a.Stops), len(b.Stops))
	}
	for i := range a.Stops {
		if a.Stops[i].Pos != b.Stops[i].Pos || a.Stops[i].Sojourn != b.Stops[i].Sojourn {
			t.Fatalf("%s workers=%d: stop %d differs: %+v vs %+v", name, workers, i, a.Stops[i], b.Stops[i])
		}
		if len(a.Stops[i].Collected) != len(b.Stops[i].Collected) {
			t.Fatalf("%s workers=%d: stop %d collections differ", name, workers, i)
		}
		for j := range a.Stops[i].Collected {
			if a.Stops[i].Collected[j] != b.Stops[i].Collected[j] {
				t.Fatalf("%s workers=%d: stop %d collection %d differs", name, workers, i, j)
			}
		}
	}
}

// TestParallelScanValid: race-condition smoke (run with -race in CI): many
// workers on a bigger instance still yield a valid plan.
func TestParallelScanValid(t *testing.T) {
	in := mediumInstance(t, 7, 2e4)
	in.Delta = 10
	for _, pl := range []Planner{&Algorithm2{Workers: 8}, &Algorithm3{Workers: 8}} {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), plan); err != nil {
			t.Errorf("%s: %v", pl.Name(), err)
		}
	}
}
