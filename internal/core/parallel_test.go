package core

import (
	"testing"

	"uavdc/internal/obs"
)

// TestParallelScanIdenticalToSerial: the worker-parallel candidate scan
// must produce byte-identical plans to the serial one, at every worker
// count, because candidates are merged under a strict total order.
func TestParallelScanIdenticalToSerial(t *testing.T) {
	for _, seed := range []uint64{1, 4, 9} {
		in := mediumInstance(t, seed, 1.5e4)
		in.Delta = 12 // enough candidates to clear the parallel threshold

		serial2, err := (&Algorithm2{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := (&Algorithm2{Workers: workers}).Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			assertPlansIdentical(t, "algorithm2", workers, serial2, par)
		}

		in.K = 3
		serial3, err := (&Algorithm3{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5} {
			par, err := (&Algorithm3{Workers: workers}).Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			assertPlansIdentical(t, "algorithm3", workers, serial3, par)
		}
	}
}

func assertPlansIdentical(t *testing.T, name string, workers int, a, b *Plan) {
	t.Helper()
	if a.Collected() != b.Collected() {
		t.Fatalf("%s workers=%d: volume %v != %v", name, workers, a.Collected(), b.Collected())
	}
	if len(a.Stops) != len(b.Stops) {
		t.Fatalf("%s workers=%d: stops %d != %d", name, workers, len(a.Stops), len(b.Stops))
	}
	for i := range a.Stops {
		if a.Stops[i].Pos != b.Stops[i].Pos || a.Stops[i].Sojourn != b.Stops[i].Sojourn {
			t.Fatalf("%s workers=%d: stop %d differs: %+v vs %+v", name, workers, i, a.Stops[i], b.Stops[i])
		}
		if len(a.Stops[i].Collected) != len(b.Stops[i].Collected) {
			t.Fatalf("%s workers=%d: stop %d collections differ", name, workers, i)
		}
		for j := range a.Stops[i].Collected {
			if a.Stops[i].Collected[j] != b.Stops[i].Collected[j] {
				t.Fatalf("%s workers=%d: stop %d collection %d differs", name, workers, i, j)
			}
		}
	}
}

// TestCountersDeterministicAcrossWorkers: every obs counter total must be
// bit-identical at Workers ∈ {1, 2, 4, 8}. Each parallel worker records
// into its own shard, merged after the join, so any divergence means the
// parallel scan evaluated a different candidate set than the serial one —
// the counters are a correctness oracle for the parallelisation, not just
// a profiler.
func TestCountersDeterministicAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 2, 4, 8}
	for _, seed := range []uint64{1, 4, 9} {
		countersFor := func(name string, plan func(workers int, reg *obs.Registry) error) map[int]obs.Snapshot {
			t.Helper()
			snaps := make(map[int]obs.Snapshot, len(workerCounts))
			for _, w := range workerCounts {
				reg := obs.NewRegistry()
				if err := plan(w, reg); err != nil {
					t.Fatalf("%s seed=%d workers=%d: %v", name, seed, w, err)
				}
				snaps[w] = reg.Snapshot()
			}
			return snaps
		}
		check := func(name string, snaps map[int]obs.Snapshot) {
			t.Helper()
			base := snaps[1]
			if len(base.Counters) == 0 {
				t.Fatalf("%s seed=%d: serial run recorded no counters", name, seed)
			}
			if base.Counters[CounterCandidateEvals] == 0 {
				t.Fatalf("%s seed=%d: no candidate evaluations recorded", name, seed)
			}
			for _, w := range workerCounts[1:] {
				if !base.Equal(snaps[w]) {
					t.Errorf("%s seed=%d: counters diverge at workers=%d:\n%s",
						name, seed, w, base.Diff(snaps[w]))
				}
			}
		}

		check("algorithm2", countersFor("algorithm2", func(workers int, reg *obs.Registry) error {
			in := mediumInstance(t, seed, 1.5e4)
			in.Delta = 12 // enough candidates to clear the parallel threshold
			in.Obs = reg
			_, err := (&Algorithm2{Workers: workers}).Plan(in)
			return err
		}))
		check("algorithm3", countersFor("algorithm3", func(workers int, reg *obs.Registry) error {
			in := mediumInstance(t, seed, 1.5e4)
			in.Delta = 12
			in.K = 3
			in.Obs = reg
			_, err := (&Algorithm3{Workers: workers}).Plan(in)
			return err
		}))
	}
}

// TestInstrumentationDoesNotChangePlans: planning with a live Registry
// must produce byte-identical plans to planning uninstrumented.
func TestInstrumentationDoesNotChangePlans(t *testing.T) {
	in := mediumInstance(t, 2, 1.2e4)
	for _, pl := range []Planner{&Algorithm1{}, &Algorithm2{}, &Algorithm3{}, &BenchmarkPlanner{}, &BenchmarkCoverage{}, &LNSPlanner{Rounds: 3}} {
		bare, err := pl.Plan(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		instr := *in
		instr.Obs = obs.NewRegistry()
		traced, err := pl.Plan(&instr)
		if err != nil {
			t.Fatalf("%s instrumented: %v", pl.Name(), err)
		}
		assertPlansIdentical(t, pl.Name(), 0, bare, traced)
	}
}

// TestParallelScanValid: race-condition smoke (run with -race in CI): many
// workers on a bigger instance still yield a valid plan.
func TestParallelScanValid(t *testing.T) {
	in := mediumInstance(t, 7, 2e4)
	in.Delta = 10
	for _, pl := range []Planner{&Algorithm2{Workers: 8}, &Algorithm3{Workers: 8}} {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), plan); err != nil {
			t.Errorf("%s: %v", pl.Name(), err)
		}
	}
}
