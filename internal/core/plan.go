// Package core implements the paper's contribution: the data-collection
// maximisation planners. Algorithm 1 solves the no-overlap variant by
// reduction to rooted orienteering on the auxiliary energy graph
// (Section IV); Algorithm 2 is the ratio-greedy heuristic for the
// overlapping variant (Section V); Algorithm 3 extends it to partial
// collection through virtual hovering locations (Section VI); Benchmark is
// the evaluation baseline (Section VII-A) that prunes a full TSP tour over
// the sensor nodes.
//
// Every planner returns a Plan — the closed tour with per-stop sojourn
// times and per-sensor collected volumes — which ValidatePlan re-checks
// independently against the physical model.
package core

import (
	"fmt"
	"math"

	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/radio"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

// Collection records data taken from one sensor at one stop.
type Collection struct {
	// Sensor is the index into the network's sensor slice.
	Sensor int
	// Amount is the volume collected, in MB.
	Amount float64
}

// Stop is one hovering stop of the plan.
type Stop struct {
	// Pos is the ground projection of the hovering position.
	Pos geom.Point
	// LocID is the hover-candidate id that produced this stop, or -1 when
	// the stop was placed directly (e.g. the benchmark hovers over
	// sensors, not grid centres).
	LocID int
	// Sojourn is the hover duration in seconds.
	Sojourn float64
	// Collected lists the per-sensor volumes gathered during the stop.
	Collected []Collection
}

// CollectedTotal returns the stop's total gathered volume in MB.
func (s *Stop) CollectedTotal() float64 {
	var sum float64
	for _, c := range s.Collected {
		sum += c.Amount
	}
	return sum
}

// Plan is a closed UAV tour: depot → Stops in order → depot.
type Plan struct {
	// Algorithm names the planner that produced the plan.
	Algorithm string
	// Depot is the tour's start and end position.
	Depot geom.Point
	// Stops is the visiting order.
	Stops []Stop
}

// FlightDistance returns the closed-tour flight length in metres.
func (p *Plan) FlightDistance() float64 {
	if len(p.Stops) == 0 {
		return 0
	}
	dist := p.Depot.Dist(p.Stops[0].Pos)
	for i := 1; i < len(p.Stops); i++ {
		dist += p.Stops[i-1].Pos.Dist(p.Stops[i].Pos)
	}
	return dist + p.Stops[len(p.Stops)-1].Pos.Dist(p.Depot)
}

// HoverTime returns the total hover duration in seconds.
func (p *Plan) HoverTime() float64 {
	var sum float64
	for i := range p.Stops {
		sum += p.Stops[i].Sojourn
	}
	return sum
}

// Energy returns the plan's total energy demand under em, in J. Plan and
// its methods are a typed-world boundary: they speak plain float64 for
// the exporters, validators, and simulators that consume plans.
func (p *Plan) Energy(em energy.Model) float64 {
	return em.TourEnergy(units.Meters(p.FlightDistance()), units.Seconds(p.HoverTime())).F()
}

// Duration returns the mission time T = T_t + T_h in seconds.
func (p *Plan) Duration(em energy.Model) float64 {
	return em.TravelTime(units.Meters(p.FlightDistance())).F() + p.HoverTime()
}

// Collected returns the total gathered volume in MB, summed over stops.
func (p *Plan) Collected() float64 {
	var sum float64
	for i := range p.Stops {
		sum += p.Stops[i].CollectedTotal()
	}
	return sum
}

// CollectedBySensor returns the per-sensor totals, indexed like the
// network's sensor slice (n is the sensor count).
func (p *Plan) CollectedBySensor(n int) []float64 {
	out := make([]float64, n)
	for i := range p.Stops {
		for _, c := range p.Stops[i].Collected {
			if c.Sensor >= 0 && c.Sensor < n {
				out[c.Sensor] += c.Amount
			}
		}
	}
	return out
}

// volumeTolerance absorbs float accumulation error in validation, in MB.
const volumeTolerance = 1e-6

// energyTolerance absorbs float accumulation error in validation, in J.
const energyTolerance = 1e-6

// Physics is the coverage and uplink model a plan is validated against:
// the projected coverage radius R0, the hovering altitude H, and the
// uplink rate model (nil = the network's constant bandwidth B).
type Physics struct {
	CoverRadius units.Meters
	Altitude    units.Meters
	Radio       radio.Model
}

// rateFor returns the uplink rate for a sensor at ground distance d from
// the hovering position.
func (ph Physics) rateFor(net *sensornet.Network, groundDist units.Meters) units.BitsPerSecond {
	if ph.Radio == nil {
		return units.BitsPerSecond(net.Bandwidth)
	}
	return ph.Radio.Rate(radio.SlantDist(groundDist, ph.Altitude))
}

// ValidatePlan independently re-checks a plan against the paper's constant-
// bandwidth physical model; see ValidatePlanPhysics for the general form.
func ValidatePlan(net *sensornet.Network, em energy.Model, coverRadius units.Meters, p *Plan) error {
	return ValidatePlanPhysics(net, em, Physics{CoverRadius: coverRadius}, p)
}

// ValidatePlanPhysics independently re-checks a plan against the physical
// model:
//
//  1. total energy (flight at η_t/v plus hover at η_h) within capacity;
//  2. every collection comes from a sensor within R0 of its stop;
//  3. no sensor yields more than its stored volume in total;
//  4. no stop takes more from one sensor than rate × sojourn allows, where
//     the rate is the network bandwidth or, with a radio model, the rate
//     at the sensor's slant distance;
//  5. sojourns are non-negative and stops lie inside the region.
//
// Planners must never rely on their own accounting being validated —
// this function recomputes everything from the network and plan geometry.
func ValidatePlanPhysics(net *sensornet.Network, em energy.Model, ph Physics, p *Plan) error {
	if err := net.Validate(); err != nil {
		return err
	}
	if err := em.Validate(); err != nil {
		return err
	}
	coverRadius := ph.CoverRadius
	if coverRadius <= 0 {
		return fmt.Errorf("core: cover radius must be positive, got %v", coverRadius)
	}
	if got := p.Energy(em) + em.VerticalOverhead(ph.Altitude).F(); got > em.Capacity.F()+energyTolerance+1e-9*em.Capacity.F() {
		return fmt.Errorf("core: plan energy %.3f J (incl. vertical overhead) exceeds capacity %.3f J", got, em.Capacity)
	}
	perSensor := make([]float64, len(net.Sensors))
	for si := range p.Stops {
		stop := &p.Stops[si]
		if stop.Sojourn < 0 || math.IsNaN(stop.Sojourn) {
			return fmt.Errorf("core: stop %d has invalid sojourn %v", si, stop.Sojourn)
		}
		if !net.Region.Contains(stop.Pos) {
			return fmt.Errorf("core: stop %d at %v outside region", si, stop.Pos)
		}
		seen := make(map[int]bool, len(stop.Collected))
		for _, c := range stop.Collected {
			if c.Sensor < 0 || c.Sensor >= len(net.Sensors) {
				return fmt.Errorf("core: stop %d collects from unknown sensor %d", si, c.Sensor)
			}
			if seen[c.Sensor] {
				return fmt.Errorf("core: stop %d lists sensor %d twice", si, c.Sensor)
			}
			seen[c.Sensor] = true
			if c.Amount < 0 || math.IsNaN(c.Amount) {
				return fmt.Errorf("core: stop %d sensor %d invalid amount %v", si, c.Sensor, c.Amount)
			}
			d := units.Meters(net.Sensors[c.Sensor].Pos.Dist(stop.Pos))
			if d > coverRadius+1e-9 {
				return fmt.Errorf("core: stop %d collects from sensor %d at distance %.3f > R0 %.3f", si, c.Sensor, d, coverRadius)
			}
			if limit := units.Transfer(ph.rateFor(net, d), units.Seconds(stop.Sojourn)).F(); c.Amount > limit+volumeTolerance {
				return fmt.Errorf("core: stop %d sensor %d amount %.6f exceeds rate×sojourn %.6f", si, c.Sensor, c.Amount, limit)
			}
			perSensor[c.Sensor] += c.Amount
		}
	}
	for v, got := range perSensor {
		if got > net.Sensors[v].Data+volumeTolerance {
			return fmt.Errorf("core: sensor %d yielded %.6f MB but stores only %.6f MB", v, got, net.Sensors[v].Data)
		}
	}
	return nil
}
