package core

import (
	"maps"
	"math"
	"slices"
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/sensornet"
)

func tinyNet() *sensornet.Network {
	return &sensornet.Network{
		Region:    geom.Square(200),
		Depot:     geom.Pt(0, 0),
		Bandwidth: 10,
		CommRange: 20,
		Sensors: []sensornet.Sensor{
			{Pos: geom.Pt(50, 0), Data: 100},  // 10 s upload
			{Pos: geom.Pt(55, 0), Data: 200},  // 20 s
			{Pos: geom.Pt(150, 0), Data: 50},  // 5 s
			{Pos: geom.Pt(50, 150), Data: 80}, // 8 s
		},
	}
}

func validPlan() *Plan {
	return &Plan{
		Algorithm: "test",
		Depot:     geom.Pt(0, 0),
		Stops: []Stop{
			{
				Pos:     geom.Pt(52, 0),
				LocID:   1,
				Sojourn: 20,
				Collected: []Collection{
					{Sensor: 0, Amount: 100},
					{Sensor: 1, Amount: 200},
				},
			},
			{
				Pos:       geom.Pt(150, 0),
				LocID:     2,
				Sojourn:   5,
				Collected: []Collection{{Sensor: 2, Amount: 50}},
			},
		},
	}
}

func TestPlanAccounting(t *testing.T) {
	p := validPlan()
	// Flight: 0→(52,0)→(150,0)→0 = 52 + 98 + 150 = 300 m.
	if d := p.FlightDistance(); math.Abs(d-300) > 1e-9 {
		t.Errorf("FlightDistance = %v", d)
	}
	if h := p.HoverTime(); h != 25 {
		t.Errorf("HoverTime = %v", h)
	}
	em := energy.Default()
	// 300 m × 10 J/m + 25 s × 150 J/s = 3000 + 3750.
	if e := p.Energy(em); math.Abs(e-6750) > 1e-9 {
		t.Errorf("Energy = %v", e)
	}
	// 300/10 s travel + 25 s hover.
	if d := p.Duration(em); math.Abs(d-55) > 1e-9 {
		t.Errorf("Duration = %v", d)
	}
	if c := p.Collected(); c != 350 {
		t.Errorf("Collected = %v", c)
	}
	per := p.CollectedBySensor(4)
	want := []float64{100, 200, 50, 0}
	for i := range want {
		if per[i] != want[i] {
			t.Errorf("CollectedBySensor[%d] = %v, want %v", i, per[i], want[i])
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	p := &Plan{Depot: geom.Pt(5, 5)}
	if p.FlightDistance() != 0 || p.HoverTime() != 0 || p.Collected() != 0 {
		t.Error("empty plan should be free")
	}
	if err := ValidatePlan(tinyNet(), energy.Default(), 20, p); err != nil {
		t.Errorf("empty plan invalid: %v", err)
	}
}

func TestValidatePlanAccepts(t *testing.T) {
	if err := ValidatePlan(tinyNet(), energy.Default(), 20, validPlan()); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestValidatePlanRejections(t *testing.T) {
	net := tinyNet()
	em := energy.Default()
	cases := map[string]func(*Plan){
		"energy over capacity": func(p *Plan) {
			p.Stops[0].Sojourn = 1e9
			p.Stops[0].Collected = nil
		},
		"collection out of range": func(p *Plan) {
			p.Stops[1].Collected = []Collection{{Sensor: 3, Amount: 10}}
		},
		"over sensor volume": func(p *Plan) {
			p.Stops[1].Collected[0].Amount = 51
		},
		"over bandwidth×sojourn": func(p *Plan) {
			p.Stops[1].Sojourn = 1
		},
		"negative sojourn": func(p *Plan) {
			p.Stops[0].Sojourn = -1
		},
		"NaN sojourn": func(p *Plan) {
			p.Stops[0].Sojourn = math.NaN()
		},
		"unknown sensor": func(p *Plan) {
			p.Stops[0].Collected[0].Sensor = 99
		},
		"negative amount": func(p *Plan) {
			p.Stops[0].Collected[0].Amount = -1
		},
		"duplicate sensor in stop": func(p *Plan) {
			p.Stops[0].Collected = append(p.Stops[0].Collected, Collection{Sensor: 0, Amount: 0})
		},
		"stop outside region": func(p *Plan) {
			p.Stops[0].Pos = geom.Pt(-10, 0)
			p.Stops[0].Collected = nil
		},
	}
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		p := validPlan()
		cases[name](p)
		if err := ValidatePlan(net, em, 20, p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidatePlanDoubleCollectionAcrossStops(t *testing.T) {
	// Two stops each taking the full volume of sensor 0 must fail the
	// per-sensor conservation check even though each stop is locally fine.
	p := validPlan()
	p.Stops = append(p.Stops, Stop{
		Pos:       geom.Pt(52, 0),
		Sojourn:   20,
		Collected: []Collection{{Sensor: 0, Amount: 100}},
	})
	if err := ValidatePlan(tinyNet(), energy.Default(), 20, p); err == nil {
		t.Error("double collection accepted")
	}
}

func TestValidatePlanParameterChecks(t *testing.T) {
	p := validPlan()
	if err := ValidatePlan(tinyNet(), energy.Default(), 0, p); err == nil {
		t.Error("zero cover radius accepted")
	}
	bad := tinyNet()
	bad.Bandwidth = 0
	if err := ValidatePlan(bad, energy.Default(), 20, p); err == nil {
		t.Error("invalid network accepted")
	}
	if err := ValidatePlan(tinyNet(), energy.Model{}, 20, p); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestValidatePlanPartialCollection(t *testing.T) {
	// Partial amounts within bandwidth×sojourn are fine.
	p := &Plan{Depot: geom.Pt(0, 0), Stops: []Stop{{
		Pos:     geom.Pt(52, 0),
		Sojourn: 3, // cap = 30 MB per sensor
		Collected: []Collection{
			{Sensor: 0, Amount: 30},
			{Sensor: 1, Amount: 30},
		},
	}}}
	if err := ValidatePlan(tinyNet(), energy.Default(), 20, p); err != nil {
		t.Errorf("partial plan rejected: %v", err)
	}
	p.Stops[0].Collected[0].Amount = 31
	if err := ValidatePlan(tinyNet(), energy.Default(), 20, p); err == nil {
		t.Error("over-cap partial accepted")
	}
}
