package core

import (
	"maps"
	"math"
	"slices"
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/orienteering"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

// mediumInstance builds a reduced-scale version of the paper's setting:
// same densities and data distribution, smaller region so tests stay fast.
func mediumInstance(t testing.TB, seed uint64, capacity units.Joules) *Instance {
	t.Helper()
	p := sensornet.DefaultGenParams()
	p.NumSensors = 60
	p.Side = 350
	net, err := sensornet.Generate(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{
		Net:   net,
		Model: energy.Default().WithCapacity(capacity),
		Delta: 25,
		K:     2,
	}
}

func allPlanners() []Planner {
	return []Planner{
		&Algorithm1{},
		&Algorithm2{},
		&Algorithm3{},
		&BenchmarkPlanner{},
	}
}

func TestInstanceValidate(t *testing.T) {
	in := mediumInstance(t, 1, 1e5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Instance){
		"nil net":        func(i *Instance) { i.Net = nil },
		"bad delta":      func(i *Instance) { i.Delta = 0 },
		"bad radius":     func(i *Instance) { i.CoverRadius = -1 },
		"negative K":     func(i *Instance) { i.K = -1 },
		"bad model":      func(i *Instance) { i.Model = energy.Model{} },
		"bad capacity":   func(i *Instance) { i.Model.Capacity = units.Joules(math.Inf(1)) },
		"broken network": func(i *Instance) { i.Net.Bandwidth = 0 },
	}
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		in := mediumInstance(t, 1, 1e5)
		cases[name](in)
		if err := in.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if r := mediumInstance(t, 1, 1e5).EffectiveCoverRadius(); r != 50 {
		t.Errorf("EffectiveCoverRadius = %v, want CommRange 50", r)
	}
	in = mediumInstance(t, 1, 1e5)
	in.CoverRadius = 30
	if in.EffectiveCoverRadius() != 30 {
		t.Error("explicit cover radius ignored")
	}
}

// TestAllPlannersProduceValidPlans is the central cross-planner invariant:
// every planner, on every instance, yields a plan that passes the
// independent validator.
func TestAllPlannersProduceValidPlans(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for _, capacity := range []units.Joules{3e4, 1e5, 3e5} {
			in := mediumInstance(t, seed, capacity)
			for _, pl := range allPlanners() {
				plan, err := pl.Plan(in)
				if err != nil {
					t.Fatalf("%s seed=%d E=%g: %v", pl.Name(), seed, capacity, err)
				}
				if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), plan); err != nil {
					t.Errorf("%s seed=%d E=%g: invalid plan: %v", pl.Name(), seed, capacity, err)
				}
				if plan.Algorithm != pl.Name() {
					t.Errorf("%s: plan labelled %q", pl.Name(), plan.Algorithm)
				}
			}
		}
	}
}

func TestPlannersCollectMoreWithMoreEnergy(t *testing.T) {
	// Monotone trend (Figs. 3a, 5a): growing E must not shrink collection.
	// Greedy heuristics are not theoretically monotone; allow 2% slack.
	for _, pl := range allPlanners() {
		prev := -1.0
		for _, capacity := range []units.Joules{5e4, 1.5e5, 4e5} {
			in := mediumInstance(t, 7, capacity)
			plan, err := pl.Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			got := plan.Collected()
			if got < prev*0.98 {
				t.Errorf("%s: collection dropped from %v to %v when E grew", pl.Name(), prev, got)
			}
			if got > prev {
				prev = got
			}
		}
	}
}

func TestFrameworkBeatsBenchmark(t *testing.T) {
	// The headline claim (Fig. 3a, 4a): under a tight budget the
	// coverage-based planners collect a multiple of what the
	// one-sensor-per-stop benchmark manages (the paper reports ≈2× at
	// paper scale; at this reduced scale the gap is even wider).
	in := mediumInstance(t, 11, 2e4)
	bench, err := (&BenchmarkPlanner{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range []Planner{&Algorithm1{}, &Algorithm2{}, &Algorithm3{}} {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Collected() < 1.5*bench.Collected() {
			t.Errorf("%s collected %v, want ≥ 1.5× benchmark %v", pl.Name(), plan.Collected(), bench.Collected())
		}
	}
}

func TestAlgorithm3AtLeastAlgorithm2(t *testing.T) {
	// Fig. 4a: Algorithm 3 (K ≥ 2) should dominate Algorithm 2, because
	// partial stops strictly enlarge its move set. Greedy selection can
	// occasionally invert this; require K=4 ≥ 0.97 × Algorithm 2 across
	// seeds and strict dominance on average.
	var sum2, sum3 float64
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		in := mediumInstance(t, seed, 1e5)
		p2, err := (&Algorithm2{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		in.K = 4
		p3, err := (&Algorithm3{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		sum2 += p2.Collected()
		sum3 += p3.Collected()
		if p3.Collected() < 0.97*p2.Collected() {
			t.Errorf("seed %d: algorithm3 %v far below algorithm2 %v", seed, p3.Collected(), p2.Collected())
		}
	}
	if sum3 < sum2 {
		t.Errorf("algorithm3 mean %v below algorithm2 mean %v", sum3/5, sum2/5)
	}
}

func TestAlgorithm3K1MatchesAlgorithm2(t *testing.T) {
	// With K = 1 the virtual ladder collapses to full drains, and the
	// planner must coincide with Algorithm 2 exactly.
	for _, seed := range []uint64{3, 9} {
		in := mediumInstance(t, seed, 1.2e5)
		in.K = 1
		p2, err := (&Algorithm2{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		p3, err := (&Algorithm3{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p2.Collected()-p3.Collected()) > 1e-6 {
			t.Errorf("seed %d: K=1 algorithm3 %v != algorithm2 %v", seed, p3.Collected(), p2.Collected())
		}
	}
}

func TestZeroCapacityYieldsEmptyPlans(t *testing.T) {
	in := mediumInstance(t, 5, 0)
	for _, pl := range allPlanners() {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if len(plan.Stops) != 0 {
			t.Errorf("%s: zero capacity produced %d stops", pl.Name(), len(plan.Stops))
		}
	}
}

func TestHugeCapacityCollectsEverything(t *testing.T) {
	in := mediumInstance(t, 6, 1e9)
	total := in.Net.TotalData()
	for _, pl := range allPlanners() {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		got := plan.Collected()
		if pl.Name() == "algorithm1" {
			// The disjoint-coverage restriction may make some sensors
			// unreachable; everything reachable must still be collected.
			if got < 0.8*total {
				t.Errorf("algorithm1 with huge budget collected %v of %v", got, total)
			}
			continue
		}
		if math.Abs(got-total) > 1e-6*total {
			t.Errorf("%s with huge budget collected %v, want all %v", pl.Name(), got, total)
		}
	}
}

func TestEmptyNetwork(t *testing.T) {
	in := mediumInstance(t, 8, 1e5)
	in.Net.Sensors = nil
	in.Net.InvalidateIndex()
	for _, pl := range allPlanners() {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if len(plan.Stops) != 0 || plan.Collected() != 0 {
			t.Errorf("%s: nonempty plan on empty network", pl.Name())
		}
	}
}

func TestSingleSensorNetwork(t *testing.T) {
	in := mediumInstance(t, 9, 3e5)
	in.Net.Sensors = in.Net.Sensors[:1]
	in.Net.InvalidateIndex()
	want := in.Net.Sensors[0].Data
	for _, pl := range allPlanners() {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if math.Abs(plan.Collected()-want) > 1e-9 {
			t.Errorf("%s: collected %v, want %v", pl.Name(), plan.Collected(), want)
		}
		if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), plan); err != nil {
			t.Error(err)
		}
	}
}

func TestAlgorithm1DisjointCoverage(t *testing.T) {
	// With the default no-overlap enforcement, no sensor may appear in two
	// stops' coverage claims — structurally guaranteed, verify anyway.
	in := mediumInstance(t, 10, 2e5)
	plan, err := (&Algorithm1{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range plan.Stops {
		for _, c := range s.Collected {
			if seen[c.Sensor] {
				t.Fatalf("sensor %d collected at two stops", c.Sensor)
			}
			seen[c.Sensor] = true
			if c.Amount != in.Net.Sensors[c.Sensor].Data {
				t.Errorf("algorithm1 must fully collect: sensor %d got %v", c.Sensor, c.Amount)
			}
		}
	}
}

func TestAlgorithm1AllowOverlap(t *testing.T) {
	in := mediumInstance(t, 12, 1e5)
	in.Delta = 40 // keep the unfiltered candidate set small
	p, err := (&Algorithm1{AllowOverlap: true}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), p); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm2ExactRatioTSPAgreesRoughly(t *testing.T) {
	// The ablation knob: literal Eq. 13 pricing should produce a valid
	// plan within a few percent of the incremental pricing.
	in := mediumInstance(t, 13, 6e4)
	in.Delta = 40
	fast, err := (&Algorithm2{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (&Algorithm2{ExactRatioTSP: true}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), exact); err != nil {
		t.Fatal(err)
	}
	lo, hi := fast.Collected(), exact.Collected()
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 0.7*hi {
		t.Errorf("pricing modes disagree badly: fast %v vs exact %v", fast.Collected(), exact.Collected())
	}
}

func TestBenchmarkPrunesToBudget(t *testing.T) {
	in := mediumInstance(t, 14, 4e4)
	plan, err := (&BenchmarkPlanner{ImproveEvery: 4}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Energy(in.Model); got > in.Model.Capacity.F()+1e-6 {
		t.Errorf("benchmark plan energy %v exceeds capacity %v", got, in.Model.Capacity)
	}
	// Each benchmark stop collects exactly its own sensor.
	for _, s := range plan.Stops {
		if len(s.Collected) != 1 {
			t.Fatalf("benchmark stop collects %d sensors", len(s.Collected))
		}
		v := s.Collected[0].Sensor
		if in.Net.Sensors[v].Pos != s.Pos {
			t.Error("benchmark stop not above its sensor")
		}
	}
}

func TestPlannersDeterministic(t *testing.T) {
	for _, pl := range allPlanners() {
		in1 := mediumInstance(t, 21, 1e5)
		in2 := mediumInstance(t, 21, 1e5)
		a, err := pl.Plan(in1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pl.Plan(in2)
		if err != nil {
			t.Fatal(err)
		}
		if a.Collected() != b.Collected() || len(a.Stops) != len(b.Stops) {
			t.Errorf("%s not deterministic: %v/%d vs %v/%d", pl.Name(), a.Collected(), len(a.Stops), b.Collected(), len(b.Stops))
		}
	}
}

// TestAlgorithm1GRASPMethod exercises the GRASP orienteering backend
// through Algorithm 1's Method knob.
func TestAlgorithm1GRASPMethod(t *testing.T) {
	in := mediumInstance(t, 15, 1.2e4)
	plan, err := (&Algorithm1{Method: orienteering.MethodGRASP}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), plan); err != nil {
		t.Fatal(err)
	}
	if plan.Collected() <= 0 {
		t.Error("GRASP-backed algorithm1 collected nothing")
	}
}
