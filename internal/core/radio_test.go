package core

import (
	"testing"

	"uavdc/internal/radio"
	"uavdc/internal/units"
)

// radioInstance is mediumInstance with the constant-rate assumption
// removed: the UAV hovers at 30 m and rates follow Shannon capacity over
// free-space loss.
func radioInstance(t testing.TB, seed uint64, capacity units.Joules) *Instance {
	t.Helper()
	in := mediumInstance(t, seed, capacity)
	in.Altitude = 30
	in.Radio = radio.Shannon{RefRate: units.BitsPerSecond(in.Net.Bandwidth), RefDist: 30, RefSNR: 100, PathLossExp: 2.7}
	return in
}

// TestPlannersValidUnderRadioModel: every planner must stay feasible when
// the physics get harsher (longer sojourns for far sensors, smaller R0).
func TestPlannersValidUnderRadioModel(t *testing.T) {
	for _, seed := range []uint64{4, 5} {
		in := radioInstance(t, seed, 1e5)
		for _, pl := range []Planner{&Algorithm1{}, &Algorithm2{}, &Algorithm3{}} {
			plan, err := pl.Plan(in)
			if err != nil {
				t.Fatalf("%s: %v", pl.Name(), err)
			}
			if err := ValidatePlanPhysics(in.Net, in.Model, in.Physics(), plan); err != nil {
				t.Errorf("%s seed=%d: %v", pl.Name(), seed, err)
			}
		}
	}
}

// TestRadioModelCostsVolume: with the same budget, realistic radio physics
// can only reduce (never increase) what the planner collects, because every
// per-sensor rate is at or below the calibration bandwidth.
func TestRadioModelCostsVolume(t *testing.T) {
	var idealSum, radioSum float64
	for _, seed := range []uint64{4, 5, 6} {
		ideal := mediumInstance(t, seed, 2e4)
		harsh := radioInstance(t, seed, 2e4)
		p1, err := (&Algorithm2{}).Plan(ideal)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := (&Algorithm2{}).Plan(harsh)
		if err != nil {
			t.Fatal(err)
		}
		idealSum += p1.Collected()
		radioSum += p2.Collected()
	}
	if radioSum > idealSum+1e-6 {
		t.Errorf("harsher physics collected more: %v vs %v", radioSum, idealSum)
	}
	if radioSum <= 0 {
		t.Error("radio model collected nothing")
	}
}

// TestConstantRadioMatchesNoRadio: a constant model equal to the bandwidth
// must be byte-for-byte identical to the paper's abstraction.
func TestConstantRadioMatchesNoRadio(t *testing.T) {
	plain := mediumInstance(t, 8, 3e4)
	constant := mediumInstance(t, 8, 3e4)
	constant.Radio = radio.Constant{B: units.BitsPerSecond(constant.Net.Bandwidth)}
	p1, err := (&Algorithm3{}).Plan(plain)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := (&Algorithm3{}).Plan(constant)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Collected() != p2.Collected() || len(p1.Stops) != len(p2.Stops) {
		t.Errorf("constant radio differs from none: %v/%d vs %v/%d",
			p1.Collected(), len(p1.Stops), p2.Collected(), len(p2.Stops))
	}
}

func TestInstanceAltitudeValidation(t *testing.T) {
	in := mediumInstance(t, 1, 1e4)
	in.Altitude = -1
	if in.Validate() == nil {
		t.Error("negative altitude accepted")
	}
	in = mediumInstance(t, 1, 1e4)
	in.Altitude = units.Meters(in.Net.CommRange + 1)
	if in.Validate() == nil {
		t.Error("altitude above range accepted")
	}
	in = mediumInstance(t, 1, 1e4)
	in.Altitude = 30
	// R0 = sqrt(50² − 30²) = 40.
	if got := in.EffectiveCoverRadius(); got < 39.99 || got > 40.01 {
		t.Errorf("EffectiveCoverRadius = %v, want 40", got)
	}
	ph := in.Physics()
	if ph.Altitude != 30 || ph.CoverRadius != in.EffectiveCoverRadius() {
		t.Errorf("Physics = %+v", ph)
	}
}
