package core

import (
	"math/rand"

	"uavdc/internal/geom"
	"uavdc/internal/tsp"
)

// RefinePlan post-optimises a plan by sliding every stop inside its
// coverage-feasible region — the intersection of the R0 disks around the
// sensors it collects from, a convex set — toward the flight segment
// between its tour neighbours, then re-ordering the stops with
// 2-opt/Or-opt. The paper restricts hovering positions to δ-grid centres
// to keep the search finite (§IV); once a plan is fixed, this continuous
// relocation is a pure improvement: collections and sojourns are
// untouched (coverage is enforced at every move, and with a
// distance-dependent radio model shrinking no link ever reduces a rate
// below what the sojourn already paid for), so only flight distance — and
// with it energy — can change, and the refiner keeps the original plan
// whenever it fails to shorten it.
//
// The returned plan is new; the input is not modified.
func RefinePlan(in *Instance, plan *Plan) *Plan {
	r0 := in.EffectiveCoverRadius()
	rng := rand.New(rand.NewSource(1)) // deterministic shuffle for Welzl

	out := &Plan{Algorithm: plan.Algorithm, Depot: plan.Depot}
	out.Stops = make([]Stop, len(plan.Stops))
	for i, stop := range plan.Stops {
		out.Stops[i] = stop
		out.Stops[i].Collected = append([]Collection(nil), stop.Collected...)
	}
	n := len(out.Stops)
	if n == 0 {
		return out
	}

	pos := func(i int) geom.Point { // i in [-1, n]: depot sentinel at both ends
		if i < 0 || i >= n {
			return out.Depot
		}
		return out.Stops[i].Pos
	}
	feasible := func(p geom.Point, collected []Collection) bool {
		if !in.Net.Region.Contains(p) {
			return false
		}
		for _, c := range collected {
			if in.Net.Sensors[c.Sensor].Pos.Dist(p) > r0.F() {
				return false
			}
		}
		return true
	}

	// Alternate relocation sweeps and re-ordering a few times; both steps
	// only ever shorten the tour.
	for pass := 0; pass < 3; pass++ {
		moved := false
		for i := 0; i < n; i++ {
			stop := &out.Stops[i]
			if len(stop.Collected) == 0 {
				continue
			}
			prev, next := pos(i-1), pos(i+1)
			cur := stop.Pos
			curDetour := prev.Dist(cur) + cur.Dist(next)

			// Anchor: the safest interior point of the feasible region.
			pts := make([]geom.Point, len(stop.Collected))
			for j, c := range stop.Collected {
				pts[j] = in.Net.Sensors[c.Sensor].Pos
			}
			anchor := geom.MinEnclosingCircle(pts, rng).C
			if !feasible(anchor, stop.Collected) {
				anchor = cur // MEC centre can leave the region; fall back
			}
			// Target: the unconstrained detour minimiser.
			target := geom.ClosestPointOnSegment(anchor, prev, next)
			// Slide from the anchor toward the target while feasible
			// (the feasible set is convex, so feasibility along the
			// segment is an interval starting at the anchor).
			best := anchor
			if feasible(target, stop.Collected) {
				best = target
			} else {
				lo, hi := 0.0, 1.0
				for iter := 0; iter < 30; iter++ {
					mid := (lo + hi) / 2
					if feasible(anchor.Lerp(target, mid), stop.Collected) {
						lo = mid
					} else {
						hi = mid
					}
				}
				best = anchor.Lerp(target, lo)
			}
			if d := prev.Dist(best) + best.Dist(next); d < curDetour-1e-9 {
				stop.Pos = best
				moved = true
			}
		}

		// Re-order: item 0 is the depot, items 1..n are stops.
		if n >= 3 {
			metric := func(i, j int) float64 {
				var a, b geom.Point
				if i == 0 {
					a = out.Depot
				} else {
					a = out.Stops[i-1].Pos
				}
				if j == 0 {
					b = out.Depot
				} else {
					b = out.Stops[j-1].Pos
				}
				return a.Dist(b)
			}
			order := make([]int, n+1)
			for i := range order {
				order[i] = i
			}
			tour := tsp.Tour{Order: order}
			if tsp.Improve(&tour, metric) > 1e-9 {
				moved = true
			}
			tour.RotateTo(0)
			reordered := make([]Stop, 0, n)
			for _, it := range tour.Order {
				if it != 0 {
					reordered = append(reordered, out.Stops[it-1])
				}
			}
			out.Stops = reordered
		}
		if !moved {
			break
		}
	}
	if out.FlightDistance() > plan.FlightDistance()-1e-9 {
		// No measurable gain: prefer the caller's plan verbatim.
		return plan
	}
	return out
}
