package core

import (
	"math"
	"testing"
)

func TestRefinePlanNeverWorsens(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		in := mediumInstance(t, seed, 1.5e4)
		for _, pl := range []Planner{&Algorithm1{}, &Algorithm2{}, &Algorithm3{}} {
			plan, err := pl.Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			refined := RefinePlan(in, plan)
			if err := ValidatePlan(in.Net, in.Model, in.EffectiveCoverRadius(), refined); err != nil {
				t.Fatalf("%s seed=%d: refined plan invalid: %v", pl.Name(), seed, err)
			}
			if math.Abs(refined.Collected()-plan.Collected()) > 1e-9 {
				t.Errorf("%s seed=%d: refinement changed volume %v → %v", pl.Name(), seed, plan.Collected(), refined.Collected())
			}
			if refined.FlightDistance() > plan.FlightDistance()+1e-9 {
				t.Errorf("%s seed=%d: refinement lengthened flight %v → %v", pl.Name(), seed, plan.FlightDistance(), refined.FlightDistance())
			}
			if refined.Energy(in.Model) > plan.Energy(in.Model)+1e-9 {
				t.Errorf("%s seed=%d: refinement raised energy", pl.Name(), seed)
			}
		}
	}
}

func TestRefinePlanActuallyImproves(t *testing.T) {
	// With a coarse grid the centres are far from the sensors they serve,
	// so refinement must buy a measurable flight reduction on at least
	// one instance.
	improvedSomewhere := false
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		in := mediumInstance(t, seed, 1.5e4)
		in.Delta = 45
		plan, err := (&Algorithm2{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		refined := RefinePlan(in, plan)
		if refined.FlightDistance() < plan.FlightDistance()-1 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Error("refinement never shortened any coarse-grid tour")
	}
}

func TestRefinePlanDoesNotMutateInput(t *testing.T) {
	in := mediumInstance(t, 6, 1.5e4)
	plan, err := (&Algorithm2{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	beforeDist := plan.FlightDistance()
	beforePos := plan.Stops[0].Pos
	_ = RefinePlan(in, plan)
	if plan.FlightDistance() != beforeDist || plan.Stops[0].Pos != beforePos {
		t.Error("RefinePlan mutated its input")
	}
}

func TestRefinePlanEmptyAndDegenerate(t *testing.T) {
	in := mediumInstance(t, 7, 1e4)
	empty := &Plan{Algorithm: "x", Depot: in.Net.Depot}
	out := RefinePlan(in, empty)
	if len(out.Stops) != 0 {
		t.Error("empty plan should stay empty")
	}
	// A stop with no collections keeps its position.
	odd := &Plan{Depot: in.Net.Depot, Stops: []Stop{{Pos: in.Net.Depot, Sojourn: 0}}}
	out = RefinePlan(in, odd)
	if out.Stops[0].Pos != in.Net.Depot {
		t.Error("anchorless stop moved")
	}
}
