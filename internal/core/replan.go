package core

import (
	"fmt"
	"math"
	"sync"

	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/hover"
	"uavdc/internal/obs"
	"uavdc/internal/trace"
	"uavdc/internal/units"
)

// ResidualState is a mission snapshot the adaptive executor hands to the
// replanner: where the UAV is, how much energy it may still spend, and how
// much data every sensor still holds. It is the exported entry point for
// mid-flight replanning (the ISSUE-2 "replan over a residual state").
type ResidualState struct {
	// Pos is the UAV's current ground-projected position; the replanned
	// path starts here and ends at the instance's depot.
	Pos geom.Point
	// Budget is the energy available for the remaining mission in J:
	// flight along the replanned path plus hovers. The caller is
	// responsible for already having reserved any fixed overhead
	// (descent, safety margin) before passing the budget.
	Budget units.Joules
	// Residual is the remaining volume per sensor in MB, indexed like the
	// network's sensor slice. Sensors at 0 are skipped.
	Residual []units.Bits
	// K is the sojourn partition granularity (Algorithm 3's virtual
	// levels); K ≤ 1 plans full drains only (Algorithm 2 behaviour).
	K int
	// Workers fans the per-iteration candidate scan across goroutines;
	// results are identical at any worker count (total-order merging),
	// matching the planners' determinism contract.
	Workers int
	// Reference disables the fast scan path (residual-active candidate
	// index, cached path-edge insertion pricing) and runs the original
	// full scan. Plans are bit-identical either way; see
	// Algorithm2.Reference.
	Reference bool
	// Exclude, when non-nil, drops candidate hovering locations at
	// positions the executor knows to be unusable (e.g. declared no-hover
	// fault zones). The depot and the current position are never subject
	// to it.
	Exclude func(geom.Point) bool
}

// ReplanResidual re-runs the Algorithm 2/3 ratio greedy over the undrained
// candidates with the residual budget, planning an *open path*
// state.Pos → stops → depot instead of the planners' closed depot tour.
// Because the path ends at the depot and its nominal energy never exceeds
// state.Budget, a caller that budgets conservatively keeps the depot
// reachable by construction.
//
// The returned plan's Depot is the instance depot; its stops are to be
// executed in order starting from state.Pos. With K ≤ 1 every accepted
// stop drains its still-loaded covered sensors fully; with K > 1 the
// K-level sojourn ladder with in-place upgrades (Lemma 2) is used, exactly
// like Algorithm 3. Candidate scans record into the instance's obs
// recorder under the same counters as the planners.
func ReplanResidual(in *Instance, state ResidualState) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(state.Residual) != len(in.Net.Sensors) {
		return nil, fmt.Errorf("core: residual has %d entries for %d sensors", len(state.Residual), len(in.Net.Sensors))
	}
	for v, r := range state.Residual {
		if r < 0 || math.IsNaN(r.F()) || math.IsInf(r.F(), 0) {
			return nil, fmt.Errorf("core: invalid residual %v for sensor %d", r, v)
		}
	}
	if math.IsNaN(state.Budget.F()) || math.IsInf(state.Budget.F(), 0) {
		return nil, fmt.Errorf("core: invalid budget %v", state.Budget)
	}
	tr := in.tracer()
	endPlan := tr.Begin(SpanPlanReplan, trace.Num("budget_j", state.Budget.F()))
	set, err := in.buildCandidates(hover.Options{})
	if err != nil {
		endPlan()
		return nil, err
	}
	k := state.K
	if k < 1 {
		k = 1
	}
	st := newPathState(in, set, state)
	for {
		endIter := tr.Begin(SpanPlanReplanIterate)
		best, ok := st.pickNext(k, state.Workers)
		if !ok {
			endIter()
			break
		}
		st.accept(best)
		endIter(trace.Int("loc", best.loc))
	}
	p := st.plan()
	endPlan(trace.Int("stops", len(p.Stops)))
	return p, nil
}

// pathState is the open-path analogue of greedyState: the path runs from a
// fixed start (the UAV position) through the chosen hover locations to a
// fixed end (the depot), and candidate insertion prices the path-length
// delta instead of the closed-tour delta.
type pathState struct {
	in    *Instance
	set   *hover.Set
	start geom.Point
	end   geom.Point
	// order is the chosen hover-set ids in path order (endpoints
	// excluded).
	order    []int
	pathLen  float64
	inPath   []bool
	excluded []bool
	residual []units.Bits
	budget   units.Joules
	// per-location ledgers, keyed by hover-set id.
	sojourns  map[int]units.Seconds
	collected map[int]map[int]units.Bits
	hoverTime units.Seconds
	rec       obs.Recorder
	cAccepted obs.Counter
	cUpgraded obs.Counter
	cSkipped  obs.Counter
	// reference selects the retained full-scan path; the fast path keeps
	// idx (residual-active locations, excluded zones pre-filtered) and
	// prices insertions through ins (cached path edges). nExcluded is the
	// number of excluded candidates, which the reference scan also never
	// evaluates — it closes the evals + skipped reconciliation.
	reference bool
	idx       *scanIndex
	ins       insertionScratch
	nExcluded int64
}

func newPathState(in *Instance, set *hover.Set, state ResidualState) *pathState {
	rec := in.obsRecorder()
	st := &pathState{
		in:        in,
		set:       set,
		start:     state.Pos,
		end:       in.Net.Depot,
		pathLen:   state.Pos.Dist(in.Net.Depot),
		inPath:    make([]bool, set.Len()),
		excluded:  make([]bool, set.Len()),
		residual:  append([]units.Bits(nil), state.Residual...),
		budget:    state.Budget,
		sojourns:  map[int]units.Seconds{},
		collected: map[int]map[int]units.Bits{},
		rec:       rec,
		cAccepted: rec.Counter(CounterAcceptedStops),
		cUpgraded: rec.Counter(CounterUpgradedStops),
		cSkipped:  rec.Counter(CounterScanSkippedDrained),
		reference: state.Reference,
	}
	st.inPath[hover.DepotID] = true
	if state.Exclude != nil {
		for c := 1; c < set.Len(); c++ {
			st.excluded[c] = state.Exclude(set.Locs[c].Pos)
			if st.excluded[c] {
				st.nExcluded++
			}
		}
	}
	return st
}

// scanIdx lazily builds the residual-active index over non-excluded
// locations (laziness mirrors greedyState.scanIdx; the residuals here are
// seeded in the constructor, but keeping one convention keeps the drain
// bookkeeping uniform).
func (st *pathState) scanIdx() *scanIndex {
	if st.idx == nil {
		st.idx = newScanIndex(st.set, st.residual, func(c int) bool { return st.excluded[c] })
	}
	return st.idx
}

// noteDrained tells the index sensor v just hit exactly zero residual.
func (st *pathState) noteDrained(v int) {
	if st.idx != nil {
		st.idx.drained(v)
	}
}

// node returns the position of path slot i in the virtual sequence
// start, order..., end (i ranges over 0..len(order)+1).
func (st *pathState) node(i int) geom.Point {
	switch {
	case i == 0:
		return st.start
	case i == len(st.order)+1:
		return st.end
	default:
		return st.set.Locs[st.order[i-1]].Pos
	}
}

// energy returns the nominal energy of the current path plus hovers.
func (st *pathState) energy() units.Joules {
	return st.in.Model.TourEnergy(units.Meters(st.pathLen), st.hoverTime)
}

// bestInsertion returns the cheapest insertion slot for location c: the
// path-length delta of placing it between consecutive path nodes. pos is
// the index into order where c would be inserted (0 = right after start).
func (st *pathState) bestInsertion(c int) (pos int, delta float64) {
	p := st.set.Locs[c].Pos
	pos, delta = 0, math.Inf(1)
	for i := 0; i <= len(st.order); i++ {
		a, b := st.node(i), st.node(i+1)
		d := a.Dist(p) + p.Dist(b) - a.Dist(b)
		if d < delta {
			pos, delta = i, d
		}
	}
	if delta < 0 {
		delta = 0
	}
	return pos, delta
}

// pathCandidate is one (location, level) insertion or upgrade priced
// against the current path.
type pathCandidate struct {
	loc     int
	pos     int
	upgrade bool
	sojourn units.Seconds
	gain    units.Bits
	travelD float64
	take    map[int]units.Bits
}

// betterPath is the strict total order merging parallel scans: higher
// ratio, then higher gain, then lower id, then lower sojourn — identical
// to the serial first-seen preference and to the planners' orders.
func betterPath(c1 pathCandidate, r1 float64, c2 pathCandidate, r2 float64) bool {
	if c2.loc < 0 {
		return true
	}
	if r1 != r2 { //uavdc:allow floateq exact compare keeps the tie-break order total and bit-reproducible; an epsilon would break transitivity
		return r1 > r2
	}
	if c1.gain != c2.gain { //uavdc:allow floateq exact compare keeps the tie-break order total and bit-reproducible; an epsilon would break transitivity
		return c1.gain > c2.gain
	}
	if c1.loc != c2.loc {
		return c1.loc < c2.loc
	}
	return c1.sojourn < c2.sojourn
}

// evalLoc prices every level of one location against the path, returning
// its best candidate under the total order.
func (st *pathState) evalLoc(k, c int, cur units.Joules, so scanObs) (pathCandidate, float64, bool) {
	best := pathCandidate{loc: -1}
	if st.excluded[c] {
		return best, -1, false
	}
	so.evalHit(c)
	in := st.in
	bestRatio := -1.0
	loc := &st.set.Locs[c]
	so.resid.Inc()
	fullSojourn, fullAward := hover.ResidualDrain(loc.Covered, st.residual, loc.Rates, units.BitsPerSecond(in.Net.Bandwidth))
	prevSojourn := st.sojourns[c]
	already := st.collected[c]
	if fullAward <= 0 && !st.inPath[c] {
		return best, -1, false
	}
	var pos int
	var travelD float64
	if !st.inPath[c] {
		if st.reference {
			pos, travelD = st.bestInsertion(c)
		} else {
			pos, travelD = st.ins.bestPathInsertion(loc.Pos)
		}
	}
	for level := 1; level <= k; level++ {
		sojourn := units.Seconds(float64(level) * fullSojourn.F() / float64(k))
		if sojourn <= prevSojourn+1e-12 {
			continue
		}
		gain, take := partialTake(loc.Covered, st.residual, already, loc.Rates, units.BitsPerSecond(in.Net.Bandwidth), sojourn)
		if gain <= 1e-12 {
			continue
		}
		hoverE := in.Model.HoverEnergy(sojourn - prevSojourn)
		var travelE units.Joules
		if !st.inPath[c] {
			travelE = in.Model.TravelEnergy(units.Meters(travelD))
		}
		if cur+hoverE+travelE > st.budget+1e-9 {
			so.pruned.Inc()
			continue
		}
		denom := hoverE + travelE
		ratio := math.Inf(1)
		if denom > 1e-12 {
			ratio = gain.F() / denom.F()
		}
		cand := pathCandidate{
			loc:     c,
			pos:     pos,
			upgrade: st.inPath[c],
			sojourn: sojourn,
			gain:    gain,
			travelD: travelD,
			take:    take,
		}
		if betterPath(cand, ratio, best, bestRatio) {
			best, bestRatio = cand, ratio
		}
	}
	return best, bestRatio, best.loc >= 0
}

// pickNext scans every location, fanning across workers goroutines when
// asked; results are identical at any worker count. The default fast scan
// walks only residual-active, non-excluded locations — both exclusions
// the reference scan provably discards too (see scanIndex).
func (st *pathState) pickNext(k, workers int) (pathCandidate, bool) {
	if st.reference {
		return st.pickNextRef(k, workers)
	}
	return st.pickNextFast(k, workers)
}

// pickNextFast scans the residual-active location list over contiguous
// worker shards; the skip count reconciles fast evals with the reference
// scan's (every location except the excluded ones).
func (st *pathState) pickNextFast(k, workers int) (pathCandidate, bool) {
	cur := st.energy()
	active := st.scanIdx().compact()
	st.ins.resetPath(len(st.order), st.node)
	st.cSkipped.Add(int64(st.set.Len()-1) - st.nExcluded - int64(len(active)))
	if workers <= 1 || len(active) < 256 {
		best := pathCandidate{loc: -1}
		bestRatio := -1.0
		so := newScanObs(st.rec)
		for _, c := range active {
			if cand, ratio, ok := st.evalLoc(k, int(c), cur, so); ok && betterPath(cand, ratio, best, bestRatio) {
				best, bestRatio = cand, ratio
			}
		}
		return best, best.loc >= 0
	}
	type localBest struct {
		cand  pathCandidate
		ratio float64
	}
	results := make([]localBest, workers)
	shards := trace.ShardObs(st.rec, workers)
	var wg sync.WaitGroup
	chunk := (len(active) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(active))
		results[w] = localBest{cand: pathCandidate{loc: -1}, ratio: -1}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			so := newScanObs(shards[w])
			best := localBest{cand: pathCandidate{loc: -1}, ratio: -1}
			for _, c := range active[lo:hi] {
				if cand, ratio, ok := st.evalLoc(k, int(c), cur, so); ok && betterPath(cand, ratio, best.cand, best.ratio) {
					best = localBest{cand: cand, ratio: ratio}
				}
			}
			results[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	trace.MergeObs(st.rec, shards)
	best := localBest{cand: pathCandidate{loc: -1}, ratio: -1}
	for _, r := range results {
		if r.cand.loc >= 0 && betterPath(r.cand, r.ratio, best.cand, best.ratio) {
			best = r
		}
	}
	return best.cand, best.cand.loc >= 0
}

// pickNextRef is the retained reference scan over every location.
func (st *pathState) pickNextRef(k, workers int) (pathCandidate, bool) {
	n := st.set.Len()
	cur := st.energy()
	if workers <= 1 || n < 256 {
		best := pathCandidate{loc: -1}
		bestRatio := -1.0
		so := newScanObs(st.rec)
		for c := 1; c < n; c++ {
			if cand, ratio, ok := st.evalLoc(k, c, cur, so); ok && betterPath(cand, ratio, best, bestRatio) {
				best, bestRatio = cand, ratio
			}
		}
		return best, best.loc >= 0
	}
	type localBest struct {
		cand  pathCandidate
		ratio float64
	}
	results := make([]localBest, workers)
	shards := trace.ShardObs(st.rec, workers)
	var wg sync.WaitGroup
	chunk := (n - 1 + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := 1 + w*chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		results[w] = localBest{cand: pathCandidate{loc: -1}, ratio: -1}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			so := newScanObs(shards[w])
			best := localBest{cand: pathCandidate{loc: -1}, ratio: -1}
			for c := lo; c < hi; c++ {
				if cand, ratio, ok := st.evalLoc(k, c, cur, so); ok && betterPath(cand, ratio, best.cand, best.ratio) {
					best = localBest{cand: cand, ratio: ratio}
				}
			}
			results[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	trace.MergeObs(st.rec, shards)
	best := localBest{cand: pathCandidate{loc: -1}, ratio: -1}
	for _, r := range results {
		if r.cand.loc >= 0 && betterPath(r.cand, r.ratio, best.cand, best.ratio) {
			best = r
		}
	}
	return best.cand, best.cand.loc >= 0
}

// accept applies a candidate: inserts or upgrades the stop, moves the
// taken volumes from residuals into the stop's ledger, and re-optimises
// the interior path order with a fixed-endpoint 2-opt.
func (st *pathState) accept(c pathCandidate) {
	if c.upgrade {
		st.cUpgraded.Inc()
	} else {
		st.cAccepted.Inc()
		st.order = append(st.order, 0)
		copy(st.order[c.pos+1:], st.order[c.pos:])
		st.order[c.pos] = c.loc
		st.inPath[c.loc] = true
		st.pathLen += c.travelD
		st.collected[c.loc] = map[int]units.Bits{}
	}
	st.hoverTime += c.sojourn - st.sojourns[c.loc]
	st.sojourns[c.loc] = c.sojourn
	ledger := st.collected[c.loc]
	for v, amt := range c.take {
		ledger[v] += amt
		st.residual[v] -= amt
		if st.residual[v] <= 0 {
			st.residual[v] = 0
			st.noteDrained(v)
		}
	}
	st.improve()
}

// improve runs a deterministic first-improvement 2-opt on the interior of
// the path. Reversing an interior segment keeps both endpoints fixed, so
// the move is valid for the open path under the symmetric metric; the
// path length never increases.
func (st *pathState) improve() {
	if len(st.order) < 2 {
		return
	}
	const maxRounds = 16
	for round := 0; round < maxRounds; round++ {
		improved := false
		// Reversing order[i..j] replaces edges (i-1,i) and (j,j+1) with
		// (i-1,j) and (i,j+1) in the virtual sequence start..end.
		for i := 1; i <= len(st.order); i++ {
			for j := i + 1; j <= len(st.order); j++ {
				a, b := st.node(i-1), st.node(i)
				c, d := st.node(j), st.node(j+1)
				delta := a.Dist(c) + b.Dist(d) - a.Dist(b) - c.Dist(d)
				if delta < -1e-9 {
					for lo, hi := i-1, j-1; lo < hi; lo, hi = lo+1, hi-1 {
						st.order[lo], st.order[hi] = st.order[hi], st.order[lo]
					}
					st.pathLen += delta
					improved = true
				}
			}
		}
		if !improved {
			return
		}
	}
}

// plan freezes the path into a Plan: Depot is the instance depot, stops in
// path order, to be executed starting from the residual state's position.
func (st *pathState) plan() *Plan {
	p := &Plan{Algorithm: "replan", Depot: st.in.Net.Depot}
	for _, id := range st.order {
		stop := Stop{
			Pos:     st.set.Locs[id].Pos,
			LocID:   id,
			Sojourn: st.sojourns[id].F(),
		}
		for v, amt := range st.collected[id] {
			stop.Collected = append(stop.Collected, Collection{Sensor: v, Amount: amt.F()})
		}
		sortCollections(stop.Collected)
		p.Stops = append(p.Stops, stop)
	}
	return p
}

// PathEnergy returns the nominal energy of executing plan's stops as an
// open path from `from` to the plan's depot: travel along
// from → stops → depot plus every hover. It is the accounting AdaptiveRun
// rebases its deviation margin against after a replan.
func (p *Plan) PathEnergy(em energy.Model, from geom.Point) units.Joules {
	var e units.Joules
	pos := from
	for i := range p.Stops {
		e += em.TravelEnergy(units.Meters(pos.Dist(p.Stops[i].Pos))) + em.HoverEnergy(units.Seconds(p.Stops[i].Sojourn))
		pos = p.Stops[i].Pos
	}
	return e + em.TravelEnergy(units.Meters(pos.Dist(p.Depot)))
}
