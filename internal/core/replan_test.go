package core

import (
	"math"
	"testing"

	"uavdc/internal/geom"
	"uavdc/internal/obs"
	"uavdc/internal/units"
)

// residualAfter subtracts a prefix's collections from the full volumes.
func residualAfter(in *Instance, p *Plan, executed int) []units.Bits {
	res := make([]units.Bits, len(in.Net.Sensors))
	for v := range res {
		res[v] = units.Bits(in.Net.Sensors[v].Data)
	}
	for i := 0; i < executed && i < len(p.Stops); i++ {
		for _, c := range p.Stops[i].Collected {
			res[c.Sensor] -= units.Bits(c.Amount)
			if res[c.Sensor] < 0 {
				res[c.Sensor] = 0
			}
		}
	}
	return res
}

func TestReplanResidualRespectsBudgetAndEndsAtDepot(t *testing.T) {
	in := mediumInstance(t, 3, 2e4)
	full, err := (&Algorithm3{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Stops) < 3 {
		t.Fatalf("need a multi-stop plan, got %d stops", len(full.Stops))
	}
	// Pretend the mission executed two stops and is now at the second one
	// with half the battery left.
	pos := full.Stops[1].Pos
	budget := in.Model.Capacity / 2
	state := ResidualState{
		Pos:      pos,
		Budget:   budget,
		Residual: residualAfter(in, full, 2),
		K:        in.K,
	}
	rp, err := ReplanResidual(in, state)
	if err != nil {
		t.Fatal(err)
	}
	// The open path's nominal energy must fit the residual budget.
	if got := rp.PathEnergy(in.Model, pos); got > budget+1e-6 {
		t.Errorf("replanned path needs %.3f J, budget %.3f J", got.F(), budget.F())
	}
	// Collections only from residual volumes.
	per := rp.CollectedBySensor(len(in.Net.Sensors))
	for v, amt := range per {
		if units.Bits(amt) > state.Residual[v]+1e-9 {
			t.Errorf("sensor %d: replanned %v MB, residual %v MB", v, amt, state.Residual[v])
		}
	}
	if rp.Collected() <= 0 {
		t.Error("replanning with half the battery collected nothing")
	}
	for si := range rp.Stops {
		if rp.Stops[si].Sojourn < 0 {
			t.Errorf("stop %d negative sojourn", si)
		}
	}
}

func TestReplanResidualZeroBudget(t *testing.T) {
	in := mediumInstance(t, 1, 1e4)
	state := ResidualState{
		Pos:      in.Net.Depot,
		Budget:   0,
		Residual: residualAfter(in, &Plan{}, 0),
		K:        2,
	}
	rp, err := ReplanResidual(in, state)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Stops) != 0 {
		t.Errorf("zero budget planned %d stops", len(rp.Stops))
	}
}

func TestReplanResidualExcludePredicate(t *testing.T) {
	in := mediumInstance(t, 5, 3e4)
	residual := residualAfter(in, &Plan{}, 0)
	state := ResidualState{Pos: in.Net.Depot, Budget: in.Budget(), Residual: residual, K: 1}
	unconstrained, err := ReplanResidual(in, state)
	if err != nil {
		t.Fatal(err)
	}
	if len(unconstrained.Stops) == 0 {
		t.Fatal("unconstrained replan planned nothing")
	}
	// Forbid the first chosen stop's position: it must disappear.
	banned := unconstrained.Stops[0].Pos
	state.Exclude = func(p geom.Point) bool { return p.Dist(banned) < 1e-9 }
	constrained, err := ReplanResidual(in, state)
	if err != nil {
		t.Fatal(err)
	}
	for si := range constrained.Stops {
		if constrained.Stops[si].Pos.Dist(banned) < 1e-9 {
			t.Fatalf("excluded position still planned at stop %d", si)
		}
	}
}

func TestReplanResidualValidatesInput(t *testing.T) {
	in := mediumInstance(t, 1, 1e4)
	if _, err := ReplanResidual(in, ResidualState{Pos: in.Net.Depot, Budget: 1, Residual: []units.Bits{1}}); err == nil {
		t.Error("accepted residual of wrong length")
	}
	bad := residualAfter(in, &Plan{}, 0)
	bad[0] = units.Bits(math.NaN())
	if _, err := ReplanResidual(in, ResidualState{Pos: in.Net.Depot, Budget: 1, Residual: bad}); err == nil {
		t.Error("accepted NaN residual")
	}
	good := residualAfter(in, &Plan{}, 0)
	if _, err := ReplanResidual(in, ResidualState{Pos: in.Net.Depot, Budget: units.Joules(math.Inf(1)), Residual: good}); err == nil {
		t.Error("accepted infinite budget")
	}
}

// TestReplanResidualDeterministicAcrossWorkers: the replan scan reuses the
// planners' sharded total-order machinery, so plans and counter totals
// must be identical at any worker count.
func TestReplanResidualDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{2, 6} {
		base := mediumInstance(t, seed, 2.5e4)
		base.Delta = 12 // enough candidates to clear the parallel threshold
		base.K = 2
		residual := residualAfter(base, &Plan{}, 0)
		state := ResidualState{
			Pos:      geom.Pt(base.Net.Depot.X+40, base.Net.Depot.Y+25),
			Budget:   2e4,
			Residual: residual,
			K:        2,
		}
		var want *Plan
		var wantSnap obs.Snapshot
		for _, workers := range []int{1, 2, 4, 8} {
			in := *base
			reg := obs.NewRegistry()
			in.Obs = reg
			st := state
			st.Workers = workers
			got, err := ReplanResidual(&in, st)
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			snap := reg.Snapshot()
			if want == nil {
				want, wantSnap = got, snap
				if snap.Counters[CounterCandidateEvals] == 0 {
					t.Fatalf("seed=%d: replan recorded no candidate evals", seed)
				}
				continue
			}
			assertPlansIdentical(t, "replan", workers, want, got)
			if !wantSnap.Equal(snap) {
				t.Errorf("seed=%d: counters diverge at workers=%d:\n%s", seed, workers, wantSnap.Diff(snap))
			}
		}
	}
}
