package core

import (
	"bytes"
	"testing"

	"uavdc/internal/obs"
	"uavdc/internal/trace"
)

// stripped exports the buffer's records with wall times stripped — the
// byte stream the determinism guarantee is stated over.
func stripped(t *testing.T, buf *trace.Buffer) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := trace.WriteJSONL(&b, buf.Snapshot(), true); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTraceStreamInvariantAcrossWorkers: with detail tracing on (one event
// per candidate evaluation), the stripped trace stream must be
// byte-identical at Workers ∈ {1, 4, 8}. Workers record into per-shard
// buffers merged in worker-index order, which is exactly the serial
// candidate order — so any divergence means the parallel scan walked a
// different candidate sequence than the serial one.
func TestTraceStreamInvariantAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 4, 8}
	for _, seed := range []uint64{1, 4, 9} {
		traceFor := func(name string, plan func(workers int, rec obs.Recorder) error) map[int][]byte {
			t.Helper()
			streams := make(map[int][]byte, len(workerCounts))
			for _, w := range workerCounts {
				buf := trace.NewBuffer()
				buf.SetDetail(true)
				if err := plan(w, trace.With(obs.NewRegistry(), buf)); err != nil {
					t.Fatalf("%s seed=%d workers=%d: %v", name, seed, w, err)
				}
				if buf.Len() == 0 {
					t.Fatalf("%s seed=%d workers=%d: empty trace", name, seed, w)
				}
				streams[w] = stripped(t, buf)
			}
			return streams
		}
		check := func(name string, streams map[int][]byte) {
			t.Helper()
			base := streams[workerCounts[0]]
			for _, w := range workerCounts[1:] {
				if !bytes.Equal(base, streams[w]) {
					t.Errorf("%s seed=%d: stripped trace stream diverges at workers=%d", name, seed, w)
				}
			}
		}

		check("algorithm2", traceFor("algorithm2", func(workers int, rec obs.Recorder) error {
			in := mediumInstance(t, seed, 1.5e4)
			in.Delta = 12 // enough candidates to clear the parallel threshold
			in.Obs = rec
			_, err := (&Algorithm2{Workers: workers}).Plan(in)
			return err
		}))
		check("algorithm3", traceFor("algorithm3", func(workers int, rec obs.Recorder) error {
			in := mediumInstance(t, seed, 1.5e4)
			in.Delta = 12
			in.K = 3
			in.Obs = rec
			_, err := (&Algorithm3{Workers: workers}).Plan(in)
			return err
		}))
	}
}

// TestTracingDoesNotChangePlans: planning with a live trace buffer (detail
// on) must produce byte-identical plans to planning untraced, for every
// planner in the library.
func TestTracingDoesNotChangePlans(t *testing.T) {
	in := mediumInstance(t, 2, 1.2e4)
	for _, pl := range []Planner{&Algorithm1{}, &Algorithm2{}, &Algorithm3{}, &BenchmarkPlanner{}, &BenchmarkCoverage{}, &LNSPlanner{Rounds: 3}} {
		bare, err := pl.Plan(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		buf := trace.NewBuffer()
		buf.SetDetail(true)
		instr := *in
		instr.Obs = trace.With(obs.NewRegistry(), buf)
		traced, err := pl.Plan(&instr)
		if err != nil {
			t.Fatalf("%s traced: %v", pl.Name(), err)
		}
		assertPlansIdentical(t, pl.Name(), 0, bare, traced)
		if buf.Len() == 0 {
			t.Errorf("%s: no trace records emitted", pl.Name())
		}
	}
}
