package core

import (
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/units"
)

// verticalModel is the paper's UAV with a 200 W / 3 m/s vertical component.
func verticalModel(capacity units.Joules) energy.Model {
	m := energy.Default().WithCapacity(capacity)
	m.ClimbPower = 200
	m.ClimbRate = 3
	return m
}

func TestBudgetSubtractsVerticalOverhead(t *testing.T) {
	in := mediumInstance(t, 1, 2e4)
	in.Model = verticalModel(2e4)
	in.Altitude = 30
	// 2 × 30 m × 200 W / 3 m/s = 4000 J.
	if got := in.Budget(); got != 2e4-4000 {
		t.Errorf("Budget = %v, want 16000", got)
	}
	in.Altitude = 0
	if got := in.Budget(); got != 2e4 {
		t.Errorf("zero altitude Budget = %v", got)
	}
	flat := mediumInstance(t, 1, 2e4)
	if flat.Budget() != 2e4 {
		t.Error("paper model must have zero overhead")
	}
}

func TestVerticalOverheadValidation(t *testing.T) {
	in := mediumInstance(t, 1, 1e3)
	in.Model = verticalModel(1e3)
	in.Altitude = 10 // overhead 1333 J > 1000 J capacity
	if in.Validate() == nil {
		t.Error("overhead above capacity accepted")
	}
	bad := energy.Default()
	bad.ClimbPower = 100 // rate missing
	if bad.Validate() == nil {
		t.Error("climb power without rate accepted")
	}
}

// TestPlannersRespectVerticalOverhead: plans under the vertical model must
// pass the physics validator (which charges the overhead) and complete in
// the simulator at the mission altitude.
func TestPlannersRespectVerticalOverhead(t *testing.T) {
	in := mediumInstance(t, 2, 2e4)
	in.Model = verticalModel(2e4)
	in.Altitude = 30
	for _, pl := range []Planner{&Algorithm1{}, &Algorithm2{}, &Algorithm3{}, &BenchmarkPlanner{}, &BenchmarkCoverage{}} {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if err := ValidatePlanPhysics(in.Net, in.Model, in.Physics(), plan); err != nil {
			t.Errorf("%s: %v", pl.Name(), err)
		}
	}
}

func TestVerticalOverheadReducesCollection(t *testing.T) {
	free := mediumInstance(t, 3, 1e4)
	free.Altitude = 30
	paid := mediumInstance(t, 3, 1e4)
	paid.Model = verticalModel(1e4)
	paid.Altitude = 30
	p1, err := (&Algorithm2{}).Plan(free)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := (&Algorithm2{}).Plan(paid)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Collected() >= p1.Collected() {
		t.Errorf("paying 4 kJ for altitude should cost volume: %v vs %v", p2.Collected(), p1.Collected())
	}
}
