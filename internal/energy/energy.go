// Package energy models the UAV's energy consumption: a constant hover
// power η_h, a constant travel power η_t at fixed cruising speed, and a
// battery capacity E (Section III-A of the paper). The default constants
// follow the paper's experimental settings, which cite the DJI Phantom 4
// Pro specifications.
package energy

import (
	"fmt"
	"math"
)

// Model is the UAV energy model.
type Model struct {
	// HoverPower η_h is the power drawn while hovering, in J/s.
	HoverPower float64
	// TravelPower η_t is the power drawn while flying, in J/s.
	TravelPower float64
	// Speed is the constant cruising speed, in m/s.
	Speed float64
	// Capacity E is the battery capacity, in J.
	Capacity float64
	// ClimbPower is the power drawn while climbing or descending, in
	// J/s. Zero (with ClimbRate zero) reproduces the paper's model, in
	// which altitude transitions are free.
	ClimbPower float64
	// ClimbRate is the vertical speed, in m/s.
	ClimbRate float64
}

// Default returns the paper's experimental model: η_t = 100 J/s,
// η_h = 150 J/s, 10 m/s cruising speed, and a 3×10⁵ J battery.
func Default() Model {
	return Model{HoverPower: 150, TravelPower: 100, Speed: 10, Capacity: 3e5}
}

// Validate reports whether the model's parameters are physically sensible.
func (m Model) Validate() error {
	switch {
	case !(m.HoverPower > 0) || math.IsInf(m.HoverPower, 1):
		return fmt.Errorf("energy: hover power must be positive and finite, got %v", m.HoverPower)
	case !(m.TravelPower > 0) || math.IsInf(m.TravelPower, 1):
		return fmt.Errorf("energy: travel power must be positive and finite, got %v", m.TravelPower)
	case !(m.Speed > 0) || math.IsInf(m.Speed, 1):
		return fmt.Errorf("energy: speed must be positive and finite, got %v", m.Speed)
	case !(m.Capacity >= 0) || math.IsInf(m.Capacity, 1):
		return fmt.Errorf("energy: capacity must be non-negative and finite, got %v", m.Capacity)
	case m.ClimbPower < 0 || math.IsInf(m.ClimbPower, 1) || math.IsNaN(m.ClimbPower):
		return fmt.Errorf("energy: invalid climb power %v", m.ClimbPower)
	case m.ClimbRate < 0 || math.IsInf(m.ClimbRate, 1) || math.IsNaN(m.ClimbRate):
		return fmt.Errorf("energy: invalid climb rate %v", m.ClimbRate)
	case (m.ClimbPower > 0) != (m.ClimbRate > 0):
		return fmt.Errorf("energy: climb power and climb rate must be set together (got %v, %v)", m.ClimbPower, m.ClimbRate)
	}
	return nil
}

// ClimbEnergy returns the energy to ascend (or descend — modelled
// symmetrically, a conservative choice) h metres: ClimbPower · h /
// ClimbRate. Zero when the vertical model is disabled.
func (m Model) ClimbEnergy(h float64) float64 {
	if m.ClimbRate <= 0 || h <= 0 {
		return 0
	}
	return m.ClimbPower * h / m.ClimbRate
}

// VerticalOverhead returns the fixed per-sortie cost of one ascent to and
// one descent from altitude h.
func (m Model) VerticalOverhead(h float64) float64 {
	return 2 * m.ClimbEnergy(h)
}

// WithCapacity returns a copy of the model with the battery capacity set to
// e — the knob the Fig. 3/5 sweeps turn.
func (m Model) WithCapacity(e float64) Model {
	m.Capacity = e
	return m
}

// TravelTime returns the time (s) to fly dist metres.
func (m Model) TravelTime(dist float64) float64 { return dist / m.Speed }

// TravelEnergy returns the energy (J) to fly dist metres: η_t · dist / v.
func (m Model) TravelEnergy(dist float64) float64 {
	return m.TravelPower * dist / m.Speed
}

// TravelEnergyPerMeter returns η_t / v, the cost of one metre of flight.
func (m Model) TravelEnergyPerMeter() float64 { return m.TravelPower / m.Speed }

// HoverEnergy returns the energy (J) to hover for d seconds: η_h · d.
func (m Model) HoverEnergy(d float64) float64 { return m.HoverPower * d }

// MaxTravelDistance returns how far the UAV can fly on a full battery with
// no hovering, in metres.
func (m Model) MaxTravelDistance() float64 {
	return m.Capacity * m.Speed / m.TravelPower
}

// MaxHoverTime returns how long the UAV can hover on a full battery with no
// flying, in seconds.
func (m Model) MaxHoverTime() float64 { return m.Capacity / m.HoverPower }

// TourEnergy returns the energy of a closed tour with total flight distance
// dist and total hover time hover.
func (m Model) TourEnergy(dist, hover float64) float64 {
	return m.TravelEnergy(dist) + m.HoverEnergy(hover)
}
