// Package energy models the UAV's energy consumption: a constant hover
// power η_h, a constant travel power η_t at fixed cruising speed, and a
// battery capacity E (Section III-A of the paper). The default constants
// follow the paper's experimental settings, which cite the DJI Phantom 4
// Pro specifications. Quantities carry internal/units types: powers are
// units.Watts, the speed units.MetersPerSecond, energies units.Joules.
package energy

import (
	"fmt"
	"math"

	"uavdc/internal/units"
)

// Model is the UAV energy model.
type Model struct {
	// HoverPower η_h is the power drawn while hovering, in J/s.
	HoverPower units.Watts
	// TravelPower η_t is the power drawn while flying, in J/s.
	TravelPower units.Watts
	// Speed is the constant cruising speed, in m/s.
	Speed units.MetersPerSecond
	// Capacity E is the battery capacity, in J.
	Capacity units.Joules
	// ClimbPower is the power drawn while climbing or descending, in
	// J/s. Zero (with ClimbRate zero) reproduces the paper's model, in
	// which altitude transitions are free.
	ClimbPower units.Watts
	// ClimbRate is the vertical speed, in m/s.
	ClimbRate units.MetersPerSecond
}

// Default returns the paper's experimental model: η_t = 100 J/s,
// η_h = 150 J/s, 10 m/s cruising speed, and a 3×10⁵ J battery.
func Default() Model {
	return Model{HoverPower: 150, TravelPower: 100, Speed: 10, Capacity: 3e5}
}

// Validate reports whether the model's parameters are physically sensible.
func (m Model) Validate() error {
	switch {
	case !(m.HoverPower > 0) || math.IsInf(m.HoverPower.F(), 1):
		return fmt.Errorf("energy: hover power must be positive and finite, got %v", m.HoverPower)
	case !(m.TravelPower > 0) || math.IsInf(m.TravelPower.F(), 1):
		return fmt.Errorf("energy: travel power must be positive and finite, got %v", m.TravelPower)
	case !(m.Speed > 0) || math.IsInf(m.Speed.F(), 1):
		return fmt.Errorf("energy: speed must be positive and finite, got %v", m.Speed)
	case !(m.Capacity >= 0) || math.IsInf(m.Capacity.F(), 1):
		return fmt.Errorf("energy: capacity must be non-negative and finite, got %v", m.Capacity)
	case m.ClimbPower < 0 || math.IsInf(m.ClimbPower.F(), 1) || math.IsNaN(m.ClimbPower.F()):
		return fmt.Errorf("energy: invalid climb power %v", m.ClimbPower)
	case m.ClimbRate < 0 || math.IsInf(m.ClimbRate.F(), 1) || math.IsNaN(m.ClimbRate.F()):
		return fmt.Errorf("energy: invalid climb rate %v", m.ClimbRate)
	case (m.ClimbPower > 0) != (m.ClimbRate > 0):
		return fmt.Errorf("energy: climb power and climb rate must be set together (got %v, %v)", m.ClimbPower, m.ClimbRate)
	}
	return nil
}

// ClimbEnergy returns the energy to ascend (or descend — modelled
// symmetrically, a conservative choice) h metres: ClimbPower · h /
// ClimbRate. Zero when the vertical model is disabled.
func (m Model) ClimbEnergy(h units.Meters) units.Joules {
	if m.ClimbRate <= 0 || h <= 0 {
		return 0
	}
	return units.Joules(m.ClimbPower.F() * h.F() / m.ClimbRate.F())
}

// VerticalOverhead returns the fixed per-sortie cost of one ascent to and
// one descent from altitude h.
func (m Model) VerticalOverhead(h units.Meters) units.Joules {
	return 2 * m.ClimbEnergy(h)
}

// WithCapacity returns a copy of the model with the battery capacity set to
// e — the knob the Fig. 3/5 sweeps turn.
func (m Model) WithCapacity(e units.Joules) Model {
	m.Capacity = e
	return m
}

// TravelTime returns the time (s) to fly dist metres.
func (m Model) TravelTime(dist units.Meters) units.Seconds {
	return units.TravelTime(dist, m.Speed)
}

// TravelEnergy returns the energy (J) to fly dist metres: η_t · dist / v.
func (m Model) TravelEnergy(dist units.Meters) units.Joules {
	return units.Joules(m.TravelPower.F() * dist.F() / m.Speed.F())
}

// TravelEnergyPerMeter returns η_t / v, the cost of one metre of flight,
// as a plain float64 (J/m has no type in the units vocabulary).
func (m Model) TravelEnergyPerMeter() float64 { return m.TravelPower.F() / m.Speed.F() }

// HoverEnergy returns the energy (J) to hover for d seconds: η_h · d.
func (m Model) HoverEnergy(d units.Seconds) units.Joules {
	return units.Energy(m.HoverPower, d)
}

// MaxTravelDistance returns how far the UAV can fly on a full battery with
// no hovering, in metres.
func (m Model) MaxTravelDistance() units.Meters {
	return units.Meters(m.Capacity.F() * m.Speed.F() / m.TravelPower.F())
}

// MaxHoverTime returns how long the UAV can hover on a full battery with no
// flying, in seconds.
func (m Model) MaxHoverTime() units.Seconds { return units.Duration(m.Capacity, m.HoverPower) }

// TourEnergy returns the energy of a closed tour with total flight distance
// dist and total hover time hover.
func (m Model) TourEnergy(dist units.Meters, hover units.Seconds) units.Joules {
	return m.TravelEnergy(dist) + m.HoverEnergy(hover)
}
