package energy

import (
	"math"
	"testing"
)

func TestDefaultMatchesPaper(t *testing.T) {
	m := Default()
	if m.HoverPower != 150 || m.TravelPower != 100 || m.Speed != 10 || m.Capacity != 3e5 {
		t.Errorf("Default = %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	good := Default()
	cases := []func(Model) Model{
		func(m Model) Model { m.HoverPower = 0; return m },
		func(m Model) Model { m.HoverPower = -1; return m },
		func(m Model) Model { m.HoverPower = math.Inf(1); return m },
		func(m Model) Model { m.TravelPower = 0; return m },
		func(m Model) Model { m.Speed = 0; return m },
		func(m Model) Model { m.Speed = math.NaN(); return m },
		func(m Model) Model { m.Capacity = -5; return m },
		func(m Model) Model { m.Capacity = math.Inf(1); return m },
	}
	for i, mut := range cases {
		if err := mut(good).Validate(); err == nil {
			t.Errorf("case %d: bad model accepted", i)
		}
	}
	zero := good
	zero.Capacity = 0 // an empty battery is a valid (if sad) state
	if err := zero.Validate(); err != nil {
		t.Errorf("zero capacity rejected: %v", err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := Default()
	// 100 m at 10 m/s = 10 s × 100 J/s = 1000 J.
	if got := m.TravelEnergy(100); got != 1000 {
		t.Errorf("TravelEnergy(100) = %v", got)
	}
	if got := m.TravelTime(100); got != 10 {
		t.Errorf("TravelTime(100) = %v", got)
	}
	if got := m.TravelEnergyPerMeter(); got != 10 {
		t.Errorf("TravelEnergyPerMeter = %v", got)
	}
	if got := m.HoverEnergy(60); got != 9000 {
		t.Errorf("HoverEnergy(60) = %v", got)
	}
	if got := m.TourEnergy(100, 60); got != 10000 {
		t.Errorf("TourEnergy = %v", got)
	}
}

func TestCapacityDerived(t *testing.T) {
	m := Default()
	// 3e5 J / (100 J/s) × 10 m/s = 30 km.
	if got := m.MaxTravelDistance(); got != 3e4 {
		t.Errorf("MaxTravelDistance = %v", got)
	}
	// 3e5 / 150 = 2000 s.
	if got := m.MaxHoverTime(); got != 2000 {
		t.Errorf("MaxHoverTime = %v", got)
	}
}

func TestWithCapacity(t *testing.T) {
	m := Default().WithCapacity(9e5)
	if m.Capacity != 9e5 {
		t.Errorf("Capacity = %v", m.Capacity)
	}
	if Default().Capacity != 3e5 {
		t.Error("WithCapacity mutated the receiver")
	}
}

func TestClimbEnergy(t *testing.T) {
	m := Default()
	if m.ClimbEnergy(100) != 0 || m.VerticalOverhead(50) != 0 {
		t.Error("paper model must have free altitude")
	}
	m.ClimbPower = 200
	m.ClimbRate = 4
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.ClimbEnergy(20); got != 1000 {
		t.Errorf("ClimbEnergy(20) = %v, want 1000", got)
	}
	if got := m.VerticalOverhead(20); got != 2000 {
		t.Errorf("VerticalOverhead(20) = %v, want 2000", got)
	}
	if got := m.ClimbEnergy(-5); got != 0 {
		t.Errorf("negative height should be free: %v", got)
	}
}

func TestClimbValidation(t *testing.T) {
	cases := []func(Model) Model{
		func(m Model) Model { m.ClimbPower = -1; return m },
		func(m Model) Model { m.ClimbRate = -1; return m },
		func(m Model) Model { m.ClimbPower = 100; return m },        // rate missing
		func(m Model) Model { m.ClimbRate = 3; return m },           // power missing
		func(m Model) Model { m.ClimbPower = math.NaN(); return m }, // NaN
		func(m Model) Model { m.ClimbRate = math.Inf(1); return m }, // Inf
	}
	for i, mut := range cases {
		if err := mut(Default()).Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
