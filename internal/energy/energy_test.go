package energy

import (
	"math"
	"testing"

	"uavdc/internal/units"
)

func TestDefaultMatchesPaper(t *testing.T) {
	m := Default()
	if m.HoverPower != 150 || m.TravelPower != 100 || m.Speed != 10 || m.Capacity != 3e5 {
		t.Errorf("Default = %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

// TestValidateRejectsBadModels is the table-driven sweep over every way a
// model can be unphysical: zero or negative powers and speeds, NaN in any
// field, ±Inf in any field, and the ClimbPower/ClimbRate must-be-set-
// together pairing.
func TestValidateRejectsBadModels(t *testing.T) {
	cases := []struct {
		name string
		mut  func(Model) Model
	}{
		{"zero hover power", func(m Model) Model { m.HoverPower = 0; return m }},
		{"negative hover power", func(m Model) Model { m.HoverPower = -1; return m }},
		{"+Inf hover power", func(m Model) Model { m.HoverPower = units.Watts(math.Inf(1)); return m }},
		{"NaN hover power", func(m Model) Model { m.HoverPower = units.Watts(math.NaN()); return m }},
		{"zero travel power", func(m Model) Model { m.TravelPower = 0; return m }},
		{"-Inf travel power", func(m Model) Model { m.TravelPower = units.Watts(math.Inf(-1)); return m }},
		{"NaN travel power", func(m Model) Model { m.TravelPower = units.Watts(math.NaN()); return m }},
		{"zero speed", func(m Model) Model { m.Speed = 0; return m }},
		{"NaN speed", func(m Model) Model { m.Speed = units.MetersPerSecond(math.NaN()); return m }},
		{"+Inf speed", func(m Model) Model { m.Speed = units.MetersPerSecond(math.Inf(1)); return m }},
		{"negative capacity", func(m Model) Model { m.Capacity = -5; return m }},
		{"+Inf capacity", func(m Model) Model { m.Capacity = units.Joules(math.Inf(1)); return m }},
		{"NaN capacity", func(m Model) Model { m.Capacity = units.Joules(math.NaN()); return m }},
		{"negative climb power", func(m Model) Model { m.ClimbPower = -1; return m }},
		{"negative climb rate", func(m Model) Model { m.ClimbRate = -1; return m }},
		{"climb power without rate", func(m Model) Model { m.ClimbPower = 100; return m }},
		{"climb rate without power", func(m Model) Model { m.ClimbRate = 3; return m }},
		{"NaN climb power", func(m Model) Model { m.ClimbPower = units.Watts(math.NaN()); return m }},
		{"+Inf climb rate", func(m Model) Model { m.ClimbRate = units.MetersPerSecond(math.Inf(1)); return m }},
		{"NaN climb rate", func(m Model) Model { m.ClimbRate = units.MetersPerSecond(math.NaN()); return m }},
	}
	for _, c := range cases {
		if err := c.mut(Default()).Validate(); err == nil {
			t.Errorf("%s: bad model accepted", c.name)
		}
	}
	zero := Default()
	zero.Capacity = 0 // an empty battery is a valid (if sad) state
	if err := zero.Validate(); err != nil {
		t.Errorf("zero capacity rejected: %v", err)
	}
	climbing := Default()
	climbing.ClimbPower = 200
	climbing.ClimbRate = 4
	if err := climbing.Validate(); err != nil {
		t.Errorf("paired climb model rejected: %v", err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := Default()
	// 100 m at 10 m/s = 10 s × 100 J/s = 1000 J.
	if got := m.TravelEnergy(100); got != 1000 {
		t.Errorf("TravelEnergy(100) = %v", got)
	}
	if got := m.TravelTime(100); got != 10 {
		t.Errorf("TravelTime(100) = %v", got)
	}
	if got := m.TravelEnergyPerMeter(); got != 10 {
		t.Errorf("TravelEnergyPerMeter = %v", got)
	}
	if got := m.HoverEnergy(60); got != 9000 {
		t.Errorf("HoverEnergy(60) = %v", got)
	}
	if got := m.TourEnergy(100, 60); got != 10000 {
		t.Errorf("TourEnergy = %v", got)
	}
}

func TestCapacityDerived(t *testing.T) {
	m := Default()
	// 3e5 J / (100 J/s) × 10 m/s = 30 km.
	if got := m.MaxTravelDistance(); got != 3e4 {
		t.Errorf("MaxTravelDistance = %v", got)
	}
	// 3e5 / 150 = 2000 s.
	if got := m.MaxHoverTime(); got != 2000 {
		t.Errorf("MaxHoverTime = %v", got)
	}
}

func TestWithCapacity(t *testing.T) {
	m := Default().WithCapacity(9e5)
	if m.Capacity != 9e5 {
		t.Errorf("Capacity = %v", m.Capacity)
	}
	if Default().Capacity != 3e5 {
		t.Error("WithCapacity mutated the receiver")
	}
}

func TestClimbEnergy(t *testing.T) {
	m := Default()
	if m.ClimbEnergy(100) != 0 || m.VerticalOverhead(50) != 0 {
		t.Error("paper model must have free altitude")
	}
	m.ClimbPower = 200
	m.ClimbRate = 4
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.ClimbEnergy(20); got != 1000 {
		t.Errorf("ClimbEnergy(20) = %v, want 1000", got)
	}
	if got := m.VerticalOverhead(20); got != 2000 {
		t.Errorf("VerticalOverhead(20) = %v, want 2000", got)
	}
	if got := m.ClimbEnergy(-5); got != 0 {
		t.Errorf("negative height should be free: %v", got)
	}
}

// TestClimbEnergySymmetry pins the documented modelling choice: the descent
// is priced by the same ClimbPower·h/ClimbRate expression as the ascent, so
// VerticalOverhead is exactly twice one transition at any altitude —
// including awkward ones where the division is inexact.
func TestClimbEnergySymmetry(t *testing.T) {
	m := Default()
	m.ClimbPower = 137.7
	m.ClimbRate = 2.3
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, h := range []units.Meters{0.1, 7.77, 20, 33.3, 151.5} {
		up := m.ClimbEnergy(h)
		down := m.ClimbEnergy(h) // simulate prices the descent with this same call
		if math.Float64bits(up.F()) != math.Float64bits(down.F()) {
			t.Errorf("ClimbEnergy(%v) not symmetric: %v vs %v", h, up, down)
		}
		if got, want := m.VerticalOverhead(h), up+down; math.Float64bits(got.F()) != math.Float64bits(want.F()) {
			t.Errorf("VerticalOverhead(%v) = %v, want up+down = %v", h, got, want)
		}
	}
}
