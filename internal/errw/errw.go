// Package errw provides an error-sticky writer for code that emits many
// small writes — CLI output, table renderers, SVG generation — where
// checking every fmt.Fprintf result would bury the format logic.
//
// The first write failure is latched and every later write becomes a
// no-op, so the happy path stays linear and the caller checks Err once
// at the end. The print methods deliberately return nothing: there is no
// error result to discard, which keeps call sites clean under uavlint's
// errdrop analyzer without a suppression comment.
package errw

import (
	"fmt"
	"io"
)

// Writer wraps an io.Writer with sticky error handling.
type Writer struct {
	w   io.Writer
	err error
}

// New returns a sticky writer over w. A nil w yields a writer whose
// first use fails with an explanatory error rather than panicking.
func New(w io.Writer) *Writer {
	ew := &Writer{w: w}
	if w == nil {
		ew.err = fmt.Errorf("errw: nil writer")
	}
	return ew
}

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

// Write implements io.Writer. After a failure it reports the latched
// error without touching the underlying writer again.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	w.err = err
	return n, err
}

// Printf formats like fmt.Fprintf; failures latch into Err.
func (w *Writer) Printf(format string, args ...any) {
	if w.err == nil {
		_, w.err = fmt.Fprintf(w.w, format, args...)
	}
}

// Println formats like fmt.Fprintln; failures latch into Err.
func (w *Writer) Println(args ...any) {
	if w.err == nil {
		_, w.err = fmt.Fprintln(w.w, args...)
	}
}

// Print formats like fmt.Fprint; failures latch into Err.
func (w *Writer) Print(args ...any) {
	if w.err == nil {
		_, w.err = fmt.Fprint(w.w, args...)
	}
}
