package errw

import (
	"errors"
	"strings"
	"testing"
)

// failAfter fails every write once n bytes have been accepted.
type failAfter struct {
	n   int
	got strings.Builder
}

var errBoom = errors.New("boom")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.got.Len()+len(p) > f.n {
		return 0, errBoom
	}
	return f.got.Write(p)
}

func TestHappyPath(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	w.Printf("a=%d ", 1)
	w.Print("b ")
	w.Println("c")
	if err := w.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
	if got := sb.String(); got != "a=1 b c\n" {
		t.Fatalf("wrote %q", got)
	}
}

func TestStickyError(t *testing.T) {
	sink := &failAfter{n: 4}
	w := New(sink)
	w.Printf("1234")
	if w.Err() != nil {
		t.Fatalf("early failure: %v", w.Err())
	}
	w.Printf("56")
	if !errors.Is(w.Err(), errBoom) {
		t.Fatalf("Err() = %v, want errBoom", w.Err())
	}
	// Later writes are no-ops and keep the first error.
	w.Println("more")
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, errBoom) {
		t.Fatalf("Write after failure = %d, %v", n, err)
	}
	if got := sink.got.String(); got != "1234" {
		t.Fatalf("underlying writer got %q after failure", got)
	}
}

func TestNilWriter(t *testing.T) {
	w := New(nil)
	w.Printf("ignored")
	if w.Err() == nil {
		t.Fatal("nil writer did not latch an error")
	}
}
