package experiments

import (
	"fmt"
	"maps"
	"reflect"
	"slices"
	"testing"

	"uavdc/internal/core"
	"uavdc/internal/multi"
	"uavdc/internal/radio"
	"uavdc/internal/sensornet"
	"uavdc/internal/simulate"
	"uavdc/internal/units"
)

// shannonInstance mirrors ExtAltitude's Shannon series instance.
func shannonInstance(cfg Config, net *sensornet.Network, altitude float64) *core.Instance {
	return &core.Instance{
		Net: net, Model: cfg.Model, Delta: units.Meters(cfg.Delta), K: 1, Altitude: units.Meters(altitude),
		Radio: radio.Shannon{RefRate: units.BitsPerSecond(net.Bandwidth), RefDist: 10, RefSNR: 100, PathLossExp: 2.7},
	}
}

// parityCell is one (instance, plan) execution cell from a figure driver.
type parityCell struct {
	label string
	in    *core.Instance
	plan  *core.Plan
}

// figureParityCells reconstructs, per figure driver, the exact (instance,
// planner) cells the driver executes, and plans each one.
func figureParityCells(t *testing.T, fig string, cfg Config, nets []*sensornet.Network) []parityCell {
	t.Helper()
	var cells []parityCell
	add := func(label string, planner core.Planner, mk func(*sensornet.Network, float64) *core.Instance, xs []float64) {
		for _, x := range xs {
			for ni, net := range nets {
				in := mk(net, x)
				plan, err := planner.Plan(in)
				if err != nil {
					t.Fatalf("%s/%s x=%g net=%d: %v", fig, label, x, ni, err)
				}
				cells = append(cells, parityCell{
					label: fmt.Sprintf("%s/%s x=%g net=%d", fig, label, x, ni),
					in:    in, plan: plan,
				})
			}
		}
	}
	switch fig {
	case "fig3":
		add("algorithm1", &core.Algorithm1{}, capacityInstance(cfg, cfg.Delta, 1), cfg.Capacities)
		add("benchmark", &core.BenchmarkPlanner{}, capacityInstance(cfg, cfg.Delta, 1), cfg.Capacities)
	case "fig4":
		add("algorithm2", &core.Algorithm2{}, deltaInstance(cfg, 1), cfg.Deltas)
		for _, k := range cfg.Ks {
			add(fmt.Sprintf("algorithm3-k%d", k), &core.Algorithm3{}, deltaInstance(cfg, k), cfg.Deltas)
		}
		add("benchmark", &core.BenchmarkPlanner{}, deltaInstance(cfg, 1), cfg.Deltas)
	case "fig5":
		add("algorithm2", &core.Algorithm2{}, capacityInstance(cfg, cfg.Delta, 1), cfg.Capacities)
		for _, k := range cfg.Ks {
			add(fmt.Sprintf("algorithm3-k%d", k), &core.Algorithm3{}, capacityInstance(cfg, cfg.Delta, k), cfg.Capacities)
		}
		add("benchmark", &core.BenchmarkPlanner{}, capacityInstance(cfg, cfg.Delta, 1), cfg.Capacities)
	case "ext-altitude":
		altitudes := []float64{0, 10, 20, 30, 40}
		add("constant-B", &core.Algorithm2{}, func(net *sensornet.Network, x float64) *core.Instance {
			return &core.Instance{Net: net, Model: cfg.Model, Delta: units.Meters(cfg.Delta), K: 1, Altitude: units.Meters(x)}
		}, altitudes)
		// The driver's Shannon series uses a per-network radio model; build
		// it the same way.
		for _, x := range altitudes {
			for ni, net := range nets {
				in := shannonInstance(cfg, net, x)
				plan, err := (&core.Algorithm2{}).Plan(in)
				if err != nil {
					t.Fatalf("%s/shannon x=%g net=%d: %v", fig, x, ni, err)
				}
				cells = append(cells, parityCell{
					label: fmt.Sprintf("%s/shannon x=%g net=%d", fig, x, ni),
					in:    in, plan: plan,
				})
			}
		}
	case "ext-decomposition":
		add("plain", &core.BenchmarkPlanner{}, capacityInstance(cfg, cfg.Delta, 1), cfg.Capacities)
		add("coverage", &core.BenchmarkCoverage{}, capacityInstance(cfg, cfg.Delta, 1), cfg.Capacities)
		add("placed", &core.Algorithm2{}, capacityInstance(cfg, cfg.Delta, 1), cfg.Capacities)
	case "ext-fleet":
		for _, strat := range []multi.Strategy{multi.StrategyKMeans, multi.StrategySweep} {
			for _, size := range []int{1, 2, 3, 4} {
				for ni, net := range nets {
					in := &core.Instance{Net: net, Model: cfg.Model, Delta: units.Meters(cfg.Delta), K: 2}
					fp, err := multi.PlanFleet(in, multi.Options{
						Fleet: size, Strategy: strat, Seed: cfg.Seed,
					})
					if err != nil {
						t.Fatalf("%s/%v size=%d net=%d: %v", fig, strat, size, ni, err)
					}
					for u, plan := range fp.PerUAV {
						cells = append(cells, parityCell{
							label: fmt.Sprintf("%s/%v size=%d net=%d uav=%d", fig, strat, size, ni, u),
							in:    in, plan: plan,
						})
					}
				}
			}
		}
	case "ext-robustness":
		// The driver plans on a derated budget, then flies with the full
		// battery; the fault-free parity claim applies to that execution.
		for _, margin := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
			for ni, net := range nets {
				in := &core.Instance{
					Net:   net,
					Model: cfg.Model.WithCapacity(units.Scale(cfg.Model.Capacity, 1-margin)),
					Delta: units.Meters(cfg.Delta),
					K:     2,
				}
				plan, err := (&core.Algorithm3{}).Plan(in)
				if err != nil {
					t.Fatalf("%s margin=%v net=%d: %v", fig, margin, ni, err)
				}
				exec := &core.Instance{Net: net, Model: cfg.Model, Delta: units.Meters(cfg.Delta), K: 2}
				cells = append(cells, parityCell{
					label: fmt.Sprintf("%s margin=%v net=%d", fig, margin, ni),
					in:    exec, plan: plan,
				})
			}
		}
	default:
		t.Fatalf("no parity cells defined for figure %q", fig)
	}
	return cells
}

// TestAdaptiveRunMatchesRunOnFigureDrivers: with faults disabled and no
// noise, the adaptive executor reproduces the reference simulator's
// telemetry and volumes bit-for-bit on every execution cell of all seven
// figure drivers.
func TestAdaptiveRunMatchesRunOnFigureDrivers(t *testing.T) {
	cfg := Tiny()
	nets, err := cfg.networks()
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range slices.Sorted(maps.Keys(Figures)) {
		t.Run(fig, func(t *testing.T) {
			for _, cell := range figureParityCells(t, fig, cfg, nets) {
				opts := simulate.Options{
					RecordEvents: true,
					Altitude:     cell.in.Altitude,
					Radio:        cell.in.Radio,
				}
				want := simulate.Run(cell.in.Net, cell.in.Model, cell.plan, opts)
				got := simulate.AdaptiveRun(cell.in, cell.plan, simulate.AdaptiveOptions{Options: opts})
				if !want.Completed {
					t.Fatalf("%s: reference mission aborted: %s", cell.label, want.AbortReason)
				}
				if got.Replans != 0 || got.Diverted {
					t.Fatalf("%s: fault-free adaptive execution replanned/diverted", cell.label)
				}
				if !reflect.DeepEqual(got.Result, want) {
					t.Errorf("%s: adaptive result diverges from Run:\n got %+v\nwant %+v",
						cell.label, got.Result, want)
				}
			}
		})
	}
}
