package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// TimerPlan is the obs timer under which runSweep records every planner
// invocation's wall time when Config.Metrics is on.
const TimerPlan = "experiments.plan"

// BenchSchema identifies the BENCH_*.json format version. Bump it when a
// field changes meaning; perf-trajectory tooling compares files only
// within one schema version.
const BenchSchema = "uavdc-bench/1"

// BenchFigure is one figure driver's measurement in a bench run.
type BenchFigure struct {
	// Figure is the driver id, e.g. "fig3".
	Figure string `json:"figure"`
	// WallSeconds is the driver's total wall-clock time: planning,
	// validation, and simulation for every (series, x, instance) cell.
	WallSeconds float64 `json:"wall_seconds"`
	// PlanSeconds is the summed planner-only wall time (the obs
	// "experiments.plan" timer), i.e. WallSeconds minus generation,
	// validation, and simulation overhead.
	PlanSeconds float64 `json:"plan_seconds"`
	// PlanCalls is the number of planner invocations.
	PlanCalls int64 `json:"plan_calls"`
	// VolumeMB maps each series to its collected volume summed over the
	// sweep's points (mean over instances at each point). A perf PR that
	// changes any of these numbers changed planner behaviour, not just
	// speed.
	VolumeMB map[string]float64 `json:"volume_mb"`
	// Counters is the obs counter totals summed over every series and
	// point of the figure. Deterministic for a fixed configuration.
	Counters map[string]int64 `json:"counters"`
}

// Bench is the on-disk BENCH_*.json document: the perf baseline one repo
// state leaves behind for later states to diff against.
type Bench struct {
	Schema    string        `json:"schema"`
	Preset    string        `json:"preset"`
	Instances int           `json:"instances"`
	Seed      uint64        `json:"seed"`
	Workers   int           `json:"workers"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Figures   []BenchFigure `json:"figures"`
}

// RunBench executes the named figure drivers with instrumentation on and
// returns the perf baseline: per-figure wall clock, planner-only time,
// counter totals, and collected volumes. preset is recorded verbatim for
// provenance; cfg should be the matching configuration.
func RunBench(preset string, cfg Config, figures []string) (*Bench, error) {
	cfg.Metrics = true
	b := &Bench{
		Schema:    BenchSchema,
		Preset:    preset,
		Instances: cfg.Instances,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, name := range figures {
		start := time.Now()
		tab, err := Run(name, cfg)
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("experiments: bench %s: %w", name, err)
		}
		fig := BenchFigure{
			Figure:      name,
			WallSeconds: wall,
			VolumeMB:    map[string]float64{},
			Counters:    map[string]int64{},
		}
		for _, s := range tab.Series {
			for _, p := range s.Points {
				fig.VolumeMB[s.Name] += p.Volume
				for cname, n := range p.Counters {
					fig.Counters[cname] += n
				}
			}
		}
		fig.PlanSeconds, fig.PlanCalls = planTimerTotals(tab)
		b.Figures = append(b.Figures, fig)
	}
	return b, nil
}

// planTimerTotals sums the per-point plan timer that runSweep folds into
// the counter map via snapshotting; the timer itself lives outside
// Point.Counters, so it is re-derived here from the runtime panel: mean
// runtime × N per point.
func planTimerTotals(tab *Table) (seconds float64, calls int64) {
	for _, s := range tab.Series {
		for _, p := range s.Points {
			seconds += p.Runtime * float64(p.N)
			calls += int64(p.N)
		}
	}
	return seconds, calls
}

// WriteJSON writes the bench document as indented JSON with a trailing
// newline. Map keys are emitted sorted (encoding/json), so two runs of the
// same configuration differ only in the timing fields.
func (b *Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBench parses a BENCH_*.json document and checks its schema tag.
func ReadBench(r io.Reader) (*Bench, error) {
	var b Bench
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: parsing bench file: %w", err)
	}
	if b.Schema != BenchSchema {
		return nil, fmt.Errorf("experiments: bench schema %q, want %q", b.Schema, BenchSchema)
	}
	return &b, nil
}
