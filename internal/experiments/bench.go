package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"uavdc/internal/core"
	"uavdc/internal/faults"
	"uavdc/internal/simulate"
	"uavdc/internal/units"
	"uavdc/internal/wire"
)

// TimerPlan is the obs timer under which runSweep records every planner
// invocation's wall time when Config.Metrics is on.
const TimerPlan = "experiments.plan"

// BenchSchema identifies the BENCH_*.json format version. Bump it when a
// field changes meaning; perf-trajectory tooling compares files only
// within one schema version.
const BenchSchema = wire.Bench

// BenchFigure is one figure driver's measurement in a bench run.
type BenchFigure struct {
	// Figure is the driver id, e.g. "fig3".
	Figure string `json:"figure"`
	// WallSeconds is the driver's total wall-clock time: planning,
	// validation, and simulation for every (series, x, instance) cell.
	WallSeconds float64 `json:"wall_seconds"`
	// PlanSeconds is the summed planner-only wall time (the obs
	// "experiments.plan" timer), i.e. WallSeconds minus generation,
	// validation, and simulation overhead.
	PlanSeconds float64 `json:"plan_seconds"`
	// PlanCalls is the number of planner invocations.
	PlanCalls int64 `json:"plan_calls"`
	// VolumeMB maps each series to its collected volume summed over the
	// sweep's points (mean over instances at each point). A perf PR that
	// changes any of these numbers changed planner behaviour, not just
	// speed.
	VolumeMB map[string]float64 `json:"volume_mb"`
	// Counters is the obs counter totals summed over every series and
	// point of the figure. Deterministic for a fixed configuration.
	Counters map[string]int64 `json:"counters"`
}

// BenchFaultScenario is one planner's adaptive-execution column: every
// preset network is planned fault-free, then flown by simulate.AdaptiveRun
// under the recorded fault schedule, and the row reports how much of the
// promised volume survived. All fields are deterministic for a fixed
// preset at any Workers setting.
type BenchFaultScenario struct {
	// Planner is the planner id ("algorithm3", ...).
	Planner string `json:"planner"`
	// FaultSpec is the canonical schedule the missions flew under.
	FaultSpec string `json:"fault_spec"`
	// PlannedMB / RetainedMB sum the fault-free promise and the adaptive
	// execution's actual collection over the preset's networks.
	PlannedMB  float64 `json:"planned_mb"`
	RetainedMB float64 `json:"retained_mb"`
	// RetainedFrac is RetainedMB/PlannedMB — the volume retained under
	// faults.
	RetainedFrac float64 `json:"retained_frac"`
	// Replans, FaultsApplied, StopsSkipped sum the executor's bookkeeping
	// over the networks.
	Replans       int64 `json:"replans"`
	FaultsApplied int64 `json:"faults_applied"`
	StopsSkipped  int64 `json:"stops_skipped"`
}

// BenchSpeedupRow is one figure's fast-vs-reference measurement in the
// speedup panel: the same driver run twice, once on the retained
// reference scan path and once on the spatial-index fast path, with the
// deterministic panels cross-checked for bit-equality. Timing fields are
// machine noise; the evals columns and BitIdentical are deterministic.
type BenchSpeedupRow struct {
	// Figure is the driver id, e.g. "fig4".
	Figure string `json:"figure"`
	// Preset names the configuration the pair ran under — the speedup
	// panel may use a larger preset (e.g. "full") than the document's
	// main figure panels.
	Preset string `json:"preset"`
	// ReferenceSeconds / FastSeconds are the planner-only wall times
	// (summed experiments.plan timer) of the two runs.
	ReferenceSeconds float64 `json:"reference_seconds"`
	FastSeconds      float64 `json:"fast_seconds"`
	// Speedup is ReferenceSeconds / FastSeconds.
	Speedup float64 `json:"speedup"`
	// ReferenceEvals / FastEvals are the core.candidate_evals totals of
	// the two runs; SkippedEvals is the fast run's
	// core.scan_skipped_drained total. The fast-path accounting oracle is
	// FastEvals + SkippedEvals == ReferenceEvals.
	ReferenceEvals int64 `json:"reference_evals"`
	FastEvals      int64 `json:"fast_evals"`
	SkippedEvals   int64 `json:"skipped_evals"`
	// BitIdentical reports whether the two runs' deterministic panels
	// matched exactly: per-series volumes, plan calls, and every counter
	// other than the scan work ledger (candidate_evals,
	// residual_recomputes, scan_skipped_drained).
	BitIdentical bool `json:"bit_identical"`
}

// speedupWorkCounters are the scan work ledger: the only counters allowed
// to differ between a reference and a fast run of the same configuration.
var speedupWorkCounters = map[string]bool{
	core.CounterCandidateEvals:     true,
	core.CounterResidualRecomputes: true,
	core.CounterScanSkippedDrained: true,
}

// Bench is the on-disk BENCH_*.json document: the perf baseline one repo
// state leaves behind for later states to diff against.
type Bench struct {
	Schema    string        `json:"schema"`
	Preset    string        `json:"preset"`
	Instances int           `json:"instances"`
	Seed      uint64        `json:"seed"`
	Workers   int           `json:"workers"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Figures   []BenchFigure `json:"figures"`
	// FaultScenarios is the adaptive-execution panel (uavbench -faults);
	// absent in documents written before it existed, so the schema tag is
	// unchanged.
	FaultScenarios []BenchFaultScenario `json:"fault_scenarios,omitempty"`
	// Speedup is the fast-vs-reference panel (uavbench -speedup); absent
	// in documents written before it existed — an additive field, so the
	// schema tag is unchanged.
	Speedup []BenchSpeedupRow `json:"speedup,omitempty"`
	// Serve is the serving-throughput panel (uavbench -serve); additive
	// like the panels above, so the schema tag is unchanged.
	Serve *BenchServe `json:"serve,omitempty"`
}

// RunBench executes the named figure drivers with instrumentation on and
// returns the perf baseline: per-figure wall clock, planner-only time,
// counter totals, and collected volumes. preset is recorded verbatim for
// provenance; cfg should be the matching configuration.
func RunBench(preset string, cfg Config, figures []string) (*Bench, error) {
	cfg.Metrics = true
	b := &Bench{
		Schema:    BenchSchema,
		Preset:    preset,
		Instances: cfg.Instances,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, name := range figures {
		start := time.Now() //uavdc:allow nodeterminism bench wall-clock panel; documented non-deterministic in EXPERIMENTS.md
		tab, err := Run(name, cfg)
		wall := time.Since(start).Seconds() //uavdc:allow nodeterminism bench wall-clock panel; documented non-deterministic in EXPERIMENTS.md
		if err != nil {
			return nil, fmt.Errorf("experiments: bench %s: %w", name, err)
		}
		fig := BenchFigure{
			Figure:      name,
			WallSeconds: wall,
			VolumeMB:    map[string]float64{},
			Counters:    map[string]int64{},
		}
		for _, s := range tab.Series {
			for _, p := range s.Points {
				fig.VolumeMB[s.Name] += p.Volume
				for cname, n := range p.Counters {
					fig.Counters[cname] += n
				}
			}
		}
		fig.PlanSeconds, fig.PlanCalls = planTimerTotals(tab)
		b.Figures = append(b.Figures, fig)
	}
	return b, nil
}

// planTimerTotals sums the per-point plan timer that runSweep folds into
// the counter map via snapshotting; the timer itself lives outside
// Point.Counters, so it is re-derived here from the runtime panel: mean
// runtime × N per point.
func planTimerTotals(tab *Table) (seconds float64, calls int64) {
	for _, s := range tab.Series {
		for _, p := range s.Points {
			seconds += p.Runtime * float64(p.N)
			calls += int64(p.N)
		}
	}
	return seconds, calls
}

// BenchSpeedup runs each named figure driver twice under the given
// configuration — once with Config.Reference set (the retained full-scan
// path) and once on the default fast path — and returns one row per
// figure: both planner-only wall times, the candidate-evaluation ledger,
// and whether the deterministic panels matched bit-for-bit. A row with
// BitIdentical == false means the fast path changed behaviour, not just
// speed, and the accompanying differential tests should be failing too.
func BenchSpeedup(preset string, cfg Config, figures []string) ([]BenchSpeedupRow, error) {
	cfg.Metrics = true
	measure := func(name string, reference bool) (seconds float64, volumes map[string]float64, calls int64, counters map[string]int64, err error) {
		c := cfg
		c.Reference = reference
		tab, err := Run(name, c)
		if err != nil {
			return 0, nil, 0, nil, fmt.Errorf("experiments: speedup %s (reference=%v): %w", name, reference, err)
		}
		volumes = map[string]float64{}
		counters = map[string]int64{}
		for _, s := range tab.Series {
			for _, p := range s.Points {
				volumes[s.Name] += p.Volume
				for cname, n := range p.Counters {
					counters[cname] += n
				}
			}
		}
		seconds, calls = planTimerTotals(tab)
		return seconds, volumes, calls, counters, nil
	}
	rows := make([]BenchSpeedupRow, 0, len(figures))
	for _, name := range figures {
		refSec, refVols, refCalls, refCounters, err := measure(name, true)
		if err != nil {
			return nil, err
		}
		fastSec, fastVols, fastCalls, fastCounters, err := measure(name, false)
		if err != nil {
			return nil, err
		}
		row := BenchSpeedupRow{
			Figure:           name,
			Preset:           preset,
			ReferenceSeconds: refSec,
			FastSeconds:      fastSec,
			ReferenceEvals:   refCounters[core.CounterCandidateEvals],
			FastEvals:        fastCounters[core.CounterCandidateEvals],
			SkippedEvals:     fastCounters[core.CounterScanSkippedDrained],
		}
		if fastSec > 0 {
			row.Speedup = refSec / fastSec
		}
		row.BitIdentical = speedupPanelsEqual(refVols, fastVols, refCalls, fastCalls, refCounters, fastCounters)
		rows = append(rows, row)
	}
	return rows, nil
}

// speedupPanelsEqual compares the deterministic panels of a reference and
// a fast run: volumes and plan calls exactly, counters exactly except the
// scan work ledger.
func speedupPanelsEqual(refVols, fastVols map[string]float64, refCalls, fastCalls int64, refCounters, fastCounters map[string]int64) bool {
	if refCalls != fastCalls || len(refVols) != len(fastVols) {
		return false
	}
	for series, want := range refVols {
		got, ok := fastVols[series]
		if !ok || got != want { // exact compare: bit-identity is the contract being verified
			return false
		}
	}
	names := map[string]bool{}
	for cname := range refCounters {
		names[cname] = true
	}
	for cname := range fastCounters {
		names[cname] = true
	}
	for cname := range names {
		if speedupWorkCounters[cname] {
			continue
		}
		if refCounters[cname] != fastCounters[cname] {
			return false
		}
	}
	return true
}

// BenchFaultScenarios computes the adaptive-execution panel: each planner
// plans every preset network fault-free at the preset's nominal capacity,
// the adaptive executor flies each plan under the given schedule, and the
// per-planner row aggregates promised vs retained volume. Everything here
// is deterministic — no timing fields — so rows diff cleanly across repo
// states.
func BenchFaultScenarios(cfg Config, spec string) ([]BenchFaultScenario, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	sched, err := faults.Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench fault spec: %w", err)
	}
	nets, err := cfg.networks()
	if err != nil {
		return nil, err
	}
	k := 2
	if len(cfg.Ks) > 0 {
		k = cfg.Ks[0]
	}
	planners := []core.Planner{
		&core.Algorithm1{},
		&core.Algorithm2{Workers: cfg.Workers},
		&core.Algorithm3{Workers: cfg.Workers},
		&core.BenchmarkPlanner{},
	}
	rows := make([]BenchFaultScenario, 0, len(planners))
	for _, pl := range planners {
		row := BenchFaultScenario{Planner: pl.Name(), FaultSpec: sched.String()}
		for ni, net := range nets {
			in := &core.Instance{Net: net, Model: cfg.Model, Delta: units.Meters(cfg.Delta), K: k}
			plan, err := pl.Plan(in)
			if err != nil {
				return nil, fmt.Errorf("experiments: bench faults %s net %d: %w", pl.Name(), ni, err)
			}
			res := simulate.AdaptiveRun(in, plan, simulate.AdaptiveOptions{
				Faults:  sched,
				Workers: cfg.Workers,
			})
			row.PlannedMB += plan.Collected()
			row.RetainedMB += res.Collected
			row.Replans += int64(res.Replans)
			row.FaultsApplied += int64(res.FaultsApplied)
			row.StopsSkipped += int64(res.StopsSkipped)
		}
		if row.PlannedMB > 0 {
			row.RetainedFrac = row.RetainedMB / row.PlannedMB
		} else {
			row.RetainedFrac = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteJSON writes the bench document as indented JSON with a trailing
// newline. Map keys are emitted sorted (encoding/json), so two runs of the
// same configuration differ only in the timing fields.
func (b *Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBench parses a BENCH_*.json document and checks its schema tag.
func ReadBench(r io.Reader) (*Bench, error) {
	var b Bench
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: parsing bench file: %w", err)
	}
	if b.Schema != BenchSchema {
		return nil, fmt.Errorf("experiments: bench schema %q, want %q", b.Schema, BenchSchema)
	}
	return &b, nil
}
