package experiments

import (
	"encoding/json"
	"maps"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// loadBench reads a BENCH_*.json baseline from the repo root.
func loadBench(t *testing.T, name string) *Bench {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	var b Bench
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return &b
}

// TestBenchPanelsParity pins the current baseline (BENCH_PR7.json,
// regenerated when the serving panel landed) against the previous one
// (BENCH_PR6.json). Both baselines run the same fast planning path, so
// this PR's contract is strict: every deterministic field of the prior
// panels — figure volumes, plan calls, all behaviour and work counters,
// the fault-scenario panel, and the speedup panel's eval ledger — is
// bit-identical; serving is a new layer above the planner and must not
// perturb it. The new serve panel must be present and internally
// consistent: dispositions sum to the request count, plans equal
// misses, and every served body matched a direct plan. Timing fields
// are machine noise and not compared. `make ci` runs this as the
// benchparity step.
func TestBenchPanelsParity(t *testing.T) {
	prev := loadBench(t, "BENCH_PR6.json")
	cur := loadBench(t, "BENCH_PR7.json")
	if len(cur.Figures) != len(prev.Figures) {
		t.Fatalf("figure count %d, baseline %d", len(cur.Figures), len(prev.Figures))
	}
	for i, pf := range prev.Figures {
		cf := cur.Figures[i]
		if cf.Figure != pf.Figure {
			t.Fatalf("figure[%d] = %s, baseline %s", i, cf.Figure, pf.Figure)
		}
		if cf.PlanCalls != pf.PlanCalls {
			t.Errorf("%s: plan_calls %d, baseline %d", cf.Figure, cf.PlanCalls, pf.PlanCalls)
		}
		if len(cf.VolumeMB) != len(pf.VolumeMB) {
			t.Errorf("%s: volume panel has %d series, baseline %d", cf.Figure, len(cf.VolumeMB), len(pf.VolumeMB))
		}
		for _, series := range slices.Sorted(maps.Keys(pf.VolumeMB)) {
			want := pf.VolumeMB[series]
			if got, ok := cf.VolumeMB[series]; !ok || got != want {
				t.Errorf("%s/%s: volume_mb %v, baseline %v", cf.Figure, series, got, want)
			}
		}
		// Same planner, same work: the whole counter map matches exactly,
		// no additions, no deletions.
		for _, cname := range slices.Sorted(maps.Keys(pf.Counters)) {
			if got, ok := cf.Counters[cname]; !ok || got != pf.Counters[cname] {
				t.Errorf("%s/%s: counter %d, baseline %d", cf.Figure, cname, got, pf.Counters[cname])
			}
		}
		for _, cname := range slices.Sorted(maps.Keys(cf.Counters)) {
			if _, ok := pf.Counters[cname]; !ok {
				t.Errorf("%s: unexpected new counter %s", cf.Figure, cname)
			}
		}
	}
	if len(cur.FaultScenarios) != len(prev.FaultScenarios) {
		t.Fatalf("fault panel has %d rows, baseline %d", len(cur.FaultScenarios), len(prev.FaultScenarios))
	}
	for i, pr := range prev.FaultScenarios {
		cr := cur.FaultScenarios[i]
		if cr.Planner != pr.Planner || cr.FaultSpec != pr.FaultSpec {
			t.Errorf("fault row %d: %s/%s, baseline %s/%s", i, cr.Planner, cr.FaultSpec, pr.Planner, pr.FaultSpec)
			continue
		}
		if cr.PlannedMB != pr.PlannedMB || cr.RetainedMB != pr.RetainedMB || cr.RetainedFrac != pr.RetainedFrac {
			t.Errorf("%s: volumes (%v, %v, %v), baseline (%v, %v, %v)", cr.Planner,
				cr.PlannedMB, cr.RetainedMB, cr.RetainedFrac, pr.PlannedMB, pr.RetainedMB, pr.RetainedFrac)
		}
		if cr.Replans != pr.Replans || cr.FaultsApplied != pr.FaultsApplied || cr.StopsSkipped != pr.StopsSkipped {
			t.Errorf("%s: bookkeeping (%d, %d, %d), baseline (%d, %d, %d)", cr.Planner,
				cr.Replans, cr.FaultsApplied, cr.StopsSkipped, pr.Replans, pr.FaultsApplied, pr.StopsSkipped)
		}
	}
	// The speedup panel's deterministic columns carry over bit-identically.
	if len(cur.Speedup) != len(prev.Speedup) {
		t.Fatalf("speedup panel has %d rows, baseline %d", len(cur.Speedup), len(prev.Speedup))
	}
	for i, pr := range prev.Speedup {
		cr := cur.Speedup[i]
		if cr.Figure != pr.Figure {
			t.Errorf("speedup row %d: %s, baseline %s", i, cr.Figure, pr.Figure)
			continue
		}
		if !cr.BitIdentical {
			t.Errorf("speedup/%s: deterministic panels diverged between reference and fast", cr.Figure)
		}
		if cr.ReferenceEvals != pr.ReferenceEvals || cr.FastEvals != pr.FastEvals || cr.SkippedEvals != pr.SkippedEvals {
			t.Errorf("speedup/%s: eval ledger (%d, %d, %d), baseline (%d, %d, %d)", cr.Figure,
				cr.ReferenceEvals, cr.FastEvals, cr.SkippedEvals, pr.ReferenceEvals, pr.FastEvals, pr.SkippedEvals)
		}
		if cr.FastEvals+cr.SkippedEvals != cr.ReferenceEvals {
			t.Errorf("speedup/%s: fast evals %d + skipped %d != reference evals %d",
				cr.Figure, cr.FastEvals, cr.SkippedEvals, cr.ReferenceEvals)
		}
	}
	// The PR7 baseline must carry the new serving panel, internally
	// consistent and bit-identical to direct planning.
	sv := cur.Serve
	if sv == nil {
		t.Fatal("BENCH_PR7.json has no serve panel")
	}
	if !sv.BitIdentical {
		t.Error("serve panel: served bodies diverged from direct plans")
	}
	if got := sv.Hits + sv.Misses + sv.Coalesced + sv.Rejected; got != int64(sv.Requests) {
		t.Errorf("serve panel: dispositions sum to %d, want %d", got, sv.Requests)
	}
	if sv.Plans != sv.Misses || sv.Misses != int64(sv.Distinct) {
		t.Errorf("serve panel: plans=%d misses=%d, want both %d (one cold plan per distinct instance)",
			sv.Plans, sv.Misses, sv.Distinct)
	}
	if sv.Rejected != 0 {
		t.Errorf("serve panel: %d backpressure rejections in the baseline run", sv.Rejected)
	}
}
