package experiments

import (
	"encoding/json"
	"maps"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// loadBench reads a BENCH_*.json baseline from the repo root.
func loadBench(t *testing.T, name string) *Bench {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	var b Bench
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return &b
}

// TestBenchPanelsParity asserts that the deterministic panels of the
// current baseline (BENCH_PR5.json, regenerated after the internal/units
// adoption) are bit-identical to the previous one (BENCH_PR4.json):
// per-figure collected volumes, counter totals and plan-call counts, and
// the whole fault-scenario panel. Defined float64 types change no
// arithmetic, so any drift here means the refactor changed behaviour,
// not just types. Timing fields (wall/plan seconds) are machine noise
// and deliberately not compared. `make ci` runs this as the benchparity
// step.
func TestBenchPanelsParity(t *testing.T) {
	prev := loadBench(t, "BENCH_PR4.json")
	cur := loadBench(t, "BENCH_PR5.json")
	if len(cur.Figures) != len(prev.Figures) {
		t.Fatalf("figure count %d, baseline %d", len(cur.Figures), len(prev.Figures))
	}
	for i, pf := range prev.Figures {
		cf := cur.Figures[i]
		if cf.Figure != pf.Figure {
			t.Fatalf("figure[%d] = %s, baseline %s", i, cf.Figure, pf.Figure)
		}
		if cf.PlanCalls != pf.PlanCalls {
			t.Errorf("%s: plan_calls %d, baseline %d", cf.Figure, cf.PlanCalls, pf.PlanCalls)
		}
		if len(cf.VolumeMB) != len(pf.VolumeMB) {
			t.Errorf("%s: volume panel has %d series, baseline %d", cf.Figure, len(cf.VolumeMB), len(pf.VolumeMB))
		}
		for _, series := range slices.Sorted(maps.Keys(pf.VolumeMB)) {
			want := pf.VolumeMB[series]
			if got, ok := cf.VolumeMB[series]; !ok || got != want {
				t.Errorf("%s/%s: volume_mb %v, baseline %v", cf.Figure, series, got, want)
			}
		}
		if len(cf.Counters) != len(pf.Counters) {
			t.Errorf("%s: counter panel has %d entries, baseline %d", cf.Figure, len(cf.Counters), len(pf.Counters))
		}
		for _, cname := range slices.Sorted(maps.Keys(pf.Counters)) {
			want := pf.Counters[cname]
			if got, ok := cf.Counters[cname]; !ok || got != want {
				t.Errorf("%s/%s: counter %d, baseline %d", cf.Figure, cname, got, want)
			}
		}
	}
	if len(cur.FaultScenarios) != len(prev.FaultScenarios) {
		t.Fatalf("fault panel has %d rows, baseline %d", len(cur.FaultScenarios), len(prev.FaultScenarios))
	}
	for i, pr := range prev.FaultScenarios {
		cr := cur.FaultScenarios[i]
		if cr.Planner != pr.Planner || cr.FaultSpec != pr.FaultSpec {
			t.Errorf("fault row %d: %s/%s, baseline %s/%s", i, cr.Planner, cr.FaultSpec, pr.Planner, pr.FaultSpec)
			continue
		}
		if cr.PlannedMB != pr.PlannedMB || cr.RetainedMB != pr.RetainedMB || cr.RetainedFrac != pr.RetainedFrac {
			t.Errorf("%s: volumes (%v, %v, %v), baseline (%v, %v, %v)", cr.Planner,
				cr.PlannedMB, cr.RetainedMB, cr.RetainedFrac, pr.PlannedMB, pr.RetainedMB, pr.RetainedFrac)
		}
		if cr.Replans != pr.Replans || cr.FaultsApplied != pr.FaultsApplied || cr.StopsSkipped != pr.StopsSkipped {
			t.Errorf("%s: bookkeeping (%d, %d, %d), baseline (%d, %d, %d)", cr.Planner,
				cr.Replans, cr.FaultsApplied, cr.StopsSkipped, pr.Replans, pr.FaultsApplied, pr.StopsSkipped)
		}
	}
}
