package experiments

import (
	"encoding/json"
	"maps"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"uavdc/internal/core"
)

// loadBench reads a BENCH_*.json baseline from the repo root.
func loadBench(t *testing.T, name string) *Bench {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	var b Bench
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return &b
}

// TestBenchPanelsParity pins the current baseline (BENCH_PR6.json,
// regenerated after the fast-path candidate generation landed) against the
// previous one (BENCH_PR5.json) under the fast-path parity contract:
//
//   - per-figure collected volumes, plan-call counts, and the whole
//     fault-scenario panel are bit-identical — the fast path may do less
//     work but must not change behaviour;
//   - behaviour counters (accepted/upgraded stops, pruning, local-search
//     moves, solver runs, ...) are bit-identical;
//   - the scan work ledger shrinks: core.candidate_evals and
//     core.residual_recomputes must not exceed the baseline, and the new
//     core.scan_skipped_drained counter closes the books exactly —
//     fast evals + skipped == baseline evals, per figure.
//
// Timing fields are machine noise and not compared. `make ci` runs this as
// the benchparity step.
func TestBenchPanelsParity(t *testing.T) {
	prev := loadBench(t, "BENCH_PR5.json")
	cur := loadBench(t, "BENCH_PR6.json")
	if len(cur.Figures) != len(prev.Figures) {
		t.Fatalf("figure count %d, baseline %d", len(cur.Figures), len(prev.Figures))
	}
	for i, pf := range prev.Figures {
		cf := cur.Figures[i]
		if cf.Figure != pf.Figure {
			t.Fatalf("figure[%d] = %s, baseline %s", i, cf.Figure, pf.Figure)
		}
		if cf.PlanCalls != pf.PlanCalls {
			t.Errorf("%s: plan_calls %d, baseline %d", cf.Figure, cf.PlanCalls, pf.PlanCalls)
		}
		if len(cf.VolumeMB) != len(pf.VolumeMB) {
			t.Errorf("%s: volume panel has %d series, baseline %d", cf.Figure, len(cf.VolumeMB), len(pf.VolumeMB))
		}
		for _, series := range slices.Sorted(maps.Keys(pf.VolumeMB)) {
			want := pf.VolumeMB[series]
			if got, ok := cf.VolumeMB[series]; !ok || got != want {
				t.Errorf("%s/%s: volume_mb %v, baseline %v", cf.Figure, series, got, want)
			}
		}
		// The work ledger may shrink; everything else must hold exactly.
		// New counters (the skip ledger itself) are allowed to appear.
		for _, cname := range slices.Sorted(maps.Keys(pf.Counters)) {
			want := pf.Counters[cname]
			got, ok := cf.Counters[cname]
			switch {
			case cname == core.CounterCandidateEvals || cname == core.CounterResidualRecomputes:
				if !ok || got > want {
					t.Errorf("%s/%s: work counter %d, baseline %d (must not grow)", cf.Figure, cname, got, want)
				}
			default:
				if !ok || got != want {
					t.Errorf("%s/%s: counter %d, baseline %d", cf.Figure, cname, got, want)
				}
			}
		}
		for _, cname := range slices.Sorted(maps.Keys(cf.Counters)) {
			if _, ok := pf.Counters[cname]; !ok && cname != core.CounterScanSkippedDrained {
				t.Errorf("%s: unexpected new counter %s", cf.Figure, cname)
			}
		}
		// The skipped-evals reconciliation: every candidate the baseline
		// evaluated was either evaluated by the fast path or proven
		// zero-award and skipped.
		evals := cf.Counters[core.CounterCandidateEvals]
		skipped := cf.Counters[core.CounterScanSkippedDrained]
		if evals+skipped != pf.Counters[core.CounterCandidateEvals] {
			t.Errorf("%s: evals %d + skipped %d != baseline evals %d",
				cf.Figure, evals, skipped, pf.Counters[core.CounterCandidateEvals])
		}
	}
	if len(cur.FaultScenarios) != len(prev.FaultScenarios) {
		t.Fatalf("fault panel has %d rows, baseline %d", len(cur.FaultScenarios), len(prev.FaultScenarios))
	}
	for i, pr := range prev.FaultScenarios {
		cr := cur.FaultScenarios[i]
		if cr.Planner != pr.Planner || cr.FaultSpec != pr.FaultSpec {
			t.Errorf("fault row %d: %s/%s, baseline %s/%s", i, cr.Planner, cr.FaultSpec, pr.Planner, pr.FaultSpec)
			continue
		}
		if cr.PlannedMB != pr.PlannedMB || cr.RetainedMB != pr.RetainedMB || cr.RetainedFrac != pr.RetainedFrac {
			t.Errorf("%s: volumes (%v, %v, %v), baseline (%v, %v, %v)", cr.Planner,
				cr.PlannedMB, cr.RetainedMB, cr.RetainedFrac, pr.PlannedMB, pr.RetainedMB, pr.RetainedFrac)
		}
		if cr.Replans != pr.Replans || cr.FaultsApplied != pr.FaultsApplied || cr.StopsSkipped != pr.StopsSkipped {
			t.Errorf("%s: bookkeeping (%d, %d, %d), baseline (%d, %d, %d)", cr.Planner,
				cr.Replans, cr.FaultsApplied, cr.StopsSkipped, pr.Replans, pr.FaultsApplied, pr.StopsSkipped)
		}
	}
	// The PR6 baseline must carry a speedup panel with intact parity.
	if len(cur.Speedup) == 0 {
		t.Fatal("BENCH_PR6.json has no speedup panel")
	}
	for _, row := range cur.Speedup {
		if !row.BitIdentical {
			t.Errorf("speedup/%s: deterministic panels diverged between reference and fast", row.Figure)
		}
		if row.FastEvals+row.SkippedEvals != row.ReferenceEvals {
			t.Errorf("speedup/%s: fast evals %d + skipped %d != reference evals %d",
				row.Figure, row.FastEvals, row.SkippedEvals, row.ReferenceEvals)
		}
	}
}
