// Package experiments regenerates the paper's evaluation (Section VII):
// one driver per figure, each producing the same series the paper plots —
// collected data volume and planner running time as functions of the UAV
// energy capacity E (Figs. 3 and 5) or the grid resolution δ (Fig. 4),
// averaged over repeated random network instances.
//
// Absolute runtimes depend on the host machine and absolute volumes on the
// instance scale; what the drivers are built to reproduce is the paper's
// *shape*: who wins, by roughly what factor, and how each curve moves with
// its parameter. EXPERIMENTS.md records paper-vs-measured for every figure.
package experiments

import (
	"fmt"

	"uavdc/internal/energy"
	"uavdc/internal/sensornet"
	"uavdc/internal/trace"
)

// Config parameterises an experiment sweep.
type Config struct {
	// Gen generates the random networks (the paper: 500 sensors in
	// 1000×1000 m, D_v ~ U[100,1000] MB, B = 150 MB/s, R0 = 50 m).
	Gen sensornet.GenParams
	// Model is the UAV energy model; its Capacity is overridden by the
	// capacity sweeps.
	Model energy.Model
	// Instances is the number of random networks averaged per data point
	// (the paper uses 15).
	Instances int
	// Seed derives every instance deterministically.
	Seed uint64
	// Capacities is the E sweep for Figs. 3 and 5 (J).
	Capacities []float64
	// Deltas is the δ sweep for Fig. 4 (m).
	Deltas []float64
	// Delta is the fixed grid resolution for Figs. 3 and 5 (m).
	Delta float64
	// Ks lists the Algorithm 3 sojourn partitions plotted as separate
	// series in Figs. 4 and 5 (the paper shows K = 2 and K = 4).
	Ks []int
	// Validate re-checks every produced plan with core.ValidatePlan and
	// the flight simulator; any violation fails the sweep. Slows runs by
	// a few percent and is on in every preset.
	Validate bool
	// Workers fans the greedy planners' candidate scans across this many
	// goroutines (0/1 = serial). Plans are identical at any setting; only
	// wall time — and therefore the runtime panels — changes, so leave it
	// serial when reproducing Fig. 3(b)/4(b)/5(b).
	Workers int
	// Reference runs every planner on its retained reference scan path
	// (core's Algorithm{1,2,3}.Reference and friends) instead of the
	// spatial-index fast path. Plans, volumes, traces, and every counter
	// except the fast path's own skip ledger are bit-identical either way
	// — the fast-path parity tests hold the two modes to exactly that
	// contract — so the switch exists for differential testing and for
	// timing the speedup panel, not for changing results.
	Reference bool
	// Metrics attaches an obs.Registry to every planner run and stores
	// the per-point counter totals in each Point, enabling the figure
	// tables' instrumentation panel (uavexp -metrics) and the bench
	// harness. Counter totals are deterministic at any Workers setting;
	// recording never changes plans.
	Metrics bool
	// Trace, when non-nil, receives a flight-recorder span stream for the
	// whole sweep: one SpanSweepPoint per (series, x) data point and one
	// SpanSweepPlan per planner run, with the planners' internal phase
	// spans nested inside (uavexp -trace). Recording never changes plans
	// or counters, and the stream strips to byte-identical output at any
	// Workers setting. Validation simulations are not traced — a sweep
	// trace records planner phases, not mission telemetry.
	Trace *trace.Buffer
}

// Paper returns the full-scale configuration of Section VII-A. Running it
// takes CPU-hours at δ = 5 m (the authors report 54 minutes for a single
// Algorithm 3 instance at K = 4); use Reduced for interactive work.
func Paper() Config {
	return Config{
		Gen:        sensornet.DefaultGenParams(),
		Model:      energy.Default(),
		Instances:  15,
		Seed:       2020,
		Capacities: []float64{3e5, 4.5e5, 6e5, 7.5e5, 9e5},
		Deltas:     []float64{5, 10, 15, 20, 25, 30},
		Delta:      10,
		Ks:         []int{2, 4},
		Validate:   true,
	}
}

// PaperTight returns the paper's full 500-sensor scale with the energy
// sweep shifted down to 0.5–3×10⁵ J. Rationale (EXPERIMENTS.md): this
// implementation's tours and sojourn accounting are efficient enough that
// at the paper's nominal 3–9×10⁵ J every planner collects the whole field
// and the curves saturate; the budget/demand regime in which the paper's
// reported collection fractions (≈ 25–55% of the field at the low end)
// occur is this sweep. All qualitative claims are evaluated here at the
// paper's own scale.
func PaperTight() Config {
	cfg := Paper()
	cfg.Model = cfg.Model.WithCapacity(1.5e5)
	cfg.Capacities = []float64{0.5e5, 1e5, 1.5e5, 2e5, 2.5e5, 3e5}
	return cfg
}

// Reduced returns a proportionally shrunk configuration (same sensor
// density, same data distribution, ~1/8 the region) whose sweeps finish in
// seconds while preserving every qualitative shape of the paper's figures.
// The capacity sweep spans the same "tight → almost enough" range relative
// to the instance's total demand as the paper's 3–9×10⁵ J does at full
// scale.
func Reduced() Config {
	gen := sensornet.DefaultGenParams()
	gen.NumSensors = 60
	gen.Side = 350
	return Config{
		Gen:        gen,
		Model:      energy.Default().WithCapacity(1.5e4),
		Instances:  5,
		Seed:       2020,
		Capacities: []float64{1e4, 1.5e4, 2e4, 2.5e4, 3e4},
		Deltas:     []float64{10, 15, 20, 25, 30},
		Delta:      15,
		Ks:         []int{2, 4},
		Validate:   true,
	}
}

// Full returns the paper-scale fast-path benchmark configuration: the
// full 500-sensor field at the paper's finest grid resolution δ = 5 m
// (M ≈ 40 000 candidate squares — the regime the spatial-index scan
// exists for), with a single network instance and one point per sweep so
// a run finishes in seconds rather than the CPU-hours a full Paper()
// sweep would take at this δ. The capacity sits in PaperTight's
// budget-constrained regime. This is the preset behind
// `uavbench -preset full` and the BENCH_PR6.json speedup panel.
func Full() Config {
	cfg := PaperTight()
	cfg.Instances = 1
	cfg.Capacities = []float64{1.5e5}
	cfg.Deltas = []float64{5}
	cfg.Delta = 5
	cfg.Ks = []int{2}
	return cfg
}

// Tiny returns the smallest meaningful configuration, for unit tests.
func Tiny() Config {
	gen := sensornet.DefaultGenParams()
	gen.NumSensors = 20
	gen.Side = 200
	return Config{
		Gen:        gen,
		Model:      energy.Default().WithCapacity(8e3),
		Instances:  2,
		Seed:       7,
		Capacities: []float64{5e3, 1e4},
		Deltas:     []float64{20, 40},
		Delta:      25,
		Ks:         []int{2},
		Validate:   true,
	}
}

// Check reports whether the configuration is well formed. (Named Check
// rather than Validate because Validate is the name of the plan-revalidation
// toggle field.)
func (c *Config) Check() error {
	if err := c.Gen.Validate(); err != nil {
		return err
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Instances < 1 {
		return fmt.Errorf("experiments: need at least one instance, got %d", c.Instances)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("experiments: fixed delta must be positive, got %v", c.Delta)
	}
	if len(c.Capacities) == 0 && len(c.Deltas) == 0 {
		return fmt.Errorf("experiments: nothing to sweep")
	}
	for _, e := range c.Capacities {
		if e < 0 {
			return fmt.Errorf("experiments: negative capacity %v", e)
		}
	}
	for _, d := range c.Deltas {
		if d <= 0 {
			return fmt.Errorf("experiments: non-positive delta %v", d)
		}
	}
	for _, k := range c.Ks {
		if k < 1 {
			return fmt.Errorf("experiments: K must be ≥ 1, got %d", k)
		}
	}
	return nil
}
