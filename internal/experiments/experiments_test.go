package experiments

import (
	"maps"
	"slices"
	"strings"
	"testing"
)

func TestConfigPresetsValidate(t *testing.T) {
	presets := map[string]Config{
		"paper": Paper(), "papertight": PaperTight(), "reduced": Reduced(), "tiny": Tiny(),
	}
	for _, name := range slices.Sorted(maps.Keys(presets)) {
		cfg := presets[name]
		if err := cfg.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := map[string]func(*Config){
		"no instances":  func(c *Config) { c.Instances = 0 },
		"bad delta":     func(c *Config) { c.Delta = 0 },
		"nothing swept": func(c *Config) { c.Capacities, c.Deltas = nil, nil },
		"neg capacity":  func(c *Config) { c.Capacities = []float64{-1} },
		"bad sweep δ":   func(c *Config) { c.Deltas = []float64{0} },
		"bad K":         func(c *Config) { c.Ks = []int{0} },
		"bad gen":       func(c *Config) { c.Gen.Side = 0 },
		"bad model":     func(c *Config) { c.Model.Speed = 0 },
	}
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		cfg := Tiny()
		cases[name](&cfg)
		if err := cfg.Check(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNetworksArePairedAcrossCalls(t *testing.T) {
	cfg := Tiny()
	a, err := cfg.networks()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.networks()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Sensors[0] != b[i].Sensors[0] {
			t.Fatal("instance pool not deterministic")
		}
	}
	if a[0].Sensors[0] == a[1].Sensors[0] {
		t.Error("distinct instances identical")
	}
}

func TestFig3Tiny(t *testing.T) {
	tab, err := Fig3(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Figure != "fig3" || len(tab.Series) != 2 {
		t.Fatalf("table shape: %s, %d series", tab.Figure, len(tab.Series))
	}
	alg1 := tab.SeriesByName("algorithm1")
	bench := tab.SeriesByName("benchmark")
	if alg1 == nil || bench == nil {
		t.Fatal("missing series")
	}
	if len(alg1.Points) != 2 {
		t.Fatalf("points: %d", len(alg1.Points))
	}
	// Shape: volumes grow (weakly) with capacity for both series.
	for _, s := range tab.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Volume < s.Points[i-1].Volume*0.95 {
				t.Errorf("%s volume dropped: %v → %v", s.Name, s.Points[i-1].Volume, s.Points[i].Volume)
			}
		}
	}
	// Shape: algorithm1 beats the benchmark at the tight budget.
	if alg1.Points[0].Volume <= bench.Points[0].Volume {
		t.Errorf("algorithm1 %v should beat benchmark %v at tight budget", alg1.Points[0].Volume, bench.Points[0].Volume)
	}
}

func TestFig4Tiny(t *testing.T) {
	tab, err := Fig4(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"algorithm2", "algorithm3-k2", "benchmark"}
	if len(tab.Series) != len(want) {
		t.Fatalf("series: %d", len(tab.Series))
	}
	for _, name := range want {
		if tab.SeriesByName(name) == nil {
			t.Fatalf("missing series %s", name)
		}
	}
	// Benchmark ignores δ: its volume must be flat across x.
	b := tab.SeriesByName("benchmark")
	for i := 1; i < len(b.Points); i++ {
		if b.Points[i].Volume != b.Points[0].Volume {
			t.Errorf("benchmark volume varies with δ: %v vs %v", b.Points[i].Volume, b.Points[0].Volume)
		}
	}
}

func TestFig5Tiny(t *testing.T) {
	tab, err := Fig5(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Figure != "fig5" {
		t.Fatal("wrong figure id")
	}
	a2 := tab.SeriesByName("algorithm2")
	if a2 == nil || len(a2.Points) != 2 {
		t.Fatal("algorithm2 series malformed")
	}
	if a2.Points[1].Volume < a2.Points[0].Volume*0.95 {
		t.Errorf("algorithm2 volume fell with more energy: %v → %v", a2.Points[0].Volume, a2.Points[1].Volume)
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nope", Tiny()); err == nil {
		t.Error("unknown figure accepted")
	}
	tab, err := Run("fig3", Tiny())
	if err != nil || tab.Figure != "fig3" {
		t.Errorf("dispatch failed: %v", err)
	}
}

func TestRenderAndCSV(t *testing.T) {
	tab, err := Fig3(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig3(a)", "fig3(b)", "algorithm1", "benchmark", "energy capacity"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var csvB strings.Builder
	if err := tab.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvB.String()), "\n")
	// header + 2 series × 2 points
	if len(lines) != 1+4 {
		t.Errorf("csv lines = %d:\n%s", len(lines), csvB.String())
	}
	if !strings.HasPrefix(lines[0], "figure,series,x,") {
		t.Errorf("csv header = %s", lines[0])
	}
	if tab.String() == "" {
		t.Error("String() empty")
	}
}

func TestSweepRejectsBadConfig(t *testing.T) {
	cfg := Tiny()
	cfg.Instances = 0
	if _, err := Fig3(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestWriteMarkdown(t *testing.T) {
	tab, err := Fig3(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### fig3(a)", "### fig3(b)", "| algorithm1 |", "|---|", "± "} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWorkersConfigMatchesSerial(t *testing.T) {
	serial := Tiny()
	par := Tiny()
	par.Workers = 4
	a, err := Fig5(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5(par)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for pi := range a.Series[si].Points {
			if a.Series[si].Points[pi].Volume != b.Series[si].Points[pi].Volume {
				t.Fatalf("series %s point %d: %v vs %v", a.Series[si].Name, pi,
					a.Series[si].Points[pi].Volume, b.Series[si].Points[pi].Volume)
			}
		}
	}
}
