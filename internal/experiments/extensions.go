package experiments

import (
	"fmt"
	"time"

	"uavdc/internal/core"
	"uavdc/internal/multi"
	"uavdc/internal/radio"
	"uavdc/internal/sensornet"
	"uavdc/internal/simulate"
	"uavdc/internal/stats"
	"uavdc/internal/units"
)

// ExtAltitude is an extension experiment the paper motivates but does not
// run: collected volume as the hovering altitude H grows, with the paper's
// constant-rate abstraction against the Shannon distance-dependent uplink.
// Altitude hurts twice — the effective coverage radius shrinks to
// sqrt(R²−H²) for both series, and under the Shannon model far sensors
// also upload slower — so the gap between the two series quantifies the
// paper's "negligible if H is low" claim.
func ExtAltitude(cfg Config) (*Table, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	altitudes := []float64{0, 10, 20, 30, 40}
	specs := []runSpec{
		{
			name:    "constant-B",
			planner: &core.Algorithm2{Reference: cfg.Reference},
			instance: func(net *sensornet.Network, x float64) *core.Instance {
				return &core.Instance{Net: net, Model: cfg.Model, Delta: units.Meters(cfg.Delta), K: 1, Altitude: units.Meters(x)}
			},
		},
		{
			name:    "shannon",
			planner: &core.Algorithm2{Reference: cfg.Reference},
			instance: func(net *sensornet.Network, x float64) *core.Instance {
				return &core.Instance{
					Net: net, Model: cfg.Model, Delta: units.Meters(cfg.Delta), K: 1, Altitude: units.Meters(x),
					Radio: radio.Shannon{RefRate: units.BitsPerSecond(net.Bandwidth), RefDist: 10, RefSNR: 100, PathLossExp: 2.7},
				}
			},
		},
	}
	series, err := runSweep(cfg, altitudes, specs)
	if err != nil {
		return nil, err
	}
	return &Table{
		Figure: "ext-altitude",
		Title:  "extension: collected volume vs hovering altitude, constant vs Shannon uplink",
		XLabel: "altitude",
		XUnit:  "m",
		Series: series,
	}, nil
}

// ExtDecomposition separates the framework's advantage over the paper's
// benchmark into its two ingredients, as a function of the energy budget:
// "plain" is the paper's benchmark (one sensor per stop), "coverage" adds
// only the simultaneous-collection framework (stops still glued to
// sensors), and "placed" (Algorithm 2) additionally frees the hovering
// positions onto the δ-grid. The gap plain→coverage is the framework's
// contribution; coverage→placed is the placement optimisation's.
func ExtDecomposition(cfg Config) (*Table, error) {
	specs := []runSpec{
		{name: "plain", planner: &core.BenchmarkPlanner{Reference: cfg.Reference}, instance: capacityInstance(cfg, cfg.Delta, 1)},
		{name: "coverage", planner: &core.BenchmarkCoverage{}, instance: capacityInstance(cfg, cfg.Delta, 1)},
		{name: "placed", planner: &core.Algorithm2{Reference: cfg.Reference}, instance: capacityInstance(cfg, cfg.Delta, 1)},
	}
	series, err := runSweep(cfg, cfg.Capacities, specs)
	if err != nil {
		return nil, err
	}
	return &Table{
		Figure: "ext-decomposition",
		Title:  "extension: framework vs placement contribution to the win over the benchmark",
		XLabel: "energy capacity",
		XUnit:  "J",
		Series: series,
	}, nil
}

// ExtFleet is an extension experiment: collected volume as the fleet size
// grows from 1 to 4 UAVs (one battery each), comparing the k-means and
// sweep partitioning strategies with Algorithm 3 routing each cluster.
func ExtFleet(cfg Config) (*Table, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	nets, err := cfg.networks()
	if err != nil {
		return nil, err
	}
	sizes := []float64{1, 2, 3, 4}
	strategies := []multi.Strategy{multi.StrategyKMeans, multi.StrategySweep}
	tab := &Table{
		Figure: "ext-fleet",
		Title:  "extension: collected volume vs fleet size, partitioning strategies",
		XLabel: "fleet size",
		XUnit:  "UAVs",
	}
	for _, strat := range strategies {
		s := Series{Name: "fleet-" + strat.String()}
		for _, size := range sizes {
			vols := make([]float64, 0, len(nets))
			times := make([]float64, 0, len(nets))
			for _, net := range nets {
				in := &core.Instance{Net: net, Model: cfg.Model, Delta: units.Meters(cfg.Delta), K: 2}
				start := time.Now() //uavdc:allow nodeterminism runtime panel (b) measures wall time; volumes stay deterministic
				fp, err := multi.PlanFleet(in, multi.Options{
					Fleet:    int(size),
					Strategy: strat,
					Seed:     cfg.Seed,
					Base:     &core.Algorithm3{Reference: cfg.Reference},
				})
				elapsed := time.Since(start).Seconds() //uavdc:allow nodeterminism runtime panel (b) measures wall time; volumes stay deterministic
				if err != nil {
					return nil, fmt.Errorf("experiments: fleet %v size %d: %w", strat, int(size), err)
				}
				if cfg.Validate {
					if err := fp.Validate(in); err != nil {
						return nil, fmt.Errorf("experiments: fleet %v size %d invalid: %w", strat, int(size), err)
					}
					for u, plan := range fp.PerUAV {
						res := simulate.Run(net, in.Model, plan, simulate.Options{})
						if !res.Completed {
							return nil, fmt.Errorf("experiments: fleet %v uav %d aborted: %s", strat, u, res.AbortReason)
						}
					}
				}
				vols = append(vols, fp.Collected())
				times = append(times, elapsed)
			}
			vs, ts := stats.Summarize(vols), stats.Summarize(times)
			s.Points = append(s.Points, Point{
				X: size, Volume: vs.Mean, VolumeCI: vs.CI95(),
				Runtime: ts.Mean, RuntimeCI: ts.CI95(), N: vs.N,
			})
		}
		tab.Series = append(tab.Series, s)
	}
	return tab, nil
}
