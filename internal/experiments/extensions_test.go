package experiments

import "testing"

func TestExtAltitudeTiny(t *testing.T) {
	tab, err := ExtAltitude(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Figure != "ext-altitude" || len(tab.Series) != 2 {
		t.Fatalf("shape: %s, %d series", tab.Figure, len(tab.Series))
	}
	cb := tab.SeriesByName("constant-B")
	sh := tab.SeriesByName("shannon")
	if cb == nil || sh == nil {
		t.Fatal("missing series")
	}
	// At every altitude the Shannon series cannot beat the constant-rate
	// abstraction: per-sensor rates are at most the calibration bandwidth.
	for i := range cb.Points {
		if sh.Points[i].Volume > cb.Points[i].Volume+1e-6 {
			t.Errorf("alt=%g: shannon %v beat constant %v", cb.Points[i].X, sh.Points[i].Volume, cb.Points[i].Volume)
		}
	}
	// Altitude degrades the Shannon series end to end.
	if sh.Points[len(sh.Points)-1].Volume >= sh.Points[0].Volume {
		t.Errorf("shannon volume did not fall with altitude: %v → %v",
			sh.Points[0].Volume, sh.Points[len(sh.Points)-1].Volume)
	}
}

func TestExtFleetTiny(t *testing.T) {
	tab, err := ExtFleet(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Figure != "ext-fleet" || len(tab.Series) != 2 {
		t.Fatalf("shape: %s, %d series", tab.Figure, len(tab.Series))
	}
	for _, s := range tab.Series {
		if len(s.Points) != 4 {
			t.Fatalf("%s: %d points", s.Name, len(s.Points))
		}
		// More UAVs: volume must not decrease materially (heuristic
		// partitioning gets 5% slack).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Volume < 0.95*s.Points[i-1].Volume {
				t.Errorf("%s: volume fell from %v to %v at fleet %g",
					s.Name, s.Points[i-1].Volume, s.Points[i].Volume, s.Points[i].X)
			}
		}
		// A second UAV with a tight per-UAV budget must add volume.
		if s.Points[1].Volume <= s.Points[0].Volume {
			t.Errorf("%s: second UAV added nothing: %v vs %v", s.Name, s.Points[1].Volume, s.Points[0].Volume)
		}
	}
}

func TestRunDispatchExtensions(t *testing.T) {
	for _, name := range []string{"ext-altitude", "ext-fleet"} {
		tab, err := Run(name, Tiny())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tab.Figure != name {
			t.Errorf("%s: got %s", name, tab.Figure)
		}
	}
}

func TestExtensionsRejectBadConfig(t *testing.T) {
	cfg := Tiny()
	cfg.Instances = 0
	if _, err := ExtAltitude(cfg); err == nil {
		t.Error("ExtAltitude accepted bad config")
	}
	if _, err := ExtFleet(cfg); err == nil {
		t.Error("ExtFleet accepted bad config")
	}
}

func TestExtRobustnessTiny(t *testing.T) {
	tab, err := ExtRobustness(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	comp := tab.SeriesByName("completion-pct")
	real := tab.SeriesByName("realised-volume-pct")
	if comp == nil || real == nil {
		t.Fatal("missing series")
	}
	// Completion rate must be non-decreasing in the margin, end at 100%,
	// and start below 100% (a zero-margin plan dies under ±20% noise for
	// at least one repetition).
	last := comp.Points[len(comp.Points)-1]
	if last.Volume < 99.9 {
		t.Errorf("30%% margin completion = %v%%", last.Volume)
	}
	for i := 1; i < len(comp.Points); i++ {
		if comp.Points[i].Volume < comp.Points[i-1].Volume-5 { // small noise slack
			t.Errorf("completion fell with margin: %v → %v", comp.Points[i-1].Volume, comp.Points[i].Volume)
		}
	}
	if comp.Points[0].Volume >= 100 {
		t.Errorf("zero-margin plan never failed under noise (%v%%)", comp.Points[0].Volume)
	}
	for _, p := range real.Points {
		if p.Volume <= 0 || p.Volume > 130 {
			t.Errorf("realised ratio out of range: %v", p.Volume)
		}
	}
}

func TestExtDecompositionTiny(t *testing.T) {
	tab, err := ExtDecomposition(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	plain := tab.SeriesByName("plain")
	cov := tab.SeriesByName("coverage")
	placed := tab.SeriesByName("placed")
	if plain == nil || cov == nil || placed == nil {
		t.Fatal("missing series")
	}
	// At the tight budget the ordering plain ≤ coverage ≤ placed must hold.
	if cov.Points[0].Volume <= plain.Points[0].Volume {
		t.Errorf("framework added nothing: %v vs %v", cov.Points[0].Volume, plain.Points[0].Volume)
	}
	if placed.Points[0].Volume < cov.Points[0].Volume*0.95 {
		t.Errorf("placement regressed: %v vs %v", placed.Points[0].Volume, cov.Points[0].Volume)
	}
}
