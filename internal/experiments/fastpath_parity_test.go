package experiments

import (
	"maps"
	"runtime"
	"slices"
	"testing"
)

// assertTablesBitEqual compares the deterministic panels of two figure
// tables: series names and order, every point's x, volume, volume CI and
// instance count bit-for-bit, and the counter totals except the scan work
// ledger (candidate_evals, residual_recomputes, scan_skipped_drained),
// which legitimately differs between the reference and fast scan paths.
// Runtime fields are wall clock and not compared.
func assertTablesBitEqual(t *testing.T, label string, ref, got *Table) {
	t.Helper()
	if len(got.Series) != len(ref.Series) {
		t.Fatalf("%s: %d series, reference %d", label, len(got.Series), len(ref.Series))
	}
	refCounters := map[string]int64{}
	gotCounters := map[string]int64{}
	for si := range ref.Series {
		rs, gs := ref.Series[si], got.Series[si]
		if gs.Name != rs.Name {
			t.Fatalf("%s: series[%d] = %q, reference %q", label, si, gs.Name, rs.Name)
		}
		if len(gs.Points) != len(rs.Points) {
			t.Fatalf("%s/%s: %d points, reference %d", label, rs.Name, len(gs.Points), len(rs.Points))
		}
		for pi := range rs.Points {
			rp, gp := rs.Points[pi], gs.Points[pi]
			if gp.X != rp.X || gp.Volume != rp.Volume || gp.VolumeCI != rp.VolumeCI || gp.N != rp.N { // exact compare: bit-identity is the parity contract
				t.Errorf("%s/%s[%d]: (x=%v vol=%v ci=%v n=%d), reference (x=%v vol=%v ci=%v n=%d)",
					label, rs.Name, pi, gp.X, gp.Volume, gp.VolumeCI, gp.N, rp.X, rp.Volume, rp.VolumeCI, rp.N)
			}
			for cname, n := range rp.Counters {
				refCounters[cname] += n
			}
			for cname, n := range gp.Counters {
				gotCounters[cname] += n
			}
		}
	}
	names := map[string]bool{}
	for cname := range refCounters {
		names[cname] = true
	}
	for cname := range gotCounters {
		names[cname] = true
	}
	for _, cname := range slices.Sorted(maps.Keys(names)) {
		if speedupWorkCounters[cname] {
			continue
		}
		if gotCounters[cname] != refCounters[cname] {
			t.Errorf("%s: counter %s = %d, reference %d", label, cname, gotCounters[cname], refCounters[cname])
		}
	}
}

// TestFastPathParityAcrossFigures is the tentpole differential harness:
// every figure driver, run on the fast scan path at GOMAXPROCS (and
// candidate-scan Workers) 1, 4 and 8, must reproduce the reference scan
// path's volumes, instance counts, and behaviour counters bit-for-bit.
// This is what licenses shipping the fast path as the default: any
// exactness hole in the pruned scan, the cached insertion pricing, or the
// memoized matrices surfaces here as a diverging panel. `make ci` runs
// this race-enabled as the fastpath step.
func TestFastPathParityAcrossFigures(t *testing.T) {
	cfg := Tiny()
	cfg.Metrics = true
	for _, fig := range slices.Sorted(maps.Keys(Figures)) {
		t.Run(fig, func(t *testing.T) {
			refCfg := cfg
			refCfg.Reference = true
			ref, err := Run(fig, refCfg)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			for _, procs := range []int{1, 4, 8} {
				prev := runtime.GOMAXPROCS(procs)
				fastCfg := cfg
				fastCfg.Workers = procs
				got, runErr := Run(fig, fastCfg)
				runtime.GOMAXPROCS(prev)
				if runErr != nil {
					t.Fatalf("fast run at GOMAXPROCS=%d: %v", procs, runErr)
				}
				assertTablesBitEqual(t, fig, ref, got)
			}
		})
	}
}

// TestBenchSpeedupPanel runs the speedup generator on the tiny preset and
// checks its own invariants: bit-identical panels, the evals
// reconciliation, and a positive ledger on a figure whose planners use the
// pruned scan.
func TestBenchSpeedupPanel(t *testing.T) {
	rows, err := BenchSpeedup("tiny", Tiny(), []string{"fig4", "fig5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, row := range rows {
		if !row.BitIdentical {
			t.Errorf("%s: deterministic panels diverged between reference and fast", row.Figure)
		}
		if row.Preset != "tiny" {
			t.Errorf("%s: preset %q, want tiny", row.Figure, row.Preset)
		}
		if row.FastEvals+row.SkippedEvals != row.ReferenceEvals {
			t.Errorf("%s: fast evals %d + skipped %d != reference evals %d",
				row.Figure, row.FastEvals, row.SkippedEvals, row.ReferenceEvals)
		}
		if row.ReferenceEvals == 0 {
			t.Errorf("%s: reference run recorded no candidate evaluations", row.Figure)
		}
	}
}
