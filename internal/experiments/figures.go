package experiments

import (
	"fmt"
	"time"

	"uavdc/internal/core"
	"uavdc/internal/obs"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/simulate"
	"uavdc/internal/stats"
	"uavdc/internal/trace"
	"uavdc/internal/units"
)

// Trace span names emitted by runSweep when Config.Trace is attached: one
// SpanSweepPoint per (series, x) data point and one SpanSweepPlan per
// planner run, the latter enclosing the planner's own phase spans.
const (
	SpanSweepPoint = "sweep/point"
	SpanSweepPlan  = "sweep/plan"
)

// runSpec describes one series of a sweep: a planner plus the mapping from
// the swept x value to a concrete instance.
type runSpec struct {
	name     string
	planner  core.Planner
	instance func(net *sensornet.Network, x float64) *core.Instance
}

// networks generates the shared instance pool: the same random networks
// are reused across every x value and every series, so comparisons are
// paired exactly as in the paper.
func (c *Config) networks() ([]*sensornet.Network, error) {
	root := rng.New(c.Seed)
	nets := make([]*sensornet.Network, c.Instances)
	for i := range nets {
		net, err := sensornet.Generate(c.Gen, root.SplitN("network", i))
		if err != nil {
			return nil, err
		}
		nets[i] = net
	}
	return nets, nil
}

// runSweep executes every (x, instance, spec) cell and aggregates.
func runSweep(cfg Config, xs []float64, specs []runSpec) ([]Series, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	nets, err := cfg.networks()
	if err != nil {
		return nil, err
	}
	var tr trace.Tracer = trace.Discard
	if cfg.Trace != nil {
		tr = cfg.Trace
	}
	series := make([]Series, len(specs))
	for si, spec := range specs {
		series[si].Name = spec.name
		for _, x := range xs {
			endPoint := tr.Begin(SpanSweepPoint,
				trace.Str("series", spec.name), trace.Num("x", x))
			vols := make([]float64, 0, len(nets))
			times := make([]float64, 0, len(nets))
			// One registry per (series, x) point: counters aggregate over
			// the point's instances, exactly like volume and runtime.
			var reg *obs.Registry
			if cfg.Metrics {
				reg = obs.NewRegistry()
			}
			for ni, net := range nets {
				in := spec.instance(net, x)
				if reg != nil {
					in.Obs = reg
				}
				if tr.Enabled() {
					in.Obs = trace.With(in.Obs, tr)
				}
				endPlan := tr.Begin(SpanSweepPlan, trace.Int("instance", ni))
				start := time.Now() //uavdc:allow nodeterminism runtime panel (b) measures wall time; volumes stay deterministic
				plan, err := spec.planner.Plan(in)
				elapsed := time.Since(start).Seconds() //uavdc:allow nodeterminism runtime panel (b) measures wall time; volumes stay deterministic
				endPlan()
				if reg != nil {
					reg.Timer(TimerPlan).Observe(elapsed)
				}
				if err != nil {
					return nil, fmt.Errorf("experiments: %s at x=%g: %w", spec.name, x, err)
				}
				if cfg.Validate {
					if err := core.ValidatePlanPhysics(in.Net, in.Model, in.Physics(), plan); err != nil {
						return nil, fmt.Errorf("experiments: %s at x=%g produced invalid plan: %w", spec.name, x, err)
					}
					res := simulate.Run(in.Net, in.Model, plan, simulate.Options{Altitude: in.Altitude, Radio: in.Radio})
					if !res.Completed {
						return nil, fmt.Errorf("experiments: %s at x=%g: simulated mission aborted: %s", spec.name, x, res.AbortReason)
					}
				}
				vols = append(vols, plan.Collected())
				times = append(times, elapsed)
			}
			vs, ts := stats.Summarize(vols), stats.Summarize(times)
			p := Point{
				X:         x,
				Volume:    vs.Mean,
				VolumeCI:  vs.CI95(),
				Runtime:   ts.Mean,
				RuntimeCI: ts.CI95(),
				N:         vs.N,
			}
			if reg != nil {
				p.Counters = reg.Snapshot().Counters
			}
			series[si].Points = append(series[si].Points, p)
			endPoint(trace.Int("instances", len(nets)))
		}
	}
	return series, nil
}

func capacityInstance(cfg Config, delta float64, k int) func(*sensornet.Network, float64) *core.Instance {
	return func(net *sensornet.Network, x float64) *core.Instance {
		return &core.Instance{
			Net:   net,
			Model: cfg.Model.WithCapacity(units.Joules(x)),
			Delta: units.Meters(delta),
			K:     k,
		}
	}
}

func deltaInstance(cfg Config, k int) func(*sensornet.Network, float64) *core.Instance {
	return func(net *sensornet.Network, x float64) *core.Instance {
		return &core.Instance{
			Net:   net,
			Model: cfg.Model,
			Delta: units.Meters(x),
			K:     k,
		}
	}
}

// Fig3 regenerates Fig. 3: the no-overlap problem, Algorithm 1 vs the
// benchmark, collected volume (a) and running time (b) as the energy
// capacity E grows.
func Fig3(cfg Config) (*Table, error) {
	specs := []runSpec{
		{name: "algorithm1", planner: &core.Algorithm1{Reference: cfg.Reference}, instance: capacityInstance(cfg, cfg.Delta, 1)},
		{name: "benchmark", planner: &core.BenchmarkPlanner{Reference: cfg.Reference}, instance: capacityInstance(cfg, cfg.Delta, 1)},
	}
	series, err := runSweep(cfg, cfg.Capacities, specs)
	if err != nil {
		return nil, err
	}
	return &Table{
		Figure: "fig3",
		Title:  "no-overlap data collection vs energy capacity",
		XLabel: "energy capacity",
		XUnit:  "J",
		Series: series,
	}, nil
}

// Fig4 regenerates Fig. 4: the overlapping problem, Algorithm 2 and
// Algorithm 3 (one series per K) vs the benchmark as the grid resolution δ
// grows, at the default energy capacity.
func Fig4(cfg Config) (*Table, error) {
	specs := []runSpec{
		{name: "algorithm2", planner: &core.Algorithm2{Workers: cfg.Workers, Reference: cfg.Reference}, instance: deltaInstance(cfg, 1)},
	}
	for _, k := range cfg.Ks {
		specs = append(specs, runSpec{
			name:     fmt.Sprintf("algorithm3-k%d", k),
			planner:  &core.Algorithm3{Workers: cfg.Workers, Reference: cfg.Reference},
			instance: deltaInstance(cfg, k),
		})
	}
	specs = append(specs, runSpec{
		name:     "benchmark",
		planner:  &core.BenchmarkPlanner{Reference: cfg.Reference},
		instance: deltaInstance(cfg, 1),
	})
	series, err := runSweep(cfg, cfg.Deltas, specs)
	if err != nil {
		return nil, err
	}
	return &Table{
		Figure: "fig4",
		Title:  fmt.Sprintf("overlapping data collection vs grid resolution δ (E = %g J)", cfg.Model.Capacity),
		XLabel: "delta",
		XUnit:  "m",
		Series: series,
	}, nil
}

// Fig5 regenerates Fig. 5: the overlapping problem at fixed δ as the
// energy capacity grows.
func Fig5(cfg Config) (*Table, error) {
	specs := []runSpec{
		{name: "algorithm2", planner: &core.Algorithm2{Workers: cfg.Workers, Reference: cfg.Reference}, instance: capacityInstance(cfg, cfg.Delta, 1)},
	}
	for _, k := range cfg.Ks {
		specs = append(specs, runSpec{
			name:     fmt.Sprintf("algorithm3-k%d", k),
			planner:  &core.Algorithm3{Workers: cfg.Workers, Reference: cfg.Reference},
			instance: capacityInstance(cfg, cfg.Delta, k),
		})
	}
	specs = append(specs, runSpec{
		name:     "benchmark",
		planner:  &core.BenchmarkPlanner{Reference: cfg.Reference},
		instance: capacityInstance(cfg, cfg.Delta, 1),
	})
	series, err := runSweep(cfg, cfg.Capacities, specs)
	if err != nil {
		return nil, err
	}
	return &Table{
		Figure: "fig5",
		Title:  fmt.Sprintf("overlapping data collection vs energy capacity (δ = %g m)", cfg.Delta),
		XLabel: "energy capacity",
		XUnit:  "J",
		Series: series,
	}, nil
}

// Figures maps figure ids to their drivers: the paper's Figs. 3–5 plus the
// extension experiments (see extensions.go).
var Figures = map[string]func(Config) (*Table, error){
	"fig3":              Fig3,
	"fig4":              Fig4,
	"fig5":              Fig5,
	"ext-altitude":      ExtAltitude,
	"ext-fleet":         ExtFleet,
	"ext-robustness":    ExtRobustness,
	"ext-decomposition": ExtDecomposition,
}

// Run executes the named figure ("fig3", "fig4", "fig5", "ext-altitude",
// "ext-fleet", "ext-robustness").
func Run(name string, cfg Config) (*Table, error) {
	f, ok := Figures[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have fig3, fig4, fig5, ext-altitude, ext-fleet, ext-robustness)", name)
	}
	return f(cfg)
}
