package experiments

import (
	"flag"
	"maps"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// TestGoldenVolumePanels locks the deterministic (a) collected-volume panel
// of every figure driver at the Tiny configuration. The runtime panel is
// wall-clock and excluded. A diff here means planner *behaviour* changed —
// which must be deliberate: regenerate with
//
//	go test ./internal/experiments -run TestGoldenVolumePanels -update
//
// and justify the new numbers in the commit message.
func TestGoldenVolumePanels(t *testing.T) {
	for _, name := range slices.Sorted(maps.Keys(Figures)) {
		t.Run(name, func(t *testing.T) {
			tab, err := Run(name, Tiny())
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := tab.RenderVolumePanel(&sb); err != nil {
				t.Fatal(err)
			}
			got := sb.String()

			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("volume panel drifted from golden.\n--- want (%s)\n%s--- got\n%s", path, want, got)
			}
		})
	}
}
