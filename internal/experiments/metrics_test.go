package experiments

import (
	"maps"
	"slices"
	"strings"
	"testing"
)

func TestMetricsCollectedPerPoint(t *testing.T) {
	cfg := Tiny()
	cfg.Metrics = true
	tab, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.HasMetrics() {
		t.Fatal("Metrics=true sweep produced no counters")
	}
	alg := tab.SeriesByName("algorithm1")
	bench := tab.SeriesByName("benchmark")
	if alg == nil || bench == nil {
		t.Fatal("missing series")
	}
	for _, p := range alg.Points {
		if p.Counters["orienteering.exact_runs"]+p.Counters["orienteering.greedy_runs"] == 0 {
			t.Errorf("algorithm1 x=%g: no orienteering solver attempts recorded: %v", p.X, p.Counters)
		}
	}
	for _, p := range bench.Points {
		if p.Counters["tsp.christofides_runs"] == 0 {
			t.Errorf("benchmark x=%g: no christofides runs recorded: %v", p.X, p.Counters)
		}
		if p.Counters["matching.blossom_runs"]+p.Counters["matching.greedy_runs"] == 0 {
			t.Errorf("benchmark x=%g: no matchings recorded: %v", p.X, p.Counters)
		}
	}
}

func TestMetricsOffByDefault(t *testing.T) {
	tab, err := Fig3(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.HasMetrics() {
		t.Error("counters recorded without Config.Metrics")
	}
	var sb strings.Builder
	if err := tab.RenderMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("RenderMetrics on uninstrumented table rendered %q", sb.String())
	}
}

func TestRenderMetricsPanel(t *testing.T) {
	cfg := Tiny()
	cfg.Metrics = true
	tab, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.RenderMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fig5(c): instrumentation counters",
		"series algorithm2",
		"series algorithm3-k2",
		"series benchmark",
		"core.candidate_evals",
		"core.accepted_stops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics panel missing %q:\n%s", want, out)
		}
	}
}

func TestRunBenchTiny(t *testing.T) {
	b, err := RunBench("tiny", Tiny(), []string{"fig3", "fig4"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != BenchSchema {
		t.Errorf("schema = %q", b.Schema)
	}
	if len(b.Figures) != 2 {
		t.Fatalf("figures = %d, want 2", len(b.Figures))
	}
	for _, fig := range b.Figures {
		if fig.WallSeconds <= 0 {
			t.Errorf("%s: wall_seconds = %v", fig.Figure, fig.WallSeconds)
		}
		if fig.PlanCalls == 0 {
			t.Errorf("%s: no plan calls", fig.Figure)
		}
		if len(fig.Counters) == 0 {
			t.Errorf("%s: no counters", fig.Figure)
		}
		if len(fig.VolumeMB) == 0 {
			t.Errorf("%s: no volumes", fig.Figure)
		}
		for _, series := range slices.Sorted(maps.Keys(fig.VolumeMB)) {
			if v := fig.VolumeMB[series]; v <= 0 {
				t.Errorf("%s: series %s collected %v MB", fig.Figure, series, v)
			}
		}
	}

	// Round-trip through the JSON encoding.
	var sb strings.Builder
	if err := b.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBench(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Preset != "tiny" || len(got.Figures) != 2 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if got.Figures[0].Counters["core.candidate_evals"] != b.Figures[0].Counters["core.candidate_evals"] {
		t.Error("counters lost in round-trip")
	}

	// Schema tag is enforced.
	if _, err := ReadBench(strings.NewReader(`{"schema":"bogus/9"}`)); err == nil {
		t.Error("ReadBench accepted wrong schema")
	}
}

// TestBenchCountersDeterministic: two bench runs of the same configuration
// must report identical counter totals and volumes — only timings differ.
func TestBenchCountersDeterministic(t *testing.T) {
	a, err := RunBench("tiny", Tiny(), []string{"fig3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBench("tiny", Tiny(), []string{"fig3"})
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Figures[0], b.Figures[0]
	if len(fa.Counters) != len(fb.Counters) {
		t.Fatalf("counter sets differ: %v vs %v", fa.Counters, fb.Counters)
	}
	for _, name := range slices.Sorted(maps.Keys(fa.Counters)) {
		if n := fa.Counters[name]; fb.Counters[name] != n {
			t.Errorf("counter %s: %d != %d", name, n, fb.Counters[name])
		}
	}
	for _, name := range slices.Sorted(maps.Keys(fa.VolumeMB)) {
		if v := fa.VolumeMB[name]; fb.VolumeMB[name] != v {
			t.Errorf("volume %s: %v != %v", name, v, fb.VolumeMB[name])
		}
	}
}
