package experiments

import (
	"fmt"
	"time"

	"uavdc/internal/core"
	"uavdc/internal/simulate"
	"uavdc/internal/stats"
	"uavdc/internal/units"
)

// ExtRobustness is an extension experiment: mission completion probability
// and realised collection under stochastic power draw, as a function of
// the capacity margin the planner holds back. The paper's planners spend
// the battery to the last joule; under ±20% per-segment power noise such
// plans die mid-air. The driver plans with a derated budget
// E·(1 − margin), then flies each plan against the full battery with 25
// noisy repetitions per instance, reporting the completion rate (in the
// volume column, as a percentage) and the mean realised collection ratio
// versus the deterministic plan (runtime column abused for planning time).
func ExtRobustness(cfg Config) (*Table, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	nets, err := cfg.networks()
	if err != nil {
		return nil, err
	}
	const noiseSpread = 0.2
	const repetitions = 25
	margins := []float64{0, 0.05, 0.1, 0.2, 0.3}
	tab := &Table{
		Figure: "ext-robustness",
		Title:  fmt.Sprintf("extension: completion rate under ±%.0f%% power noise vs capacity margin", 100*noiseSpread),
		XLabel: "capacity margin",
		XUnit:  "fraction",
	}
	completion := Series{Name: "completion-pct"}
	realised := Series{Name: "realised-volume-pct"}
	for _, margin := range margins {
		var rates, ratios, times []float64
		for ni, net := range nets {
			in := &core.Instance{
				Net:   net,
				Model: cfg.Model.WithCapacity(units.Scale(cfg.Model.Capacity, 1-margin)),
				Delta: units.Meters(cfg.Delta),
				K:     2,
			}
			start := time.Now() //uavdc:allow nodeterminism runtime column measures wall time; volumes stay deterministic
			plan, err := (&core.Algorithm3{Reference: cfg.Reference}).Plan(in)
			times = append(times, time.Since(start).Seconds()) //uavdc:allow nodeterminism runtime column measures wall time; volumes stay deterministic
			if err != nil {
				return nil, fmt.Errorf("experiments: robustness margin=%v: %w", margin, err)
			}
			planned := plan.Collected()
			fullBattery := cfg.Model // the UAV flies with the whole battery
			completed := 0
			var gathered float64
			for rep := 0; rep < repetitions; rep++ {
				res := simulate.Run(net, fullBattery, plan, simulate.Options{
					Noise: simulate.Noise{Spread: noiseSpread, Seed: int64(ni*1000 + rep)},
				})
				if res.Completed {
					completed++
				}
				gathered += res.Collected
			}
			rates = append(rates, 100*float64(completed)/repetitions)
			if planned > 0 {
				ratios = append(ratios, 100*gathered/(repetitions*planned))
			}
		}
		rs, qs, ts := stats.Summarize(rates), stats.Summarize(ratios), stats.Summarize(times)
		completion.Points = append(completion.Points, Point{
			X: margin, Volume: rs.Mean, VolumeCI: rs.CI95(),
			Runtime: ts.Mean, RuntimeCI: ts.CI95(), N: rs.N,
		})
		realised.Points = append(realised.Points, Point{
			X: margin, Volume: qs.Mean, VolumeCI: qs.CI95(),
			Runtime: ts.Mean, RuntimeCI: ts.CI95(), N: qs.N,
		})
	}
	tab.Series = []Series{completion, realised}
	return tab, nil
}
