package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"uavdc"
	"uavdc/internal/obs"
	"uavdc/internal/oplog"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/serve"
)

// BenchServe is the serving-throughput panel (uavbench -serve): a
// loopback load run against the internal/serve daemon core on the
// preset's field distribution. The run is two-phase — every distinct
// instance planned cold once, then the remaining requests fired from
// concurrent clients against the warm cache — so the counter fields are
// exactly predictable: misses = plans = distinct instances,
// hits = requests − distinct, rejected = coalesced = 0. The throughput
// and latency fields are wall clock and vary run to run;
// bit_identical records that every served body, cold or warm, equalled
// a direct uavdc.Plan call.
type BenchServe struct {
	Preset         string  `json:"preset"`
	Requests       int     `json:"requests"`
	Distinct       int     `json:"distinct_instances"`
	Clients        int     `json:"clients"`
	Workers        int     `json:"workers"`
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	Coalesced      int64   `json:"coalesced"`
	Rejected       int64   `json:"rejected"`
	Plans          int64   `json:"plans"`
	WallSeconds    float64 `json:"wall_seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	BitIdentical   bool    `json:"bit_identical"`
	// OpLogConsistent records that the run's uavdc-oplog/1 stream (one
	// record per request, captured losslessly) summarized to exactly the
	// counter fields above: per-disposition counts equal, no drops.
	// omitempty keeps panels from before the op-log byte-identical.
	OpLogConsistent bool `json:"oplog_consistent,omitempty"`
}

// ServeRequests builds the uavdc-serve/1 requests of the preset's load
// mix: distinct random fields from the preset's generator at its fixed
// δ and largest K, planned with the default algorithm.
func ServeRequests(cfg Config, distinct int) ([]serve.Request, error) {
	k := 4
	if len(cfg.Ks) > 0 {
		k = cfg.Ks[len(cfg.Ks)-1]
	}
	uav := serve.UAVSpecOf(uavdc.UAV{
		HoverPowerW:  cfg.Model.HoverPower.F(),
		TravelPowerW: cfg.Model.TravelPower.F(),
		SpeedMS:      cfg.Model.Speed.F(),
		CapacityJ:    cfg.Model.Capacity.F(),
		ClimbPowerW:  cfg.Model.ClimbPower.F(),
		ClimbRateMS:  cfg.Model.ClimbRate.F(),
	})
	reqs := make([]serve.Request, distinct)
	for i := range reqs {
		net, err := sensornet.Generate(cfg.Gen, rng.New(cfg.Seed+uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("experiments: generate serve instance %d: %w", i, err)
		}
		spec := serve.ScenarioSpec{
			RegionSideM:   cfg.Gen.Side,
			DepotX:        net.Depot.X,
			DepotY:        net.Depot.Y,
			BandwidthMBps: net.Bandwidth,
			CoverRadiusM:  net.CommRange,
			Sensors:       make([]serve.SensorSpec, len(net.Sensors)),
		}
		for j, s := range net.Sensors {
			spec.Sensors[j] = serve.SensorSpec{X: s.Pos.X, Y: s.Pos.Y, DataMB: s.Data}
		}
		reqs[i] = serve.Request{
			Schema:   serve.Schema,
			Scenario: spec,
			UAV:      uav,
			Options:  serve.OptionsSpec{DeltaM: cfg.Delta, K: k},
		}
	}
	return reqs, nil
}

// RunBenchServe measures the serving panel: requests total over distinct
// instances from the given number of concurrent clients.
func RunBenchServe(preset string, cfg Config, requests, distinct, clients int) (*BenchServe, error) {
	if distinct <= 0 {
		distinct = 8
	}
	if requests < distinct {
		requests = distinct
	}
	if clients <= 0 {
		clients = 8
	}
	reqs, err := ServeRequests(cfg, distinct)
	if err != nil {
		return nil, err
	}

	// Reference bodies: one direct Plan call per distinct instance —
	// the bit-identity baseline, computed outside the measured window.
	expected := make([][]byte, distinct)
	for i, r := range reqs {
		key, err := r.Key()
		if err != nil {
			return nil, err
		}
		res, err := uavdc.Plan(r.Scenario.Scenario(), r.UAV.UAV(), r.Options.Options())
		if err != nil {
			return nil, fmt.Errorf("experiments: direct plan %d: %w", i, err)
		}
		if expected[i], err = serve.EncodeResult(key, res); err != nil {
			return nil, err
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = 4 // serve.New's default pool size
	}
	reg := obs.NewRegistry()
	// The op-log buffer is sized to the run so no record drops and the
	// summary/counter cross-check below is exact.
	var oplogBuf bytes.Buffer
	s := serve.New(serve.Config{Obs: reg, Workers: workers,
		OpLog: &oplogBuf, OpLogBuffer: requests + 8})
	defer func() { _ = s.Close(context.Background()) }() // nothing in flight by then; counters already read
	ctx := context.Background()

	var identical atomic.Bool
	identical.Store(true)
	latencies := make([]float64, requests)
	start := time.Now() //uavdc:allow nodeterminism bench wall-clock panel; documented non-deterministic in EXPERIMENTS.md

	// Phase 1: cold, serial — every distinct instance planned once.
	for i, r := range reqs {
		out := s.Do(ctx, r)
		if out.Status != 200 {
			return nil, fmt.Errorf("experiments: cold serve %d: status %d: %s", i, out.Status, out.Body)
		}
		if !bytes.Equal(out.Body, expected[i]) {
			identical.Store(false)
		}
		latencies[i] = out.Elapsed.Seconds()
	}

	// Phase 2: warm, concurrent — the remaining requests round-robin
	// over the now-cached instances from all clients at once.
	var next atomic.Int64
	next.Store(int64(distinct))
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				r := i % distinct
				out := s.Do(ctx, reqs[r])
				if out.Status != 200 {
					select {
					case errc <- fmt.Errorf("experiments: warm serve %d: status %d: %s", i, out.Status, out.Body):
					default:
					}
					return
				}
				if !bytes.Equal(out.Body, expected[r]) {
					identical.Store(false)
				}
				latencies[i] = out.Elapsed.Seconds()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start) //uavdc:allow nodeterminism bench wall-clock panel; documented non-deterministic in EXPERIMENTS.md
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	sort.Float64s(latencies)
	counters := reg.Snapshot().Counters
	// Close drains the async op-log writer so the stream is complete
	// before the cross-check (Close is idempotent; the defer is a no-op).
	if err := s.Close(ctx); err != nil {
		return nil, err
	}
	panel := &BenchServe{
		Preset:         preset,
		Requests:       requests,
		Distinct:       distinct,
		Clients:        clients,
		Workers:        workers,
		Hits:           counters[serve.CounterHits],
		Misses:         counters[serve.CounterMisses],
		Coalesced:      counters[serve.CounterCoalesced],
		Rejected:       counters[serve.CounterRejected],
		Plans:          counters[serve.CounterPlans],
		WallSeconds:    wall.Seconds(),
		RequestsPerSec: float64(requests) / wall.Seconds(),
		P50Ms:          1e3 * latencies[len(latencies)*50/100],
		P99Ms:          1e3 * latencies[min(len(latencies)-1, len(latencies)*99/100)],
		BitIdentical:   identical.Load(),
	}
	panel.OpLogConsistent = oplogMatchesCounters(&oplogBuf, panel)
	return panel, nil
}

// oplogMatchesCounters cross-checks the run's op-log stream against the
// panel's registry counters: one record per request and per-disposition
// counts exactly equal.
func oplogMatchesCounters(stream *bytes.Buffer, p *BenchServe) bool {
	_, recs, err := oplog.Read(stream)
	if err != nil {
		return false
	}
	sum := oplog.Summarize(recs, 0)
	return sum.Records == p.Requests &&
		int64(sum.ByDisp[oplog.DispHit]) == p.Hits &&
		int64(sum.ByDisp[oplog.DispMiss]) == p.Misses &&
		int64(sum.ByDisp[oplog.DispCoalesced]) == p.Coalesced &&
		int64(sum.ByDisp[oplog.DispRejected]) == p.Rejected &&
		sum.ByDisp[oplog.DispTimeout] == 0 &&
		sum.ByDisp[oplog.DispError] == 0
}
