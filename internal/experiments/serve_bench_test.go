package experiments

import "testing"

// TestBenchServePanel locks the serve panel's deterministic fields: the
// two-phase choreography makes every counter exactly predictable, and
// every served body must be bit-identical to a direct plan.
func TestBenchServePanel(t *testing.T) {
	const (
		requests = 32
		distinct = 4
		clients  = 4
	)
	sv, err := RunBenchServe("tiny", Tiny(), requests, distinct, clients)
	if err != nil {
		t.Fatal(err)
	}
	if !sv.BitIdentical {
		t.Error("served bodies diverged from direct plans")
	}
	if sv.Misses != distinct || sv.Plans != distinct {
		t.Errorf("misses=%d plans=%d, want both %d (cold pass plans each distinct instance once)",
			sv.Misses, sv.Plans, distinct)
	}
	if sv.Hits != requests-distinct {
		t.Errorf("hits=%d, want %d (every warm repeat is a cache hit)", sv.Hits, requests-distinct)
	}
	if sv.Coalesced != 0 || sv.Rejected != 0 {
		t.Errorf("coalesced=%d rejected=%d, want 0 (warm phase never misses)", sv.Coalesced, sv.Rejected)
	}
	if got := sv.Hits + sv.Misses + sv.Coalesced + sv.Rejected; got != int64(requests) {
		t.Errorf("counter dispositions sum to %d, want %d", got, requests)
	}
	if !sv.OpLogConsistent {
		t.Error("op-log per-disposition counts diverged from the panel counters")
	}
	if sv.WallSeconds <= 0 || sv.RequestsPerSec <= 0 || sv.P99Ms < sv.P50Ms {
		t.Errorf("implausible timing fields: wall=%g rps=%g p50=%g p99=%g",
			sv.WallSeconds, sv.RequestsPerSec, sv.P50Ms, sv.P99Ms)
	}
}

// TestServeRequestsDeterministic: the request mix is a pure function of
// the preset, so panel inputs reproduce across runs and machines.
func TestServeRequestsDeterministic(t *testing.T) {
	a, err := ServeRequests(Tiny(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServeRequests(Tiny(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ka, err := a[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		kb, err := b[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		if ka != kb {
			t.Fatalf("request %d key drifted: %s vs %s", i, ka, kb)
		}
		for j := 0; j < i; j++ {
			kj, err := a[j].Key()
			if err != nil {
				t.Fatal(err)
			}
			if kj == ka {
				t.Fatalf("requests %d and %d collide on key %s; the mix must be distinct instances", j, i, ka)
			}
		}
	}
}
