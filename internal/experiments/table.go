package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"uavdc/internal/errw"
)

// Point is one (x, mean volume, mean runtime) measurement of one series.
type Point struct {
	// X is the swept parameter value (capacity in J or δ in m).
	X float64
	// Volume is the mean collected data volume over the instances, MB.
	Volume float64
	// VolumeCI is the 95% confidence half-width of Volume, MB.
	VolumeCI float64
	// Runtime is the mean planner wall time, seconds.
	Runtime float64
	// RuntimeCI is the 95% confidence half-width of Runtime, seconds.
	RuntimeCI float64
	// N is the number of instances averaged.
	N int
	// Counters holds the obs counter totals summed over the point's
	// instances; nil unless the sweep ran with Config.Metrics. Totals are
	// deterministic for a fixed configuration at any Workers setting.
	Counters map[string]int64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Table is a regenerated figure: both the (a) volume panel and the (b)
// runtime panel of the paper's paired plots, in one structure.
type Table struct {
	// Figure identifies the experiment, e.g. "fig3".
	Figure string
	// Title describes it.
	Title string
	// XLabel names the swept parameter.
	XLabel string
	// XUnit is the display unit of X.
	XUnit  string
	Series []Series
}

// Render writes both panels as aligned text tables.
func (t *Table) Render(w io.Writer) error {
	if err := t.RenderVolumePanel(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return t.renderPanel(w, fmt.Sprintf("%s(b): running time (s)", t.Figure), func(p Point) string {
		return fmt.Sprintf("%.4f ±%.4f", p.Runtime, p.RuntimeCI)
	})
}

// RenderVolumePanel writes only the (a) collected-volume panel. Unlike the
// runtime panel its content is deterministic for a fixed configuration,
// which is what the golden regression tests lock.
func (t *Table) RenderVolumePanel(w io.Writer) error {
	return t.renderPanel(w, fmt.Sprintf("%s(a): collected data volume (MB)", t.Figure), func(p Point) string {
		return fmt.Sprintf("%.1f ±%.1f", p.Volume, p.VolumeCI)
	})
}

// counterNames returns the sorted union of counter names across every
// point of the series.
func (s *Series) counterNames() []string {
	seen := map[string]bool{}
	for _, p := range s.Points {
		for name := range p.Counters {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HasMetrics reports whether any point carries counter totals.
func (t *Table) HasMetrics() bool {
	for _, s := range t.Series {
		for _, p := range s.Points {
			if len(p.Counters) > 0 {
				return true
			}
		}
	}
	return false
}

// RenderMetrics writes the instrumentation panel: one aligned block per
// series, rows per swept x value, one column per obs counter (sorted by
// name). Series without counters are skipped; rendering nothing when the
// sweep ran without Config.Metrics.
func (t *Table) RenderMetrics(w io.Writer) error {
	if !t.HasMetrics() {
		return nil
	}
	ew := errw.New(w)
	ew.Printf("%s(c): instrumentation counters — %s\n", t.Figure, t.Title)
	for si := range t.Series {
		s := &t.Series[si]
		names := s.counterNames()
		if len(names) == 0 {
			continue
		}
		ew.Printf("series %s\n", s.Name)
		tw := tabwriter.NewWriter(ew, 2, 4, 2, ' ', 0)
		etw := errw.New(tw)
		etw.Printf("%s (%s)", t.XLabel, t.XUnit)
		for _, name := range names {
			etw.Printf("\t%s", name)
		}
		etw.Println()
		for _, p := range s.Points {
			etw.Printf("%g", p.X)
			for _, name := range names {
				etw.Printf("\t%d", p.Counters[name])
			}
			etw.Println()
		}
		if err := etw.Err(); err != nil {
			return err
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return ew.Err()
}

func (t *Table) renderPanel(w io.Writer, title string, cell func(Point) string) error {
	ew := errw.New(w)
	ew.Printf("%s — %s\n", title, t.Title)
	tw := tabwriter.NewWriter(ew, 2, 4, 2, ' ', 0)
	etw := errw.New(tw)
	etw.Printf("%s (%s)", t.XLabel, t.XUnit)
	for _, s := range t.Series {
		etw.Printf("\t%s", s.Name)
	}
	etw.Println()
	for i, x := range t.xValues() {
		etw.Printf("%g", x)
		for _, s := range t.Series {
			if i < len(s.Points) {
				etw.Printf("\t%s", cell(s.Points[i]))
			} else {
				etw.Print("\t-")
			}
		}
		etw.Println()
	}
	if err := etw.Err(); err != nil {
		return err
	}
	return tw.Flush()
}

func (t *Table) xValues() []float64 {
	for _, s := range t.Series {
		if len(s.Points) > 0 {
			xs := make([]float64, len(s.Points))
			for i, p := range s.Points {
				xs[i] = p.X
			}
			return xs
		}
	}
	return nil
}

// WriteCSV emits the long-form data: figure,series,x,volume,volume_ci,
// runtime,runtime_ci,n.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", "x", "volume_mb", "volume_ci", "runtime_s", "runtime_ci", "n"}); err != nil {
		return err
	}
	for _, s := range t.Series {
		for _, p := range s.Points {
			rec := []string{
				t.Figure,
				s.Name,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Volume, 'f', 3, 64),
				strconv.FormatFloat(p.VolumeCI, 'f', 3, 64),
				strconv.FormatFloat(p.Runtime, 'f', 6, 64),
				strconv.FormatFloat(p.RuntimeCI, 'f', 6, 64),
				strconv.Itoa(p.N),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown emits both panels as GitHub-flavoured markdown tables, the
// format EXPERIMENTS.md uses.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if err := t.mdPanel(w, fmt.Sprintf("%s(a): collected data volume (MB)", t.Figure), func(p Point) string {
		return fmt.Sprintf("%.1f ± %.1f", p.Volume, p.VolumeCI)
	}); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return t.mdPanel(w, fmt.Sprintf("%s(b): running time (s)", t.Figure), func(p Point) string {
		return fmt.Sprintf("%.4f ± %.4f", p.Runtime, p.RuntimeCI)
	})
}

func (t *Table) mdPanel(w io.Writer, title string, cell func(Point) string) error {
	ew := errw.New(w)
	ew.Printf("### %s — %s\n\n", title, t.Title)
	ew.Printf("| %s (%s) |", t.XLabel, t.XUnit)
	for _, s := range t.Series {
		ew.Printf(" %s |", s.Name)
	}
	ew.Print("\n|---|")
	for range t.Series {
		ew.Print("---|")
	}
	ew.Println()
	for i, x := range t.xValues() {
		ew.Printf("| %g |", x)
		for _, s := range t.Series {
			if i < len(s.Points) {
				ew.Printf(" %s |", cell(s.Points[i]))
			} else {
				ew.Print(" - |")
			}
		}
		ew.Println()
	}
	return ew.Err()
}

// SeriesByName returns the named series, or nil.
func (t *Table) SeriesByName(name string) *Series {
	for i := range t.Series {
		if t.Series[i].Name == name {
			return &t.Series[i]
		}
	}
	return nil
}

// String renders the table for debugging.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}
