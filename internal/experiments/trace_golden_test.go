package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uavdc/internal/trace"
)

// traceFigures are the drivers locked by the trace regression tests:
// between them they exercise every planner — fig3 runs Algorithm 1 and the
// benchmark, fig4/fig5 run Algorithms 2 and 3 (two K values) and the
// benchmark.
var traceFigures = []string{"fig3", "fig4", "fig5"}

// runTraced runs a figure driver at the Tiny configuration with a flight
// recorder attached and returns the stripped (timestamp-free) JSONL export.
func runTraced(t *testing.T, name string, workers int) []byte {
	t.Helper()
	cfg := Tiny()
	cfg.Workers = workers
	cfg.Trace = trace.NewBuffer()
	if _, err := Run(name, cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Trace.Len() == 0 {
		t.Fatalf("%s: empty trace", name)
	}
	var b bytes.Buffer
	if err := trace.WriteJSONL(&b, cfg.Trace.Snapshot(), true); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestGoldenTraces locks the stripped trace stream of every figure driver
// at the Tiny configuration. A diff here means the *sequence of planner
// phases* changed — a different iteration count, candidate order, or solver
// choice — which must be deliberate: regenerate with
//
//	go test ./internal/experiments -run TestGoldenTraces -update
//
// and justify the new stream in the commit message.
func TestGoldenTraces(t *testing.T) {
	for _, name := range traceFigures {
		t.Run(name, func(t *testing.T) {
			got := runTraced(t, name, 0)
			path := filepath.Join("testdata", "trace_"+name+".jsonl")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				// Line-level first divergence keeps the failure readable;
				// the streams run to thousands of lines.
				gl := strings.Split(string(got), "\n")
				wl := strings.Split(string(want), "\n")
				for i := 0; i < len(gl) && i < len(wl); i++ {
					if gl[i] != wl[i] {
						t.Fatalf("trace drifted from golden at line %d:\n want %s\n got  %s", i+1, wl[i], gl[i])
					}
				}
				t.Fatalf("trace drifted from golden: %d lines, want %d", len(gl), len(wl))
			}
		})
	}
}

// TestTraceWorkerInvariance: the acceptance property — for every figure
// driver the stripped trace stream is byte-identical at Workers ∈ {1, 4, 8}.
// Run race-enabled in make ci.
func TestTraceWorkerInvariance(t *testing.T) {
	for _, name := range traceFigures {
		t.Run(name, func(t *testing.T) {
			base := runTraced(t, name, 1)
			for _, w := range []int{4, 8} {
				if !bytes.Equal(base, runTraced(t, name, w)) {
					t.Errorf("%s: stripped trace stream diverges at workers=%d", name, w)
				}
			}
		})
	}
}
