package faults

import "uavdc/internal/canon"

// CanonParts appends the schedule's canonical encoding: the event count
// followed by every event's kind, ranges, sensor scope, factor, and zone.
// Event order is semantic (factors compose in declaration order for a leg
// hit by several winds), so the encoding preserves it. A nil schedule and
// an empty one encode identically — both are the fault-free run.
func (s *Schedule) CanonParts(e *canon.Encoder) {
	if s == nil {
		e.I64(0)
		return
	}
	e.I64(int64(len(s.Events)))
	for _, ev := range s.Events {
		e.I64(int64(ev.Kind))
		e.I64(int64(ev.Legs.From), int64(ev.Legs.To))
		e.I64(int64(ev.Stops.From), int64(ev.Stops.To))
		e.I64(int64(ev.Sensor))
		e.F64(ev.Factor)
		e.F64(ev.Zone.C.X, ev.Zone.C.Y, ev.Zone.R)
	}
}
