// Package faults defines deterministic, seedable in-mission fault
// schedules for the flight simulator: structured disturbances beyond the
// multiplicative simulate.Noise. Each fault is a typed Event with an
// activation predicate (a leg-index range, an executed-stop range, a
// sensor, or a ground zone); events compose into a Schedule the adaptive
// executor consults at every flight leg, hover segment, and upload.
//
// The fault model is intentionally declarative: the executor can bound the
// worst case of a declared schedule (MaxLegFactor, MaxHoverFactor), which
// is what makes its reachable-depot guarantee hold by construction — the
// fly-home reserve is priced against the declared worst case, so a mission
// degrades to a shorter tour instead of dying mid-field.
//
// Schedules are built three ways: literally (composing Events), from the
// -faults command-line spec grammar (Parse), or pseudo-randomly from a
// seed (Random). All three are deterministic: the same spec or seed always
// replays the same schedule.
package faults

import (
	"fmt"
	"math"

	"uavdc/internal/geom"
)

// Kind labels a fault event type.
type Kind int

const (
	// KindWind multiplies the travel energy of every leg in the event's
	// leg range by Factor (headwind > 1, tailwind < 1).
	KindWind Kind = iota
	// KindHoverDrain multiplies the hover power at every executed stop in
	// the stop range by Factor (battery ageing, station-keeping wind).
	KindHoverDrain
	// KindUploadFail blocks the matching sensor's uploads entirely at
	// every executed stop in the stop range.
	KindUploadFail
	// KindBandwidth multiplies the matching sensor's uplink rate at every
	// executed stop in the stop range by Factor (< 1 degrades).
	KindBandwidth
	// KindDropout silences the matching sensor from stop AfterStop onward
	// — equivalent to an open-ended upload failure, kept distinct so
	// schedules read as intended.
	KindDropout
	// KindNoHover forbids hovering inside a circular ground zone: the UAV
	// may overfly it but collects nothing at stops inside.
	KindNoHover
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindWind:
		return "wind"
	case KindHoverDrain:
		return "hover"
	case KindUploadFail:
		return "upfail"
	case KindBandwidth:
		return "bw"
	case KindDropout:
		return "dropout"
	case KindNoHover:
		return "nohover"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Open marks the open end of a Range.
const Open = -1

// Range is an inclusive integer interval; To == Open means unbounded.
type Range struct {
	From, To int
}

// AllRange matches every index.
var AllRange = Range{From: 0, To: Open}

// Contains reports whether i lies in the range.
func (r Range) Contains(i int) bool {
	return i >= r.From && (r.To == Open || i <= r.To)
}

func (r Range) validate(what string) error {
	if r.From < 0 {
		return fmt.Errorf("faults: %s range starts at %d, must be ≥ 0", what, r.From)
	}
	if r.To != Open && r.To < r.From {
		return fmt.Errorf("faults: %s range %d-%d is inverted", what, r.From, r.To)
	}
	return nil
}

// AllSensors matches every sensor in sensor-scoped events.
const AllSensors = -1

// Event is one typed fault with its activation predicate. Which fields are
// meaningful depends on Kind: Legs for wind; Stops and Sensor for hover
// drain, upload failure, bandwidth, and dropout; Zone for no-hover.
type Event struct {
	Kind Kind
	// Legs is the flight-leg index range a wind event covers. Legs are
	// counted in execution order, the return leg included.
	Legs Range
	// Stops is the executed-stop index range for stop-scoped events.
	// Stops are counted in execution order, so the predicate stays
	// well-defined when mid-flight replanning rewrites the tour.
	Stops Range
	// Sensor restricts upload events to one sensor; AllSensors matches
	// every sensor.
	Sensor int
	// Factor is the multiplicative disturbance (wind, hover drain,
	// bandwidth). Must be positive and finite.
	Factor float64
	// Zone is the forbidden hover disk for KindNoHover.
	Zone geom.Circle
}

// Validate checks the event's parameters.
func (e Event) Validate() error {
	switch e.Kind {
	case KindWind:
		if err := e.Legs.validate("leg"); err != nil {
			return err
		}
		return validFactor(e.Factor)
	case KindHoverDrain, KindBandwidth:
		if err := e.Stops.validate("stop"); err != nil {
			return err
		}
		if e.Sensor < AllSensors {
			return fmt.Errorf("faults: invalid sensor %d", e.Sensor)
		}
		return validFactor(e.Factor)
	case KindUploadFail, KindDropout:
		if e.Sensor < AllSensors {
			return fmt.Errorf("faults: invalid sensor %d", e.Sensor)
		}
		return e.Stops.validate("stop")
	case KindNoHover:
		if !(e.Zone.R > 0) || math.IsInf(e.Zone.R, 1) || math.IsNaN(e.Zone.R) {
			return fmt.Errorf("faults: no-hover zone radius %v must be positive and finite", e.Zone.R)
		}
		if math.IsNaN(e.Zone.C.X) || math.IsNaN(e.Zone.C.Y) || math.IsInf(e.Zone.C.X, 0) || math.IsInf(e.Zone.C.Y, 0) {
			return fmt.Errorf("faults: no-hover zone centre %v is not finite", e.Zone.C)
		}
		return nil
	default:
		return fmt.Errorf("faults: unknown event kind %d", int(e.Kind))
	}
}

func validFactor(f float64) error {
	if !(f > 0) || math.IsInf(f, 1) || math.IsNaN(f) {
		return fmt.Errorf("faults: factor %v must be positive and finite", f)
	}
	return nil
}

// matchesSensor reports whether the event's sensor predicate covers v.
func (e Event) matchesSensor(v int) bool {
	return e.Sensor == AllSensors || e.Sensor == v
}

// Schedule is a composable set of fault events. The zero value and the nil
// pointer are both the empty schedule: every factor is 1, nothing fails,
// no zone is forbidden. Schedules are immutable once built and safe for
// concurrent readers.
type Schedule struct {
	Events []Event
}

// Validate checks every event.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Empty reports whether the schedule perturbs anything.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// LegFactor returns the composed travel-energy factor for flight leg
// `leg` (execution order, return leg included): the product of every
// active wind event's factor, 1 when none applies.
func (s *Schedule) LegFactor(leg int) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		if e.Kind == KindWind && e.Legs.Contains(leg) {
			f *= e.Factor
		}
	}
	return f
}

// HoverFactor returns the composed hover-power factor for the stop-th
// executed stop.
func (s *Schedule) HoverFactor(stop int) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		if e.Kind == KindHoverDrain && e.Stops.Contains(stop) {
			f *= e.Factor
		}
	}
	return f
}

// UploadFactor returns the composed uplink-rate factor for sensor v at the
// stop-th executed stop: 0 when an upload failure or dropout silences the
// sensor, otherwise the product of active bandwidth factors.
func (s *Schedule) UploadFactor(stop, sensor int) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		switch e.Kind {
		case KindUploadFail, KindDropout:
			if e.matchesSensor(sensor) && e.Stops.Contains(stop) {
				return 0
			}
		case KindBandwidth:
			if e.matchesSensor(sensor) && e.Stops.Contains(stop) {
				f *= e.Factor
			}
		}
	}
	return f
}

// NoHoverAt reports whether hovering is forbidden at ground position p.
func (s *Schedule) NoHoverAt(p geom.Point) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == KindNoHover && e.Zone.Contains(p) {
			return true
		}
	}
	return false
}

// MaxLegFactor returns an upper bound on LegFactor over every leg index:
// the product of max(factor, 1) over all wind events (overlapping ranges
// compose multiplicatively). The adaptive executor prices its fly-home
// reserve with this bound.
func (s *Schedule) MaxLegFactor() float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		if e.Kind == KindWind && e.Factor > 1 {
			f *= e.Factor
		}
	}
	return f
}

// MaxHoverFactor returns the analogous upper bound on HoverFactor.
func (s *Schedule) MaxHoverFactor() float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		if e.Kind == KindHoverDrain && e.Factor > 1 {
			f *= e.Factor
		}
	}
	return f
}
