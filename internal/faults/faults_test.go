package faults

import (
	"reflect"
	"strings"
	"testing"

	"uavdc/internal/geom"
)

func TestEmptyScheduleIsIdentity(t *testing.T) {
	for _, s := range []*Schedule{nil, {}} {
		if f := s.LegFactor(3); f != 1 {
			t.Errorf("LegFactor = %v", f)
		}
		if f := s.HoverFactor(0); f != 1 {
			t.Errorf("HoverFactor = %v", f)
		}
		if f := s.UploadFactor(2, 5); f != 1 {
			t.Errorf("UploadFactor = %v", f)
		}
		if s.NoHoverAt(geom.Pt(1, 1)) {
			t.Error("empty schedule forbids hovering")
		}
		if s.MaxLegFactor() != 1 || s.MaxHoverFactor() != 1 {
			t.Error("empty schedule has non-unit worst case")
		}
		if !s.Empty() {
			t.Error("Empty() = false")
		}
	}
}

func TestScheduleComposition(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindWind, Legs: Range{From: 1, To: 2}, Factor: 1.5, Sensor: AllSensors},
		{Kind: KindWind, Legs: Range{From: 2, To: Open}, Factor: 1.2, Sensor: AllSensors},
		{Kind: KindHoverDrain, Stops: Range{From: 0, To: Open}, Factor: 1.1, Sensor: AllSensors},
		{Kind: KindBandwidth, Stops: Range{From: 1, To: 1}, Factor: 0.5, Sensor: AllSensors},
		{Kind: KindBandwidth, Stops: Range{From: 1, To: 3}, Factor: 0.8, Sensor: 7},
		{Kind: KindUploadFail, Stops: Range{From: 4, To: 4}, Sensor: 3},
		{Kind: KindDropout, Stops: Range{From: 5, To: Open}, Sensor: 9},
		{Kind: KindNoHover, Zone: geom.Circle{C: geom.Pt(100, 100), R: 30}, Sensor: AllSensors},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if f := s.LegFactor(0); f != 1 {
		t.Errorf("leg 0 factor %v", f)
	}
	if f := s.LegFactor(1); f != 1.5 {
		t.Errorf("leg 1 factor %v", f)
	}
	// Overlapping wind events compose multiplicatively (runtime product,
	// not the exact constant-folded 1.8).
	prod := 1.0
	prod *= 1.5
	prod *= 1.2
	if f := s.LegFactor(2); f != prod {
		t.Errorf("leg 2 factor %v, want overlapping product %v", f, prod)
	}
	if f := s.LegFactor(10); f != 1.2 {
		t.Errorf("leg 10 factor %v", f)
	}
	if got := s.MaxLegFactor(); got != prod {
		t.Errorf("MaxLegFactor %v, want %v", got, prod)
	}
	if f := s.HoverFactor(3); f != 1.1 {
		t.Errorf("hover factor %v", f)
	}
	// Sensor 7 at stop 1: both bandwidth events compose.
	if f := s.UploadFactor(1, 7); f != 0.5*0.8 {
		t.Errorf("upload factor %v", f)
	}
	// Sensor 0 at stop 1: only the all-sensor degradation.
	if f := s.UploadFactor(1, 0); f != 0.5 {
		t.Errorf("upload factor %v", f)
	}
	// Upload failure wins over any factor.
	if f := s.UploadFactor(4, 3); f != 0 {
		t.Errorf("failed upload factor %v", f)
	}
	if f := s.UploadFactor(4, 2); f == 0 {
		t.Error("failure leaked to wrong sensor")
	}
	// Dropout is open-ended.
	if s.UploadFactor(4, 9) != 1 || s.UploadFactor(5, 9) != 0 || s.UploadFactor(50, 9) != 0 {
		t.Error("dropout predicate wrong")
	}
	if !s.NoHoverAt(geom.Pt(110, 95)) || s.NoHoverAt(geom.Pt(200, 200)) {
		t.Error("no-hover zone predicate wrong")
	}
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"wind:legs=2-5,factor=1.3",
		"wind:legs=0-,factor=1.25;hover:stops=0-,factor=1.1",
		DefaultSpec,
		"upfail:stop=3,sensor=7",
		"upfail:stops=3-4",
		"dropout:after=2,sensor=1",
		"bw:stops=1-4,factor=0.5,sensor=2",
		"nohover:x=120.5,y=80,r=40",
		"rand:seed=7,n=5,severity=0.3,side=350",
		"rand:seed=7,n=5",
		" wind : legs = 1 , factor = 2 ",
	}
	for _, spec := range specs {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", spec, canon, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("round trip of %q changed the schedule:\n  %q\n  %q", spec, canon, s2.String())
		}
		if canon != s2.String() {
			t.Errorf("String not a fixed point for %q: %q vs %q", spec, canon, s2.String())
		}
	}
}

func TestParseRejectsCorruptSpecs(t *testing.T) {
	bad := []string{
		"wind",                          // no params
		"gust:legs=1,factor=2",          // unknown kind
		"wind:legs=1,factor=0",          // non-positive factor
		"wind:legs=1,factor=NaN",        // NaN factor
		"wind:legs=1,factor=+Inf",       // infinite factor
		"wind:legs=5-2,factor=1.1",      // inverted range
		"wind:legs=-3,factor=1.1",       // negative index
		"wind:legs=3--1,factor=1.1",     // negative range end
		"wind:legs=1,speed=3",           // unknown key
		"wind:legs=1,legs=2,factor=1.1", // duplicate key
		"wind:legs",                     // key without value
		"nohover:x=1,y=1,r=0",           // zero-radius zone
		"nohover:x=NaN,y=1,r=5",         // non-finite centre
		"upfail:sensor=-2",              // invalid sensor
		"rand:seed=1,n=0",               // n out of range
		"rand:seed=1,n=500",             // n out of range
		"rand:seed=1,n=3,severity=2",    // severity out of range
		"rand:n=3",                      // rand without seed is fine? seed defaults 0 — keep valid
	}
	for _, spec := range bad {
		if spec == "rand:n=3" {
			continue // documented default, covered in round-trip test
		}
		if s, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted: %v", spec, s)
		}
	}
}

func TestRandomReplaysBitIdentically(t *testing.T) {
	a := Random(42, 16, 0.4, 350)
	b := Random(42, 16, 0.4, 350)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("random schedule invalid: %v", err)
	}
	c := Random(43, 16, 0.4, 350)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	// The spec-grammar rand clause replays identically too, and expands to
	// the same events as the direct constructor.
	s1, err := Parse("rand:seed=42,n=16,severity=0.4,side=350")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, a) {
		t.Error("rand clause and Random(seed) disagree")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindWind; k <= KindNoHover; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind String")
	}
}
