package faults

import (
	"reflect"
	"testing"
)

// FuzzFaultSchedule hardens the -faults spec parser and schedule
// application: arbitrary input must either be rejected with an error or
// produce a valid schedule that (1) canonicalises to a fixed point,
// (2) round-trips through Parse∘String unchanged, and (3) answers every
// query with finite, well-formed values — never a panic.
func FuzzFaultSchedule(f *testing.F) {
	f.Add("")
	f.Add(DefaultSpec)
	f.Add("wind:legs=2-5,factor=1.3;upfail:stop=3,sensor=7")
	f.Add("rand:seed=9,n=8,severity=0.5,side=200")
	f.Add("nohover:x=120,y=80,r=40;dropout:after=3,sensor=2")
	f.Add("wind:legs=1e9,factor=-0")
	f.Add(";;;")
	f.Add("wind:legs=0-,factor=1.7976931348623157e308")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := Parse(spec)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid schedule: %v", err)
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the schedule: %q vs %q", canon, s2.String())
		}
		if canon != s2.String() {
			t.Fatalf("String not a fixed point: %q vs %q", canon, s2.String())
		}
		// Schedule application must be total and sane on any index.
		for _, i := range []int{0, 1, 7, 1 << 20} {
			if f := s.LegFactor(i); !(f > 0) {
				t.Fatalf("LegFactor(%d) = %v", i, f)
			}
			if f := s.HoverFactor(i); !(f > 0) {
				t.Fatalf("HoverFactor(%d) = %v", i, f)
			}
			if f := s.UploadFactor(i, i%64); f < 0 {
				t.Fatalf("UploadFactor(%d) = %v", i, f)
			}
		}
		if s.MaxLegFactor() < 1 || s.MaxHoverFactor() < 1 {
			t.Fatal("worst-case factor below 1")
		}
	})
}
