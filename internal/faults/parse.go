package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"uavdc/internal/geom"
)

// DefaultSpec is the standard moderate-severity schedule the bench harness
// and documentation examples use: a persistent 25 % headwind surcharge, a
// 10 % hover-drain surcharge, degraded bandwidth from the third executed
// stop onward, and a total upload blackout at stops 3–4. It is instance-
// independent (no zone, no per-sensor predicate), so the same spec applies
// to any scenario.
const DefaultSpec = "wind:legs=0-,factor=1.25;hover:stops=0-,factor=1.1;bw:stops=2-,factor=0.6;upfail:stops=3-4"

// Default returns the parsed DefaultSpec schedule.
func Default() *Schedule {
	s, err := Parse(DefaultSpec)
	if err != nil {
		panic("faults: DefaultSpec does not parse: " + err.Error())
	}
	return s
}

// Parse builds a Schedule from the -faults command-line grammar:
//
//	spec    := clause (';' clause)*
//	clause  := kind ':' kv (',' kv)*
//	kind    := wind | hover | upfail | bw | dropout | nohover | rand
//	kv      := key '=' value
//	range   := N | N-M | N-          (inclusive; trailing '-' is open)
//
// Clause keys by kind:
//
//	wind     legs=range  factor=F
//	hover    stops=range factor=F [sensor ignored]
//	bw       stops=range factor=F [sensor=V]
//	upfail   stops=range           [sensor=V]   (also: stop=N)
//	dropout  after=N               [sensor=V]
//	nohover  x=X y=Y r=R
//	rand     seed=S n=N [severity=F] [side=L]
//
// A rand clause expands deterministically into n concrete events (see
// Random); the same seed always replays bit-identically. The empty spec is
// the empty schedule. Corrupted specs return an error, never panic.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q has no kind (want kind:key=value,...)", clause)
		}
		kvs, err := parseKVs(rest)
		if err != nil {
			return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
		switch strings.TrimSpace(kind) {
		case "wind":
			ev := Event{Kind: KindWind, Sensor: AllSensors, Legs: AllRange, Factor: 1}
			if err := kvs.apply(map[string]func(string) error{
				"legs":   func(v string) (err error) { ev.Legs, err = parseRange(v); return },
				"factor": func(v string) (err error) { ev.Factor, err = parseFloat(v); return },
			}); err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			s.Events = append(s.Events, ev)
		case "hover":
			ev := Event{Kind: KindHoverDrain, Sensor: AllSensors, Stops: AllRange, Factor: 1}
			if err := kvs.apply(map[string]func(string) error{
				"stops":  func(v string) (err error) { ev.Stops, err = parseRange(v); return },
				"factor": func(v string) (err error) { ev.Factor, err = parseFloat(v); return },
			}); err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			s.Events = append(s.Events, ev)
		case "bw":
			ev := Event{Kind: KindBandwidth, Sensor: AllSensors, Stops: AllRange, Factor: 1}
			if err := kvs.apply(map[string]func(string) error{
				"stops":  func(v string) (err error) { ev.Stops, err = parseRange(v); return },
				"factor": func(v string) (err error) { ev.Factor, err = parseFloat(v); return },
				"sensor": func(v string) (err error) { ev.Sensor, err = parseInt(v); return },
			}); err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			s.Events = append(s.Events, ev)
		case "upfail":
			ev := Event{Kind: KindUploadFail, Sensor: AllSensors, Stops: AllRange}
			if err := kvs.apply(map[string]func(string) error{
				"stops": func(v string) (err error) { ev.Stops, err = parseRange(v); return },
				"stop": func(v string) error {
					n, err := parseInt(v)
					ev.Stops = Range{From: n, To: n}
					return err
				},
				"sensor": func(v string) (err error) { ev.Sensor, err = parseInt(v); return },
			}); err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			s.Events = append(s.Events, ev)
		case "dropout":
			ev := Event{Kind: KindDropout, Sensor: AllSensors, Stops: AllRange}
			if err := kvs.apply(map[string]func(string) error{
				"after": func(v string) error {
					n, err := parseInt(v)
					ev.Stops = Range{From: n, To: Open}
					return err
				},
				"sensor": func(v string) (err error) { ev.Sensor, err = parseInt(v); return },
			}); err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			s.Events = append(s.Events, ev)
		case "nohover":
			ev := Event{Kind: KindNoHover, Sensor: AllSensors}
			if err := kvs.apply(map[string]func(string) error{
				"x": func(v string) (err error) { ev.Zone.C.X, err = parseFloat(v); return },
				"y": func(v string) (err error) { ev.Zone.C.Y, err = parseFloat(v); return },
				"r": func(v string) (err error) { ev.Zone.R, err = parseFloat(v); return },
			}); err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			s.Events = append(s.Events, ev)
		case "rand":
			var seed int64
			n := 0
			severity := 0.3
			side := 0.0
			if err := kvs.apply(map[string]func(string) error{
				"seed": func(v string) error {
					x, err := strconv.ParseInt(v, 10, 64)
					seed = x
					return err
				},
				"n":        func(v string) (err error) { n, err = parseInt(v); return },
				"severity": func(v string) (err error) { severity, err = parseFloat(v); return },
				"side":     func(v string) (err error) { side, err = parseFloat(v); return },
			}); err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			if n < 1 || n > 64 {
				return nil, fmt.Errorf("faults: clause %q: n=%d outside 1..64", clause, n)
			}
			if !(severity > 0) || severity > 1 || math.IsNaN(severity) {
				return nil, fmt.Errorf("faults: clause %q: severity %v outside (0, 1]", clause, severity)
			}
			if side < 0 || math.IsNaN(side) || math.IsInf(side, 0) {
				return nil, fmt.Errorf("faults: clause %q: invalid side %v", clause, side)
			}
			r := Random(seed, n, severity, side)
			s.Events = append(s.Events, r.Events...)
		default:
			return nil, fmt.Errorf("faults: unknown clause kind %q (want wind, hover, upfail, bw, dropout, nohover, rand)", kind)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// String renders the schedule back into the spec grammar in canonical form
// (rand clauses were expanded at parse time, so the output is the literal
// event list). Parse(s.String()) reconstructs an identical schedule, and
// String is a fixed point: Parse(x).String() == Parse(Parse(x).String()).String().
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	parts := make([]string, 0, len(s.Events))
	for _, e := range s.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ";")
}

// String renders one event as a spec clause.
func (e Event) String() string {
	switch e.Kind {
	case KindWind:
		return fmt.Sprintf("wind:legs=%s,factor=%s", e.Legs, ftoa(e.Factor))
	case KindHoverDrain:
		return fmt.Sprintf("hover:stops=%s,factor=%s", e.Stops, ftoa(e.Factor))
	case KindBandwidth:
		if e.Sensor != AllSensors {
			return fmt.Sprintf("bw:stops=%s,factor=%s,sensor=%d", e.Stops, ftoa(e.Factor), e.Sensor)
		}
		return fmt.Sprintf("bw:stops=%s,factor=%s", e.Stops, ftoa(e.Factor))
	case KindUploadFail:
		if e.Sensor != AllSensors {
			return fmt.Sprintf("upfail:stops=%s,sensor=%d", e.Stops, e.Sensor)
		}
		return fmt.Sprintf("upfail:stops=%s", e.Stops)
	case KindDropout:
		if e.Sensor != AllSensors {
			return fmt.Sprintf("dropout:after=%d,sensor=%d", e.Stops.From, e.Sensor)
		}
		return fmt.Sprintf("dropout:after=%d", e.Stops.From)
	case KindNoHover:
		return fmt.Sprintf("nohover:x=%s,y=%s,r=%s", ftoa(e.Zone.C.X), ftoa(e.Zone.C.Y), ftoa(e.Zone.R))
	default:
		return fmt.Sprintf("unknown:kind=%d", int(e.Kind))
	}
}

// String renders a range in the spec grammar.
func (r Range) String() string {
	if r.To == Open {
		return fmt.Sprintf("%d-", r.From)
	}
	if r.To == r.From {
		return strconv.Itoa(r.From)
	}
	return fmt.Sprintf("%d-%d", r.From, r.To)
}

// Random generates a deterministic pseudo-random schedule of n events with
// the given severity in (0, 1]: wind surcharges up to 1+severity, hover
// drains up to 1+severity/2, bandwidth degradations down to 1−0.9·severity,
// upload failures, and dropouts. When side > 0 it may also place no-hover
// zones inside the side×side region. The same (seed, n, severity, side)
// always replays bit-identically.
func Random(seed int64, n int, severity, side float64) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Events: make([]Event, 0, n)}
	kinds := []Kind{KindWind, KindHoverDrain, KindBandwidth, KindUploadFail, KindDropout}
	if side > 0 {
		kinds = append(kinds, KindNoHover)
	}
	for i := 0; i < n; i++ {
		k := kinds[rng.Intn(len(kinds))]
		ev := Event{Kind: k, Sensor: AllSensors}
		span := func() Range {
			from := rng.Intn(8)
			if rng.Intn(2) == 0 {
				return Range{From: from, To: Open}
			}
			return Range{From: from, To: from + rng.Intn(6)}
		}
		switch k {
		case KindWind:
			ev.Legs = span()
			ev.Factor = 1 + rng.Float64()*severity
		case KindHoverDrain:
			ev.Stops = span()
			ev.Factor = 1 + rng.Float64()*severity/2
		case KindBandwidth:
			ev.Stops = span()
			ev.Factor = 1 - 0.9*severity*rng.Float64()
		case KindUploadFail:
			ev.Stops = span()
			ev.Sensor = rng.Intn(64)
		case KindDropout:
			ev.Stops = Range{From: rng.Intn(10), To: Open}
			ev.Sensor = rng.Intn(64)
		case KindNoHover:
			ev.Zone = geom.Circle{
				C: geom.Pt(rng.Float64()*side, rng.Float64()*side),
				R: (0.05 + 0.15*rng.Float64()) * side,
			}
		}
		s.Events = append(s.Events, ev)
	}
	return s
}

// ftoa formats a float so that parsing it back returns the identical bits.
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// kvList preserves clause key order while rejecting duplicates.
type kvList []struct{ key, val string }

func parseKVs(rest string) (kvList, error) {
	var kvs kvList
	seen := map[string]bool{}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("parameter %q has no value (want key=value)", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return nil, fmt.Errorf("duplicate parameter %q", key)
		}
		seen[key] = true
		kvs = append(kvs, struct{ key, val string }{key, val})
	}
	return kvs, nil
}

// apply dispatches every parsed key to its setter, erroring on unknown keys.
func (kvs kvList) apply(setters map[string]func(string) error) error {
	for _, kv := range kvs {
		set, ok := setters[kv.key]
		if !ok {
			keys := make([]string, 0, len(setters))
			for k := range setters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return fmt.Errorf("unknown parameter %q (want %s)", kv.key, strings.Join(keys, ", "))
		}
		if err := set(kv.val); err != nil {
			return fmt.Errorf("parameter %s=%s: %w", kv.key, kv.val, err)
		}
	}
	return nil
}

func parseRange(v string) (Range, error) {
	lo, hi, dash := strings.Cut(v, "-")
	from, err := parseInt(lo)
	if err != nil {
		return Range{}, err
	}
	if !dash {
		return Range{From: from, To: from}, nil
	}
	if strings.TrimSpace(hi) == "" {
		return Range{From: from, To: Open}, nil
	}
	to, err := parseInt(hi)
	if err != nil {
		return Range{}, err
	}
	if to < 0 {
		return Range{}, fmt.Errorf("negative range end %d", to)
	}
	return Range{From: from, To: to}, nil
}

func parseInt(v string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil {
		return 0, fmt.Errorf("invalid integer %q", v)
	}
	return n, nil
}

func parseFloat(v string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil {
		return 0, fmt.Errorf("invalid number %q", v)
	}
	return f, nil
}
