// Package feq provides the canonical float-comparison helpers the
// planner packages use instead of == / != on floating-point values.
//
// uavlint's floateq analyzer forbids direct float equality in
// internal/core, internal/energy, internal/geom and internal/tsp: exact
// comparison of computed floats is almost always a latent bug (two
// mathematically equal energies rarely compare equal after different
// summation orders), and when exact comparison *is* intended — sentinel
// zeros, dedup of verbatim copies, "did the incumbent change" checks —
// the site must say so, either by calling these helpers or by carrying
// an //uavdc:allow floateq annotation explaining why bit-equality is
// correct there.
//
// The helpers are deliberately tiny and allocation-free so hot planner
// loops can use them without cost.
package feq

import "math"

// Tol is the default absolute/relative tolerance. It matches the 1e-9
// slack the planners already use for budget feasibility checks: small
// enough to separate distinct candidate energies, large enough to absorb
// summation-order noise.
const Tol = 1e-9

// Eq reports whether a and b are equal within the default tolerance,
// absolute for small magnitudes and relative for large ones. NaNs are
// never equal; equal infinities are.
func Eq(a, b float64) bool { return Near(a, b, Tol) }

// Near reports whether |a-b| ≤ tol·max(1, |a|, |b|). It is symmetric in
// a and b and monotone in tol. NaNs are never near anything; equal
// infinities are near (their difference is NaN but they compare bitwise
// equal first).
func Near(a, b, tol float64) bool {
	if a == b { //uavdc:allow floateq bitwise fast path and infinity handling of the canonical helper itself
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities; tol·Inf would swallow anything
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}

// Zero reports whether x is zero within the default absolute tolerance.
func Zero(x float64) bool { return math.Abs(x) <= Tol }

// Less reports whether a is smaller than b by more than the default
// tolerance — a strict "definitely improves" comparison for greedy
// incumbent updates.
func Less(a, b float64) bool { return a < b && !Eq(a, b) }
