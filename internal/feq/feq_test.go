package feq

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{1e12, 1e12 + 1, true}, // relative tolerance at large magnitude
		{1e-12, -1e-12, true},  // absolute tolerance near zero
		{0, 1e-6, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 0, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Eq(c.b, c.a); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v (asymmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-12) || !Zero(-1e-12) {
		t.Error("Zero rejects values inside the tolerance")
	}
	if Zero(1e-6) || Zero(math.NaN()) || Zero(math.Inf(1)) {
		t.Error("Zero accepts values outside the tolerance")
	}
}

func TestLess(t *testing.T) {
	if !Less(1, 2) {
		t.Error("Less(1, 2) = false")
	}
	if Less(2, 1) || Less(1, 1) || Less(1, 1+1e-12) {
		t.Error("Less accepts non-improvements")
	}
}
