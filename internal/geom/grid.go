package geom

import (
	"fmt"
	"math"
)

// Grid is the δ-square partition of a rectangular monitoring region
// (Section III-B of the paper). The region is divided into Cols × Rows
// squares of edge length Delta; the centre of each square is a candidate
// hovering location for the UAV.
//
// Squares are addressed either by (col, row) or by a single linear index
// idx = row*Cols + col.
type Grid struct {
	Region Rect
	Delta  float64
	Cols   int
	Rows   int
}

// NewGrid partitions region into squares of edge length delta.
// The last column/row may extend past the region boundary when the region's
// extent is not an exact multiple of delta, matching the paper's "partition
// into M equal squares" abstraction. delta must be positive and the region
// non-degenerate.
func NewGrid(region Rect, delta float64) (*Grid, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("geom: grid delta must be positive, got %v", delta)
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("geom: degenerate region %v", region)
	}
	cols := int(math.Ceil(region.Width() / delta))
	rows := int(math.Ceil(region.Height() / delta))
	return &Grid{Region: region, Delta: delta, Cols: cols, Rows: rows}, nil
}

// NumSquares returns M, the total number of squares in the partition.
func (g *Grid) NumSquares() int { return g.Cols * g.Rows }

// Center returns the centre of square idx.
func (g *Grid) Center(idx int) Point {
	col, row := idx%g.Cols, idx/g.Cols
	return Point{
		X: g.Region.Min.X + (float64(col)+0.5)*g.Delta,
		Y: g.Region.Min.Y + (float64(row)+0.5)*g.Delta,
	}
}

// Square returns the rectangle of square idx.
func (g *Grid) Square(idx int) Rect {
	col, row := idx%g.Cols, idx/g.Cols
	min := Point{
		X: g.Region.Min.X + float64(col)*g.Delta,
		Y: g.Region.Min.Y + float64(row)*g.Delta,
	}
	return Rect{Min: min, Max: Point{min.X + g.Delta, min.Y + g.Delta}}
}

// IndexOf returns the linear index of the square containing p, clamping
// points on or past the boundary into the nearest edge square. The second
// result is false if p lies outside the region entirely (beyond clamping
// tolerance of one square).
func (g *Grid) IndexOf(p Point) (int, bool) {
	inside := g.Region.Contains(p)
	col := int(math.Floor((p.X - g.Region.Min.X) / g.Delta))
	row := int(math.Floor((p.Y - g.Region.Min.Y) / g.Delta))
	col = clampInt(col, 0, g.Cols-1)
	row = clampInt(row, 0, g.Rows-1)
	return row*g.Cols + col, inside
}

// SquaresNear returns the linear indices of all squares whose centre lies
// within radius of p. This is the candidate-generation primitive: the set of
// hovering locations from which the UAV could cover a device at p has
// exactly this form. Indices are returned in ascending order.
func (g *Grid) SquaresNear(p Point, radius float64) []int {
	if radius < 0 {
		return nil
	}
	// Centres live on a lattice offset by Delta/2; bound the candidate
	// col/row window, then test exactly.
	minCol := int(math.Floor((p.X-radius-g.Region.Min.X)/g.Delta - 0.5))
	maxCol := int(math.Ceil((p.X+radius-g.Region.Min.X)/g.Delta - 0.5))
	minRow := int(math.Floor((p.Y-radius-g.Region.Min.Y)/g.Delta - 0.5))
	maxRow := int(math.Ceil((p.Y+radius-g.Region.Min.Y)/g.Delta - 0.5))
	minCol = clampInt(minCol, 0, g.Cols-1)
	maxCol = clampInt(maxCol, 0, g.Cols-1)
	minRow = clampInt(minRow, 0, g.Rows-1)
	maxRow = clampInt(maxRow, 0, g.Rows-1)

	r2 := radius * radius
	var out []int
	for row := minRow; row <= maxRow; row++ {
		cy := g.Region.Min.Y + (float64(row)+0.5)*g.Delta
		dy := cy - p.Y
		for col := minCol; col <= maxCol; col++ {
			cx := g.Region.Min.X + (float64(col)+0.5)*g.Delta
			dx := cx - p.X
			if dx*dx+dy*dy <= r2+1e-9 {
				out = append(out, row*g.Cols+col)
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
