package geom

import (
	"testing"
)

// bruteSquaresNear is the reference for SquaresNear: test every centre.
func bruteSquaresNear(g *Grid, p Point, radius float64) []int {
	if radius < 0 {
		return nil
	}
	r2 := radius * radius
	var out []int
	for idx := 0; idx < g.NumSquares(); idx++ {
		c := g.Center(idx)
		dx, dy := c.X-p.X, c.Y-p.Y
		if dx*dx+dy*dy <= r2+1e-9 {
			out = append(out, idx)
		}
	}
	return out
}

// TestSquaresNearEdgeCases pins the range query's behaviour on the
// boundary situations the candidate generator depends on: queries in
// empty corners, points exactly on cell boundaries and on centre circles,
// radii spanning the whole grid, and degenerate radii.
func TestSquaresNearEdgeCases(t *testing.T) {
	mk := func(w, h, delta float64) *Grid {
		g, err := NewGrid(Rect{Min: Point{0, 0}, Max: Point{w, h}}, delta)
		if err != nil {
			t.Fatalf("NewGrid: %v", err)
		}
		return g
	}
	cases := []struct {
		name   string
		grid   *Grid
		p      Point
		radius float64
		want   []int // nil means "compare against brute force only"
	}{
		{
			name:   "empty result far outside region",
			grid:   mk(100, 100, 10),
			p:      Point{500, 500},
			radius: 5,
			want:   []int{},
		},
		{
			name:   "radius zero off-centre hits nothing",
			grid:   mk(100, 100, 10),
			p:      Point{7, 7},
			radius: 0,
			want:   []int{},
		},
		{
			name:   "radius zero exactly on a centre",
			grid:   mk(100, 100, 10),
			p:      Point{15, 25},
			radius: 0,
			want:   []int{21},
		},
		{
			name:   "negative radius",
			grid:   mk(100, 100, 10),
			p:      Point{15, 25},
			radius: -1,
			want:   []int{},
		},
		{
			name:   "point on cell boundary, radius reaches both centres",
			grid:   mk(40, 10, 10),
			p:      Point{10, 5}, // shared edge of squares 0 and 1
			radius: 5,
			want:   []int{0, 1},
		},
		{
			name:   "point at grid corner",
			grid:   mk(20, 20, 10),
			p:      Point{0, 0},
			radius: 8,
			want:   []int{0},
		},
		{
			name:   "radius exactly the centre distance",
			grid:   mk(30, 10, 10),
			p:      Point{5, 5},
			radius: 10, // centre of square 1 is exactly 10 away
			want:   []int{0, 1},
		},
		{
			name:   "radius spans the whole grid",
			grid:   mk(30, 30, 10),
			p:      Point{15, 15},
			radius: 1000,
			want:   []int{0, 1, 2, 3, 4, 5, 6, 7, 8},
		},
		{
			name:   "query outside region with radius reaching the edge row",
			grid:   mk(30, 30, 10),
			p:      Point{15, -6},
			radius: 12,
			want:   []int{1},
		},
		{
			name:   "ragged last column still addressable",
			grid:   mk(25, 10, 10), // 3 cols, last extends past the region
			p:      Point{25, 5},
			radius: 1,
			want:   []int{2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.grid.SquaresNear(tc.p, tc.radius)
			if tc.want != nil {
				if len(got) != len(tc.want) {
					t.Fatalf("SquaresNear = %v, want %v", got, tc.want)
				}
				for i := range got {
					if got[i] != tc.want[i] {
						t.Fatalf("SquaresNear = %v, want %v", got, tc.want)
					}
				}
			}
			brute := bruteSquaresNear(tc.grid, tc.p, tc.radius)
			if len(got) != len(brute) {
				t.Fatalf("SquaresNear = %v, brute force = %v", got, brute)
			}
			for i := range got {
				if got[i] != brute[i] {
					t.Fatalf("SquaresNear = %v, brute force = %v", got, brute)
				}
			}
			// Ascending-order contract.
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("SquaresNear not strictly ascending: %v", got)
				}
			}
		})
	}
}
