package geom

import (
	"math/rand"
	"testing"
)

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(Square(100), 0); err == nil {
		t.Error("want error for delta = 0")
	}
	if _, err := NewGrid(Square(100), -5); err == nil {
		t.Error("want error for negative delta")
	}
	if _, err := NewGrid(Rect{}, 5); err == nil {
		t.Error("want error for degenerate region")
	}
}

func TestGridDimensions(t *testing.T) {
	cases := []struct {
		side  float64
		delta float64
		cols  int
	}{
		{1000, 5, 200},
		{1000, 10, 100},
		{1000, 30, 34}, // ceil(1000/30)
		{100, 100, 1},
		{100, 101, 1},
	}
	for _, tc := range cases {
		g, err := NewGrid(Square(tc.side), tc.delta)
		if err != nil {
			t.Fatal(err)
		}
		if g.Cols != tc.cols || g.Rows != tc.cols {
			t.Errorf("side=%v delta=%v: cols=%d rows=%d, want %d", tc.side, tc.delta, g.Cols, g.Rows, tc.cols)
		}
		if g.NumSquares() != tc.cols*tc.cols {
			t.Errorf("NumSquares = %d", g.NumSquares())
		}
	}
}

func TestGridCenterAndSquare(t *testing.T) {
	g, _ := NewGrid(Square(100), 10)
	if got := g.Center(0); got != Pt(5, 5) {
		t.Errorf("Center(0) = %v", got)
	}
	// Square index 12 = row 1, col 2.
	if got := g.Center(12); got != Pt(25, 15) {
		t.Errorf("Center(12) = %v", got)
	}
	sq := g.Square(12)
	if sq.Min != Pt(20, 10) || sq.Max != Pt(30, 20) {
		t.Errorf("Square(12) = %+v", sq)
	}
}

func TestGridIndexOfRoundTrip(t *testing.T) {
	g, _ := NewGrid(Square(1000), 7)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		p := Pt(rng.Float64()*1000, rng.Float64()*1000)
		idx, ok := g.IndexOf(p)
		if !ok {
			t.Fatalf("point %v inside region reported outside", p)
		}
		if !g.Square(idx).Contains(p) {
			t.Fatalf("point %v not inside its square %d = %+v", p, idx, g.Square(idx))
		}
	}
}

func TestGridIndexOfOutside(t *testing.T) {
	g, _ := NewGrid(Square(100), 10)
	idx, ok := g.IndexOf(Pt(-50, -50))
	if ok {
		t.Error("point far outside reported inside")
	}
	if idx != 0 {
		t.Errorf("outside point should clamp to corner square, got %d", idx)
	}
	idx, ok = g.IndexOf(Pt(100, 100))
	if !ok || idx != g.NumSquares()-1 {
		t.Errorf("max corner: idx=%d ok=%v", idx, ok)
	}
}

func TestSquaresNearMatchesBruteForce(t *testing.T) {
	g, _ := NewGrid(Square(300), 13)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := Pt(rng.Float64()*300, rng.Float64()*300)
		r := rng.Float64() * 80
		got := g.SquaresNear(p, r)
		var want []int
		for i := 0; i < g.NumSquares(); i++ {
			if g.Center(i).Dist(p) <= r+1e-9 {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d squares, want %d (p=%v r=%v)", trial, len(got), len(want), p, r)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSquaresNearNegativeRadius(t *testing.T) {
	g, _ := NewGrid(Square(100), 10)
	if got := g.SquaresNear(Pt(50, 50), -1); got != nil {
		t.Errorf("negative radius should yield nil, got %v", got)
	}
}

func TestSquaresNearCountBound(t *testing.T) {
	// Paper §IV: the number of squares covering one device is at most
	// ceil(pi*R0^2/delta^2) + O(perimeter). Sanity-check the asymptotic
	// count for an interior point.
	g, _ := NewGrid(Square(1000), 5)
	got := len(g.SquaresNear(Pt(500, 500), 50))
	// pi * 50^2 / 25 ≈ 314.16
	if got < 290 || got > 340 {
		t.Errorf("squares covering interior point = %d, want ≈ 314", got)
	}
}
