package geom

import (
	"math"
	"sort"
)

// Index is a uniform-grid spatial index over a static set of points. It
// answers "which points lie within radius r of q" in time proportional to
// the number of grid cells the query disk touches plus the number of hits,
// instead of O(n) per query.
//
// Coverage-set construction for the hovering-location candidates is the hot
// path that motivates this structure: at paper scale (δ = 5 m, 1 km²,
// R0 = 50 m) there are 40 000 candidate squares, each needing the set of
// sensors within 50 m.
type Index struct {
	pts   []Point
	cell  float64
	min   Point
	cols  int
	rows  int
	start []int32 // CSR-style offsets into order, len cols*rows+1
	order []int32 // point ids grouped by cell
}

// NewIndex builds an index over pts. cellSize controls the bucket edge
// length; a good default is the typical query radius. If cellSize <= 0 a
// heuristic based on point density is used. The index keeps a reference to
// pts; the caller must not mutate the slice afterwards.
func NewIndex(pts []Point, cellSize float64) *Index {
	idx := &Index{pts: pts}
	if len(pts) == 0 {
		idx.cell = 1
		idx.cols, idx.rows = 1, 1
		idx.start = make([]int32, 2)
		return idx
	}
	min := pts[0]
	max := pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	if cellSize <= 0 {
		// Aim for ~1 point per cell on average.
		area := math.Max(max.X-min.X, 1) * math.Max(max.Y-min.Y, 1)
		cellSize = math.Sqrt(area / float64(len(pts)))
		if cellSize <= 0 {
			cellSize = 1
		}
	}
	idx.cell = cellSize
	idx.min = min
	idx.cols = int((max.X-min.X)/cellSize) + 1
	idx.rows = int((max.Y-min.Y)/cellSize) + 1

	n := idx.cols * idx.rows
	counts := make([]int32, n+1)
	cellOf := make([]int32, len(pts))
	for i, p := range pts {
		c := idx.cellIndex(p)
		cellOf[i] = int32(c)
		counts[c+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	idx.start = counts
	idx.order = make([]int32, len(pts))
	next := make([]int32, n)
	copy(next, counts[:n])
	for i := range pts {
		c := cellOf[i]
		idx.order[next[c]] = int32(i)
		next[c]++
	}
	return idx
}

func (idx *Index) cellIndex(p Point) int {
	col := clampInt(int((p.X-idx.min.X)/idx.cell), 0, idx.cols-1)
	row := clampInt(int((p.Y-idx.min.Y)/idx.cell), 0, idx.rows-1)
	return row*idx.cols + col
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.pts) }

// Point returns the indexed point with id i.
func (idx *Index) Point(i int) Point { return idx.pts[i] }

// Within returns the ids of all points within radius r of q (boundary
// inclusive), in ascending id order. The result slice is freshly allocated.
func (idx *Index) Within(q Point, r float64) []int {
	return idx.WithinAppend(nil, q, r)
}

// WithinAppend is Within but appends into dst, which may be reused across
// calls to avoid allocation on hot paths.
func (idx *Index) WithinAppend(dst []int, q Point, r float64) []int {
	if len(idx.pts) == 0 || r < 0 {
		return dst
	}
	minCol := clampInt(int((q.X-r-idx.min.X)/idx.cell), 0, idx.cols-1)
	maxCol := clampInt(int((q.X+r-idx.min.X)/idx.cell), 0, idx.cols-1)
	minRow := clampInt(int((q.Y-r-idx.min.Y)/idx.cell), 0, idx.rows-1)
	maxRow := clampInt(int((q.Y+r-idx.min.Y)/idx.cell), 0, idx.rows-1)
	r2 := r*r + 1e-9
	base := len(dst)
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			c := row*idx.cols + col
			for _, id := range idx.order[idx.start[c]:idx.start[c+1]] {
				if idx.pts[id].Dist2(q) <= r2 {
					dst = append(dst, int(id))
				}
			}
		}
	}
	sort.Ints(dst[base:])
	return dst
}

// Nearest returns the id of the point closest to q and its distance.
// It returns (-1, +Inf) when the index is empty.
func (idx *Index) Nearest(q Point) (int, float64) {
	if len(idx.pts) == 0 {
		return -1, math.Inf(1)
	}
	// Expanding ring search over cells.
	qc := idx.cellIndex(q)
	qCol, qRow := qc%idx.cols, qc/idx.cols
	best := -1
	best2 := math.Inf(1)
	maxRing := idx.cols
	if idx.rows > maxRing {
		maxRing = idx.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once a hit exists, stop when the ring's minimum possible
		// distance exceeds the best found.
		if best >= 0 {
			minPossible := (float64(ring) - 1) * idx.cell
			if minPossible > 0 && minPossible*minPossible > best2 {
				break
			}
		}
		for row := qRow - ring; row <= qRow+ring; row++ {
			if row < 0 || row >= idx.rows {
				continue
			}
			for col := qCol - ring; col <= qCol+ring; col++ {
				if col < 0 || col >= idx.cols {
					continue
				}
				// Only the ring boundary; the interior was scanned earlier.
				if ring > 0 && row != qRow-ring && row != qRow+ring && col != qCol-ring && col != qCol+ring {
					continue
				}
				c := row*idx.cols + col
				for _, id := range idx.order[idx.start[c]:idx.start[c+1]] {
					if d2 := idx.pts[id].Dist2(q); d2 < best2 {
						best2 = d2
						best = int(id)
					}
				}
			}
		}
	}
	return best, math.Sqrt(best2)
}
