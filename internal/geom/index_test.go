package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(n int, side float64, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return pts
}

func TestIndexEmpty(t *testing.T) {
	idx := NewIndex(nil, 10)
	if idx.Len() != 0 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if got := idx.Within(Pt(0, 0), 100); len(got) != 0 {
		t.Errorf("Within on empty = %v", got)
	}
	if id, d := idx.Nearest(Pt(0, 0)); id != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest on empty = %d, %v", id, d)
	}
}

func TestIndexWithinMatchesBruteForce(t *testing.T) {
	pts := randomPoints(400, 1000, 3)
	for _, cell := range []float64{0, 10, 50, 500} {
		idx := NewIndex(pts, cell)
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 60; trial++ {
			q := Pt(rng.Float64()*1100-50, rng.Float64()*1100-50)
			r := rng.Float64() * 120
			got := idx.Within(q, r)
			var want []int
			for i, p := range pts {
				if p.Dist(q) <= r+1e-9 {
					want = append(want, i)
				}
			}
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("cell=%v trial=%d: got %d hits, want %d", cell, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cell=%v trial=%d: hit %d: %d vs %d", cell, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestIndexWithinBoundary(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(50, 0), Pt(50.0001, 0)}
	idx := NewIndex(pts, 25)
	got := idx.Within(Pt(0, 0), 50)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("boundary inclusion wrong: %v", got)
	}
}

func TestIndexWithinAppendReuse(t *testing.T) {
	pts := randomPoints(100, 100, 5)
	idx := NewIndex(pts, 10)
	buf := make([]int, 0, 64)
	a := idx.WithinAppend(buf, Pt(50, 50), 30)
	n1 := len(a)
	a = idx.WithinAppend(a[:0], Pt(50, 50), 30)
	if len(a) != n1 {
		t.Errorf("reuse changed result: %d vs %d", len(a), n1)
	}
}

func TestIndexNearestMatchesBruteForce(t *testing.T) {
	pts := randomPoints(300, 500, 11)
	idx := NewIndex(pts, 20)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		q := Pt(rng.Float64()*700-100, rng.Float64()*700-100)
		id, d := idx.Nearest(q)
		bestD := math.Inf(1)
		for _, p := range pts {
			if dd := p.Dist(q); dd < bestD {
				bestD = dd
			}
		}
		if math.Abs(d-bestD) > 1e-9 {
			t.Fatalf("trial %d: Nearest dist %v, brute force %v (id %d)", trial, d, bestD, id)
		}
	}
}

func TestIndexSinglePoint(t *testing.T) {
	idx := NewIndex([]Point{Pt(3, 4)}, 0)
	id, d := idx.Nearest(Pt(0, 0))
	if id != 0 || !almostEq(d, 5) {
		t.Errorf("Nearest = %d, %v", id, d)
	}
	if got := idx.Within(Pt(0, 0), 5); len(got) != 1 {
		t.Errorf("Within = %v", got)
	}
	if got := idx.Within(Pt(0, 0), 4.9); len(got) != 0 {
		t.Errorf("Within = %v", got)
	}
}

func TestIndexDuplicatePoints(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}
	idx := NewIndex(pts, 1)
	if got := idx.Within(Pt(1, 1), 0); len(got) != 3 {
		t.Errorf("duplicates: %v", got)
	}
}

func BenchmarkIndexWithin(b *testing.B) {
	pts := randomPoints(5000, 1000, 17)
	idx := NewIndex(pts, 50)
	buf := make([]int, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = idx.WithinAppend(buf[:0], Pt(float64(i%1000), 500), 50)
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	pts := randomPoints(5000, 1000, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndex(pts, 50)
	}
}

func TestIndexPointAccessor(t *testing.T) {
	pts := []Point{Pt(1, 2), Pt(3, 4)}
	idx := NewIndex(pts, 1)
	if idx.Point(1) != Pt(3, 4) {
		t.Errorf("Point(1) = %v", idx.Point(1))
	}
}
