package geom

// KNearest returns the ids of up to k indexed points nearest to q. See
// KNearestAppend.
func (idx *Index) KNearest(q Point, k int) []int32 {
	return idx.KNearestAppend(nil, q, k)
}

// KNearestAppend appends to dst the ids of up to k indexed points nearest
// to q, ordered by (squared distance, id) ascending. The id tie-break
// makes the result a total order, so duplicate and collinear points
// resolve identically to a brute-force scan — the FuzzKNNvsBrute harness
// holds the two implementations to exactly that contract. Fewer than k
// ids are returned only when the index holds fewer than k points.
//
// Like Nearest, the search expands cell rings outward from q's cell and
// stops once the ring's minimum possible distance strictly exceeds the
// kth-best squared distance; equal-distance points in farther rings are
// therefore still visited before the cutoff, which is what keeps ties
// exact.
func (idx *Index) KNearestAppend(dst []int32, q Point, k int) []int32 {
	if k <= 0 || len(idx.pts) == 0 {
		return dst
	}
	if k > len(idx.pts) {
		k = len(idx.pts)
	}
	type hit struct {
		d2 float64
		id int32
	}
	best := make([]hit, 0, k)
	add := func(id int32, d2 float64) {
		if len(best) == k {
			last := best[k-1]
			if d2 > last.d2 {
				return
			}
			if d2 == last.d2 && id > last.id { //uavdc:allow floateq exact tie-break against the kept worst keeps the (d2, id) order total and bit-reproducible
				return
			}
			best = best[:k-1]
		}
		i := len(best)
		best = append(best, hit{d2, id})
		for i > 0 {
			prev := best[i-1]
			if prev.d2 < d2 {
				break
			}
			if prev.d2 == d2 && prev.id < id { //uavdc:allow floateq exact tie-break keeps the (d2, id) order total and bit-reproducible
				break
			}
			best[i] = prev
			i--
		}
		best[i] = hit{d2, id}
	}

	qc := idx.cellIndex(q)
	qCol, qRow := qc%idx.cols, qc/idx.cols
	maxRing := idx.cols
	if idx.rows > maxRing {
		maxRing = idx.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		if len(best) == k {
			minPossible := (float64(ring) - 1) * idx.cell
			if minPossible > 0 && minPossible*minPossible > best[k-1].d2 {
				break
			}
		}
		for row := qRow - ring; row <= qRow+ring; row++ {
			if row < 0 || row >= idx.rows {
				continue
			}
			for col := qCol - ring; col <= qCol+ring; col++ {
				if col < 0 || col >= idx.cols {
					continue
				}
				// Only the ring boundary; the interior was scanned earlier.
				if ring > 0 && row != qRow-ring && row != qRow+ring && col != qCol-ring && col != qCol+ring {
					continue
				}
				c := row*idx.cols + col
				for _, id := range idx.order[idx.start[c]:idx.start[c+1]] {
					add(id, idx.pts[id].Dist2(q))
				}
			}
		}
	}
	for _, h := range best {
		dst = append(dst, h.id)
	}
	return dst
}
