package geom

import (
	"sort"
	"testing"
)

// bruteKNN is the reference implementation: sort all ids by
// (squared distance, id) and take the first k.
func bruteKNN(pts []Point, q Point, k int) []int32 {
	ids := make([]int32, len(pts))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := pts[ids[a]].Dist2(q), pts[ids[b]].Dist2(q)
		if da != db { // exact compare: tie-break mirrors KNearest's total order
			return da < db
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	if k < 0 {
		k = 0
	}
	return ids[:k]
}

func TestKNearestBasics(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
		q    Point
		k    int
		want []int32
	}{
		{
			name: "simple line",
			pts:  []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}},
			q:    Point{0.1, 0},
			k:    2,
			want: []int32{0, 1},
		},
		{
			name: "duplicates tie-break by id",
			pts:  []Point{{5, 5}, {5, 5}, {5, 5}, {0, 0}},
			q:    Point{5, 5},
			k:    2,
			want: []int32{0, 1},
		},
		{
			name: "collinear equidistant pair",
			pts:  []Point{{-1, 0}, {1, 0}, {3, 0}},
			q:    Point{0, 0},
			k:    2,
			want: []int32{0, 1},
		},
		{
			name: "k exceeds point count",
			pts:  []Point{{1, 1}, {2, 2}},
			q:    Point{0, 0},
			k:    10,
			want: []int32{0, 1},
		},
		{
			name: "k zero",
			pts:  []Point{{1, 1}},
			q:    Point{0, 0},
			k:    0,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idx := NewIndex(tc.pts, 1)
			got := idx.KNearest(tc.q, tc.k)
			if len(got) != len(tc.want) {
				t.Fatalf("KNearest = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("KNearest = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestKNearestEmptyIndex(t *testing.T) {
	idx := NewIndex(nil, 1)
	if got := idx.KNearest(Point{1, 2}, 3); len(got) != 0 {
		t.Fatalf("KNearest on empty index = %v, want empty", got)
	}
}

// FuzzKNNvsBrute checks that the expanding-ring kNN query agrees with the
// brute-force (distance², id)-sorted scan on arbitrary point sets,
// including the duplicate and collinear layouts the corpus seeds: both
// implementations share one total order, so their outputs must be
// identical element for element.
func FuzzKNNvsBrute(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 2}, uint8(2), int16(0), int16(0))
	// Duplicates: every point identical.
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(3), int16(7), int16(7))
	// Collinear points on the x axis.
	f.Add([]byte{0, 10, 0, 20, 0, 30, 0, 40, 0, 50}, uint8(4), int16(0), int16(25))
	f.Add([]byte{255, 0, 0, 255, 128, 128}, uint8(1), int16(-4), int16(9))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw uint8, qx, qy int16) {
		if len(raw) < 2 {
			return
		}
		// Two bytes per point; coordinates land on a coarse lattice so
		// duplicates and exact ties are common rather than exceptional.
		n := len(raw) / 2
		if n > 256 {
			n = 256
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			pts[i] = Point{X: float64(raw[2*i] % 32), Y: float64(raw[2*i+1] % 32)}
		}
		q := Point{X: float64(qx) / 8, Y: float64(qy) / 8}
		k := int(kRaw%16) + 1
		// Exercise both cell-size regimes: fractional cells stress the
		// ring cutoff, unit cells the boundary bucketing.
		for _, cell := range []float64{0.7, 3} {
			idx := NewIndex(pts, cell)
			got := idx.KNearest(q, k)
			want := bruteKNN(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("cell %v: KNearest returned %d ids, brute %d (k=%d, n=%d)", cell, len(got), len(want), k, n)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cell %v: KNearest[%d] = %d (d2=%v), brute = %d (d2=%v)",
						cell, i, got[i], pts[got[i]].Dist2(q), want[i], pts[want[i]].Dist2(q))
				}
			}
		}
	})
}

// TestKNearestMatchesBruteRandom pins the fuzz property on a deterministic
// pseudo-random sweep so `go test` exercises it without the fuzz engine.
func TestKNearestMatchesBruteRandom(t *testing.T) {
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	for trial := 0; trial < 50; trial++ {
		n := int(next()%40) + 1
		pts := make([]Point, n)
		for i := range pts {
			// Lattice coordinates keep exact ties frequent.
			pts[i] = Point{X: float64(next() % 16), Y: float64(next() % 16)}
		}
		q := Point{X: float64(next()%170) / 10, Y: float64(next()%170) / 10}
		k := int(next()%8) + 1
		idx := NewIndex(pts, 1+float64(next()%3))
		got := idx.KNearest(q, k)
		want := bruteKNN(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: id[%d] = %d vs %d (d2 %v vs %v)",
					trial, i, got[i], want[i], pts[got[i]].Dist2(q), pts[want[i]].Dist2(q))
			}
		}
		if k >= n {
			// All ids must appear exactly once.
			seen := make(map[int32]bool, n)
			for _, id := range got {
				if seen[id] {
					t.Fatalf("trial %d: duplicate id %d", trial, id)
				}
				seen[id] = true
			}
			if len(got) != n {
				t.Fatalf("trial %d: got %d ids for k=%d over %d points", trial, len(got), k, n)
			}
		}
	}
}
