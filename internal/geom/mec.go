package geom

import "math/rand"

// MinEnclosingCircle returns the smallest circle containing all pts, using
// Welzl's randomized incremental algorithm (expected linear time). The
// planner uses it to refine hovering positions: the centre of the minimum
// enclosing circle of a stop's assigned sensors is the hover point that
// minimises the worst link distance, and the stop stays feasible whenever
// the radius is at most R0.
//
// The rng parameter makes the shuffle deterministic for reproducible
// planning; pass nil to skip shuffling (worst-case quadratic but still
// correct — fine for the small per-stop point sets the planner feeds in).
func MinEnclosingCircle(pts []Point, rng *rand.Rand) Circle {
	switch len(pts) {
	case 0:
		return Circle{}
	case 1:
		return Circle{C: pts[0], R: 0}
	}
	work := append([]Point(nil), pts...)
	if rng != nil {
		rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
	}
	c := Circle{C: work[0], R: 0}
	for i := 1; i < len(work); i++ {
		if c.Contains(work[i]) {
			continue
		}
		// work[i] is on the boundary of the MEC of work[:i+1].
		c = Circle{C: work[i], R: 0}
		for j := 0; j < i; j++ {
			if c.Contains(work[j]) {
				continue
			}
			// work[i] and work[j] both on the boundary.
			c = circleFrom2(work[i], work[j])
			for k := 0; k < j; k++ {
				if !c.Contains(work[k]) {
					c = circleFrom3(work[i], work[j], work[k])
				}
			}
		}
	}
	return c
}

// circleFrom2 returns the circle with the two points as a diameter.
func circleFrom2(a, b Point) Circle {
	center := a.Lerp(b, 0.5)
	return Circle{C: center, R: center.Dist(a)}
}

// circleFrom3 returns the circumcircle of three points, falling back to the
// best two-point circle when they are (near-)collinear.
func circleFrom3(a, b, c Point) Circle {
	// Circumcenter via perpendicular bisector intersection.
	d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
	if d > -1e-12 && d < 1e-12 {
		// Collinear: the diametral circle of the farthest pair covers all.
		best := circleFrom2(a, b)
		if cand := circleFrom2(a, c); cand.R > best.R {
			best = cand
		}
		if cand := circleFrom2(b, c); cand.R > best.R {
			best = cand
		}
		return best
	}
	a2 := a.X*a.X + a.Y*a.Y
	b2 := b.X*b.X + b.Y*b.Y
	c2 := c.X*c.X + c.Y*c.Y
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	center := Pt(ux, uy)
	return Circle{C: center, R: center.Dist(a)}
}
