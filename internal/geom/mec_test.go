package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMECDegenerate(t *testing.T) {
	if c := MinEnclosingCircle(nil, nil); c.R != 0 || c.C != (Point{}) {
		t.Errorf("empty = %+v", c)
	}
	c := MinEnclosingCircle([]Point{Pt(3, 4)}, nil)
	if c.C != Pt(3, 4) || c.R != 0 {
		t.Errorf("single = %+v", c)
	}
	c = MinEnclosingCircle([]Point{Pt(0, 0), Pt(10, 0)}, nil)
	if c.C != Pt(5, 0) || math.Abs(c.R-5) > 1e-12 {
		t.Errorf("pair = %+v", c)
	}
}

func TestMECDuplicates(t *testing.T) {
	pts := []Point{Pt(2, 2), Pt(2, 2), Pt(2, 2)}
	c := MinEnclosingCircle(pts, nil)
	if c.C != Pt(2, 2) || c.R > 1e-12 {
		t.Errorf("duplicates = %+v", c)
	}
}

func TestMECCollinear(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(5, 0), Pt(10, 0), Pt(3, 0)}
	c := MinEnclosingCircle(pts, nil)
	if math.Abs(c.R-5) > 1e-9 || c.C.Dist(Pt(5, 0)) > 1e-9 {
		t.Errorf("collinear = %+v", c)
	}
}

func TestMECKnownTriangle(t *testing.T) {
	// Right triangle: the MEC is the diametral circle of the hypotenuse.
	pts := []Point{Pt(0, 0), Pt(6, 0), Pt(0, 8)}
	c := MinEnclosingCircle(pts, nil)
	if c.C.Dist(Pt(3, 4)) > 1e-9 || math.Abs(c.R-5) > 1e-9 {
		t.Errorf("right triangle = %+v", c)
	}
	// Equilateral-ish: circumcircle.
	eq := []Point{Pt(0, 0), Pt(2, 0), Pt(1, math.Sqrt(3))}
	c = MinEnclosingCircle(eq, nil)
	want := 2 / math.Sqrt(3)
	if math.Abs(c.R-want) > 1e-9 {
		t.Errorf("equilateral R = %v, want %v", c.R, want)
	}
}

// TestMECRandomValidAndMinimal: on random inputs the circle must contain
// every point, and no strictly smaller circle centred at any input point
// pair midpoint / circumcenter candidate may cover everything. We verify
// minimality against a fine grid search of candidate centres.
func TestMECRandomValidAndMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		c := MinEnclosingCircle(pts, rng)
		for _, p := range pts {
			if !c.Contains(p) {
				t.Fatalf("trial %d: point %v outside %+v", trial, p, c)
			}
		}
		// Lower bound: half the diameter of the point set.
		var maxD float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d := pts[i].Dist(pts[j]); d > maxD {
					maxD = d
				}
			}
		}
		if c.R < maxD/2-1e-9 {
			t.Fatalf("trial %d: R %v below diameter/2 %v", trial, c.R, maxD/2)
		}
		// Crude minimality: perturbing the centre in 8 directions by 1%
		// of R must not allow shrinking the radius below c.R by more
		// than numerical noise (local optimality of the 1-center).
		for k := 0; k < 8; k++ {
			ang := float64(k) * math.Pi / 4
			alt := Pt(c.C.X+0.01*c.R*math.Cos(ang), c.C.Y+0.01*c.R*math.Sin(ang))
			var need float64
			for _, p := range pts {
				if d := alt.Dist(p); d > need {
					need = d
				}
			}
			if need < c.R-1e-7*(1+c.R) {
				t.Fatalf("trial %d: centre %v strictly better than %+v", trial, alt, c)
			}
		}
	}
}

// TestMECShuffleInvariant: the circle must not depend on input order.
func TestMECShuffleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 20)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*50, rng.Float64()*50)
	}
	want := MinEnclosingCircle(pts, nil)
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]Point(nil), pts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := MinEnclosingCircle(shuffled, rng)
		if math.Abs(got.R-want.R) > 1e-9 || got.C.Dist(want.C) > 1e-7 {
			t.Fatalf("order dependence: %+v vs %+v", got, want)
		}
	}
}
