// Package geom provides the planar geometry primitives used throughout the
// uavdc library: points, distances, circles, axis-aligned rectangles, the
// δ-square grid partition of the monitoring region, and a uniform-grid
// spatial index for fast circular range queries.
//
// The paper places IoT devices at ground coordinates (x, y, 0) and the UAV
// at hovering altitude H. Because the hover coverage condition (Eq. 1 of the
// paper) projects everything onto the ground plane with effective radius
// R0 = sqrt(R^2 - H^2), all geometry in this package is two-dimensional;
// altitude enters only through the energy and coverage models.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the ground plane, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison form on hot paths such as
// coverage queries.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q.
// t = 0 yields p, t = 1 yields q; t outside [0, 1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Circle is a disk of radius R centred at C, used to model the projected
// hover coverage region of the UAV.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether q lies inside or on the boundary of the circle,
// with a small relative tolerance so exact-boundary points survive float
// rounding at any scale.
func (c Circle) Contains(q Point) bool {
	r2 := c.R * c.R
	return c.C.Dist2(q) <= r2+1e-9*(1+r2)
}

// Area returns the area of the circle.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// Intersects reports whether two circles overlap (boundary contact counts).
func (c Circle) Intersects(o Circle) bool {
	sum := c.R + o.R
	return c.C.Dist2(o.C) <= sum*sum+1e-12
}

// Rect is an axis-aligned rectangle, min-corner inclusive, max-corner
// inclusive. It models the monitoring region.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Square returns the axis-aligned square [0, side] × [0, side], the shape of
// the paper's 1000 m × 1000 m monitoring region.
func Square(side float64) Rect {
	return Rect{Min: Point{0, 0}, Max: Point{side, side}}
}

// Width returns the extent of r along x.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r along y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies in r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Center returns the centre point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// IntersectsCircle reports whether the circle c overlaps r.
func (r Rect) IntersectsCircle(c Circle) bool {
	return r.Clamp(c.C).Dist2(c.C) <= c.R*c.R+1e-12
}

// ClosestPointOnSegment returns the point of segment ab closest to p.
func ClosestPointOnSegment(p, a, b Point) Point {
	ab := b.Sub(a)
	den := ab.Dot(ab)
	if den == 0 { //uavdc:allow floateq exact degenerate-segment guard; any nonzero den divides safely
		return a
	}
	t := p.Sub(a).Dot(ab) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return a.Lerp(b, t)
}

// Centroid returns the arithmetic mean of the points; the zero Point for an
// empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var s Point
	for _, p := range pts {
		s = s.Add(p)
	}
	return s.Scale(1 / float64(len(pts)))
}

// PathLength returns the total length of the open polyline through pts.
func PathLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}

// CycleLength returns the total length of the closed polyline through pts
// (the last point connects back to the first).
func CycleLength(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	return PathLength(pts) + pts[len(pts)-1].Dist(pts[0])
}
