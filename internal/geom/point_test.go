package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1*3+2*(-4) {
		t.Errorf("Dot = %v", got)
	}
	if got := Pt(3, 4).Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v", got)
	}
}

func TestDistMatchesDist2(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Constrain to a sane range to avoid overflow artefacts.
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		d := a.Dist(b)
		return almostEq(d*d, a.Dist2(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		c := Pt(math.Mod(cx, 1e6), math.Mod(cy, 1e6))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{C: Pt(0, 0), R: 50}
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(50, 0), true},  // boundary
		{Pt(0, -50), true}, // boundary
		{Pt(35.35, 35.35), true},
		{Pt(50.01, 0), false},
		{Pt(36, 36), false},
	}
	for _, tc := range cases {
		if got := c.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestCircleIntersects(t *testing.T) {
	a := Circle{C: Pt(0, 0), R: 10}
	if !a.Intersects(Circle{C: Pt(20, 0), R: 10}) {
		t.Error("tangent circles should intersect")
	}
	if a.Intersects(Circle{C: Pt(20.1, 0), R: 10}) {
		t.Error("separated circles should not intersect")
	}
	if !a.Intersects(Circle{C: Pt(0, 0), R: 1}) {
		t.Error("nested circles should intersect")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(10, 20), Pt(0, 0))
	if r.Min != Pt(0, 0) || r.Max != Pt(10, 20) {
		t.Fatalf("NewRect normalisation failed: %+v", r)
	}
	if !almostEq(r.Width(), 10) || !almostEq(r.Height(), 20) || !almostEq(r.Area(), 200) {
		t.Errorf("dims wrong: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(5, 10) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 20)) || r.Contains(Pt(-0.1, 5)) {
		t.Error("Contains boundary handling wrong")
	}
}

func TestRectClampAndCircle(t *testing.T) {
	r := Square(100)
	if got := r.Clamp(Pt(-5, 50)); got != Pt(0, 50) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Pt(200, 300)); got != Pt(100, 100) {
		t.Errorf("Clamp = %v", got)
	}
	if !r.IntersectsCircle(Circle{C: Pt(-5, 50), R: 5}) {
		t.Error("touching circle should intersect")
	}
	if r.IntersectsCircle(Circle{C: Pt(-5, 50), R: 4.9}) {
		t.Error("separated circle should not intersect")
	}
}

func TestClosestPointOnSegment(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	if got := ClosestPointOnSegment(Pt(5, 3), a, b); got != Pt(5, 0) {
		t.Errorf("interior projection = %v", got)
	}
	if got := ClosestPointOnSegment(Pt(-4, 2), a, b); got != a {
		t.Errorf("clamp to a = %v", got)
	}
	if got := ClosestPointOnSegment(Pt(99, -1), a, b); got != b {
		t.Errorf("clamp to b = %v", got)
	}
	// Degenerate segment.
	if got := ClosestPointOnSegment(Pt(1, 1), a, a); got != a {
		t.Errorf("degenerate = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	got := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)})
	if got != Pt(1, 1) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestPathAndCycleLength(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(3, 4), Pt(3, 0)}
	if got := PathLength(pts); !almostEq(got, 9) {
		t.Errorf("PathLength = %v", got)
	}
	if got := CycleLength(pts); !almostEq(got, 12) {
		t.Errorf("CycleLength = %v", got)
	}
	if got := CycleLength(pts[:1]); got != 0 {
		t.Errorf("CycleLength single = %v", got)
	}
	if got := PathLength(nil); got != 0 {
		t.Errorf("PathLength nil = %v", got)
	}
}

func TestCycleLengthInvariantUnderRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 12)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
	}
	want := CycleLength(pts)
	for shift := 1; shift < len(pts); shift++ {
		rot := append(append([]Point{}, pts[shift:]...), pts[:shift]...)
		if got := CycleLength(rot); !almostEq(got, want) {
			t.Fatalf("rotation %d changed cycle length: %v vs %v", shift, got, want)
		}
	}
}

func TestCircleArea(t *testing.T) {
	c := Circle{C: Pt(0, 0), R: 2}
	if got := c.Area(); !almostEq(got, 4*math.Pi) {
		t.Errorf("Area = %v", got)
	}
}
