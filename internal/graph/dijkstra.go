package graph

import (
	"container/heap"
	"math"
)

// Dijkstra returns the shortest-path distances from src to every vertex of
// g, and the predecessor array for path reconstruction (-1 for src and for
// unreachable vertices). Weights must be non-negative, which SetWeight
// already enforces.
func Dijkstra(g *Dense, src int) (dist []float64, prev []int) {
	n := g.N()
	dist = make([]float64, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue // stale entry
		}
		for j := 0; j < n; j++ {
			if !g.HasEdge(item.v, j) {
				continue
			}
			if nd := item.d + g.Weight(item.v, j); nd < dist[j] {
				dist[j] = nd
				prev[j] = item.v
				heap.Push(pq, distItem{v: j, d: nd})
			}
		}
	}
	return dist, prev
}

// PathTo reconstructs the shortest path from the source used to produce
// prev to dst, inclusive of both endpoints. It returns nil when dst is
// unreachable (other than the trivial path to the source itself).
func PathTo(prev []int, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	if prev[dst] < 0 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
