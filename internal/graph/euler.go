package graph

import "fmt"

// Multigraph is an adjacency-list multigraph used for the Euler-circuit step
// of Christofides: the union of MST and matching edges can contain parallel
// edges, which Dense cannot represent.
type Multigraph struct {
	n   int
	adj [][]halfEdge
	m   int // number of (undirected) edges
}

type halfEdge struct {
	to int
	id int // edge id shared by the twin half-edge
}

// NewMultigraph returns an empty multigraph on n vertices.
func NewMultigraph(n int) *Multigraph {
	return &Multigraph{n: n, adj: make([][]halfEdge, n)}
}

// AddEdge inserts an undirected edge between u and v; parallel edges and
// none-loops are permitted, self-loops are rejected.
func (m *Multigraph) AddEdge(u, v int) {
	if u == v {
		panic("graph: self-loop in multigraph")
	}
	id := m.m
	m.adj[u] = append(m.adj[u], halfEdge{to: v, id: id})
	m.adj[v] = append(m.adj[v], halfEdge{to: u, id: id})
	m.m++
}

// NumEdges returns the number of undirected edges.
func (m *Multigraph) NumEdges() int { return m.m }

// Degree returns the degree of v counting parallel edges.
func (m *Multigraph) Degree(v int) int { return len(m.adj[v]) }

// EulerCircuit returns an Eulerian circuit starting and ending at start as a
// vertex sequence (first == last), using Hierholzer's algorithm. It fails if
// any vertex touched by an edge has odd degree or if the edges are not
// connected.
func (m *Multigraph) EulerCircuit(start int) ([]int, error) {
	if m.m == 0 {
		return []int{start, start}[:1], nil
	}
	for v := 0; v < m.n; v++ {
		if len(m.adj[v])%2 != 0 {
			return nil, fmt.Errorf("graph: vertex %d has odd degree %d", v, len(m.adj[v]))
		}
	}
	if len(m.adj[start]) == 0 {
		return nil, fmt.Errorf("graph: start vertex %d has no incident edges", start)
	}
	used := make([]bool, m.m)
	next := make([]int, m.n) // per-vertex cursor into adj
	// Iterative Hierholzer.
	stack := []int{start}
	var circuit []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		advanced := false
		for next[v] < len(m.adj[v]) {
			he := m.adj[v][next[v]]
			next[v]++
			if used[he.id] {
				continue
			}
			used[he.id] = true
			stack = append(stack, he.to)
			advanced = true
			break
		}
		if !advanced {
			circuit = append(circuit, v)
			stack = stack[:len(stack)-1]
		}
	}
	for _, u := range used {
		if !u {
			return nil, fmt.Errorf("graph: edge set not connected, euler circuit covers only %d/%d edges", len(circuit)-1, m.m)
		}
	}
	// Hierholzer emits the circuit reversed; reverse for a forward walk
	// (irrelevant for correctness of an undirected circuit, but stable).
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	return circuit, nil
}
