package graph

import (
	"maps"
	"math/rand"
	"slices"
	"testing"
)

func TestEulerEmpty(t *testing.T) {
	m := NewMultigraph(3)
	circ, err := m.EulerCircuit(0)
	if err != nil || len(circ) != 1 || circ[0] != 0 {
		t.Errorf("empty circuit = %v, %v", circ, err)
	}
}

func TestEulerTriangle(t *testing.T) {
	m := NewMultigraph(3)
	m.AddEdge(0, 1)
	m.AddEdge(1, 2)
	m.AddEdge(2, 0)
	circ, err := m.EulerCircuit(0)
	if err != nil {
		t.Fatal(err)
	}
	verifyCircuit(t, m, circ, 0)
}

func TestEulerParallelEdges(t *testing.T) {
	m := NewMultigraph(2)
	m.AddEdge(0, 1)
	m.AddEdge(0, 1) // parallel, both endpoints even
	circ, err := m.EulerCircuit(0)
	if err != nil {
		t.Fatal(err)
	}
	verifyCircuit(t, m, circ, 0)
}

func TestEulerOddDegree(t *testing.T) {
	m := NewMultigraph(3)
	m.AddEdge(0, 1)
	if _, err := m.EulerCircuit(0); err == nil {
		t.Error("odd degree should fail")
	}
}

func TestEulerDisconnectedEdges(t *testing.T) {
	m := NewMultigraph(6)
	m.AddEdge(0, 1)
	m.AddEdge(1, 2)
	m.AddEdge(2, 0)
	m.AddEdge(3, 4)
	m.AddEdge(4, 5)
	m.AddEdge(5, 3)
	if _, err := m.EulerCircuit(0); err == nil {
		t.Error("two components should fail")
	}
}

func TestEulerStartWithoutEdges(t *testing.T) {
	m := NewMultigraph(4)
	m.AddEdge(1, 2)
	m.AddEdge(2, 3)
	m.AddEdge(3, 1)
	if _, err := m.EulerCircuit(0); err == nil {
		t.Error("start vertex with no edges should fail")
	}
}

func TestEulerSelfLoopPanics(t *testing.T) {
	m := NewMultigraph(2)
	defer func() {
		if recover() == nil {
			t.Error("self loop should panic")
		}
	}()
	m.AddEdge(1, 1)
}

// TestEulerRandomEvenGraphs builds random connected even-degree multigraphs
// by unioning random closed walks, then checks Hierholzer covers every edge
// exactly once.
func TestEulerRandomEvenGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(10)
		m := NewMultigraph(n)
		// One long closed walk through random vertices keeps everything
		// connected and all degrees even.
		walkLen := 2 + rng.Intn(20)
		cur := 0
		for i := 0; i < walkLen; i++ {
			nxt := rng.Intn(n)
			for nxt == cur {
				nxt = rng.Intn(n)
			}
			m.AddEdge(cur, nxt)
			cur = nxt
		}
		if cur != 0 {
			m.AddEdge(cur, 0)
		}
		circ, err := m.EulerCircuit(0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		verifyCircuit(t, m, circ, 0)
	}
}

// verifyCircuit checks circ starts and ends at start, uses every edge of m
// exactly once, and every consecutive pair is an actual edge.
func verifyCircuit(t *testing.T, m *Multigraph, circ []int, start int) {
	t.Helper()
	if len(circ) != m.NumEdges()+1 {
		t.Fatalf("circuit length %d, want %d", len(circ), m.NumEdges()+1)
	}
	if circ[0] != start || circ[len(circ)-1] != start {
		t.Fatalf("circuit endpoints %d..%d, want %d", circ[0], circ[len(circ)-1], start)
	}
	// Count available parallel edges between each unordered pair.
	avail := map[[2]int]int{}
	for v := 0; v < m.n; v++ {
		for _, he := range m.adj[v] {
			if v < he.to {
				avail[[2]int{v, he.to}]++
			}
		}
	}
	for i := 1; i < len(circ); i++ {
		u, v := circ[i-1], circ[i]
		if u > v {
			u, v = v, u
		}
		if avail[[2]int{u, v}] == 0 {
			t.Fatalf("step %d reuses or invents edge (%d,%d)", i, u, v)
		}
		avail[[2]int{u, v}]--
	}
	for _, k := range slices.SortedFunc(maps.Keys(avail), func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	}) {
		if c := avail[k]; c != 0 {
			t.Fatalf("edge %v not fully used (%d left)", k, c)
		}
	}
}

func TestMultigraphDegree(t *testing.T) {
	m := NewMultigraph(3)
	m.AddEdge(0, 1)
	m.AddEdge(0, 1)
	m.AddEdge(1, 2)
	if m.Degree(0) != 2 || m.Degree(1) != 3 || m.Degree(2) != 1 {
		t.Errorf("degrees: %d %d %d", m.Degree(0), m.Degree(1), m.Degree(2))
	}
	if m.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", m.NumEdges())
	}
}
