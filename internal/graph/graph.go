// Package graph implements the weighted-graph machinery the tour planners
// are built on: a dense symmetric weight matrix (the auxiliary graphs of the
// paper are complete metric graphs), minimum spanning trees (Prim and
// Kruskal), Dijkstra shortest paths, Eulerian circuits (Hierholzer), and
// metricity checks for Lemma 1 of the paper.
package graph

import (
	"fmt"
	"math"
)

// Dense is a complete undirected graph on n vertices stored as a symmetric
// weight matrix. A weight of +Inf marks an absent edge; the diagonal is
// always zero.
type Dense struct {
	n int
	w []float64 // row-major n×n
}

// NewDense returns a graph on n vertices with all off-diagonal weights +Inf.
func NewDense(n int) *Dense {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Dense{n: n, w: make([]float64, n*n)}
	inf := math.Inf(1)
	for i := range g.w {
		g.w[i] = inf
	}
	for i := 0; i < n; i++ {
		g.w[i*n+i] = 0
	}
	return g
}

// NewComplete builds a complete graph whose edge weights come from dist.
// dist must be symmetric in its arguments for the graph to be undirected;
// this is not checked.
func NewComplete(n int, dist func(i, j int) float64) *Dense {
	g := NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetWeight(i, j, dist(i, j))
		}
	}
	return g
}

// N returns the number of vertices.
func (g *Dense) N() int { return g.n }

// Weight returns the weight of edge (i, j); zero when i == j, +Inf when the
// edge is absent.
func (g *Dense) Weight(i, j int) float64 { return g.w[i*g.n+j] }

// SetWeight sets the weight of the undirected edge (i, j). Setting a
// diagonal entry or a negative weight panics: the energy semantics of the
// planners require non-negative costs.
func (g *Dense) SetWeight(i, j int, w float64) {
	if i == j {
		panic("graph: cannot set self-loop weight")
	}
	if w < 0 {
		panic(fmt.Sprintf("graph: negative weight %v on edge (%d,%d)", w, i, j))
	}
	g.w[i*g.n+j] = w
	g.w[j*g.n+i] = w
}

// HasEdge reports whether edge (i, j) is present (finite weight, i != j).
func (g *Dense) HasEdge(i, j int) bool {
	return i != j && !math.IsInf(g.w[i*g.n+j], 1)
}

// Edge is an undirected weighted edge with U < V by convention.
type Edge struct {
	U, V int
	W    float64
}

// Edges returns all present edges of g.
func (g *Dense) Edges() []Edge {
	var out []Edge
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.HasEdge(i, j) {
				out = append(out, Edge{U: i, V: j, W: g.Weight(i, j)})
			}
		}
	}
	return out
}

// IsMetric reports whether g is a complete graph whose weights satisfy the
// triangle inequality within tol. The auxiliary graph G_s of Algorithm 1
// must pass this check (Lemma 1) for the orienteering approximation to
// apply.
func (g *Dense) IsMetric(tol float64) bool {
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if i != j && !g.HasEdge(i, j) {
				return false
			}
		}
	}
	for k := 0; k < g.n; k++ {
		for i := 0; i < g.n; i++ {
			wik := g.Weight(i, k)
			for j := 0; j < g.n; j++ {
				if g.Weight(i, j) > wik+g.Weight(k, j)+tol {
					return false
				}
			}
		}
	}
	return true
}

// TotalWeight returns the sum of the weights of the given edges.
func TotalWeight(edges []Edge) float64 {
	var sum float64
	for _, e := range edges {
		sum += e.W
	}
	return sum
}
