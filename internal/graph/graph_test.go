package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	g := NewDense(3)
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Weight(0, 0) != 0 {
		t.Error("diagonal should be 0")
	}
	if g.HasEdge(0, 1) {
		t.Error("edges should start absent")
	}
	if g.HasEdge(1, 1) {
		t.Error("self edge must never exist")
	}
	g.SetWeight(0, 1, 2.5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge should be symmetric")
	}
	if g.Weight(1, 0) != 2.5 {
		t.Errorf("Weight(1,0) = %v", g.Weight(1, 0))
	}
}

func TestDensePanics(t *testing.T) {
	g := NewDense(2)
	assertPanics(t, "self-loop", func() { g.SetWeight(1, 1, 1) })
	assertPanics(t, "negative weight", func() { g.SetWeight(0, 1, -1) })
	assertPanics(t, "negative n", func() { NewDense(-1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestNewComplete(t *testing.T) {
	g := NewComplete(4, func(i, j int) float64 { return float64(i + j) })
	if g.Weight(1, 3) != 4 {
		t.Errorf("Weight(1,3) = %v", g.Weight(1, 3))
	}
	if len(g.Edges()) != 6 {
		t.Errorf("Edges = %d, want 6", len(g.Edges()))
	}
}

func TestIsMetric(t *testing.T) {
	// Points on a line: 0, 1, 3 → distances satisfy triangle inequality.
	coords := []float64{0, 1, 3}
	g := NewComplete(3, func(i, j int) float64 { return math.Abs(coords[i] - coords[j]) })
	if !g.IsMetric(1e-12) {
		t.Error("line metric should be metric")
	}
	g.SetWeight(0, 2, 10) // break it: 10 > 1 + 2
	if g.IsMetric(1e-12) {
		t.Error("violated triangle inequality not detected")
	}
	// Incomplete graph is not metric.
	h := NewDense(3)
	h.SetWeight(0, 1, 1)
	if h.IsMetric(1e-12) {
		t.Error("incomplete graph should not be metric")
	}
}

func TestTotalWeight(t *testing.T) {
	if TotalWeight(nil) != 0 {
		t.Error("TotalWeight(nil) != 0")
	}
	if got := TotalWeight([]Edge{{0, 1, 2}, {1, 2, 3.5}}); got != 5.5 {
		t.Errorf("TotalWeight = %v", got)
	}
}

func randomMetricGraph(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][2]float64, n)
	for i := range xs {
		xs[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	return NewComplete(n, func(i, j int) float64 {
		dx, dy := xs[i][0]-xs[j][0], xs[i][1]-xs[j][1]
		return math.Sqrt(dx*dx + dy*dy)
	})
}

func TestMSTPrimEqualsKruskal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomMetricGraph(20, seed)
		pe, ok := MSTPrim(g, nil)
		if !ok {
			t.Fatal("prim: complete graph must be connected")
		}
		ke, ok := MSTKruskal(g)
		if !ok {
			t.Fatal("kruskal: complete graph must be connected")
		}
		if len(pe) != 19 || len(ke) != 19 {
			t.Fatalf("MST edge counts: prim %d kruskal %d", len(pe), len(ke))
		}
		if math.Abs(TotalWeight(pe)-TotalWeight(ke)) > 1e-9 {
			t.Errorf("seed %d: prim %v kruskal %v", seed, TotalWeight(pe), TotalWeight(ke))
		}
	}
}

func TestMSTKnown(t *testing.T) {
	// Square with side 1 and diagonals sqrt2: MST weight = 3.
	g := NewDense(4)
	g.SetWeight(0, 1, 1)
	g.SetWeight(1, 2, 1)
	g.SetWeight(2, 3, 1)
	g.SetWeight(3, 0, 1)
	g.SetWeight(0, 2, math.Sqrt2)
	g.SetWeight(1, 3, math.Sqrt2)
	e, ok := MSTPrim(g, nil)
	if !ok || math.Abs(TotalWeight(e)-3) > 1e-12 {
		t.Errorf("MST = %v ok=%v", TotalWeight(e), ok)
	}
}

func TestMSTSubset(t *testing.T) {
	g := randomMetricGraph(30, 1)
	sub := []int{2, 5, 7, 11, 13}
	e, ok := MSTPrim(g, sub)
	if !ok || len(e) != 4 {
		t.Fatalf("subset MST: %d edges ok=%v", len(e), ok)
	}
	inSub := map[int]bool{}
	for _, v := range sub {
		inSub[v] = true
	}
	for _, ed := range e {
		if !inSub[ed.U] || !inSub[ed.V] {
			t.Errorf("MST edge %v leaves subset", ed)
		}
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := NewDense(4)
	g.SetWeight(0, 1, 1)
	g.SetWeight(2, 3, 1)
	if _, ok := MSTPrim(g, nil); ok {
		t.Error("prim should report disconnected")
	}
	if _, ok := MSTKruskal(g); ok {
		t.Error("kruskal should report disconnected")
	}
}

func TestMSTTrivialSizes(t *testing.T) {
	g := NewDense(1)
	if e, ok := MSTPrim(g, nil); !ok || len(e) != 0 {
		t.Error("single vertex MST should be empty and connected")
	}
	if e, ok := MSTPrim(g, []int{}); !ok || len(e) != 0 {
		t.Error("empty subset MST should be empty")
	}
}

func TestDijkstra(t *testing.T) {
	//     1
	//  0 --- 1
	//  |      \ 2
	//  4       2
	//  |      /1
	//  3 --- 2   wait, build explicitly below
	g := NewDense(4)
	g.SetWeight(0, 1, 1)
	g.SetWeight(1, 2, 2)
	g.SetWeight(0, 3, 4)
	g.SetWeight(2, 3, 1)
	dist, prev := Dijkstra(g, 0)
	want := []float64{0, 1, 3, 4}
	for i, w := range want {
		if math.Abs(dist[i]-w) > 1e-12 {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
	// Two shortest paths to 3 (0-3 direct and 0-1-2-3) both cost 4; accept either.
	p := PathTo(prev, 0, 3)
	if len(p) == 0 || p[0] != 0 || p[len(p)-1] != 3 {
		t.Errorf("PathTo = %v", p)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewDense(3)
	g.SetWeight(0, 1, 1)
	dist, prev := Dijkstra(g, 0)
	if !math.IsInf(dist[2], 1) {
		t.Errorf("dist[2] = %v, want +Inf", dist[2])
	}
	if p := PathTo(prev, 0, 2); p != nil {
		t.Errorf("PathTo unreachable = %v", p)
	}
	if p := PathTo(prev, 0, 0); len(p) != 1 || p[0] != 0 {
		t.Errorf("PathTo self = %v", p)
	}
}

func TestDijkstraMatchesMetricClosure(t *testing.T) {
	g := randomMetricGraph(15, 9)
	dist, _ := Dijkstra(g, 0)
	// In a metric complete graph the shortest path is always the direct edge.
	for j := 1; j < g.N(); j++ {
		if math.Abs(dist[j]-g.Weight(0, j)) > 1e-9 {
			t.Errorf("dist[%d] = %v, direct %v", j, dist[j], g.Weight(0, j))
		}
	}
}
