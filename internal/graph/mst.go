package graph

import (
	"math"
	"sort"

	"uavdc/internal/unionfind"
)

// MSTPrim returns the edges of a minimum spanning tree of g restricted to
// the vertex subset sub (all vertices when sub is nil), using Prim's
// algorithm with O(k²) scans — the right trade-off for the dense complete
// graphs the planners build. It returns nil when the subset has fewer than
// two vertices, and (nil, false) when the subset is not connected.
func MSTPrim(g *Dense, sub []int) ([]Edge, bool) {
	verts := sub
	if verts == nil {
		verts = make([]int, g.N())
		for i := range verts {
			verts[i] = i
		}
	}
	k := len(verts)
	if k == 0 {
		return nil, true
	}
	inTree := make([]bool, k)
	bestW := make([]float64, k)
	bestTo := make([]int, k)
	for i := range bestW {
		bestW[i] = math.Inf(1)
		bestTo[i] = -1
	}
	bestW[0] = 0
	edges := make([]Edge, 0, k-1)
	for iter := 0; iter < k; iter++ {
		// Pick the cheapest fringe vertex.
		sel := -1
		for i := range verts {
			if !inTree[i] && (sel < 0 || bestW[i] < bestW[sel]) {
				sel = i
			}
		}
		if sel < 0 || math.IsInf(bestW[sel], 1) {
			return nil, false // disconnected
		}
		inTree[sel] = true
		if bestTo[sel] >= 0 {
			u, v := verts[bestTo[sel]], verts[sel]
			if u > v {
				u, v = v, u
			}
			edges = append(edges, Edge{U: u, V: v, W: bestW[sel]})
		}
		for i := range verts {
			if !inTree[i] {
				if w := g.Weight(verts[sel], verts[i]); w < bestW[i] {
					bestW[i] = w
					bestTo[i] = sel
				}
			}
		}
	}
	return edges, true
}

// MSTKruskal returns the edges of a minimum spanning forest of g using
// Kruskal's algorithm, and whether the graph is connected (forest is a
// single tree).
func MSTKruskal(g *Dense) ([]Edge, bool) {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool { return edges[i].W < edges[j].W })
	uf := unionfind.New(g.N())
	out := make([]Edge, 0, g.N()-1)
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			out = append(out, e)
		}
	}
	return out, uf.Sets() <= 1
}
