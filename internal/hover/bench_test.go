package hover

import (
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
)

// BenchmarkBuildPaperScale measures candidate construction at the paper's
// full setting (500 sensors, 1 km², δ = 10 m → 10 000 squares).
func BenchmarkBuildPaperScale(b *testing.B) {
	net, err := sensornet.Generate(sensornet.DefaultGenParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Build(net, energy.Default(), 10, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(s.Len()), "candidates")
			b.ReportMetric(float64(s.PrunedDup), "pruned_dup")
		}
	}
}

// BenchmarkBuildFine measures the δ = 5 m worst case (40 000 squares).
func BenchmarkBuildFine(b *testing.B) {
	net, err := sensornet.Generate(sensornet.DefaultGenParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(net, energy.Default(), 5, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVirtuals measures the K-ladder materialisation for Algorithm 3.
func BenchmarkVirtuals(b *testing.B) {
	net, err := sensornet.Generate(sensornet.DefaultGenParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	s, err := Build(net, energy.Default(), 10, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Virtuals(4); err != nil {
			b.Fatal(err)
		}
	}
}
