package hover

import (
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

// TestBuildClampsOverhangingCentres reproduces the bug where a region whose
// side is not a multiple of δ produced candidate centres outside the region
// (e.g. 350 m side at δ = 15 → last centre at 352.5 m), which the plan
// validator then rightly rejected as illegal hovering positions.
func TestBuildClampsOverhangingCentres(t *testing.T) {
	p := sensornet.DefaultGenParams()
	p.NumSensors = 60
	p.Side = 350 // ceil(350/15) = 24 columns → unclamped last centre 352.5
	net, err := sensornet.Generate(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []units.Meters{15, 22, 37} {
		s, err := Build(net, energy.Default(), delta, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, loc := range s.Locs {
			if !net.Region.Contains(loc.Pos) {
				t.Fatalf("delta=%v: candidate %d at %v outside region %v", delta, i, loc.Pos, net.Region)
			}
		}
	}
}
