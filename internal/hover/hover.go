// Package hover turns a sensor network into the discrete hovering-location
// model of Section III-B/IV of the paper: the monitoring region is
// partitioned into δ-squares whose centres are the candidate hovering
// locations; every candidate carries its coverage set C(s_j), the sojourn
// time t(s_j) = max_{v∈C(s_j)} D_v/B (Eq. 1/7), the award
// P(s_j) = Σ_{v∈C(s_j)} D_v (Eq. 2/6), and the hover energy
// w1(s_j) = t(s_j)·η_h (Eq. 3/8). Location 0 is always the depot, with
// empty coverage and zero cost.
//
// For Algorithm 3 the package also materialises the K virtual hovering
// locations s_{j,1..K} per real candidate, with sojourn k·t(s_j)/K and
// award per Eq. 4.
package hover

import (
	"fmt"
	"math"
	"sort"

	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/radio"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

// DepotID is the index of the depot in every Set.
const DepotID = 0

// Location is one candidate hovering location.
type Location struct {
	// Pos is the ground projection of the hovering location (the UAV
	// hovers at altitude H above it; all geometry is projected).
	Pos geom.Point
	// Covered lists the sensor indices within the coverage radius,
	// ascending. Empty for the depot.
	Covered []int
	// Rates holds the per-sensor uplink rate in MB/s, parallel to
	// Covered. Nil means every covered sensor uploads at the network
	// bandwidth B (the paper's constant-rate assumption); it is populated
	// when the candidate set is built with a distance-dependent radio
	// model.
	Rates []units.BitsPerSecond
	// Sojourn is t(s_j) in seconds: the time to fully drain every
	// covered sensor at its uplink rate (the slowest sensor dominates
	// since uploads are simultaneous).
	Sojourn units.Seconds
	// Award is P(s_j) in MB: total data available at this location.
	Award units.Bits
	// HoverEnergy is w1(s_j) = Sojourn · η_h in J.
	HoverEnergy units.Joules
	// SquareIdx is the grid square index this location is the centre of,
	// or -1 for the depot.
	SquareIdx int
}

// Set is the candidate model: depot + surviving grid-square centres.
type Set struct {
	Net   *sensornet.Network
	Model energy.Model
	// CoverRadius is R0, the projected coverage radius used to build the
	// coverage sets.
	CoverRadius units.Meters
	// Altitude is the hovering altitude H the set was built with.
	Altitude units.Meters
	// Radio is the rate model the set was built with (nil = constant B).
	Radio radio.Model
	Grid  *geom.Grid
	// Locs[0] is the depot.
	Locs []Location
	// PrunedEmpty and PrunedDup count candidates dropped during build,
	// for diagnostics.
	PrunedEmpty int
	PrunedDup   int
}

// CoverageRadius returns R0 = sqrt(R² − H²), the ground-projected coverage
// radius of a UAV hovering at altitude H with node transmission range R
// (Fig. 1(b) of the paper). It returns an error when H > R, where coverage
// is impossible.
func CoverageRadius(r, h units.Meters) (units.Meters, error) {
	if h < 0 || r <= 0 {
		return 0, fmt.Errorf("hover: invalid range R=%v altitude H=%v", r, h)
	}
	if h > r {
		return 0, fmt.Errorf("hover: altitude %v exceeds transmission range %v", h, r)
	}
	//uavdc:allow unitsafety Pythagoras on distances: sqrt(R²−H²) is again a distance, re-wrapped at the return
	return units.Meters(math.Sqrt(r.F()*r.F() - h.F()*h.F())), nil
}

// Options controls candidate construction.
type Options struct {
	// CoverRadius is R0 in metres. If zero, the network's CommRange is
	// used (altitude 0 abstraction, matching the paper's experiments
	// which set R0 = 50 m directly).
	CoverRadius units.Meters
	// KeepEmpty retains squares with empty coverage sets. The paper
	// assigns them zero award/sojourn; they can never help a tour under
	// a metric, so the default drops them.
	KeepEmpty bool
	// KeepDuplicates retains candidates whose coverage set is identical
	// to an already-kept candidate. The default drops them, keeping the
	// candidate whose centre is closest to the centroid of its covered
	// sensors (minimising worst-case link length).
	KeepDuplicates bool
	// Altitude is the hovering altitude H in metres. It matters in two
	// ways: when CoverRadius is zero it shrinks the effective ground
	// coverage to sqrt(R²−H²), and when Radio is set it lengthens the
	// slant path to every sensor. Zero reproduces the paper's
	// ground-level abstraction.
	Altitude units.Meters
	// Radio is the uplink rate model; nil means the paper's constant
	// bandwidth B taken from the network.
	Radio radio.Model
}

// Build constructs the candidate set for net with grid resolution delta.
func Build(net *sensornet.Network, em energy.Model, delta units.Meters, opts Options) (*Set, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := em.Validate(); err != nil {
		return nil, err
	}
	grid, err := geom.NewGrid(net.Region, delta.F())
	if err != nil {
		return nil, err
	}
	if opts.Altitude < 0 {
		return nil, fmt.Errorf("hover: negative altitude %v", opts.Altitude)
	}
	r0 := opts.CoverRadius
	if r0 == 0 {
		if opts.Altitude > 0 {
			var err error
			r0, err = CoverageRadius(units.Meters(net.CommRange), opts.Altitude)
			if err != nil {
				return nil, err
			}
			if r0 == 0 {
				return nil, fmt.Errorf("hover: altitude %v leaves zero coverage at range %v", opts.Altitude, net.CommRange)
			}
		} else {
			r0 = units.Meters(net.CommRange)
		}
	}
	if r0 < 0 {
		return nil, fmt.Errorf("hover: negative coverage radius %v", r0)
	}

	s := &Set{
		Net:         net,
		Model:       em,
		CoverRadius: r0,
		Altitude:    opts.Altitude,
		Radio:       opts.Radio,
		Grid:        grid,
		Locs: []Location{{
			Pos:       net.Depot,
			SquareIdx: -1,
		}},
	}

	seen := make(map[dupKeyString]int) // coverage signature → Locs index
	idx := net.Index()
	var buf []int
	for sq := 0; sq < grid.NumSquares(); sq++ {
		// The last grid row/column may overhang the region when its
		// extent is not a multiple of δ; clamp those centres back onto
		// the boundary so every candidate is a legal hovering position.
		center := net.Region.Clamp(grid.Center(sq))
		buf = idx.WithinAppend(buf[:0], center, r0.F())
		if len(buf) == 0 {
			if !opts.KeepEmpty {
				s.PrunedEmpty++
				continue
			}
			s.Locs = append(s.Locs, Location{Pos: center, SquareIdx: sq})
			continue
		}
		covered := append([]int(nil), buf...)
		loc := Location{Pos: center, Covered: covered, SquareIdx: sq}
		if opts.Radio != nil {
			loc.Rates = make([]units.BitsPerSecond, len(covered))
			for i, v := range covered {
				slant := radio.SlantDist(units.Meters(net.Sensors[v].Pos.Dist(center)), opts.Altitude)
				loc.Rates[i] = opts.Radio.Rate(slant)
				if !(loc.Rates[i] > 0) {
					return nil, fmt.Errorf("hover: radio model yields non-positive rate %v at slant %v", loc.Rates[i], slant)
				}
			}
		}
		loc.Sojourn, loc.Award = DrainRates(net, covered, loc.Rates)
		loc.HoverEnergy = em.HoverEnergy(loc.Sojourn)

		if !opts.KeepDuplicates {
			key := coverageKey(covered)
			if prev, ok := seen[key]; ok {
				// Keep whichever centre is closer to the coverage centroid.
				if centroidDist(net, covered, center) < centroidDist(net, covered, s.Locs[prev].Pos) {
					s.Locs[prev] = loc
				}
				s.PrunedDup++
				continue
			}
			seen[key] = len(s.Locs)
		}
		s.Locs = append(s.Locs, loc)
	}
	return s, nil
}

// Drain returns the sojourn time and total award for fully draining the
// given sensors at the network's constant bandwidth: t = max D_v/B,
// P = Σ D_v.
func Drain(net *sensornet.Network, covered []int) (sojourn units.Seconds, award units.Bits) {
	return DrainRates(net, covered, nil)
}

// DrainRates is Drain with per-sensor uplink rates (parallel to covered);
// nil rates means the constant network bandwidth.
func DrainRates(net *sensornet.Network, covered []int, rates []units.BitsPerSecond) (sojourn units.Seconds, award units.Bits) {
	for i, v := range covered {
		d := units.Bits(net.Sensors[v].Data)
		award += d
		r := units.BitsPerSecond(net.Bandwidth)
		if rates != nil {
			r = rates[i]
		}
		if t := units.TransferTime(d, r); t > sojourn {
			sojourn = t
		}
	}
	return sojourn, award
}

func coverageKey(covered []int) dupKeyString {
	// Compact signature; sets are sorted, so a delimited join is unique.
	b := make([]byte, 0, len(covered)*3)
	for _, v := range covered {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return dupKeyString(b)
}

type dupKeyString string

func centroidDist(net *sensornet.Network, covered []int, p geom.Point) float64 {
	pts := make([]geom.Point, len(covered))
	for i, v := range covered {
		pts[i] = net.Sensors[v].Pos
	}
	return geom.Centroid(pts).Dist(p)
}

// Len returns the number of candidate locations including the depot.
func (s *Set) Len() int { return len(s.Locs) }

// Dist returns the Euclidean flight distance between locations i and j.
func (s *Set) Dist(i, j int) float64 { return s.Locs[i].Pos.Dist(s.Locs[j].Pos) }

// TravelEnergy returns the flight energy between locations i and j:
// l(s_i, s_j) · η_t / v.
func (s *Set) TravelEnergy(i, j int) units.Joules {
	return s.Model.TravelEnergy(units.Meters(s.Dist(i, j)))
}

// AuxiliaryWeight returns w2(s_i, s_j) of Eq. 9: half the hover energies of
// both endpoints plus the travel energy of the edge. Lemma 1 proves the
// resulting complete graph is metric; TestAuxiliaryWeightIsMetric verifies
// it empirically.
func (s *Set) AuxiliaryWeight(i, j int) units.Joules {
	if i == j {
		return 0
	}
	return (s.Locs[i].HoverEnergy+s.Locs[j].HoverEnergy)/2 + s.TravelEnergy(i, j)
}

// CoverageUnion returns the sorted union of the coverage sets of the given
// locations.
func (s *Set) CoverageUnion(locs []int) []int {
	set := map[int]bool{}
	for _, l := range locs {
		for _, v := range s.Locs[l].Covered {
			set[v] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
