package hover

import (
	"maps"
	"math"
	"slices"
	"testing"
	"testing/quick"

	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

func smallNet() *sensornet.Network {
	return &sensornet.Network{
		Region:    geom.Square(100),
		Depot:     geom.Pt(0, 0),
		Bandwidth: 10, // MB/s
		CommRange: 15,
		Sensors: []sensornet.Sensor{
			{Pos: geom.Pt(20, 20), Data: 100}, // 10 s upload
			{Pos: geom.Pt(25, 20), Data: 50},  // 5 s
			{Pos: geom.Pt(80, 80), Data: 200}, // 20 s
		},
	}
}

func TestCoverageRadius(t *testing.T) {
	r0, err := CoverageRadius(50, 30)
	if err != nil || math.Abs(r0.F()-40) > 1e-12 {
		t.Errorf("CoverageRadius(50,30) = %v, %v", r0, err)
	}
	if r0, err := CoverageRadius(50, 0); err != nil || r0 != 50 {
		t.Errorf("H=0 should give R: %v %v", r0, err)
	}
	if r0, err := CoverageRadius(50, 50); err != nil || r0 != 0 {
		t.Errorf("H=R should give 0: %v %v", r0, err)
	}
	if _, err := CoverageRadius(50, 51); err == nil {
		t.Error("H>R accepted")
	}
	if _, err := CoverageRadius(0, 0); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := CoverageRadius(50, -1); err == nil {
		t.Error("negative H accepted")
	}
}

func TestBuildBasics(t *testing.T) {
	net := smallNet()
	s, err := Build(net, energy.Default(), 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Locs[DepotID].Pos != net.Depot {
		t.Error("location 0 must be the depot")
	}
	if s.Locs[DepotID].Award != 0 || s.Locs[DepotID].Sojourn != 0 || s.Locs[DepotID].HoverEnergy != 0 {
		t.Error("depot must have zero cost and award")
	}
	if s.Len() < 2 {
		t.Fatal("no candidates built")
	}
	// Every kept non-depot location must have non-empty coverage
	// (PruneEmpty default) and consistent derived quantities.
	for i := 1; i < s.Len(); i++ {
		loc := s.Locs[i]
		if len(loc.Covered) == 0 {
			t.Fatalf("location %d kept with empty coverage", i)
		}
		wantSojourn, wantAward := 0.0, 0.0
		for _, v := range loc.Covered {
			d := net.Sensors[v].Data
			wantAward += d
			if tt := d / net.Bandwidth; tt > wantSojourn {
				wantSojourn = tt
			}
			if net.Sensors[v].Pos.Dist(loc.Pos) > net.CommRange+1e-9 {
				t.Fatalf("location %d covers out-of-range sensor %d", i, v)
			}
		}
		if math.Abs(loc.Sojourn.F()-wantSojourn) > 1e-9 || math.Abs(loc.Award.F()-wantAward) > 1e-9 {
			t.Fatalf("location %d: sojourn/award %v/%v, want %v/%v", i, loc.Sojourn, loc.Award, wantSojourn, wantAward)
		}
		if math.Abs(loc.HoverEnergy.F()-150*loc.Sojourn.F()) > 1e-9 {
			t.Fatalf("location %d hover energy inconsistent", i)
		}
	}
	// Completeness: every sensor is covered by at least one candidate
	// (δ=10 < R0=15 guarantees a covering square centre exists).
	covered := map[int]bool{}
	for i := 1; i < s.Len(); i++ {
		for _, v := range s.Locs[i].Covered {
			covered[v] = true
		}
	}
	if len(covered) != len(net.Sensors) {
		t.Errorf("only %d/%d sensors covered by candidates", len(covered), len(net.Sensors))
	}
}

func TestBuildPruning(t *testing.T) {
	net := smallNet()
	pruned, err := Build(net, energy.Default(), 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kept, err := Build(net, energy.Default(), 10, Options{KeepEmpty: true, KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len() != kept.Grid.NumSquares()+1 {
		t.Errorf("KeepEmpty+KeepDuplicates should keep all %d squares, got %d", kept.Grid.NumSquares(), kept.Len()-1)
	}
	if pruned.Len() >= kept.Len() {
		t.Error("pruning removed nothing")
	}
	if pruned.PrunedEmpty == 0 {
		t.Error("expected empty squares to be pruned on this sparse field")
	}
	// Dedup keeps total coverage identical.
	if got, want := len(pruned.CoverageUnion(rangeInts(1, pruned.Len()))), len(net.Sensors); got != want {
		t.Errorf("pruned set covers %d sensors, want %d", got, want)
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestBuildErrors(t *testing.T) {
	net := smallNet()
	if _, err := Build(net, energy.Default(), 0, Options{}); err == nil {
		t.Error("delta=0 accepted")
	}
	bad := *net
	bad.Bandwidth = 0
	if _, err := Build(&bad, energy.Default(), 10, Options{}); err == nil {
		t.Error("invalid network accepted")
	}
	if _, err := Build(net, energy.Model{}, 10, Options{}); err == nil {
		t.Error("invalid energy model accepted")
	}
	if _, err := Build(net, energy.Default(), 10, Options{CoverRadius: -1}); err == nil {
		t.Error("negative cover radius accepted")
	}
}

func TestDistAndEnergyMetrics(t *testing.T) {
	net := smallNet()
	s, err := Build(net, energy.Default(), 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if s.Dist(i, i) != 0 || s.AuxiliaryWeight(i, i) != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := i + 1; j < s.Len(); j++ {
			if math.Abs(s.Dist(i, j)-s.Dist(j, i)) > 1e-12 {
				t.Fatal("Dist asymmetric")
			}
			wantTE := 10 * s.Dist(i, j) // η_t/v = 10 J/m
			if math.Abs(s.TravelEnergy(i, j).F()-wantTE) > 1e-9 {
				t.Fatalf("TravelEnergy(%d,%d) = %v, want %v", i, j, s.TravelEnergy(i, j), wantTE)
			}
		}
	}
}

// TestAuxiliaryWeightIsMetric verifies Lemma 1 on random instances: w2
// satisfies the triangle inequality.
func TestAuxiliaryWeightIsMetric(t *testing.T) {
	p := sensornet.DefaultGenParams()
	p.NumSensors = 40
	p.Side = 300
	net, err := sensornet.Generate(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(net, energy.Default(), 25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := s.Len()
	if n > 60 {
		n = 60 // keep the cubic check fast
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if s.AuxiliaryWeight(i, j) > s.AuxiliaryWeight(i, k)+s.AuxiliaryWeight(k, j)+1e-9 {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestVirtuals(t *testing.T) {
	net := smallNet()
	s, err := Build(net, energy.Default(), 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Virtuals(0); err == nil {
		t.Error("K=0 accepted")
	}
	const K = 4
	vs, err := s.Virtuals(K)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != (s.Len()-1)*K {
		t.Fatalf("virtual count %d, want %d", len(vs), (s.Len()-1)*K)
	}
	// Eq. 4/5 monotonicity: awards and sojourns non-decreasing in k, and
	// level K equals the full drain.
	byBase := map[int][]Virtual{}
	for _, v := range vs {
		byBase[v.Base] = append(byBase[v.Base], v)
	}
	for _, base := range slices.Sorted(maps.Keys(byBase)) {
		group := byBase[base]
		loc := s.Locs[base]
		for i, v := range group {
			if v.Level != i+1 || v.K != K {
				t.Fatalf("base %d: bad levels %+v", base, group)
			}
			wantSojourn := float64(v.Level) * loc.Sojourn.F() / K
			if math.Abs(v.Sojourn.F()-wantSojourn) > 1e-9 {
				t.Fatalf("base %d level %d: sojourn %v, want %v", base, v.Level, v.Sojourn, wantSojourn)
			}
			if i > 0 {
				if v.Award < group[i-1].Award-1e-9 || v.Sojourn <= group[i-1].Sojourn {
					t.Fatalf("base %d: monotonicity violated", base)
				}
			}
		}
		last := group[K-1]
		if math.Abs((last.Award-loc.Award).F()) > 1e-9 || math.Abs((last.Sojourn-loc.Sojourn).F()) > 1e-9 {
			t.Fatalf("base %d: level K (%v, %v) != full drain (%v, %v)", base, last.Award, last.Sojourn, loc.Award, loc.Sojourn)
		}
	}
}

func TestVirtualsK1EqualsFull(t *testing.T) {
	net := smallNet()
	s, _ := Build(net, energy.Default(), 10, Options{})
	vs, err := s.Virtuals(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		loc := s.Locs[v.Base]
		if math.Abs((v.Award-loc.Award).F()) > 1e-9 || math.Abs((v.Sojourn-loc.Sojourn).F()) > 1e-9 {
			t.Fatalf("K=1 virtual %d differs from full drain", v.Base)
		}
	}
}

func TestPartialAwardEquation4(t *testing.T) {
	// Property: PartialAward = Σ min(D_v, B·t) exactly, for random sojourns.
	net := smallNet()
	s, _ := Build(net, energy.Default(), 10, Options{})
	f := func(raw float64) bool {
		sojourn := math.Mod(math.Abs(raw), 30)
		for base := 1; base < s.Len(); base++ {
			want := 0.0
			for _, v := range s.Locs[base].Covered {
				want += math.Min(net.Sensors[v].Data, net.Bandwidth*sojourn)
			}
			if math.Abs(s.PartialAward(base, units.Seconds(sojourn)).F()-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResidualDrain(t *testing.T) {
	residual := []units.Bits{100, 0, 40}
	sojourn, award := ResidualDrain([]int{0, 1, 2}, residual, nil, 10)
	if award != 140 || sojourn != 10 {
		t.Errorf("ResidualDrain = %v, %v", sojourn, award)
	}
	sojourn, award = ResidualDrain([]int{1}, residual, nil, 10)
	if award != 0 || sojourn != 0 {
		t.Errorf("drained sensor should contribute nothing: %v %v", sojourn, award)
	}
}

func TestResidualPartialAward(t *testing.T) {
	residual := []units.Bits{100, 0, 40}
	// 3 s at 10 MB/s caps each sensor at 30 MB.
	if got := ResidualPartialAward([]int{0, 1, 2}, residual, nil, 10, 3); got != 60 {
		t.Errorf("ResidualPartialAward = %v, want 60", got)
	}
	if got := ResidualPartialAward([]int{0, 1, 2}, residual, nil, 10, 100); got != 140 {
		t.Errorf("long sojourn should take everything: %v", got)
	}
	if got := ResidualPartialAward(nil, residual, nil, 10, 5); got != 0 {
		t.Errorf("empty coverage: %v", got)
	}
}

func TestCoverageUnion(t *testing.T) {
	net := smallNet()
	s, _ := Build(net, energy.Default(), 10, Options{})
	all := s.CoverageUnion(rangeInts(0, s.Len()))
	if len(all) != len(net.Sensors) {
		t.Errorf("union covers %d sensors, want %d", len(all), len(net.Sensors))
	}
	if got := s.CoverageUnion(nil); len(got) != 0 {
		t.Errorf("empty union = %v", got)
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatal("union not sorted ascending")
		}
	}
}

func TestBuildPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale build in -short mode")
	}
	net, err := sensornet.Generate(sensornet.DefaultGenParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(net, energy.Default(), 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 100×100 grid; nearly all squares are within 50 m of some sensor at
	// this density, so expect thousands of candidates but full coverage.
	if s.Len() < 1000 {
		t.Errorf("suspiciously few candidates: %d", s.Len())
	}
	if got := len(s.CoverageUnion(rangeInts(1, s.Len()))); got != 500 {
		t.Errorf("candidates cover %d/500 sensors", got)
	}
}

func TestDrainWrapper(t *testing.T) {
	net := smallNet()
	s1, a1 := Drain(net, []int{0, 1})
	s2, a2 := DrainRates(net, []int{0, 1}, nil)
	if s1 != s2 || a1 != a2 {
		t.Errorf("Drain (%v,%v) != DrainRates (%v,%v)", s1, a1, s2, a2)
	}
	if a1 != 150 || s1 != 10 {
		t.Errorf("Drain = %v, %v", s1, a1)
	}
}
