package hover

import (
	"math"
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/radio"
	"uavdc/internal/units"
)

func TestBuildWithAltitudeShrinksCoverage(t *testing.T) {
	net := smallNet() // CommRange 15
	ground, err := Build(net, energy.Default(), 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Build(net, energy.Default(), 5, Options{Altitude: 12}) // R0 = 9
	if err != nil {
		t.Fatal(err)
	}
	if high.CoverRadius >= ground.CoverRadius {
		t.Errorf("altitude should shrink R0: %v vs %v", high.CoverRadius, ground.CoverRadius)
	}
	if want := math.Sqrt(15*15 - 12*12); math.Abs(high.CoverRadius.F()-want) > 1e-9 {
		t.Errorf("R0 = %v, want %v", high.CoverRadius, want)
	}
	if _, err := Build(net, energy.Default(), 5, Options{Altitude: -1}); err == nil {
		t.Error("negative altitude accepted")
	}
	if _, err := Build(net, energy.Default(), 5, Options{Altitude: 15}); err == nil {
		t.Error("altitude = range leaves zero coverage and should fail")
	}
	if _, err := Build(net, energy.Default(), 5, Options{Altitude: 20}); err == nil {
		t.Error("altitude above range accepted")
	}
}

func TestBuildWithRadioSlowsFarSensors(t *testing.T) {
	net := smallNet()
	constant, err := Build(net, energy.Default(), 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shannon := radio.Shannon{RefRate: units.BitsPerSecond(net.Bandwidth), RefDist: 1, RefSNR: 100, PathLossExp: 2}
	radios, err := Build(net, energy.Default(), 5, Options{Altitude: 10, CoverRadius: units.Meters(net.CommRange), Radio: shannon})
	if err != nil {
		t.Fatal(err)
	}
	if radios.Len() != constant.Len() {
		t.Fatalf("same R0 should give same candidates: %d vs %d", radios.Len(), constant.Len())
	}
	slower := 0
	for i := 1; i < radios.Len(); i++ {
		rl, cl := radios.Locs[i], constant.Locs[i]
		if rl.Rates == nil {
			t.Fatal("radio build must populate Rates")
		}
		for j := range rl.Covered {
			if rl.Rates[j].F() > net.Bandwidth+1e-9 {
				t.Fatalf("rate above calibration bandwidth: %v", rl.Rates[j])
			}
		}
		// Sojourn can only lengthen when rates drop.
		if rl.Sojourn < cl.Sojourn-1e-9 {
			t.Fatalf("location %d: radio sojourn %v shorter than constant %v", i, rl.Sojourn, cl.Sojourn)
		}
		if rl.Sojourn > cl.Sojourn+1e-9 {
			slower++
		}
		// Award (full volumes) is unchanged.
		if math.Abs((rl.Award - cl.Award).F()) > 1e-9 {
			t.Fatalf("award changed under radio model")
		}
	}
	if slower == 0 {
		t.Error("no sojourn lengthened — radio model had no effect")
	}
}

func TestPartialAwardUsesRates(t *testing.T) {
	net := smallNet()
	shannon := radio.Shannon{RefRate: units.BitsPerSecond(net.Bandwidth), RefDist: 1, RefSNR: 100, PathLossExp: 3}
	s, err := Build(net, energy.Default(), 5, Options{Altitude: 10, CoverRadius: units.Meters(net.CommRange), Radio: shannon})
	if err != nil {
		t.Fatal(err)
	}
	for base := 1; base < s.Len(); base++ {
		loc := &s.Locs[base]
		const sojourn = 3.0
		want := 0.0
		for i, v := range loc.Covered {
			want += math.Min(net.Sensors[v].Data, loc.Rates[i].F()*sojourn)
		}
		if got := s.PartialAward(base, sojourn).F(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("base %d: PartialAward %v, want %v", base, got, want)
		}
		for i := range loc.Covered {
			if s.RateAt(base, i) != loc.Rates[i] {
				t.Fatal("RateAt disagrees with Rates")
			}
		}
	}
}

func TestResidualDrainWithRates(t *testing.T) {
	residual := []units.Bits{100, 0, 40}
	rates := []units.BitsPerSecond{5, 10, 20}
	sojourn, award := ResidualDrain([]int{0, 1, 2}, residual, rates, 999)
	if award != 140 {
		t.Errorf("award = %v", award)
	}
	if sojourn != 20 { // 100 MB at 5 MB/s dominates
		t.Errorf("sojourn = %v, want 20", sojourn)
	}
}

func TestResidualPartialAwardWithRates(t *testing.T) {
	residual := []units.Bits{100, 0, 40}
	rates := []units.BitsPerSecond{5, 10, 20}
	// 2 s: sensor0 min(100, 10) + sensor2 min(40, 40) = 50.
	if got := ResidualPartialAward([]int{0, 1, 2}, residual, rates, 999, 2); got != 50 {
		t.Errorf("got %v, want 50", got)
	}
}
