package hover

import (
	"fmt"

	"uavdc/internal/units"
)

// Virtual is a virtual hovering location s_{j,k} (Section III-C): the real
// location Base visited for the k-th fraction of its full sojourn.
type Virtual struct {
	// Base is the index of the underlying real location in Set.Locs.
	Base int
	// Level is k ∈ 1..K.
	Level int
	// K is the partition granularity.
	K int
	// Sojourn is t(s_{j,k}) = k·t(s_j)/K (Eq. 5).
	Sojourn units.Seconds
	// Award is P(s_{j,k}) per Eq. 4: every covered sensor contributes
	// min(D_v, rate_v·Sojourn).
	Award units.Bits
}

// Virtuals materialises the K virtual locations of every non-depot
// candidate, ordered by (base, level). K must be ≥ 1.
func (s *Set) Virtuals(k int) ([]Virtual, error) {
	if k < 1 {
		return nil, fmt.Errorf("hover: K must be ≥ 1, got %d", k)
	}
	out := make([]Virtual, 0, (s.Len()-1)*k)
	for base := 1; base < s.Len(); base++ {
		loc := &s.Locs[base]
		for level := 1; level <= k; level++ {
			sojourn := units.Seconds(float64(level) * loc.Sojourn.F() / float64(k))
			out = append(out, Virtual{
				Base:    base,
				Level:   level,
				K:       k,
				Sojourn: sojourn,
				Award:   s.PartialAward(base, sojourn),
			})
		}
	}
	return out, nil
}

// PartialAward returns the data collectable at location base when hovering
// for the given duration with every covered sensor at full volume:
// Σ_v min(D_v, rate_v·sojourn) (Eq. 4 in closed form, generalised to
// per-sensor rates).
func (s *Set) PartialAward(base int, sojourn units.Seconds) units.Bits {
	var award units.Bits
	loc := &s.Locs[base]
	for i, v := range loc.Covered {
		award += units.Min(units.Bits(s.Net.Sensors[v].Data), units.Transfer(s.rate(loc, i), sojourn))
	}
	return award
}

// rate returns the uplink rate of the i-th covered sensor of loc.
func (s *Set) rate(loc *Location, i int) units.BitsPerSecond {
	if loc.Rates != nil {
		return loc.Rates[i]
	}
	return units.BitsPerSecond(s.Net.Bandwidth)
}

// RateAt returns the uplink rate of the i-th covered sensor of location
// base (the constant bandwidth when the set was built without a radio
// model).
func (s *Set) RateAt(base, i int) units.BitsPerSecond {
	return s.rate(&s.Locs[base], i)
}

// ResidualDrain returns the sojourn and award for fully draining the given
// sensors when their remaining volumes are residual[v] (the Algorithm 3
// recomputation step: after partial collection elsewhere, both t' and P'
// shrink). rates is parallel to covered; nil means every sensor uploads at
// bandwidth. Sensors with zero residual contribute nothing.
func ResidualDrain(covered []int, residual []units.Bits, rates []units.BitsPerSecond, bandwidth units.BitsPerSecond) (sojourn units.Seconds, award units.Bits) {
	for i, v := range covered {
		d := residual[v]
		if d <= 0 {
			continue
		}
		award += d
		r := bandwidth
		if rates != nil {
			r = rates[i]
		}
		if t := units.TransferTime(d, r); t > sojourn {
			sojourn = t
		}
	}
	return sojourn, award
}

// ResidualPartialAward returns Σ_v min(residual_v, rate_v·sojourn) over
// covered: the award of a virtual location against current residual
// volumes. rates is parallel to covered; nil means bandwidth for all.
func ResidualPartialAward(covered []int, residual []units.Bits, rates []units.BitsPerSecond, bandwidth units.BitsPerSecond, sojourn units.Seconds) units.Bits {
	var award units.Bits
	for i, v := range covered {
		if d := residual[v]; d > 0 {
			r := bandwidth
			if rates != nil {
				r = rates[i]
			}
			award += units.Min(d, units.Transfer(r, sojourn))
		}
	}
	return award
}
