package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression's callee to its function or
// method object, or nil for builtins, conversions, and indirect calls
// through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPkgPath returns the callee's declaring package path, or "" for
// universe-scope objects (error.Error).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isMethod reports whether fn has a receiver.
func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// in reports whether s equals one of the choices.
func in(s string, choices ...string) bool {
	for _, c := range choices {
		if s == c {
			return true
		}
	}
	return false
}

// namedPtrTo reports whether t is *pkgPath.Name.
func namedPtrTo(t types.Type, pkgPath, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
