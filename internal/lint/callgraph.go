package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// FuncID is a stable, generation-independent identity for a module
// function: "pkgpath.Recv.Name" for methods, "pkgpath.Name" for plain
// functions, "parentID.funcN" for the N-th function literal inside a
// parent (N in source order). String identity matters: units with
// in-package tests are re-checked and carry fresh *types.Func objects,
// while cross-package call sites resolve to the pass-1 objects — the
// same function must land on the same node either way.
type FuncID string

// Edge is one call-graph edge, anchored at the call (or reference)
// site.
type Edge struct {
	// Callee is the target's FuncID.
	Callee FuncID
	// Pos is the call or reference position.
	Pos token.Pos
	// Mode records how the edge arose: "call" (static call), "devirt"
	// (interface call resolved to an in-module concrete method),
	// "literal" (function literal declared inside the caller), or "ref"
	// (function or method value referenced without being called —
	// conservatively assumed callable).
	Mode string
}

// Effect is one direct observable effect inside a function body.
type Effect struct {
	// Kind classifies the effect.
	Kind EffectKind
	// Pos is the effect site.
	Pos token.Pos
	// Desc labels the site for diagnostics ("time.Now", "write to
	// package-level var planCount").
	Desc string
}

// FuncNode is one function (or function literal) of the module.
type FuncNode struct {
	// ID is the node's stable identity.
	ID FuncID
	// Display is the short human name used in call chains
	// ("core.Algorithm2.Plan", "tsp.TwoOpt.func1").
	Display string
	// Pkg is the analysis unit holding the body — diagnostics anchored
	// in this node belong to that unit's pass.
	Pkg *Package
	// Pos is the declaration position.
	Pos token.Pos
	// Edges are the outgoing calls/references, in source order.
	Edges []Edge
	// Effects are the direct effects, in source order.
	Effects []Effect

	litCount int // function literals seen so far, for child naming
}

// Graph is the same-module call graph: a node per function declaration
// and function literal in non-test code, edges for static calls,
// devirtualized interface calls, literals, and function/method values.
type Graph struct {
	// Nodes maps each FuncID to its node.
	Nodes map[FuncID]*FuncNode
	// order lists node IDs in deterministic build order (unit path,
	// file name, declaration order).
	order []FuncID
}

// Node returns the node for id, or nil.
func (g *Graph) Node(id FuncID) *FuncNode { return g.Nodes[id] }

// funcID derives the stable identity of a named function or method.
func funcID(fn *types.Func) FuncID {
	pkg := funcPkgPath(fn)
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return FuncID(pkg + "." + named.Obj().Name() + "." + fn.Name())
		}
		return FuncID(pkg + ".?." + fn.Name())
	}
	return FuncID(pkg + "." + fn.Name())
}

// displayName is the short chain label for a named function.
func displayName(fn *types.Func) string {
	short := pkgBaseName(funcPkgPath(fn))
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return short + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return short + "." + fn.Name()
}

// buildGraph constructs the call graph over every non-test function of
// the module. Test files and external-test units are excluded: the
// purity contract binds shipped code; tests exercise it.
func buildGraph(mod *Module) *Graph {
	g := &Graph{Nodes: map[FuncID]*FuncNode{}}
	dv := newDevirt(mod)
	for _, pkg := range mod.Pkgs {
		if strings.HasSuffix(pkg.Path, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			if pkg.IsTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				id := funcID(fn)
				if _, taken := g.Nodes[id]; taken {
					// Multiple init functions (or redeclarations across
					// build shapes) share a name; disambiguate by line.
					id = FuncID(string(id) + "#" + strconv.Itoa(mod.Fset.Position(fd.Pos()).Line))
				}
				node := &FuncNode{ID: id, Display: displayName(fn), Pkg: pkg, Pos: fd.Pos()}
				g.Nodes[id] = node
				g.order = append(g.order, id)
				w := &graphWalker{g: g, mod: mod, pkg: pkg, dv: dv}
				w.walkBody(node, fd.Body)
			}
		}
	}
	return g
}

// graphWalker builds one function's edges and effects.
type graphWalker struct {
	g   *Graph
	mod *Module
	pkg *Package
	dv  *devirt
	// consumed marks identifiers already handled as a call's callee, so
	// the reference pass does not double-count them.
	consumed map[*ast.Ident]bool
}

// inModule reports whether path belongs to the analyzed module.
func (w *graphWalker) inModule(path string) bool {
	return path == w.mod.Path || strings.HasPrefix(path, w.mod.Path+"/")
}

// walkBody populates node from body, recursing into function literals
// as child nodes.
func (w *graphWalker) walkBody(node *FuncNode, body ast.Node) {
	if w.consumed == nil {
		w.consumed = map[*ast.Ident]bool{}
	}
	info := w.pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			node.litCount++
			suffix := ".func" + strconv.Itoa(node.litCount)
			child := &FuncNode{
				ID:      FuncID(string(node.ID) + suffix),
				Display: node.Display + suffix,
				Pkg:     w.pkg,
				Pos:     n.Pos(),
			}
			w.g.Nodes[child.ID] = child
			w.g.order = append(w.g.order, child.ID)
			node.Edges = append(node.Edges, Edge{Callee: child.ID, Pos: n.Pos(), Mode: "literal"})
			w.walkBody(child, n.Body)
			return false
		case *ast.CallExpr:
			w.call(node, n)
			return true
		case *ast.Ident:
			w.reference(node, n)
			return true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				w.globalWrite(node, lhs)
			}
			return true
		case *ast.IncDecStmt:
			w.globalWrite(node, n.X)
			return true
		case *ast.SendStmt:
			node.Effects = append(node.Effects, Effect{Kind: EffectChan, Pos: n.Pos(), Desc: "channel send"})
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				node.Effects = append(node.Effects, Effect{Kind: EffectChan, Pos: n.Pos(), Desc: "channel receive"})
			}
			return true
		case *ast.SelectStmt:
			node.Effects = append(node.Effects, Effect{Kind: EffectChan, Pos: n.Pos(), Desc: "select"})
			return true
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					node.Effects = append(node.Effects, Effect{Kind: EffectChan, Pos: n.Pos(), Desc: "range over channel"})
				}
			}
			return true
		}
		return true
	})
}

// call classifies one call expression: builtin, static module call,
// interface call (devirtualized), external call (effect table), or
// indirect call through a function value.
func (w *graphWalker) call(node *FuncNode, call *ast.CallExpr) {
	info := w.pkg.Info
	fun := ast.Unparen(call.Fun)
	// Builtins: panic and close are effects; the rest are pure.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			w.consumed[id] = true
			switch b.Name() {
			case "panic":
				node.Effects = append(node.Effects, Effect{Kind: EffectPanic, Pos: call.Pos(), Desc: "panic"})
			case "close":
				node.Effects = append(node.Effects, Effect{Kind: EffectChan, Pos: call.Pos(), Desc: "close"})
			}
			return
		}
	}
	// Conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		if _, isLit := fun.(*ast.FuncLit); isLit {
			return // directly-invoked literal: the literal edge covers it
		}
		node.Effects = append(node.Effects, Effect{Kind: EffectUnknownCallee, Pos: call.Pos(), Desc: "indirect call through a function value"})
		return
	}
	// Mark the callee identifier as consumed so the reference pass
	// does not add a duplicate "ref" edge for it.
	switch f := fun.(type) {
	case *ast.Ident:
		w.consumed[f] = true
	case *ast.SelectorExpr:
		w.consumed[f.Sel] = true
	}
	w.target(node, fn, call.Pos(), "call")
}

// reference adds a conservative edge when an identifier names a module
// function or method without calling it (function value, method value):
// once the value escapes, anything may invoke it.
func (w *graphWalker) reference(node *FuncNode, id *ast.Ident) {
	if w.consumed[id] {
		return
	}
	fn, ok := w.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	w.consumed[id] = true
	w.target(node, fn, id.Pos(), "ref")
}

// target routes a resolved function object to the right edge or effect.
func (w *graphWalker) target(node *FuncNode, fn *types.Func, pos token.Pos, mode string) {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			impls := w.dv.resolve(fn)
			for _, callee := range impls {
				node.Edges = append(node.Edges, Edge{Callee: callee, Pos: pos, Mode: "devirt"})
			}
			if len(impls) == 0 {
				node.Effects = append(node.Effects, Effect{
					Kind: EffectUnknownCallee, Pos: pos,
					Desc: "interface call " + recvLabel(fn) + " with no in-module implementation",
				})
			}
			return
		}
	}
	if w.inModule(funcPkgPath(fn)) {
		node.Edges = append(node.Edges, Edge{Callee: funcID(fn), Pos: pos, Mode: mode})
		return
	}
	if kind, desc, ok := classifyExternalCall(fn); ok {
		node.Effects = append(node.Effects, Effect{Kind: kind, Pos: pos, Desc: desc})
	}
}

// globalWrite records an effect when an assignment target's base
// resolves to a package-level variable of the module. Writes through a
// pointer previously taken from a global escape this check — the
// conservative gap is documented in CONTRIBUTING.md.
func (w *graphWalker) globalWrite(node *FuncNode, lhs ast.Expr) {
	info := w.pkg.Info
	e := lhs
peel:
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					e = x.Sel // qualified identifier: Sel names the object
					continue
				}
			}
			e = x.X
		default:
			break peel
		}
	}
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !w.inModule(v.Pkg().Path()) {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return
	}
	node.Effects = append(node.Effects, Effect{
		Kind: EffectGlobalWrite, Pos: lhs.Pos(),
		Desc: "write to package-level var " + pkgBaseName(v.Pkg().Path()) + "." + v.Name(),
	})
}

// devirt resolves interface method calls to the in-module concrete
// methods that could stand behind them. Candidate types come from the
// pass-1 generation (Module.BaseTypes): re-checked units carry twin
// type objects, so interfaces named at a re-checked call site are first
// mapped back to their pass-1 originals before types.Implements runs —
// one generation on both sides, or the check is vacuously false.
type devirt struct {
	mod   *Module
	named []*types.Named      // concrete module types, deterministic order
	cache map[string][]FuncID // by interface key + method name
}

func newDevirt(mod *Module) *devirt {
	dv := &devirt{mod: mod, cache: map[string][]FuncID{}}
	paths := make([]string, 0, len(mod.BaseTypes))
	for p := range mod.BaseTypes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		scope := mod.BaseTypes[p].Scope()
		names := scope.Names()
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			dv.named = append(dv.named, named)
		}
	}
	return dv
}

// resolve returns the FuncIDs of every in-module concrete method that
// could satisfy a call to the abstract method fn.
func (dv *devirt) resolve(fn *types.Func) []FuncID {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv().Type()
	iface, key := dv.canonical(recv)
	if iface == nil {
		return nil
	}
	key += "." + fn.Name()
	if cached, ok := dv.cache[key]; ok {
		return cached
	}
	var out []FuncID
	for _, named := range dv.named {
		var r types.Type = named
		if !types.Implements(r, iface) {
			r = types.NewPointer(named)
			if !types.Implements(r, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(r, true, named.Obj().Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			out = append(out, funcID(m))
		}
	}
	dv.cache[key] = out
	return out
}

// canonical maps an interface type (possibly from a re-checked unit) to
// its pass-1 twin and a stable cache key. Standard-library interfaces
// are already canonical — the loader shares one serialized source
// importer, so their objects are identical across generations.
func (dv *devirt) canonical(recv types.Type) (*types.Interface, string) {
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if path == dv.mod.Path || strings.HasPrefix(path, dv.mod.Path+"/") {
				base := dv.mod.BaseTypes[path]
				if base == nil {
					return nil, ""
				}
				tn, ok := base.Scope().Lookup(obj.Name()).(*types.TypeName)
				if !ok {
					return nil, ""
				}
				iface, ok := tn.Type().Underlying().(*types.Interface)
				if !ok {
					return nil, ""
				}
				return iface, path + "." + obj.Name()
			}
			iface, ok := named.Underlying().(*types.Interface)
			if !ok {
				return nil, ""
			}
			return iface, path + "." + obj.Name()
		}
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil, ""
	}
	qual := func(p *types.Package) string { return p.Path() }
	return iface, types.TypeString(recv, qual)
}
