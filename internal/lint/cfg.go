package lint

import (
	"go/ast"
	"go/token"
)

// Block is one basic block of an intra-procedural control-flow graph:
// a maximal straight-line run of statements (and controlling
// expressions) with branching only at the end.
type Block struct {
	// Nodes holds the block's statements and controlling expressions in
	// execution order. Controlling expressions (an if condition, a
	// switch tag, a range subject) appear as bare ast.Expr nodes;
	// everything else is an ast.Stmt. Function-literal bodies are NOT
	// expanded here — each literal gets its own CFG.
	Nodes []ast.Node
	// Succs are the control-flow successors.
	Succs []*Block
	// Returns marks a block ending in an explicit return statement.
	Returns bool
	// FallsOff marks the block that exits the function by running past
	// the end of its body.
	FallsOff bool
	// Terminates marks a block ending in a call the caller declared
	// non-returning (panic, os.Exit, ...); such blocks are not return
	// paths.
	Terminates bool
}

// CFG is the control-flow graph of one function body. It models the
// structured constructs — if/for/range/switch/type-switch/select,
// break/continue (labeled included), fallthrough, return, and
// terminating calls. goto is not modeled: a function using it gets
// Unsupported set and analyzers should skip it rather than guess.
type CFG struct {
	Entry  *Block
	Blocks []*Block
	// SelectComms marks the comm statements of select clauses: their
	// top-level channel operation blocks (or not) as part of the select
	// itself, never independently.
	SelectComms map[ast.Node]bool
	// Unsupported is set when the body contains a construct the builder
	// does not model (goto, or a branch to an unknown label).
	Unsupported bool
}

// BuildCFG builds the control-flow graph of body. isTerminal, which may
// be nil, reports whether a call expression never returns (panic,
// os.Exit, testing's Fatal family, ...); statements ending in such
// calls terminate their block without making it a return path.
func BuildCFG(body *ast.BlockStmt, isTerminal func(*ast.CallExpr) bool) *CFG {
	if isTerminal == nil {
		isTerminal = func(*ast.CallExpr) bool { return false }
	}
	b := &cfgBuilder{
		cfg:        &CFG{SelectComms: map[ast.Node]bool{}},
		isTerminal: isTerminal,
	}
	b.cur = b.newBlock()
	b.cfg.Entry = b.cur
	b.stmts(body.List)
	b.cur.FallsOff = true
	return b.cfg
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label    string // enclosing label, "" if none
	breakTo  *Block
	contTo   *Block // nil for switch/select frames
	isSelect bool   // break inside select resolves here too
}

type cfgBuilder struct {
	cfg        *CFG
	cur        *Block
	frames     []frame
	label      string // pending label for the next loop/switch/select
	fallTo     *Block // fallthrough target inside a switch clause
	isTerminal func(*ast.CallExpr) bool
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// link adds an edge from -> to.
func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// takeLabel consumes the pending label for a frame push.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		link(cond, then)
		b.cur = then
		b.stmts(s.Body.List)
		link(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			link(cond, els)
			b.cur = els
			b.stmt(s.Else)
			link(b.cur, after)
		} else {
			link(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		link(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		link(head, body)
		if s.Cond != nil {
			link(head, after)
		}
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			link(post, head)
			contTo = post
		}
		b.frames = append(b.frames, frame{label: label, breakTo: after, contTo: contTo})
		b.cur = body
		b.stmts(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		link(b.cur, contTo)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		// The range statement itself heads the loop: analyzers see the
		// subject expression (and can, e.g., spot a channel range) there.
		head.Nodes = append(head.Nodes, s)
		link(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		link(head, body)
		link(head, after)
		b.frames = append(b.frames, frame{label: label, breakTo: after, contTo: head})
		b.cur = body
		b.stmts(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		link(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		// The select statement itself stays in the origin block, so
		// analyzers can ask "does this select block?" (no default = yes)
		// with the pre-select state.
		b.cur.Nodes = append(b.cur.Nodes, s)
		origin := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, frame{label: label, breakTo: after, isSelect: true})
		for _, c := range s.Body.List {
			clause := c.(*ast.CommClause)
			cb := b.newBlock()
			link(origin, cb)
			if clause.Comm != nil {
				b.cfg.SelectComms[clause.Comm] = true
				cb.Nodes = append(cb.Nodes, clause.Comm)
			}
			b.cur = cb
			b.stmts(clause.Body)
			link(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A clauseless select{} blocks forever; after is then
		// unreachable, which the dataflow walk handles naturally.
		b.cur = after

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cur.Returns = true
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			b.cfg.Unsupported = true
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				link(b.cur, b.fallTo)
			} else {
				b.cfg.Unsupported = true
			}
			b.cur = b.newBlock()
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				link(b.cur, f.breakTo)
			} else {
				b.cfg.Unsupported = true
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				link(b.cur, f.contTo)
			} else {
				b.cfg.Unsupported = true
			}
			b.cur = b.newBlock()
		}

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isTerminal(call) {
			b.cur.Terminates = true
			b.cur = b.newBlock()
		}

	default:
		// Assignments, declarations, defer, go, sends, inc/dec, empty
		// statements: straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchLike builds the shared switch / type-switch shape. guard is the
// type switch's assign statement, nil for a value switch.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, guard ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	if guard != nil {
		b.cur.Nodes = append(b.cur.Nodes, guard)
	}
	origin := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, frame{label: label, breakTo: after})

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		link(origin, blocks[i])
		for _, e := range c.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		link(origin, after)
	}
	savedFall := b.fallTo
	for i, c := range clauses {
		if i+1 < len(blocks) {
			b.fallTo = blocks[i+1]
		} else {
			b.fallTo = nil
		}
		b.cur = blocks[i]
		b.stmts(c.Body)
		link(b.cur, after)
	}
	b.fallTo = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// findFrame resolves a break/continue target: the innermost matching
// frame, or the labeled one. needLoop restricts the search to loop
// frames (continue).
func (b *cfgBuilder) findFrame(label *ast.Ident, needLoop bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && f.contTo == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}
