package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFG parses body as the statements of a function and builds its
// CFG with panic/os.Exit as the terminal calls.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return BuildCFG(fn.Body, func(call *ast.CallExpr) bool {
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			return fn.Name == "panic"
		case *ast.SelectorExpr:
			if pkg, ok := fn.X.(*ast.Ident); ok {
				return pkg.Name == "os" && fn.Sel.Name == "Exit"
			}
		}
		return false
	})
}

// reachable returns the set of blocks reachable from the entry.
func reachable(cfg *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(cfg.Entry)
	return seen
}

// exits counts the reachable function-exit blocks by kind.
func exits(cfg *CFG) (returns, fallsOff, terminates int) {
	for b := range reachable(cfg) {
		if b.Returns {
			returns++
		}
		if b.FallsOff {
			fallsOff++
		}
		if b.Terminates {
			terminates++
		}
	}
	return
}

func TestCFGStraightLine(t *testing.T) {
	cfg := buildCFG(t, "x := 1\nx++\n_ = x")
	if cfg.Unsupported {
		t.Fatal("straight-line body marked Unsupported")
	}
	if len(cfg.Entry.Nodes) != 3 {
		t.Errorf("entry has %d nodes, want 3", len(cfg.Entry.Nodes))
	}
	r, f, term := exits(cfg)
	if r != 0 || f != 1 || term != 0 {
		t.Errorf("exits = %d returns, %d falls-off, %d terminates; want 0, 1, 0", r, f, term)
	}
}

func TestCFGIfElseBothReturn(t *testing.T) {
	cfg := buildCFG(t, "if x := 1; x > 0 {\n\treturn\n} else {\n\treturn\n}")
	r, f, _ := exits(cfg)
	if r != 2 {
		t.Errorf("got %d reachable return blocks, want 2", r)
	}
	// Both arms return, so the fall-off continuation is unreachable.
	if f != 0 {
		t.Errorf("got %d reachable falls-off blocks, want 0", f)
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	cfg := buildCFG(t, "x := 1\nif x > 0 {\n\tx++\n}\n_ = x")
	// The condition block must branch both into the then-body and
	// around it.
	r, f, _ := exits(cfg)
	if r != 0 || f != 1 {
		t.Errorf("exits = %d returns, %d falls-off; want 0, 1", r, f)
	}
	if cfg.Unsupported {
		t.Fatal("marked Unsupported")
	}
}

func TestCFGForLoop(t *testing.T) {
	cfg := buildCFG(t, "for i := 0; i < 3; i++ {\n\tif i == 1 {\n\t\tcontinue\n\t}\n\tif i == 2 {\n\t\tbreak\n\t}\n}\nreturn")
	if cfg.Unsupported {
		t.Fatal("for loop with break/continue marked Unsupported")
	}
	r, _, _ := exits(cfg)
	if r != 1 {
		t.Errorf("got %d reachable return blocks, want 1", r)
	}
}

func TestCFGForeverLoop(t *testing.T) {
	// for {} without a break never reaches the code after it.
	cfg := buildCFG(t, "for {\n\t_ = 1\n}\nreturn")
	r, f, _ := exits(cfg)
	if r != 0 || f != 0 {
		t.Errorf("exits after for{} = %d returns, %d falls-off; want 0, 0", r, f)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg := buildCFG(t, "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}\nreturn")
	if cfg.Unsupported {
		t.Fatal("labeled break marked Unsupported")
	}
	r, _, _ := exits(cfg)
	if r != 1 {
		t.Errorf("got %d reachable return blocks, want 1 (break outer must escape both loops)", r)
	}
}

func TestCFGRangeHeadsLoop(t *testing.T) {
	cfg := buildCFG(t, "xs := []int{1}\nfor _, x := range xs {\n\t_ = x\n}")
	var rangeBlock *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				rangeBlock = b
			}
		}
	}
	if rangeBlock == nil {
		t.Fatal("no block carries the RangeStmt node")
	}
	// The range head branches into the body and past the loop.
	if len(rangeBlock.Succs) != 2 {
		t.Errorf("range head has %d successors, want 2", len(rangeBlock.Succs))
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := buildCFG(t, "switch x := 1; x {\ncase 1:\n\tfallthrough\ncase 2:\n\treturn\ndefault:\n}\nreturn")
	if cfg.Unsupported {
		t.Fatal("switch with fallthrough marked Unsupported")
	}
	r, f, _ := exits(cfg)
	// case-2's return plus the final return; default falls through to it.
	if r != 2 || f != 0 {
		t.Errorf("exits = %d returns, %d falls-off; want 2, 0", r, f)
	}
}

func TestCFGSwitchNoDefault(t *testing.T) {
	// Without a default clause control can skip every case.
	cfg := buildCFG(t, "switch 1 {\ncase 1:\n\treturn\n}\n_ = 1")
	r, f, _ := exits(cfg)
	if r != 1 || f != 1 {
		t.Errorf("exits = %d returns, %d falls-off; want 1, 1", r, f)
	}
}

func TestCFGTypeSwitchGuardRecorded(t *testing.T) {
	cfg := buildCFG(t, "var v any = 1\nswitch x := v.(type) {\ncase int:\n\t_ = x\ndefault:\n\t_ = x\n}")
	found := false
	for _, n := range cfg.Entry.Nodes {
		if as, ok := n.(ast.Stmt); ok {
			if _, isAssign := as.(*ast.AssignStmt); isAssign {
				found = true
			}
		}
	}
	if !found {
		t.Error("type-switch guard assignment not recorded in the origin block")
	}
}

func TestCFGSelect(t *testing.T) {
	cfg := buildCFG(t, "ch := make(chan int)\nselect {\ncase v := <-ch:\n\t_ = v\ncase ch <- 1:\ndefault:\n}")
	if cfg.Unsupported {
		t.Fatal("select marked Unsupported")
	}
	if len(cfg.SelectComms) != 2 {
		t.Errorf("SelectComms has %d entries, want 2 (one per non-default comm)", len(cfg.SelectComms))
	}
	// The SelectStmt node itself must stay in its origin block, so
	// analyzers can ask "does this select block?" with pre-select state.
	inOrigin := false
	for _, n := range cfg.Entry.Nodes {
		if _, ok := n.(*ast.SelectStmt); ok {
			inOrigin = true
		}
	}
	if !inOrigin {
		t.Error("SelectStmt node is not in the origin block")
	}
}

func TestCFGClauselessSelectBlocksForever(t *testing.T) {
	cfg := buildCFG(t, "select {}\nreturn")
	r, f, _ := exits(cfg)
	if r != 0 || f != 0 {
		t.Errorf("exits after select{} = %d returns, %d falls-off; want 0, 0", r, f)
	}
}

func TestCFGGotoUnsupported(t *testing.T) {
	cfg := buildCFG(t, "goto done\ndone:\n\treturn")
	if !cfg.Unsupported {
		t.Error("goto did not set Unsupported")
	}
}

func TestCFGBackwardGotoUnsupported(t *testing.T) {
	// A backward goto forms a loop the builder refuses to model.
	cfg := buildCFG(t, "loop:\n\t_ = 1\n\tgoto loop")
	if !cfg.Unsupported {
		t.Error("backward goto did not set Unsupported")
	}
}

func TestCFGGotoInsideLoopUnsupported(t *testing.T) {
	// Unsupported is sticky even when the goto is buried in supported
	// structure: the whole body is abandoned, not just the inner loop.
	cfg := buildCFG(t, "for i := 0; i < 3; i++ {\n\tif i == 1 {\n\t\tgoto out\n\t}\n}\nout:\n\treturn")
	if !cfg.Unsupported {
		t.Error("goto inside a for loop did not set Unsupported")
	}
}

func TestCFGLabeledBlockBreakUnsupported(t *testing.T) {
	// Labels only attach to loop/switch/select frames; a labeled block
	// statement gives break L no frame to resolve against.
	cfg := buildCFG(t, "L:\n\t{\n\t\tbreak L\n\t}\n\treturn")
	if !cfg.Unsupported {
		t.Error("break to a labeled block did not set Unsupported")
	}
}

func TestCFGContinueLabeledSwitchUnsupported(t *testing.T) {
	// continue needs a loop frame; a switch frame (even labeled) has no
	// continue target.
	cfg := buildCFG(t, "sw:\n\tswitch {\n\tdefault:\n\t\tcontinue sw\n\t}")
	if !cfg.Unsupported {
		t.Error("continue targeting a labeled switch did not set Unsupported")
	}
}

func TestCFGTerminatingCalls(t *testing.T) {
	cfg := buildCFG(t, "if true {\n\tpanic(\"boom\")\n}\nos.Exit(1)")
	r, f, term := exits(cfg)
	if r != 0 || f != 0 {
		t.Errorf("exits = %d returns, %d falls-off; want 0, 0 — both paths terminate", r, f)
	}
	if term != 2 {
		t.Errorf("got %d terminating blocks, want 2", term)
	}
}

func TestCFGDeferAndGoAreStraightLine(t *testing.T) {
	cfg := buildCFG(t, "defer f()\ngo f()\n_ = 1")
	if len(cfg.Entry.Nodes) != 3 {
		t.Errorf("entry has %d nodes, want 3 (defer, go, assign)", len(cfg.Entry.Nodes))
	}
	if cfg.Unsupported {
		t.Fatal("marked Unsupported")
	}
}
