package lint

import (
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// EffectKind classifies one observable side effect of a function body.
// The first five kinds violate the plan-purity contract (DESIGN.md
// decision 9): a cached plan keyed by the canonical instance is only
// sound if planning reads nothing but the instance. The remaining kinds
// are tracked in summaries — locksafety and golifecycle care, and the
// planners' deterministic parallel scan uses channels and WaitGroups
// legitimately — but they are not pureplan violations.
type EffectKind uint8

const (
	// EffectWallClock is a real-time read (time.Now/Since/Until).
	EffectWallClock EffectKind = iota
	// EffectRand is a process-global randomness read (global math/rand,
	// math/rand/v2 top-level functions, crypto/rand).
	EffectRand
	// EffectGlobalWrite is an assignment or ++/-- whose target resolves
	// to a package-level variable of this module.
	EffectGlobalWrite
	// EffectIO is file, network, process, or stdout/stderr access.
	EffectIO
	// EffectEnv is environment or runtime-configuration access
	// (os.Getenv, runtime.GOMAXPROCS, ...).
	EffectEnv
	// EffectChan is a channel operation (send, receive, close, select,
	// range over a channel).
	EffectChan
	// EffectSync is a lock or synchronization call (sync.Mutex.Lock,
	// WaitGroup.Wait, ...).
	EffectSync
	// EffectPanic is an explicit panic call.
	EffectPanic
	// EffectUnknownCallee marks a call the graph could not resolve: an
	// interface method with no in-module implementation, or an indirect
	// call through a plain function value. Conservative marker, not a
	// violation by itself.
	EffectUnknownCallee

	numEffectKinds
)

// String names the kind for diagnostics.
func (k EffectKind) String() string {
	switch k {
	case EffectWallClock:
		return "wall-clock read"
	case EffectRand:
		return "global randomness read"
	case EffectGlobalWrite:
		return "package-level state write"
	case EffectIO:
		return "I/O"
	case EffectEnv:
		return "environment access"
	case EffectChan:
		return "channel operation"
	case EffectSync:
		return "synchronization"
	case EffectPanic:
		return "panic"
	case EffectUnknownCallee:
		return "unresolved call"
	}
	return "unknown effect"
}

// EffectSet is a bitmask over EffectKind.
type EffectSet uint16

// Add returns s with kind set.
func (s EffectSet) Add(kind EffectKind) EffectSet { return s | 1<<kind }

// Has reports whether kind is set.
func (s EffectSet) Has(kind EffectKind) bool { return s&(1<<kind) != 0 }

// String lists the set kinds in declaration order.
func (s EffectSet) String() string {
	if s == 0 {
		return "pure"
	}
	var parts []string
	for k := EffectKind(0); k < numEffectKinds; k++ {
		if s.Has(k) {
			parts = append(parts, k.String())
		}
	}
	return strings.Join(parts, "+")
}

// violatingEffects is the subset of kinds that break plan purity.
const violatingEffects = EffectSet(1<<EffectWallClock | 1<<EffectRand |
	1<<EffectGlobalWrite | 1<<EffectIO | 1<<EffectEnv)

// classifyExternalCall classifies a call to a function outside the
// module. It returns the effect kind, a short site label for
// diagnostics ("time.Now", "rand.Float64"), and ok=false for calls that
// are effect-free (or out of scope). This table is the single source of
// truth for what counts as a wall-clock or randomness read — the
// intra-procedural nodeterminism analyzer and the interprocedural
// pureplan analyzer both consult it, so the two can never disagree on a
// site's classification.
func classifyExternalCall(fn *types.Func) (EffectKind, string, bool) {
	pkg := funcPkgPath(fn)
	name := fn.Name()
	label := pkgBaseName(pkg) + "." + name
	if isMethod(fn) {
		switch pkg {
		case "sync":
			return EffectSync, label, true
		case "os", "net", "net/http", "os/exec":
			return EffectIO, recvLabel(fn), true
		case "log":
			return EffectIO, recvLabel(fn), true
		}
		return 0, "", false
	}
	switch pkg {
	case "time":
		if in(name, "Now", "Since", "Until") {
			return EffectWallClock, label, true
		}
	case "math/rand", "math/rand/v2":
		// Constructors only build an explicitly seeded generator — the
		// read happens through the returned *Rand's methods, which carry
		// their seed and are deterministic.
		if !in(name, "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8") {
			return EffectRand, label, true
		}
	case "crypto/rand":
		return EffectRand, "crypto/rand." + name, true
	case "os":
		if in(name, "Getenv", "LookupEnv", "Environ", "ExpandEnv", "Hostname",
			"Getwd", "UserHomeDir", "UserCacheDir", "UserConfigDir", "TempDir",
			"Getpid", "Getppid", "Getuid", "Geteuid", "Getgid", "Getegid") {
			return EffectEnv, label, true
		}
		if in(name, "Open", "OpenFile", "Create", "CreateTemp", "ReadFile",
			"WriteFile", "ReadDir", "Remove", "RemoveAll", "Rename", "Mkdir",
			"MkdirAll", "MkdirTemp", "Stat", "Lstat", "Chdir", "Chmod", "Chown",
			"Symlink", "Link", "Readlink", "Truncate", "Exit", "Pipe",
			"StartProcess", "FindProcess", "ReadLink") {
			return EffectIO, label, true
		}
	case "net", "net/http", "os/exec", "syscall":
		return EffectIO, label, true
	case "io/ioutil":
		if in(name, "ReadFile", "WriteFile", "ReadDir", "ReadAll", "TempDir", "TempFile") {
			return EffectIO, label, true
		}
	case "fmt":
		if in(name, "Print", "Printf", "Println", "Scan", "Scanf", "Scanln") {
			return EffectIO, label, true
		}
	case "log":
		return EffectIO, label, true
	case "path/filepath":
		if in(name, "Walk", "WalkDir", "Glob", "Abs", "EvalSymlinks") {
			return EffectIO, label, true
		}
	case "runtime":
		if in(name, "GOMAXPROCS", "NumCPU", "NumGoroutine", "ReadMemStats", "GC") {
			return EffectEnv, label, true
		}
	case "flag":
		return EffectEnv, label, true
	}
	return 0, "", false
}

// pkgBaseName returns the last path element ("rand" for "math/rand").
func pkgBaseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// recvLabel renders receiver.Method for method-call diagnostics.
func recvLabel(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// Interp is the module-wide interprocedural index: the same-module call
// graph plus each function's transitive effect summary. It is computed
// once per loaded Module (see Module.Interp) and shared read-only by
// every analyzer task.
type Interp struct {
	// Graph is the same-module call graph.
	Graph *Graph
	// Summaries maps each graph node to the union of its own direct
	// effects and the summaries of everything it can call, computed
	// bottom-up over strongly connected components.
	Summaries map[FuncID]EffectSet
}

// Interp builds (once) and returns the module's interprocedural index.
// Safe for concurrent use from parallel analyzer tasks.
func (m *Module) Interp() *Interp {
	m.interpOnce.Do(func() {
		g := buildGraph(m)
		m.interp = &Interp{Graph: g, Summaries: summarize(g)}
	})
	return m.interp
}

// summarize computes transitive effect summaries bottom-up: Tarjan's
// algorithm condenses the graph into strongly connected components,
// components are grouped into dependency waves (a component's wave is
// one past the deepest component it calls into), and each wave is
// summarized in parallel — the same schedule the loader uses for
// type-checking. Within a component, mutual recursion is handled by a
// union fixpoint: every member absorbs the whole component's effects.
func summarize(g *Graph) map[FuncID]EffectSet {
	sccs := condense(g)

	// Component index per node, for cross-component edge lookups.
	compOf := make(map[FuncID]int, len(g.order))
	for ci, members := range sccs {
		for _, id := range members {
			compOf[id] = ci
		}
	}

	// Wave = longest callee-chain depth in the condensation DAG.
	wave := make([]int, len(sccs))
	maxWave := 0
	for ci, members := range sccs {
		// Tarjan emits components in reverse topological order: every
		// callee component of ci has an index < ci, so one forward scan
		// settles the depths.
		w := 0
		for _, id := range members {
			for _, e := range g.Nodes[id].Edges {
				cj, ok := compOf[e.Callee]
				if !ok || cj == ci {
					continue
				}
				if wave[cj]+1 > w {
					w = wave[cj] + 1
				}
			}
		}
		wave[ci] = w
		if w > maxWave {
			maxWave = w
		}
	}

	summaries := make(map[FuncID]EffectSet, len(g.order))
	var mu sync.Mutex
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for w := 0; w <= maxWave; w++ {
		var wg sync.WaitGroup
		for ci := range sccs {
			if wave[ci] != w {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// Union fixpoint over the component: direct effects of
				// every member plus the (already settled) summaries of
				// callee components. One pass suffices because the union
				// is symmetric across members; the loop guards against
				// future per-member refinement.
				members := sccs[ci]
				var acc EffectSet
				for _, id := range members {
					node := g.Nodes[id]
					for _, eff := range node.Effects {
						acc = acc.Add(eff.Kind)
					}
					for _, e := range node.Edges {
						if cj, ok := compOf[e.Callee]; ok && cj != ci {
							mu.Lock()
							acc |= summaries[e.Callee]
							mu.Unlock()
						}
					}
				}
				mu.Lock()
				for _, id := range members {
					summaries[id] = acc
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
	}
	return summaries
}

// condense runs Tarjan's strongly-connected-components algorithm over
// the graph, iteratively (explicit stack — planner call chains are
// shallow, but fixture abuse should not blow the goroutine stack). The
// returned components are in reverse topological order: callees before
// callers. Node order inside a component and the component sequence are
// deterministic because traversal follows g.order and each node's edge
// slice, both built in deterministic order.
func condense(g *Graph) [][]FuncID {
	index := make(map[FuncID]int, len(g.order))
	low := make(map[FuncID]int, len(g.order))
	onStack := make(map[FuncID]bool, len(g.order))
	var stack []FuncID
	var sccs [][]FuncID
	next := 0

	type frame struct {
		id   FuncID
		edge int
	}
	var visit func(root FuncID)
	visit = func(root FuncID) {
		frames := []frame{{id: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			node := g.Nodes[f.id]
			if f.edge < len(node.Edges) {
				callee := node.Edges[f.edge].Callee
				f.edge++
				if _, seen := index[callee]; !seen {
					if _, inGraph := g.Nodes[callee]; !inGraph {
						continue
					}
					index[callee] = next
					low[callee] = next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					frames = append(frames, frame{id: callee})
				} else if onStack[callee] && index[callee] < low[f.id] {
					low[f.id] = index[callee]
				}
				continue
			}
			// Node finished: pop a component at its root, propagate low.
			if low[f.id] == index[f.id] {
				var comp []FuncID
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == f.id {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				sccs = append(sccs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.id] < low[parent.id] {
					low[parent.id] = low[f.id]
				}
			}
		}
	}
	for _, id := range g.order {
		if _, seen := index[id]; !seen {
			visit(id)
		}
	}
	return sccs
}
