package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop returns the errdrop analyzer: a statement that calls a
// function returning an error and ignores every result silently loses
// the failure. The fix is to handle the error, assign it to _ explicitly
// (visible intent), or annotate the site. Exemptions, documented in
// CONTRIBUTING.md:
//
//   - fmt.Print/Printf/Println — CLI chatter to stdout, conventionally
//     unchecked;
//   - fmt.Fprint* and io.WriteString when the writer is os.Stdout,
//     os.Stderr, a *strings.Builder, or a *bytes.Buffer — the first two
//     by the same convention, the latter two because they are
//     documented never to fail;
//   - methods on *strings.Builder and *bytes.Buffer, for the same
//     reason;
//   - methods called on a hash.Hash (or any named type from the hash
//     package tree) — "Write ... never returns an error" is part of the
//     hash.Hash contract;
//   - _test.go files.
func ErrDrop() *Analyzer {
	a := &Analyzer{
		Name: "errdrop",
		Doc:  "forbid silently discarded error results outside tests",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch stmt := n.(type) {
				case *ast.ExprStmt:
					call, _ = stmt.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call = stmt.Call
				case *ast.GoStmt:
					call = stmt.Call
				}
				if call == nil {
					return true
				}
				checkDroppedError(pass, call)
				return true
			})
		}
	}
	return a
}

// checkDroppedError reports call if it returns an error that the
// statement form necessarily discards.
func checkDroppedError(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	t := info.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return
	}
	fn := calleeFunc(info, call)
	if fn != nil && errDropExempt(info, fn, call) {
		return
	}
	label := "call"
	if fn != nil {
		label = callLabel(fn)
	}
	pass.Reportf(call.Pos(),
		"error result of %s is silently discarded; handle it, assign it to _ explicitly, or annotate",
		label)
}

// resultHasError reports whether a call result type includes an error.
func resultHasError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// errDropExempt implements the documented exemptions.
func errDropExempt(info *types.Info, fn *types.Func, call *ast.CallExpr) bool {
	name := fn.Name()
	if isMethod(fn) {
		recv := fn.Type().(*types.Signature).Recv().Type()
		if namedPtrTo(recv, "strings", "Builder") || namedPtrTo(recv, "bytes", "Buffer") {
			return true
		}
		// hash.Hash embeds io.Writer, so the method object alone says
		// "io.Writer.Write"; classify by the static type of the receiver
		// expression instead.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := info.TypeOf(sel.X); t != nil && isHashType(t) {
				return true
			}
		}
		return false
	}
	switch funcPkgPath(fn) {
	case "fmt":
		if in(name, "Print", "Printf", "Println") {
			return true
		}
		if in(name, "Fprint", "Fprintf", "Fprintln") && len(call.Args) > 0 {
			return infallibleWriter(info, call.Args[0])
		}
	case "io":
		if name == "WriteString" && len(call.Args) > 0 {
			return infallibleWriter(info, call.Args[0])
		}
	}
	return false
}

// isHashType reports whether t (or its pointee) is a named type
// declared in the "hash" package tree, whose Write contractually never
// fails.
func isHashType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return p == "hash" || strings.HasPrefix(p, "hash/")
}

// infallibleWriter reports whether the writer expression is os.Stdout,
// os.Stderr, a *strings.Builder, or a *bytes.Buffer.
func infallibleWriter(info *types.Info, w ast.Expr) bool {
	w = ast.Unparen(w)
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok &&
			v.Pkg() != nil && v.Pkg().Path() == "os" && in(v.Name(), "Stdout", "Stderr") {
			return true
		}
	}
	t := info.TypeOf(w)
	return t != nil && (namedPtrTo(t, "strings", "Builder") || namedPtrTo(t, "bytes", "Buffer"))
}
