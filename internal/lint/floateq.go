package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqScope lists the module-relative package dirs in which direct
// float equality is forbidden: the numeric planner core, where two
// mathematically equal values rarely compare equal after different
// summation orders.
var floatEqScope = []string{
	"internal/core",
	"internal/energy",
	"internal/geom",
	"internal/tsp",
	"internal/feq",
}

// FloatEq returns the floateq analyzer: no == or != between
// floating-point operands in the numeric planner packages. Exact
// comparison is occasionally correct (sentinel zeros, bitwise dedup of
// verbatim copies, incumbent-changed checks); such sites call the
// internal/feq helpers or carry an //uavdc:allow floateq annotation
// saying why bit-equality is right there. Test files are exempt.
func FloatEq() *Analyzer {
	a := &Analyzer{
		Name: "floateq",
		Doc:  "forbid ==/!= between floats in the numeric planner packages; require internal/feq",
	}
	a.Run = func(pass *Pass) {
		inScope := false
		for _, dir := range floatEqScope {
			if pass.Pkg.Path == pass.Pkg.ModPath+"/"+dir {
				inScope = true
				break
			}
		}
		if !inScope {
			return
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				b, ok := n.(*ast.BinaryExpr)
				if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
					return true
				}
				tx, ty := info.Types[b.X], info.Types[b.Y]
				if tx.Value != nil && ty.Value != nil {
					return true // folded at compile time; no runtime hazard
				}
				if isFloat(tx.Type) || isFloat(ty.Type) {
					pass.Reportf(b.OpPos,
						"floating-point %s comparison; use feq.Eq/feq.Near/feq.Zero (internal/feq), or annotate why exact bit-equality is intended",
						b.Op)
				}
				return true
			})
		}
	}
	return a
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (typed or untyped).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
