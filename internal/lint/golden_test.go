package lint

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite testdata/fixture.golden")

// loadFixture loads the miniature module under testdata/src once per
// test that needs it.
func loadFixture(t *testing.T) *Module {
	t.Helper()
	mod, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("Load(testdata/src): %v", err)
	}
	return mod
}

// TestFixtureGolden locks the full diagnostic stream — positives,
// suppressed sites, and directive errors — for the fixture module.
// Regenerate deliberately with:
//
//	go test ./internal/lint -run TestFixtureGolden -update
func TestFixtureGolden(t *testing.T) {
	diags := Run(loadFixture(t), All())
	var sb strings.Builder
	if err := WriteText(&sb, diags); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	path := filepath.Join("testdata", "fixture.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("fixture diagnostics drifted from golden.\n--- want (%s)\n%s--- got\n%s", path, want, got)
	}
}

// TestFixtureCoverage asserts the acceptance-level invariant directly:
// every analyzer has at least one active positive and at least one
// suppressed case in the fixture, and the directive pseudo-analyzer
// reports every malformed-directive shape.
func TestFixtureCoverage(t *testing.T) {
	diags := Run(loadFixture(t), All())
	active := map[string]int{}
	suppressed := map[string]int{}
	for _, d := range diags {
		if d.Suppressed {
			suppressed[d.Analyzer]++
		} else {
			active[d.Analyzer]++
		}
	}
	for _, a := range All() {
		if active[a.Name] == 0 {
			t.Errorf("analyzer %s: no active positive case in the fixture", a.Name)
		}
		if suppressed[a.Name] == 0 {
			t.Errorf("analyzer %s: no suppressed case in the fixture", a.Name)
		}
	}
	if active[DirectiveAnalyzer] < 5 {
		t.Errorf("directive errors: got %d, want all 5 malformed shapes (missing reason, bad verb, bad name, unknown analyzer, block comment)", active[DirectiveAnalyzer])
	}
	if suppressed[DirectiveAnalyzer] != 0 {
		t.Error("directive errors must not be suppressible")
	}
}

// TestFixtureJSON checks the machine-readable report: schema tag, module
// path, per-analyzer counts, elapsed passthrough, and agreement with
// Active().
func TestFixtureJSON(t *testing.T) {
	mod := loadFixture(t)
	diags := Run(mod, All())
	var sb strings.Builder
	if err := WriteJSON(&sb, mod.Path, diags, 1500*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema      string         `json:"schema"`
		Module      string         `json:"module"`
		Diagnostics []Diagnostic   `json:"diagnostics"`
		Active      int            `json:"active"`
		Counts      map[string]int `json:"counts"`
		ElapsedMS   float64        `json:"elapsed_ms"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != JSONSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, JSONSchema)
	}
	if rep.Module != "uavdc" {
		t.Errorf("module = %q", rep.Module)
	}
	if len(rep.Diagnostics) != len(diags) {
		t.Errorf("report has %d diagnostics, run produced %d", len(rep.Diagnostics), len(diags))
	}
	if rep.Active != len(Active(diags)) {
		t.Errorf("active = %d, want %d", rep.Active, len(Active(diags)))
	}
	if rep.ElapsedMS != 1.5 {
		t.Errorf("elapsed_ms = %v, want 1.5", rep.ElapsedMS)
	}
	total := 0
	for _, a := range All() {
		if rep.Counts[a.Name] == 0 {
			t.Errorf("counts missing analyzer %s (fixture has cases for all)", a.Name)
		}
	}
	for _, n := range rep.Counts {
		total += n
	}
	if total != len(diags) {
		t.Errorf("counts sum to %d, want %d", total, len(diags))
	}
}

// TestRealModuleIsClean runs the suite over the enclosing repository —
// the same check `make ci` enforces — so a violation introduced anywhere
// in uavdc fails this package's tests too.
func TestRealModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Load(repo root): %v", err)
	}
	for _, d := range Active(Run(mod, All())) {
		t.Errorf("%s", d.String())
	}
}
