package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLifecycle returns the golifecycle analyzer: every go statement in
// non-test code must tie the spawned goroutine to a shutdown path, so a
// daemon's Close really drains and no goroutine outlives its server.
//
// A goroutine is compliant when its body (a function literal, or a
// same-package named function resolved at the spawn site) does any of:
//
//   - receive from a done channel — any receive whose channel carries
//     struct{} elements, which covers <-ctx.Done() and close-signalled
//     stop channels;
//   - range over a channel — the loop ends when the channel closes;
//   - call (*sync.WaitGroup).Done, with a WaitGroup .Add visible in the
//     spawning function before the go statement — the spawner provably
//     tracks it;
//   - call (*sync.WaitGroup).Wait — the goroutine IS a drain helper.
//
// Goroutines whose body cannot be resolved (cross-package calls,
// function values, method values) are reported: their lifecycle cannot
// be audited at the spawn site. Deliberately detached goroutines carry
// //uavdc:allow golifecycle <reason>.
func GoLifecycle() *Analyzer {
	return &Analyzer{
		Name: "golifecycle",
		Doc:  "every goroutine outside tests must observe a shutdown path (done channel, channel range, or spawn-site WaitGroup)",
		Run:  runGoLifecycle,
	}
}

func runGoLifecycle(pass *Pass) {
	info := pass.Pkg.Info
	decls := funcDeclIndex(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		// Walk with the innermost enclosing function body tracked, so
		// the WaitGroup spawn-site rule knows where to look for .Add.
		var walkBody func(b *ast.BlockStmt)
		walkBody = func(b *ast.BlockStmt) {
			ast.Inspect(b, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					walkBody(n.Body)
					return false
				case *ast.GoStmt:
					checkGoStmt(pass, info, decls, n, b)
					// Descend: a literal spawned here is also walked as
					// its own body (FuncLit case above).
				}
				return true
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					walkBody(n.Body)
				}
				return false
			case *ast.FuncLit: // package-level var initializer literal
				walkBody(n.Body)
				return false
			}
			return true
		})
	}
}

// checkGoStmt audits one go statement.
func checkGoStmt(pass *Pass, info *types.Info, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt, enclosing *ast.BlockStmt) {
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := calleeFunc(info, g.Call); fn != nil {
		if decl := decls[fn]; decl != nil {
			body = decl.Body
		}
	}
	if body == nil {
		pass.Reportf(g.Pos(), "goroutine body cannot be resolved at the spawn site (cross-package or indirect call) — its shutdown path cannot be audited; spawn a local function or literal, or annotate")
		return
	}
	observes, wgDone := shutdownSignals(info, body)
	if observes {
		return
	}
	if wgDone && hasWaitGroupAddBefore(info, enclosing, g.Pos()) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine is not tied to a shutdown path; select on a done channel, range over a closable channel, or track it with a sync.WaitGroup (Add before the go statement, Done inside), or annotate")
}

// shutdownSignals scans a goroutine body. observes is true when the
// body receives from a struct{} channel, ranges over a channel, or
// waits on a WaitGroup; wgDone is true when it calls WaitGroup.Done
// (compliant only if the spawn site also Adds).
func shutdownSignals(info *types.Info, body *ast.BlockStmt) (observes, wgDone bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isDoneChan(info.TypeOf(n.X)) {
				observes = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					observes = true
				}
			}
		case *ast.CallExpr:
			if name, ok := waitGroupCall(info, n); ok {
				switch name {
				case "Wait":
					observes = true
				case "Done":
					wgDone = true
				}
			}
		}
		return true
	})
	return observes, wgDone
}

// isDoneChan reports whether t is a channel of struct{} — the signal
// shape of context.Done and close-only stop channels.
func isDoneChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// waitGroupCall classifies call as a (*sync.WaitGroup) method call.
func waitGroupCall(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync" || !isMethod(fn) {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj().Name() != "WaitGroup" {
		return "", false
	}
	return fn.Name(), true
}

// hasWaitGroupAddBefore reports whether the spawning function calls
// (*sync.WaitGroup).Add lexically before pos — the spawn site visibly
// registers the goroutine before launching it.
func hasWaitGroupAddBefore(info *types.Info, enclosing *ast.BlockStmt, pos token.Pos) bool {
	if enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() < pos {
			if name, ok := waitGroupCall(info, call); ok && name == "Add" {
				found = true
			}
		}
		return true
	})
	return found
}

// funcDeclIndex maps each declared function object of the unit to its
// declaration, so go statements on named callees resolve to a body.
func funcDeclIndex(pkg *Package) map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = fd
				}
			}
		}
	}
	return idx
}
