package lint

import (
	"strings"
	"testing"
)

// pureID shortens fixture FuncIDs: the fixture module is named "uavdc",
// so the pure package's Entry function is "uavdc/internal/pure.Entry".
func pureID(fn string) FuncID { return FuncID("uavdc/internal/pure." + fn) }

// findEdge returns the first caller→callee edge, or nil.
func findEdge(g *Graph, caller, callee FuncID) *Edge {
	node := g.Nodes[caller]
	if node == nil {
		return nil
	}
	for i := range node.Edges {
		if node.Edges[i].Callee == callee {
			return &node.Edges[i]
		}
	}
	return nil
}

// TestCallGraphEdges pins the four edge modes on the fixture: static
// calls, devirtualized interface calls, function-literal children, and
// function-value references — plus the conservative unknown-callee
// marker for a call through a plain function value.
func TestCallGraphEdges(t *testing.T) {
	g := loadFixture(t).Interp().Graph

	cases := []struct {
		caller, callee FuncID
		mode           string
	}{
		{FuncID("uavdc/internal/core.Algorithm2.Plan"), pureID("Entry"), "call"},
		{pureID("Entry"), pureID("Tick"), "call"},
		{pureID("Chain"), pureID("hop"), "call"},
		{pureID("Eval"), pureID("dice.score"), "devirt"},
		{pureID("Lit"), pureID("Lit.func1"), "literal"},
		{pureID("Indirect"), pureID("tickRef"), "ref"},
		{pureID("ping"), pureID("pong"), "call"},
		{pureID("pong"), pureID("ping"), "call"},
	}
	for _, c := range cases {
		e := findEdge(g, c.caller, c.callee)
		if e == nil {
			t.Errorf("edge %s → %s missing", c.caller, c.callee)
			continue
		}
		if e.Mode != c.mode {
			t.Errorf("edge %s → %s: mode %q, want %q", c.caller, c.callee, e.Mode, c.mode)
		}
	}

	// The literal child is a real node with a short display name.
	lit := g.Nodes[pureID("Lit.func1")]
	if lit == nil {
		t.Fatal("function-literal node pure.Lit.func1 missing")
	}
	if lit.Display != "pure.Lit.func1" {
		t.Errorf("literal display = %q, want pure.Lit.func1", lit.Display)
	}

	// Apply calls through a plain function value: no resolvable edge,
	// but a conservative unknown-callee marker in its direct effects.
	apply := g.Nodes[pureID("Apply")]
	if apply == nil {
		t.Fatal("node pure.Apply missing")
	}
	if len(apply.Edges) != 0 {
		t.Errorf("pure.Apply has %d edges, want 0 (callee is unresolvable)", len(apply.Edges))
	}
	marked := false
	for _, eff := range apply.Effects {
		if eff.Kind == EffectUnknownCallee {
			marked = true
			if !strings.Contains(eff.Desc, "function value") {
				t.Errorf("unknown-callee marker desc = %q", eff.Desc)
			}
		}
	}
	if !marked {
		t.Error("pure.Apply missing the unknown-callee marker")
	}
}

// TestEffectSummaries pins the bottom-up summary computation: direct
// effects, transitive union at the entry, SCC fixpoint over mutual
// recursion, and the legality of channel/sync effects.
func TestEffectSummaries(t *testing.T) {
	interp := loadFixture(t).Interp()
	sum := interp.Summaries

	has := func(fn string, kind EffectKind) bool { return sum[pureID(fn)].Has(kind) }

	if !has("Tick", EffectWallClock) {
		t.Errorf("pure.Tick summary = %v, want wall-clock", sum[pureID("Tick")])
	}
	if !has("deep", EffectRand) || !has("hop", EffectRand) || !has("Chain", EffectRand) {
		t.Error("randomness in pure.deep did not propagate up the hop/Chain spine")
	}

	// The mutually recursive pair shares one component: the randomness
	// in pong must surface in ping's summary via the fixpoint.
	if !has("ping", EffectRand) || !has("pong", EffectRand) {
		t.Errorf("SCC fixpoint failed: ping=%v pong=%v",
			sum[pureID("ping")], sum[pureID("pong")])
	}

	// Entry transitively accumulates every violating kind.
	entry := sum[pureID("Entry")]
	for _, kind := range []EffectKind{EffectWallClock, EffectRand, EffectGlobalWrite, EffectIO, EffectEnv} {
		if !entry.Has(kind) {
			t.Errorf("pure.Entry summary %v missing %v", entry, kind)
		}
	}

	// Fan uses goroutines, a WaitGroup, and a channel — tracked, but
	// never a purity violation.
	fan := sum[pureID("Fan")]
	if !fan.Has(EffectChan) || !fan.Has(EffectSync) {
		t.Errorf("pure.Fan summary = %v, want channel+sync tracked", fan)
	}
	if fan&violatingEffects != 0 {
		t.Errorf("pure.Fan summary %v intersects violating kinds — legal concurrency misclassified", fan)
	}

	// Sink internals still get honest summaries; the whitelist lives in
	// the pureplan walk, not in the summary computation.
	begin := sum[FuncID("uavdc/internal/trace.Tracer.Begin")]
	if !begin.Has(EffectWallClock) {
		t.Errorf("trace.Tracer.Begin summary = %v, want wall-clock (sinks are summarized, just not traversed)", begin)
	}
}

// TestEffectSetString pins the diagnostic vocabulary.
func TestEffectSetString(t *testing.T) {
	if got := EffectSet(0).String(); got != "pure" {
		t.Errorf("empty set = %q, want pure", got)
	}
	s := EffectSet(0).Add(EffectWallClock).Add(EffectRand)
	if got := s.String(); got != "wall-clock read+global randomness read" {
		t.Errorf("set string = %q", got)
	}
	if !s.Has(EffectRand) || s.Has(EffectIO) {
		t.Error("Has() disagrees with Add()")
	}
}

// TestPurePlanChains pins the diagnostic chains: the multi-hop spine is
// spelled in full from the entry point, devirtualized and literal hops
// appear under their display names, and sink packages are never
// traversed or reported.
func TestPurePlanChains(t *testing.T) {
	mod := loadFixture(t)
	diags := mod.purePlan()
	if len(diags) == 0 {
		t.Fatal("fixture produced no pureplan findings")
	}
	joined := make([]string, 0, len(diags))
	for _, d := range diags {
		joined = append(joined, d.msg)
		if strings.Contains(d.unit.Path, "internal/trace") ||
			strings.Contains(d.unit.Path, "internal/obs") {
			t.Errorf("finding anchored inside a whitelisted sink: %s", d.msg)
		}
	}
	all := strings.Join(joined, "\n")
	for _, want := range []string{
		// Multi-hop chain, spelled end to end.
		"core.Algorithm2.Plan → pure.Entry → pure.Chain → pure.hop → pure.deep → rand.Int",
		// Devirtualized interface hop.
		"pure.Eval → pure.dice.score → rand.Float64",
		// Effect inside a function literal, under the child node's name.
		"pure.Lit.func1 → time.Now",
		// Function-value reference keeps the target reachable.
		"pure.Indirect → pure.tickRef → time.Now",
		// Global write names the variable instead of a call site.
		"write to package-level var",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("no pureplan finding contains %q; findings:\n%s", want, all)
		}
	}
	// The sink hop itself must not be blamed: Record reaches into
	// trace.Tracer.Begin, whose wall-clock read is whitelisted.
	if strings.Contains(all, "pure.Record →") {
		t.Errorf("sink traversal leaked through pure.Record:\n%s", all)
	}
}

// TestPurePlanSuppression confirms the //uavdc:allow pureplan grammar
// suppresses one effect edge at a time: the fixture's deliberate
// suppressed cases arrive suppressed, their active twins stay active.
func TestPurePlanSuppression(t *testing.T) {
	diags := Run(loadFixture(t), []*Analyzer{PurePlan()})
	active, suppressed := 0, 0
	for _, d := range diags {
		if d.Analyzer != "pureplan" {
			continue
		}
		if d.Suppressed {
			suppressed++
		} else {
			active++
		}
	}
	if active == 0 || suppressed == 0 {
		t.Errorf("pureplan: %d active, %d suppressed — fixture needs both", active, suppressed)
	}
}
