// Package lint is uavdc's stdlib-only static-analysis engine. It loads
// and type-checks the module with go/parser + go/types (no external
// tooling), then runs a set of repo-specific analyzers that enforce the
// contracts the test suite can only sample dynamically:
//
//   - nodeterminism: no wall-clock or process-global randomness sources,
//     and no order-sensitive effects inside range-over-map loops, outside
//     a small allowlist — the planners' byte-identical-output guarantee
//     is enforced at the source level.
//   - floateq: no ==/!= between floats in the numeric planner packages;
//     exact comparisons must go through internal/feq or carry an
//     annotation.
//   - obsnames: every counter/timer/histogram/span/event name passed to
//     the obs and trace APIs must be registered in internal/obs's
//     canonical name registry (which a test cross-checks against
//     EXPERIMENTS.md).
//   - errdrop: no silently discarded error results outside tests.
//   - unitsafety: no conversions or math.* calls that launder physical
//     dimensions past the internal/units typed quantities — cross-unit
//     casts, unit→float64 casts outside boundary packages, magnitude
//     literals cast into unit types, and math.* over unit expressions.
//   - locksafety: lock discipline over an intra-procedural CFG — no
//     copied locks, no Lock without an Unlock on every return path, no
//     double-locks, no blocking operations under a held lock.
//   - golifecycle: every goroutine outside tests must observe a
//     shutdown path — a done-channel receive, a channel range, or a
//     spawn-site-visible WaitGroup.
//   - wirefmt: every "uavdc-<name>/<version>" string literal must match
//     the internal/wire registry (which a test cross-checks against
//     EXPERIMENTS.md), current version and all.
//   - pureplan: interprocedural proof of the plan-cache purity
//     contract — a same-module call graph with per-function effect
//     summaries shows that nothing reachable from the parity-locked
//     planner entry points reads the clock or global randomness, writes
//     package-level state, or touches I/O or the environment, up to the
//     whitelisted recording sinks (obs, trace, errw). Diagnostics carry
//     the full entry→effect call chain.
//
// Deliberate violations are annotated in place:
//
//	//uavdc:allow <analyzer> <reason>
//
// either trailing the offending line or standing alone immediately above
// it. The reason is mandatory; malformed or unknown directives are
// themselves diagnostics and cannot be suppressed — and neither can a
// stale directive, one whose analyzer ran but suppressed nothing.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"uavdc/internal/wire"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, as used in //uavdc:allow
	// directives and diagnostic output.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports the analyzer's diagnostics for one package.
	Run func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism(), FloatEq(), ObsNames(), ErrDrop(), UnitSafety(),
		LockSafety(), GoLifecycle(), WireFmt(), PurePlan(),
	}
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Pkg *Package
	// Mod is the enclosing module, for interprocedural analyzers that
	// need the whole call graph (nil in narrow unit-test harnesses).
	Mod      *Module
	analyzer *Analyzer
	out      *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.analyzer.Name,
		Path:     relTo(position.Filename, p.Pkg),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// relTo rebuilds the module-relative path of an absolute filename using
// the package's directory (positions carry absolute paths).
func relTo(abs string, pkg *Package) string {
	base := abs
	for i := len(abs) - 1; i >= 0; i-- {
		if abs[i] == '/' || abs[i] == '\\' {
			base = abs[i+1:]
			break
		}
	}
	if pkg.Dir == "." {
		return base
	}
	return pkg.Dir + "/" + base
}

// Diagnostic is one finding, suppressed or not.
type Diagnostic struct {
	// Analyzer is the reporting analyzer ("directive" for malformed
	// //uavdc: comments, which are findings of the engine itself).
	Analyzer string `json:"analyzer"`
	// Path is the file path relative to the module root.
	Path string `json:"path"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
	// Suppressed marks a diagnostic covered by an //uavdc:allow
	// directive; Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// String formats the diagnostic as path:line:col: analyzer: message,
// with a suppression suffix when covered by a directive.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Path, d.Line, d.Col, d.Analyzer, d.Message)
	if d.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", d.Reason)
	}
	return s
}

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// //uavdc: directives are reported. It is not suppressible.
const DirectiveAnalyzer = "directive"

// Run executes the analyzers over every package of the module and
// returns all diagnostics — suppressed ones included, marked — sorted by
// file, line, column, analyzer. Malformed suppression directives are
// reported under DirectiveAnalyzer.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(mod, analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer wall time: each (package, analyzer)
// pair runs as its own task, parallel across GOMAXPROCS, and the
// returned map accumulates every analyzer's total task time by name.
// Because tasks overlap, the per-analyzer totals can sum to more than
// the elapsed wall clock — they rank where the suite spends its time,
// they do not partition it. Diagnostics are merged and sorted exactly
// as Run sorts them; scheduling never reaches the output.
func RunTimed(mod *Module, analyzers []*Analyzer) ([]Diagnostic, map[string]time.Duration) {
	// Directive validity is judged against the full registry, not the
	// subset that happens to run: a -analyzers errdrop pass must not
	// call every nodeterminism directive in the tree "unknown".
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}

	var diags []Diagnostic
	suppressions := map[string]*fileSuppressions{} // by module-relative path
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			rel := pkg.RelPath(f)
			if _, done := suppressions[rel]; done {
				// Base files are shared between a package unit and its
				// external-test unit's src map; scan each file once.
				continue
			}
			fs, malformed := scanSuppressions(pkg, f, known)
			suppressions[rel] = fs
			diags = append(diags, malformed...)
		}
	}

	type task struct {
		pkg *Package
		a   *Analyzer
	}
	var tasks []task
	for _, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			tasks = append(tasks, task{pkg: pkg, a: a})
		}
	}
	results := make([][]Diagnostic, len(tasks))
	took := make([]time.Duration, len(tasks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range tasks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now() //uavdc:allow nodeterminism task wall time only feeds the summary's per-analyzer breakdown, never planner output
			var out []Diagnostic
			tasks[i].a.Run(&Pass{Pkg: tasks[i].pkg, Mod: mod, analyzer: tasks[i].a, out: &out})
			took[i] = time.Since(start) //uavdc:allow nodeterminism task wall time only feeds the summary's per-analyzer breakdown, never planner output
			results[i] = out
		}()
	}
	wg.Wait()
	timings := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		timings[a.Name] = 0
	}
	for i, t := range tasks {
		diags = append(diags, results[i]...)
		timings[t.a.Name] += took[i]
	}

	for i := range diags {
		d := &diags[i]
		if d.Analyzer == DirectiveAnalyzer {
			continue
		}
		if fs := suppressions[d.Path]; fs != nil {
			if reason, ok := fs.covers(d.Analyzer, d.Line); ok {
				d.Suppressed = true
				d.Reason = reason
			}
		}
	}

	// Stale directives: a suppression whose analyzer ran but fired on
	// nothing is a typo-shaped mistake (wrong line, fixed code, wrong
	// analyzer) and is reported like any other directive defect.
	// Directives for analyzers outside this run are left alone — a
	// subset run cannot judge them.
	relPaths := make([]string, 0, len(suppressions))
	for rel := range suppressions {
		relPaths = append(relPaths, rel)
	}
	sort.Strings(relPaths)
	for _, rel := range relPaths {
		diags = append(diags, suppressions[rel].stale(rel, ran)...)
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, timings
}

// Active filters diags down to the non-suppressed findings — the set CI
// fails on.
func Active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// WriteText renders one diagnostic per line.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the -json output document.
type jsonReport struct {
	// Schema tags the document format.
	Schema string `json:"schema"`
	// Module is the linted module path.
	Module string `json:"module"`
	// Diagnostics holds every finding, suppressed ones marked.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Active counts the non-suppressed findings (the CI failure
	// condition).
	Active int `json:"active"`
	// Counts maps each analyzer that reported at least one finding to
	// its total finding count, suppressed ones included (new in /2).
	Counts map[string]int `json:"counts"`
	// ElapsedMS is the load+run wall time in milliseconds, as measured
	// by the caller (new in /2). Golden tests normalise it to 0.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// JSONSchema tags uavlint's -json output document. /2 added the
// per-analyzer counts map and the elapsed_ms wall-time field.
const JSONSchema = wire.Lint

// Counts tallies diags per analyzer, suppressed findings included.
func Counts(diags []Diagnostic) map[string]int {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	return counts
}

// WriteJSON renders the diagnostics as a uavdc-lint/2 JSON document.
// elapsed is the caller-measured load+run wall time.
func WriteJSON(w io.Writer, modPath string, diags []Diagnostic, elapsed time.Duration) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{
		Schema:      JSONSchema,
		Module:      modPath,
		Diagnostics: diags,
		Active:      len(Active(diags)),
		Counts:      Counts(diags),
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	})
}

// WriteSummary renders the one-line human summary: total and active
// finding counts, the per-analyzer breakdown in name order, the
// load+run wall time, and — when RunTimed's timings are given — each
// analyzer's accumulated task time in name order.
func WriteSummary(w io.Writer, diags []Diagnostic, timings map[string]time.Duration, elapsed time.Duration) error {
	counts := Counts(diags)
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	var breakdown string
	for i, name := range names {
		if i > 0 {
			breakdown += ", "
		}
		breakdown += fmt.Sprintf("%s %d", name, counts[name])
	}
	if breakdown == "" {
		breakdown = "none"
	}
	var timing string
	if len(timings) > 0 {
		tnames := make([]string, 0, len(timings))
		for name := range timings {
			tnames = append(tnames, name)
		}
		sort.Strings(tnames)
		timing = " (analyzers:"
		for i, name := range tnames {
			if i > 0 {
				timing += ","
			}
			timing += fmt.Sprintf(" %s %dms", name, timings[name].Milliseconds())
		}
		timing += ")"
	}
	_, err := fmt.Fprintf(w, "uavlint: %d finding(s), %d active [%s] in %dms%s\n",
		len(diags), len(Active(diags)), breakdown, elapsed.Milliseconds(), timing)
	return err
}
