package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked analysis unit: a module package together
// with its in-package _test.go files, or an external _test package. The
// analyzers see every unit; per-analyzer test-file policy is applied via
// IsTestFile.
type Package struct {
	// Path is the import path ("uavdc/internal/core"); external test
	// packages carry a "_test" suffix ("uavdc_test").
	Path string
	// ModPath is the enclosing module's path — the prefix analyzers use
	// to recognise module-internal packages.
	ModPath string
	// Dir is the package directory relative to the module root, using
	// forward slashes ("." for the root package).
	Dir string
	// Fset is the file set shared by every package of the module.
	Fset *token.FileSet
	// Files holds the parsed files of the unit, sorted by file name.
	Files []*ast.File
	// Src maps a file's base name to its raw bytes (used by the
	// suppression scanner to decide whether a directive comment trails
	// code or stands alone).
	Src map[string][]byte
	// Info is the unit's type-check result.
	Info *types.Info
	// Types is the unit's type-checked package object.
	Types *types.Package
}

// IsTestFile reports whether f is a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Filename(f), "_test.go")
}

// Filename returns f's base name.
func (p *Package) Filename(f *ast.File) string {
	return filepath.Base(p.Fset.Position(f.Package).Filename)
}

// RelPath returns f's path relative to the module root, with forward
// slashes — the form diagnostics print.
func (p *Package) RelPath(f *ast.File) string {
	if p.Dir == "." {
		return p.Filename(f)
	}
	return p.Dir + "/" + p.Filename(f)
}

// Module is a loaded, fully type-checked module.
type Module struct {
	// Root is the absolute module root directory.
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset is the shared file set.
	Fset *token.FileSet
	// Pkgs holds every analysis unit, sorted by import path.
	Pkgs []*Package
}

// rawPkg is one package directory before type checking.
type rawPkg struct {
	path     string // import path
	dir      string // slash-relative to root
	base     []*ast.File
	inTest   []*ast.File // _test.go files in the base package
	extTest  []*ast.File // _test.go files in the <name>_test package
	src      map[string][]byte
	deps     []string // module-internal imports of the base files
	testDeps []string // module-internal imports of the test files
}

// Load parses and type-checks every package of the module rooted at
// root, using only the standard library: module-internal imports resolve
// against the packages loaded here, standard-library imports through the
// stdlib source importer. Any parse or type error aborts the load — the
// analyzers only ever see well-typed code.
func Load(root string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	raws := map[string]*rawPkg{} // by import path
	err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != absRoot && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(absRoot, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + rel
		}
		rp := raws[importPath]
		if rp == nil {
			rp = &rawPkg{path: importPath, dir: rel, src: map[string][]byte{}}
			raws[importPath] = rp
		}
		srcBytes, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		file, err := parser.ParseFile(fset, path, srcBytes, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		rp.src[filepath.Base(path)] = srcBytes
		switch {
		case strings.HasSuffix(path, "_test.go") && strings.HasSuffix(file.Name.Name, "_test"):
			rp.extTest = append(rp.extTest, file)
		case strings.HasSuffix(path, "_test.go"):
			rp.inTest = append(rp.inTest, file)
		default:
			rp.base = append(rp.base, file)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Record module-internal dependencies for topological checking.
	for _, rp := range raws {
		rp.deps = internalImports(modPath, rp.base)
		rp.testDeps = internalImports(modPath, append(append([]*ast.File{}, rp.inTest...), rp.extTest...))
		sortFilesByName(fset, rp.base)
		sortFilesByName(fset, rp.inTest)
		sortFilesByName(fset, rp.extTest)
	}

	std := importer.ForCompiler(fset, "source", nil)
	checked := map[string]*types.Package{}
	imp := &moduleImporter{modPath: modPath, checked: checked, std: std}

	// Pass 1: base packages in dependency order, for import resolution.
	order, err := topoOrder(raws)
	if err != nil {
		return nil, err
	}
	baseInfo := map[string]*types.Info{}
	for _, path := range order {
		rp := raws[path]
		if len(rp.base) == 0 {
			continue
		}
		pkg, info, err := check(fset, imp, path, rp.base)
		if err != nil {
			return nil, err
		}
		checked[path] = pkg
		baseInfo[path] = info
	}

	// Pass 2: analysis units. A package with in-package test files is
	// re-checked with them included (imports still resolve to the pass-1
	// objects, so import cycles through test files cannot occur);
	// external test packages become their own units.
	mod := &Module{Root: absRoot, Path: modPath, Fset: fset}
	for _, path := range order {
		rp := raws[path]
		if len(rp.base) > 0 {
			files, pkg, info := rp.base, checked[path], baseInfo[path]
			if len(rp.inTest) > 0 {
				files = append(append([]*ast.File{}, rp.base...), rp.inTest...)
				sortFilesByName(fset, files)
				var err error
				pkg, info, err = check(fset, imp, path, files)
				if err != nil {
					return nil, err
				}
			}
			mod.Pkgs = append(mod.Pkgs, &Package{
				Path: path, ModPath: modPath, Dir: rp.dir, Fset: fset, Files: files, Src: rp.src, Info: info, Types: pkg,
			})
		}
		if len(rp.extTest) > 0 {
			pkg, info, err := check(fset, imp, path+"_test", rp.extTest)
			if err != nil {
				return nil, err
			}
			mod.Pkgs = append(mod.Pkgs, &Package{
				Path: path + "_test", ModPath: modPath, Dir: rp.dir, Fset: fset, Files: rp.extTest, Src: rp.src, Info: info, Types: pkg,
			})
		}
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// check type-checks one file list as the package at path.
func check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err.Error())
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("type-checking %s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

// moduleImporter resolves module-internal imports from the loaded set
// and everything else through the stdlib source importer.
type moduleImporter struct {
	modPath string
	checked map[string]*types.Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		pkg, ok := m.checked[path]
		if !ok {
			return nil, fmt.Errorf("module package %q not loaded (import cycle or missing directory?)", path)
		}
		return pkg, nil
	}
	return m.std.Import(path)
}

// internalImports returns the module-internal import paths of files.
func internalImports(modPath string, files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoOrder orders packages so every base package precedes its
// dependents, rejecting import cycles.
func topoOrder(raws map[string]*rawPkg) ([]string, error) {
	paths := make([]string, 0, len(raws))
	for p := range raws {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(p string, stack []string) error
	visit = func(p string, stack []string) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("import cycle: %s", strings.Join(append(stack, p), " -> "))
		}
		state[p] = grey
		rp := raws[p]
		if rp != nil {
			for _, dep := range rp.deps {
				if _, ok := raws[dep]; ok {
					if err := visit(dep, append(stack, p)); err != nil {
						return err
					}
				}
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// sortFilesByName sorts files by base name for deterministic diagnostics.
func sortFilesByName(fset *token.FileSet, files []*ast.File) {
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Package).Filename < fset.Position(files[j].Package).Filename
	})
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
