package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one type-checked analysis unit: a module package together
// with its in-package _test.go files, or an external _test package. The
// analyzers see every unit; per-analyzer test-file policy is applied via
// IsTestFile.
type Package struct {
	// Path is the import path ("uavdc/internal/core"); external test
	// packages carry a "_test" suffix ("uavdc_test").
	Path string
	// ModPath is the enclosing module's path — the prefix analyzers use
	// to recognise module-internal packages.
	ModPath string
	// Dir is the package directory relative to the module root, using
	// forward slashes ("." for the root package).
	Dir string
	// Fset is the file set shared by every package of the module.
	Fset *token.FileSet
	// Files holds the parsed files of the unit, sorted by file name.
	Files []*ast.File
	// Src maps a file's base name to its raw bytes (used by the
	// suppression scanner to decide whether a directive comment trails
	// code or stands alone).
	Src map[string][]byte
	// Info is the unit's type-check result.
	Info *types.Info
	// Types is the unit's type-checked package object.
	Types *types.Package
}

// IsTestFile reports whether f is a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Filename(f), "_test.go")
}

// Filename returns f's base name.
func (p *Package) Filename(f *ast.File) string {
	return filepath.Base(p.Fset.Position(f.Package).Filename)
}

// RelPath returns f's path relative to the module root, with forward
// slashes — the form diagnostics print.
func (p *Package) RelPath(f *ast.File) string {
	if p.Dir == "." {
		return p.Filename(f)
	}
	return p.Dir + "/" + p.Filename(f)
}

// Module is a loaded, fully type-checked module.
type Module struct {
	// Root is the absolute module root directory.
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset is the shared file set.
	Fset *token.FileSet
	// Pkgs holds every analysis unit, sorted by import path.
	Pkgs []*Package
	// BaseTypes holds the pass-1 type-checked package objects by import
	// path. Units with in-package test files are re-checked in pass 2 and
	// carry fresh type objects, but cross-package references always
	// resolve to these pass-1 objects — interprocedural consumers (the
	// call graph's devirtualizer) must match types against this one
	// generation, never against a unit's own re-checked twins.
	BaseTypes map[string]*types.Package

	// interpOnce guards interp, the module-wide interprocedural index
	// (call graph + effect summaries) shared by every analyzer task.
	interpOnce sync.Once
	interp     *Interp

	// pureOnce guards pureDiags, the pureplan analyzer's module-wide
	// violation list (each per-package task emits only its own slice).
	pureOnce  sync.Once
	pureDiags []pureDiag
}

// rawPkg is one package directory before type checking.
type rawPkg struct {
	path     string // import path
	dir      string // slash-relative to root
	base     []*ast.File
	inTest   []*ast.File // _test.go files in the base package
	extTest  []*ast.File // _test.go files in the <name>_test package
	src      map[string][]byte
	deps     []string // module-internal imports of the base files
	testDeps []string // module-internal imports of the test files
}

// Load parses and type-checks every package of the module rooted at
// root, using only the standard library: module-internal imports resolve
// against the packages loaded here, standard-library imports through the
// stdlib source importer. Any parse or type error aborts the load — the
// analyzers only ever see well-typed code.
func Load(root string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, err
	}

	// Discovery walk: collect the .go files first, then read and parse
	// them in parallel — a FileSet is safe for concurrent use, and every
	// downstream consumer sorts before emitting, so worker scheduling
	// never reaches the output.
	fset := token.NewFileSet()
	type parseJob struct {
		path string // absolute file path
		rel  string // slash-relative package dir
	}
	var jobs []parseJob
	err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != absRoot && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(absRoot, filepath.Dir(path))
		if err != nil {
			return err
		}
		jobs = append(jobs, parseJob{path: path, rel: filepath.ToSlash(rel)})
		return nil
	})
	if err != nil {
		return nil, err
	}

	type parseResult struct {
		src  []byte
		file *ast.File
		err  error
	}
	parsed := make([]parseResult, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := &parsed[i]
			r.src, r.err = os.ReadFile(jobs[i].path)
			if r.err != nil {
				return
			}
			r.file, r.err = parser.ParseFile(fset, jobs[i].path, r.src, parser.ParseComments|parser.SkipObjectResolution)
		}()
	}
	wg.Wait()

	// Assemble packages in the deterministic walk order, failing on the
	// first (walk-ordered) parse error.
	raws := map[string]*rawPkg{} // by import path
	for i, job := range jobs {
		if parsed[i].err != nil {
			return nil, parsed[i].err
		}
		importPath := modPath
		if job.rel != "." {
			importPath = modPath + "/" + job.rel
		}
		rp := raws[importPath]
		if rp == nil {
			rp = &rawPkg{path: importPath, dir: job.rel, src: map[string][]byte{}}
			raws[importPath] = rp
		}
		file := parsed[i].file
		rp.src[filepath.Base(job.path)] = parsed[i].src
		switch {
		case strings.HasSuffix(job.path, "_test.go") && strings.HasSuffix(file.Name.Name, "_test"):
			rp.extTest = append(rp.extTest, file)
		case strings.HasSuffix(job.path, "_test.go"):
			rp.inTest = append(rp.inTest, file)
		default:
			rp.base = append(rp.base, file)
		}
	}

	// Record module-internal dependencies for topological checking.
	for _, rp := range raws {
		rp.deps = internalImports(modPath, rp.base)
		rp.testDeps = internalImports(modPath, append(append([]*ast.File{}, rp.inTest...), rp.extTest...))
		sortFilesByName(fset, rp.base)
		sortFilesByName(fset, rp.inTest)
		sortFilesByName(fset, rp.extTest)
	}

	std := importer.ForCompiler(fset, "source", nil)
	checked := map[string]*types.Package{}
	imp := &moduleImporter{modPath: modPath, checked: checked, std: std}

	// Pass 1: base packages, wave-parallel. Packages are grouped into
	// dependency levels (a package's level is one past its deepest
	// module-internal dependency); every package within a level can
	// type-check concurrently because its imports all resolved in earlier
	// levels. The shared source importer is serialized inside
	// moduleImporter, and results land in the coordinator between waves,
	// so checked/baseInfo never see concurrent writes. Errors surface in
	// import-path order for deterministic output.
	order, err := topoOrder(raws)
	if err != nil {
		return nil, err
	}
	baseInfo := map[string]*types.Info{}
	level := map[string]int{}
	maxLevel := 0
	for _, path := range order { // topological: dependencies come first
		lvl := 0
		for _, dep := range raws[path].deps {
			if _, ok := raws[dep]; ok && level[dep]+1 > lvl {
				lvl = level[dep] + 1
			}
		}
		level[path] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
	}
	type checkResult struct {
		pkg  *types.Package
		info *types.Info
		err  error
	}
	for lvl := 0; lvl <= maxLevel; lvl++ {
		var wave []string
		for _, path := range order {
			if level[path] == lvl && len(raws[path].base) > 0 {
				wave = append(wave, path)
			}
		}
		sort.Strings(wave) // errors below surface in import-path order
		results := make([]checkResult, len(wave))
		var cwg sync.WaitGroup
		for i := range wave {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r := &results[i]
				r.pkg, r.info, r.err = check(fset, imp, wave[i], raws[wave[i]].base)
			}()
		}
		cwg.Wait()
		for i := range results {
			if results[i].err != nil {
				return nil, results[i].err
			}
		}
		for i, path := range wave {
			checked[path] = results[i].pkg
			baseInfo[path] = results[i].info
		}
	}

	// Pass 2: analysis units, fully parallel — every unit's imports
	// resolve to the pass-1 objects (so import cycles through test files
	// cannot occur), making the units independent of each other. A package
	// with in-package test files is re-checked with them included;
	// external test packages become their own units.
	type unitJob struct {
		path    string
		rp      *rawPkg
		files   []*ast.File
		recheck bool // needs its own type-check (merged or external unit)
	}
	var units []unitJob
	for _, path := range order {
		rp := raws[path]
		if len(rp.base) > 0 {
			u := unitJob{path: path, rp: rp, files: rp.base}
			if len(rp.inTest) > 0 {
				u.files = append(append([]*ast.File{}, rp.base...), rp.inTest...)
				sortFilesByName(fset, u.files)
				u.recheck = true
			}
			units = append(units, u)
		}
		if len(rp.extTest) > 0 {
			units = append(units, unitJob{path: path + "_test", rp: rp, files: rp.extTest, recheck: true})
		}
	}
	unitResults := make([]checkResult, len(units))
	var uwg sync.WaitGroup
	for i := range units {
		uwg.Add(1)
		go func() {
			defer uwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := &unitResults[i]
			u := units[i]
			if !u.recheck {
				r.pkg, r.info = checked[u.path], baseInfo[u.path]
				return
			}
			r.pkg, r.info, r.err = check(fset, imp, u.path, u.files)
		}()
	}
	uwg.Wait()

	mod := &Module{Root: absRoot, Path: modPath, Fset: fset, BaseTypes: checked}
	for i, u := range units {
		if unitResults[i].err != nil {
			return nil, unitResults[i].err
		}
		mod.Pkgs = append(mod.Pkgs, &Package{
			Path: u.path, ModPath: modPath, Dir: u.rp.dir, Fset: fset,
			Files: u.files, Src: u.rp.src, Info: unitResults[i].info, Types: unitResults[i].pkg,
		})
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// check type-checks one file list as the package at path.
func check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err.Error())
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("type-checking %s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

// moduleImporter resolves module-internal imports from the loaded set
// and everything else through the stdlib source importer. Import is
// safe for concurrent use: the stdlib source importer type-checks
// standard-library source on demand and is not itself concurrency-safe,
// so the whole lookup is serialized under mu. (Per-worker importers
// would be faster but would break type identity — two copies of
// sync.Mutex would no longer be the same types.Type.)
type moduleImporter struct {
	modPath string
	mu      sync.Mutex
	checked map[string]*types.Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		pkg, ok := m.checked[path]
		if !ok {
			return nil, fmt.Errorf("module package %q not loaded (import cycle or missing directory?)", path)
		}
		return pkg, nil
	}
	return m.std.Import(path)
}

// internalImports returns the module-internal import paths of files.
func internalImports(modPath string, files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoOrder orders packages so every base package precedes its
// dependents, rejecting import cycles.
func topoOrder(raws map[string]*rawPkg) ([]string, error) {
	paths := make([]string, 0, len(raws))
	for p := range raws {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(p string, stack []string) error
	visit = func(p string, stack []string) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("import cycle: %s", strings.Join(append(stack, p), " -> "))
		}
		state[p] = grey
		rp := raws[p]
		if rp != nil {
			for _, dep := range rp.deps {
				if _, ok := raws[dep]; ok {
					if err := visit(dep, append(stack, p)); err != nil {
						return err
					}
				}
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// sortFilesByName sorts files by base name for deterministic diagnostics.
func sortFilesByName(fset *token.FileSet, files []*ast.File) {
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Package).Filename < fset.Position(files[j].Package).Filename
	})
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
