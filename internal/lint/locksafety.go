package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockSafety returns the locksafety analyzer: lock discipline for
// sync.Mutex/sync.RWMutex in non-test code, checked over the
// intra-procedural CFG (cfg.go).
//
// Four rules:
//
//  1. No copying of lock-bearing values — by assignment, by-value call
//     arguments, by-value method receivers, or range iteration. A
//     copied mutex guards nothing.
//  2. Every Lock/RLock must be paired with an Unlock/RUnlock or a
//     defer Unlock on every return path of the same function
//     (must-held dataflow: only locks held on ALL paths to a return
//     are reported, so conditionally-taken locks never false-positive).
//  3. No second Lock of an expression already write-locked, and no
//     Lock while the same expression is read-locked — the classic
//     self-deadlock. RLock after RLock is legal and allowed.
//  4. No blocking operation while any lock is held: channel send or
//     receive, range over a channel, select without a default clause,
//     and a conservative blocklist of known-blocking calls
//     (WaitGroup.Wait, Cond.Wait, Once.Do, time.Sleep, io.Copy/ReadAll,
//     net dial/listen/accept, http client calls, exec waits). Locking
//     a *different* mutex is deliberately not on the list — nested
//     distinct locks are normal.
//
// Functions using goto are skipped (the CFG does not model it); lock
// flow through function literals is analyzed per literal.
func LockSafety() *Analyzer {
	return &Analyzer{
		Name: "locksafety",
		Doc:  "no lock copies, leaked Locks, double-locks, or blocking calls under a held sync.Mutex/RWMutex",
		Run:  runLockSafety,
	}
}

// blockingCalls is the conservative known-blocking blocklist, package
// path → function/method names. Method names match any receiver in the
// package (sync's only Wait/Do methods are the blocking ones).
var blockingCalls = map[string]map[string]bool{
	"sync":     {"Wait": true, "Do": true},
	"time":     {"Sleep": true},
	"io":       {"ReadAll": true, "Copy": true, "CopyN": true, "ReadFull": true, "ReadAtLeast": true},
	"net":      {"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true, "Accept": true, "AcceptTCP": true},
	"net/http": {"Get": true, "Head": true, "Post": true, "PostForm": true, "Do": true, "ListenAndServe": true, "Serve": true},
	"os/exec":  {"Run": true, "Wait": true, "Output": true, "CombinedOutput": true},
}

func runLockSafety(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		checkLockCopies(pass, info, f)
		// Analyze every function body — declarations and literals —
		// independently: lock state is intra-procedural.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyzeLockFlow(pass, info, n.Body)
				}
			case *ast.FuncLit:
				analyzeLockFlow(pass, info, n.Body)
			}
			return true
		})
	}
}

// --- rule 1: lock copies -------------------------------------------------

// checkLockCopies reports copies of lock-bearing values anywhere in f.
func checkLockCopies(pass *Pass, info *types.Info, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil && len(n.Recv.List) > 0 {
				rt := info.TypeOf(n.Recv.List[0].Type)
				if rt != nil && containsLock(rt, nil) {
					pass.Reportf(n.Recv.List[0].Type.Pos(),
						"method %s has a value receiver of lock-bearing type %s — every call copies the lock; use a pointer receiver",
						n.Name.Name, rt)
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if e := copiedLockExpr(info, rhs); e != nil {
					pass.Reportf(rhs.Pos(),
						"assignment copies lock-bearing value of type %s; share locks by pointer, never by value, or annotate",
						info.TypeOf(e))
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if e := copiedLockExpr(info, v); e != nil {
					pass.Reportf(v.Pos(),
						"declaration copies lock-bearing value of type %s; share locks by pointer, never by value, or annotate",
						info.TypeOf(e))
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if e := copiedLockExpr(info, arg); e != nil {
					pass.Reportf(arg.Pos(),
						"call passes lock-bearing value of type %s by value; pass a pointer, or annotate",
						info.TypeOf(e))
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if vt := info.TypeOf(n.Value); vt != nil && containsLock(vt, nil) {
					pass.Reportf(n.Value.Pos(),
						"range copies a lock-bearing %s per iteration; iterate by index or over pointers, or annotate", vt)
				}
			}
		}
		return true
	})
}

// copiedLockExpr returns the expression if evaluating it copies an
// existing lock-bearing value: a variable, field, dereference, or
// element of lock-bearing type. Fresh values (composite literals, calls
// constructing a value) and pointers are fine.
func copiedLockExpr(info *types.Info, e ast.Expr) ast.Expr {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return nil
	}
	t := info.TypeOf(e)
	if t == nil || !containsLock(t, nil) {
		return nil
	}
	return e
}

// containsLock reports whether t transitively contains a sync.Mutex or
// sync.RWMutex by value. seen guards recursive types.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if isSyncLockType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// isSyncLockType reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLockType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// --- rules 2–4: lock flow over the CFG -----------------------------------

// heldLock is one acquired lock: its mode and the position of the
// acquiring call (where leaks are reported).
type heldLock struct {
	write bool
	pos   token.Pos
}

// lockState is the dataflow fact: must-held locks keyed by the lock
// expression's printed form, plus the may-deferred unlock set.
type lockState struct {
	held     map[string]heldLock
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]heldLock{}, deferred: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// merge folds an incoming edge state into s: held by intersection
// (must-analysis — a write mode wins so double-Lock stays reported),
// deferred by union (may-analysis). Reports whether s changed.
func (s *lockState) merge(in *lockState) bool {
	changed := false
	for k := range s.held {
		if _, ok := in.held[k]; !ok {
			delete(s.held, k)
			changed = true
		}
	}
	for k := range in.deferred {
		if !s.deferred[k] {
			s.deferred[k] = true
			changed = true
		}
	}
	return changed
}

// lockFlow carries one function body's analysis.
type lockFlow struct {
	pass *Pass
	info *types.Info
	cfg  *CFG
	// reported dedups diagnostics across the reporting pass (several
	// return blocks can observe the same leaked lock).
	reported map[string]bool
}

// analyzeLockFlow runs rules 2–4 over one function body.
func analyzeLockFlow(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	if !mentionsSyncLock(info, body) {
		return
	}
	cfg := BuildCFG(body, func(call *ast.CallExpr) bool { return isTerminalCall(info, call) })
	if cfg.Unsupported {
		return
	}
	la := &lockFlow{pass: pass, info: info, cfg: cfg, reported: map[string]bool{}}

	// Fixpoint over block entry states, silently.
	in := map[*Block]*lockState{cfg.Entry: newLockState()}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[blk].clone()
		la.transfer(blk, out, nil)
		for _, succ := range blk.Succs {
			if cur, ok := in[succ]; !ok {
				in[succ] = out.clone()
				work = append(work, succ)
			} else if cur.merge(out) {
				work = append(work, succ)
			}
		}
	}

	// Reporting pass over the stable states, in block order for
	// deterministic output (diagnostics are globally sorted anyway).
	for _, blk := range cfg.Blocks {
		st, reachable := in[blk]
		if !reachable {
			continue
		}
		out := st.clone()
		la.transfer(blk, out, la.report)
		if blk.Returns || blk.FallsOff {
			for _, key := range sortedLockKeys(out.held) {
				if out.deferred[key] {
					continue
				}
				hl := out.held[key]
				la.report(hl.pos, "%s is locked here but not unlocked on every return path; pair the %s with an %s or defer it, or annotate",
					key, lockName(hl.write), unlockName(hl.write))
			}
		}
	}
}

func lockName(write bool) string {
	if write {
		return "Lock"
	}
	return "RLock"
}

func unlockName(write bool) string {
	if write {
		return "Unlock"
	}
	return "RUnlock"
}

// report emits a diagnostic at most once per (position, message).
func (la *lockFlow) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if la.reported[key] {
		return
	}
	la.reported[key] = true
	la.pass.Reportf(pos, "%s", msg)
}

// transfer walks one block's nodes, updating st. report is nil during
// the fixpoint and non-nil during the reporting pass.
func (la *lockFlow) transfer(blk *Block, st *lockState, report func(token.Pos, string, ...any)) {
	for _, node := range blk.Nodes {
		switch n := node.(type) {
		case *ast.SelectStmt:
			// Clause bodies live in their own blocks; only the select's
			// own blocking behaviour is decided here.
			if !selectHasDefault(n) {
				la.blocking(n.Pos(), "select without a default clause", st, report)
			}
		case *ast.RangeStmt:
			// The body lives in other blocks; only the subject is ours.
			la.visit(n.X, false, st, report)
			if t := la.info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					la.blocking(n.Pos(), "range over a channel", st, report)
				}
			}
		default:
			la.visit(node, la.cfg.SelectComms[node], st, report)
		}
	}
}

// visit scans one straight-line node. isComm suppresses top-level
// channel-operation reports: a select comm blocks as part of its
// select, never independently.
func (la *lockFlow) visit(node ast.Node, isComm bool, st *lockState, report func(token.Pos, string, ...any)) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own function
		case *ast.DeferStmt:
			la.deferStmt(n, st)
			return false
		case *ast.GoStmt:
			// The spawned call runs elsewhere; only its arguments are
			// evaluated here.
			for _, arg := range n.Call.Args {
				la.visit(arg, false, st, report)
			}
			return false
		case *ast.CallExpr:
			la.call(n, st, report)
		case *ast.SendStmt:
			if !isComm {
				la.blocking(n.Arrow, "channel send", st, report)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isComm {
				la.blocking(n.OpPos, "channel receive", st, report)
			}
		}
		return true
	})
}

// deferStmt records deferred unlocks — direct (defer mu.Unlock()) or
// wrapped in an immediately-deferred literal (defer func(){ mu.Unlock() }()).
func (la *lockFlow) deferStmt(d *ast.DeferStmt, st *lockState) {
	if recv, name, ok := syncLockCall(la.info, d.Call); ok && (name == "Unlock" || name == "RUnlock") {
		st.deferred[types.ExprString(ast.Unparen(recv))] = true
		return
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if recv, name, ok := syncLockCall(la.info, call); ok && (name == "Unlock" || name == "RUnlock") {
					st.deferred[types.ExprString(ast.Unparen(recv))] = true
				}
			}
			return true
		})
	}
}

// call applies a call's effect: lock/unlock state transitions, the
// double-lock check, and the blocking blocklist.
func (la *lockFlow) call(call *ast.CallExpr, st *lockState, report func(token.Pos, string, ...any)) {
	if recv, name, ok := syncLockCall(la.info, call); ok {
		key := types.ExprString(ast.Unparen(recv))
		switch name {
		case "Lock", "RLock":
			write := name == "Lock"
			if prev, held := st.held[key]; held {
				if write || prev.write {
					if report != nil {
						report(call.Pos(), "%s.%s() while %s is already %s-locked (line %d) — this deadlocks; unlock first, or annotate",
							key, name, key, lockName(prev.write), la.pass.Pkg.Fset.Position(prev.pos).Line)
					}
					return // keep the original acquisition
				}
				return // RLock after RLock: legal, keep the first
			}
			st.held[key] = heldLock{write: write, pos: call.Pos()}
		case "Unlock", "RUnlock":
			delete(st.held, key)
		}
		return
	}
	fn := calleeFunc(la.info, call)
	if fn == nil {
		return
	}
	if names := blockingCalls[funcPkgPath(fn)]; names != nil && names[fn.Name()] {
		la.blocking(call.Pos(), fmt.Sprintf("call to %s", fn.FullName()), st, report)
	}
}

// blocking reports op happening while any lock is held.
func (la *lockFlow) blocking(pos token.Pos, op string, st *lockState, report func(token.Pos, string, ...any)) {
	if report == nil || len(st.held) == 0 {
		return
	}
	key := sortedLockKeys(st.held)[0]
	report(pos, "blocking %s while holding %s (locked line %d); shrink the critical section, or annotate",
		op, key, la.pass.Pkg.Fset.Position(st.held[key].pos).Line)
}

// syncLockCall classifies call as a Lock/RLock/Unlock/RUnlock method
// call on a sync.Mutex or sync.RWMutex, returning the receiver
// expression (the lock's identity).
func syncLockCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync" || !isMethod(fn) {
		return nil, "", false
	}
	if !in(fn.Name(), "Lock", "RLock", "Unlock", "RUnlock") {
		return nil, "", false
	}
	sig := fn.Type().(*types.Signature)
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	if !isSyncLockType(rt) {
		return nil, "", false
	}
	return sel.X, fn.Name(), true
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// runtime.Goexit, and the log.Fatal family.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name() == "panic"
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch funcPkgPath(fn) {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return in(fn.Name(), "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln")
	}
	return false
}

// mentionsSyncLock is the fast path: a body with no sync lock calls
// needs no CFG.
func mentionsSyncLock(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, ok := syncLockCall(info, call); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// sortedLockKeys returns held's keys in sorted order for deterministic
// reporting.
func sortedLockKeys(held map[string]heldLock) []string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
