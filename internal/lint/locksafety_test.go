package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOnSnippet type-checks src as a one-file module in a temp dir and
// returns the active diagnostics from the given analyzers. This gives
// lock-discipline tests a real *types.Info without touching the fixture
// (and so without perturbing the goldens).
func runOnSnippet(t *testing.T, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module tmp\n\ngo 1.23\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "snippet.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(root)
	if err != nil {
		t.Fatalf("Load(snippet module): %v", err)
	}
	return Active(Run(mod, analyzers))
}

// TestLockSafetySelectDefaultUnderLock: a select WITH a default clause
// cannot block, so running one under a held lock is legal — the
// non-blocking poll idiom the planners' scan loop depends on.
func TestLockSafetySelectDefaultUnderLock(t *testing.T) {
	src := `package tmp

import "sync"

type queue struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// poll drains at most one pending value without ever blocking.
func (q *queue) poll() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch:
		q.n += v
	default:
	}
	return q.n
}
`
	diags := runOnSnippet(t, src, []*Analyzer{LockSafety()})
	for _, d := range diags {
		t.Errorf("select with default under a held lock flagged: %s", d.String())
	}
}

// TestLockSafetySelectNoDefaultUnderLock: dropping the default clause
// makes the same select blocking, and blocking while holding the mutex
// is exactly what locksafety must reject — once, on the select itself,
// never separately on its comm clauses.
func TestLockSafetySelectNoDefaultUnderLock(t *testing.T) {
	src := `package tmp

import "sync"

type queue struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// wait blocks on the channel with the mutex held.
func (q *queue) wait() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch:
		q.n += v
	}
	return q.n
}
`
	diags := runOnSnippet(t, src, []*Analyzer{LockSafety()})
	if len(diags) != 1 {
		for _, d := range diags {
			t.Logf("active: %s", d.String())
		}
		t.Fatalf("got %d diagnostics, want exactly 1 (the blocking select)", len(diags))
	}
	d := diags[0]
	if d.Analyzer != "locksafety" ||
		!strings.Contains(d.Message, "select without a default clause") ||
		!strings.Contains(d.Message, "while holding") {
		t.Errorf("unexpected diagnostic: %s", d.String())
	}
}
