package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInjectedCrossUnitCastFailsLint verifies the unitsafety gate end to
// end on the real codebase, not just the fixture: a copy of the module's
// internal tree with a units.Joules(m.Speed) cross-unit cast injected
// into internal/core must come back with exactly that active diagnostic
// — the condition under which `make lint` (and so `make ci`) exits
// non-zero. Copying into t.TempDir keeps the poison out of the repo.
func TestInjectedCrossUnitCastFailsLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a copy of the internal tree; skipped in -short")
	}
	root := t.TempDir()
	src := filepath.Join("..", "..")
	// The root uavdc package rides along (internal/serve imports it);
	// test files stay behind so no testdata is needed.
	rootGo, err := filepath.Glob(filepath.Join(src, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	files := []string{"go.mod"}
	for _, f := range rootGo {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, filepath.Base(f))
		}
	}
	for _, f := range files {
		raw, err := os.ReadFile(filepath.Join(src, f))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, f), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.CopyFS(filepath.Join(root, "internal"), os.DirFS(filepath.Join(src, "internal"))); err != nil {
		t.Fatalf("copy internal tree: %v", err)
	}
	poison := `package core

import (
	"uavdc/internal/energy"
	"uavdc/internal/units"
)

// InjectedBudget deliberately crosses speed into energy without a
// helper; unitsafety must reject it.
func InjectedBudget(m energy.Model) units.Joules {
	return units.Joules(m.Speed)
}
`
	if err := os.WriteFile(filepath.Join(root, "internal", "core", "zz_injected.go"), []byte(poison), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(root)
	if err != nil {
		t.Fatalf("Load(copied module): %v", err)
	}
	active := Active(Run(mod, All()))
	if len(active) != 1 {
		for _, d := range active {
			t.Logf("active: %s", d.String())
		}
		t.Fatalf("got %d active diagnostics, want exactly the injected one", len(active))
	}
	d := active[0]
	if d.Analyzer != "unitsafety" || d.Path != "internal/core/zz_injected.go" ||
		!strings.Contains(d.Message, "cross-unit conversion units.MetersPerSecond → units.Joules") {
		t.Errorf("unexpected diagnostic: %s", d.String())
	}
}
