package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyModuleTree copies the real module — go.mod, the root package's
// non-test files, and the full internal tree — into a temp dir so tests
// can inject violations without touching the repo.
func copyModuleTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	src := filepath.Join("..", "..")
	// The root uavdc package rides along (internal/serve imports it);
	// test files stay behind so no testdata is needed.
	rootGo, err := filepath.Glob(filepath.Join(src, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	files := []string{"go.mod"}
	for _, f := range rootGo {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, filepath.Base(f))
		}
	}
	for _, f := range files {
		raw, err := os.ReadFile(filepath.Join(src, f))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, f), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.CopyFS(filepath.Join(root, "internal"), os.DirFS(filepath.Join(src, "internal"))); err != nil {
		t.Fatalf("copy internal tree: %v", err)
	}
	return root
}

// TestInjectedCrossUnitCastFailsLint verifies the unitsafety gate end to
// end on the real codebase, not just the fixture: a copy of the module's
// internal tree with a units.Joules(m.Speed) cross-unit cast injected
// into internal/core must come back with exactly that active diagnostic
// — the condition under which `make lint` (and so `make ci`) exits
// non-zero. Copying into t.TempDir keeps the poison out of the repo.
func TestInjectedCrossUnitCastFailsLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a copy of the internal tree; skipped in -short")
	}
	root := copyModuleTree(t)
	poison := `package core

import (
	"uavdc/internal/energy"
	"uavdc/internal/units"
)

// InjectedBudget deliberately crosses speed into energy without a
// helper; unitsafety must reject it.
func InjectedBudget(m energy.Model) units.Joules {
	return units.Joules(m.Speed)
}
`
	if err := os.WriteFile(filepath.Join(root, "internal", "core", "zz_injected.go"), []byte(poison), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(root)
	if err != nil {
		t.Fatalf("Load(copied module): %v", err)
	}
	active := Active(Run(mod, All()))
	if len(active) != 1 {
		for _, d := range active {
			t.Logf("active: %s", d.String())
		}
		t.Fatalf("got %d active diagnostics, want exactly the injected one", len(active))
	}
	d := active[0]
	if d.Analyzer != "unitsafety" || d.Path != "internal/core/zz_injected.go" ||
		!strings.Contains(d.Message, "cross-unit conversion units.MetersPerSecond → units.Joules") {
		t.Errorf("unexpected diagnostic: %s", d.String())
	}
}

// TestInjectedImpureEffectFailsPurePlan verifies the purity gate end to
// end on the real codebase: a copy of the module with a package-level
// counter bump injected into scanIndex.drained — deep inside the
// Algorithm 2 scan loop — must come back with exactly one active
// pureplan diagnostic whose chain walks from a planner entry point down
// to the injected write. This is the failure `make ci`'s lint step
// exists to catch: silent global state accumulating under the plan
// cache.
func TestInjectedImpureEffectFailsPurePlan(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a copy of the internal tree; skipped in -short")
	}
	root := copyModuleTree(t)
	fastscan := filepath.Join(root, "internal", "core", "fastscan.go")
	raw, err := os.ReadFile(fastscan)
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "func (ix *scanIndex) drained(v int) {"
	if !strings.Contains(string(raw), anchor) {
		t.Fatalf("injection anchor %q not found in fastscan.go", anchor)
	}
	poisoned := strings.Replace(string(raw), anchor, anchor+"\n\tinjectedTally++", 1)
	if err := os.WriteFile(fastscan, []byte(poisoned), 0o644); err != nil {
		t.Fatal(err)
	}
	decl := "package core\n\n// injectedTally is the deliberately impure accumulator.\nvar injectedTally int\n"
	if err := os.WriteFile(filepath.Join(root, "internal", "core", "zz_injected.go"), []byte(decl), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(root)
	if err != nil {
		t.Fatalf("Load(copied module): %v", err)
	}
	active := Active(Run(mod, All()))
	if len(active) != 1 {
		for _, d := range active {
			t.Logf("active: %s", d.String())
		}
		t.Fatalf("got %d active diagnostics, want exactly the injected one", len(active))
	}
	d := active[0]
	if d.Analyzer != "pureplan" || d.Path != "internal/core/fastscan.go" {
		t.Fatalf("unexpected diagnostic: %s", d.String())
	}
	for _, want := range []string{
		"reachable from entry point",
		"core.scanIndex.drained → write to package-level var core.injectedTally",
		"write to package-level var core.injectedTally reachable",
	} {
		if !strings.Contains(d.Message, want) {
			t.Errorf("diagnostic missing %q: %s", want, d.String())
		}
	}
}

// TestInjectedConcurrencyViolationsFailLint does the same for the three
// concurrency-contract analyzers in one pass: a copy of the module with
// one violation per analyzer injected — a leaked lock, a detached
// goroutine, and a stale wire tag — must come back with exactly those
// three active diagnostics and nothing else.
func TestInjectedConcurrencyViolationsFailLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a copy of the internal tree; skipped in -short")
	}
	root := copyModuleTree(t)
	poisons := []struct{ name, src string }{
		{"zz_locksafety.go", `package core

import "sync"

type injectedGuard struct {
	mu sync.Mutex
	n  int
}

// injectedLeak deliberately leaks the lock on the early return.
func (g *injectedGuard) injectedLeak(flag bool) int {
	g.mu.Lock()
	if flag {
		return 0
	}
	g.mu.Unlock()
	return g.n
}
`},
		{"zz_golifecycle.go", `package core

// injectedSpawn deliberately detaches a goroutine.
func injectedSpawn(out *int) {
	go func() {
		*out = 1
	}()
}
`},
		{"zz_wirefmt.go", `package core

// injectedSchema deliberately pins a stale wire version.
const injectedSchema = "uavdc-oplog/2"
`},
	}
	for _, p := range poisons {
		if err := os.WriteFile(filepath.Join(root, "internal", "core", p.name), []byte(p.src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := Load(root)
	if err != nil {
		t.Fatalf("Load(copied module): %v", err)
	}
	active := Active(Run(mod, All()))
	if len(active) != 3 {
		for _, d := range active {
			t.Logf("active: %s", d.String())
		}
		t.Fatalf("got %d active diagnostics, want exactly the three injected ones", len(active))
	}
	want := []struct{ analyzer, path, msg string }{
		{"locksafety", "internal/core/zz_locksafety.go", "locked here but not unlocked on every return path"},
		{"golifecycle", "internal/core/zz_golifecycle.go", "not tied to a shutdown path"},
		{"wirefmt", "internal/core/zz_wirefmt.go", `pins version 2 but the registry's current version is 1`},
	}
	seen := map[string]bool{}
	for _, d := range active {
		seen[d.Analyzer] = true
	}
	for _, w := range want {
		if !seen[w.analyzer] {
			t.Errorf("injected %s violation did not fire", w.analyzer)
			continue
		}
		for _, d := range active {
			if d.Analyzer != w.analyzer {
				continue
			}
			if d.Path != w.path || !strings.Contains(d.Message, w.msg) {
				t.Errorf("%s: unexpected diagnostic: %s", w.analyzer, d.String())
			}
		}
	}
}
