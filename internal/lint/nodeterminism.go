package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoDeterminism returns the nodeterminism analyzer. It enforces the
// repo's byte-identical-output contract at the source level:
//
//   - no wall-clock reads (time.Now, time.Since, time.Until) outside
//     internal/trace, internal/prof, and _test.go files — planner and
//     executor output must never depend on real time;
//   - no process-global math/rand source (rand.Intn, rand.Shuffle, ...)
//     outside the same allowlist — randomness must flow from an
//     explicitly seeded *rand.Rand (see internal/rng);
//   - no order-sensitive effects inside a range over a map, anywhere
//     (test files included): appending to a slice that is not sorted
//     later in the same function, emitting obs counters or trace
//     records, writing output, or running subtests all observe Go's
//     randomized map iteration order.
func NoDeterminism() *Analyzer {
	a := &Analyzer{
		Name: "nodeterminism",
		Doc:  "forbid wall-clock reads, global math/rand, and order-sensitive range-over-map effects",
	}
	a.Run = func(pass *Pass) {
		allowedPkg := pass.Pkg.Path == pass.Pkg.ModPath+"/internal/trace" ||
			pass.Pkg.Path == pass.Pkg.ModPath+"/internal/prof"
		for _, f := range pass.Pkg.Files {
			wallClockExempt := allowedPkg || pass.Pkg.IsTestFile(f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !wallClockExempt {
					checkClockAndRand(pass, fd.Body)
				}
				checkMapRanges(pass, fd)
			}
		}
	}
	return a
}

// checkClockAndRand reports wall-clock reads and global randomness use.
// Classification is delegated to the interprocedural effect table
// (classifyExternalCall), so nodeterminism's site rule and pureplan's
// reachability rule can never disagree on what counts as a clock or
// randomness read.
func checkClockAndRand(pass *Pass, body ast.Node) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || isMethod(fn) {
			return true
		}
		kind, desc, ok := classifyExternalCall(fn)
		if !ok {
			return true
		}
		switch kind {
		case EffectWallClock:
			pass.Reportf(call.Pos(),
				"wall-clock source %s is forbidden outside internal/trace, internal/prof and _test.go files — planner output must not depend on real time",
				desc)
		case EffectRand:
			pass.Reportf(call.Pos(),
				"global randomness source (%s) is process-global and unseeded — derive a seeded *rand.Rand (see internal/rng) instead",
				desc)
		}
		return true
	})
}

// checkMapRanges finds every range-over-map in fd and reports
// order-sensitive effects in its body.
func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(info, rs) {
			return true
		}
		checkMapRangeBody(pass, fd, rs)
		return true
	})
}

// isMapRange reports whether rs ranges over a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody walks one map-range body, skipping nested map
// ranges (they get their own check), and reports effects whose outcome
// depends on the iteration order.
func checkMapRangeBody(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	line := pass.Pkg.Fset.Position(rs.Pos()).Line
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapRange(info, inner) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinAppend(info, call) {
			if !appendSortedLater(pass, fd, rs, call) {
				pass.Reportf(call.Pos(),
					"append inside range over map (line %d) builds a slice in random iteration order; sort it afterwards in the same function, iterate sorted keys, or annotate",
					line)
			}
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case isRecordCall(pass, fn):
			pass.Reportf(call.Pos(),
				"obs/trace record (%s.%s) inside range over map (line %d) is emitted in random iteration order, breaking stream determinism",
				fn.Pkg().Name(), fn.Name(), line)
		case isOutputWrite(fn):
			pass.Reportf(call.Pos(),
				"output write (%s) inside range over map (line %d) happens in random iteration order; iterate sorted keys instead",
				callLabel(fn), line)
		}
		return true
	})
}

// isRecordCall reports whether fn is one of the obs/trace recording
// methods — the calls that actually emit counter updates or trace
// records (pure helpers in those packages are fine).
func isRecordCall(pass *Pass, fn *types.Func) bool {
	if !isMethod(fn) {
		return false
	}
	p := funcPkgPath(fn)
	if p != pass.Pkg.ModPath+"/internal/obs" && p != pass.Pkg.ModPath+"/internal/trace" {
		return false
	}
	return in(fn.Name(), "Counter", "Timer", "Histogram", "Inc", "Add", "Observe", "Start", "Begin", "Event")
}

// appendSortedLater reports whether an append inside a map-range body is
// order-safe:
//
//   - the target is a fresh value per iteration (composite literal,
//     call result, or a variable declared inside the loop), or
//   - the appended slice is sorted after the loop in the same function —
//     the canonical collect-then-sort idiom — where "sorted" means it is
//     passed to (or receives) a sort.*/slices.* call or a function whose
//     name contains "sort" (sortCollections, sortStrings, ...).
func appendSortedLater(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr) bool {
	info := pass.Pkg.Info
	if len(call.Args) == 0 {
		return false
	}
	target := ast.Unparen(call.Args[0])
	switch t := target.(type) {
	case *ast.Ident:
		obj := info.Uses[t]
		if obj == nil {
			obj = info.Defs[t]
		}
		if obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			return true // per-iteration slice: append order cannot leak out
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
		// Long-lived target: needs the sorted-later proof below.
	default:
		return true // composite literal or call result: fresh backing array
	}
	key := types.ExprString(target)
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(info, c)
		if fn == nil {
			return true
		}
		if !in(funcPkgPath(fn), "sort", "slices") &&
			!strings.Contains(strings.ToLower(fn.Name()), "sort") {
			return true
		}
		for _, arg := range c.Args {
			if types.ExprString(ast.Unparen(arg)) == key {
				sorted = true
				return false
			}
		}
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok &&
			types.ExprString(ast.Unparen(sel.X)) == key {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

// isOutputWrite reports whether fn writes user-visible output or drives
// the testing framework — effects whose order matters.
func isOutputWrite(fn *types.Func) bool {
	name := fn.Name()
	switch funcPkgPath(fn) {
	case "fmt":
		return in(name, "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln")
	case "log":
		return true
	case "testing":
		return isMethod(fn) && in(name, "Error", "Errorf", "Fatal", "Fatalf", "Log", "Logf", "Skip", "Skipf", "Run")
	case "io":
		return in(name, "WriteString", "Copy")
	}
	// Writer-shaped methods on any receiver (including errw.Writer's
	// Printf family): emitting into a buffer or stream in map order is
	// just as order-dependent.
	return isMethod(fn) && in(name, "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo",
		"Print", "Printf", "Println")
}

// callLabel renders pkg.Func or (*pkg.Type).Method for diagnostics.
func callLabel(fn *types.Func) string {
	qual := func(p *types.Package) string { return p.Name() }
	if isMethod(fn) {
		sig := fn.Type().(*types.Signature)
		return types.TypeString(sig.Recv().Type(), qual) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
