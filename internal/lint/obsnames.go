package lint

import (
	"go/ast"
	"go/constant"
	"go/token"

	"uavdc/internal/obs"
)

// obsNameMethods maps the obs/trace API methods that accept an
// instrumentation name (always the first argument) to the registry kind
// the name must be registered under.
var obsNameMethods = map[string]map[string]obs.NameKind{
	"internal/obs": {
		"Counter":   obs.KindCounter,
		"Timer":     obs.KindTimer,
		"Histogram": obs.KindHistogram,
		"Gauge":     obs.KindGauge,
	},
	"internal/trace": {
		"Begin": obs.KindSpan,
		"Event": obs.KindEvent,
	},
}

// ObsNames returns the obsnames analyzer: every name reaching
// obs.Recorder.Counter/Timer/Histogram/Gauge or trace.Tracer.Begin/Event must
// resolve, at compile time, to an entry of internal/obs's canonical
// registry (names.go) under the matching kind. Run-time-composed names
// are allowed only as <constant prefix ending in "/"> + <dynamic
// suffix> where "prefix/*" is a registered wildcard (the executor's
// mission/* vocabulary). Anything else — unregistered names, kind
// mismatches, fully dynamic names — is a diagnostic, so the recorded
// vocabulary cannot drift from the registry or, via the registry's
// cross-check test, from EXPERIMENTS.md. Test files are exempt (tests
// use scratch names).
func ObsNames() *Analyzer {
	a := &Analyzer{
		Name: "obsnames",
		Doc:  "instrumentation names must be registered in internal/obs's canonical registry",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || !isMethod(fn) {
					return true
				}
				var want obs.NameKind
				found := false
				for dir, methods := range obsNameMethods {
					if funcPkgPath(fn) == pass.Pkg.ModPath+"/"+dir {
						if kind, ok := methods[fn.Name()]; ok {
							want, found = kind, true
						}
						break
					}
				}
				if !found {
					return true
				}
				checkObsName(pass, call, fn.Name(), want)
				return true
			})
		}
	}
	return a
}

// checkObsName validates the name argument of one obs/trace API call.
func checkObsName(pass *Pass, call *ast.CallExpr, method string, want obs.NameKind) {
	info := pass.Pkg.Info
	arg := ast.Unparen(call.Args[0])
	tv := info.Types[arg]

	// Compile-time constant name: exact (or wildcard-covered) lookup.
	if tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		kind, ok := obs.LookupCanonical(name)
		switch {
		case !ok:
			pass.Reportf(arg.Pos(),
				"instrumentation name %q passed to %s is not in the canonical registry (internal/obs/names.go); register and document it in EXPERIMENTS.md",
				name, method)
		case kind != want:
			pass.Reportf(arg.Pos(),
				"instrumentation name %q is registered as a %s but passed to %s (wants a %s)",
				name, kind, method, want)
		}
		return
	}

	// Constant-prefix composition: prefix must end in "/" and have a
	// registered "prefix/*" wildcard of the right kind.
	if bin, ok := arg.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		if ltv := info.Types[bin.X]; ltv.Value != nil && ltv.Value.Kind() == constant.String {
			prefix := constant.StringVal(ltv.Value)
			kind, ok := obs.LookupCanonicalPrefix(prefix)
			switch {
			case !ok:
				pass.Reportf(arg.Pos(),
					"run-time-composed instrumentation name with prefix %q has no %q wildcard in the canonical registry",
					prefix, trimSlash(prefix)+"/*")
			case kind != want:
				pass.Reportf(arg.Pos(),
					"instrumentation prefix %q is registered as a %s wildcard but passed to %s (wants a %s)",
					prefix, kind, method, want)
			}
			return
		}
	}

	pass.Reportf(arg.Pos(),
		"non-constant instrumentation name passed to %s; use a registered constant, or a registered-wildcard prefix + dynamic suffix, or annotate generic plumbing",
		method)
}

// trimSlash drops one trailing slash for wildcard display.
func trimSlash(s string) string {
	if len(s) > 0 && s[len(s)-1] == '/' {
		return s[:len(s)-1]
	}
	return s
}
