package lint

import (
	"fmt"
	"go/token"
)

// purePlanEntries are the parity-locked entry points of the plan-cache
// purity contract: the planner algorithms whose byte-identical output
// the differential gates lock, the canonical encoding that keys the
// plan cache, and the serving daemon's flight-execution path that fills
// it. Everything reachable from these, up to the recording sinks, must
// be effect-free. Paths are module-relative; missing entries (smaller
// fixtures) are skipped.
var purePlanEntries = []struct {
	// pkg is the module-relative package directory.
	pkg string
	// fn is "Recv.Name" for methods, "Name" for functions.
	fn string
}{
	{"internal/core", "Algorithm1.Plan"},
	{"internal/core", "Algorithm2.Plan"},
	{"internal/core", "Algorithm3.Plan"},
	{"internal/core", "BenchmarkPlanner.Plan"},
	{"internal/core", "LNSPlanner.Plan"},
	{"internal/core", "ReplanResidual"},
	{"internal/canon", "Instance.Encode"},
	{"internal/canon", "Instance.Key"},
	{"internal/canon", "ExtendKey"},
	{"internal/serve", "defaultPlan"},
}

// purePlanSinks are the recording sinks the contract whitelists:
// reaching into these packages is fine (obs counters, trace records,
// errw formatting are observability, not planning state), and their
// internals are never traversed.
var purePlanSinks = []string{
	"internal/obs",
	"internal/trace",
	"internal/errw",
}

// pureDiag is one pureplan violation, routed to the analysis unit that
// owns the effect site so each per-package task emits only its own.
type pureDiag struct {
	unit *Package
	pos  token.Pos
	msg  string
}

// PurePlan returns the pureplan analyzer: interprocedural proof that
// the plan-cache purity contract holds. Every function reachable from
// the parity-locked entry points must be free of wall-clock reads,
// global randomness, package-level state writes, I/O, and environment
// access — up to the whitelisted recording sinks. Diagnostics carry the
// full call chain from entry point to offending effect and anchor at
// the effect site, so the usual //uavdc:allow pureplan grammar
// suppresses one effect edge at a time. Channel, lock, and panic
// operations are tracked in summaries but are not violations: the
// planners' deterministic parallel scan uses them legitimately.
func PurePlan() *Analyzer {
	a := &Analyzer{
		Name: "pureplan",
		Doc:  "prove the plan-cache purity contract: no effects reachable from planner entry points outside the recording sinks",
	}
	a.Run = func(pass *Pass) {
		if pass.Mod == nil {
			return
		}
		for _, d := range pass.Mod.purePlan() {
			if d.unit == pass.Pkg {
				pass.Reportf(d.pos, "%s", d.msg)
			}
		}
	}
	return a
}

// purePlan computes (once) the module's pureplan violations; safe for
// concurrent use from parallel analyzer tasks.
func (m *Module) purePlan() []pureDiag {
	m.pureOnce.Do(func() { m.pureDiags = computePurePlan(m) })
	return m.pureDiags
}

// computePurePlan walks the call graph breadth-first from the entry
// points, stopping at sink packages, and turns every violating effect
// of a reachable function into a diagnostic carrying the shortest
// entry→effect chain. Each effect site is reported once, from the
// first entry that reaches it.
func computePurePlan(m *Module) []pureDiag {
	g := m.Interp().Graph
	sink := map[string]bool{}
	for _, s := range purePlanSinks {
		sink[m.Path+"/"+s] = true
	}
	parent := map[FuncID]FuncID{}
	visited := map[FuncID]bool{}
	var queue []FuncID
	for _, e := range purePlanEntries {
		id := FuncID(m.Path + "/" + e.pkg + "." + e.fn)
		if g.Nodes[id] == nil || visited[id] {
			continue
		}
		visited[id] = true
		queue = append(queue, id)
	}
	var out []pureDiag
	type siteKey struct {
		pos  token.Pos
		kind EffectKind
	}
	seen := map[siteKey]bool{}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		node := g.Nodes[id]
		for _, eff := range node.Effects {
			if !violatingEffects.Has(eff.Kind) {
				continue
			}
			key := siteKey{pos: eff.Pos, kind: eff.Kind}
			if seen[key] {
				continue
			}
			seen[key] = true
			chain, entry := chainTo(g, parent, id)
			out = append(out, pureDiag{
				unit: node.Pkg,
				pos:  eff.Pos,
				msg: fmt.Sprintf("%s reachable from entry point %s: %s → %s — cached plans must be a pure function of the canonical instance; remove the effect, route it through a recording sink (obs/trace/errw), or annotate the site",
					effectLabel(eff), entry, chain, eff.Desc),
			})
		}
		for _, edge := range node.Edges {
			callee := g.Nodes[edge.Callee]
			if callee == nil || visited[edge.Callee] || sink[callee.Pkg.Path] {
				continue
			}
			visited[edge.Callee] = true
			parent[edge.Callee] = id
			queue = append(queue, edge.Callee)
		}
	}
	return out
}

// effectLabel heads the diagnostic: kind plus site, except for global
// writes whose Desc already names the variable.
func effectLabel(eff Effect) string {
	if eff.Kind == EffectGlobalWrite {
		return eff.Desc
	}
	return eff.Kind.String() + " " + eff.Desc
}

// chainTo renders the BFS call chain from the reaching entry point down
// to id ("core.Algorithm2.Plan → core.scanIndex.rescore") and returns
// it with the entry's display name.
func chainTo(g *Graph, parent map[FuncID]FuncID, id FuncID) (chain, entry string) {
	var ids []FuncID
	for {
		ids = append(ids, id)
		p, ok := parent[id]
		if !ok {
			break
		}
		id = p
	}
	for i := len(ids) - 1; i >= 0; i-- {
		if chain != "" {
			chain += " → "
		}
		chain += g.Nodes[ids[i]].Display
	}
	return chain, g.Nodes[ids[len(ids)-1]].Display
}
