package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// directivePrefix introduces every uavdc lint directive. Anything
// starting with it must parse as a well-formed directive; typos are
// reported, never silently ignored.
const directivePrefix = "//uavdc:"

// allowVerb is the only directive verb: //uavdc:allow <analyzer> <reason>.
const allowVerb = "allow"

// Directive is one parsed //uavdc:allow comment.
type Directive struct {
	// Analyzer is the suppressed analyzer's name.
	Analyzer string
	// Reason is the mandatory justification.
	Reason string
}

// ParseAllowDirective parses a raw line-comment text. It returns
// ok=false when text is not a uavdc directive at all (an ordinary
// comment). When the directive prefix is present, the result is either a
// valid Directive or a non-nil error — malformed directives are never
// silently ignored.
func ParseAllowDirective(text string) (d Directive, ok bool, err error) {
	rest, isDirective := strings.CutPrefix(text, directivePrefix)
	if !isDirective {
		return Directive{}, false, nil
	}
	verb := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, rest = rest[:i], rest[i+1:]
	} else {
		rest = ""
	}
	if verb != allowVerb {
		return Directive{}, true, fmt.Errorf("unknown uavdc directive %q (only %q is defined)", verb, allowVerb)
	}
	rest = strings.TrimLeft(rest, " \t")
	name := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, rest = rest[:i], rest[i+1:]
	} else {
		rest = ""
	}
	if name == "" {
		return Directive{}, true, fmt.Errorf("uavdc:allow: missing analyzer name")
	}
	if !validAnalyzerName(name) {
		return Directive{}, true, fmt.Errorf("uavdc:allow: invalid analyzer name %q", name)
	}
	reason := strings.TrimSpace(rest)
	if reason == "" {
		return Directive{}, true, fmt.Errorf("uavdc:allow %s: missing reason — say why the violation is deliberate", name)
	}
	return Directive{Analyzer: name, Reason: reason}, true, nil
}

// validAnalyzerName reports whether s is a plausible analyzer
// identifier: lower-case letters and digits, starting with a letter.
func validAnalyzerName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

// suppression is one placed directive: what it suppresses, where the
// directive comment itself sits, and whether it ever fired.
type suppression struct {
	Directive
	// Line and Col locate the directive comment (not the covered line),
	// so stale reports point at the directive to delete.
	Line int
	Col  int
	// used flips when covers matches a diagnostic against this
	// directive.
	used bool
}

// fileSuppressions indexes the allow directives of one file by the line
// they cover.
type fileSuppressions struct {
	// byLine maps a covered source line to its directives.
	byLine map[int][]*suppression
}

// covers reports whether a directive for analyzer covers line, returning
// its reason and marking the first matching directive as used.
func (fs *fileSuppressions) covers(analyzer string, line int) (string, bool) {
	for _, s := range fs.byLine[line] {
		if s.Analyzer == analyzer {
			s.used = true
			return s.Reason, true
		}
	}
	return "", false
}

// stale returns a directive diagnostic for every suppression that never
// fired, restricted to analyzers in ran — a subset run cannot judge
// directives for analyzers it did not execute. Like every directive
// finding, stale reports are not themselves suppressible.
func (fs *fileSuppressions) stale(path string, ran map[string]bool) []Diagnostic {
	lines := make([]int, 0, len(fs.byLine))
	for line := range fs.byLine {
		lines = append(lines, line)
	}
	sort.Ints(lines)
	var out []Diagnostic
	for _, line := range lines {
		for _, s := range fs.byLine[line] {
			if s.used || !ran[s.Analyzer] {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				Path:     path,
				Line:     s.Line,
				Col:      s.Col,
				Message: fmt.Sprintf("uavdc:allow %s suppressed nothing in this run — remove the stale directive or fix the line it covers",
					s.Analyzer),
			})
		}
	}
	return out
}

// scanSuppressions extracts the file's directives and decides which line
// each one covers: a directive trailing code covers its own line; a
// directive alone on its line covers the next line that is not itself a
// comment-only line, so directives can stack. Malformed directives and
// directives naming an unknown analyzer are returned as diagnostics
// under DirectiveAnalyzer.
func scanSuppressions(pkg *Package, f *ast.File, known map[string]bool) (*fileSuppressions, []Diagnostic) {
	fs := &fileSuppressions{byLine: map[int][]*suppression{}}
	var malformed []Diagnostic
	src := pkg.Src[pkg.Filename(f)]
	commentLines := map[int]bool{}
	for _, group := range f.Comments {
		for _, c := range group.List {
			start := pkg.Fset.Position(c.Pos())
			end := pkg.Fset.Position(c.End())
			if !lineHasCodeBefore(src, start.Offset) {
				for line := start.Line; line <= end.Line; line++ {
					commentLines[line] = true
				}
			}
		}
	}
	report := func(c *ast.Comment, err error) {
		pos := pkg.Fset.Position(c.Pos())
		malformed = append(malformed, Diagnostic{
			Analyzer: DirectiveAnalyzer,
			Path:     pkg.RelPath(f),
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  err.Error(),
		})
	}
	for _, group := range f.Comments {
		for _, c := range group.List {
			if strings.HasPrefix(c.Text, "/*") && strings.HasPrefix(c.Text, "/*uavdc:") {
				report(c, fmt.Errorf("uavdc directives must be line comments (//uavdc:...), not block comments"))
				continue
			}
			d, isDirective, err := ParseAllowDirective(c.Text)
			if !isDirective {
				continue
			}
			if err != nil {
				report(c, err)
				continue
			}
			if !known[d.Analyzer] {
				report(c, fmt.Errorf("uavdc:allow names unknown analyzer %q", d.Analyzer))
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			target := pos.Line
			if !lineHasCodeBefore(src, pos.Offset) {
				// Standalone directive: cover the next non-comment line.
				target = pos.Line + 1
				for commentLines[target] {
					target++
				}
				if target > pkg.Fset.File(c.Pos()).LineCount() {
					// Nothing follows the directive — it can never
					// suppress anything, which is a typo-shaped mistake,
					// not a deliberate one.
					report(c, fmt.Errorf("uavdc:allow %s suppresses nothing: no statement follows it", d.Analyzer))
					continue
				}
			}
			fs.byLine[target] = append(fs.byLine[target], &suppression{
				Directive: d, Line: pos.Line, Col: pos.Column,
			})
		}
	}
	return fs, malformed
}

// lineHasCodeBefore reports whether any non-whitespace byte precedes
// offset on its line — i.e. the comment starting at offset trails code.
func lineHasCodeBefore(src []byte, offset int) bool {
	for i := offset - 1; i >= 0 && i < len(src); i-- {
		switch src[i] {
		case '\n':
			return false
		case ' ', '\t', '\r':
			continue
		default:
			return true
		}
	}
	return false
}
