package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseAllowDirective(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		wantErr  bool
		analyzer string
		reason   string
	}{
		{"// ordinary comment", false, false, "", ""},
		{"//uavdc:allow floateq exact sentinel check", true, false, "floateq", "exact sentinel check"},
		{"//uavdc:allow errdrop   padded   reason  ", true, false, "errdrop", "padded   reason"},
		{"//uavdc:allow\tfloateq\ttabs count as separators", true, false, "floateq", "tabs count as separators"},
		{"//uavdc:allow floateq", true, true, "", ""},        // missing reason
		{"//uavdc:allow", true, true, "", ""},                // missing analyzer
		{"//uavdc:allow FloatEq casing", true, true, "", ""}, // invalid name
		{"//uavdc:allow 2fast reason", true, true, "", ""},   // leading digit
		{"//uavdc:deny floateq reason", true, true, "", ""},  // unknown verb
		{"//uavdc:", true, true, "", ""},                     // bare prefix
		{"//uavdc:allowfloateq reason", true, true, "", ""},  // verb not separated
		{"// uavdc:allow floateq spaced prefix", false, false, "", ""},
	}
	for _, c := range cases {
		d, ok, err := ParseAllowDirective(c.text)
		if ok != c.ok || (err != nil) != c.wantErr {
			t.Errorf("ParseAllowDirective(%q) = ok=%v err=%v, want ok=%v err=%v", c.text, ok, err, c.ok, c.wantErr)
			continue
		}
		if err == nil && ok && (d.Analyzer != c.analyzer || d.Reason != c.reason) {
			t.Errorf("ParseAllowDirective(%q) = %+v, want {%s %s}", c.text, d, c.analyzer, c.reason)
		}
	}
}

// scanTestFile runs scanSuppressions over a synthetic one-file package,
// with floateq/errdrop/nodeterminism as the known analyzers.
func scanTestFile(t *testing.T, src string) (*fileSuppressions, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{
		Path: "uavdc/internal/s", ModPath: "uavdc", Dir: "internal/s", Fset: fset,
		Files: []*ast.File{f}, Src: map[string][]byte{"s.go": []byte(src)},
	}
	known := map[string]bool{"floateq": true, "errdrop": true, "nodeterminism": true}
	return scanSuppressions(pkg, f, known)
}

// TestScanSuppressionsStacked locks the stacking rule: several
// standalone directives above one statement all cover that statement,
// skipping over each other (comment-only lines) on the way down.
func TestScanSuppressionsStacked(t *testing.T) {
	fs, malformed := scanTestFile(t, `package s

func f() {
	//uavdc:allow floateq first reason
	//uavdc:allow errdrop second reason
	_ = 1
}
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", malformed)
	}
	const codeLine = 6
	if _, ok := fs.covers("floateq", codeLine); !ok {
		t.Error("first stacked directive does not cover the statement line")
	}
	if _, ok := fs.covers("errdrop", codeLine); !ok {
		t.Error("second stacked directive does not cover the statement line")
	}
	for line := 4; line <= 5; line++ {
		if _, ok := fs.covers("floateq", line); ok {
			t.Errorf("directive covers its own comment line %d", line)
		}
	}
}

// TestScanSuppressionsLastLine: a standalone directive on the file's
// last line has no statement to cover; it is reported as a directive
// diagnostic (a suppression that can never fire is a typo-shaped
// mistake) and suppresses nothing.
func TestScanSuppressionsLastLine(t *testing.T) {
	fs, malformed := scanTestFile(t, "package s\n\nvar x = 1\n\n//uavdc:allow floateq dangling at end of file\n")
	if len(malformed) != 1 {
		t.Fatalf("got %d directive diagnostics, want 1: %v", len(malformed), malformed)
	}
	d := malformed[0]
	if d.Analyzer != DirectiveAnalyzer || d.Line != 5 || !strings.Contains(d.Message, "suppresses nothing") {
		t.Errorf("unexpected diagnostic: %s", d.String())
	}
	for line := 1; line <= 7; line++ {
		if reason, ok := fs.covers("floateq", line); ok {
			t.Errorf("dangling end-of-file directive covers line %d (%q)", line, reason)
		}
	}
}

// TestScanSuppressionsCRLF: Windows line endings must not confuse the
// trailing-vs-standalone decision — the \r before a trailing comment is
// whitespace, not code, and a standalone directive still finds the next
// statement line.
func TestScanSuppressionsCRLF(t *testing.T) {
	src := strings.Join([]string{
		"package s",
		"",
		"var a = 1 //uavdc:allow floateq trailing with crlf",
		"",
		"//uavdc:allow errdrop standalone with crlf",
		"var b = 2",
		"",
	}, "\r\n")
	fs, malformed := scanTestFile(t, src)
	if len(malformed) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", malformed)
	}
	if _, ok := fs.covers("floateq", 3); !ok {
		t.Error("trailing directive on a CRLF line does not cover its own line")
	}
	if _, ok := fs.covers("errdrop", 6); !ok {
		t.Error("standalone directive in a CRLF file does not cover the next statement line")
	}
	if _, ok := fs.covers("errdrop", 5); ok {
		t.Error("standalone directive in a CRLF file covers its own comment line")
	}
}

// TestScanSuppressionsUnknownAnalyzer: a directive naming an analyzer
// outside the known set is a diagnostic under the directive
// pseudo-analyzer, and suppresses nothing.
func TestScanSuppressionsUnknownAnalyzer(t *testing.T) {
	fs, malformed := scanTestFile(t, `package s

var a = 1 //uavdc:allow bogus misspelled analyzer
`)
	if len(malformed) != 1 {
		t.Fatalf("got %d directive diagnostics, want 1: %v", len(malformed), malformed)
	}
	d := malformed[0]
	if d.Analyzer != DirectiveAnalyzer || d.Line != 3 || !strings.Contains(d.Message, `unknown analyzer "bogus"`) {
		t.Errorf("unexpected diagnostic: %s", d.String())
	}
	if _, ok := fs.covers("bogus", 3); ok {
		t.Error("unknown-analyzer directive still registered a suppression")
	}
}

// TestScanSuppressionsMalformed: a directive with a typo'd verb or a
// missing reason is reported, never silently dropped.
func TestScanSuppressionsMalformed(t *testing.T) {
	_, malformed := scanTestFile(t, `package s

var a = 1 //uavdc:deny floateq wrong verb
var b = 2 //uavdc:allow floateq
`)
	if len(malformed) != 2 {
		t.Fatalf("got %d directive diagnostics, want 2: %v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Message, "unknown uavdc directive") {
		t.Errorf("verb typo not reported: %s", malformed[0].String())
	}
	if !strings.Contains(malformed[1].Message, "missing reason") {
		t.Errorf("missing reason not reported: %s", malformed[1].String())
	}
}

// TestSuppressionStale: a directive that never matched a diagnostic is
// reported stale, anchored at the directive comment itself; a directive
// that fired is not.
func TestSuppressionStale(t *testing.T) {
	fs, malformed := scanTestFile(t, `package s

var a = 1.0 //uavdc:allow floateq fires below
var b = 2 //uavdc:allow errdrop never fires
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", malformed)
	}
	if _, ok := fs.covers("floateq", 3); !ok {
		t.Fatal("floateq directive does not cover line 3")
	}
	ran := map[string]bool{"floateq": true, "errdrop": true, "nodeterminism": true}
	stale := fs.stale("internal/s/s.go", ran)
	if len(stale) != 1 {
		t.Fatalf("got %d stale reports, want 1: %v", len(stale), stale)
	}
	d := stale[0]
	if d.Analyzer != DirectiveAnalyzer || d.Path != "internal/s/s.go" || d.Line != 4 {
		t.Errorf("stale report misanchored: %s", d.String())
	}
	if !strings.Contains(d.Message, "uavdc:allow errdrop suppressed nothing") {
		t.Errorf("stale message = %q", d.Message)
	}
	// Stale reports are directive findings: never themselves suppressible.
	if d.Suppressed {
		t.Error("stale report arrived suppressed")
	}
}

// TestSuppressionStaleSubsetRun: a subset run cannot judge directives
// for analyzers it did not execute — only directives whose analyzer is
// in the ran set are eligible for stale reporting.
func TestSuppressionStaleSubsetRun(t *testing.T) {
	fs, _ := scanTestFile(t, `package s

var a = 1 //uavdc:allow floateq integers never trip floateq
var b = 2 //uavdc:allow errdrop also never fires
`)
	stale := fs.stale("s.go", map[string]bool{"floateq": true})
	if len(stale) != 1 {
		t.Fatalf("got %d stale reports, want 1 (errdrop did not run): %v", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "uavdc:allow floateq") {
		t.Errorf("wrong directive judged stale: %s", stale[0].String())
	}
	if len(fs.stale("s.go", map[string]bool{})) != 0 {
		t.Error("stale judged directives when nothing ran")
	}
}

// TestSuppressionStaleStacked: with two directives stacked over one
// statement, only the one that actually fired is spared — the other is
// stale even though it covers a line that did produce a diagnostic.
func TestSuppressionStaleStacked(t *testing.T) {
	fs, _ := scanTestFile(t, `package s

func f() {
	//uavdc:allow floateq fires
	//uavdc:allow nodeterminism does not fire
	_ = 1
}
`)
	if _, ok := fs.covers("floateq", 6); !ok {
		t.Fatal("stacked floateq directive does not cover the statement")
	}
	ran := map[string]bool{"floateq": true, "nodeterminism": true}
	stale := fs.stale("s.go", ran)
	if len(stale) != 1 {
		t.Fatalf("got %d stale reports, want 1: %v", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "uavdc:allow nodeterminism") || stale[0].Line != 5 {
		t.Errorf("wrong stacked directive judged stale: %s", stale[0].String())
	}
}

// TestSuppressionStaleCRLF: stale anchoring survives Windows line
// endings, trailing and standalone alike.
func TestSuppressionStaleCRLF(t *testing.T) {
	src := strings.Join([]string{
		"package s",
		"",
		"var a = 1 //uavdc:allow floateq never fires on an integer",
		"",
		"//uavdc:allow errdrop standalone, also never fires",
		"var b = 2",
		"",
	}, "\r\n")
	fs, _ := scanTestFile(t, src)
	ran := map[string]bool{"floateq": true, "errdrop": true}
	stale := fs.stale("s.go", ran)
	if len(stale) != 2 {
		t.Fatalf("got %d stale reports, want 2: %v", len(stale), stale)
	}
	if stale[0].Line != 3 || !strings.Contains(stale[0].Message, "floateq") {
		t.Errorf("trailing CRLF stale misanchored: %s", stale[0].String())
	}
	if stale[1].Line != 5 || !strings.Contains(stale[1].Message, "errdrop") {
		t.Errorf("standalone CRLF stale misanchored: %s", stale[1].String())
	}
}

// FuzzAllowDirective checks the directive grammar's core safety
// property: no comment carrying the uavdc: prefix is ever silently
// ignored — it either parses to a complete directive or returns an
// error. A typo in a suppression must surface as a diagnostic, not
// silently leave the suppression inactive.
func FuzzAllowDirective(f *testing.F) {
	for _, seed := range []string{
		"// ordinary comment",
		"//uavdc:allow floateq exact sentinel check",
		"//uavdc:allow floateq",
		"//uavdc:allow",
		"//uavdc:",
		"//uavdc:deny floateq reason",
		"//uavdc:allow FloatEq casing",
		"//uavdc:allow errdrop \t mixed \t whitespace ",
		"//uavdc:allow 0digit reason",
		"//uavdc:allow nodeterminism non-breaking space",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok, err := ParseAllowDirective(text)
		if strings.HasPrefix(text, "//uavdc:") {
			if !ok {
				t.Fatalf("%q carries the directive prefix but was ignored (ok=false)", text)
			}
			if err == nil {
				if d.Analyzer == "" || d.Reason == "" {
					t.Fatalf("%q parsed without error into incomplete directive %+v", text, d)
				}
				if !validAnalyzerName(d.Analyzer) {
					t.Fatalf("%q produced invalid analyzer name %q without error", text, d.Analyzer)
				}
			}
			return
		}
		// Not a directive: must be ignored without error.
		if ok || err != nil {
			t.Fatalf("%q lacks the prefix but parsed as ok=%v err=%v", text, ok, err)
		}
	})
}
