package lint

import (
	"strings"
	"testing"
)

func TestParseAllowDirective(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		wantErr  bool
		analyzer string
		reason   string
	}{
		{"// ordinary comment", false, false, "", ""},
		{"//uavdc:allow floateq exact sentinel check", true, false, "floateq", "exact sentinel check"},
		{"//uavdc:allow errdrop   padded   reason  ", true, false, "errdrop", "padded   reason"},
		{"//uavdc:allow\tfloateq\ttabs count as separators", true, false, "floateq", "tabs count as separators"},
		{"//uavdc:allow floateq", true, true, "", ""},        // missing reason
		{"//uavdc:allow", true, true, "", ""},                // missing analyzer
		{"//uavdc:allow FloatEq casing", true, true, "", ""}, // invalid name
		{"//uavdc:allow 2fast reason", true, true, "", ""},   // leading digit
		{"//uavdc:deny floateq reason", true, true, "", ""},  // unknown verb
		{"//uavdc:", true, true, "", ""},                     // bare prefix
		{"//uavdc:allowfloateq reason", true, true, "", ""},  // verb not separated
		{"// uavdc:allow floateq spaced prefix", false, false, "", ""},
	}
	for _, c := range cases {
		d, ok, err := ParseAllowDirective(c.text)
		if ok != c.ok || (err != nil) != c.wantErr {
			t.Errorf("ParseAllowDirective(%q) = ok=%v err=%v, want ok=%v err=%v", c.text, ok, err, c.ok, c.wantErr)
			continue
		}
		if err == nil && ok && (d.Analyzer != c.analyzer || d.Reason != c.reason) {
			t.Errorf("ParseAllowDirective(%q) = %+v, want {%s %s}", c.text, d, c.analyzer, c.reason)
		}
	}
}

// FuzzAllowDirective checks the directive grammar's core safety
// property: no comment carrying the uavdc: prefix is ever silently
// ignored — it either parses to a complete directive or returns an
// error. A typo in a suppression must surface as a diagnostic, not
// silently leave the suppression inactive.
func FuzzAllowDirective(f *testing.F) {
	for _, seed := range []string{
		"// ordinary comment",
		"//uavdc:allow floateq exact sentinel check",
		"//uavdc:allow floateq",
		"//uavdc:allow",
		"//uavdc:",
		"//uavdc:deny floateq reason",
		"//uavdc:allow FloatEq casing",
		"//uavdc:allow errdrop \t mixed \t whitespace ",
		"//uavdc:allow 0digit reason",
		"//uavdc:allow nodeterminism non-breaking space",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok, err := ParseAllowDirective(text)
		if strings.HasPrefix(text, "//uavdc:") {
			if !ok {
				t.Fatalf("%q carries the directive prefix but was ignored (ok=false)", text)
			}
			if err == nil {
				if d.Analyzer == "" || d.Reason == "" {
					t.Fatalf("%q parsed without error into incomplete directive %+v", text, d)
				}
				if !validAnalyzerName(d.Analyzer) {
					t.Fatalf("%q produced invalid analyzer name %q without error", text, d.Analyzer)
				}
			}
			return
		}
		// Not a directive: must be ignored without error.
		if ok || err != nil {
			t.Fatalf("%q lacks the prefix but parsed as ok=%v err=%v", text, ok, err)
		}
	})
}
