module uavdc

go 1.23
