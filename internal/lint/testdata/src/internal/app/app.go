// Package app holds the errdrop and range-over-map fixture cases, which
// apply outside the floateq scope too.
package app

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strings"
)

// DropErrors holds the errdrop cases.
func DropErrors(path string) uint64 {
	os.Remove(path) // positive: errdrop
	os.Remove(path) //uavdc:allow errdrop fixture: deliberate discard
	_ = os.Remove(path)
	var sb strings.Builder
	sb.WriteString("x")         // clean: strings.Builder never fails
	fmt.Fprintf(os.Stdout, "x") // clean: process stdout convention
	h := fnv.New64a()
	h.Write([]byte(path)) // clean: hash.Hash never fails
	return h.Sum64()
}

// GlobalRand holds the unseeded-rand cases.
func GlobalRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10) + rand.Intn(10) // positive: global rand.Intn (the seeded r.Intn is clean)
}

// MapOrder holds the range-over-map cases.
func MapOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // clean: sorted after the loop
	}
	sort.Strings(keys)
	var bad []string
	for k := range m {
		bad = append(bad, k) // positive: never sorted
	}
	for k, v := range m {
		fmt.Println(k, v) // positive: output in map order
	}
	for k := range m {
		fmt.Println(k) //uavdc:allow nodeterminism fixture: deliberate unordered print
	}
	for range m {
		fresh := []string{}
		fresh = append(fresh, "x") // clean: per-iteration slice
		_ = fresh
	}
	return bad
}
