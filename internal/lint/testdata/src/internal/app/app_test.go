package app

import (
	"testing"
	"time"
)

// TestFileRules: wall-clock and rand are exempt in _test.go files, but
// the range-over-map rules still apply.
func TestFileRules(t *testing.T) {
	_ = time.Now() // clean: tests may read the wall clock
	m := map[string]int{"a": 1}
	for k := range m {
		t.Log(k) // positive: test output in map order
	}
}
