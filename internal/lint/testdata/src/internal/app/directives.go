// Malformed-directive cases: every comment carrying the uavdc: prefix
// must parse, or it is reported under the "directive" pseudo-analyzer
// (and the diagnostic it meant to suppress stays active).
package app

import "os"

// BadDirectives exercises the directive error paths.
func BadDirectives(path string) {
	os.Remove(path) //uavdc:allow errdrop
	os.Remove(path) //uavdc:permit errdrop wrong verb
	os.Remove(path) //uavdc:allow ErrDrop bad analyzer casing
	os.Remove(path) //uavdc:allow unknownanalyzer plausible but not an analyzer
	/*uavdc:allow errdrop block comments are not directives*/
	os.Remove(path)
}

// StaleDirective exercises stale-suppression detection: floateq runs
// over the module but cannot fire on an integer line, so the directive
// below suppressed nothing and is itself reported.
func StaleDirective() int {
	x := 1 //uavdc:allow floateq fixture: stale — integers never trip floateq
	return x
}
