// Package conc is the concurrency fixture: locksafety, golifecycle,
// and wirefmt positives, suppressed cases, and clean baselines.
package conc

import "sync"

// Store is the well-behaved baseline: pointer receivers, paired locks.
type Store struct {
	mu sync.Mutex
	n  int
}

// Inc is clean: Lock paired with a deferred Unlock.
func (s *Store) Inc() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// LeakLock leaks the lock on the early return path.
func (s *Store) LeakLock(flag bool) int {
	s.mu.Lock()
	if flag {
		return 0
	}
	s.mu.Unlock()
	return s.n
}

// LeakLockAllowed is the same leak, deliberately annotated.
func (s *Store) LeakLockAllowed(flag bool) int {
	s.mu.Lock() //uavdc:allow locksafety fixture: deliberate leak on the early return
	if flag {
		return 0
	}
	s.mu.Unlock()
	return s.n
}

// DoubleLock self-deadlocks.
func (s *Store) DoubleLock() {
	s.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
}

// BlockUnderLock sends on a channel inside the critical section.
func (s *Store) BlockUnderLock(ch chan int) {
	s.mu.Lock()
	ch <- s.n
	s.mu.Unlock()
}

// NonBlockingUnderLock is clean: a select with a default clause never
// blocks, so holding the lock across it is fine.
func (s *Store) NonBlockingUnderLock(ch chan int) {
	s.mu.Lock()
	select {
	case ch <- s.n:
	default:
	}
	s.mu.Unlock()
}

// Snapshot copies the lock-bearing struct.
func Snapshot(s *Store) Store {
	v := *s
	return v
}

// SnapshotAllowed is the same copy, deliberately annotated.
func SnapshotAllowed(s *Store) Store {
	v := *s //uavdc:allow locksafety fixture: copy of a quiesced value
	return v
}

// Counter has a value receiver that copies its lock on every call.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Read copies c (and c.mu) per call.
func (c Counter) Read() int {
	return c.n
}

// SpawnDetached launches a goroutine with no shutdown path.
func SpawnDetached(out *int) {
	go func() {
		*out = 1
	}()
}

// SpawnDetachedAllowed is the same launch, deliberately annotated.
func SpawnDetachedAllowed(out *int) {
	go func() { //uavdc:allow golifecycle fixture: fire-and-forget by design
		*out = 2
	}()
}

// SpawnTracked is the clean baseline: one worker drained by a channel
// close and WaitGroup, one watcher parked on a done channel.
func SpawnTracked(stop chan struct{}, jobs chan int, out *int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := range jobs {
			*out += j
		}
	}()
	go func() {
		<-stop
		*out = -1
	}()
	wg.Wait()
}

// Wire tags resolve against the real module's internal/wire registry
// (the analyzer links it at compile time): SchemaOK matches, the others
// are the two failure modes plus a malformed name.
const (
	SchemaOK    = "uavdc-serve/1"
	SchemaBogus = "uavdc-fixture-bogus/1"
	SchemaStale = "uavdc-serve/99"
)

// SchemaMalformed's name violates the tag grammar (trailing dash).
const SchemaMalformed = "uavdc-bad-/1"

// SchemaStaleAllowed is a deliberately pinned old-style tag.
const SchemaStaleAllowed = "uavdc-oplog/99" //uavdc:allow wirefmt fixture: pinned legacy tag
