// Package core is the fixture's floateq-scoped package, with positive
// and suppressed cases for floateq, nodeterminism, and obsnames.
package core

import (
	"time"

	"uavdc/internal/obs"
	"uavdc/internal/trace"
)

const missionPrefix = "mission/"

// FloatCompare holds the floateq cases.
func FloatCompare(a, b float64) int {
	if a == b { // positive: floateq
		return 0
	}
	if a != b { //uavdc:allow floateq fixture: deliberate exact check
		return 1
	}
	return 2
}

// Ordering is clean: < and > are fine under floateq.
func Ordering(a, b float64) bool { return a < b }

// Clock holds the wall-clock cases.
func Clock() time.Duration {
	start := time.Now() // positive: nodeterminism
	//uavdc:allow nodeterminism fixture: standalone directive covering the next line
	stop := time.Now()
	return stop.Sub(start)
}

// Instrument holds the obsnames cases against the real canonical
// registry (the analyzer links it in).
func Instrument(r obs.Rec, tr trace.Tracer, kind string) {
	r.Counter("core.candidate_evals").Add(1) // clean: registered counter
	r.Counter("core.bogus_counter").Add(1)   // positive: unregistered
	r.Counter("plan/alg1").Add(1)            // positive: registered as a span
	r.Counter(kind).Add(1)                   // positive: non-constant
	r.Counter(kind).Add(1)                   //uavdc:allow obsnames fixture: generic plumbing
	end := tr.Begin("plan/alg1")             // clean: registered span
	end()
	tr.Event(missionPrefix + kind) // clean: mission/* wildcard
	tr.Event("bogus/" + kind)      // positive: no bogus/* wildcard

	r.Counter("serve.hits").Add(1)     // clean: registered serving counter
	r.Counter("serve.bogus").Add(1)    // positive: unregistered serve.* name
	r.Counter("serve.unlisted").Add(1) //uavdc:allow obsnames fixture: suppressed serve case
	end2 := tr.Begin("serve/request")  // clean: registered serving span
	end2()

	r.Gauge("serve.queue_depth").Add(1) // clean: registered gauge
	r.Gauge("serve.hits").Add(1)        // positive: registered as a counter, passed to Gauge
	r.Gauge("serve.bogus_gauge").Add(1) //uavdc:allow obsnames fixture: suppressed gauge case
}
