// Algorithm2 mirrors the real planner type so the fixture exercises
// pureplan's entry-point matching: the fixture module is also named
// uavdc, so uavdc/internal/core.Algorithm2.Plan is a parity-locked
// entry point here exactly as in the real module.
package core

import (
	"uavdc/internal/pure"
	"uavdc/internal/trace"
)

// Algorithm2 stands in for the real greedy planner.
type Algorithm2 struct{}

// Plan reaches every effect case in internal/pure.
func (Algorithm2) Plan() float64 {
	return pure.Entry(trace.Tracer{})
}
