package core

import (
	"math"

	"uavdc/internal/units"
)

// Launder holds the unitsafety rule (a) cases: cross-unit and
// unit→float64 conversions.
func Launder(s units.Seconds, j units.Joules) (units.Joules, float64) {
	bad := units.Joules(s)     // positive: unitsafety (cross-unit)
	raw := float64(j)          // positive: unitsafety (unit→float64)
	ok := units.Joules(s)      //uavdc:allow unitsafety fixture: deliberate cross-unit cast
	okRaw := float64(j)        //uavdc:allow unitsafety fixture: deliberate unwrap without .F()
	clean := units.Joules(raw) // clean: plain→unit is the constructor direction
	_ = ok
	_ = okRaw
	return bad + clean, raw + j.F() // clean: .F() is the sanctioned escape
}

// Magnitudes holds the rule (b) cases: bare literals cast into units.
func Magnitudes() units.Meters {
	bad := units.Meters(42.5)               // positive: unitsafety (literal magnitude)
	ok := units.Meters(1e3)                 //uavdc:allow unitsafety fixture: named elsewhere
	var zero units.Meters = units.Meters(0) // clean: zero literal reads as initialisation
	var implicit units.Meters = 7.5         // clean: implicit constant conversion
	return bad + ok + zero + implicit
}

// Formulas holds the rule (c) cases: math.* over unit expressions.
func Formulas(r, h units.Meters, p units.Watts, t units.Seconds) (units.Meters, bool) {
	bad := units.Meters(math.Sqrt(r.F()*r.F() - h.F()*h.F())) // positive: unitsafety (math over units)
	ok := math.Sqrt(r.F() * h.F())                            //uavdc:allow unitsafety fixture: dimensionally vetted
	pow := math.Pow(units.Ratio(r, h), 2.0)                   // clean: helper call is a sanctioned crossing
	nan := math.IsNaN(units.Energy(p, t).F())                 // clean: predicate, no magnitude result
	return bad + units.Meters(ok*pow), nan
}
