// Package obs is a miniature stand-in for the real internal/obs: it
// carries exactly the method names the obsnames analyzer keys on.
package obs

// Rec records metrics.
type Rec struct{}

// Cell is a recorded handle.
type Cell struct{}

// Counter returns the named counter.
func (Rec) Counter(name string) Cell { return Cell{} }

// Timer returns the named timer.
func (Rec) Timer(name string) Cell { return Cell{} }

// Histogram returns the named histogram.
func (Rec) Histogram(name string, bounds []float64) Cell { return Cell{} }

// Gauge returns the named gauge.
func (Rec) Gauge(name string) Cell { return Cell{} }

// Add records n.
func (Cell) Add(n int64) {}
