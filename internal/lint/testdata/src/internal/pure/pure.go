// Package pure is the fixture's pureplan surface: every function here
// is reachable from the fixture core.Algorithm2.Plan entry point, with
// one active and one suppressed case per effect rule (wall-clock,
// randomness, package-level write, I/O, environment), a recording-sink
// case the analyzer must not traverse, a multi-hop chain, a
// devirtualized interface call, a function-literal case, a
// function-value reference, and a mutually recursive pair that
// exercises the SCC fixpoint. Channel use is deliberately unflagged:
// the deterministic parallel scan idiom is legal under the contract.
package pure

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"uavdc/internal/trace"
)

// calls and total are the package-level state the write rule guards.
var calls int
var total float64

// Tick holds the wall-clock cases (nodeterminism flags the same sites —
// the two analyzers share one classification table).
func Tick() time.Time {
	t := time.Now() // positive: pureplan (and nodeterminism)
	//uavdc:allow nodeterminism fixture: shared-truth twin of the pureplan case
	//uavdc:allow pureplan fixture: deliberate suppressed wall-clock read
	_ = time.Now()
	return t
}

// Draw holds the randomness cases.
func Draw() float64 {
	v := rand.Float64() // positive: pureplan (and nodeterminism)
	//uavdc:allow nodeterminism fixture: shared-truth twin of the pureplan case
	//uavdc:allow pureplan fixture: deliberate suppressed randomness read
	v += rand.Float64()
	return v
}

// Bump holds the package-level write cases.
func Bump() {
	calls++ // positive: pureplan global write
	//uavdc:allow pureplan fixture: deliberate suppressed global write
	total += 1
}

// Slurp holds the I/O cases.
func Slurp() {
	fmt.Println("plan") // positive: pureplan I/O
	//uavdc:allow pureplan fixture: deliberate suppressed I/O
	fmt.Println("done")
}

// Env holds the environment-access cases.
func Env() string {
	v := os.Getenv("UAVDC_MODE") // positive: pureplan env read
	//uavdc:allow pureplan fixture: deliberate suppressed env read
	v += os.Getenv("UAVDC_EXTRA")
	return v
}

// Record reaches into the trace recording sink; the wall-clock read
// inside trace.Tracer.Begin must never surface here — sink packages are
// whitelisted and not traversed.
func Record(tr trace.Tracer) {
	end := tr.Begin("plan/alg1")
	end()
}

// Chain is the multi-hop case: the diagnostic must spell
// core.Algorithm2.Plan → pure.Chain → pure.hop → pure.deep → rand.Int.
func Chain() int { return hop() }

func hop() int { return deep() }

func deep() int {
	return rand.Int() // positive: pureplan, three hops from the entry
}

// scorer is devirtualized: the only in-module implementation is dice,
// so Eval's interface call resolves to dice.score.
type scorer interface{ score() float64 }

type dice struct{}

func (dice) score() float64 {
	return rand.Float64() // positive: pureplan via devirtualized call
}

// Eval calls through the interface; pureplan must still see the effect.
func Eval(s scorer) float64 { return s.score() }

// NewScorer hands Plan a concrete scorer.
func NewScorer() scorer { return dice{} }

// Lit holds the function-literal case: the effect sits inside an
// anonymous function, reported under the pure.Lit.func1 child node.
func Lit() func() time.Time {
	return func() time.Time {
		return time.Now() // positive: pureplan inside a literal
	}
}

// Indirect references tickRef without calling it; the conservative
// "ref" edge keeps tickRef reachable.
func Indirect() func() time.Time { return tickRef }

func tickRef() time.Time {
	return time.Now() // positive: pureplan via function-value reference
}

// ping and pong are mutually recursive; the SCC fixpoint gives both the
// same summary, and the randomness in pong surfaces through ping.
func ping(n int) int {
	if n <= 0 {
		return 0
	}
	return pong(n - 1)
}

func pong(n int) int {
	if n%7 == 0 {
		return rand.Intn(7) // positive: pureplan inside a recursive cycle
	}
	return ping(n - 1)
}

// Fan is the legal-concurrency case: goroutine, WaitGroup, channel send
// and receive are tracked in summaries but are not purity violations —
// the deterministic parallel scan idiom stays legal.
func Fan(xs []float64) float64 {
	out := make(chan float64, len(xs))
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out <- x * x
		}()
	}
	wg.Wait()
	close(out)
	var sum float64
	for v := range out {
		sum += v
	}
	return sum
}

// Apply calls through a plain function value: the graph cannot resolve
// the callee and records a conservative unknown-callee marker. Not
// reachable from the entry point — the marker is summary-only either
// way.
func Apply(f func(int) int, v int) int { return f(v) }

// Entry ties the package together for the fixture core entry point.
func Entry(tr trace.Tracer) float64 {
	Tick()
	v := Draw()
	Bump()
	Slurp()
	_ = Env()
	Record(tr)
	_ = Chain()
	v += Eval(NewScorer())
	_ = Lit()
	_ = Indirect()
	_ = ping(3)
	return v + Fan([]float64{v})
}
