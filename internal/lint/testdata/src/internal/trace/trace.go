// Package trace is a miniature stand-in for the real internal/trace.
// It sits on the nodeterminism wall-clock allowlist, which the fixture
// exercises below.
package trace

import "time"

// Tracer records spans and events.
type Tracer struct{}

// Begin opens a span; internal/trace may read the wall clock.
func (Tracer) Begin(name string) func() {
	start := time.Now() // allowed: internal/trace is on the wall-clock allowlist
	return func() { _ = time.Since(start) }
}

// Event records a point event.
func (Tracer) Event(name string) {}
