// Package units mirrors the real module's internal/units: defined
// float64 quantities plus the sanctioned dimension-crossing helpers. The
// unitsafety analyzer keys on this package path, so the fixture needs
// its own copy.
package units

// Joules is an energy quantity.
type Joules float64

// Watts is a power quantity.
type Watts float64

// Seconds is a time quantity.
type Seconds float64

// Meters is a distance quantity.
type Meters float64

// F unwraps to a plain float64 at a boundary.
func (j Joules) F() float64 { return float64(j) }

// F unwraps to a plain float64 at a boundary.
func (w Watts) F() float64 { return float64(w) }

// F unwraps to a plain float64 at a boundary.
func (s Seconds) F() float64 { return float64(s) }

// F unwraps to a plain float64 at a boundary.
func (m Meters) F() float64 { return float64(m) }

// Energy is power sustained for a duration.
func Energy(p Watts, t Seconds) Joules { return Joules(float64(p) * float64(t)) }

// Ratio is the dimensionless quotient of two like quantities.
func Ratio(a, b Meters) float64 { return float64(a) / float64(b) }
