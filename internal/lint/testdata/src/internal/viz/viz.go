// Package viz is a registered unitsafety boundary package in the
// fixture: wholesale unit→float64 conversions here are clean.
package viz

import "uavdc/internal/units"

// Render flattens a quantity for plotting; allowed in a boundary
// package without .F() or an annotation.
func Render(j units.Joules) float64 { return float64(j) }
