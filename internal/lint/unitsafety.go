package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// unitsafetyBoundary lists the module-relative package dirs where unit
// quantities legitimately leave the typed world wholesale — rendering,
// instrumentation encoding, experiment tables/JSON — plus every cmd/*
// package (flag parsing). Inside these dirs, unit→float64 conversions are
// permitted; everywhere else the one sanctioned escape is the .F() method.
var unitsafetyBoundary = []string{
	"internal/viz",
	"internal/obs",
	"internal/trace",
	"internal/experiments",
}

// unitsafetyMathPredicates are math functions that classify rather than
// transform: their results carry no magnitude, so they cannot launder a
// dimension (Validate-style NaN/Inf screens stay clean).
var unitsafetyMathPredicates = map[string]bool{
	"IsNaN":   true,
	"IsInf":   true,
	"Signbit": true,
}

// UnitSafety returns the unitsafety analyzer. It guards the internal/units
// dimension discipline with three rules:
//
//	(a) no conversion between two distinct unit types, and no conversion
//	    from a unit type to plain float64, outside internal/units and the
//	    registered boundary packages — cross dimensions through the units
//	    helpers, leave the typed world through .F();
//	(b) no untyped non-zero float/int literal converted directly into a
//	    unit type — untyped constants already convert implicitly, so an
//	    explicit units.T(3e5) is noise that hides real casts;
//	(c) no math.* call whose argument contains a unit-typed subexpression
//	    (math.Sqrt over .F()-unwrapped distances and the like launders the
//	    dimension of the result) unless annotated, excluding the IsNaN/
//	    IsInf/Signbit predicates and arguments that are themselves calls to
//	    internal/units helpers (the sanctioned crossings).
//
// internal/units itself and _test.go files are exempt. Deliberate sites
// carry //uavdc:allow unitsafety <reason>.
func UnitSafety() *Analyzer {
	a := &Analyzer{
		Name: "unitsafety",
		Doc:  "forbid conversions and math.* calls that launder physical dimensions past internal/units",
	}
	a.Run = func(pass *Pass) {
		unitsPath := pass.Pkg.ModPath + "/internal/units"
		if pass.Pkg.Path == unitsPath {
			return
		}
		inBoundary := strings.HasPrefix(pass.Pkg.Dir, "cmd/")
		for _, dir := range unitsafetyBoundary {
			if pass.Pkg.Path == pass.Pkg.ModPath+"/"+dir {
				inBoundary = true
				break
			}
		}
		info := pass.Pkg.Info
		isUnit := func(t types.Type) (*types.Named, bool) {
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != unitsPath {
				return nil, false
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Kind() != types.Float64 {
				return nil, false
			}
			return named, true
		}
		// unitsCall reports whether call invokes a package-level function
		// of internal/units (Energy, Ratio, Scale, ...): a sanctioned
		// dimension crossing whose interior needs no re-inspection.
		unitsCall := func(call *ast.CallExpr) bool {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return false
			}
			pn, ok := info.Uses[id].(*types.PkgName)
			return ok && pn.Imported().Path() == unitsPath
		}
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
					checkConversion(pass, info, call, tv.Type, isUnit, inBoundary)
					return true
				}
				checkMathCall(pass, info, call, isUnit, unitsCall)
				return true
			})
		}
	}
	return a
}

// checkConversion applies rules (a) and (b) to the conversion T(arg).
func checkConversion(pass *Pass, info *types.Info, call *ast.CallExpr, target types.Type,
	isUnit func(types.Type) (*types.Named, bool), inBoundary bool) {
	arg := call.Args[0]
	argTV := info.Types[arg]
	targetUnit, targetIsUnit := isUnit(target)
	argUnit, argIsUnit := isUnit(argTV.Type)

	if targetIsUnit && argIsUnit && targetUnit.Obj() != argUnit.Obj() && !inBoundary {
		pass.Reportf(call.Pos(),
			"cross-unit conversion units.%s → units.%s launders a dimension; cross dimensions through the internal/units helpers (Energy, TravelTime, Transfer, ...) or annotate",
			argUnit.Obj().Name(), targetUnit.Obj().Name())
		return
	}
	if argIsUnit && !targetIsUnit && isPlainFloat64(target) && !inBoundary {
		pass.Reportf(call.Pos(),
			"conversion of units.%s to plain float64; leave the typed world with the explicit .F() escape at a documented boundary, or annotate",
			argUnit.Obj().Name())
		return
	}
	if targetIsUnit && argTV.Value != nil && isNonZeroNumeric(argTV.Value) {
		if lit := stripSignedLiteral(arg); lit != nil {
			pass.Reportf(call.Pos(),
				"untyped literal converted into units.%s; untyped constants convert implicitly — drop the conversion, or name the constant in internal/units",
				targetUnit.Obj().Name())
		}
	}
}

// checkMathCall applies rule (c) to a call of math.<fn>.
func checkMathCall(pass *Pass, info *types.Info, call *ast.CallExpr,
	isUnit func(types.Type) (*types.Named, bool), unitsCall func(*ast.CallExpr) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "math" || unitsafetyMathPredicates[sel.Sel.Name] {
		return
	}
	for _, arg := range call.Args {
		var laundered *types.Named
		ast.Inspect(arg, func(n ast.Node) bool {
			if laundered != nil {
				return false
			}
			if inner, ok := n.(*ast.CallExpr); ok && unitsCall(inner) {
				return false // sanctioned crossing; interior already vetted
			}
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if named, ok := isUnit(info.Types[expr].Type); ok {
				laundered = named
				return false
			}
			return true
		})
		if laundered != nil {
			pass.Reportf(call.Pos(),
				"math.%s argument contains a units.%s expression; the result's dimension is laundered — use an internal/units helper, or annotate why the formula is dimensionally sound",
				sel.Sel.Name, laundered.Obj().Name())
			return
		}
	}
}

// isPlainFloat64 reports whether t is the basic (unnamed) float64 type.
func isPlainFloat64(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.Float64
}

// isNonZeroNumeric reports whether v is a numeric constant other than
// exactly zero (zero-valued conversions like units.Seconds(0) read as
// initialisation, not as smuggled magnitudes).
func isNonZeroNumeric(v constant.Value) bool {
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Compare(v, token.NEQ, constant.MakeInt64(0))
	}
	return false
}

// stripSignedLiteral unwraps parentheses and a leading unary ± and
// returns the underlying numeric literal, or nil if the expression is not
// a bare literal (named constants and folded expressions are fine — they
// carry intent).
func stripSignedLiteral(e ast.Expr) *ast.BasicLit {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.ADD && x.Op != token.SUB {
				return nil
			}
			e = x.X
		case *ast.BasicLit:
			if x.Kind == token.INT || x.Kind == token.FLOAT {
				return x
			}
			return nil
		default:
			return nil
		}
	}
}
