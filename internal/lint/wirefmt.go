package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"

	"uavdc/internal/wire"
)

// WireFmt returns the wirefmt analyzer: every "uavdc-<name>/<version>"
// occurrence in a non-test string literal must constant-fold into the
// internal/wire registry — a registered schema name at its current
// version. Bumping a schema in one encoder but not its decoder (or a
// doc string) is then a lint failure, not a golden-test surprise; the
// registry itself is cross-checked against EXPERIMENTS.md's
// "Wire-format registry" table by internal/wire's tests.
func WireFmt() *Analyzer {
	return &Analyzer{
		Name: "wirefmt",
		Doc:  "every uavdc-<name>/<version> string literal must match the internal/wire registry, current version and all",
		Run:  runWireFmt,
	}
}

// wireTagRE matches candidate wire tags inside literals. The name
// grammar mirrors wire.ParseTag; a malformed name ("uavdc-bad-/1")
// still matches and is then reported as unregistered.
var wireTagRE = regexp.MustCompile(`uavdc-[a-z][a-z0-9-]*/[0-9]+`)

func runWireFmt(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for _, tag := range wireTagRE.FindAllString(s, -1) {
				name, version, err := wire.ParseTag(tag)
				if err != nil {
					pass.Reportf(lit.Pos(), "wire tag %q is malformed; see internal/wire's tag grammar, or annotate", tag)
					continue
				}
				current, registered := wire.Current(name)
				if !registered {
					pass.Reportf(lit.Pos(), "wire schema %q is not registered; add it to internal/wire (and the EXPERIMENTS.md wire-format table), or annotate", tag)
					continue
				}
				if version != current {
					pass.Reportf(lit.Pos(), "wire tag %q pins version %d but the registry's current version is %d (internal/wire); use the wire constant, or annotate", tag, version, current)
				}
			}
			return true
		})
	}
}
