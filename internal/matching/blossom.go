// Package matching implements minimum-weight perfect matching on complete
// graphs with an exact O(n³) primal–dual blossom algorithm, plus a greedy
// fallback for very large inputs. Christofides' TSP heuristic (used by the
// paper's Algorithm 2/3 tour computation and by the evaluation benchmark)
// requires a minimum-weight perfect matching on the odd-degree vertices of
// the spanning tree; the 3/2 approximation guarantee holds only with the
// exact matching.
//
// The implementation follows the classic maximum-weight general-graph
// matching formulation (Galil's primal–dual method with blossom shrinking,
// in the O(n³) arrangement popularised by competitive-programming
// templates): vertices carry dual variables, tight edges form alternating
// forests, odd cycles are shrunk into blossom pseudo-vertices, and dual
// adjustments are chosen as the minimum slack across the forest. Weights
// are integers internally; MinWeightPerfect scales float64 costs to int64.
package matching

// maxBlossom computes a maximum-weight matching on the complete graph over
// n vertices with non-negative integer edge weights w (n×n, symmetric,
// zero diagonal). It returns mate[u] = v (or -1) for the matched partner of
// each vertex. With all weights strictly positive and n even, the matching
// is perfect.
//
// Internally vertices are 1-based; ids n+1..2n denote blossoms.
type blossomSolver struct {
	n  int // number of real vertices
	nx int // current max id in use (vertices + blossoms)

	// g[u][v] is the edge currently representing the connection between
	// (pseudo-)vertices u and v: endpoints are real vertices, w>0 marks
	// presence.
	g [][]edgeUV

	lab        []int64 // dual variables (doubled duals for blossoms)
	match      []int   // matched partner (by representing edge head), 0 = unmatched
	slack      []int   // slack[x]: real vertex u minimising delta(g[u][x])
	st         []int   // st[x]: the top-level blossom containing x
	pa         []int   // parent edge tail in the alternating forest
	flowerFrom [][]int // flowerFrom[b][x]: child of b containing real vertex x
	s          []int   // forest label: -1 free, 0 even (outer), 1 odd (inner)
	vis        []int
	visGen     int
	flower     [][]int // cyclic child list of each blossom
	queue      []int
}

type edgeUV struct {
	u, v int
	w    int64
}

func newBlossomSolver(n int, w [][]int64) *blossomSolver {
	m := 2*n + 1
	b := &blossomSolver{
		n:          n,
		nx:         n,
		g:          make([][]edgeUV, m),
		lab:        make([]int64, m),
		match:      make([]int, m),
		slack:      make([]int, m),
		st:         make([]int, m),
		pa:         make([]int, m),
		flowerFrom: make([][]int, m),
		s:          make([]int, m),
		vis:        make([]int, m),
		flower:     make([][]int, m),
	}
	for i := 0; i < m; i++ {
		b.g[i] = make([]edgeUV, m)
		b.flowerFrom[i] = make([]int, n+1)
	}
	for u := 1; u <= n; u++ {
		for v := 1; v <= n; v++ {
			b.g[u][v] = edgeUV{u: u, v: v, w: 0}
			if u != v {
				b.g[u][v].w = w[u-1][v-1]
			}
		}
	}
	return b
}

func (b *blossomSolver) eDelta(e edgeUV) int64 {
	return b.lab[e.u] + b.lab[e.v] - b.g[e.u][e.v].w*2
}

func (b *blossomSolver) updateSlack(u, x int) {
	if b.slack[x] == 0 || b.eDelta(b.g[u][x]) < b.eDelta(b.g[b.slack[x]][x]) {
		b.slack[x] = u
	}
}

func (b *blossomSolver) setSlack(x int) {
	b.slack[x] = 0
	for u := 1; u <= b.n; u++ {
		if b.g[u][x].w > 0 && b.st[u] != x && b.s[b.st[u]] == 0 {
			b.updateSlack(u, x)
		}
	}
}

func (b *blossomSolver) qPush(x int) {
	if x <= b.n {
		b.queue = append(b.queue, x)
		return
	}
	for _, p := range b.flower[x] {
		b.qPush(p)
	}
}

func (b *blossomSolver) setSt(x, v int) {
	b.st[x] = v
	if x > b.n {
		for _, p := range b.flower[x] {
			b.setSt(p, v)
		}
	}
}

// getPr rotates the blossom child list so traversal from xr has even parity,
// returning the index of xr.
func (b *blossomSolver) getPr(bl, xr int) int {
	pr := 0
	for i, f := range b.flower[bl] {
		if f == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		// reverse flower[bl][1:]
		fl := b.flower[bl]
		for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
			fl[i], fl[j] = fl[j], fl[i]
		}
		return len(fl) - pr
	}
	return pr
}

func (b *blossomSolver) setMatch(u, v int) {
	b.match[u] = b.g[u][v].v
	if u <= b.n {
		return
	}
	e := b.g[u][v]
	xr := b.flowerFrom[u][e.u]
	pr := b.getPr(u, xr)
	for i := 0; i < pr; i++ {
		b.setMatch(b.flower[u][i], b.flower[u][i^1])
	}
	b.setMatch(xr, v)
	// rotate flower[u] left by pr
	fl := b.flower[u]
	rot := append(append([]int{}, fl[pr:]...), fl[:pr]...)
	copy(fl, rot)
}

func (b *blossomSolver) augment(u, v int) {
	for {
		xnv := b.st[b.match[u]]
		b.setMatch(u, v)
		if xnv == 0 {
			return
		}
		b.setMatch(xnv, b.st[b.pa[xnv]])
		u, v = b.st[b.pa[xnv]], xnv
	}
}

func (b *blossomSolver) getLCA(u, v int) int {
	b.visGen++
	t := b.visGen
	for u != 0 || v != 0 {
		if u != 0 {
			if b.vis[u] == t {
				return u
			}
			b.vis[u] = t
			u = b.st[b.match[u]]
			if u != 0 {
				u = b.st[b.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

func (b *blossomSolver) addBlossom(u, lca, v int) {
	bl := b.n + 1
	for bl <= b.nx && b.st[bl] != 0 {
		bl++
	}
	if bl > b.nx {
		b.nx++
	}
	b.lab[bl] = 0
	b.s[bl] = 0
	b.match[bl] = b.match[lca]
	b.flower[bl] = b.flower[bl][:0]
	b.flower[bl] = append(b.flower[bl], lca)
	for x := u; x != lca; {
		y := b.st[b.match[x]]
		b.flower[bl] = append(b.flower[bl], x, y)
		b.qPush(y)
		x = b.st[b.pa[y]]
	}
	// reverse flower[bl][1:]
	fl := b.flower[bl]
	for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
		fl[i], fl[j] = fl[j], fl[i]
	}
	for x := v; x != lca; {
		y := b.st[b.match[x]]
		b.flower[bl] = append(b.flower[bl], x, y)
		b.qPush(y)
		x = b.st[b.pa[y]]
	}
	b.setSt(bl, bl)
	for x := 1; x <= b.nx; x++ {
		b.g[bl][x].w = 0
		b.g[x][bl].w = 0
	}
	for x := 1; x <= b.n; x++ {
		b.flowerFrom[bl][x] = 0
	}
	for _, xs := range b.flower[bl] {
		for x := 1; x <= b.nx; x++ {
			if b.g[bl][x].w == 0 || b.eDelta(b.g[xs][x]) < b.eDelta(b.g[bl][x]) {
				b.g[bl][x] = b.g[xs][x]
				b.g[x][bl] = b.g[x][xs]
			}
		}
		for x := 1; x <= b.n; x++ {
			if b.flowerFrom[xs][x] != 0 {
				b.flowerFrom[bl][x] = xs
			}
		}
	}
	b.setSlack(bl)
}

func (b *blossomSolver) expandBlossom(bl int) {
	for _, f := range b.flower[bl] {
		b.setSt(f, f)
	}
	xr := b.flowerFrom[bl][b.g[bl][b.pa[bl]].u]
	pr := b.getPr(bl, xr)
	for i := 0; i < pr; i += 2 {
		xs := b.flower[bl][i]
		xns := b.flower[bl][i+1]
		b.pa[xs] = b.g[xns][xs].u
		b.s[xs] = 1
		b.s[xns] = 0
		b.slack[xs] = 0
		b.setSlack(xns)
		b.qPush(xns)
	}
	b.s[xr] = 1
	b.pa[xr] = b.pa[bl]
	for i := pr + 1; i < len(b.flower[bl]); i++ {
		xs := b.flower[bl][i]
		b.s[xs] = -1
		b.setSlack(xs)
	}
	b.st[bl] = 0
}

func (b *blossomSolver) onFoundEdge(e edgeUV) bool {
	u, v := b.st[e.u], b.st[e.v]
	switch b.s[v] {
	case -1:
		b.pa[v] = e.u
		b.s[v] = 1
		nu := b.st[b.match[v]]
		b.slack[v] = 0
		b.slack[nu] = 0
		b.s[nu] = 0
		b.qPush(nu)
	case 0:
		lca := b.getLCA(u, v)
		if lca == 0 {
			b.augment(u, v)
			b.augment(v, u)
			return true
		}
		b.addBlossom(u, lca, v)
	}
	return false
}

const infWeight = int64(1) << 62

// matchRound grows alternating forests from all free vertices and returns
// true if an augmenting path was found and applied.
func (b *blossomSolver) matchRound() bool {
	for i := 1; i <= b.nx; i++ {
		b.s[i] = -1
		b.slack[i] = 0
	}
	b.queue = b.queue[:0]
	for x := 1; x <= b.nx; x++ {
		if b.st[x] == x && b.match[x] == 0 {
			b.pa[x] = 0
			b.s[x] = 0
			b.qPush(x)
		}
	}
	if len(b.queue) == 0 {
		return false
	}
	for {
		for len(b.queue) > 0 {
			u := b.queue[0]
			b.queue = b.queue[1:]
			if b.s[b.st[u]] == 1 {
				continue
			}
			for v := 1; v <= b.n; v++ {
				if b.g[u][v].w > 0 && b.st[u] != b.st[v] {
					if b.eDelta(b.g[u][v]) == 0 {
						if b.onFoundEdge(b.g[u][v]) {
							return true
						}
					} else {
						b.updateSlack(u, b.st[v])
					}
				}
			}
		}
		d := infWeight
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl && b.s[bl] == 1 {
				if v := b.lab[bl] / 2; v < d {
					d = v
				}
			}
		}
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 {
				switch b.s[x] {
				case -1:
					if v := b.eDelta(b.g[b.slack[x]][x]); v < d {
						d = v
					}
				case 0:
					if v := b.eDelta(b.g[b.slack[x]][x]) / 2; v < d {
						d = v
					}
				}
			}
		}
		for u := 1; u <= b.n; u++ {
			switch b.s[b.st[u]] {
			case 0:
				if b.lab[u] <= d {
					return false // dual hit zero: no augmenting path exists
				}
				b.lab[u] -= d
			case 1:
				b.lab[u] += d
			}
		}
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl {
				switch b.s[bl] {
				case 0:
					b.lab[bl] += 2 * d
				case 1:
					b.lab[bl] -= 2 * d
				}
			}
		}
		b.queue = b.queue[:0]
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 && b.st[b.slack[x]] != x && b.eDelta(b.g[b.slack[x]][x]) == 0 {
				if b.onFoundEdge(b.g[b.slack[x]][x]) {
					return true
				}
			}
		}
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl && b.s[bl] == 1 && b.lab[bl] == 0 {
				b.expandBlossom(bl)
			}
		}
	}
}

// solve runs the algorithm and returns mate (0-based, -1 = unmatched).
func (b *blossomSolver) solve() []int {
	for u := 0; u <= 2*b.n; u++ {
		b.st[u] = u
		b.flower[u] = b.flower[u][:0]
		b.match[u] = 0
	}
	var wMax int64
	for u := 1; u <= b.n; u++ {
		for v := 1; v <= b.n; v++ {
			if u == v {
				b.flowerFrom[u][v] = u
			} else {
				b.flowerFrom[u][v] = 0
			}
			if b.g[u][v].w > wMax {
				wMax = b.g[u][v].w
			}
		}
	}
	for u := 1; u <= b.n; u++ {
		b.lab[u] = wMax
	}
	for b.matchRound() {
	}
	mate := make([]int, b.n)
	for u := 1; u <= b.n; u++ {
		if b.match[u] != 0 {
			mate[u-1] = b.match[u] - 1
		} else {
			mate[u-1] = -1
		}
	}
	return mate
}

// MaxWeight computes a maximum-weight matching over the integer weight
// matrix w (n×n, symmetric, zero diagonal, non-negative entries; zero means
// "no edge"). It returns mate with mate[u] = v or -1.
func MaxWeight(w [][]int64) []int {
	n := len(w)
	if n == 0 {
		return nil
	}
	return newBlossomSolver(n, w).solve()
}
