package matching

import (
	"math"
	"math/rand"
	"testing"
)

// bruteMinPerfect finds the optimal perfect matching cost by exhaustive
// pairing (n ≤ 12).
func bruteMinPerfect(cost [][]float64) float64 {
	n := len(cost)
	used := make([]bool, n)
	var rec func() float64
	rec = func() float64 {
		first := -1
		for i := 0; i < n; i++ {
			if !used[i] {
				first = i
				break
			}
		}
		if first < 0 {
			return 0
		}
		used[first] = true
		best := math.Inf(1)
		for j := first + 1; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			if c := cost[first][j] + rec(); c < best {
				best = c
			}
			used[j] = false
		}
		used[first] = false
		return best
	}
	return rec()
}

func randomCost(n int, seed int64, euclidean bool) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	if euclidean {
		pts := make([][2]float64, n)
		for i := range pts {
			pts[i] = [2]float64{rng.Float64() * 1000, rng.Float64() * 1000}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := math.Hypot(pts[i][0]-pts[j][0], pts[i][1]-pts[j][1])
				cost[i][j], cost[j][i] = d, d
			}
		}
	} else {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				c := rng.Float64() * 100
				cost[i][j], cost[j][i] = c, c
			}
		}
	}
	return cost
}

func TestMinWeightPerfectTrivial(t *testing.T) {
	if mate, total, err := MinWeightPerfect(nil); mate != nil || total != 0 || err != nil {
		t.Errorf("empty: %v %v %v", mate, total, err)
	}
	cost := [][]float64{{0, 5}, {5, 0}}
	mate, total, err := MinWeightPerfect(cost)
	if err != nil || total != 5 || mate[0] != 1 || mate[1] != 0 {
		t.Errorf("pair: %v %v %v", mate, total, err)
	}
}

func TestMinWeightPerfectOddFails(t *testing.T) {
	cost := [][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	if _, _, err := MinWeightPerfect(cost); err == nil {
		t.Error("odd n should fail")
	}
}

func TestMinWeightPerfectBadInput(t *testing.T) {
	if _, _, err := MinWeightPerfect([][]float64{{0, -1}, {-1, 0}}); err == nil {
		t.Error("negative cost should fail")
	}
	if _, _, err := MinWeightPerfect([][]float64{{0, math.NaN()}, {math.NaN(), 0}}); err == nil {
		t.Error("NaN cost should fail")
	}
	if _, _, err := MinWeightPerfect([][]float64{{0, 1}, {1}}); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestMinWeightPerfectKnown(t *testing.T) {
	// 4 vertices: optimum pairs (0,1) and (2,3) with cost 1 + 1 = 2.
	cost := [][]float64{
		{0, 1, 10, 10},
		{1, 0, 10, 10},
		{10, 10, 0, 1},
		{10, 10, 1, 0},
	}
	_, total, err := MinWeightPerfect(cost)
	if err != nil || math.Abs(total-2) > 1e-6 {
		t.Errorf("total = %v, err = %v", total, err)
	}
	// Force the crossing solution to be optimal instead.
	cost[0][1], cost[1][0] = 10, 10
	cost[2][3], cost[3][2] = 10, 10
	cost[0][2], cost[2][0] = 1, 1
	cost[1][3], cost[3][1] = 2, 2
	_, total, err = MinWeightPerfect(cost)
	if err != nil || math.Abs(total-3) > 1e-6 {
		t.Errorf("total = %v, err = %v", total, err)
	}
}

func TestMinWeightPerfectVsBruteForce(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8, 10} {
		for seed := int64(0); seed < 8; seed++ {
			for _, euclid := range []bool{true, false} {
				cost := randomCost(n, seed*31+int64(n), euclid)
				mate, total, err := MinWeightPerfect(cost)
				if err != nil {
					t.Fatalf("n=%d seed=%d: %v", n, seed, err)
				}
				verifyPerfect(t, mate, n)
				want := bruteMinPerfect(cost)
				if math.Abs(total-want) > 1e-4*(1+want) {
					t.Errorf("n=%d seed=%d euclid=%v: blossom %v, brute %v", n, seed, euclid, total, want)
				}
			}
		}
	}
}

func TestMinWeightPerfectZeroCosts(t *testing.T) {
	// All-zero costs: any perfect matching is optimal with cost 0.
	n := 6
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	mate, total, err := MinWeightPerfect(cost)
	if err != nil || total != 0 {
		t.Fatalf("zero: %v %v", total, err)
	}
	verifyPerfect(t, mate, n)
}

func TestMinWeightPerfectLargerLocalOpt(t *testing.T) {
	// No brute-force oracle at n=40; verify perfection and pairwise local
	// optimality (no improving 2-swap), a necessary optimality condition.
	cost := randomCost(40, 77, true)
	mate, total, err := MinWeightPerfect(cost)
	if err != nil {
		t.Fatal(err)
	}
	verifyPerfect(t, mate, 40)
	checkTotal(t, cost, mate, total)
	for a := 0; a < 40; a++ {
		b := mate[a]
		if b < a {
			continue
		}
		for c := a + 1; c < 40; c++ {
			d := mate[c]
			if d < c || c == b {
				continue
			}
			cur := cost[a][b] + cost[c][d]
			if cost[a][c]+cost[b][d] < cur-1e-6 || cost[a][d]+cost[b][c] < cur-1e-6 {
				t.Fatalf("improving 2-swap exists on pairs (%d,%d),(%d,%d)", a, b, c, d)
			}
		}
	}
}

func TestGreedyPerfect(t *testing.T) {
	cost := randomCost(20, 5, true)
	mate, total, err := GreedyPerfect(cost)
	if err != nil {
		t.Fatal(err)
	}
	verifyPerfect(t, mate, 20)
	checkTotal(t, cost, mate, total)
	// Greedy can't beat exact.
	_, opt, err := MinWeightPerfect(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total < opt-1e-6 {
		t.Errorf("greedy %v beat exact %v", total, opt)
	}
	if _, _, err := GreedyPerfect(randomCost(5, 1, false)); err == nil {
		t.Error("odd n should fail")
	}
	if m, tot, err := GreedyPerfect(nil); m != nil || tot != 0 || err != nil {
		t.Error("empty greedy should be trivial")
	}
}

func TestPerfectAuto(t *testing.T) {
	cost := randomCost(10, 2, true)
	mate, _, exact, err := PerfectAuto(cost)
	if err != nil || !exact {
		t.Fatalf("small input should use exact: exact=%v err=%v", exact, err)
	}
	verifyPerfect(t, mate, 10)
}

func TestMinWeightPerfectHugeCostsScale(t *testing.T) {
	// Costs near 1e12 must not overflow the fixed-point conversion.
	cost := [][]float64{
		{0, 1e12, 3e12, 4e12},
		{1e12, 0, 5e12, 6e12},
		{3e12, 5e12, 0, 2e12},
		{4e12, 6e12, 2e12, 0},
	}
	_, total, err := MinWeightPerfect(cost)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteMinPerfect(cost)
	if math.Abs(total-want) > 1e-3*want {
		t.Errorf("total = %v, want %v", total, want)
	}
}

func verifyPerfect(t *testing.T, mate []int, n int) {
	t.Helper()
	if len(mate) != n {
		t.Fatalf("mate length %d, want %d", len(mate), n)
	}
	for u, v := range mate {
		if v < 0 || v >= n || v == u {
			t.Fatalf("vertex %d has invalid mate %d", u, v)
		}
		if mate[v] != u {
			t.Fatalf("asymmetric mates: %d→%d but %d→%d", u, v, v, mate[v])
		}
	}
}

func checkTotal(t *testing.T, cost [][]float64, mate []int, total float64) {
	t.Helper()
	var sum float64
	for u, v := range mate {
		if u < v {
			sum += cost[u][v]
		}
	}
	if math.Abs(sum-total) > 1e-6*(1+sum) {
		t.Fatalf("reported total %v, recomputed %v", total, sum)
	}
}

func BenchmarkMinWeightPerfect100(b *testing.B) {
	cost := randomCost(100, 9, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinWeightPerfect(cost); err != nil {
			b.Fatal(err)
		}
	}
}
