package matching

import (
	"fmt"
	"math"
	"sort"

	"uavdc/internal/obs"
	"uavdc/internal/trace"
)

// scaleBits controls the fixed-point precision when converting float64
// costs to the integer weights the blossom solver needs. 2^20 ≈ 10⁻⁶
// relative precision on kilometre-scale distances, far below the physical
// noise of the model.
const scaleBits = 20

// MinWeightPerfect computes an exact minimum-weight perfect matching on the
// complete graph whose symmetric cost matrix is cost (n×n, zero diagonal,
// non-negative finite entries). n must be even and positive. It returns the
// mate array and the total cost of the matching.
//
// Costs are converted to fixed-point integers; the reduction to
// maximum-weight matching sets w'(u,v) = C - cost(u,v) with C above every
// cost, which makes every edge profitable and therefore forces perfection
// on a complete even-order graph while inverting the objective.
func MinWeightPerfect(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	if n%2 != 0 {
		return nil, 0, fmt.Errorf("matching: odd number of vertices %d", n)
	}
	var maxC float64
	for i := range cost {
		if len(cost[i]) != n {
			return nil, 0, fmt.Errorf("matching: cost matrix row %d has length %d, want %d", i, len(cost[i]), n)
		}
		for j, c := range cost[i] {
			if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
				return nil, 0, fmt.Errorf("matching: invalid cost %v at (%d,%d)", c, i, j)
			}
			if c > maxC {
				maxC = c
			}
		}
	}
	scale := float64(int64(1) << scaleBits)
	if maxC > 0 {
		// Keep the scaled ceiling comfortably inside int64 even after the
		// C - w inversion and dual sums.
		for maxC*scale > 1e15 {
			scale /= 2
		}
	}
	ceilC := int64(maxC*scale) + 2
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
		for j := range w[i] {
			if i == j {
				continue
			}
			// ×2 keeps the solver's half-integral duals integral.
			w[i][j] = 2 * (ceilC - int64(math.Round(cost[i][j]*scale)))
		}
	}
	mate := MaxWeight(w)
	total := 0.0
	for u, v := range mate {
		if v < 0 {
			return nil, 0, fmt.Errorf("matching: vertex %d left unmatched", u)
		}
		if mate[v] != u {
			return nil, 0, fmt.Errorf("matching: inconsistent mates %d↔%d", u, v)
		}
		if u < v {
			total += cost[u][v]
		}
	}
	return mate, total, nil
}

// GreedyPerfect computes a perfect matching by repeatedly taking the
// globally cheapest remaining edge. It is a fast O(n² log n) fallback with
// no optimality guarantee (worst case Θ(n) times optimum, typically within
// a few percent on random Euclidean inputs). n must be even.
func GreedyPerfect(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	if n%2 != 0 {
		return nil, 0, fmt.Errorf("matching: odd number of vertices %d", n)
	}
	type edge struct {
		u, v int
		c    float64
	}
	edges := make([]edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, edge{i, j, cost[i][j]})
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].c < edges[b].c })
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	total := 0.0
	matched := 0
	for _, e := range edges {
		if mate[e.u] < 0 && mate[e.v] < 0 {
			mate[e.u], mate[e.v] = e.v, e.u
			total += e.c
			matched += 2
			if matched == n {
				break
			}
		}
	}
	return mate, total, nil
}

// ExactThreshold is the size above which PerfectAuto switches from the
// exact blossom solver to the greedy heuristic. The O(n³) solver handles a
// few hundred vertices in well under a second; beyond ~600 the cubic cost
// begins to dominate planner runtime.
const ExactThreshold = 600

// Instrumentation counter names recorded by PerfectAuto.
const (
	// CounterBlossomRuns counts exact blossom matchings.
	CounterBlossomRuns = "matching.blossom_runs"
	// CounterGreedyRuns counts greedy-fallback matchings (instances above
	// ExactThreshold, where the optimality guarantee is given up).
	CounterGreedyRuns = "matching.greedy_runs"
)

// Trace span names emitted by PerfectAuto, one per solver choice.
const (
	SpanBlossom = "matching/blossom"
	SpanGreedy  = "matching/greedy"
)

// PerfectAuto picks the exact solver for n ≤ ExactThreshold and the greedy
// heuristic above, returning the matching, its cost, and whether it is
// provably optimal. An optional obs.Recorder counts which solver ran.
func PerfectAuto(cost [][]float64, rec ...obs.Recorder) (mate []int, total float64, exact bool, err error) {
	r := obs.First(rec...)
	tr := trace.Of(r)
	if len(cost) <= ExactThreshold {
		r.Counter(CounterBlossomRuns).Inc()
		end := tr.Begin(SpanBlossom, trace.Int("n", len(cost)))
		mate, total, err = MinWeightPerfect(cost)
		end()
		return mate, total, true, err
	}
	r.Counter(CounterGreedyRuns).Inc()
	end := tr.Begin(SpanGreedy, trace.Int("n", len(cost)))
	mate, total, err = GreedyPerfect(cost)
	end()
	return mate, total, false, err
}
