package mission

import (
	"uavdc/internal/canon"
	"uavdc/internal/wire"
)

// canonTag versions the campaign-knob key extension.
const canonTag = wire.Mission

// CanonKey widens a single-sortie instance key with the campaign knobs:
// the sortie cap, the stopping volume, the recharge turnaround, and the
// simulation physics each sortie is verified against. Unset sentinels are
// resolved to Run's defaults (MaxSorties 100, MinVolume 1 MB) first, so
// elided and spelled-out defaults address the same cache line.
func (o Options) CanonKey(base canon.Key) (canon.Key, error) {
	maxSorties := o.MaxSorties
	if maxSorties <= 0 {
		maxSorties = 100
	}
	minVolume := o.MinVolume
	if minVolume <= 0 {
		minVolume = 1
	}
	var partsErr error
	k := canon.ExtendKey(base, canonTag, func(e *canon.Encoder) {
		e.I64(int64(maxSorties))
		e.F64(minVolume, o.RechargeTime)
		partsErr = o.Simulate.CanonParts(e)
	})
	if partsErr != nil {
		return canon.Key{}, partsErr
	}
	return k, nil
}
