package mission

import (
	"maps"
	"slices"
	"testing"

	"uavdc/internal/canon"
	"uavdc/internal/simulate"
	"uavdc/internal/units"
)

func TestCanonKeyCampaignKnobs(t *testing.T) {
	var base canon.Key
	base[3] = 5

	def, err := Options{}.CanonKey(base)
	if err != nil {
		t.Fatalf("CanonKey: %v", err)
	}
	spelled, err := Options{MaxSorties: 100, MinVolume: 1}.CanonKey(base)
	if err != nil {
		t.Fatalf("CanonKey: %v", err)
	}
	if def != spelled {
		t.Fatal("elided and spelled-out campaign defaults hash differently")
	}

	knobs := map[string]Options{
		"max sorties": {MaxSorties: 3},
		"min volume":  {MinVolume: 50},
		"recharge":    {RechargeTime: 600},
		"physics":     {Simulate: simulate.Options{Altitude: units.Meters(20)}},
	}
	for _, name := range slices.Sorted(maps.Keys(knobs)) {
		k, err := knobs[name].CanonKey(base)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == def {
			t.Errorf("%s: knob not keyed", name)
		}
	}
}
