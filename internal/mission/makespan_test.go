package mission

import (
	"math"
	"testing"

	"uavdc/internal/core"
)

func TestCampaignMakespan(t *testing.T) {
	in := campaignInstance(t, 20, 1e4)
	noRecharge, err := Run(in, &core.Algorithm3{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(noRecharge.Sorties) < 2 {
		t.Skip("need a multi-sortie campaign for this check")
	}
	// Makespan without recharge equals the sum of sortie durations.
	var flightSum float64
	for _, p := range noRecharge.Sorties {
		flightSum += p.Duration(in.Model)
	}
	if math.Abs(noRecharge.Makespan-flightSum) > 1e-6 {
		t.Errorf("makespan %v, sum of sortie durations %v", noRecharge.Makespan, flightSum)
	}

	const recharge = 1800.0
	withRecharge, err := Run(in, &core.Algorithm3{}, Options{RechargeTime: recharge})
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := recharge * float64(len(withRecharge.Sorties)-1)
	var flightSum2 float64
	for _, p := range withRecharge.Sorties {
		flightSum2 += p.Duration(in.Model)
	}
	if math.Abs(withRecharge.Makespan-(flightSum2+wantExtra)) > 1e-6 {
		t.Errorf("makespan %v, want %v (+%v recharge)", withRecharge.Makespan, flightSum2+wantExtra, wantExtra)
	}
}

func TestCampaignMakespanZeroWhenNoSorties(t *testing.T) {
	in := campaignInstance(t, 21, 0)
	camp, err := Run(in, &core.Algorithm3{}, Options{RechargeTime: 600})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Makespan != 0 {
		t.Errorf("makespan %v for empty campaign", camp.Makespan)
	}
}
