// Package mission plans campaigns of repeated sorties: the UAV flies a
// collection tour, returns to the depot, recharges (or swaps batteries),
// and flies again against whatever data is still in the field, until the
// field is drained or a sortie cap is hit. The paper plans a single tour
// ("the stored data ... will be collected periodically by a UAV"); this
// package operationalises the periodic part, with each sortie verified by
// the flight simulator before its collections are committed.
package mission

import (
	"fmt"
	"math"

	"uavdc/internal/core"
	"uavdc/internal/sensornet"
	"uavdc/internal/simulate"
)

// Campaign is the outcome of a multi-sortie mission.
type Campaign struct {
	// Sorties holds each flight's verified plan, in order.
	Sorties []*core.Plan
	// SortieVolumes is the simulator-confirmed collection per flight, MB.
	SortieVolumes []float64
	// Collected is the campaign total, MB.
	Collected float64
	// Remaining is the data left in the field after the campaign, MB.
	Remaining float64
	// Drained is true when the field was emptied (to within tolerance).
	Drained bool
	// Makespan is the campaign's total elapsed time in seconds: flight
	// and hover time of every sortie plus the recharge time between
	// consecutive sorties (not after the last).
	Makespan float64
}

// Options configures a campaign.
type Options struct {
	// MaxSorties caps the number of flights; ≤ 0 means 100.
	MaxSorties int
	// MinVolume stops the campaign when a sortie collects less than this
	// many MB (default 1): everything reachable is already drained.
	MinVolume float64
	// RechargeTime is the turnaround at the depot between sorties in
	// seconds (battery swap ≈ minutes, full recharge ≈ an hour). It
	// contributes to the campaign makespan only.
	RechargeTime float64
	// Simulate holds the physics the simulator verifies each sortie
	// against (altitude and radio model; zero value = the paper's
	// constant-rate, ground-level abstraction).
	Simulate simulate.Options
}

// Run plans and simulates sorties until the field drains. The instance's
// network is not modified; the campaign works on a private copy.
func Run(in *core.Instance, planner core.Planner, opts Options) (*Campaign, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if planner == nil {
		planner = &core.Algorithm3{}
	}
	maxSorties := opts.MaxSorties
	if maxSorties <= 0 {
		maxSorties = 100
	}
	minVolume := opts.MinVolume
	if minVolume <= 0 {
		minVolume = 1
	}

	// Private copy of the field so the caller's network is untouched.
	field := &sensornet.Network{
		Region:    in.Net.Region,
		Depot:     in.Net.Depot,
		Bandwidth: in.Net.Bandwidth,
		CommRange: in.Net.CommRange,
		Sensors:   append([]sensornet.Sensor(nil), in.Net.Sensors...),
	}
	work := *in
	work.Net = field

	camp := &Campaign{}
	for flight := 0; flight < maxSorties; flight++ {
		if field.TotalData() < minVolume {
			break
		}
		plan, err := planner.Plan(&work)
		if err != nil {
			return nil, fmt.Errorf("mission: sortie %d: %w", flight+1, err)
		}
		if err := core.ValidatePlanPhysics(field, in.Model, work.Physics(), plan); err != nil {
			return nil, fmt.Errorf("mission: sortie %d invalid: %w", flight+1, err)
		}
		res := simulate.Run(field, in.Model, plan, opts.Simulate)
		if !res.Completed {
			return nil, fmt.Errorf("mission: sortie %d aborted: %s", flight+1, res.AbortReason)
		}
		if res.Collected < minVolume {
			break // nothing reachable remains
		}
		if len(camp.Sorties) > 0 {
			camp.Makespan += opts.RechargeTime
		}
		camp.Makespan += res.MissionTime
		camp.Sorties = append(camp.Sorties, plan)
		camp.SortieVolumes = append(camp.SortieVolumes, res.Collected)
		camp.Collected += res.Collected
		for v, got := range res.PerSensor {
			field.Sensors[v].Data = math.Max(0, field.Sensors[v].Data-got)
		}
		field.InvalidateIndex()
	}
	camp.Remaining = field.TotalData()
	camp.Drained = camp.Remaining < minVolume
	return camp, nil
}
