package mission

import (
	"math"
	"testing"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

func campaignInstance(t testing.TB, seed uint64, capacity units.Joules) *core.Instance {
	t.Helper()
	p := sensornet.DefaultGenParams()
	p.NumSensors = 40
	p.Side = 300
	net, err := sensornet.Generate(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &core.Instance{Net: net, Model: energy.Default().WithCapacity(capacity), Delta: 20, K: 2}
}

func TestCampaignDrainsField(t *testing.T) {
	in := campaignInstance(t, 1, 1e4)
	total := in.Net.TotalData()
	camp, err := Run(in, &core.Algorithm3{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !camp.Drained {
		t.Fatalf("campaign left %v MB (sorties: %d)", camp.Remaining, len(camp.Sorties))
	}
	if math.Abs(camp.Collected-total) > 1 {
		t.Errorf("collected %v of %v", camp.Collected, total)
	}
	if len(camp.Sorties) < 2 {
		t.Errorf("tight budget should need multiple sorties, got %d", len(camp.Sorties))
	}
	if len(camp.SortieVolumes) != len(camp.Sorties) {
		t.Fatal("volume/sortie length mismatch")
	}
	var sum float64
	for _, v := range camp.SortieVolumes {
		sum += v
	}
	if math.Abs(sum-camp.Collected) > 1e-6 {
		t.Error("per-sortie volumes do not add up")
	}
}

func TestCampaignDoesNotMutateCallerNetwork(t *testing.T) {
	in := campaignInstance(t, 2, 1e4)
	before := in.Net.TotalData()
	if _, err := Run(in, &core.Algorithm3{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if in.Net.TotalData() != before {
		t.Error("campaign mutated the caller's network")
	}
}

func TestCampaignSortieCap(t *testing.T) {
	in := campaignInstance(t, 3, 5e3)
	camp, err := Run(in, &core.Algorithm3{}, Options{MaxSorties: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Sorties) > 2 {
		t.Fatalf("cap ignored: %d sorties", len(camp.Sorties))
	}
	if camp.Drained {
		t.Error("two tight sorties cannot drain this field")
	}
	if camp.Remaining <= 0 {
		t.Error("remaining should be positive")
	}
}

func TestCampaignBaselineNeedsMoreSorties(t *testing.T) {
	seedIn := func() *core.Instance { return campaignInstance(t, 4, 1e4) }
	smart, err := Run(seedIn(), &core.Algorithm3{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(seedIn(), &core.BenchmarkPlanner{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !smart.Drained || !base.Drained {
		t.Fatalf("both campaigns should drain (smart %v, base %v)", smart.Drained, base.Drained)
	}
	if len(smart.Sorties) > len(base.Sorties) {
		t.Errorf("framework planner needed %d sorties, baseline %d", len(smart.Sorties), len(base.Sorties))
	}
}

func TestCampaignDefaultPlanner(t *testing.T) {
	in := campaignInstance(t, 5, 1e4)
	camp, err := Run(in, nil, Options{MaxSorties: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Sorties) != 1 || camp.Sorties[0].Algorithm != "algorithm3" {
		t.Errorf("default planner should be algorithm3, got %+v", camp.Sorties)
	}
}

func TestCampaignInvalidInstance(t *testing.T) {
	in := campaignInstance(t, 6, 1e4)
	in.Delta = 0
	if _, err := Run(in, nil, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestCampaignZeroCapacity(t *testing.T) {
	in := campaignInstance(t, 7, 0)
	camp, err := Run(in, &core.Algorithm3{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Sorties) != 0 || camp.Collected != 0 || camp.Drained {
		t.Errorf("zero capacity campaign: %+v", camp)
	}
}
