package multi

import (
	"uavdc/internal/canon"
	"uavdc/internal/wire"
)

// canonTag versions the fleet-knob key extension.
const canonTag = wire.Multi

// CanonKey widens a single-UAV instance key with the fleet knobs: fleet
// size, partition strategy, and the k-means seed. The base planner enters
// through its name (nil resolves to Algorithm 3, exactly as PlanFleet
// does), so a spelled-out default and an elided one address the same
// cache line.
func (o Options) CanonKey(base canon.Key) canon.Key {
	name := "algorithm3"
	if o.Base != nil {
		name = o.Base.Name()
	}
	return canon.ExtendKey(base, canonTag, func(e *canon.Encoder) {
		e.I64(int64(o.Fleet), int64(o.Strategy))
		e.U64(o.Seed)
		e.Str(name)
	})
}
