package multi

import (
	"testing"

	"uavdc/internal/canon"
	"uavdc/internal/core"
)

func TestCanonKeyFleetKnobs(t *testing.T) {
	var base canon.Key
	base[0] = 7

	k2 := Options{Fleet: 2}.CanonKey(base)
	if k2 == base {
		t.Fatal("extension did not change the key")
	}
	if (Options{Fleet: 3}).CanonKey(base) == k2 {
		t.Fatal("fleet size not keyed")
	}
	if (Options{Fleet: 2, Strategy: StrategySweep}).CanonKey(base) == k2 {
		t.Fatal("strategy not keyed")
	}
	if (Options{Fleet: 2, Seed: 9}).CanonKey(base) == k2 {
		t.Fatal("seed not keyed")
	}
	if (Options{Fleet: 2}).CanonKey(base) != k2 {
		t.Fatal("CanonKey is not deterministic")
	}
}

func TestCanonKeyBasePlannerElision(t *testing.T) {
	var base canon.Key
	elided := Options{Fleet: 2}.CanonKey(base)
	spelled := Options{Fleet: 2, Base: &core.Algorithm3{}}.CanonKey(base)
	if elided != spelled {
		t.Fatal("nil base and explicit Algorithm 3 hash differently")
	}
	if (Options{Fleet: 2, Base: &core.Algorithm2{}}).CanonKey(base) == elided {
		t.Fatal("base planner not keyed")
	}
}
