// Package multi plans data-collection missions for a fleet of UAVs sharing
// one depot: cluster-first, route-second. The sensor field is partitioned
// into one cluster per UAV (weighted k-means or the sweep heuristic), each
// cluster becomes a sub-instance over the same region and depot, and the
// chosen single-UAV planner from internal/core routes each UAV inside its
// cluster. Because clusters partition the sensors, no two UAVs ever collect
// the same byte and the combined plan is feasible whenever the per-UAV
// plans are.
//
// This extends the paper (which deploys a single UAV) along the fleet
// direction its related-work section attributes to Mozaffari et al.
package multi

import (
	"fmt"

	"uavdc/internal/cluster"
	"uavdc/internal/core"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
)

// Strategy selects the partitioning method.
type Strategy int

const (
	// StrategyKMeans partitions with weighted k-means (k-means++
	// seeding): compact clusters, possibly unbalanced loads.
	StrategyKMeans Strategy = iota
	// StrategySweep partitions into angular sectors around the depot,
	// balancing per-UAV data volume: balanced loads, possibly stretched
	// clusters.
	StrategySweep
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyKMeans:
		return "kmeans"
	case StrategySweep:
		return "sweep"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Plan is a fleet mission: one per-UAV plan per cluster.
type Plan struct {
	// PerUAV holds one plan per fleet member, in cluster order. A UAV
	// whose cluster is empty gets an empty plan.
	PerUAV []*core.Plan
	// SensorOwner[v] is the UAV index assigned sensor v.
	SensorOwner []int
}

// Collected returns the fleet's total collected volume in MB.
func (p *Plan) Collected() float64 {
	var sum float64
	for _, up := range p.PerUAV {
		sum += up.Collected()
	}
	return sum
}

// Stops returns the total number of hovering stops across the fleet.
func (p *Plan) Stops() int {
	var n int
	for _, up := range p.PerUAV {
		n += len(up.Stops)
	}
	return n
}

// Options configures fleet planning.
type Options struct {
	// Fleet is the number of UAVs (≥ 1). Every UAV uses the instance's
	// energy model (one full battery each).
	Fleet int
	// Strategy picks the partitioner; the zero value is k-means.
	Strategy Strategy
	// Seed drives the k-means seeding; ignored by sweep.
	Seed uint64
	// Base is the single-UAV planner routed inside each cluster; nil
	// means Algorithm 3 with the instance's K.
	Base core.Planner
}

// PlanFleet partitions the instance's sensors and plans every UAV's tour.
func PlanFleet(in *core.Instance, opts Options) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opts.Fleet < 1 {
		return nil, fmt.Errorf("multi: fleet size must be ≥ 1, got %d", opts.Fleet)
	}
	base := opts.Base
	if base == nil {
		base = &core.Algorithm3{}
	}

	pts := in.Net.Positions()
	weights := make([]float64, len(in.Net.Sensors))
	for i, s := range in.Net.Sensors {
		weights[i] = s.Data
	}
	var asg *cluster.Assignment
	var err error
	switch opts.Strategy {
	case StrategyKMeans:
		asg, err = cluster.KMeans(pts, weights, opts.Fleet, rng.New(opts.Seed).Split("multi-kmeans"), 0)
	case StrategySweep:
		asg, err = cluster.Sweep(pts, weights, opts.Fleet, in.Net.Depot)
	default:
		return nil, fmt.Errorf("multi: unknown strategy %v", opts.Strategy)
	}
	if err != nil {
		return nil, err
	}

	out := &Plan{
		PerUAV:      make([]*core.Plan, opts.Fleet),
		SensorOwner: make([]int, len(in.Net.Sensors)),
	}
	for u := 0; u < opts.Fleet; u++ {
		var members []int
		if u < asg.K {
			members = asg.Members(u)
		}
		// Build the sub-network: only this cluster's sensors, same
		// region, depot, and radio parameters.
		sub := &sensornet.Network{
			Region:    in.Net.Region,
			Depot:     in.Net.Depot,
			Bandwidth: in.Net.Bandwidth,
			CommRange: in.Net.CommRange,
			Sensors:   make([]sensornet.Sensor, len(members)),
		}
		for i, v := range members {
			sub.Sensors[i] = in.Net.Sensors[v]
			out.SensorOwner[v] = u
		}
		subIn := *in
		subIn.Net = sub
		plan, err := base.Plan(&subIn)
		if err != nil {
			return nil, fmt.Errorf("multi: uav %d: %w", u, err)
		}
		// Remap the sub-network sensor ids back to the field's ids.
		for si := range plan.Stops {
			for ci := range plan.Stops[si].Collected {
				plan.Stops[si].Collected[ci].Sensor = members[plan.Stops[si].Collected[ci].Sensor]
			}
		}
		out.PerUAV[u] = plan
	}
	return out, nil
}

// Validate re-checks every per-UAV plan against the full field and the
// cluster disjointness (no sensor collected by two UAVs).
func (p *Plan) Validate(in *core.Instance) error {
	seen := make(map[int]int)
	for u, up := range p.PerUAV {
		if err := core.ValidatePlanPhysics(in.Net, in.Model, in.Physics(), up); err != nil {
			return fmt.Errorf("multi: uav %d: %w", u, err)
		}
		for _, stop := range up.Stops {
			for _, c := range stop.Collected {
				if prev, ok := seen[c.Sensor]; ok && prev != u {
					return fmt.Errorf("multi: sensor %d collected by uav %d and uav %d", c.Sensor, prev, u)
				}
				seen[c.Sensor] = u
			}
		}
	}
	return nil
}
