package multi

import (
	"testing"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

func fleetInstance(t testing.TB, seed uint64, capacity units.Joules) *core.Instance {
	t.Helper()
	p := sensornet.DefaultGenParams()
	p.NumSensors = 60
	p.Side = 350
	net, err := sensornet.Generate(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &core.Instance{Net: net, Model: energy.Default().WithCapacity(capacity), Delta: 20, K: 2}
}

func TestPlanFleetBasics(t *testing.T) {
	in := fleetInstance(t, 1, 1e4)
	for _, strat := range []Strategy{StrategyKMeans, StrategySweep} {
		fp, err := PlanFleet(in, Options{Fleet: 3, Strategy: strat, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(fp.PerUAV) != 3 {
			t.Fatalf("%v: %d plans", strat, len(fp.PerUAV))
		}
		if err := fp.Validate(in); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if fp.Collected() <= 0 || fp.Stops() <= 0 {
			t.Errorf("%v: empty fleet mission", strat)
		}
	}
}

func TestPlanFleetErrors(t *testing.T) {
	in := fleetInstance(t, 1, 1e4)
	if _, err := PlanFleet(in, Options{Fleet: 0}); err == nil {
		t.Error("fleet 0 accepted")
	}
	if _, err := PlanFleet(in, Options{Fleet: 2, Strategy: Strategy(9)}); err == nil {
		t.Error("unknown strategy accepted")
	}
	bad := *in
	bad.Delta = 0
	if _, err := PlanFleet(&bad, Options{Fleet: 2}); err == nil {
		t.Error("invalid instance accepted")
	}
	if Strategy(9).String() == "" || StrategyKMeans.String() != "kmeans" || StrategySweep.String() != "sweep" {
		t.Error("Strategy strings wrong")
	}
}

func TestFleetBeatsSingleUAV(t *testing.T) {
	// Under a tight per-UAV budget, 3 batteries must collect more than 1.
	in := fleetInstance(t, 3, 8e3)
	single, err := (&core.Algorithm3{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := PlanFleet(in, Options{Fleet: 3, Strategy: StrategySweep})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Collected() <= single.Collected() {
		t.Errorf("fleet of 3 collected %v, single UAV %v", fleet.Collected(), single.Collected())
	}
}

func TestFleetOfOneMatchesSingle(t *testing.T) {
	in := fleetInstance(t, 5, 1.2e4)
	single, err := (&core.Algorithm3{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := PlanFleet(in, Options{Fleet: 1, Strategy: StrategySweep})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Collected() != single.Collected() {
		t.Errorf("fleet of 1 %v != single %v", fleet.Collected(), single.Collected())
	}
}

func TestFleetSensorOwnershipDisjoint(t *testing.T) {
	in := fleetInstance(t, 8, 1e4)
	fp, err := PlanFleet(in, Options{Fleet: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every collection must come from a sensor the collecting UAV owns.
	for u, up := range fp.PerUAV {
		for _, stop := range up.Stops {
			for _, c := range stop.Collected {
				if fp.SensorOwner[c.Sensor] != u {
					t.Fatalf("uav %d collected sensor %d owned by %d", u, c.Sensor, fp.SensorOwner[c.Sensor])
				}
			}
		}
	}
}

func TestFleetWithBaselinePlanner(t *testing.T) {
	in := fleetInstance(t, 9, 1e4)
	fp, err := PlanFleet(in, Options{Fleet: 2, Base: &core.BenchmarkPlanner{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestFleetMoreUAVsNeverWorse(t *testing.T) {
	in := fleetInstance(t, 11, 6e3)
	prev := -1.0
	for _, m := range []int{1, 2, 4} {
		fp, err := PlanFleet(in, Options{Fleet: m, Strategy: StrategySweep})
		if err != nil {
			t.Fatal(err)
		}
		got := fp.Collected()
		// Sweep partitioning is a heuristic; allow 5% slack but demand an
		// overall upward trend.
		if got < prev*0.95 {
			t.Errorf("fleet %d collected %v, less than smaller fleet %v", m, got, prev)
		}
		if got > prev {
			prev = got
		}
	}
}
