package obs

import "strings"

// NameKind classifies a canonical instrumentation name by the API it is
// passed to. The uavlint obsnames analyzer enforces that every name
// reaching Recorder.Counter/Timer/Histogram/Gauge or
// trace.Tracer.Begin/Event is registered here under the matching kind,
// so the instrumentation vocabulary cannot drift from the registry (and,
// via the registry's EXPERIMENTS.md cross-check test, from the
// documentation).
type NameKind uint8

const (
	// KindCounter names a Recorder.Counter.
	KindCounter NameKind = iota
	// KindTimer names a Recorder.Timer.
	KindTimer
	// KindHistogram names a Recorder.Histogram.
	KindHistogram
	// KindSpan names a trace span (Tracer.Begin).
	KindSpan
	// KindEvent names a trace point event (Tracer.Event).
	KindEvent
	// KindGauge names a Recorder.Gauge.
	KindGauge
)

// String returns the kind as it appears in the EXPERIMENTS.md registry
// table.
func (k NameKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindTimer:
		return "timer"
	case KindHistogram:
		return "histogram"
	case KindSpan:
		return "span"
	case KindEvent:
		return "event"
	case KindGauge:
		return "gauge"
	}
	return "unknown"
}

// canonicalNames is the single authoritative list of instrumentation
// names. A trailing "/*" segment is a wildcard matching any non-empty
// suffix — "mission/*" covers the executor event vocabulary built at run
// time from simulate.MissionEventPrefix + EventKind.String().
//
// The literals here intentionally duplicate the constants declared next
// to their recording sites (core.Counter*, tsp.Span*, ...): obs is
// imported by all of them, so it cannot import them back, and the
// duplication is exactly what uavlint's obsnames analyzer cross-checks.
// Adding a recording site with an unregistered name, or renaming a
// constant without updating this table (or EXPERIMENTS.md), fails
// `make ci`.
var canonicalNames = map[string]NameKind{
	// Planner work counters (internal/core).
	"core.candidate_evals":      KindCounter,
	"core.pruned_over_budget":   KindCounter,
	"core.residual_recomputes":  KindCounter,
	"core.accepted_stops":       KindCounter,
	"core.upgraded_stops":       KindCounter,
	"core.bench_removals":       KindCounter,
	"core.scan_skipped_drained": KindCounter,
	"core.lns_rounds":           KindCounter,
	"core.lns_improvements":     KindCounter,

	// Solver-stack counters.
	"tsp.christofides_runs":         KindCounter,
	"tsp.twoopt_passes":             KindCounter,
	"tsp.twoopt_moves":              KindCounter,
	"tsp.oropt_passes":              KindCounter,
	"tsp.oropt_moves":               KindCounter,
	"tsp.dlb_passes":                KindCounter,
	"tsp.dlb_moves":                 KindCounter,
	"matching.blossom_runs":         KindCounter,
	"matching.greedy_runs":          KindCounter,
	"orienteering.exact_runs":       KindCounter,
	"orienteering.greedy_runs":      KindCounter,
	"orienteering.toursplit_runs":   KindCounter,
	"orienteering.grasp_runs":       KindCounter,
	"orienteering.localsearch_runs": KindCounter,

	// Adaptive-executor counters and histograms (internal/simulate).
	"replan.triggered":           KindCounter,
	"faults.applied":             KindCounter,
	"exec.energy_deviation":      KindCounter,
	"exec.stops_skipped":         KindCounter,
	"exec.energy_deviation_hist": KindHistogram,

	// Experiment-driver wall-clock aggregates.
	"experiments.plan":            KindTimer,
	"trace.span_duration.seconds": KindHistogram,

	// Serving-layer counters, queue-depth gauge, latency histogram, and
	// request span (internal/serve).
	"serve.requests":        KindCounter,
	"serve.hits":            KindCounter,
	"serve.misses":          KindCounter,
	"serve.coalesced":       KindCounter,
	"serve.rejected":        KindCounter,
	"serve.timeouts":        KindCounter,
	"serve.errors":          KindCounter,
	"serve.plans":           KindCounter,
	"serve.evictions":       KindCounter,
	"serve.oplog.records":   KindCounter,
	"serve.oplog.dropped":   KindCounter,
	"serve.window.samples":  KindCounter,
	"serve.queue_depth":     KindGauge,
	"serve.latency.seconds": KindHistogram,
	"serve/request":         KindSpan,

	// Planner phase spans (internal/core).
	"plan/alg1":                KindSpan,
	"plan/alg1/candidates":     KindSpan,
	"plan/alg1/orienteering":   KindSpan,
	"plan/alg2":                KindSpan,
	"plan/alg2/candidates":     KindSpan,
	"plan/alg2/iterate":        KindSpan,
	"plan/alg3":                KindSpan,
	"plan/alg3/candidates":     KindSpan,
	"plan/alg3/iterate":        KindSpan,
	"plan/benchmark":           KindSpan,
	"plan/benchmark/construct": KindSpan,
	"plan/benchmark/prune":     KindSpan,
	"plan/replan":              KindSpan,
	"plan/replan/iterate":      KindSpan,

	// Solver-stack spans.
	"tsp/christofides":          KindSpan,
	"tsp/christofides/mst":      KindSpan,
	"tsp/christofides/matching": KindSpan,
	"tsp/christofides/euler":    KindSpan,
	"tsp/improve":               KindSpan,
	"matching/blossom":          KindSpan,
	"matching/greedy":           KindSpan,
	"orienteering/exact":        KindSpan,
	"orienteering/greedy":       KindSpan,
	"orienteering/toursplit":    KindSpan,
	"orienteering/grasp":        KindSpan,
	"orienteering/localsearch":  KindSpan,

	// Experiment-driver spans (internal/experiments).
	"sweep/point": KindSpan,
	"sweep/plan":  KindSpan,

	// Detail and executor events.
	"scan/eval":    KindEvent,
	"bench/remove": KindEvent,
	"mission/*":    KindEvent,
}

// CanonicalNames returns every registered name (wildcards included) with
// its kind. The returned map is a copy.
func CanonicalNames() map[string]NameKind {
	out := make(map[string]NameKind, len(canonicalNames))
	for name, kind := range canonicalNames {
		out[name] = kind
	}
	return out
}

// LookupCanonical resolves a concrete instrumentation name against the
// registry: an exact entry wins, otherwise a "prefix/*" wildcard entry
// matches any name of the form "prefix/<non-empty suffix>".
func LookupCanonical(name string) (NameKind, bool) {
	if kind, ok := canonicalNames[name]; ok {
		return kind, true
	}
	for pattern, kind := range canonicalNames {
		if prefix, ok := strings.CutSuffix(pattern, "/*"); ok &&
			strings.HasPrefix(name, prefix+"/") && len(name) > len(prefix)+1 {
			return kind, true
		}
	}
	return 0, false
}

// LookupCanonicalPrefix reports whether names built at run time from the
// given constant prefix (for example simulate.MissionEventPrefix,
// "mission/") are covered by a wildcard registry entry, and under which
// kind. The prefix must end in "/" and match a "prefix/*" entry exactly.
func LookupCanonicalPrefix(prefix string) (NameKind, bool) {
	trimmed, ok := strings.CutSuffix(prefix, "/")
	if !ok {
		return 0, false
	}
	kind, ok := canonicalNames[trimmed+"/*"]
	return kind, ok
}
