package obs

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func TestLookupCanonical(t *testing.T) {
	cases := []struct {
		name string
		kind NameKind
		ok   bool
	}{
		{"core.candidate_evals", KindCounter, true},
		{"trace.span_duration.seconds", KindHistogram, true},
		{"plan/alg2/iterate", KindSpan, true},
		{"mission/takeoff", KindEvent, true},
		{"mission/battery-dead", KindEvent, true},
		{"mission/", 0, false}, // wildcard needs a non-empty suffix
		{"mission", 0, false},  // the bare prefix is not an event
		{"core.bogus", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		kind, ok := LookupCanonical(c.name)
		if ok != c.ok || (ok && kind != c.kind) {
			t.Errorf("LookupCanonical(%q) = %v, %v; want %v, %v", c.name, kind, ok, c.kind, c.ok)
		}
	}
}

func TestLookupCanonicalPrefix(t *testing.T) {
	if kind, ok := LookupCanonicalPrefix("mission/"); !ok || kind != KindEvent {
		t.Errorf("LookupCanonicalPrefix(mission/) = %v, %v; want KindEvent, true", kind, ok)
	}
	for _, bad := range []string{"mission", "plan/", "bogus/", ""} {
		if _, ok := LookupCanonicalPrefix(bad); ok {
			t.Errorf("LookupCanonicalPrefix(%q) matched; want no match", bad)
		}
	}
}

// experimentsRegistryTable parses the "Canonical name registry" table in
// EXPERIMENTS.md: rows of the form "| `name` | kind | ... |" between the
// registry heading and the next heading.
func experimentsRegistryTable(t *testing.T) map[string]string {
	t.Helper()
	path := filepath.Join("..", "..", "EXPERIMENTS.md")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	row := regexp.MustCompile("^\\| `([^`]+)` \\| ([a-z]+) \\|")
	names := map[string]string{}
	in := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			in = strings.Contains(line, "Canonical name registry")
			continue
		}
		if !in {
			continue
		}
		if m := row.FindStringSubmatch(line); m != nil {
			if _, dup := names[m[1]]; dup {
				t.Errorf("EXPERIMENTS.md registry table lists %q twice", m[1])
			}
			names[m[1]] = m[2]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no registry rows found under the 'Canonical name registry' heading in EXPERIMENTS.md")
	}
	return names
}

// TestCanonicalNamesMatchExperimentsDoc asserts the in-code registry and
// the EXPERIMENTS.md registry table are the same set, kind for kind —
// documentation and enforcement cannot drift apart.
func TestCanonicalNamesMatchExperimentsDoc(t *testing.T) {
	doc := experimentsRegistryTable(t)
	reg := CanonicalNames()
	for _, name := range sortedKeys(reg) {
		kind := reg[name]
		got, ok := doc[name]
		if !ok {
			t.Errorf("registry name %q (%v) is missing from the EXPERIMENTS.md registry table", name, kind)
			continue
		}
		if got != kind.String() {
			t.Errorf("%q: EXPERIMENTS.md documents kind %q, registry says %q", name, got, kind)
		}
	}
	for _, name := range sortedKeys(doc) {
		if _, ok := reg[name]; !ok {
			t.Errorf("EXPERIMENTS.md documents %q, which is not in the obs registry", name)
		}
	}
}

// sortedKeys returns m's keys in sorted order, so table mismatches are
// reported deterministically.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestNameKindString(t *testing.T) {
	want := []struct {
		kind NameKind
		str  string
	}{
		{KindCounter, "counter"}, {KindTimer, "timer"}, {KindHistogram, "histogram"},
		{KindSpan, "span"}, {KindEvent, "event"}, {KindGauge, "gauge"},
		{NameKind(99), "unknown"},
	}
	for _, c := range want {
		if got := c.kind.String(); got != c.str {
			t.Errorf("NameKind(%d).String() = %q, want %q", c.kind, got, c.str)
		}
	}
	// Keep the fmt import honest and the kinds printable.
	if s := fmt.Sprint(KindSpan); s != "span" {
		t.Errorf("fmt.Sprint(KindSpan) = %q", s)
	}
}
