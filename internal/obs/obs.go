// Package obs is a zero-dependency, deterministic instrumentation layer
// for the planners: named counters and wall-clock timers handed out by a
// Recorder. The planners thread a Recorder through their hot paths —
// candidate evaluations, Christofides runs, blossom matchings, local-search
// passes — so a run can report *why* it was slow, not just how long it
// took.
//
// Design rules:
//
//   - Recording never changes planner output. The default Recorder is
//     Discard, a no-op whose handles are shared singletons; uninstrumented
//     runs pay one interface call per event.
//   - Counter totals are exactly reproducible: for a fixed instance they do
//     not depend on the number of worker goroutines. Parallel sections give
//     each worker its own shard (see Shards) and merge them in worker-index
//     order after the join, which both avoids data races and turns the
//     counters into a correctness oracle for the parallel scan — any
//     divergence across worker counts means a candidate was evaluated twice
//     or skipped.
//   - Timers measure wall time and are inherently not reproducible; only
//     their invocation counts are.
package obs

// Recorder hands out named Counter, Timer, and Histogram handles. Handles
// are stable: two calls with the same name affect the same underlying cell,
// so hot loops should fetch handles once, outside the loop.
type Recorder interface {
	// Counter returns the named monotonically increasing counter.
	Counter(name string) Counter
	// Timer returns the named wall-clock timer.
	Timer(name string) Timer
	// Histogram returns the named fixed-bucket histogram. The boundaries
	// of the first call for a name win; later calls for the same name may
	// pass nil. Histograms over deterministic values (energies, volumes,
	// counts) share the counters' reproducibility guarantee; histograms
	// observing wall-clock durations must use a name ending in
	// WallSuffix and are excluded from determinism comparisons, exactly
	// like Timers.
	Histogram(name string, buckets []float64) Histogram
	// Gauge returns the named point-in-time level. Unlike counters,
	// gauges are instantaneous readings (queue depths, cache sizes) and
	// are excluded from determinism comparisons, exactly like Timers.
	Gauge(name string) Gauge
}

// Gauge is a point-in-time level: Set replaces the value, Add moves it.
type Gauge interface {
	// Set replaces the gauge's value.
	Set(v int64)
	// Add moves the gauge by delta (which may be negative).
	Add(delta int64)
}

// Histogram is a fixed-bucket distribution: Observe(v) increments the
// bucket of the first boundary ≥ v (the overflow bucket when v exceeds
// every boundary) and accumulates count and sum.
type Histogram interface {
	// Observe records one value.
	Observe(v float64)
}

// WallSuffix marks a histogram as holding wall-clock observations: any
// histogram whose name ends in this suffix is excluded from
// Snapshot.Equal and Snapshot.Diff, because wall times are inherently not
// reproducible. Deterministic histograms must not use the suffix.
const WallSuffix = ".seconds"

// Counter is a monotonically increasing event count.
type Counter interface {
	// Inc adds one.
	Inc()
	// Add adds n (n ≥ 0).
	Add(n int64)
}

// Timer accumulates wall-clock durations.
type Timer interface {
	// Start begins a measurement; calling the returned function records
	// the elapsed time.
	Start() func()
	// Observe records one measurement of the given duration in seconds.
	Observe(seconds float64)
}

// Discard is the no-op Recorder every planner defaults to. Its handles are
// shared stateless singletons, safe for concurrent use from any number of
// goroutines.
var Discard Recorder = nopRecorder{}

type nopRecorder struct{}

type nopCounter struct{}

type nopTimer struct{}

type nopHistogram struct{}

type nopGauge struct{}

func (nopRecorder) Counter(string) Counter                { return nopCounter{} }
func (nopRecorder) Timer(string) Timer                    { return nopTimer{} }
func (nopRecorder) Histogram(string, []float64) Histogram { return nopHistogram{} }
func (nopRecorder) Gauge(string) Gauge                    { return nopGauge{} }

func (nopCounter) Inc()              {}
func (nopCounter) Add(int64)         {}
func (nopTimer) Start() func()       { return func() {} }
func (nopTimer) Observe(float64)     {}
func (nopHistogram) Observe(float64) {}
func (nopGauge) Set(int64)           {}
func (nopGauge) Add(int64)           {}

// OrDiscard resolves an optional recorder: nil becomes Discard.
func OrDiscard(r Recorder) Recorder {
	if r == nil {
		return Discard
	}
	return r
}

// First returns the first non-nil recorder of an optional variadic tail,
// or Discard. It lets instrumented packages keep their original signatures:
//
//	func Improve(t *Tour, m Metric, rec ...obs.Recorder) float64
func First(recs ...Recorder) Recorder {
	for _, r := range recs {
		if r != nil {
			return r
		}
	}
	return Discard
}

// Shards returns n recorders for a parallel section with n workers. When r
// is a *Registry every worker gets an independent shard registry; merge
// them back with MergeShards after the join. Any other recorder (notably
// Discard) is returned unsharded for every worker and must itself be safe
// for concurrent use.
func Shards(r Recorder, n int) []Recorder {
	out := make([]Recorder, n)
	_, isReg := r.(*Registry)
	for i := range out {
		if isReg {
			out[i] = NewRegistry()
		} else {
			out[i] = r
		}
	}
	return out
}

// MergeShards folds shard totals back into r in ascending shard order.
// It is a no-op unless r is a *Registry and the shards came from Shards.
func MergeShards(r Recorder, shards []Recorder) {
	reg, ok := r.(*Registry)
	if !ok {
		return
	}
	for _, s := range shards {
		if sr, ok := s.(*Registry); ok && sr != reg {
			reg.Merge(sr)
		}
	}
}
