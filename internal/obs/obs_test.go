package obs

import (
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	r.Counter("b").Inc()
	// Same name → same cell.
	r.Counter("a").Inc()

	snap := r.Snapshot()
	if snap.Counters["a"] != 6 {
		t.Errorf("a = %d, want 6", snap.Counters["a"])
	}
	if snap.Counters["b"] != 1 {
		t.Errorf("b = %d, want 1", snap.Counters["b"])
	}
	if names := snap.CounterNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("CounterNames = %v", names)
	}
}

func TestRegistryTimers(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("t")
	tm.Observe(0.5)
	tm.Observe(0.25)
	stop := tm.Start()
	stop()
	snap := r.Snapshot()
	st := snap.Timers["t"]
	if st.Count != 3 {
		t.Errorf("count = %d, want 3", st.Count)
	}
	if st.Seconds < 0.75 {
		t.Errorf("seconds = %v, want ≥ 0.75", st.Seconds)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(2)
	b.Counter("x").Add(3)
	b.Counter("y").Inc()
	b.Timer("t").Observe(1)
	a.Merge(b)
	snap := a.Snapshot()
	if snap.Counters["x"] != 5 || snap.Counters["y"] != 1 {
		t.Errorf("merged counters = %v", snap.Counters)
	}
	if snap.Timers["t"].Count != 1 {
		t.Errorf("merged timer = %+v", snap.Timers["t"])
	}
}

func TestShardsAndMergeShards(t *testing.T) {
	root := NewRegistry()
	shards := Shards(root, 4)
	var wg sync.WaitGroup
	for w, s := range shards {
		wg.Add(1)
		go func(w int, s Recorder) {
			defer wg.Done()
			c := s.Counter("n")
			for i := 0; i <= w; i++ {
				c.Inc()
			}
		}(w, s)
	}
	wg.Wait()
	MergeShards(root, shards)
	if got := root.Snapshot().Counters["n"]; got != 1+2+3+4 {
		t.Errorf("sharded total = %d, want 10", got)
	}

	// A non-Registry recorder shards to itself and merges as a no-op.
	nop := Shards(Discard, 2)
	if nop[0] != Discard || nop[1] != Discard {
		t.Errorf("Discard shards = %v", nop)
	}
	MergeShards(Discard, nop)
}

func TestSnapshotEqualAndDiff(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(2)
	b.Counter("x").Add(2)
	sa, sb := a.Snapshot(), b.Snapshot()
	if !sa.Equal(sb) {
		t.Errorf("equal snapshots differ: %s", sa.Diff(sb))
	}
	b.Counter("x").Inc()
	b.Counter("y").Inc()
	sb = b.Snapshot()
	if sa.Equal(sb) {
		t.Error("unequal snapshots compare equal")
	}
	d := sa.Diff(sb)
	if !strings.Contains(d, "x: 2 != 3") || !strings.Contains(d, "y: 0 != 1") {
		t.Errorf("Diff = %q", d)
	}
}

func TestDiscardAndHelpers(t *testing.T) {
	// Discard must be callable from anywhere without effect.
	Discard.Counter("x").Inc()
	Discard.Counter("x").Add(5)
	Discard.Timer("t").Observe(1)
	Discard.Timer("t").Start()()

	if OrDiscard(nil) != Discard {
		t.Error("OrDiscard(nil) != Discard")
	}
	r := NewRegistry()
	if OrDiscard(r) != Recorder(r) {
		t.Error("OrDiscard(r) != r")
	}
	if First() != Discard || First(nil) != Discard {
		t.Error("First() should default to Discard")
	}
	if First(nil, r) != Recorder(r) {
		t.Error("First should return first non-nil recorder")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 1, 100}) // sorted + deduped internally
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	// Same name → same cell, boundaries of the first call win.
	r.Histogram("h", nil).Observe(2)

	st := r.Snapshot().Hists["h"]
	if want := []float64{1, 10, 100}; len(st.Buckets) != 3 || st.Buckets[0] != want[0] || st.Buckets[2] != want[2] {
		t.Fatalf("buckets = %v, want %v", st.Buckets, want)
	}
	// v ≤ bound buckets: {0.5, 1} ≤ 1; {5, 2} ≤ 10; {50} ≤ 100; {500} over.
	if want := []int64{2, 2, 1, 1}; len(st.Counts) != 4 ||
		st.Counts[0] != want[0] || st.Counts[1] != want[1] || st.Counts[2] != want[2] || st.Counts[3] != want[3] {
		t.Errorf("counts = %v, want %v", st.Counts, want)
	}
	if st.Count != 6 || st.Sum != 558.5 {
		t.Errorf("count/sum = %d/%g, want 6/558.5", st.Count, st.Sum)
	}
}

func TestHistogramMergeAndEqual(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("h", []float64{1}).Observe(0.5)
	b.Histogram("h", []float64{1}).Observe(2)
	a.Merge(b)
	st := a.Snapshot().Hists["h"]
	if st.Count != 2 || st.Counts[0] != 1 || st.Counts[1] != 1 {
		t.Errorf("merged hist = %+v", st)
	}

	// Deterministic histograms participate in Equal; WallSuffix ones do not.
	x, y := NewRegistry(), NewRegistry()
	x.Histogram("d", []float64{1}).Observe(0.5)
	y.Histogram("d", []float64{1}).Observe(2)
	if x.Snapshot().Equal(y.Snapshot()) {
		t.Error("diverging deterministic histograms compare equal")
	}
	x2, y2 := NewRegistry(), NewRegistry()
	x2.Histogram("w"+WallSuffix, []float64{1}).Observe(0.5)
	y2.Histogram("w"+WallSuffix, []float64{1}).Observe(2)
	if !x2.Snapshot().Equal(y2.Snapshot()) {
		t.Error("wall-clock histograms must be excluded from Equal")
	}
}

// TestSnapshotOrderingLock pins the diff-stability contract: every exported
// iteration order (CounterNames, TimerNames, HistNames, WriteTo) is sorted,
// so uavexp -metrics panels and uavbench JSON are stable across runs.
func TestSnapshotOrderingLock(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
		r.Timer(name + ".t").Observe(0.1)
		r.Histogram(name+".h", []float64{1}).Observe(0.5)
	}
	snap := r.Snapshot()
	assertSorted := func(kind string, names []string) {
		t.Helper()
		if !sort.StringsAreSorted(names) {
			t.Errorf("%s not sorted: %v", kind, names)
		}
		if len(names) != 3 {
			t.Errorf("%s has %d names, want 3", kind, len(names))
		}
	}
	assertSorted("CounterNames", snap.CounterNames())
	assertSorted("TimerNames", snap.TimerNames())
	assertSorted("HistNames", snap.HistNames())

	var sb strings.Builder
	if _, err := snap.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 9 {
		t.Fatalf("WriteTo rendered %d lines, want 9:\n%s", len(lines), sb.String())
	}
	// Counters, then timers, then histograms, each block sorted.
	want := []string{"alpha", "mid", "zeta", "alpha.t", "mid.t", "zeta.t", "alpha.h", "mid.h", "zeta.h"}
	for i, prefix := range want {
		if !strings.HasPrefix(lines[i], prefix+" ") {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Reset()
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Errorf("after Reset: %v", snap.Counters)
	}
}

func TestSnapshotWriteTo(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Inc()
	r.Timer("t").Observe(0.5)
	var sb strings.Builder
	if _, err := r.Snapshot().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a 1\n") || !strings.Contains(out, "b 2\n") {
		t.Errorf("WriteTo = %q", out)
	}
	if strings.Index(out, "a 1") > strings.Index(out, "b 2") {
		t.Errorf("counters not sorted: %q", out)
	}
}
