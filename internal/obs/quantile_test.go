package obs

import (
	"strings"
	"testing"
)

// histFrom builds a HistStat by observing vals into a fresh registry
// histogram with the given boundaries.
func histFrom(t *testing.T, buckets []float64, vals ...float64) HistStat {
	t.Helper()
	r := NewRegistry()
	h := r.Histogram("exec.energy_deviation_hist", buckets)
	for _, v := range vals {
		h.Observe(v)
	}
	return r.Snapshot().Hists["exec.energy_deviation_hist"]
}

func TestQuantileEmptyHistogram(t *testing.T) {
	h := histFrom(t, []float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	var zero HistStat
	if got := zero.Quantile(0.5); got != 0 {
		t.Errorf("zero-value HistStat Quantile(0.5) = %g, want 0", got)
	}
}

func TestQuantileAllInOverflowBucket(t *testing.T) {
	h := histFrom(t, []float64{1, 2}, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("all-overflow Quantile(%g) = %g, want largest boundary 2", q, got)
		}
	}
}

func TestQuantileNoFiniteBucketsReturnsMean(t *testing.T) {
	h := histFrom(t, nil, 2, 4)
	for _, q := range []float64{0.5, 0.99} {
		if got := h.Quantile(q); got != 3 {
			t.Errorf("bucketless Quantile(%g) = %g, want mean 3", q, got)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := histFrom(t, []float64{1, 2, 4}, 1.5)
	// The one observation lands in the (1, 2] bucket; the estimator
	// interpolates inside that bucket's boundaries regardless of q.
	if got := h.Quantile(0.5); got != 1.5 {
		t.Errorf("single-observation p50 = %g, want 1.5", got)
	}
	if got := h.Quantile(0.99); got != 1.99 {
		t.Errorf("single-observation p99 = %g, want 1.99", got)
	}
	// Re-running the estimate must be bit-identical: pure function of counts.
	if h.Quantile(0.99) != h.Quantile(0.99) {
		t.Error("Quantile is not deterministic across calls")
	}
}

func TestQuantileClampsRange(t *testing.T) {
	h := histFrom(t, []float64{1, 2, 4}, 0.5, 1.5, 3)
	if got, want := h.Quantile(-1), h.Quantile(0); got != want {
		t.Errorf("Quantile(-1) = %g, want Quantile(0) = %g", got, want)
	}
	if got, want := h.Quantile(2), h.Quantile(1); got != want {
		t.Errorf("Quantile(2) = %g, want Quantile(1) = %g", got, want)
	}
}

// TestQuantileMergeOrderIndependent feeds three disjoint observation sets
// through per-worker shards and merges them in two different orders: the
// bucket-interpolated p50/p99 must come out bit-identical, because the
// estimate is a pure function of the summed bucket counts.
func TestQuantileMergeOrderIndependent(t *testing.T) {
	buckets := []float64{1, 2, 4, 8}
	sets := [][]float64{
		{0.1, 0.2, 0.9},  // all in (0, 1]
		{1.5, 3, 3.5, 7}, // middle buckets
		{9, 20},          // overflow
	}
	build := func(order []int) HistStat {
		root := NewRegistry()
		shards := Shards(root, len(sets))
		for i, vals := range sets {
			h := shards[i].Histogram("exec.energy_deviation_hist", buckets)
			for _, v := range vals {
				h.Observe(v)
			}
		}
		for _, i := range order {
			MergeShards(root, []Recorder{shards[i]})
		}
		return root.Snapshot().Hists["exec.energy_deviation_hist"]
	}
	fwd := build([]int{0, 1, 2})
	rev := build([]int{2, 1, 0})
	for _, q := range []float64{0.5, 0.99} {
		a, b := fwd.Quantile(q), rev.Quantile(q)
		if a != b {
			t.Errorf("Quantile(%g) depends on merge order: %g != %g", q, a, b)
		}
	}
	if fwd.Count != 9 || rev.Count != 9 {
		t.Fatalf("merged counts = %d/%d, want 9", fwd.Count, rev.Count)
	}
	// p50 (rank 4.5): cumulative counts are 3, 4, 6, ... so the rank lands
	// in the (2, 4] bucket holding 2 observations (cumulative 4 before it).
	if want := 2 + (4.5-4.0)/2.0*(4.0-2.0); fwd.Quantile(0.5) != want {
		t.Errorf("merged p50 = %g, want %g", fwd.Quantile(0.5), want)
	}
	// p99 (rank 8.91) lands in the overflow bucket → largest boundary.
	if got := fwd.Quantile(0.99); got != 8 {
		t.Errorf("merged p99 = %g, want overflow cap 8", got)
	}
}

func TestHistStatSub(t *testing.T) {
	old := histFrom(t, []float64{1, 2}, 0.5, 1.5)
	cur := histFrom(t, []float64{1, 2}, 0.5, 1.5, 1.7, 5)
	d := cur.Sub(old)
	if d.Count != 2 {
		t.Fatalf("delta Count = %d, want 2", d.Count)
	}
	if got, want := d.Counts[1], int64(1); got != want {
		t.Errorf("delta (1,2] bucket = %d, want %d", got, want)
	}
	if got, want := d.Counts[2], int64(1); got != want {
		t.Errorf("delta overflow bucket = %d, want %d", got, want)
	}
	// Subtracting a zero-value prior (no earlier sample) is the identity.
	id := cur.Sub(HistStat{})
	if id.Count != cur.Count || id.Sum != cur.Sum {
		t.Errorf("Sub(zero) changed totals: %+v vs %+v", id, cur)
	}
	// Sub must not alias the receiver's slices.
	d.Counts[0] = 99
	if cur.Counts[0] == 99 {
		t.Error("Sub aliases the receiver's Counts slice")
	}
}

func TestRegistryGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("serve.queue_depth")
	g.Set(5)
	g.Add(-2)
	if got := r.Snapshot().Gauges["serve.queue_depth"]; got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	// Handles are stable: same name, same cell.
	r.Gauge("serve.queue_depth").Add(1)
	if got := r.Snapshot().Gauges["serve.queue_depth"]; got != 4 {
		t.Fatalf("gauge after second handle = %d, want 4", got)
	}

	// Merge folds gauge levels additively, like counters.
	s := NewRegistry()
	s.Gauge("serve.queue_depth").Set(6)
	r.Merge(s)
	if got := r.Snapshot().Gauges["serve.queue_depth"]; got != 10 {
		t.Fatalf("merged gauge = %d, want 10", got)
	}

	// Gauges are excluded from determinism comparisons.
	a, b := NewRegistry(), NewRegistry()
	a.Counter("serve.requests").Inc()
	b.Counter("serve.requests").Inc()
	a.Gauge("serve.queue_depth").Set(7)
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Error("snapshots with differing gauges compare unequal; gauges must be excluded like timers")
	}
	if diff := a.Snapshot().Diff(b.Snapshot()); diff != "" {
		t.Errorf("Diff reported gauge movement: %q", diff)
	}

	// Reset drops gauge cells.
	r.Reset()
	if n := len(r.Snapshot().Gauges); n != 0 {
		t.Errorf("Reset left %d gauges", n)
	}

	// Discard's gauge handle is a safe no-op.
	Discard.Gauge("serve.queue_depth").Set(1)
	Discard.Gauge("serve.queue_depth").Add(1)
}

func TestWriteToRendersGaugesLast(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(2)
	r.Histogram("serve.latency.seconds", []float64{1}).Observe(0.5)
	r.Gauge("serve.queue_depth").Set(3)
	var sb strings.Builder
	if _, err := r.Snapshot().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), sb.String())
	}
	if lines[0] != "serve.requests 2" {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "serve.latency.seconds ") {
		t.Errorf("line 1 = %q, want histogram", lines[1])
	}
	if lines[2] != "serve.queue_depth 3" {
		t.Errorf("line 2 = %q, want gauge last", lines[2])
	}
}
