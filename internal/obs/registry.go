package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the standard Recorder: a named set of counters and timers.
// Handle lookup takes a mutex; the handles themselves are lock-free
// (counters) or internally locked (timers), so a Registry may be shared
// across goroutines — though parallel planner sections prefer per-worker
// shards (Shards) to keep recording deterministic by construction.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*counterCell
	timers   map[string]*timerCell
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*counterCell{},
		timers:   map[string]*timerCell{},
	}
}

type counterCell struct{ n atomic.Int64 }

func (c *counterCell) Inc()        { c.n.Add(1) }
func (c *counterCell) Add(n int64) { c.n.Add(n) }

type timerCell struct {
	mu      sync.Mutex
	count   int64
	seconds float64
}

func (t *timerCell) Start() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start).Seconds()) }
}

func (t *timerCell) Observe(seconds float64) {
	t.mu.Lock()
	t.count++
	t.seconds += seconds
	t.mu.Unlock()
}

// Counter implements Recorder.
func (r *Registry) Counter(name string) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &counterCell{}
		r.counters[name] = c
	}
	return c
}

// Timer implements Recorder.
func (r *Registry) Timer(name string) Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &timerCell{}
		r.timers[name] = t
	}
	return t
}

// Merge adds every count and timer total of s into r. Merging is pure
// addition, so the final totals are independent of merge order; callers
// still merge in worker-index order to keep the operation reproducible
// step by step.
func (r *Registry) Merge(s *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		if n := c.n.Load(); n != 0 {
			r.Counter(name).Add(n)
		}
	}
	for name, t := range s.timers {
		t.mu.Lock()
		count, secs := t.count, t.seconds
		t.mu.Unlock()
		if count != 0 {
			dst := r.Timer(name).(*timerCell)
			dst.mu.Lock()
			dst.count += count
			dst.seconds += secs
			dst.mu.Unlock()
		}
	}
}

// Reset zeroes the registry, dropping every cell. Outstanding handles keep
// working but are detached from future snapshots.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*counterCell{}
	r.timers = map[string]*timerCell{}
}

// TimerStat is one timer's aggregate in a Snapshot.
type TimerStat struct {
	// Count is the number of observations.
	Count int64
	// Seconds is the summed duration.
	Seconds float64
}

// Snapshot is a point-in-time copy of a registry's totals.
type Snapshot struct {
	Counters map[string]int64
	Timers   map[string]TimerStat
}

// Snapshot copies the registry's current totals.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Timers:   make(map[string]TimerStat, len(r.timers)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.n.Load()
	}
	for name, t := range r.timers {
		t.mu.Lock()
		snap.Timers[name] = TimerStat{Count: t.count, Seconds: t.seconds}
		t.mu.Unlock()
	}
	return snap
}

// CounterNames returns the counter names in sorted order — the canonical
// iteration order for rendering and comparison.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TimerNames returns the timer names in sorted order.
func (s Snapshot) TimerNames() []string {
	names := make([]string, 0, len(s.Timers))
	for name := range s.Timers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Equal reports whether two snapshots have identical counter totals
// (timers are wall-clock and excluded from equality).
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s.Counters) != len(o.Counters) {
		return false
	}
	for name, n := range s.Counters {
		if o.Counters[name] != n {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the counter differences
// between s and o, one "name: a != b" line per mismatch, empty when Equal.
func (s Snapshot) Diff(o Snapshot) string {
	seen := map[string]bool{}
	var out string
	for _, name := range s.CounterNames() {
		seen[name] = true
		if a, b := s.Counters[name], o.Counters[name]; a != b {
			out += fmt.Sprintf("%s: %d != %d\n", name, a, b)
		}
	}
	for _, name := range o.CounterNames() {
		if !seen[name] && o.Counters[name] != 0 {
			out += fmt.Sprintf("%s: 0 != %d\n", name, o.Counters[name])
		}
	}
	return out
}

// WriteTo renders the snapshot as sorted "name value" lines: counters
// first, then timers as "name count seconds". Implements io.WriterTo.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, name := range s.CounterNames() {
		n, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, name := range s.TimerNames() {
		st := s.Timers[name]
		n, err := fmt.Fprintf(w, "%s %d %.6fs\n", name, st.Count, st.Seconds)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
