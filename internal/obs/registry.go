package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the standard Recorder: a named set of counters and timers.
// Handle lookup takes a mutex; the handles themselves are lock-free
// (counters) or internally locked (timers), so a Registry may be shared
// across goroutines — though parallel planner sections prefer per-worker
// shards (Shards) to keep recording deterministic by construction.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*counterCell
	timers   map[string]*timerCell
	hists    map[string]*histCell
	gauges   map[string]*gaugeCell
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*counterCell{},
		timers:   map[string]*timerCell{},
		hists:    map[string]*histCell{},
		gauges:   map[string]*gaugeCell{},
	}
}

type counterCell struct{ n atomic.Int64 }

func (c *counterCell) Inc()        { c.n.Add(1) }
func (c *counterCell) Add(n int64) { c.n.Add(n) }

type timerCell struct {
	mu      sync.Mutex
	count   int64
	seconds float64
}

func (t *timerCell) Start() func() {
	start := time.Now()                                      //uavdc:allow nodeterminism Timer exists to measure wall time; readers must treat it as non-deterministic
	return func() { t.Observe(time.Since(start).Seconds()) } //uavdc:allow nodeterminism Timer exists to measure wall time; readers must treat it as non-deterministic
}

func (t *timerCell) Observe(seconds float64) {
	t.mu.Lock()
	t.count++
	t.seconds += seconds
	t.mu.Unlock()
}

// Counter implements Recorder.
func (r *Registry) Counter(name string) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &counterCell{}
		r.counters[name] = c
	}
	return c
}

// Timer implements Recorder.
func (r *Registry) Timer(name string) Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &timerCell{}
		r.timers[name] = t
	}
	return t
}

type gaugeCell struct{ v atomic.Int64 }

func (g *gaugeCell) Set(v int64)     { g.v.Store(v) }
func (g *gaugeCell) Add(delta int64) { g.v.Add(delta) }

// Gauge implements Recorder.
func (r *Registry) Gauge(name string) Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &gaugeCell{}
		r.gauges[name] = g
	}
	return g
}

// histCell is a fixed-bucket histogram: counts[i] tallies observations
// v ≤ bounds[i]; counts[len(bounds)] is the overflow bucket.
type histCell struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
}

func (h *histCell) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Histogram implements Recorder. The bucket boundaries of the first call
// for a name win; later calls may pass nil. Boundaries are sorted and
// deduplicated; an empty boundary set yields a single (overflow) bucket.
func (r *Registry) Histogram(name string, buckets []float64) Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		dedup := bounds[:0]
		for i, b := range bounds {
			if i == 0 || b != dedup[len(dedup)-1] {
				dedup = append(dedup, b)
			}
		}
		h = &histCell{bounds: dedup, counts: make([]int64, len(dedup)+1)}
		r.hists[name] = h
	}
	return h
}

// Merge adds every count and timer total of s into r. Merging is pure
// addition, so the final totals are independent of merge order; callers
// still merge in worker-index order to keep the operation reproducible
// step by step.
func (r *Registry) Merge(s *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		if n := c.n.Load(); n != 0 {
			//uavdc:allow nodeterminism merge is pure addition, commutative across iteration orders
			//uavdc:allow obsnames generic plumbing; names were validated at their recording sites
			r.Counter(name).Add(n)
		}
	}
	for name, t := range s.timers {
		t.mu.Lock()
		count, secs := t.count, t.seconds
		t.mu.Unlock()
		if count != 0 {
			//uavdc:allow nodeterminism merge is pure addition, commutative across iteration orders
			//uavdc:allow obsnames generic plumbing; names were validated at their recording sites
			dst := r.Timer(name).(*timerCell)
			dst.mu.Lock()
			dst.count += count
			dst.seconds += secs
			dst.mu.Unlock()
		}
	}
	for name, h := range s.hists {
		h.mu.Lock()
		if h.count != 0 {
			//uavdc:allow nodeterminism merge is pure addition, commutative across iteration orders
			//uavdc:allow obsnames generic plumbing; names were validated at their recording sites
			dst := r.Histogram(name, h.bounds).(*histCell)
			dst.mu.Lock()
			if len(dst.counts) == len(h.counts) {
				for i, n := range h.counts {
					dst.counts[i] += n
				}
				dst.count += h.count
				dst.sum += h.sum
			}
			dst.mu.Unlock()
		}
		h.mu.Unlock()
	}
	for name, g := range s.gauges {
		if v := g.v.Load(); v != 0 {
			//uavdc:allow nodeterminism merge is pure addition, commutative across iteration orders
			//uavdc:allow obsnames generic plumbing; names were validated at their recording sites
			r.Gauge(name).Add(v)
		}
	}
}

// Reset zeroes the registry, dropping every cell. Outstanding handles keep
// working but are detached from future snapshots.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*counterCell{}
	r.timers = map[string]*timerCell{}
	r.hists = map[string]*histCell{}
	r.gauges = map[string]*gaugeCell{}
}

// TimerStat is one timer's aggregate in a Snapshot.
type TimerStat struct {
	// Count is the number of observations.
	Count int64
	// Seconds is the summed duration.
	Seconds float64
}

// HistStat is one histogram's aggregate in a Snapshot.
type HistStat struct {
	// Buckets is the sorted upper boundary of each bucket; Counts has one
	// extra trailing entry for the overflow bucket.
	Buckets []float64
	Counts  []int64
	// Count and Sum aggregate every observation.
	Count int64
	Sum   float64
}

// Snapshot is a point-in-time copy of a registry's totals. Gauges are
// instantaneous levels (queue depths, cache sizes), excluded from Equal
// and Diff exactly like Timers and WallSuffix histograms.
type Snapshot struct {
	Counters map[string]int64
	Timers   map[string]TimerStat
	Hists    map[string]HistStat
	Gauges   map[string]int64
}

// Snapshot copies the registry's current totals.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Timers:   make(map[string]TimerStat, len(r.timers)),
		Hists:    make(map[string]HistStat, len(r.hists)),
		Gauges:   make(map[string]int64, len(r.gauges)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.n.Load()
	}
	for name, t := range r.timers {
		t.mu.Lock()
		snap.Timers[name] = TimerStat{Count: t.count, Seconds: t.seconds}
		t.mu.Unlock()
	}
	for name, h := range r.hists {
		h.mu.Lock()
		snap.Hists[name] = HistStat{
			Buckets: append([]float64(nil), h.bounds...),
			Counts:  append([]int64(nil), h.counts...),
			Count:   h.count,
			Sum:     h.sum,
		}
		h.mu.Unlock()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.v.Load()
	}
	return snap
}

// CounterNames returns the counter names in sorted order — the canonical
// iteration order for rendering and comparison.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TimerNames returns the timer names in sorted order.
func (s Snapshot) TimerNames() []string {
	names := make([]string, 0, len(s.Timers))
	for name := range s.Timers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HistNames returns the histogram names in sorted order.
func (s Snapshot) HistNames() []string {
	names := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the gauge names in sorted order.
func (s Snapshot) GaugeNames() []string {
	names := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// deterministicHist reports whether the named histogram participates in
// determinism comparisons: wall-clock histograms (WallSuffix names) are
// excluded, exactly like Timers.
func deterministicHist(name string) bool {
	return !strings.HasSuffix(name, WallSuffix)
}

// histEqual compares two histograms' bucket counts.
func histEqual(a, b HistStat) bool {
	if a.Count != b.Count || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i, n := range a.Counts {
		if b.Counts[i] != n {
			return false
		}
	}
	return true
}

// Equal reports whether two snapshots have identical counter totals and
// deterministic-histogram bucket counts (timers and WallSuffix histograms
// are wall-clock and excluded from equality).
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s.Counters) != len(o.Counters) {
		return false
	}
	for name, n := range s.Counters {
		if o.Counters[name] != n {
			return false
		}
	}
	for name, h := range s.Hists {
		if !deterministicHist(name) {
			continue
		}
		oh, ok := o.Hists[name]
		if !ok || !histEqual(h, oh) {
			return false
		}
	}
	for name := range o.Hists {
		if !deterministicHist(name) {
			continue
		}
		if _, ok := s.Hists[name]; !ok {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the counter differences
// between s and o, one "name: a != b" line per mismatch, empty when Equal.
func (s Snapshot) Diff(o Snapshot) string {
	seen := map[string]bool{}
	var out string
	for _, name := range s.CounterNames() {
		seen[name] = true
		if a, b := s.Counters[name], o.Counters[name]; a != b {
			out += fmt.Sprintf("%s: %d != %d\n", name, a, b)
		}
	}
	for _, name := range o.CounterNames() {
		if !seen[name] && o.Counters[name] != 0 {
			out += fmt.Sprintf("%s: 0 != %d\n", name, o.Counters[name])
		}
	}
	for _, name := range s.HistNames() {
		if !deterministicHist(name) {
			continue
		}
		if !histEqual(s.Hists[name], o.Hists[name]) {
			out += fmt.Sprintf("%s: %v != %v\n", name, s.Hists[name].Counts, o.Hists[name].Counts)
		}
	}
	for _, name := range o.HistNames() {
		if _, ok := s.Hists[name]; !ok && deterministicHist(name) && o.Hists[name].Count != 0 {
			out += fmt.Sprintf("%s: absent != %v\n", name, o.Hists[name].Counts)
		}
	}
	return out
}

// WriteTo renders the snapshot as sorted "name value" lines: counters
// first, then timers as "name count seconds", then histograms as
// "name count sum ≤b:n ... >b:n", then gauges as "name value". Every
// section iterates its names in sorted order, so the rendering is
// diff-stable. Implements io.WriterTo.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, name := range s.CounterNames() {
		n, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, name := range s.TimerNames() {
		st := s.Timers[name]
		n, err := fmt.Fprintf(w, "%s %d %.6fs\n", name, st.Count, st.Seconds)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, name := range s.HistNames() {
		h := s.Hists[name]
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s %d %g", name, h.Count, h.Sum)
		for i, b := range h.Buckets {
			fmt.Fprintf(&sb, " ≤%g:%d", b, h.Counts[i])
		}
		if len(h.Counts) > 0 {
			over := h.Counts[len(h.Counts)-1]
			if len(h.Buckets) > 0 {
				fmt.Fprintf(&sb, " >%g:%d", h.Buckets[len(h.Buckets)-1], over)
			} else {
				fmt.Fprintf(&sb, " all:%d", over)
			}
		}
		sb.WriteByte('\n')
		n, err := io.WriteString(w, sb.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, name := range s.GaugeNames() {
		n, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Sub returns the bucket-wise difference h − o: the distribution of the
// observations recorded between snapshot o and snapshot h of the same
// histogram. A zero-value or layout-mismatched o leaves h unchanged, so
// callers can subtract "no prior sample" safely.
func (h HistStat) Sub(o HistStat) HistStat {
	out := HistStat{
		Buckets: append([]float64(nil), h.Buckets...),
		Counts:  append([]int64(nil), h.Counts...),
		Count:   h.Count,
		Sum:     h.Sum,
	}
	if len(o.Counts) != len(h.Counts) {
		return out
	}
	for i, n := range o.Counts {
		out.Counts[i] -= n
	}
	out.Count -= o.Count
	out.Sum -= o.Sum
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded
// distribution by linear interpolation inside the bucket holding the
// rank, the way the bucket-count layout allows and nothing more:
//
//   - an empty histogram returns 0;
//   - a histogram with no finite boundaries (one overflow bucket)
//     returns the mean Sum/Count, the only estimate the layout supports;
//   - ranks landing in the overflow bucket return the largest finite
//     boundary — the estimator never extrapolates past what it measured;
//   - otherwise the value interpolates linearly between the bucket's
//     boundaries (the first bucket's lower edge is taken as 0; the
//     estimator targets nonnegative measurements such as latencies).
//
// The estimate is a pure function of the bucket counts, so it is
// deterministic and independent of observation or merge order.
func (h HistStat) Quantile(q float64) float64 {
	if h.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if len(h.Buckets) == 0 {
		return h.Sum / float64(h.Count)
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) < rank || cum == 0 {
			continue
		}
		if i >= len(h.Buckets) {
			return h.Buckets[len(h.Buckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Buckets[i-1]
		}
		hi := h.Buckets[i]
		frac := (rank - float64(cum-c)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return h.Buckets[len(h.Buckets)-1]
}
