package oplog

import (
	"fmt"
	"maps"
	"math"
	"slices"
	"sort"
	"strings"
)

// KeyCount is one entry of a hottest-keys ranking.
type KeyCount struct {
	Key   string `json:"key"`
	Count int    `json:"count"`
}

// Summary aggregates an op-log: per-disposition counts, nearest-rank
// latency quantiles over the caller-observed elapsed times, and the
// top-k hottest keys. Quantiles are zero for stripped streams (the wall
// fields were zeroed at write time).
type Summary struct {
	Records int            `json:"records"`
	ByDisp  map[string]int `json:"by_disp"`
	P50S    float64        `json:"p50_s"`
	P90S    float64        `json:"p90_s"`
	P99S    float64        `json:"p99_s"`
	TopKeys []KeyCount     `json:"top_keys,omitempty"`
}

// Summarize aggregates recs. topK bounds the hottest-keys ranking
// (≤ 0 means none); ties rank lexicographically smaller keys first, so
// the ranking is deterministic.
func Summarize(recs []Record, topK int) Summary {
	s := Summary{Records: len(recs), ByDisp: map[string]int{}}
	elapsed := make([]float64, 0, len(recs))
	keys := map[string]int{}
	for _, r := range recs {
		s.ByDisp[r.Disp]++
		elapsed = append(elapsed, r.ElapsedS)
		if r.Key != "" {
			keys[r.Key]++
		}
	}
	sort.Float64s(elapsed)
	s.P50S = nearestRank(elapsed, 0.50)
	s.P90S = nearestRank(elapsed, 0.90)
	s.P99S = nearestRank(elapsed, 0.99)
	if topK > 0 && len(keys) > 0 {
		ranked := make([]KeyCount, 0, len(keys))
		for _, k := range slices.Sorted(maps.Keys(keys)) {
			ranked = append(ranked, KeyCount{Key: k, Count: keys[k]})
		}
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Count > ranked[j].Count })
		if len(ranked) > topK {
			ranked = ranked[:topK]
		}
		s.TopKeys = ranked
	}
	return s
}

// nearestRank returns the nearest-rank q-quantile of sorted (ascending)
// values, 0 when empty.
func nearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// DiffResult reports whether two op-logs are identical modulo wall
// fields, with a human-readable description of the first divergence and
// any per-disposition count deltas when they are not.
type DiffResult struct {
	Equal  bool
	Detail string
}

// Diff compares two op-logs modulo wall fields: both sides are reduced
// to their deterministic projection (Record.Strip) and compared record
// by record. Two runs of the same request sequence against the same
// server configuration must diff Equal regardless of GOMAXPROCS.
func Diff(a, b []Record) DiffResult {
	var sb strings.Builder
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		sa, sb2 := a[i].Strip(), b[i].Strip()
		if sa != sb2 {
			fmt.Fprintf(&sb, "record %d diverges:\n  a: %+v\n  b: %+v\n", i, sa, sb2)
			break
		}
	}
	if len(a) != len(b) {
		fmt.Fprintf(&sb, "record counts differ: %d vs %d\n", len(a), len(b))
	}
	if sb.Len() == 0 {
		return DiffResult{Equal: true}
	}
	da, db := Summarize(a, 0).ByDisp, Summarize(b, 0).ByDisp
	all := map[string]bool{}
	for d := range da {
		all[d] = true
	}
	for d := range db {
		all[d] = true
	}
	for _, d := range slices.Sorted(maps.Keys(all)) {
		if da[d] != db[d] {
			fmt.Fprintf(&sb, "disposition %s: %d vs %d\n", d, da[d], db[d])
		}
	}
	return DiffResult{Detail: sb.String()}
}
