// Package oplog is the daemon's request operation log: one JSONL record
// per served request under the uavdc-oplog/1 schema, written by a
// bounded, drop-counting asynchronous Writer so logging can never
// backpressure planning (a slow or stalled sink costs dropped records,
// never blocked requests).
//
// Records carry the canonical plan key, the request disposition
// (hit/miss/coalesced/rejected/timeout/error), queue-wait/plan/total
// wall times, the worker id, and cache size/eviction deltas. The
// monotonic sequence number doubles as the join id against the per
// request serve/request spans of a uavdc-trace/1 stream (the span's
// "req" attribute), so op-log lines and trace records can be correlated.
//
// Mirroring internal/trace's stripped streams, a deterministic-strip
// mode zeroes every wall-clock-or-scheduling field (queue_s, plan_s,
// elapsed_s, worker) while keeping sequence numbers and dispositions:
// for a fixed request sequence the stripped stream is byte-identical at
// any GOMAXPROCS, which is what the golden tests lock.
package oplog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"uavdc/internal/wire"
)

// Schema is the version tag of the JSONL op-log format. The first line
// of a stream is a header object {"schema": Schema} (plus "strip": true
// for deterministic streams); every following line is one Record.
const Schema = wire.Oplog

// Request dispositions. Exactly one is assigned per request: what the
// serving layer did with it.
const (
	// DispHit: served from the plan cache.
	DispHit = "hit"
	// DispMiss: planned fresh and cached.
	DispMiss = "miss"
	// DispCoalesced: attached to another request's in-flight plan.
	DispCoalesced = "coalesced"
	// DispRejected: bounced with 503, queue full.
	DispRejected = "rejected"
	// DispTimeout: waiter gave up with 504 (the flight still lands).
	DispTimeout = "timeout"
	// DispError: rejected as invalid or failed while planning.
	DispError = "error"
)

// Header is the first line of an op-log stream.
type Header struct {
	Schema string `json:"schema"`
	// Strip marks a deterministic stream: wall and scheduling fields
	// were zeroed at write time.
	Strip bool `json:"strip,omitempty"`
}

// Record is one served request. Wall-clock fields (QueueS, PlanS,
// ElapsedS) and the scheduling-dependent Worker are zeroed in stripped
// streams; everything else is deterministic for a fixed request
// sequence.
type Record struct {
	// Seq is the monotonic per-server request sequence number, and the
	// join id against the serve/request trace span's "req" attribute.
	Seq int64 `json:"i"`
	// Key is the canonical plan key (empty for malformed requests that
	// never produced one).
	Key string `json:"key,omitempty"`
	// Disp is the request disposition, one of the Disp* constants.
	Disp string `json:"disp"`
	// Status is the HTTP-shaped status code of the outcome.
	Status int `json:"status"`
	// QueueS is the time the request's flight waited in the queue before
	// a worker picked it up; zero for requests that never enqueued.
	QueueS float64 `json:"queue_s"`
	// PlanS is the wall time the planner spent on the flight; zero for
	// hits and rejections.
	PlanS float64 `json:"plan_s"`
	// ElapsedS is the caller-observed wall time for the whole request.
	ElapsedS float64 `json:"elapsed_s"`
	// Worker is the 1-based id of the worker that ran the flight, or 0
	// when no worker was involved (hits, rejections, malformed requests).
	Worker int `json:"worker"`
	// CacheLen is the cache size after the request completed.
	CacheLen int `json:"cache_len"`
	// Evicted is the number of cache entries this request's landing
	// evicted (0 or 1 under the LRU).
	Evicted int `json:"evicted"`
}

// Strip returns the record with every wall-clock and scheduling field
// zeroed — the deterministic projection golden tests and Diff compare.
func (r Record) Strip() Record {
	r.QueueS = 0
	r.PlanS = 0
	r.ElapsedS = 0
	r.Worker = 0
	return r
}

// Read parses an op-log stream written by a Writer: the header line
// followed by zero or more records. Blank lines are tolerated.
func Read(r io.Reader) (Header, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Header{}, nil, err
		}
		return Header{}, nil, fmt.Errorf("oplog: empty stream")
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return Header{}, nil, fmt.Errorf("oplog: bad header: %w", err)
	}
	if hdr.Schema != Schema {
		return Header{}, nil, fmt.Errorf("oplog: schema %q, want %q", hdr.Schema, Schema)
	}
	var recs []Record
	for line := 1; sc.Scan(); line++ {
		if len(strings.TrimSpace(string(sc.Bytes()))) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return hdr, recs, fmt.Errorf("oplog: record %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	return hdr, recs, sc.Err()
}

// ReadFile is Read over a file path.
func ReadFile(path string) (Header, []Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer func() { _ = f.Close() }() // read-only; close cannot lose data
	return Read(f)
}
