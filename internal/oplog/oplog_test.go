package oplog

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		disp := DispMiss
		if i%2 == 1 {
			disp = DispHit
		}
		recs[i] = Record{
			Seq:      int64(i + 1),
			Key:      fmt.Sprintf("key-%d", i%3),
			Disp:     disp,
			Status:   200,
			QueueS:   float64(i) * 0.001,
			PlanS:    float64(i) * 0.01,
			ElapsedS: float64(i+1) * 0.1,
			Worker:   1 + i%2,
			CacheLen: i + 1,
			Evicted:  i % 2,
		}
	}
	return recs
}

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0, false)
	want := sampleRecords(5)
	for _, r := range want {
		if !w.Record(r) {
			t.Fatalf("Record(%d) dropped with an empty buffer", r.Seq)
		}
	}
	if err := w.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	hdr, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != Schema || hdr.Strip {
		t.Fatalf("header = %+v", hdr)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if w.Accepted() != 5 || w.Dropped() != 0 {
		t.Errorf("accepted/dropped = %d/%d, want 5/0", w.Accepted(), w.Dropped())
	}
}

func TestWriterStripMode(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0, true)
	for _, r := range sampleRecords(3) {
		w.Record(r)
	}
	if err := w.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	stream := buf.String()
	hdr, recs, err := Read(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.Strip {
		t.Error("stripped stream header lacks strip marker")
	}
	for i, r := range recs {
		if r.QueueS != 0 || r.PlanS != 0 || r.ElapsedS != 0 || r.Worker != 0 {
			t.Errorf("record %d kept wall/scheduling fields: %+v", i, r)
		}
		if r.Seq != int64(i+1) || r.Disp == "" || r.CacheLen == 0 && i > 0 {
			t.Errorf("record %d lost deterministic fields: %+v", i, r)
		}
	}
	if !strings.Contains(stream, `"queue_s":0`) {
		t.Error("stripped stream should still carry zeroed wall fields for a stable schema")
	}
}

// gatedSink blocks every Write until the gate is opened, then appends to
// an internal buffer. It simulates a stalled log sink.
type gatedSink struct {
	gate chan struct{}
	mu   sync.Mutex
	buf  bytes.Buffer
}

func (g *gatedSink) Write(p []byte) (int, error) {
	<-g.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

// TestWriterStalledSinkDropsNeverBlocks is the backpressure contract:
// with the sink wedged on the header write, producers get exactly the
// buffer capacity accepted and everything beyond dropped, without a
// single blocked Record call.
func TestWriterStalledSinkDropsNeverBlocks(t *testing.T) {
	sink := &gatedSink{gate: make(chan struct{})}
	w := NewWriter(sink, 4, false)
	recs := sampleRecords(10)
	accepted := 0
	for _, r := range recs {
		if w.Record(r) {
			accepted++
		}
	}
	if accepted != 4 || w.Dropped() != 6 {
		t.Fatalf("accepted/dropped = %d/%d, want 4/6", accepted, w.Dropped())
	}

	// A Close against the still-stalled sink must respect its context.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	err := w.Close(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close on stalled sink = %v, want deadline exceeded", err)
	}

	// Unwedge the sink: the accepted records drain.
	close(sink.gate)
	if err := w.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	stream := sink.buf.String()
	sink.mu.Unlock()
	_, got, err := Read(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("drained %d records, want the 4 accepted", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestWriterRecordAfterCloseIsDropNotPanic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 2, false)
	if err := w.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w.Record(Record{Seq: 1, Disp: DispHit}) {
		t.Error("record accepted after Close; want deterministic drop")
	}
	if w.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", w.Dropped())
	}
	if err := w.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

type failingSink struct{ n int }

func (f *failingSink) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 { // header succeeds, first record fails
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriterSinkErrorIsSticky(t *testing.T) {
	w := NewWriter(&failingSink{}, 0, false)
	for _, r := range sampleRecords(3) {
		w.Record(r)
	}
	err := w.Close(context.Background())
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close = %v, want sink error", err)
	}
	if w.Err() == nil {
		t.Error("Err() lost the sink error")
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Seq: 1, Key: "a", Disp: DispMiss, ElapsedS: 0.4},
		{Seq: 2, Key: "a", Disp: DispHit, ElapsedS: 0.1},
		{Seq: 3, Key: "b", Disp: DispHit, ElapsedS: 0.2},
		{Seq: 4, Key: "c", Disp: DispRejected, Status: 503, ElapsedS: 0.05},
		{Seq: 5, Key: "a", Disp: DispHit, ElapsedS: 0.3},
	}
	s := Summarize(recs, 2)
	if s.Records != 5 {
		t.Errorf("Records = %d", s.Records)
	}
	if s.ByDisp[DispHit] != 3 || s.ByDisp[DispMiss] != 1 || s.ByDisp[DispRejected] != 1 {
		t.Errorf("ByDisp = %v", s.ByDisp)
	}
	// Sorted elapsed: 0.05 0.1 0.2 0.3 0.4; nearest-rank p50 = 3rd = 0.2,
	// p90 and p99 = 5th = 0.4.
	if s.P50S != 0.2 || s.P90S != 0.4 || s.P99S != 0.4 {
		t.Errorf("quantiles = %g/%g/%g", s.P50S, s.P90S, s.P99S)
	}
	if len(s.TopKeys) != 2 || s.TopKeys[0] != (KeyCount{Key: "a", Count: 3}) {
		t.Errorf("TopKeys = %v", s.TopKeys)
	}
	// Ties rank lexicographically: b and c both count 1, b wins slot 2.
	if s.TopKeys[1] != (KeyCount{Key: "b", Count: 1}) {
		t.Errorf("TopKeys[1] = %v, want b", s.TopKeys[1])
	}
	empty := Summarize(nil, 3)
	if empty.Records != 0 || empty.P99S != 0 || empty.TopKeys != nil {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestDiffModuloWallFields(t *testing.T) {
	a := sampleRecords(6)
	b := make([]Record, len(a))
	copy(b, a)
	for i := range b {
		// Perturb every wall/scheduling field; the diff must not care.
		b[i].QueueS *= 3
		b[i].PlanS += 0.5
		b[i].ElapsedS += 1
		b[i].Worker = 9
	}
	if d := Diff(a, b); !d.Equal || d.Detail != "" {
		t.Fatalf("wall-only perturbation diffed: %+v", d)
	}

	b[3].Disp = DispCoalesced
	d := Diff(a, b)
	if d.Equal {
		t.Fatal("disposition change not detected")
	}
	if !strings.Contains(d.Detail, "record 3 diverges") {
		t.Errorf("Detail missing first divergence: %q", d.Detail)
	}
	if !strings.Contains(d.Detail, "disposition coalesced: 0 vs 1") {
		t.Errorf("Detail missing disposition delta: %q", d.Detail)
	}

	if d := Diff(a, a[:4]); d.Equal || !strings.Contains(d.Detail, "record counts differ: 6 vs 4") {
		t.Errorf("length mismatch diff = %+v", d)
	}
}

func TestReadRejectsBadStreams(t *testing.T) {
	if _, _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, _, err := Read(strings.NewReader(`{"schema":"bogus/9"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage header accepted")
	}
	stream := `{"schema":"uavdc-oplog/1"}` + "\n\n" + `{"i":1,"disp":"hit","status":200}` + "\n"
	hdr, recs, err := Read(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != Schema || len(recs) != 1 || recs[0].Disp != DispHit {
		t.Errorf("parsed %+v %+v", hdr, recs)
	}
}
