package oplog

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultBuffer is the record-channel capacity a Writer gets when the
// caller passes buffer ≤ 0.
const DefaultBuffer = 1024

// Writer appends Records to a sink as a uavdc-oplog/1 JSONL stream from
// a single background goroutine, decoupled from producers by a bounded
// channel: Record never blocks, and when the channel is full (a slow or
// stalled sink) the record is counted as dropped instead. This is the
// contract that lets the serving layer log on the request path — the
// op-log can lose lines under pressure, but it can never add latency.
//
// The header line is written first, before any record is received, so a
// sink that blocks immediately still leaves producers unharmed: exactly
// the channel capacity is accepted, the rest drop.
type Writer struct {
	records  chan Record
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	strip    bool
	accepted atomic.Int64
	dropped  atomic.Int64

	mu  sync.Mutex
	err error
}

// NewWriter starts the background writer over w. buffer ≤ 0 selects
// DefaultBuffer. When strip is true every record is reduced to its
// deterministic projection (Record.Strip) before encoding and the header
// carries "strip": true.
func NewWriter(w io.Writer, buffer int, strip bool) *Writer {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	ow := &Writer{
		records: make(chan Record, buffer),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		strip:   strip,
	}
	go ow.run(w)
	return ow
}

// Record offers one record to the writer. It never blocks: the return
// value reports whether the record was accepted (false means it was
// dropped because the buffer is full or the writer is stopped and has
// already drained). Safe to call concurrently, and safe after Close —
// late records are counted as dropped, never a panic.
func (w *Writer) Record(rec Record) bool {
	select {
	case <-w.stop:
		w.dropped.Add(1)
		return false
	default:
	}
	select {
	case w.records <- rec:
		w.accepted.Add(1)
		return true
	default:
		w.dropped.Add(1)
		return false
	}
}

// Dropped returns the number of records rejected so far because the
// buffer was full.
func (w *Writer) Dropped() int64 { return w.dropped.Load() }

// Accepted returns the number of records accepted into the buffer so
// far (not necessarily flushed to the sink yet).
func (w *Writer) Accepted() int64 { return w.accepted.Load() }

// Strip reports whether the writer emits deterministic stripped records.
func (w *Writer) Strip() bool { return w.strip }

// Err returns the first sink write error, if any. Once a write fails the
// writer keeps draining (producers stay unblocked) but stops encoding.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close stops the writer, drains every record accepted before the stop,
// and waits for the goroutine to finish or the context to expire. It is
// idempotent; the returned error is the context's or the first sink
// write error.
func (w *Writer) Close(ctx context.Context) error {
	w.stopOnce.Do(func() { close(w.stop) })
	select {
	case <-w.done:
		return w.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (w *Writer) run(sink io.Writer) {
	defer close(w.done)
	enc := json.NewEncoder(sink)
	w.setErr(enc.Encode(Header{Schema: Schema, Strip: w.strip}))
	for {
		select {
		case rec := <-w.records:
			w.write(enc, rec)
		case <-w.stop:
			for {
				select {
				case rec := <-w.records:
					w.write(enc, rec)
				default:
					return
				}
			}
		}
	}
}

func (w *Writer) write(enc *json.Encoder, rec Record) {
	if w.Err() != nil {
		return
	}
	if w.strip {
		rec = rec.Strip()
	}
	w.setErr(enc.Encode(rec))
}

func (w *Writer) setErr(err error) {
	if err == nil {
		return
	}
	w.mu.Lock()
	if w.err == nil {
		w.err = fmt.Errorf("oplog: write: %w", err)
	}
	w.mu.Unlock()
}
