package orienteering

// UpperBound returns a combinatorial upper bound on the optimal reward of
// the instance: any closed tour visiting node v costs at least the round
// trip 2·Cost(depot, v) (triangle inequality), so no node whose round trip
// exceeds the budget can ever be collected, and the sum of the rewards of
// all remaining nodes bounds every feasible tour from above.
//
// The bound is loose on tight budgets but certifiable; tests use it to
// sandwich the heuristics, and experiment reports can quote a provable
// optimality gap of Reward/UpperBound without solving anything.
func UpperBound(p *Problem) float64 {
	if p.Validate() != nil {
		return 0
	}
	var sum float64
	for v := 0; v < p.N; v++ {
		if v == p.Depot {
			continue
		}
		if 2*p.Cost(p.Depot, v) <= p.Budget+1e-9 {
			if r := p.Reward(v); r > 0 {
				sum += r
			}
		}
	}
	return sum
}
