package orienteering

import (
	"fmt"
	"math"
	"math/bits"

	"uavdc/internal/tsp"
)

// ExactMax is the largest node count ExactDP accepts.
const ExactMax = 16

// ExactDP solves the instance optimally by dynamic programming over node
// subsets (Held–Karp with a budget filter): dp[mask][j] is the cheapest
// path that starts at the depot, visits exactly the nodes in mask, and ends
// at j. Every mask whose cheapest depot-closing cycle fits the budget is a
// candidate; the maximum-reward one wins. Exponential — for tests and tiny
// instances only.
func ExactDP(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if p.N > ExactMax {
		return Solution{}, fmt.Errorf("orienteering: exact solver limited to %d nodes, got %d", ExactMax, p.N)
	}
	n := p.N
	d := p.Depot
	size := 1 << n

	// Dense copies of the metric and the rewards: the DP probes them
	// Θ(n²·2ⁿ) times, so per-probe closure indirection dominates the
	// whole solve otherwise. Every entry is the exact float64 the closure
	// returns, keeping the DP's decisions bit-identical.
	cost := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				cost[i*n+j] = p.Cost(i, j)
			}
		}
	}
	// rewardBy[mask] is the reward sum over mask's nodes in ascending-id
	// order; the lowest-bit recurrence adds ids smallest-first, exactly
	// reproducing that summation order.
	reward := make([]float64, n)
	for v := 0; v < n; v++ {
		reward[v] = p.Reward(v)
	}
	rewardBy := make([]float64, size)
	for mask := 1; mask < size; mask++ {
		lsb := mask & -mask
		rewardBy[mask] = reward[bits.TrailingZeros(uint(lsb))] + rewardBy[mask&^lsb]
	}

	// dp[mask·n+j] is the cheapest depot-rooted path over mask ending at
	// j; flat backing arrays keep the whole table at two allocations.
	dp := make([]float64, size*n)
	parent := make([]int8, size*n)
	inf := math.Inf(1)
	for i := range dp {
		dp[i] = inf
		parent[i] = -1
	}
	startMask := 1 << d
	dp[startMask*n+d] = 0

	bestMask, bestEnd := startMask, d
	bestReward := rewardBy[startMask]
	all := size - 1

	for mask := startMask; mask < size; mask++ {
		if mask&startMask == 0 {
			continue
		}
		row := dp[mask*n:]
		// Ends and extensions iterate set/unset bits in ascending id
		// order — the same visit order as scanning 0..n-1 with skips.
		for ends := mask; ends != 0; ends &= ends - 1 {
			j := bits.TrailingZeros(uint(ends))
			cur := row[j]
			if cur == inf { // exact compare: sentinel test, equivalent to math.IsInf on an untouched table entry
				continue
			}
			// Candidate closed tour: path + return edge.
			if cur+cost[j*n+d] <= p.Budget+1e-9 {
				if r := rewardBy[mask]; r > bestReward+1e-12 {
					bestReward, bestMask, bestEnd = r, mask, j
				}
			}
			for rem := all &^ mask; rem != 0; rem &= rem - 1 {
				nxt := bits.TrailingZeros(uint(rem))
				c := cur + cost[j*n+nxt]
				if c > p.Budget { // cannot recover: costs are non-negative
					continue
				}
				nm := mask | 1<<nxt
				if c < dp[nm*n+nxt] {
					dp[nm*n+nxt] = c
					parent[nm*n+nxt] = int8(j)
				}
			}
		}
	}

	// Reconstruct the best path.
	order := []int{}
	mask, j := bestMask, bestEnd
	for j != -1 {
		order = append(order, j)
		pj := parent[mask*n+j]
		mask &^= 1 << j
		j = int(pj)
	}
	// order is end→depot; reverse to depot→end.
	for i, k := 0, len(order)-1; i < k; i, k = i+1, k-1 {
		order[i], order[k] = order[k], order[i]
	}
	sol := p.solutionFor(tsp.Tour{Order: order})
	return sol, nil
}
