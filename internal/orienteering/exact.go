package orienteering

import (
	"fmt"
	"math"

	"uavdc/internal/tsp"
)

// ExactMax is the largest node count ExactDP accepts.
const ExactMax = 16

// ExactDP solves the instance optimally by dynamic programming over node
// subsets (Held–Karp with a budget filter): dp[mask][j] is the cheapest
// path that starts at the depot, visits exactly the nodes in mask, and ends
// at j. Every mask whose cheapest depot-closing cycle fits the budget is a
// candidate; the maximum-reward one wins. Exponential — for tests and tiny
// instances only.
func ExactDP(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if p.N > ExactMax {
		return Solution{}, fmt.Errorf("orienteering: exact solver limited to %d nodes, got %d", ExactMax, p.N)
	}
	n := p.N
	d := p.Depot
	size := 1 << n
	dp := make([][]float64, size)
	parent := make([][]int8, size)
	for mask := range dp {
		dp[mask] = make([]float64, n)
		parent[mask] = make([]int8, n)
		for j := range dp[mask] {
			dp[mask][j] = math.Inf(1)
			parent[mask][j] = -1
		}
	}
	startMask := 1 << d
	dp[startMask][d] = 0

	rewardOf := func(mask int) float64 {
		var r float64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				r += p.Reward(v)
			}
		}
		return r
	}

	bestMask, bestEnd := startMask, d
	bestReward := rewardOf(startMask)

	for mask := startMask; mask < size; mask++ {
		if mask&startMask == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			cur := dp[mask][j]
			if math.IsInf(cur, 1) || mask&(1<<j) == 0 {
				continue
			}
			// Candidate closed tour: path + return edge.
			if cur+p.Cost(j, d) <= p.Budget+1e-9 {
				if r := rewardOf(mask); r > bestReward+1e-12 {
					bestReward, bestMask, bestEnd = r, mask, j
				}
			}
			for nxt := 0; nxt < n; nxt++ {
				if mask&(1<<nxt) != 0 {
					continue
				}
				c := cur + p.Cost(j, nxt)
				if c > p.Budget { // cannot recover: costs are non-negative
					continue
				}
				nm := mask | 1<<nxt
				if c < dp[nm][nxt] {
					dp[nm][nxt] = c
					parent[nm][nxt] = int8(j)
				}
			}
		}
	}

	// Reconstruct the best path.
	order := []int{}
	mask, j := bestMask, bestEnd
	for j != -1 {
		order = append(order, j)
		pj := parent[mask][j]
		mask &^= 1 << j
		j = int(pj)
	}
	// order is end→depot; reverse to depot→end.
	for i, k := 0, len(order)-1; i < k; i, k = i+1, k-1 {
		order[i], order[k] = order[k], order[i]
	}
	sol := p.solutionFor(tsp.Tour{Order: order})
	return sol, nil
}
