package orienteering

import (
	"math"
	"math/rand"

	"uavdc/internal/tsp"
)

// GRASPOptions tunes the randomized multi-start solver.
type GRASPOptions struct {
	// Restarts is the number of randomized constructions (default 16).
	Restarts int
	// RCLSize is the restricted candidate list size: each step picks
	// uniformly among the RCLSize best-ratio insertions instead of the
	// single best (default 3). 1 reduces to deterministic greedy.
	RCLSize int
	// Seed drives all randomness; runs are reproducible.
	Seed int64
}

// GRASP runs greedy randomized adaptive search: Restarts randomized
// ratio-greedy constructions, each polished by LocalSearch, best kept.
// Plain greedy commits to the globally best ratio at every step and can
// be trapped by an early cheap node; sampling among the top few escapes
// that basin at the cost of extra restarts. Deterministic under Seed.
func GRASP(p *Problem, opts GRASPOptions) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 16
	}
	rcl := opts.RCLSize
	if rcl <= 0 {
		rcl = 3
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	best, err := GreedyRatio(p)
	if err != nil {
		return Solution{}, err
	}
	best = LocalSearch(p, best, 0)
	for r := 0; r < restarts; r++ {
		cand := randomizedConstruct(p, rcl, rng)
		cand = LocalSearch(p, cand, 0)
		if cand.Reward > best.Reward+1e-12 {
			best = cand
		}
	}
	return best, nil
}

// rclEntry is one feasible insertion candidate.
type rclEntry struct {
	node  int
	pos   int
	delta float64
	ratio float64
}

// randomizedConstruct is GreedyRatio with an RCL draw at each step.
func randomizedConstruct(p *Problem, rcl int, rng *rand.Rand) Solution {
	tour := tsp.Tour{Order: []int{p.Depot}}
	cost := 0.0
	in := make([]bool, p.N)
	in[p.Depot] = true
	for {
		var entries []rclEntry
		for v := 0; v < p.N; v++ {
			if in[v] || p.Reward(v) <= 0 {
				continue
			}
			pos, delta := tsp.BestInsertion(tour, v, p.Cost)
			if cost+delta > p.Budget+1e-12 {
				continue
			}
			ratio := math.Inf(1)
			if delta > 1e-12 {
				ratio = p.Reward(v) / delta
			}
			entries = append(entries, rclEntry{node: v, pos: pos, delta: delta, ratio: ratio})
		}
		if len(entries) == 0 {
			break
		}
		// Partial selection of the top-rcl ratios.
		limit := rcl
		if limit > len(entries) {
			limit = len(entries)
		}
		for i := 0; i < limit; i++ {
			top := i
			for j := i + 1; j < len(entries); j++ {
				if entries[j].ratio > entries[top].ratio {
					top = j
				}
			}
			entries[i], entries[top] = entries[top], entries[i]
		}
		pick := entries[rng.Intn(limit)]
		tour = tsp.Insert(tour, pick.node, pick.pos)
		cost += pick.delta
		in[pick.node] = true
		if tour.Len()%8 == 0 {
			tsp.Improve(&tour, p.Cost)
			cost = tour.Cost(p.Cost)
		}
	}
	tsp.Improve(&tour, p.Cost)
	return p.solutionFor(tour)
}
