package orienteering

import "testing"

func TestGRASPNeverBelowGreedy(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p, _ := randomProblem(25, 180, 400+seed)
		greedy, err := Solve(p, MethodGreedy)
		if err != nil {
			t.Fatal(err)
		}
		grasp, err := GRASP(p, GRASPOptions{Restarts: 12, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Feasible(grasp.Tour); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if grasp.Reward < greedy.Reward-1e-9 {
			t.Errorf("seed %d: GRASP %v below greedy %v", seed, grasp.Reward, greedy.Reward)
		}
		if ub := UpperBound(p); grasp.Reward > ub+1e-9 {
			t.Errorf("seed %d: GRASP beat the upper bound", seed)
		}
	}
}

func TestGRASPDeterministic(t *testing.T) {
	p, _ := randomProblem(20, 150, 9)
	a, err := GRASP(p, GRASPOptions{Restarts: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GRASP(p, GRASPOptions{Restarts: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Reward != b.Reward {
		t.Error("same seed, different rewards")
	}
}

func TestGRASPNeverBeatsExact(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p, _ := randomProblem(9, 140, 500+seed)
		opt, err := ExactDP(p)
		if err != nil {
			t.Fatal(err)
		}
		grasp, err := GRASP(p, GRASPOptions{Restarts: 20, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if grasp.Reward > opt.Reward+1e-9 {
			t.Fatalf("seed %d: GRASP %v beat optimum %v", seed, grasp.Reward, opt.Reward)
		}
		if grasp.Reward < opt.Reward*0.8 {
			t.Errorf("seed %d: GRASP %v below 80%% of optimum %v", seed, grasp.Reward, opt.Reward)
		}
	}
}

func TestGRASPDefaultsAndErrors(t *testing.T) {
	p, _ := randomProblem(10, 120, 3)
	sol, err := GRASP(p, GRASPOptions{}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(sol.Tour); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.N = 0
	if _, err := GRASP(&bad, GRASPOptions{}); err == nil {
		t.Error("invalid instance accepted")
	}
}
