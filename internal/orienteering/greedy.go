package orienteering

import (
	"math"

	"uavdc/internal/tsp"
)

// GreedyRatio builds a feasible tour by repeatedly inserting the node with
// the best reward-per-marginal-cost ratio at its cheapest insertion
// position, as long as the budget allows. Ties favour higher absolute
// reward. This mirrors the ρ-ratio selection rule of the paper's
// Algorithm 2, applied to a generic orienteering instance.
func GreedyRatio(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	tour := tsp.Tour{Order: []int{p.Depot}}
	cost := 0.0
	in := make([]bool, p.N)
	in[p.Depot] = true
	for {
		bestNode, bestPos := -1, 0
		bestRatio, bestReward := -1.0, 0.0
		var bestDelta float64
		for v := 0; v < p.N; v++ {
			if in[v] {
				continue
			}
			r := p.Reward(v)
			if r <= 0 {
				continue // zero-award node can never help a max-reward tour
			}
			pos, delta := tsp.BestInsertion(tour, v, p.Cost)
			if cost+delta > p.Budget+1e-12 {
				continue
			}
			var ratio float64
			if delta <= 1e-12 {
				ratio = math.Inf(1)
			} else {
				ratio = r / delta
			}
			if ratio > bestRatio || (ratio == bestRatio && r > bestReward) {
				bestNode, bestPos, bestDelta = v, pos, delta
				bestRatio, bestReward = ratio, r
			}
		}
		if bestNode < 0 {
			break
		}
		tour = tsp.Insert(tour, bestNode, bestPos)
		cost += bestDelta
		in[bestNode] = true
		// Periodically re-optimise the tour order to free budget for
		// further insertions; always keeps the tour feasible because
		// local search never increases cost.
		if tour.Len()%8 == 0 {
			tsp.Improve(&tour, p.Cost)
			cost = tour.Cost(p.Cost)
		}
	}
	tsp.Improve(&tour, p.Cost)
	return p.solutionFor(tour), nil
}
