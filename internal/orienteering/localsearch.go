package orienteering

import (
	"math"

	"uavdc/internal/tsp"
)

// LocalSearch improves a feasible starting solution by budget-respecting
// moves until a fixed point:
//
//   - add: insert the best-ratio uncovered node if it fits;
//   - swap: replace one tour node with one outside node when that raises
//     reward without breaking the budget;
//   - drop+refill: remove the tour node with the worst reward-per-cost
//     contribution when the freed budget lets two or more better nodes in
//     (evaluated greedily);
//   - polish: 2-opt/Or-opt re-ordering, which only frees budget.
//
// The depot is never removed. The result's reward is ≥ the input's.
func LocalSearch(p *Problem, start Solution, maxIters int) Solution {
	cur := start
	if maxIters <= 0 {
		maxIters = 64
	}
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		// Polish ordering first so budget headroom is maximal.
		t := cur.Tour.Clone()
		if tsp.Improve(&t, p.Cost) > 1e-12 {
			cur = p.solutionFor(t)
		}

		in := make([]bool, p.N)
		for _, v := range cur.Tour.Order {
			in[v] = true
		}

		// Move 1: add.
		for {
			bestV, bestPos, bestDelta, bestRatio := -1, 0, 0.0, -1.0
			for v := 0; v < p.N; v++ {
				if in[v] || p.Reward(v) <= 0 {
					continue
				}
				pos, delta := tsp.BestInsertion(cur.Tour, v, p.Cost)
				if cur.Cost+delta > p.Budget+1e-12 {
					continue
				}
				ratio := math.Inf(1)
				if delta > 1e-12 {
					ratio = p.Reward(v) / delta
				}
				if ratio > bestRatio {
					bestV, bestPos, bestDelta, bestRatio = v, pos, delta, ratio
				}
			}
			if bestV < 0 {
				break
			}
			cur.Tour = tsp.Insert(cur.Tour, bestV, bestPos)
			cur.Cost += bestDelta
			cur.Reward += p.Reward(bestV)
			in[bestV] = true
			improved = true
		}

		// Move 2: single swap in/out.
		swapDone := false
		for _, out := range append([]int(nil), cur.Tour.Order...) {
			if out == p.Depot {
				continue
			}
			removed, dec := tsp.Remove(cur.Tour, out, p.Cost)
			baseCost := cur.Cost - dec
			for v := 0; v < p.N && !swapDone; v++ {
				if in[v] || p.Reward(v) <= p.Reward(out) {
					continue
				}
				pos, inc := tsp.BestInsertion(removed, v, p.Cost)
				if baseCost+inc <= p.Budget+1e-12 {
					cur.Tour = tsp.Insert(removed, v, pos)
					cur.Cost = baseCost + inc
					cur.Reward += p.Reward(v) - p.Reward(out)
					in[v], in[out] = true, false
					improved, swapDone = true, true
				}
			}
			if swapDone {
				break
			}
		}

		// Move 3: drop + refill. Evict one node and greedily repack the
		// freed budget; keep the result only when total reward rises.
		if !improved {
			for _, out := range append([]int(nil), cur.Tour.Order...) {
				if out == p.Depot {
					continue
				}
				trial, _ := tsp.Remove(cur.Tour, out, p.Cost)
				tsp.Improve(&trial, p.Cost)
				cand := p.solutionFor(trial)
				cand = greedyFill(p, cand, out)
				if cand.Reward > cur.Reward+1e-9 {
					cur = cand
					improved = true
					break
				}
			}
		}

		if !improved {
			break
		}
	}
	// Defensive: never return an infeasible or worse-than-start solution.
	if p.Feasible(cur.Tour) != nil || cur.Reward < start.Reward {
		return start
	}
	return cur
}

// greedyFill packs nodes into sol by best reward-per-delta ratio while the
// budget allows, excluding the given node (so drop+refill cannot trivially
// undo its own eviction before trying alternatives).
func greedyFill(p *Problem, sol Solution, exclude int) Solution {
	in := make([]bool, p.N)
	for _, v := range sol.Tour.Order {
		in[v] = true
	}
	for {
		bestV, bestPos, bestDelta, bestRatio := -1, 0, 0.0, -1.0
		for v := 0; v < p.N; v++ {
			if in[v] || v == exclude || p.Reward(v) <= 0 {
				continue
			}
			pos, delta := tsp.BestInsertion(sol.Tour, v, p.Cost)
			if sol.Cost+delta > p.Budget+1e-12 {
				continue
			}
			ratio := math.Inf(1)
			if delta > 1e-12 {
				ratio = p.Reward(v) / delta
			}
			if ratio > bestRatio {
				bestV, bestPos, bestDelta, bestRatio = v, pos, delta, ratio
			}
		}
		if bestV < 0 {
			break
		}
		sol.Tour = tsp.Insert(sol.Tour, bestV, bestPos)
		sol.Cost += bestDelta
		sol.Reward += p.Reward(bestV)
		in[bestV] = true
	}
	// Last chance: if the excluded node still fits after repacking, take
	// it back too.
	if !in[exclude] && p.Reward(exclude) > 0 {
		pos, delta := tsp.BestInsertion(sol.Tour, exclude, p.Cost)
		if sol.Cost+delta <= p.Budget+1e-12 {
			sol.Tour = tsp.Insert(sol.Tour, exclude, pos)
			sol.Cost += delta
			sol.Reward += p.Reward(exclude)
		}
	}
	return sol
}
