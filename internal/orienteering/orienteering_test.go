package orienteering

import (
	"math"
	"math/rand"
	"testing"

	"uavdc/internal/geom"
	"uavdc/internal/tsp"
)

// randomProblem builds a Euclidean instance with uniform random rewards.
func randomProblem(n int, budget float64, seed int64) (*Problem, []geom.Point) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	rewards := make([]float64, n)
	for i := 1; i < n; i++ {
		rewards[i] = 1 + rng.Float64()*9
	}
	p := &Problem{
		N:      n,
		Cost:   func(i, j int) float64 { return pts[i].Dist(pts[j]) },
		Reward: func(i int) float64 { return rewards[i] },
		Budget: budget,
		Depot:  0,
	}
	return p, pts
}

func TestValidate(t *testing.T) {
	p, _ := randomProblem(5, 100, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.N = 0
	if bad.Validate() == nil {
		t.Error("N=0 accepted")
	}
	bad = *p
	bad.Depot = 5
	if bad.Validate() == nil {
		t.Error("depot out of range accepted")
	}
	bad = *p
	bad.Budget = -1
	if bad.Validate() == nil {
		t.Error("negative budget accepted")
	}
	bad = *p
	bad.Cost = nil
	if bad.Validate() == nil {
		t.Error("nil cost accepted")
	}
}

func TestFeasible(t *testing.T) {
	p, _ := randomProblem(6, 1000, 2)
	good := tsp.Tour{Order: []int{0, 1, 2}}
	if err := p.Feasible(good); err != nil {
		t.Errorf("feasible tour rejected: %v", err)
	}
	if p.Feasible(tsp.Tour{Order: []int{1, 2}}) == nil {
		t.Error("tour missing depot accepted")
	}
	if p.Feasible(tsp.Tour{Order: []int{0, 1, 1}}) == nil {
		t.Error("duplicate visit accepted")
	}
	if p.Feasible(tsp.Tour{Order: []int{0, 7}}) == nil {
		t.Error("out-of-range node accepted")
	}
	tight := *p
	tight.Budget = 0.1
	if tight.Feasible(good) == nil {
		t.Error("over-budget tour accepted")
	}
}

func TestExactDPDegenerate(t *testing.T) {
	p, _ := randomProblem(1, 10, 3)
	sol, err := ExactDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Reward != 0 || sol.Tour.Len() != 1 {
		t.Errorf("depot-only expected, got %+v", sol)
	}
	// Zero budget: must stay at depot.
	p2, _ := randomProblem(8, 0, 4)
	sol, err = ExactDP(p2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Tour.Len() != 1 || sol.Cost != 0 {
		t.Errorf("zero budget must give depot-only, got %+v", sol)
	}
	// Too large.
	p3, _ := randomProblem(ExactMax+1, 10, 5)
	if _, err := ExactDP(p3); err == nil {
		t.Error("oversize instance accepted")
	}
}

func TestExactDPHugeBudgetTakesAll(t *testing.T) {
	p, _ := randomProblem(9, 1e9, 6)
	sol, err := ExactDP(p)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for v := 0; v < p.N; v++ {
		want += p.Reward(v)
	}
	if math.Abs(sol.Reward-want) > 1e-9 {
		t.Errorf("huge budget reward %v, want all %v", sol.Reward, want)
	}
	if err := p.Feasible(sol.Tour); err != nil {
		t.Error(err)
	}
}

// bruteForce enumerates all subsets and permutations (n ≤ 8) for a true
// optimum independent of the DP.
func bruteForce(p *Problem) float64 {
	n := p.N
	best := 0.0
	var rec func(order []int, used []bool)
	rec = func(order []int, used []bool) {
		t := tsp.Tour{Order: order}
		if t.Cost(p.Cost) <= p.Budget+1e-9 {
			if r := p.TotalReward(t); r > best {
				best = r
			}
		}
		for v := 0; v < n; v++ {
			if !used[v] {
				used[v] = true
				rec(append(order, v), used)
				used[v] = false
			}
		}
	}
	used := make([]bool, n)
	used[p.Depot] = true
	rec([]int{p.Depot}, used)
	return best
}

func TestExactDPVsBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, budget := range []float64{50, 120, 250, 400} {
			p, _ := randomProblem(6, budget, seed*7+11)
			sol, err := ExactDP(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Feasible(sol.Tour); err != nil {
				t.Fatalf("seed=%d budget=%v: %v", seed, budget, err)
			}
			want := bruteForce(p)
			if math.Abs(sol.Reward-want) > 1e-9 {
				t.Errorf("seed=%d budget=%v: DP %v, brute %v", seed, budget, sol.Reward, want)
			}
		}
	}
}

func TestHeuristicsFeasibleAndBounded(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, budget := range []float64{60, 150, 300} {
			p, _ := randomProblem(10, budget, 100+seed)
			opt, err := ExactDP(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, method := range []Method{MethodGreedy, MethodTourSplit, MethodGRASP} {
				sol, err := Solve(p, method)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Feasible(sol.Tour); err != nil {
					t.Fatalf("%v seed=%d budget=%v: %v", method, seed, budget, err)
				}
				if sol.Reward > opt.Reward+1e-9 {
					t.Fatalf("%v beat the optimum: %v > %v", method, sol.Reward, opt.Reward)
				}
				// Quality floor: the cited algorithm is a 3-approximation;
				// our heuristics should do at least that well on these
				// small Euclidean instances.
				if sol.Reward < opt.Reward/3-1e-9 {
					t.Errorf("%v seed=%d budget=%v: reward %v below opt/3 (%v)", method, seed, budget, sol.Reward, opt.Reward/3)
				}
			}
		}
	}
}

func TestSolveAutoUsesExactWhenSmall(t *testing.T) {
	p, _ := randomProblem(8, 200, 42)
	auto, err := Solve(p, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Reward != exact.Reward {
		t.Errorf("auto %v != exact %v", auto.Reward, exact.Reward)
	}
}

func TestSolveAutoLarge(t *testing.T) {
	p, _ := randomProblem(60, 300, 9)
	sol, err := Solve(p, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(sol.Tour); err != nil {
		t.Fatal(err)
	}
	if sol.Reward <= 0 {
		t.Error("large instance with generous budget should collect something")
	}
}

func TestSolveUnknownMethod(t *testing.T) {
	p, _ := randomProblem(5, 100, 1)
	if _, err := Solve(p, Method(99)); err == nil {
		t.Error("unknown method accepted")
	}
	if Method(99).String() == "" {
		t.Error("String for unknown method empty")
	}
	for _, m := range []Method{MethodAuto, MethodExact, MethodGreedy, MethodTourSplit, MethodGRASP} {
		if m.String() == "" {
			t.Errorf("empty String for %d", int(m))
		}
	}
}

func TestTourSplitFullBudgetTakesEverything(t *testing.T) {
	p, _ := randomProblem(25, 1e9, 77)
	sol, err := TourSplit(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Tour.Len() != p.N {
		t.Errorf("with unlimited budget tour should include all %d nodes, got %d", p.N, sol.Tour.Len())
	}
}

func TestTourSplitZeroRewards(t *testing.T) {
	p, _ := randomProblem(10, 100, 5)
	zero := *p
	zero.Reward = func(int) float64 { return 0 }
	sol, err := TourSplit(&zero)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Tour.Len() != 1 || sol.Reward != 0 {
		t.Errorf("all-zero rewards should give depot-only, got %+v", sol)
	}
}

func TestLocalSearchNeverWorsens(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p, _ := randomProblem(30, 200, 200+seed)
		start, err := GreedyRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		out := LocalSearch(p, start, 0)
		if out.Reward < start.Reward-1e-9 {
			t.Errorf("seed %d: local search lowered reward %v → %v", seed, start.Reward, out.Reward)
		}
		if err := p.Feasible(out.Tour); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestLocalSearchDropRefill builds an instance where the starting tour
// holds one low-reward node whose round trip eats the whole budget; the
// drop+refill move must evict it in favour of a cluster of high-reward
// nodes on the other side.
func TestLocalSearchDropRefill(t *testing.T) {
	// Node 0: depot at origin. Node 1: reward 1 at (50, 0).
	// Nodes 2-4: reward 10 each, clustered near (-30, 0).
	pts := []geom.Point{
		geom.Pt(0, 0),
		geom.Pt(50, 0),
		geom.Pt(-30, 0),
		geom.Pt(-31, 0),
		geom.Pt(-32, 0),
	}
	rewards := []float64{0, 1, 10, 10, 10}
	p := &Problem{
		N:      5,
		Cost:   func(i, j int) float64 { return pts[i].Dist(pts[j]) },
		Reward: func(i int) float64 { return rewards[i] },
		Budget: 100, // fits depot→1→depot (100) or depot→cluster→depot (~64), not both
		Depot:  0,
	}
	start := p.solutionFor(tsp.Tour{Order: []int{0, 1}})
	if err := p.Feasible(start.Tour); err != nil {
		t.Fatal(err)
	}
	out := LocalSearch(p, start, 0)
	if out.Reward < 30 {
		t.Errorf("drop+refill should reach the cluster: reward %v, tour %v", out.Reward, out.Tour.Order)
	}
	if err := p.Feasible(out.Tour); err != nil {
		t.Error(err)
	}
}

func TestGreedyRatioRespectsTightBudget(t *testing.T) {
	p, pts := randomProblem(20, 0, 31)
	sol, err := GreedyRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Tour.Len() != 1 {
		t.Errorf("zero budget: tour %v", sol.Tour.Order)
	}
	// Budget exactly one round trip to the nearest node.
	nearest, d := -1, math.Inf(1)
	for i := 1; i < p.N; i++ {
		if dd := pts[0].Dist(pts[i]); dd < d {
			nearest, d = i, dd
		}
	}
	p.Budget = 2 * d
	sol, err = GreedyRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(sol.Tour); err != nil {
		t.Fatal(err)
	}
	if sol.Tour.Len() > 2 {
		t.Errorf("budget for one node, visited %d", sol.Tour.Len()-1)
	}
	_ = nearest
}

func BenchmarkSolveAuto60(b *testing.B) {
	p, _ := randomProblem(60, 300, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, MethodAuto); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUpperBoundDominatesAllSolvers(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, budget := range []float64{60, 150, 400} {
			p, _ := randomProblem(10, budget, 300+seed)
			ub := UpperBound(p)
			opt, err := ExactDP(p)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Reward > ub+1e-9 {
				t.Fatalf("seed=%d budget=%v: optimum %v above upper bound %v", seed, budget, opt.Reward, ub)
			}
			for _, m := range []Method{MethodGreedy, MethodTourSplit} {
				sol, err := Solve(p, m)
				if err != nil {
					t.Fatal(err)
				}
				if sol.Reward > ub+1e-9 {
					t.Fatalf("%v beat the upper bound", m)
				}
			}
		}
	}
}

func TestUpperBoundTightWhenBudgetHuge(t *testing.T) {
	p, _ := randomProblem(12, 1e9, 5)
	var all float64
	for v := 0; v < p.N; v++ {
		all += p.Reward(v)
	}
	if ub := UpperBound(p); ub != all {
		t.Errorf("huge budget bound %v, want %v", ub, all)
	}
	bad := *p
	bad.N = 0
	if UpperBound(&bad) != 0 {
		t.Error("invalid instance should bound to 0")
	}
}
