package orienteering

import (
	"fmt"
	"math"

	"uavdc/internal/tsp"
)

// PathProblem is rooted point-to-point orienteering: find a simple path
// from Start to End maximising collected reward subject to the budget.
// Algorithm 1 of the paper is phrased in exactly this form — it duplicates
// the depot into a dummy d′ and asks for a best d→d′ path in the auxiliary
// graph, which is a closed tour of the original graph. The cycle solvers in
// this package are the d = d′ special case; this file provides the general
// form plus the dummy-depot reduction, and the tests prove the two
// formulations coincide.
type PathProblem struct {
	N      int
	Cost   tsp.Metric
	Reward func(i int) float64
	Budget float64
	Start  int
	End    int
}

// Validate reports whether the instance is well formed.
func (p *PathProblem) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("orienteering: need at least one node, got %d", p.N)
	}
	if p.Start < 0 || p.Start >= p.N || p.End < 0 || p.End >= p.N {
		return fmt.Errorf("orienteering: endpoints %d,%d out of range [0,%d)", p.Start, p.End, p.N)
	}
	if p.Cost == nil || p.Reward == nil {
		return fmt.Errorf("orienteering: Cost and Reward must be non-nil")
	}
	if math.IsNaN(p.Budget) || p.Budget < 0 {
		return fmt.Errorf("orienteering: invalid budget %v", p.Budget)
	}
	return nil
}

// PathSolution is a feasible open path and its reward.
type PathSolution struct {
	// Order is the node sequence from Start to End inclusive.
	Order  []int
	Reward float64
	Cost   float64
}

// pathCost returns the open-path cost of order under m.
func pathCost(order []int, m tsp.Metric) float64 {
	var sum float64
	for i := 1; i < len(order); i++ {
		sum += m(order[i-1], order[i])
	}
	return sum
}

// FeasiblePath checks endpoint anchoring, distinct visits and the budget.
func (p *PathProblem) FeasiblePath(order []int) error {
	if len(order) == 0 || order[0] != p.Start || order[len(order)-1] != p.End {
		return fmt.Errorf("orienteering: path must run %d→%d", p.Start, p.End)
	}
	seen := map[int]bool{}
	for _, v := range order {
		if v < 0 || v >= p.N {
			return fmt.Errorf("orienteering: node %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("orienteering: node %d visited twice", v)
		}
		seen[v] = true
	}
	if c := pathCost(order, p.Cost); c > p.Budget+1e-9 {
		return fmt.Errorf("orienteering: path cost %v exceeds budget %v", c, p.Budget)
	}
	return nil
}

// ExactPathDP solves point-to-point orienteering optimally by the
// Held–Karp subset DP with a budget filter (N ≤ ExactMax). With
// Start == End it degenerates to the cycle solver's objective.
func ExactPathDP(p *PathProblem) (PathSolution, error) {
	if err := p.Validate(); err != nil {
		return PathSolution{}, err
	}
	if p.N > ExactMax {
		return PathSolution{}, fmt.Errorf("orienteering: exact solver limited to %d nodes, got %d", ExactMax, p.N)
	}
	if p.Start == p.End {
		// Delegate: a closed tour is the same object.
		sol, err := ExactDP(&Problem{N: p.N, Cost: p.Cost, Reward: p.Reward, Budget: p.Budget, Depot: p.Start})
		if err != nil {
			return PathSolution{}, err
		}
		sol.Tour.RotateTo(p.Start)
		order := append(append([]int(nil), sol.Tour.Order...), p.Start)
		if len(order) == 2 { // depot-only cycle: keep the trivial path
			order = []int{p.Start}
			if p.Start != p.End {
				order = append(order, p.End)
			}
		}
		return PathSolution{Order: order, Reward: sol.Reward, Cost: sol.Cost}, nil
	}

	n := p.N
	size := 1 << n
	dp := make([][]float64, size)
	parent := make([][]int8, size)
	for mask := range dp {
		dp[mask] = make([]float64, n)
		parent[mask] = make([]int8, n)
		for j := range dp[mask] {
			dp[mask][j] = math.Inf(1)
			parent[mask][j] = -1
		}
	}
	startMask := 1 << p.Start
	dp[startMask][p.Start] = 0
	rewardOf := func(mask int) float64 {
		var r float64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				r += p.Reward(v)
			}
		}
		return r
	}
	bestReward := math.Inf(-1)
	bestMask, bestEnd := 0, -1
	consider := func(mask, j int, extra float64) {
		if dp[mask][j]+extra <= p.Budget+1e-9 {
			full := mask
			if full&(1<<p.End) == 0 {
				full |= 1 << p.End
			}
			if r := rewardOf(full); r > bestReward+1e-12 {
				bestReward, bestMask, bestEnd = r, mask, j
			}
		}
	}
	for mask := startMask; mask < size; mask++ {
		if mask&startMask == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			cur := dp[mask][j]
			if math.IsInf(cur, 1) || mask&(1<<j) == 0 {
				continue
			}
			if j == p.End {
				consider(mask, j, 0)
			} else {
				consider(mask, j, p.Cost(j, p.End))
			}
			for nxt := 0; nxt < n; nxt++ {
				if mask&(1<<nxt) != 0 {
					continue
				}
				c := cur + p.Cost(j, nxt)
				if c > p.Budget {
					continue
				}
				nm := mask | 1<<nxt
				if c < dp[nm][nxt] {
					dp[nm][nxt] = c
					parent[nm][nxt] = int8(j)
				}
			}
		}
	}
	if bestEnd < 0 {
		// Even Start→End direct exceeds the budget; the only feasible
		// "path" is staying put, which the problem shape does not admit.
		return PathSolution{}, fmt.Errorf("orienteering: no %d→%d path fits budget %v", p.Start, p.End, p.Budget)
	}
	// Reconstruct.
	var rev []int
	mask, j := bestMask, bestEnd
	for j != -1 {
		rev = append(rev, j)
		pj := parent[mask][j]
		mask &^= 1 << j
		j = int(pj)
	}
	order := make([]int, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		order = append(order, rev[i])
	}
	if order[len(order)-1] != p.End {
		order = append(order, p.End)
	}
	return PathSolution{Order: order, Reward: bestReward, Cost: pathCost(order, p.Cost)}, nil
}

// GreedyPath builds a feasible Start→End path by best-ratio insertion,
// mirroring GreedyRatio for the open-path objective.
func GreedyPath(p *PathProblem) (PathSolution, error) {
	if err := p.Validate(); err != nil {
		return PathSolution{}, err
	}
	order := []int{p.Start}
	if p.End != p.Start {
		if p.Cost(p.Start, p.End) > p.Budget+1e-9 {
			return PathSolution{}, fmt.Errorf("orienteering: no %d→%d path fits budget %v", p.Start, p.End, p.Budget)
		}
		order = append(order, p.End)
	}
	in := make([]bool, p.N)
	for _, v := range order {
		in[v] = true
	}
	cost := pathCost(order, p.Cost)
	for {
		bestV, bestPos := -1, 0
		bestRatio, bestDelta := -1.0, 0.0
		for v := 0; v < p.N; v++ {
			if in[v] || p.Reward(v) <= 0 {
				continue
			}
			// Open-path insertion between consecutive positions; the
			// fixed endpoints are never displaced.
			for pos := 1; pos < len(order); pos++ {
				a, b := order[pos-1], order[pos]
				delta := p.Cost(a, v) + p.Cost(v, b) - p.Cost(a, b)
				if cost+delta > p.Budget+1e-12 {
					continue
				}
				ratio := math.Inf(1)
				if delta > 1e-12 {
					ratio = p.Reward(v) / delta
				}
				if ratio > bestRatio {
					bestV, bestPos, bestRatio, bestDelta = v, pos, ratio, delta
				}
			}
		}
		if bestV < 0 {
			break
		}
		order = append(order, 0)
		copy(order[bestPos+1:], order[bestPos:])
		order[bestPos] = bestV
		in[bestV] = true
		cost += bestDelta
	}
	var reward float64
	for _, v := range order {
		reward += p.Reward(v)
	}
	if p.Start == p.End && len(order) > 1 {
		reward -= p.Reward(p.Start) // counted once
	}
	return PathSolution{Order: order, Reward: reward, Cost: pathCost(order, p.Cost)}, nil
}

// DummyDepot converts a cycle problem rooted at depot into the paper's
// path form: node N is the dummy depot d′, a copy of the depot with zero
// reward whose distances mirror the depot's.
func DummyDepot(p *Problem) *PathProblem {
	d := p.Depot
	n := p.N
	wrap := func(i int) int {
		if i == n {
			return d
		}
		return i
	}
	return &PathProblem{
		N: n + 1,
		Cost: func(i, j int) float64 {
			wi, wj := wrap(i), wrap(j)
			if wi == wj && i != j {
				return 0 // d and d′ coincide
			}
			return p.Cost(wi, wj)
		},
		Reward: func(i int) float64 {
			if i == n {
				return 0
			}
			return p.Reward(i)
		},
		Budget: p.Budget,
		Start:  d,
		End:    n,
	}
}
