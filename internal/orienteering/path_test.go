package orienteering

import (
	"math"
	"testing"
)

func pathFromProblem(p *Problem, end int) *PathProblem {
	return &PathProblem{N: p.N, Cost: p.Cost, Reward: p.Reward, Budget: p.Budget, Start: p.Depot, End: end}
}

func TestPathValidate(t *testing.T) {
	p, _ := randomProblem(6, 100, 1)
	pp := pathFromProblem(p, 3)
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *pp
	bad.End = 9
	if bad.Validate() == nil {
		t.Error("end out of range accepted")
	}
	bad = *pp
	bad.Budget = math.NaN()
	if bad.Validate() == nil {
		t.Error("NaN budget accepted")
	}
}

func TestFeasiblePath(t *testing.T) {
	p, _ := randomProblem(6, 1000, 2)
	pp := pathFromProblem(p, 3)
	if err := pp.FeasiblePath([]int{0, 1, 3}); err != nil {
		t.Errorf("good path rejected: %v", err)
	}
	if pp.FeasiblePath([]int{0, 1, 2}) == nil {
		t.Error("wrong terminus accepted")
	}
	if pp.FeasiblePath([]int{1, 0, 3}) == nil {
		t.Error("wrong origin accepted")
	}
	if pp.FeasiblePath([]int{0, 1, 1, 3}) == nil {
		t.Error("duplicate accepted")
	}
	tight := *pp
	tight.Budget = 0.01
	if tight.FeasiblePath([]int{0, 1, 3}) == nil {
		t.Error("over budget accepted")
	}
}

// brutePath enumerates all simple Start→End paths (n ≤ 7).
func brutePath(p *PathProblem) float64 {
	best := math.Inf(-1)
	used := make([]bool, p.N)
	var rec func(order []int, cost, reward float64)
	rec = func(order []int, cost, reward float64) {
		last := order[len(order)-1]
		if last == p.End && cost <= p.Budget+1e-9 && reward > best {
			best = reward
		}
		for v := 0; v < p.N; v++ {
			if used[v] {
				continue
			}
			nc := cost + p.Cost(last, v)
			if nc > p.Budget+1e-9 {
				continue
			}
			used[v] = true
			r := reward + p.Reward(v)
			rec(append(order, v), nc, r)
			used[v] = false
		}
	}
	used[p.Start] = true
	rec([]int{p.Start}, 0, p.Reward(p.Start))
	return best
}

func TestExactPathDPVsBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, budget := range []float64{80, 150, 300} {
			p, _ := randomProblem(6, budget, 50+seed)
			pp := pathFromProblem(p, 4)
			want := brutePath(pp)
			sol, err := ExactPathDP(pp)
			if math.IsInf(want, -1) {
				if err == nil {
					t.Errorf("seed=%d budget=%v: infeasible instance solved", seed, budget)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed=%d budget=%v: %v", seed, budget, err)
			}
			if err := pp.FeasiblePath(sol.Order); err != nil {
				t.Fatalf("seed=%d budget=%v: %v (order %v)", seed, budget, err, sol.Order)
			}
			if math.Abs(sol.Reward-want) > 1e-9 {
				t.Errorf("seed=%d budget=%v: DP %v, brute %v", seed, budget, sol.Reward, want)
			}
		}
	}
}

// TestDummyDepotEquivalence is the fidelity check for Algorithm 1's
// formulation: solving the d→d′ path problem on the dummy-depot graph
// yields exactly the optimal closed-tour reward of the cycle formulation.
func TestDummyDepotEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, budget := range []float64{100, 200, 350} {
			p, _ := randomProblem(7, budget, 80+seed)
			cycle, err := ExactDP(p)
			if err != nil {
				t.Fatal(err)
			}
			path, err := ExactPathDP(DummyDepot(p))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(cycle.Reward-path.Reward) > 1e-9 {
				t.Errorf("seed=%d budget=%v: cycle %v != dummy-depot path %v", seed, budget, cycle.Reward, path.Reward)
			}
		}
	}
}

func TestExactPathDPStartEqualsEnd(t *testing.T) {
	p, _ := randomProblem(7, 250, 5)
	pp := pathFromProblem(p, p.Depot)
	sol, err := ExactPathDP(pp)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := ExactDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Reward-cyc.Reward) > 1e-9 {
		t.Errorf("start=end path %v != cycle %v", sol.Reward, cyc.Reward)
	}
}

func TestExactPathDPInfeasible(t *testing.T) {
	p, _ := randomProblem(5, 0.0001, 9)
	pp := pathFromProblem(p, 3)
	if _, err := ExactPathDP(pp); err == nil {
		t.Error("impossible endpoint pair accepted")
	}
}

func TestGreedyPathFeasibleAndBounded(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p, _ := randomProblem(10, 200, 120+seed)
		pp := pathFromProblem(p, 7)
		sol, err := GreedyPath(pp)
		if err != nil {
			t.Fatal(err)
		}
		if err := pp.FeasiblePath(sol.Order); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		opt, err := ExactPathDP(pp)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Reward > opt.Reward+1e-9 {
			t.Fatalf("seed=%d: greedy %v beat optimum %v", seed, sol.Reward, opt.Reward)
		}
		if sol.Reward < opt.Reward/3 {
			t.Errorf("seed=%d: greedy %v below opt/3 (%v)", seed, sol.Reward, opt.Reward/3)
		}
	}
}

func TestGreedyPathInfeasibleEndpoints(t *testing.T) {
	p, _ := randomProblem(5, 0.001, 3)
	pp := pathFromProblem(p, 2)
	if _, err := GreedyPath(pp); err == nil {
		t.Error("unreachable end accepted")
	}
}
