// Package orienteering solves the rooted orienteering problem on metric
// instances: find a closed tour through a subset of nodes, starting and
// ending at a depot, that maximises collected node reward subject to a
// budget on total tour cost.
//
// Algorithm 1 of the paper reduces the no-overlap data-collection
// maximisation problem to exactly this problem on the auxiliary graph G_s
// (the budget is the UAV energy capacity E; edge costs fold hover energy
// into travel energy per Eq. 9). The paper invokes the approximation
// algorithm of Bansal et al. (STOC'04) as a black box. That algorithm is a
// theoretical device built on min-excess path decompositions; this package
// substitutes a solver portfolio with the same contract — always feasible,
// constant-factor quality in practice — consisting of an exact
// subset-DP oracle for small instances, a Christofides tour-split
// approximation, greedy ratio insertion, and budget-constrained local
// search. DESIGN.md §5 documents the substitution.
package orienteering

import (
	"fmt"
	"math"

	"uavdc/internal/tsp"
)

// Problem is a rooted cycle-orienteering instance over items 0..N-1.
type Problem struct {
	// N is the number of nodes, including the depot.
	N int
	// Cost is the symmetric, non-negative travel cost metric. For the
	// paper's reduction this is w2 of Eq. 9 and must satisfy the triangle
	// inequality (Lemma 1 guarantees it does).
	Cost tsp.Metric
	// Reward is the award collected when a node is visited (p of Eq. 6).
	// The depot conventionally has reward zero.
	Reward func(i int) float64
	// Budget is the maximum allowed tour cost (the UAV energy capacity).
	Budget float64
	// Depot is the node every tour must contain.
	Depot int
}

// Validate reports whether the instance is well formed.
func (p *Problem) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("orienteering: need at least one node, got %d", p.N)
	}
	if p.Depot < 0 || p.Depot >= p.N {
		return fmt.Errorf("orienteering: depot %d out of range [0,%d)", p.Depot, p.N)
	}
	if p.Cost == nil || p.Reward == nil {
		return fmt.Errorf("orienteering: Cost and Reward must be non-nil")
	}
	if math.IsNaN(p.Budget) || p.Budget < 0 {
		return fmt.Errorf("orienteering: invalid budget %v", p.Budget)
	}
	return nil
}

// Solution is a feasible closed tour and its collected reward.
type Solution struct {
	Tour   tsp.Tour
	Reward float64
	Cost   float64
}

// TotalReward sums the rewards of the visited nodes.
func (p *Problem) TotalReward(t tsp.Tour) float64 {
	var sum float64
	for _, v := range t.Order {
		sum += p.Reward(v)
	}
	return sum
}

// Feasible reports whether t is a budget-feasible closed tour containing
// the depot with no duplicate visits.
func (p *Problem) Feasible(t tsp.Tour) error {
	if !t.Contains(p.Depot) {
		return fmt.Errorf("orienteering: tour misses depot %d", p.Depot)
	}
	seen := make(map[int]bool, t.Len())
	for _, v := range t.Order {
		if v < 0 || v >= p.N {
			return fmt.Errorf("orienteering: node %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("orienteering: node %d visited twice", v)
		}
		seen[v] = true
	}
	if c := t.Cost(p.Cost); c > p.Budget+1e-9 {
		return fmt.Errorf("orienteering: tour cost %v exceeds budget %v", c, p.Budget)
	}
	return nil
}

// solutionFor packages a tour as a Solution.
func (p *Problem) solutionFor(t tsp.Tour) Solution {
	return Solution{Tour: t, Reward: p.TotalReward(t), Cost: t.Cost(p.Cost)}
}

// depotOnly is the always-feasible fallback: stay at the depot.
func (p *Problem) depotOnly() Solution {
	return p.solutionFor(tsp.Tour{Order: []int{p.Depot}})
}
