package orienteering

import "fmt"

// Method selects an orienteering solver.
type Method int

const (
	// MethodAuto runs the portfolio: exact DP when the instance is small
	// enough, otherwise greedy ratio and tour-split, each refined by local
	// search, returning the best.
	MethodAuto Method = iota
	// MethodExact forces the subset DP (errors above ExactMax nodes).
	MethodExact
	// MethodGreedy uses ratio-greedy insertion plus local search.
	MethodGreedy
	// MethodTourSplit uses the Christofides window scan plus local search.
	MethodTourSplit
	// MethodGRASP runs randomized multi-start greedy construction with
	// local search (see GRASP); slower than MethodGreedy, often better on
	// instances where pure greedy gets trapped early.
	MethodGRASP
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodExact:
		return "exact"
	case MethodGreedy:
		return "greedy"
	case MethodTourSplit:
		return "toursplit"
	case MethodGRASP:
		return "grasp"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Solve dispatches on method and returns a feasible solution. The returned
// tour always contains the depot; when nothing else fits the budget the
// depot-only tour is returned with zero reward.
func Solve(p *Problem, method Method) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	switch method {
	case MethodExact:
		return ExactDP(p)
	case MethodGreedy:
		sol, err := GreedyRatio(p)
		if err != nil {
			return Solution{}, err
		}
		return LocalSearch(p, sol, 0), nil
	case MethodTourSplit:
		sol, err := TourSplit(p)
		if err != nil {
			return Solution{}, err
		}
		return LocalSearch(p, sol, 0), nil
	case MethodGRASP:
		return GRASP(p, GRASPOptions{})
	case MethodAuto:
		if p.N <= ExactMax {
			return ExactDP(p)
		}
		g, err := GreedyRatio(p)
		if err != nil {
			return Solution{}, err
		}
		g = LocalSearch(p, g, 0)
		t, err := TourSplit(p)
		if err != nil {
			return Solution{}, err
		}
		t = LocalSearch(p, t, 0)
		if t.Reward > g.Reward {
			return t, nil
		}
		return g, nil
	default:
		return Solution{}, fmt.Errorf("orienteering: unknown method %v", method)
	}
}
