package orienteering

import (
	"fmt"

	"uavdc/internal/obs"
	"uavdc/internal/trace"
)

// Instrumentation counter names recorded by Solve: one per solver attempt,
// so runtime panels can attribute planner cost to the solver stack.
const (
	CounterExactRuns       = "orienteering.exact_runs"
	CounterGreedyRuns      = "orienteering.greedy_runs"
	CounterTourSplitRuns   = "orienteering.toursplit_runs"
	CounterGRASPRuns       = "orienteering.grasp_runs"
	CounterLocalSearchRuns = "orienteering.localsearch_runs"
)

// Trace span names emitted by Solve, one per solver attempt
// ("orienteering/" + the method's String()).
const (
	SpanExact       = "orienteering/exact"
	SpanGreedy      = "orienteering/greedy"
	SpanTourSplit   = "orienteering/toursplit"
	SpanGRASP       = "orienteering/grasp"
	SpanLocalSearch = "orienteering/localsearch"
)

// Method selects an orienteering solver.
type Method int

const (
	// MethodAuto runs the portfolio: exact DP when the instance is small
	// enough, otherwise greedy ratio and tour-split, each refined by local
	// search, returning the best.
	MethodAuto Method = iota
	// MethodExact forces the subset DP (errors above ExactMax nodes).
	MethodExact
	// MethodGreedy uses ratio-greedy insertion plus local search.
	MethodGreedy
	// MethodTourSplit uses the Christofides window scan plus local search.
	MethodTourSplit
	// MethodGRASP runs randomized multi-start greedy construction with
	// local search (see GRASP); slower than MethodGreedy, often better on
	// instances where pure greedy gets trapped early.
	MethodGRASP
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodExact:
		return "exact"
	case MethodGreedy:
		return "greedy"
	case MethodTourSplit:
		return "toursplit"
	case MethodGRASP:
		return "grasp"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Solve dispatches on method and returns a feasible solution. The returned
// tour always contains the depot; when nothing else fits the budget the
// depot-only tour is returned with zero reward. An optional obs.Recorder
// counts every solver attempt the dispatch makes.
func Solve(p *Problem, method Method, rec ...obs.Recorder) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	r := obs.First(rec...)
	tr := trace.Of(r)
	localSearch := func(sol Solution) Solution {
		r.Counter(CounterLocalSearchRuns).Inc()
		end := tr.Begin(SpanLocalSearch)
		sol = LocalSearch(p, sol, 0)
		end(trace.Num("reward", sol.Reward))
		return sol
	}
	exact := func() (Solution, error) {
		r.Counter(CounterExactRuns).Inc()
		end := tr.Begin(SpanExact, trace.Int("nodes", p.N))
		sol, err := ExactDP(p)
		end()
		return sol, err
	}
	greedy := func() (Solution, error) {
		r.Counter(CounterGreedyRuns).Inc()
		end := tr.Begin(SpanGreedy, trace.Int("nodes", p.N))
		sol, err := GreedyRatio(p)
		end()
		return sol, err
	}
	tourSplit := func() (Solution, error) {
		r.Counter(CounterTourSplitRuns).Inc()
		end := tr.Begin(SpanTourSplit, trace.Int("nodes", p.N))
		sol, err := TourSplit(p)
		end()
		return sol, err
	}
	switch method {
	case MethodExact:
		return exact()
	case MethodGreedy:
		sol, err := greedy()
		if err != nil {
			return Solution{}, err
		}
		return localSearch(sol), nil
	case MethodTourSplit:
		sol, err := tourSplit()
		if err != nil {
			return Solution{}, err
		}
		return localSearch(sol), nil
	case MethodGRASP:
		r.Counter(CounterGRASPRuns).Inc()
		end := tr.Begin(SpanGRASP, trace.Int("nodes", p.N))
		sol, err := GRASP(p, GRASPOptions{})
		end()
		return sol, err
	case MethodAuto:
		if p.N <= ExactMax {
			return exact()
		}
		g, err := greedy()
		if err != nil {
			return Solution{}, err
		}
		g = localSearch(g)
		t, err := tourSplit()
		if err != nil {
			return Solution{}, err
		}
		t = localSearch(t)
		if t.Reward > g.Reward {
			return t, nil
		}
		return g, nil
	default:
		return Solution{}, fmt.Errorf("orienteering: unknown method %v", method)
	}
}
