package orienteering

import (
	"uavdc/internal/tsp"
)

// TourSplit computes a budget-feasible tour by first building a Christofides
// (+2-opt) tour over every positive-reward node, then — if that tour is too
// expensive — scanning all contiguous windows of the tour and keeping the
// maximum-reward window whose induced closed tour (depot → window → depot,
// shortcutting the rest) fits the budget.
//
// Rationale: when the budget admits the full TSP tour the result is simply
// the Christofides tour, which matches the paper's observation that with a
// large enough energy capacity every node can be served. When the budget is
// tight, the window scan inherits the tour's geometric locality — a
// contiguous stretch of a good TSP tour covers near-maximal reward per unit
// length, the same structural idea behind segment-based orienteering
// approximations (Bansal et al.'s analysis also proceeds by decomposing an
// optimal path into budget-bounded segments).
func TourSplit(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	items := []int{p.Depot}
	for v := 0; v < p.N; v++ {
		if v != p.Depot && p.Reward(v) > 0 {
			items = append(items, v)
		}
	}
	if len(items) == 1 {
		return p.depotOnly(), nil
	}
	full, err := tsp.Christofides(items, p.Cost)
	if err != nil {
		return Solution{}, err
	}
	tsp.Improve(&full, p.Cost)
	full.RotateTo(p.Depot)
	if full.Cost(p.Cost) <= p.Budget+1e-9 {
		return p.solutionFor(full), nil
	}

	// Window scan. seq is the tour order with the depot first; windows are
	// taken over seq[1:] (the depot is prepended to every candidate).
	seq := full.Order
	k := len(seq) - 1 // non-depot count
	best := p.depotOnly()
	// Prefix sums of path length and reward along seq[1:].
	pathLen := make([]float64, k) // pathLen[i]: length of seq[1]..seq[i+1] chain
	rew := make([]float64, k)
	for i := 0; i < k; i++ {
		rew[i] = p.Reward(seq[i+1])
		if i > 0 {
			pathLen[i] = pathLen[i-1] + p.Cost(seq[i], seq[i+1])
			rew[i] += rew[i-1]
		}
	}
	chain := func(i, j int) float64 { // path length along seq from node i..j (1-based window)
		if i == j {
			return 0
		}
		return pathLen[j-1] - pathLen[i-1]
	}
	reward := func(i, j int) float64 {
		if i == 1 {
			return rew[j-1]
		}
		return rew[j-1] - rew[i-2]
	}
	// Two-pointer sweep would miss the varying depot-connection costs, so
	// scan all O(k²) windows; k here is the number of reward nodes, which
	// the greedy planners keep modest, and the scan is cheap per window.
	for i := 1; i <= k; i++ {
		for j := i; j <= k; j++ {
			c := p.Cost(p.Depot, seq[i]) + chain(i, j) + p.Cost(seq[j], p.Depot)
			if c > p.Budget+1e-9 {
				// Window end further right only adds cost along the chain,
				// but the closing edge may shrink; cannot break early in
				// general metrics. Continue scanning.
				continue
			}
			if r := reward(i, j); r > best.Reward+1e-12 {
				order := append([]int{p.Depot}, seq[i:j+1]...)
				cand := tsp.Tour{Order: order}
				// Polish within budget; Improve never increases cost.
				tsp.Improve(&cand, p.Cost)
				best = p.solutionFor(cand)
			}
		}
	}
	return best, nil
}
