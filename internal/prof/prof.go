// Package prof is the shared CPU/heap profiling hook for the CLIs: each
// command parses -cpuprofile/-memprofile into a single Start call and defers
// the returned stop. Profiles are standard runtime/pprof output, readable
// with `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling. cpuPath, when non-empty, receives a CPU profile
// covering the interval until stop is called; memPath, when non-empty,
// receives a heap profile written at stop time (after a GC, so it reflects
// live objects). Either may be empty. The returned stop is safe to call
// exactly once and reports the first error encountered while finishing the
// profiles.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() // best-effort cleanup; the profile already failed
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("prof: %w", err)
				}
				return firstErr
			}
			runtime.GC() // materialise up-to-date live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
		}
		return firstErr
	}, nil
}
