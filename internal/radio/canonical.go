package radio

import (
	"fmt"

	"uavdc/internal/canon"
)

// Canon maps an uplink model to its canonical representation — the single
// radio→canon translation every cache-key adapter (core, simulate, the
// facade) shares. nil is the paper's constant network bandwidth.
func Canon(m Model) (canon.Radio, error) {
	switch r := m.(type) {
	case nil:
		return canon.Radio{Kind: canon.RadioNone}, nil
	case Constant:
		return canon.Radio{Kind: canon.RadioConstant, RefRate: r.B.F()}, nil
	case Shannon:
		return canon.Radio{
			Kind:        canon.RadioShannon,
			RefRate:     r.RefRate.F(),
			RefDist:     r.RefDist.F(),
			RefSNR:      r.RefSNR,
			PathLossExp: r.PathLossExp,
		}, nil
	default:
		return canon.Radio{}, fmt.Errorf("radio: model %T has no canonical form", m)
	}
}
