// Package radio models the sensor→UAV uplink rate. The paper assumes every
// covered sensor uploads at one fixed bandwidth B, arguing the
// distance-induced differences are negligible at low hovering altitude
// (Section III-B). This package provides that constant model plus a
// Shannon-capacity model over free-space path loss, so the planners and the
// simulator can be run with the assumption *removed* — the ablation the
// paper gestures at but does not evaluate.
//
// Rates are in MB/s, distances in metres.
package radio

import (
	"fmt"
	"math"

	"uavdc/internal/units"
)

// Model yields the achievable uplink rate at a given slant distance (the
// 3-D straight-line distance between sensor and hovering UAV).
type Model interface {
	// Rate returns the rate in MB/s at slant distance d ≥ 0. It must be
	// non-increasing in d and strictly positive for every distance the
	// coverage model admits.
	Rate(d units.Meters) units.BitsPerSecond
}

// Constant is the paper's model: B MB/s regardless of distance.
type Constant struct {
	// B is the rate in MB/s.
	B units.BitsPerSecond
}

// Rate implements Model.
func (c Constant) Rate(units.Meters) units.BitsPerSecond { return c.B }

// Shannon is a capacity-style model over free-space path loss: the
// received SNR falls with the path-loss exponent, and the rate follows
// W·log2(1+SNR), scaled so the rate at RefDist equals RefRate. It captures
// the qualitative truth the paper waves off: far sensors upload slower, so
// sojourns computed under the constant-B assumption are optimistic.
type Shannon struct {
	// RefRate is the rate at RefDist, MB/s.
	RefRate units.BitsPerSecond
	// RefDist is the calibration distance, metres (e.g. the hover
	// altitude, where the paper's B is measured).
	RefDist units.Meters
	// RefSNR is the linear SNR at RefDist (typical uplink: 10–1000).
	RefSNR float64
	// PathLossExp is the path-loss exponent α (2 = free space,
	// 2.7–3.5 = urban).
	PathLossExp float64
}

// DefaultShannon calibrates a Shannon model to the paper's B = 150 MB/s at
// 10 m with 100× SNR and free-space loss.
func DefaultShannon() Shannon {
	return Shannon{RefRate: 150, RefDist: 10, RefSNR: 100, PathLossExp: 2}
}

// Validate checks the parameters.
func (s Shannon) Validate() error {
	switch {
	case !(s.RefRate > 0):
		return fmt.Errorf("radio: RefRate must be positive, got %v", s.RefRate)
	case !(s.RefDist > 0):
		return fmt.Errorf("radio: RefDist must be positive, got %v", s.RefDist)
	case !(s.RefSNR > 0):
		return fmt.Errorf("radio: RefSNR must be positive, got %v", s.RefSNR)
	case !(s.PathLossExp > 0):
		return fmt.Errorf("radio: PathLossExp must be positive, got %v", s.PathLossExp)
	}
	return nil
}

// Rate implements Model. The implicit channel width W is chosen so that
// Rate(RefDist) = RefRate; SNR(d) = RefSNR·(RefDist/d)^α.
func (s Shannon) Rate(d units.Meters) units.BitsPerSecond {
	if d < s.RefDist {
		d = s.RefDist // inside the calibration sphere the link saturates
	}
	snr := s.RefSNR * math.Pow(units.Ratio(s.RefDist, d), s.PathLossExp)
	w := s.RefRate.F() / math.Log2(1+s.RefSNR)
	return units.BitsPerSecond(w * math.Log2(1+snr))
}

// SlantDist returns the 3-D distance between a sensor and a UAV hovering at
// the given altitude above a point at ground distance g.
func SlantDist(groundDist, altitude units.Meters) units.Meters {
	return units.Hypot(groundDist, altitude)
}
