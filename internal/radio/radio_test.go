package radio

import (
	"math"
	"testing"
	"testing/quick"

	"uavdc/internal/units"
)

func TestConstant(t *testing.T) {
	m := Constant{B: 150}
	for _, d := range []units.Meters{0, 10, 1e6} {
		if m.Rate(d) != 150 {
			t.Errorf("Rate(%v) = %v", d, m.Rate(d))
		}
	}
}

func TestDefaultShannonCalibration(t *testing.T) {
	s := DefaultShannon()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Rate(s.RefDist); math.Abs((got - s.RefRate).F()) > 1e-9 {
		t.Errorf("Rate(RefDist) = %v, want %v", got, s.RefRate)
	}
	// Inside the calibration sphere the link saturates at RefRate.
	if got := s.Rate(0); math.Abs((got - s.RefRate).F()) > 1e-9 {
		t.Errorf("Rate(0) = %v, want %v", got, s.RefRate)
	}
}

func TestShannonMonotoneNonIncreasing(t *testing.T) {
	s := DefaultShannon()
	f := func(a, b float64) bool {
		d1 := math.Abs(math.Mod(a, 1000))
		d2 := math.Abs(math.Mod(b, 1000))
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return s.Rate(units.Meters(d1)) >= s.Rate(units.Meters(d2))-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShannonPositiveWithinCoverage(t *testing.T) {
	s := DefaultShannon()
	// Out to the paper's maximum slant distance (~71 m at R0=50, H=50).
	for d := units.Meters(0); d <= 200; d += 5 {
		if r := s.Rate(d); r <= 0 || math.IsNaN(r.F()) {
			t.Fatalf("Rate(%v) = %v", d, r)
		}
	}
}

func TestShannonPathLossExponentMatters(t *testing.T) {
	free := DefaultShannon()
	urban := free
	urban.PathLossExp = 3.5
	if urban.Rate(100) >= free.Rate(100) {
		t.Error("steeper path loss should give lower far-field rate")
	}
}

func TestShannonValidate(t *testing.T) {
	cases := []func(Shannon) Shannon{
		func(s Shannon) Shannon { s.RefRate = 0; return s },
		func(s Shannon) Shannon { s.RefDist = -1; return s },
		func(s Shannon) Shannon { s.RefSNR = 0; return s },
		func(s Shannon) Shannon { s.PathLossExp = 0; return s },
	}
	for i, mut := range cases {
		if err := mut(DefaultShannon()).Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSlantDist(t *testing.T) {
	if got := SlantDist(30, 40); got != 50 {
		t.Errorf("SlantDist(30,40) = %v", got)
	}
	if got := SlantDist(30, 0); got != 30 {
		t.Errorf("altitude 0 should be ground distance: %v", got)
	}
}
