// Package rng provides deterministic, splittable random number generation
// for reproducible experiments.
//
// The paper averages every data point over 15 random network instances. To
// make each instance reproducible in isolation (so a single failing instance
// can be re-run without replaying the whole sweep), experiments derive one
// child seed per (experiment, parameter, instance) triple via Split, which
// hashes the parent seed with a label using an FNV-style mix. Two sweeps
// sharing a parent seed therefore see identical network instances, which is
// what makes algorithm-vs-algorithm comparisons paired rather than merely
// repeated.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic seed from which generators and child seeds are
// derived.
type Source struct {
	seed uint64
}

// New returns a Source with the given seed.
func New(seed uint64) Source { return Source{seed: seed} }

// Seed returns the underlying seed value.
func (s Source) Seed() uint64 { return s.seed }

// Split derives an independent child Source identified by label. Identical
// (parent, label) pairs always yield the same child; distinct labels yield
// (statistically) independent streams.
func (s Source) Split(label string) Source {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(s.seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return Source{seed: h.Sum64()}
}

// SplitN derives the n-th indexed child, convenient for per-instance seeds.
func (s Source) SplitN(label string, n int) Source {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(s.seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	var nb [8]byte
	for i := range nb {
		nb[i] = byte(uint64(n) >> (8 * i))
	}
	h.Write(nb[:])
	return Source{seed: h.Sum64()}
}

// Rand returns a math/rand generator seeded from the Source. Each call
// returns a fresh generator with identical stream; callers that need
// independent streams should Split first.
func (s Source) Rand() *rand.Rand {
	return rand.New(rand.NewSource(int64(s.seed)))
}

// Uniform returns a value drawn uniformly from [lo, hi) using r.
func Uniform(r *rand.Rand, lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Perm returns a random permutation of [0, n) using r.
func Perm(r *rand.Rand, n int) []int { return r.Perm(n) }
