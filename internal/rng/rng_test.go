package rng

import "testing"

func TestSplitDeterministic(t *testing.T) {
	a := New(42).Split("fig3a")
	b := New(42).Split("fig3a")
	if a.Seed() != b.Seed() {
		t.Error("same (parent, label) must give same child")
	}
	c := New(42).Split("fig3b")
	if a.Seed() == c.Seed() {
		t.Error("different labels should give different children")
	}
	d := New(43).Split("fig3a")
	if a.Seed() == d.Seed() {
		t.Error("different parents should give different children")
	}
}

func TestSplitNDistinct(t *testing.T) {
	parent := New(7)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := parent.SplitN("instance", i).Seed()
		if seen[s] {
			t.Fatalf("duplicate child seed at n=%d", i)
		}
		seen[s] = true
	}
}

func TestRandStreamsReproducible(t *testing.T) {
	s := New(123).Split("x")
	r1, r2 := s.Rand(), s.Rand()
	for i := 0; i < 10; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatal("two Rand() from same source must emit identical streams")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(1).Rand()
	for i := 0; i < 1000; i++ {
		v := Uniform(r, 100, 1000)
		if v < 100 || v >= 1000 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := New(2).Rand()
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += Uniform(r, 0, 10)
	}
	mean := sum / n
	if mean < 4.8 || mean > 5.2 {
		t.Errorf("Uniform mean = %v, want ≈ 5", mean)
	}
}

func TestPerm(t *testing.T) {
	r := New(3).Rand()
	p := Perm(r, 20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
