package sensornet

import (
	"fmt"
	"math"

	"uavdc/internal/geom"
	"uavdc/internal/rng"
)

// GenParams controls random network generation. The zero value is not
// usable; start from DefaultGenParams.
type GenParams struct {
	// NumSensors is the number of aggregate sensor nodes (|V|).
	NumSensors int
	// Side is the edge length of the square monitoring region in metres.
	Side float64
	// DataMin and DataMax bound the uniform stored-volume distribution in
	// MB.
	DataMin, DataMax float64
	// Bandwidth is the uplink rate in MB/s.
	Bandwidth float64
	// CommRange is the node radio range R in metres.
	CommRange float64
	// DepotAtCenter places the depot at the region centre when true,
	// otherwise at the region origin corner.
	DepotAtCenter bool
}

// DefaultGenParams returns the paper's experimental setting: 500 nodes in a
// 1000 m × 1000 m region, D_v ~ U[100, 1000] MB, B = 150 MB/s, and a 50 m
// coverage/communication radius.
func DefaultGenParams() GenParams {
	return GenParams{
		NumSensors:    500,
		Side:          1000,
		DataMin:       100,
		DataMax:       1000,
		Bandwidth:     150,
		CommRange:     50,
		DepotAtCenter: true,
	}
}

// Validate checks the parameters.
func (p GenParams) Validate() error {
	switch {
	case p.NumSensors < 0:
		return fmt.Errorf("sensornet: negative sensor count %d", p.NumSensors)
	case !(p.Side > 0):
		return fmt.Errorf("sensornet: region side must be positive, got %v", p.Side)
	case p.DataMin < 0 || p.DataMax < p.DataMin:
		return fmt.Errorf("sensornet: invalid data range [%v, %v]", p.DataMin, p.DataMax)
	case !(p.Bandwidth > 0):
		return fmt.Errorf("sensornet: bandwidth must be positive, got %v", p.Bandwidth)
	case !(p.CommRange > 0):
		return fmt.Errorf("sensornet: comm range must be positive, got %v", p.CommRange)
	}
	return nil
}

// Generate builds a random network: sensors uniform in the region, stored
// volumes uniform in [DataMin, DataMax].
func Generate(p GenParams, src rng.Source) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := src.Rand()
	region := geom.Square(p.Side)
	net := &Network{
		Region:    region,
		Bandwidth: p.Bandwidth,
		CommRange: p.CommRange,
		Sensors:   make([]Sensor, p.NumSensors),
	}
	if p.DepotAtCenter {
		net.Depot = region.Center()
	} else {
		net.Depot = region.Min
	}
	for i := range net.Sensors {
		net.Sensors[i] = Sensor{
			Pos:  geom.Pt(r.Float64()*p.Side, r.Float64()*p.Side),
			Data: rng.Uniform(r, p.DataMin, p.DataMax),
		}
	}
	return net, nil
}

// ClusterParams shapes GenerateClustered.
type ClusterParams struct {
	// GenParams carries the base field parameters.
	GenParams
	// NumClusters is the number of deployment hot spots (≥ 1).
	NumClusters int
	// ClusterRadius is the spread of sensors around their hot spot, in
	// metres.
	ClusterRadius float64
}

// GenerateClustered builds a Matérn-style clustered deployment: NumClusters
// parent locations drawn uniformly, each sensor attached to a uniformly
// chosen parent and offset uniformly within ClusterRadius (clamped into
// the region). The paper evaluates only uniform fields; clustered fields
// are the natural robustness check — hovering locations cover many sensors
// at once inside a cluster and almost none between clusters, stressing
// both the coverage model and the tour planner.
func GenerateClustered(p ClusterParams, src rng.Source) (*Network, error) {
	if err := p.GenParams.Validate(); err != nil {
		return nil, err
	}
	if p.NumClusters < 1 {
		return nil, fmt.Errorf("sensornet: need at least one cluster, got %d", p.NumClusters)
	}
	if !(p.ClusterRadius > 0) {
		return nil, fmt.Errorf("sensornet: cluster radius must be positive, got %v", p.ClusterRadius)
	}
	r := src.Rand()
	region := geom.Square(p.Side)
	parents := make([]geom.Point, p.NumClusters)
	for i := range parents {
		parents[i] = geom.Pt(r.Float64()*p.Side, r.Float64()*p.Side)
	}
	net := &Network{
		Region:    region,
		Bandwidth: p.Bandwidth,
		CommRange: p.CommRange,
		Sensors:   make([]Sensor, p.NumSensors),
	}
	if p.DepotAtCenter {
		net.Depot = region.Center()
	} else {
		net.Depot = region.Min
	}
	for i := range net.Sensors {
		parent := parents[r.Intn(p.NumClusters)]
		// Uniform offset in the disk via rejection (bounded iterations in
		// expectation; clamp keeps the worst case in-region).
		pos := parent
		for try := 0; try < 16; try++ {
			dx := (2*r.Float64() - 1) * p.ClusterRadius
			dy := (2*r.Float64() - 1) * p.ClusterRadius
			if dx*dx+dy*dy <= p.ClusterRadius*p.ClusterRadius {
				pos = geom.Pt(parent.X+dx, parent.Y+dy)
				break
			}
		}
		net.Sensors[i] = Sensor{
			Pos:  region.Clamp(pos),
			Data: rng.Uniform(r, p.DataMin, p.DataMax),
		}
	}
	return net, nil
}

// DeviceField is the finer-grained layer beneath the aggregate network: the
// plain IoT devices that forward their sensing data to aggregate nodes
// (Section III-A). It exists to derive realistic, spatially correlated D_v
// values instead of drawing them i.i.d.
type DeviceField struct {
	// Positions of the non-aggregate devices.
	Positions []geom.Point
	// Rates are per-device data generation rates in MB per collection
	// period.
	Rates []float64
	// AssignedTo[i] is the aggregate sensor index device i forwards to,
	// or -1 when no aggregate node is within radio range (that device's
	// data is lost — the paper's motivation for dense-enough aggregate
	// selection).
	AssignedTo []int
}

// GenerateWithDevices builds an aggregate network whose stored volumes are
// the sum of an own-sensing baseline plus the rates of the devices that
// forward to each aggregate node (each device picks the nearest aggregate
// node within CommRange, as §III-A allows). It returns the network and the
// device field for inspection.
func GenerateWithDevices(p GenParams, devicesPerSensor int, ownBase float64, src rng.Source) (*Network, *DeviceField, error) {
	if devicesPerSensor < 0 {
		return nil, nil, fmt.Errorf("sensornet: negative device multiplier %d", devicesPerSensor)
	}
	net, err := Generate(p, src.Split("aggregates"))
	if err != nil {
		return nil, nil, err
	}
	for i := range net.Sensors {
		net.Sensors[i].Data = ownBase
	}
	r := src.Split("devices").Rand()
	nd := devicesPerSensor * p.NumSensors
	field := &DeviceField{
		Positions:  make([]geom.Point, nd),
		Rates:      make([]float64, nd),
		AssignedTo: make([]int, nd),
	}
	perDeviceMax := 0.0
	if p.NumSensors > 0 {
		perDeviceMax = (p.DataMax - p.DataMin) / math.Max(float64(devicesPerSensor), 1)
	}
	idx := net.Index()
	for i := 0; i < nd; i++ {
		pos := geom.Pt(r.Float64()*p.Side, r.Float64()*p.Side)
		field.Positions[i] = pos
		field.Rates[i] = r.Float64() * perDeviceMax
		nearest, d := idx.Nearest(pos)
		if nearest >= 0 && d <= p.CommRange {
			field.AssignedTo[i] = nearest
			net.Sensors[nearest].Data += field.Rates[i]
		} else {
			field.AssignedTo[i] = -1
		}
	}
	return net, field, nil
}
